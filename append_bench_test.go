package gbmqo

import (
	"encoding/json"
	"os"
	"testing"
)

// BenchmarkAppendMaintain measures what incremental cache maintenance buys on
// a streaming-ingest workload. Each iteration appends a batch of rows and then
// replays a warm multi-Group-By batch:
//
//   - "maintain" uses DB.Append — cached entries are rolled forward by delta
//     aggregation + merge, so the replay is served from the cache.
//   - "invalidate" is the full-invalidation baseline — the same rows arrive
//     via table replacement (version bump), every cached entry dies, and the
//     replay recomputes from scratch.
//
// The parent benchmark writes the measured ratio to BENCH_append.json, the
// artifact checked in with the repo.
func BenchmarkAppendMaintain(b *testing.B) {
	const (
		rows      = 100_000
		batchRows = 2_000
	)
	queries := [][]string{
		{"l_returnflag"}, {"l_linestatus"}, {"l_shipmode"},
		{"l_returnflag", "l_linestatus"}, {"l_shipmode", "l_returnflag"},
	}
	li, err := GenerateDataset("lineitem", rows, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := GenerateDataset("lineitem", 10_000, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	batches := make([][][]Value, 0, pool.NumRows()/batchRows)
	for off := 0; off+batchRows <= pool.NumRows(); off += batchRows {
		batches = append(batches, tableRows(pool, off, off+batchRows))
	}

	var maintainNs, invalidateNs int64
	var maintainMisses, invalidateMisses int

	b.Run("maintain", func(b *testing.B) {
		db := Open(&Config{CacheBytes: 64 << 20})
		db.Register(li)
		if _, _, err := db.Execute("lineitem", queries, QueryOptions{}); err != nil {
			b.Fatal(err) // prime
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Append("lineitem", batches[i%len(batches)]); err != nil {
				b.Fatal(err)
			}
			_, rep, err := db.Execute("lineitem", queries, QueryOptions{})
			if err != nil {
				b.Fatal(err)
			}
			maintainMisses += rep.Cache.Misses
		}
		maintainNs = b.Elapsed().Nanoseconds() / int64(b.N)
	})

	b.Run("invalidate", func(b *testing.B) {
		db := Open(&Config{CacheBytes: 64 << 20})
		db.Register(li)
		cur := li
		if _, _, err := db.Execute("lineitem", queries, QueryOptions{}); err != nil {
			b.Fatal(err) // prime
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Same data growth, no maintenance: replacement bumps the version
			// and every cached entry is invalidated.
			cur = cur.Append(batches[i%len(batches)])
			db.Register(cur)
			_, rep, err := db.Execute("lineitem", queries, QueryOptions{})
			if err != nil {
				b.Fatal(err)
			}
			invalidateMisses += rep.Cache.Misses
		}
		invalidateNs = b.Elapsed().Nanoseconds() / int64(b.N)
	})

	if maintainNs == 0 || invalidateNs == 0 {
		return // sub-benchmark filtered out; nothing to report
	}
	if maintainMisses != 0 {
		b.Fatalf("maintained replay missed %d times; roll-forward did not happen", maintainMisses)
	}
	if invalidateMisses == 0 {
		b.Fatal("baseline never missed; invalidation did not happen")
	}
	speedup := float64(invalidateNs) / float64(maintainNs)
	art := map[string]any{
		"bench":                "AppendMaintain",
		"rows":                 rows,
		"batch_rows":           batchRows,
		"queries":              len(queries),
		"maintain_ns_per_op":   maintainNs,
		"invalidate_ns_per_op": invalidateNs,
		"speedup":              speedup,
		"command":              "go test -bench BenchmarkAppendMaintain -benchtime 5x",
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_append.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("BENCH append maintain: maintain %d ns/op, invalidate %d ns/op, %.1fx", maintainNs, invalidateNs, speedup)
}
