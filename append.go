package gbmqo

import (
	"gbmqo/internal/engine"
)

// AppendReport attributes one streaming append: how the table's epoch
// advanced and what incremental cache maintenance did — entries rolled
// forward by delta aggregation (Refreshed), entries dropped for lazy
// re-derivation from a maintained ancestor (Dropped), and entries invalidated
// outright (Invalidated). See DESIGN.md "Incremental cache maintenance".
type AppendReport = engine.AppendReport

// AppendTableStats is the per-table append health DB.AppendStats (and GET
// /healthz) reports: the table's current epoch, row count, and refresh lag —
// cached entries still pending lazy re-derivation after recent appends.
type AppendTableStats = engine.AppendTableStats

// Append appends rows to a registered base table as a streaming delta.
//
// Unlike Register, which replaces the table and orphans every cached result
// built over it, Append advances the table one append epoch in place:
// dictionaries extend so existing group-key codes stay stable, and cached
// Group By results over the table are maintained incrementally — the engine
// aggregates only the appended segment and merges it group-wise into each
// affected entry (COUNT/SUM/MIN/MAX roll forward; AVG entries are
// invalidated). Only the finest cached ancestors are maintained eagerly;
// subsumed descendants are dropped and re-derived on demand through the
// cheapest-cached-ancestor path. Results after an append are byte-identical
// to recomputing from scratch over the grown table.
//
// Each row must carry one Value per column, in schema order, with matching
// types (or nulls). Validation is all-or-nothing: a malformed batch returns
// an error with no rows appended and no cache effect.
//
// Append is safe to call concurrently with queries and Submit batches:
// appends serialize against each other, queries batched before the append
// are fenced to the pre-append snapshot, and sharded execution either
// propagates the delta into the shard partitions or transparently falls back
// to unsharded execution. Readers holding the old *Table keep a consistent
// pre-append view.
func (db *DB) Append(name string, rows [][]Value) (*AppendReport, error) {
	// Fence open batch windows on this table first, so queued queries
	// dispatch against the pre-append snapshot instead of straddling the
	// epoch bump mid-window.
	db.batchMu.Lock()
	b := db.batcher
	db.batchMu.Unlock()
	if b != nil {
		b.FlushTable(name)
	}

	var (
		rep *AppendReport
		err error
	)
	if db.dur != nil {
		// Durable path: the append is WAL-logged (fsynced per policy) before
		// it applies; the log write is the acknowledgement point.
		rep, err = db.durableAppend(name, rows)
	} else {
		rep, err = db.eng.Append(name, rows)
	}
	if err != nil {
		return nil, err
	}

	// Propagate the delta into the shard partitions (or let the coordinator
	// fall back to unsharded execution for this table). Re-read the catalog
	// so a racing later append is never mistaken for ours.
	if co := db.shardCoordinator(); co != nil {
		if t, ep, ok := db.eng.Catalog().TableEpoch(name); ok && ep.Version == rep.Version && ep.Delta >= rep.Delta {
			co.NoteAppend(name, t, ep)
		}
	}
	return rep, nil
}

// AppendStats reports per-table append epochs and refresh lag for every base
// table that has seen a streaming append or still has cached entries pending
// lazy re-derivation. Tables with no append activity are omitted.
func (db *DB) AppendStats() map[string]AppendTableStats { return db.eng.AppendStats() }
