package gbmqo

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gbmqo/internal/cache"
	"gbmqo/internal/catalog"
	"gbmqo/internal/colset"
	"gbmqo/internal/engine"
	"gbmqo/internal/snapshot"
	"gbmqo/internal/wal"
)

// This file is the crash-durability layer: an append-ahead log plus periodic
// table snapshots under a data directory, so a process death loses at most
// the unacknowledged append tail. Every acknowledged DB.Append is WAL-logged
// (CRC32C per record, fsync per policy) before it applies; a background loop
// snapshots every table's dictionary + column images at a pinned epoch,
// bounding how much WAL a restart must replay. OpenDurable recovers by
// restoring the newest valid snapshot, replaying the WAL suffix through the
// normal append/maintenance path (so incremental cache maintenance re-runs
// exactly as it did live), verifying row counts against per-record
// expectations and table fingerprints against the snapshot, and rewarming the
// result cache from a persisted manifest — recomputed entries must reproduce
// the checksums the pre-crash process stored, and a mismatch quarantines the
// key instead of serving it. See DESIGN.md "Crash durability".

const (
	walSubdir    = "wal"
	snapSubdir   = "snap"
	manifestFile = "cache-manifest.json"
)

// ErrDBClosed is returned by appends against a durably closed DB.
var ErrDBClosed = errors.New("gbmqo: DB is closed")

// FsyncPolicy names re-exported for CLI/flag plumbing.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncOff      = "off"
)

// DurabilityOptions tunes OpenDurable. The zero value selects fsync=always
// (acknowledged appends survive any crash) and 30s background snapshots.
type DurabilityOptions struct {
	// Fsync is the WAL sync policy: "always" (default), "interval", or "off".
	Fsync string
	// FsyncInterval is the background sync period under "interval"
	// (default 50ms).
	FsyncInterval time.Duration
	// SnapshotInterval is the background snapshot period (default 30s).
	// Negative disables background snapshots (registration and close still
	// snapshot synchronously).
	SnapshotInterval time.Duration
	// WALSegmentBytes rotates WAL segments at this size (default 4 MiB).
	WALSegmentBytes int64
}

// RecoveryReport describes what OpenDurable found and rebuilt.
type RecoveryReport struct {
	// SnapshotLoaded reports whether a snapshot was restored; SnapshotWalSeq
	// is the WAL horizon it covered and TablesRestored how many tables it held.
	SnapshotLoaded bool   `json:"snapshot_loaded"`
	SnapshotWalSeq uint64 `json:"snapshot_wal_seq"`
	TablesRestored int    `json:"tables_restored"`
	// SnapshotsDiscarded counts snapshot files dropped as corrupt or
	// unrestorable before one loaded (0 on a clean start).
	SnapshotsDiscarded int `json:"snapshots_discarded,omitempty"`
	// ReplayedRecords counts committed WAL appends re-applied; Aborted those
	// voided by abort markers; Skipped those that no longer applied (e.g. an
	// unknown table whose registration predates the snapshot).
	ReplayedRecords int `json:"replayed_records"`
	AbortedRecords  int `json:"aborted_records,omitempty"`
	SkippedRecords  int `json:"skipped_records,omitempty"`
	// TruncatedTails counts torn/corrupt WAL tails repaired by truncation.
	TruncatedTails int `json:"truncated_tails,omitempty"`
	// ManifestDiscarded reports a cache manifest dropped for a failed CRC.
	ManifestDiscarded bool `json:"manifest_discarded,omitempty"`
	// RewarmedEntries counts cache entries recomputed and checksum-verified;
	// RewarmSkipped those not attempted or not admitted; QuarantinedEntries
	// those whose recomputation contradicted the stored checksum.
	RewarmedEntries    int `json:"rewarmed_entries,omitempty"`
	RewarmSkipped      int `json:"rewarm_skipped,omitempty"`
	QuarantinedEntries int `json:"quarantined_entries,omitempty"`
	// Wall is the end-to-end recovery time.
	Wall time.Duration `json:"wall_ns"`
}

// durability is the per-DB durable state: the WAL writer, the snapshot loop,
// and the mutex that makes (WAL write → engine apply) atomic with respect to
// snapshots, registrations, and close.
type durability struct {
	dir  string
	opts DurabilityOptions

	// mu serializes durable appends, registrations, snapshot capture, and the
	// closed check: while held, the WAL horizon and every table's in-memory
	// state advance together.
	mu     sync.Mutex
	w      *wal.Writer
	closed bool

	// snapMu serializes whole snapshot writes (background loop vs Register vs
	// Close); it is always taken outside mu.
	snapMu sync.Mutex

	snapStop  chan struct{}
	snapDone  chan struct{}
	closeOnce sync.Once
	closeErr  error

	snapWrites   atomic.Uint64
	snapErrors   atomic.Uint64
	lastSnapUnix atomic.Int64

	recovery RecoveryReport
}

// OpenDurable opens (or creates) a durable DB rooted at dataDir: it recovers
// the newest valid snapshot, replays the WAL suffix past it, rewarms the
// result cache from the persisted manifest, and then starts logging new
// appends. The returned RecoveryReport says what was found; on a fresh
// directory it is all zeroes. dopts may be nil for defaults (fsync=always,
// 30s snapshots). Tables registered on a durable DB are snapshotted
// synchronously — registration is durable once Register returns.
func OpenDurable(dataDir string, cfg *Config, dopts *DurabilityOptions) (*DB, *RecoveryReport, error) {
	o := DurabilityOptions{}
	if dopts != nil {
		o = *dopts
	}
	if o.Fsync == "" {
		o.Fsync = FsyncAlways
	}
	policy, err := wal.ParsePolicy(o.Fsync)
	if err != nil {
		return nil, nil, err
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = 30 * time.Second
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, nil, err
	}

	db := Open(cfg)
	rep := &RecoveryReport{}
	start := time.Now()

	// 1. Restore the newest snapshot whose every table rebuilds and verifies;
	// discard corrupt or unrestorable ones and fall back.
	snapDir := filepath.Join(dataDir, snapSubdir)
	for {
		s, path, err := snapshot.Load(snapDir)
		if err != nil {
			return nil, nil, fmt.Errorf("gbmqo: loading snapshot: %w", err)
		}
		if s == nil {
			break
		}
		if err := restoreSnapshot(db.eng.Catalog(), s); err != nil {
			// Fingerprint or rebuild failure: this snapshot cannot be
			// trusted. Drop it and try the previous one; with none left,
			// recovery degrades to replaying the whole WAL from scratch.
			os.Remove(path)
			rep.SnapshotsDiscarded++
			continue
		}
		rep.SnapshotLoaded = true
		rep.SnapshotWalSeq = s.WalSeq
		rep.TablesRestored = len(s.Tables)
		break
	}

	// 2. Replay the WAL suffix through the normal append path. Torn tails are
	// repaired on disk by the replay itself.
	walDir := filepath.Join(dataDir, walSubdir)
	if err := db.replayWAL(walDir, rep.SnapshotWalSeq, rep); err != nil {
		return nil, nil, err
	}

	// 3. Open the log for new appends (always a fresh segment past the
	// highest on-disk sequence, so the repaired tail is never appended into).
	w, err := wal.Open(wal.Options{
		Dir: walDir, SegmentBytes: o.WALSegmentBytes,
		Policy: policy, Interval: o.FsyncInterval,
	})
	if err != nil {
		return nil, nil, err
	}
	d := &durability{dir: dataDir, opts: o, w: w}
	db.dur = d

	// 4. Rewarm the result cache from the manifest, verifying every
	// recomputed entry against its stored checksum.
	db.rewarmCache(rep)

	// 5. If recovery replayed anything (or repaired a tail), snapshot now so
	// a crash loop cannot re-pay the same replay forever.
	if rep.ReplayedRecords > 0 || rep.TruncatedTails > 0 {
		if err := d.snapshotNow(db); err != nil {
			return nil, nil, fmt.Errorf("gbmqo: post-recovery snapshot: %w", err)
		}
	}

	if o.SnapshotInterval > 0 {
		d.snapStop = make(chan struct{})
		d.snapDone = make(chan struct{})
		go d.snapshotLoop(db)
	}

	rep.Wall = time.Since(start)
	d.recovery = *rep
	_ = db.obs.RegisterCollector(&durabilityCollector{db: db})
	return db, rep, nil
}

// restoreSnapshot rebuilds and registers every table image at its recorded
// epoch. All-or-nothing per snapshot: the first failure aborts (the catalog
// may hold some restored tables, but the caller retries with an older
// snapshot whose RestoreAt calls simply re-register them).
func restoreSnapshot(cat *catalog.Catalog, s *snapshot.Snapshot) error {
	for i := range s.Tables {
		img := &s.Tables[i]
		t, err := snapshot.Restore(img)
		if err != nil {
			return err
		}
		if err := cat.RestoreAt(t, catalog.Epoch{Version: img.Version, Delta: img.Delta}); err != nil {
			return err
		}
	}
	return nil
}

// replayWAL re-applies every committed WAL record past `after` through the
// engine's append path, behind a panic barrier (the recover.replay failpoint
// and any engine fault surface as an OpenDurable error, not a crash). Row
// counts are verified against each record's ExpectRows: a divergence means
// the recovered base state does not match what the original process
// acknowledged, and recovery fails loudly rather than serving it.
func (db *DB) replayWAL(dir string, after uint64, rep *RecoveryReport) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("gbmqo: recovery replay: %v", p)
		}
	}()
	st, rerr := wal.Replay(dir, after, func(r *wal.Record) error {
		arep, aerr := db.eng.Append(r.Table, r.Rows)
		if aerr != nil {
			// The record no longer applies — most commonly a table whose
			// registration predates the oldest surviving snapshot. Count and
			// continue: the rest of the log is still good.
			rep.SkippedRecords++
			return nil
		}
		if arep.TotalRows != r.ExpectRows {
			return fmt.Errorf("gbmqo: replay diverged: table %q has %d rows after seq %d, wal expects %d",
				r.Table, arep.TotalRows, r.Seq, r.ExpectRows)
		}
		rep.ReplayedRecords++
		return nil
	})
	rep.AbortedRecords = st.Aborted
	rep.TruncatedTails += st.TruncatedTails
	return rerr
}

// durableAppend is DB.Append's body when a WAL is attached: validate, log
// (fsync per policy), then apply. The WAL write is the acknowledgement point
// — under fsync=always an append that returned success survives any crash.
// An apply failure (or an injected fault between log and apply) writes an
// abort marker voiding the record, so replay reproduces exactly the
// acknowledged state.
func (db *DB) durableAppend(name string, rows [][]Value) (rep *AppendReport, err error) {
	d := db.dur
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrDBClosed
	}
	if err := db.eng.ValidateAppend(name, rows); err != nil {
		return nil, err
	}
	t, _ := db.Table(name)
	rec := &wal.Record{Table: name, ExpectRows: t.NumRows() + len(rows), Rows: rows}
	defer func() {
		if p := recover(); p != nil {
			// An injected fault (wal.append / wal.fsync panic) mid-log: the
			// sequence is burned either way; void it so replay can never
			// resurrect a never-acknowledged append.
			if rec.Seq != 0 {
				d.abortQuiet(rec.Seq)
			}
			rep, err = nil, fmt.Errorf("gbmqo: durable append: %v", p)
		}
	}()
	if _, werr := d.w.Append(rec); werr != nil {
		return nil, werr
	}
	rep, err = db.eng.Append(name, rows)
	if err != nil {
		d.abortQuiet(rec.Seq)
		return nil, err
	}
	return rep, nil
}

// abortQuiet writes an abort marker, swallowing errors and panics: it runs on
// failure paths (including inside a recover handler) where a second fault
// must not mask the first.
func (d *durability) abortQuiet(seq uint64) {
	defer func() { _ = recover() }()
	_ = d.w.AppendAbort(seq)
}

// registerDurable registers t and synchronously snapshots: registrations are
// not WAL-logged (a register rewrites the whole table), so the snapshot IS
// their durability — a nil return means the new table is on disk. A non-nil
// return means the table is registered in memory but NOT durable: a crash
// before the next successful snapshot loses it (and replay skips its WAL
// appends as unknown-table).
func (db *DB) registerDurable(t *Table) error {
	d := db.dur
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrDBClosed
	}
	db.eng.Catalog().Register(t)
	d.mu.Unlock()
	if err := d.snapshotNow(db); err != nil {
		// snapshotNow already counted the failure in snapErrors.
		return fmt.Errorf("gbmqo: registration snapshot for %q: %w", t.Name(), err)
	}
	return nil
}

// snapshotNow captures every base table at a consistent WAL horizon and
// writes one snapshot file (atomic tmp + rename), then prunes WAL segments
// the new snapshot made redundant and persists the cache manifest. Capture
// runs under the append mutex — dictionary state is copied there — but
// encoding and I/O run outside it, so appends stall only for the copy.
func (d *durability) snapshotNow(db *DB) error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()

	// close() takes its final snapshot before marking closed, so a closed
	// observation here means some straggler (nothing left to persist).
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	cat := db.eng.Catalog()
	s := &snapshot.Snapshot{WalSeq: d.w.Stats().NextSeq - 1}
	for _, name := range cat.TableNames() {
		if strings.HasPrefix(name, "__") {
			continue // temp tables are derived state, never persisted
		}
		t, ep, ok := cat.TableEpoch(name)
		if !ok {
			continue
		}
		s.Tables = append(s.Tables, snapshot.ImageOf(t, ep.Version, ep.Delta))
	}
	manifest := db.eng.ResultCache().Manifest()
	d.mu.Unlock()

	if _, err := snapshot.Write(filepath.Join(d.dir, snapSubdir), s); err != nil {
		d.snapErrors.Add(1)
		return err
	}
	d.snapWrites.Add(1)
	d.lastSnapUnix.Store(time.Now().UnixNano())
	// Prune only WAL the OLDEST retained snapshot no longer needs: retention
	// keeps a fallback so recovery can discard a corrupt newest snapshot, and
	// the fallback is only usable while its replay suffix survives. Pruning to
	// the new snapshot's own horizon would leave a gap between the two.
	pruneTo := s.WalSeq
	if oldest, ok := snapshot.OldestRetainedWalSeq(filepath.Join(d.dir, snapSubdir)); ok && oldest < pruneTo {
		pruneTo = oldest
	}
	_, _ = d.w.RemoveObsolete(pruneTo)
	if err := writeManifest(filepath.Join(d.dir, manifestFile), manifest); err != nil {
		d.snapErrors.Add(1)
	}
	return nil
}

// snapshotLoop runs background snapshots until close. Each iteration is
// panic-isolated: an injected snapshot.write fault costs one snapshot, not
// the loop.
func (d *durability) snapshotLoop(db *DB) {
	defer close(d.snapDone)
	tick := time.NewTicker(d.opts.SnapshotInterval)
	defer tick.Stop()
	for {
		select {
		case <-d.snapStop:
			return
		case <-tick.C:
			func() {
				defer func() {
					if p := recover(); p != nil {
						d.snapErrors.Add(1)
					}
				}()
				_ = d.snapshotNow(db)
			}()
		}
	}
}

// close shuts the durability layer down exactly once: stop the snapshot loop,
// take a final snapshot (so the next open replays nothing), mark closed so
// racing appends fail with ErrDBClosed, and sync-close the WAL. Concurrent
// and repeated calls all observe the first call's outcome.
func (d *durability) close(db *DB) error {
	d.closeOnce.Do(func() {
		if d.snapStop != nil {
			close(d.snapStop)
			<-d.snapDone
		}
		if err := d.snapshotNow(db); err != nil {
			d.closeErr = err
		}
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()
		if err := d.w.Close(); err != nil && d.closeErr == nil {
			d.closeErr = err
		}
	})
	return d.closeErr
}

// RecoveryInfo returns the report from this DB's OpenDurable recovery, or
// (zero, false) when the DB is not durable.
func (db *DB) RecoveryInfo() (RecoveryReport, bool) {
	if db.dur == nil {
		return RecoveryReport{}, false
	}
	return db.dur.recovery, true
}

// --- cache manifest ---------------------------------------------------------

// manifestEnvelope wraps the persisted entries with a CRC32C over their JSON
// encoding, so a corrupt manifest is detected and discarded as a unit instead
// of rewarming from garbage.
type manifestEnvelope struct {
	CRC     string                `json:"crc"`
	Entries []cache.ManifestEntry `json:"entries"`
}

var manifestCRC = crc32.MakeTable(crc32.Castagnoli)

func writeManifest(path string, entries []cache.ManifestEntry) error {
	if entries == nil {
		entries = []cache.ManifestEntry{}
	}
	body, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	env := manifestEnvelope{CRC: fmt.Sprintf("%08x", crc32.Checksum(body, manifestCRC)), Entries: entries}
	buf, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readManifest loads the manifest; ok is false (with no error) when the file
// is absent, unparseable, or fails its CRC — rewarm is skipped, never fed
// garbage.
func readManifest(path string) (entries []cache.ManifestEntry, ok, corrupt bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, false
	}
	var env manifestEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false, true
	}
	body, err := json.Marshal(env.Entries)
	if err != nil {
		return nil, false, true
	}
	if fmt.Sprintf("%08x", crc32.Checksum(body, manifestCRC)) != env.CRC {
		return nil, false, true
	}
	return env.Entries, true, false
}

// rewarmCache recomputes every manifest entry whose epoch matches the
// recovered catalog, through the normal engine path (admission, checksum, and
// lattice machinery run exactly as live), then verifies the admitted entry's
// checksum against the manifest. A mismatch means the recovered state cannot
// reproduce what the pre-crash process cached — the key is quarantined, never
// served.
func (db *DB) rewarmCache(rep *RecoveryReport) {
	c := db.eng.ResultCache()
	if c == nil {
		return
	}
	entries, ok, corrupt := readManifest(filepath.Join(db.dur.dir, manifestFile))
	if !ok {
		rep.ManifestDiscarded = corrupt
		return
	}
	for _, m := range entries {
		ep := db.eng.Catalog().Epoch(m.Table)
		if ep.Version != m.Version || ep.Delta != m.Delta {
			rep.RewarmSkipped++
			continue
		}
		key := m.CacheKey()
		// Re-grant the demand weight the entry had earned so admission sees
		// the same standing the pre-crash cache did.
		c.Seed(key, m.Uses)
		set := colset.Set(m.Set)
		_, err := db.eng.Run(engine.Request{
			Table:      m.Table,
			Sets:       []colset.Set{set},
			PerSetAggs: map[colset.Set][]Agg{set: m.Aggs},
			UseCache:   true,
		})
		if err != nil {
			rep.RewarmSkipped++
			continue
		}
		sum, resident := c.SumOf(key)
		if !resident {
			rep.RewarmSkipped++
			continue
		}
		want, perr := strconv.ParseUint(m.Sum, 16, 64)
		if perr != nil || sum != want {
			c.ForceQuarantine(key)
			rep.QuarantinedEntries++
			continue
		}
		rep.RewarmedEntries++
	}
}
