package gbmqo

import (
	"fmt"
	"strings"

	"gbmqo/internal/colset"
	"gbmqo/internal/table"
)

// DeriveFn computes a derived column value from a source value. The paper's
// §1 notes that grouping columns "may sometimes contain derived columns,
// e.g., LEN(c) for computing the length distribution of a column c"; derived
// columns are materialized once and then participate in grouping sets,
// statistics and indexes like any other column.
type DeriveFn func(Value) Value

// Built-in derivations.
var (
	// DeriveLen maps a string to its length (NULL stays NULL) — LEN(c).
	DeriveLen DeriveFn = func(v Value) Value {
		if v.Null {
			return table.Null(table.TInt64)
		}
		return table.Int(int64(len(v.S)))
	}
	// DeriveYear maps a date (days since epoch) to a year bucket of 365 days.
	DeriveYear DeriveFn = func(v Value) Value {
		if v.Null {
			return table.Null(table.TInt64)
		}
		return table.Int(v.I / 365)
	}
	// DeriveIsNull maps any value to 0/1 NULL-ness, for missing-value
	// distributions.
	DeriveIsNull DeriveFn = func(v Value) Value {
		if v.Null {
			return table.Int(1)
		}
		return table.Int(0)
	}
)

// AddDerivedColumn materializes fn(src) as a new column appended to the
// named table and re-registers the widened table under the same name.
// Existing statistics and indexes on the table are dropped (the schema
// changed); they rebuild on demand. The returned table is the widened one.
// typ is the derived column's type; fn must return values of that type (or
// NULL).
func (db *DB) AddDerivedColumn(tableName, newCol, srcCol string, typ Type, fn DeriveFn) (*Table, error) {
	t, ok := db.eng.Catalog().Table(tableName)
	if !ok {
		return nil, fmt.Errorf("gbmqo: unknown table %q", tableName)
	}
	if t.NumCols() >= colset.MaxColumns {
		return nil, fmt.Errorf("gbmqo: table %q already has the maximum %d columns", tableName, colset.MaxColumns)
	}
	srcOrds, err := db.resolveCols(t, []string{srcCol})
	if err != nil {
		return nil, err
	}
	for i := 0; i < t.NumCols(); i++ {
		if strings.EqualFold(t.Col(i).Name(), newCol) {
			return nil, fmt.Errorf("gbmqo: table %q already has a column %q", tableName, newCol)
		}
	}
	src := t.Col(srcOrds[0])
	out := table.NewColumn(table.ColumnDef{Name: newCol, Typ: typ})
	for i := 0; i < src.Len(); i++ {
		v := fn(src.Value(i))
		if !v.Null && v.Typ != typ {
			return nil, fmt.Errorf("gbmqo: derivation produced %s, declared %s", v.Typ, typ)
		}
		out.Append(v)
	}
	cols := make([]*table.Column, 0, t.NumCols()+1)
	for i := 0; i < t.NumCols(); i++ {
		cols = append(cols, t.Col(i))
	}
	cols = append(cols, out)
	widened := table.FromColumns(tableName, cols)
	db.eng.Catalog().Register(widened)
	return widened, nil
}
