package gbmqo

import (
	"strings"
	"testing"

	"gbmqo/internal/stats"
)

func TestAddDerivedColumnLen(t *testing.T) {
	db := Open(nil)
	cust, err := GenerateDataset("customer", 5000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(cust)
	widened, err := db.AddDerivedColumn("customer", "len_address", "Address", Int64, DeriveLen)
	if err != nil {
		t.Fatal(err)
	}
	if widened.NumCols() != cust.NumCols()+1 {
		t.Fatalf("cols = %d", widened.NumCols())
	}
	// The derived column participates in grouping like any other.
	res, err := db.Query("SELECT len_address, COUNT(*) FROM customer GROUP BY len_address")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Fatal("no length distribution")
	}
	// Spot check: derived value matches LEN of the source.
	col := widened.ColByName("len_address")
	src := widened.ColByName("Address")
	for i := 0; i < widened.NumRows(); i += 501 {
		if col.Value(i).I != int64(len(src.Value(i).S)) {
			t.Fatalf("row %d: len %d for %q", i, col.Value(i).I, src.Value(i).S)
		}
	}
}

func TestDeriveBuiltins(t *testing.T) {
	if DeriveLen(StrVal("abc")).I != 3 {
		t.Error("DeriveLen wrong")
	}
	if !DeriveLen(NullVal(String)).Null {
		t.Error("DeriveLen should preserve NULL")
	}
	if DeriveYear(DateVal(730)).I != 2 {
		t.Error("DeriveYear wrong")
	}
	if DeriveIsNull(NullVal(String)).I != 1 || DeriveIsNull(StrVal("x")).I != 0 {
		t.Error("DeriveIsNull wrong")
	}
}

func TestAddDerivedColumnErrors(t *testing.T) {
	db := Open(nil)
	li, _ := GenerateDataset("lineitem", 200, 1, 0)
	db.Register(li)
	if _, err := db.AddDerivedColumn("missing", "x", "y", Int64, DeriveLen); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.AddDerivedColumn("lineitem", "x", "nope", Int64, DeriveLen); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := db.AddDerivedColumn("lineitem", "l_comment", "l_comment", Int64, DeriveLen); err == nil {
		t.Error("duplicate name accepted")
	}
	// Type mismatch between declared and produced.
	if _, err := db.AddDerivedColumn("lineitem", "bad", "l_comment", String, DeriveLen); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestProfileMinMax(t *testing.T) {
	db := Open(nil)
	li, _ := GenerateDataset("lineitem", 3000, 1, 0)
	db.Register(li)
	rep, err := db.Profile("lineitem", "l_quantity")
	if err != nil {
		t.Fatal(err)
	}
	q := rep.Columns[0]
	if q.Min != "1" || q.Max != "10" {
		t.Fatalf("quantity min/max = %q/%q, want 1/10", q.Min, q.Max)
	}
}

func TestHistogramFacade(t *testing.T) {
	db := Open(nil)
	li, _ := GenerateDataset("lineitem", 5000, 1, 0)
	db.Register(li)
	h, err := db.Histogram("lineitem", "l_quantity", 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Distinct() != 10 || h.Rows() != 5000 {
		t.Fatalf("histogram = %v", h)
	}
	// Selectivity of quantity <= 10 must be 1.
	if sel := h.Selectivity(stats.CmpLe, IntVal(10)); sel < 0.999 {
		t.Fatalf("sel(<=max) = %v", sel)
	}
	if _, err := db.Histogram("lineitem", "nope", 8); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Histogram("missing", "a", 8); err == nil {
		t.Error("unknown table accepted")
	}
	if !strings.Contains(h.String(), "l_quantity") {
		t.Fatalf("histogram render: %s", h)
	}
}
