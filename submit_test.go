package gbmqo

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/exec"
)

// sameTable fails unless got and want agree on schema and every cell. The
// batching differential relies on exact Value equality, so the queries it
// runs stick to exact aggregates (COUNT, integer SUM, MIN, MAX) — float SUM
// is association-sensitive and not byte-stable across plan shapes.
func sameTable(t *testing.T, label string, got, want *Table) {
	t.Helper()
	if got.NumCols() != want.NumCols() || got.NumRows() != want.NumRows() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for c := 0; c < got.NumCols(); c++ {
		if got.Col(c).Name() != want.Col(c).Name() || got.Col(c).Type() != want.Col(c).Type() {
			t.Fatalf("%s: col %d = %s %v, want %s %v", label, c,
				got.Col(c).Name(), got.Col(c).Type(), want.Col(c).Name(), want.Col(c).Type())
		}
	}
	for r := 0; r < got.NumRows(); r++ {
		for c := 0; c < got.NumCols(); c++ {
			if g, w := got.Col(c).Value(r), want.Col(c).Value(r); g != w {
				t.Fatalf("%s: cell (%d,%d) = %v, want %v", label, r, c, g, w)
			}
		}
	}
}

// randomExactQueries builds n random Group By requests over lineitem's
// string/int columns with exact aggregates only.
func randomExactQueries(r *rand.Rand, n int) []GroupQuery {
	groupCols := []string{"l_returnflag", "l_linestatus", "l_shipmode", "l_shipinstruct", "l_quantity"}
	aggPool := []Agg{
		CountStar(),
		{Kind: AggCount, Col: 1, Name: "count_partkey"},
		{Kind: AggSum, Col: 4, Name: "sum_qty"}, // l_quantity: integer SUM is exact
		{Kind: AggMin, Col: 4, Name: "min_qty"},
		{Kind: AggMax, Col: 4, Name: "max_qty"},
	}
	out := make([]GroupQuery, n)
	for i := range out {
		cols := append([]string(nil), groupCols...)
		r.Shuffle(len(cols), func(a, b int) { cols[a], cols[b] = cols[b], cols[a] })
		q := GroupQuery{Cols: cols[:1+r.Intn(3)]}
		perm := r.Perm(len(aggPool))
		for _, ai := range perm[:1+r.Intn(3)] {
			q.Aggs = append(q.Aggs, aggPool[ai])
		}
		out[i] = q
	}
	return out
}

// soloReference computes each query individually through ExecuteQueries —
// the path Submit must match byte for byte.
func soloReference(t *testing.T, db *DB, queries []GroupQuery) []*Table {
	t.Helper()
	li, _ := db.Table("lineitem")
	out := make([]*Table, len(queries))
	for i, q := range queries {
		ords, err := db.resolveCols(li, q.Cols)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := db.ExecuteQueries("lineitem", []GroupQuery{q}, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = rep.Results[colset.Of(ords...)]
	}
	return out
}

// TestSubmitDifferentialRandomized: concurrent batched submissions must be
// cell-for-cell identical to the same queries executed one at a time.
func TestSubmitDifferentialRandomized(t *testing.T) {
	db := openWithLineitem(t, 6000)
	db.StartBatching(BatchOptions{MaxBatch: 8, MaxWait: 25 * time.Millisecond,
		Exec: QueryOptions{SharedScan: true, Parallel: true}})
	defer db.StopBatching()
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		queries := randomExactQueries(r, 3+r.Intn(6))
		want := soloReference(t, db, queries)
		got := make([]*Table, len(queries))
		infos := make([]BatchInfo, len(queries))
		errs := make([]error, len(queries))
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q GroupQuery) {
				defer wg.Done()
				got[i], infos[i], errs[i] = db.Submit(context.Background(), "lineitem", q)
			}(i, q)
		}
		wg.Wait()
		batched := false
		for i := range queries {
			if errs[i] != nil {
				t.Fatalf("trial %d query %d: %v", trial, i, errs[i])
			}
			sameTable(t, fmt.Sprintf("trial %d query %d (%v)", trial, i, queries[i].Cols), got[i], want[i])
			if infos[i].BatchQueries > 1 {
				batched = true
			}
		}
		if len(queries) > 1 && !batched {
			t.Fatalf("trial %d: %d concurrent submissions never shared a window", trial, len(queries))
		}
	}
}

// TestSubmitDifferentialUnderPanics: with a failpoint intermittently panicking
// inside engine steps, every submission must either fail with the isolated
// typed error or succeed with results identical to a clean solo run — never
// silently return wrong data, never crash the process.
func TestSubmitDifferentialUnderPanics(t *testing.T) {
	db := openWithLineitem(t, 5000)
	db.StartBatching(BatchOptions{MaxBatch: 8, MaxWait: 20 * time.Millisecond,
		Exec: QueryOptions{SharedScan: true, Parallel: true}})
	defer db.StopBatching()
	r := rand.New(rand.NewSource(23))
	queries := randomExactQueries(r, 6)
	want := soloReference(t, db, queries) // reference computed before faults

	var fired atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" && fired.Add(1)%5 == 0 {
			panic("injected step failure")
		}
	})
	defer exec.Testing.ClearFailPoint()

	for round := 0; round < 3; round++ {
		got := make([]*Table, len(queries))
		errs := make([]error, len(queries))
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q GroupQuery) {
				defer wg.Done()
				got[i], _, errs[i] = db.Submit(context.Background(), "lineitem", q)
			}(i, q)
		}
		wg.Wait()
		for i := range queries {
			if errs[i] != nil {
				var ee *ExecError
				if !errors.As(errs[i], &ee) {
					t.Fatalf("round %d query %d: error %v (%T) is not the isolated ExecError", round, i, errs[i], errs[i])
				}
				continue
			}
			sameTable(t, fmt.Sprintf("round %d query %d", round, i), got[i], want[i])
		}
	}
}

// TestSubmitDifferentialUnderCancellation: submitters whose contexts expire
// get ctx.Err(); everyone else still gets byte-identical results.
func TestSubmitDifferentialUnderCancellation(t *testing.T) {
	db := openWithLineitem(t, 5000)
	db.StartBatching(BatchOptions{MaxBatch: 16, MaxWait: 25 * time.Millisecond,
		Exec: QueryOptions{SharedScan: true}})
	defer db.StopBatching()
	r := rand.New(rand.NewSource(31))
	queries := randomExactQueries(r, 8)
	want := soloReference(t, db, queries)

	cancelled, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure it has expired
	got := make([]*Table, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		ctx := context.Background()
		if i%3 == 0 {
			ctx = cancelled
		}
		wg.Add(1)
		go func(i int, ctx context.Context, q GroupQuery) {
			defer wg.Done()
			got[i], _, errs[i] = db.Submit(ctx, "lineitem", q)
		}(i, ctx, q)
	}
	wg.Wait()
	for i := range queries {
		if i%3 == 0 {
			if !errors.Is(errs[i], context.DeadlineExceeded) {
				t.Fatalf("query %d with expired ctx: err = %v", i, errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		sameTable(t, fmt.Sprintf("query %d", i), got[i], want[i])
	}
}

// TestSubmitSQLMatchesQuery: SubmitSQL's reassembled GROUPING SETS result
// must be byte-identical to a solo Query of the same statement, and
// unbatchable statements must still work via the fallback path.
func TestSubmitSQLMatchesQuery(t *testing.T) {
	db := openWithLineitem(t, 4000)
	db.StartBatching(BatchOptions{MaxWait: 10 * time.Millisecond, Exec: QueryOptions{SharedScan: true}})
	defer db.StopBatching()
	for _, stmt := range []string{
		`SELECT l_returnflag, l_linestatus, COUNT(*) FROM lineitem
		 GROUP BY GROUPING SETS ((l_returnflag), (l_linestatus), (l_returnflag, l_linestatus))`,
		`SELECT COUNT(*) FROM lineitem GROUP BY CUBE(l_returnflag, l_linestatus)`,
		`SELECT l_shipmode, COUNT(*), MIN(l_quantity) AS mn FROM lineitem GROUP BY ROLLUP(l_shipmode)`,
		// Unbatchable: WHERE goes down the solo fallback.
		`SELECT l_shipmode, COUNT(*) FROM lineitem WHERE l_quantity > 25 GROUP BY l_shipmode`,
	} {
		want, err := db.Query(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		got, err := db.SubmitSQL(context.Background(), stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		sameTable(t, stmt, got, want)
	}
}

// TestStatsSafeUnderConcurrentSubmitters: CacheStats, Metrics, WriteMetrics
// and BatchStats must be safe to call while submissions run — this test is
// the -race witness for the documented concurrency contract.
func TestStatsSafeUnderConcurrentSubmitters(t *testing.T) {
	db := Open(&Config{CacheBytes: 32 << 20})
	li, err := GenerateDataset("lineitem", 4000, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(li)
	db.StartBatching(BatchOptions{MaxWait: 2 * time.Millisecond, Exec: QueryOptions{SharedScan: true}})
	defer db.StopBatching()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	r := rand.New(rand.NewSource(3))
	queries := randomExactQueries(r, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(w*7+i)%len(queries)]
				if _, _, err := db.Submit(context.Background(), "lineitem", q); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok := db.CacheStats(); !ok {
					t.Error("cache stats unavailable")
					return
				}
				db.Metrics()
				var buf bytes.Buffer
				db.WriteMetrics(&buf)
				db.BatchStats()
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	m := db.Metrics()
	if m["gbmqo_sched_submissions_total"] == 0 {
		t.Fatal("no submissions recorded")
	}
	if m["gbmqo_exec_runs_total"] == 0 {
		t.Fatal("no engine runs recorded")
	}
}
