package gbmqo

import (
	"encoding/json"
	"os"
	"testing"
)

// BenchmarkCacheReplay measures the cross-query result cache on a replayed
// workload: "cold" executes the same multi-Group-By batch with the cache
// bypassed (every run plans and scans), "warm" replays it against a primed
// cache (every set is an exact hit). The parent benchmark writes the measured
// ratio to BENCH_cache.json, the artifact checked in with the repo.
func BenchmarkCacheReplay(b *testing.B) {
	const rows = 50_000
	queries := [][]string{
		{"l_returnflag"}, {"l_linestatus"}, {"l_shipmode"},
		{"l_returnflag", "l_linestatus"}, {"l_shipmode", "l_returnflag"},
		{"l_shipdate"},
	}
	li, err := GenerateDataset("lineitem", rows, 1, 0)
	if err != nil {
		b.Fatal(err)
	}

	var coldNs, warmNs int64
	var warmHits int

	b.Run("cold", func(b *testing.B) {
		db := Open(&Config{CacheBytes: 64 << 20})
		db.Register(li)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Execute("lineitem", queries, QueryOptions{NoCache: true}); err != nil {
				b.Fatal(err)
			}
		}
		coldNs = b.Elapsed().Nanoseconds() / int64(b.N)
	})

	b.Run("warm", func(b *testing.B) {
		db := Open(&Config{CacheBytes: 64 << 20})
		db.Register(li)
		if _, _, err := db.Execute("lineitem", queries, QueryOptions{}); err != nil {
			b.Fatal(err) // prime
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rep, err := db.Execute("lineitem", queries, QueryOptions{})
			if err != nil {
				b.Fatal(err)
			}
			warmHits = rep.Cache.Hits
		}
		warmNs = b.Elapsed().Nanoseconds() / int64(b.N)
	})

	if coldNs == 0 || warmNs == 0 {
		return // sub-benchmark filtered out; nothing to report
	}
	if warmHits != len(queries) {
		b.Fatalf("warm replay hit %d of %d queries", warmHits, len(queries))
	}
	speedup := float64(coldNs) / float64(warmNs)
	art := map[string]any{
		"bench":          "CacheReplay",
		"rows":           rows,
		"queries":        len(queries),
		"cold_ns_per_op": coldNs,
		"warm_ns_per_op": warmNs,
		"speedup":        speedup,
		"warm_hits":      warmHits,
		"command":        "go test -bench BenchmarkCacheReplay -benchtime 5x",
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cache.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("BENCH cache replay: cold %d ns/op, warm %d ns/op, %.1fx", coldNs, warmNs, speedup)
}
