package gbmqo

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"
)

// serveWorkload is a TPC-H-shaped concurrent dashboard: 12 distinct Group By
// queries over lineitem's categorical and quantity columns, the kind of
// near-simultaneous arrivals the micro-batching scheduler exists for.
func serveWorkload() []GroupQuery {
	sumQty := Agg{Kind: AggSum, Col: 4, Name: "sum_qty"}
	minQty := Agg{Kind: AggMin, Col: 4, Name: "min_qty"}
	return []GroupQuery{
		{Cols: []string{"l_returnflag"}},
		{Cols: []string{"l_linestatus"}},
		{Cols: []string{"l_shipmode"}},
		{Cols: []string{"l_shipinstruct"}},
		{Cols: []string{"l_returnflag", "l_linestatus"}},
		{Cols: []string{"l_shipmode", "l_returnflag"}},
		{Cols: []string{"l_shipmode", "l_linestatus"}},
		{Cols: []string{"l_shipinstruct", "l_returnflag"}},
		{Cols: []string{"l_returnflag"}, Aggs: []Agg{sumQty}},
		{Cols: []string{"l_shipmode"}, Aggs: []Agg{sumQty, minQty}},
		{Cols: []string{"l_linestatus"}, Aggs: []Agg{minQty}},
		{Cols: []string{"l_shipmode", "l_shipinstruct"}},
	}
}

// BenchmarkServeBatchedVsSolo measures what micro-batching buys a concurrent
// server: "solo" answers the workload with one independent plan per query
// (batching off — every query pays its own scan), "batched" submits the same
// queries through the scheduler, which closes them into one window and runs
// a single shared GB-MQO plan. The parent benchmark writes the throughput
// ratio to BENCH_serve.json, the artifact checked in with the repo.
func BenchmarkServeBatchedVsSolo(b *testing.B) {
	const rows = 50_000
	li, err := GenerateDataset("lineitem", rows, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	queries := serveWorkload()
	opts := QueryOptions{SharedScan: true, Parallel: true}

	var soloNs, batchedNs int64
	var avgBatch float64

	b.Run("solo", func(b *testing.B) {
		db := Open(nil)
		db.Register(li)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, q := range queries {
				wg.Add(1)
				go func(q GroupQuery) {
					defer wg.Done()
					if _, _, err := db.ExecuteQueries("lineitem", []GroupQuery{q}, opts); err != nil {
						b.Error(err)
					}
				}(q)
			}
			wg.Wait()
		}
		soloNs = b.Elapsed().Nanoseconds() / int64(b.N)
	})

	b.Run("batched", func(b *testing.B) {
		db := Open(nil)
		db.Register(li)
		// MaxBatch equals the workload size so windows close "full" the
		// moment the last concurrent query arrives — the loaded-server case.
		db.StartBatching(BatchOptions{MaxBatch: len(queries), MaxWait: 50 * time.Millisecond, Exec: opts})
		defer db.StopBatching()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, q := range queries {
				wg.Add(1)
				go func(q GroupQuery) {
					defer wg.Done()
					if _, _, err := db.Submit(context.Background(), "lineitem", q); err != nil {
						b.Error(err)
					}
				}(q)
			}
			wg.Wait()
		}
		batchedNs = b.Elapsed().Nanoseconds() / int64(b.N)
		if st, ok := db.BatchStats(); ok && st.Batches > 0 {
			avgBatch = float64(st.Submitted) / float64(st.Batches)
		}
	})

	if soloNs == 0 || batchedNs == 0 {
		return // sub-benchmark filtered out; nothing to report
	}
	if avgBatch < 4 {
		b.Fatalf("average batch size %.1f, want >= 4 — the batched leg never actually batched", avgBatch)
	}
	speedup := float64(soloNs) / float64(batchedNs)
	art := map[string]any{
		"bench":             "ServeBatchedVsSolo",
		"rows":              rows,
		"queries":           len(queries),
		"solo_ns_per_op":    soloNs,
		"batched_ns_per_op": batchedNs,
		"speedup":           speedup,
		"avg_batch_queries": avgBatch,
		"command":           "go test -bench BenchmarkServeBatchedVsSolo -benchtime 5x",
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("solo %.2fms, batched %.2fms, speedup %.2fx, avg batch %.1f",
		float64(soloNs)/1e6, float64(batchedNs)/1e6, speedup, avgBatch)
}
