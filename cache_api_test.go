package gbmqo

import "testing"

func openCachedLineitem(t *testing.T, rows int) *DB {
	t.Helper()
	db := Open(&Config{CacheBytes: 32 << 20})
	li, err := GenerateDataset("lineitem", rows, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(li)
	return db
}

var cacheAPIQueries = [][]string{
	{"l_returnflag"}, {"l_linestatus"}, {"l_returnflag", "l_linestatus"},
}

func TestCacheAPIExecuteHits(t *testing.T) {
	db := openCachedLineitem(t, 4000)
	_, cold, err := db.Execute("lineitem", cacheAPIQueries, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.Hits != 0 || cold.Cache.Admissions == 0 {
		t.Fatalf("cold run counters: %+v", cold.Cache)
	}
	_, warm, err := db.Execute("lineitem", cacheAPIQueries, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Hits != len(cacheAPIQueries) {
		t.Fatalf("warm run hit %d of %d queries: %+v", warm.Cache.Hits, len(cacheAPIQueries), warm.Cache)
	}
	if warm.RowsScanned != 0 {
		t.Fatalf("warm run scanned %d rows", warm.RowsScanned)
	}
	st, ok := db.CacheStats()
	if !ok || st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("CacheStats = %+v, %v", st, ok)
	}
}

func TestCacheAPINoCacheBypass(t *testing.T) {
	db := openCachedLineitem(t, 2000)
	for i := 0; i < 2; i++ {
		_, rep, err := db.Execute("lineitem", cacheAPIQueries, QueryOptions{NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if (rep.Cache != CacheCounters{}) {
			t.Fatalf("NoCache run touched the cache: %+v", rep.Cache)
		}
	}
	if st, ok := db.CacheStats(); !ok || st.Entries != 0 {
		t.Fatalf("NoCache runs populated the cache: %+v, %v", st, ok)
	}
}

func TestCacheStatsWithoutCache(t *testing.T) {
	db := openWithLineitem(t, 100)
	if st, ok := db.CacheStats(); ok {
		t.Fatalf("CacheStats ok without a cache: %+v", st)
	}
	// And queries still work with caching requested but absent.
	if _, _, err := db.Execute("lineitem", cacheAPIQueries, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheAPISQLPath: repeated SQL statements hit the cache, and the answers
// stay identical; WHERE-filtered sources (ephemeral tables) bypass it safely.
func TestCacheAPISQLPath(t *testing.T) {
	db := openCachedLineitem(t, 4000)
	q := `SELECT l_returnflag, l_linestatus, COUNT(*) FROM lineitem
		GROUP BY GROUPING SETS ((l_returnflag), (l_linestatus), (l_returnflag, l_linestatus))`
	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.FormatRows(0) != again.FormatRows(0) {
		t.Fatal("cached SQL answer differs from cold answer")
	}
	st, ok := db.CacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("SQL path recorded no hits: %+v", st)
	}

	filtered := `SELECT l_shipmode, COUNT(*) FROM lineitem WHERE l_quantity > 25 GROUP BY l_shipmode`
	f1, err := db.Query(filtered)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := db.Query(filtered)
	if err != nil {
		t.Fatal(err)
	}
	if f1.FormatRows(0) != f2.FormatRows(0) {
		t.Fatal("filtered query answers differ across runs")
	}
}
