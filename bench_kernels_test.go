package gbmqo

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"testing"
	"time"

	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// kernelBenchTable builds the sweep input: one or two key columns with a
// controlled number of distinct values (optionally Zipf-skewed draws) and one
// float measure whose values are multiples of 0.25, so every kernel's SUM is
// bit-exact regardless of accumulation order and outputs can be
// fingerprint-compared. ndvB == 0 builds a single-key-column table.
func kernelBenchTable(rows, ndvA, ndvB int, zipf float64, seed int64) *table.Table {
	r := rand.New(rand.NewSource(seed))
	defs := []table.ColumnDef{{Name: "ka", Typ: table.TInt64}}
	if ndvB > 0 {
		defs = append(defs, table.ColumnDef{Name: "kb", Typ: table.TInt64})
	}
	defs = append(defs, table.ColumnDef{Name: "x", Typ: table.TFloat64})
	t := table.New("kb", defs)
	var za, zb *rand.Zipf
	if zipf > 1 {
		if ndvA > 1 {
			za = rand.NewZipf(r, zipf, 1, uint64(ndvA-1))
		}
		if ndvB > 1 {
			zb = rand.NewZipf(r, zipf, 1, uint64(ndvB-1))
		}
	}
	draw := func(z *rand.Zipf, ndv int) int64 {
		if z != nil {
			return int64(z.Uint64())
		}
		return int64(r.Intn(ndv))
	}
	for i := 0; i < rows; i++ {
		row := []table.Value{table.Int(draw(za, ndvA))}
		if ndvB > 0 {
			row = append(row, table.Int(draw(zb, ndvB)))
		}
		row = append(row, table.Float(float64(r.Intn(4000))/4))
		t.AppendRow(row...)
	}
	return t
}

// fingerprintTable hashes schema, row order, and every value so two tables
// fingerprint equal iff they are byte-identical result sets.
func fingerprintTable(t *table.Table) uint64 {
	h := fnv.New64a()
	for c := 0; c < t.NumCols(); c++ {
		fmt.Fprintf(h, "%s:%v|", t.Col(c).Name(), t.Col(c).Type())
	}
	for i := 0; i < t.NumRows(); i++ {
		for c := 0; c < t.NumCols(); c++ {
			v := t.Col(c).Value(i)
			if v.Null {
				fmt.Fprint(h, "NULL\t")
			} else if v.Typ == table.TFloat64 {
				fmt.Fprintf(h, "%.17g\t", v.F)
			} else {
				fmt.Fprintf(h, "%s\t", v.String())
			}
		}
		fmt.Fprint(h, "\n")
	}
	return h.Sum64()
}

// BenchmarkKernelSweep sweeps key shape (NDV, dense-domain width) × skew ×
// DOP over the physical aggregation kernels and the adaptive chooser,
// verifying byte identity against the reference hash kernel at every point
// and writing the measured grid to BENCH_kernels.json (the artifact checked
// in with the repo).
//
//   - "baseline" is what the engine ran before the adaptive layer existed:
//     the unsized hash kernel sequentially, the morsel-parallel hash path at
//     DOP > 1.
//   - dense and radix are measured at DOP > 1 only — they are the chooser's
//     parallel-regime rungs, so that is where they are candidates.
//   - "wide" configs use a two-column key whose code domain overflows
//     denseMaxDomain: dense is inapplicable there, which is exactly the
//     radix kernel's regime.
func BenchmarkKernelSweep(b *testing.B) {
	const rows = 262_144
	const reps = 5
	gov := exec.NewGov(context.Background(), exec.NewMemBudget(0))

	type cell struct {
		Key      string           `json:"key"`
		NDV      int              `json:"ndv"`
		Zipf     float64          `json:"zipf"`
		Workers  int              `json:"workers"`
		Groups   int              `json:"groups"`
		Kernel   map[string]int64 `json:"ns_per_op"`
		Adaptive string           `json:"adaptive_picked"`
	}
	var grid []cell

	// Kernels at one grid point are measured round-robin (rep-major, not
	// kernel-major) so allocation and GC pressure from one kernel's big runs
	// is spread evenly instead of taxing whichever kernel happens to run
	// after it.
	type contender struct {
		name string
		fn   func() (*table.Table, error)
	}
	measureAll := func(cs []contender) (map[string]int64, map[string]*table.Table) {
		best := map[string]int64{}
		outs := map[string]*table.Table{}
		for r := 0; r < reps; r++ {
			for _, c := range cs {
				start := time.Now()
				o, err := c.fn()
				el := time.Since(start).Nanoseconds()
				if err != nil {
					b.Fatal(err)
				}
				if prev, ok := best[c.name]; !ok || el < prev {
					best[c.name] = el
					outs[c.name] = o
				}
			}
		}
		return best, outs
	}

	configs := []struct {
		key        string
		ndvA, ndvB int
	}{
		{"narrow-low", 16, 0},     // low-NDV extreme: dense regime
		{"narrow-high", 65536, 0}, // high NDV but still a dense-able domain
		{"wide-high", 2048, 2048}, // high-NDV extreme, domain 4.2M: radix regime
	}
	for _, cfg := range configs {
		for _, zipf := range []float64{0, 1.5} {
			src := kernelBenchTable(rows, cfg.ndvA, cfg.ndvB, zipf, int64(cfg.ndvA)+int64(zipf*10))
			groupCols := []int{0}
			if cfg.ndvB > 0 {
				groupCols = []int{0, 1}
			}
			aggs := []exec.Agg{exec.CountStar(), {Kind: exec.AggSum, Col: len(groupCols), Name: "sx"}}
			ref := exec.GroupByHash(src, groupCols, aggs, "ref")
			want := fingerprintTable(ref)
			groups := ref.NumRows()
			for _, dop := range []int{1, 4} {
				c := cell{Key: cfg.key, NDV: cfg.ndvA * max(cfg.ndvB, 1), Zipf: zipf,
					Workers: dop, Groups: groups, Kernel: map[string]int64{}}

				var picked string
				// Baseline: the pre-adaptive engine's kernel at this DOP.
				cs := []contender{
					{"baseline", func() (*table.Table, error) {
						if dop > 1 {
							o, _, err := exec.GroupByHashParallelGov(gov, src, groupCols, aggs, "g", dop)
							return o, err
						}
						return exec.GroupByHashGov(gov, src, groupCols, aggs, "g")
					}},
					{"sort", func() (*table.Table, error) {
						return exec.GroupBySortGov(gov, src, groupCols, aggs, "g")
					}},
				}
				if dop > 1 {
					if exec.DenseDomain(src, groupCols) != 0 {
						cs = append(cs, contender{"dense", func() (*table.Table, error) {
							o, _, err := exec.GroupByDenseGov(gov, src, groupCols, aggs, "g", dop)
							return o, err
						}})
					}
					cs = append(cs, contender{"radix", func() (*table.Table, error) {
						o, _, err := exec.GroupByRadixParallelGov(gov, src, groupCols, aggs, "g", dop)
						return o, err
					}})
				}
				cs = append(cs, contender{"adaptive", func() (*table.Table, error) {
					o, ks, err := exec.GroupByAdaptiveGov(gov, src, groupCols, aggs, "g",
						exec.AdaptiveHints{NDV: float64(groups), Workers: dop})
					picked = ks.Kind.String()
					return o, err
				}})

				best, outs := measureAll(cs)
				for name, ns := range best {
					c.Kernel[name] = ns
					if out := outs[name]; out != nil && fingerprintTable(out) != want {
						b.Fatalf("%s zipf=%v dop=%d: %s output not byte-identical to hash reference", cfg.key, zipf, dop, name)
					}
				}
				c.Adaptive = picked

				bestFixed := int64(1 << 62)
				for name, v := range c.Kernel {
					if name != "adaptive" && v < bestFixed {
						bestFixed = v
					}
				}
				if ad := c.Kernel["adaptive"]; float64(ad) > 1.25*float64(bestFixed) {
					b.Logf("WARN %s zipf=%v dop=%d: adaptive %dns > best fixed %dns", cfg.key, zipf, dop, ad, bestFixed)
				}
				grid = append(grid, c)
			}
		}
	}

	art := map[string]any{
		"bench":   "KernelSweep",
		"rows":    rows,
		"reps":    reps,
		"note":    "ns_per_op is min over reps; baseline = pre-adaptive engine kernel (unsized hash / morsel-parallel hash); dense/radix measured at DOP>1 where the chooser offers them; all kernels verified byte-identical to the hash reference at every point",
		"sweep":   grid,
		"command": "go test -run '^$' -bench BenchmarkKernelSweep -benchtime 1x",
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_kernels.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	_ = b.N
}
