package gbmqo

import (
	"time"

	"gbmqo/internal/engine"
	"gbmqo/internal/shard"
)

// ShardError is the typed failure a sharded query returns when a shard fails
// and the query did not opt into partial results (QueryOptions.AllowPartial):
// it names the failing shard and wraps the shard's final error (an open
// breaker's *BreakerOpenError, a transient *ExecError that exhausted its
// retries, or a deadline). Match with errors.As.
type ShardError = shard.Error

// ShardFailure attributes one shard's absence from a partial result (see
// ExecReport.ShardsFailed).
type ShardFailure = engine.ShardFailure

// ShardOptions tunes sharded scatter-gather execution (see EnableSharding).
// Zero values select the documented defaults.
type ShardOptions struct {
	// Shards is the number of hash shards registered tables are partitioned
	// into (default 4).
	Shards int
	// Keys optionally names the column to hash-partition on, per table;
	// tables absent from the map are partitioned by row-index hash (perfectly
	// balanced regardless of skew). Naming an unknown table or column is an
	// error.
	Keys map[string]string
	// MaxAttempts is each shard's attempt budget per query, including the
	// first try (default 2). Shard retries descend the same degradation
	// ladder as request-scope retries.
	MaxAttempts int
	// RetryBackoff is the base sleep before a shard retry, doubled per
	// attempt with jitter (default 1ms, capped at 100ms).
	RetryBackoff time.Duration
	// HedgeAfter, when positive, launches a hedged duplicate request against
	// any shard still running after this long; the first result wins and the
	// loser is cancelled and discarded. 0 disables hedging.
	HedgeAfter time.Duration
	// Breaker configures the per-shard circuit breakers (independent of
	// EnableBreakers' per-table ones; defaults as in BreakerConfig).
	Breaker BreakerConfig
}

// EnableSharding partitions every currently registered table into
// ShardOptions.Shards hash shards and routes subsequent queries through a
// fault-isolated scatter-gather coordinator: the full GB-MQO plan runs per
// shard and the partials are merged back byte-identical to unsharded
// execution. Each shard sits behind its own circuit breaker, deadline budget
// and bounded retry loop; stragglers can be hedged; queries opting in via
// QueryOptions.AllowPartial survive shard loss with explicit attribution.
//
// Sharding snapshots the catalog: tables registered or replaced afterwards
// are served unsharded (detected by catalog version), as are ephemeral
// derived tables (WHERE clauses) and request shapes the merge cannot
// reproduce byte-identically. Call EnableSharding again after schema changes
// to re-partition — like registration itself, this is not synchronized with
// running queries.
func (db *DB) EnableSharding(o ShardOptions) error {
	co, err := shard.New(db.eng.Catalog(), shard.Options{
		Shards:       o.Shards,
		Keys:         o.Keys,
		MaxAttempts:  o.MaxAttempts,
		RetryBackoff: o.RetryBackoff,
		HedgeAfter:   o.HedgeAfter,
		Breaker:      o.Breaker,
	})
	if err != nil {
		return err
	}
	db.shardMu.Lock()
	db.shards = co
	db.shardMu.Unlock()
	db.eng.SetShardRouter(co.Route)
	return nil
}

// DisableSharding removes the scatter-gather coordinator; subsequent queries
// run unsharded.
func (db *DB) DisableSharding() {
	db.eng.SetShardRouter(nil)
	db.shardMu.Lock()
	db.shards = nil
	db.shardMu.Unlock()
}

// Sharding reports the active shard count (0 when sharding is disabled).
func (db *DB) Sharding() int {
	db.shardMu.Lock()
	defer db.shardMu.Unlock()
	if db.shards == nil {
		return 0
	}
	return db.shards.Shards()
}

// shardCoordinator returns the active coordinator, nil when disabled.
func (db *DB) shardCoordinator() *shard.Coordinator {
	db.shardMu.Lock()
	defer db.shardMu.Unlock()
	return db.shards
}
