package gbmqo

// This file holds the benchmark harness required by the reproduction: one
// testing.B benchmark per table and figure of the paper's evaluation (§6).
// Each benchmark runs the corresponding experiment end to end (data
// generation is cached across iterations, so an iteration measures the
// planning plus execution work the paper timed) and logs the regenerated
// table/figure rows on its first iteration. Run with:
//
//	go test -bench=. -benchmem
//
// Larger scales: use cmd/experiments with -tpch/-sales/-nref flags.

import (
	"fmt"
	"sync"
	"testing"

	"gbmqo/internal/experiments"
)

// benchScale mirrors the experiment defaults (laptop-scale stand-ins for the
// paper's 6M/60M/24M/78M-row datasets — see DESIGN.md's substitution table).
func benchScale() experiments.Scale { return experiments.DefaultScale() }

// logOnce prints each regenerated artifact a single time per `go test` run,
// not once per calibration pass.
var logOnce sync.Map

func logResult(b *testing.B, name string, res fmt.Stringer) {
	b.Helper()
	if _, loaded := logOnce.LoadOrStore(name, true); !loaded {
		b.Logf("\n%s", res)
	}
}

// BenchmarkTable2GroupingSets regenerates Table 2 (§6.1): GB-MQO vs the
// commercial GROUPING SETS plan on the CONT and SC lineitem workloads.
func BenchmarkTable2GroupingSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "table2", res)
	}
}

// BenchmarkTable3Datasets regenerates Table 3 (§6.2): GB-MQO speedup over the
// naive plan on sales/nref/tpch × SC/TC.
func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "table3", res)
	}
}

// BenchmarkFigure6Storage regenerates the §4.4.1 storage-minimization study
// (paper example 18-vs-20 plus measured peak temp bytes).
func BenchmarkFigure6Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig6", res)
	}
}

// BenchmarkFigure9Optimal regenerates Figure 9 (§6.3): GB-MQO vs the
// exhaustive optimum over ten random 7-column workloads.
func BenchmarkFigure9Optimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig9", res)
	}
}

// BenchmarkFigure10Scaling regenerates Figure 10 (§6.4): optimizer calls,
// optimization time, and run time as the table widens 12→48 columns.
func BenchmarkFigure10Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig10", res)
	}
}

// BenchmarkSection65BinaryTree regenerates the §6.5 comparison of the
// binary-tree restriction against all four merge types.
func BenchmarkSection65BinaryTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Section65(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "sec65", res)
	}
}

// BenchmarkFigure11Pruning regenerates Figure 11 (§6.6): the impact of the
// subsumption and monotonicity pruning techniques.
func BenchmarkFigure11Pruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig11", res)
	}
}

// BenchmarkFigure12StatsOverhead regenerates Figure 12 (§6.7): statistics
// creation time as a fraction of execution-time savings.
func BenchmarkFigure12StatsOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig12", res)
	}
}

// BenchmarkFigure13Skew regenerates Figure 13 (§6.8): speedup vs Zipfian data
// skew.
func BenchmarkFigure13Skew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig13", res)
	}
}

// BenchmarkFigure14PhysicalDesign regenerates Figure 14 (§6.9): run time as
// non-clustered indexes are added one per step, including the plan-adaptation
// effect on l_receiptdate.
func BenchmarkFigure14PhysicalDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure14(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig14", res)
	}
}

// BenchmarkOptimizeSC12 isolates pure optimization cost (no execution) for
// the 12-query SC workload — the paper's headline "optimization is cheap"
// claim in §6.4.
func BenchmarkOptimizeSC12(b *testing.B) {
	db := Open(nil)
	li, err := GenerateDataset("lineitem", 40_000, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	db.Register(li)
	queries := [][]string{
		{"l_partkey"}, {"l_suppkey"}, {"l_linenumber"}, {"l_quantity"},
		{"l_returnflag"}, {"l_linestatus"}, {"l_shipdate"}, {"l_commitdate"},
		{"l_receiptdate"}, {"l_shipinstruct"}, {"l_shipmode"}, {"l_comment"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Optimize("lineitem", queries, QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSharedScan measures the §5.1 shared-scan execution
// technique as an ablation: the same SC workload and strategy executed with
// sibling Group Bys batched into one pass vs executed one by one. DESIGN.md
// lists this as an orthogonal physical technique GB-MQO composes with.
func BenchmarkAblationSharedScan(b *testing.B) {
	db := Open(nil)
	li, err := GenerateDataset("lineitem", 40_000, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	db.Register(li)
	queries := [][]string{
		{"l_partkey"}, {"l_suppkey"}, {"l_linenumber"}, {"l_quantity"},
		{"l_returnflag"}, {"l_linestatus"}, {"l_shipdate"}, {"l_commitdate"},
		{"l_receiptdate"}, {"l_shipinstruct"}, {"l_shipmode"}, {"l_comment"},
	}
	for _, shared := range []bool{false, true} {
		name := "individual"
		if shared {
			name = "shared"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, rep, err := db.Execute("lineitem", queries, QueryOptions{SharedScan: shared})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.RowsScanned), "rows-scanned")
			}
		})
	}
}

// BenchmarkGroupByHash isolates the engine's hash aggregate over the base
// table (the substrate operation every plan is built from).
func BenchmarkGroupByHash(b *testing.B) {
	db := Open(nil)
	li, err := GenerateDataset("lineitem", 100_000, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	db.Register(li)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode"); err != nil {
			b.Fatal(err)
		}
	}
}
