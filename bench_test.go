package gbmqo

// This file holds the benchmark harness required by the reproduction: one
// testing.B benchmark per table and figure of the paper's evaluation (§6).
// Each benchmark runs the corresponding experiment end to end (data
// generation is cached across iterations, so an iteration measures the
// planning plus execution work the paper timed) and logs the regenerated
// table/figure rows on its first iteration. Run with:
//
//	go test -bench=. -benchmem
//
// Larger scales: use cmd/experiments with -tpch/-sales/-nref flags.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"gbmqo/internal/exec"
	"gbmqo/internal/experiments"
)

// benchScale mirrors the experiment defaults (laptop-scale stand-ins for the
// paper's 6M/60M/24M/78M-row datasets — see DESIGN.md's substitution table).
func benchScale() experiments.Scale { return experiments.DefaultScale() }

// logOnce prints each regenerated artifact a single time per `go test` run,
// not once per calibration pass.
var logOnce sync.Map

func logResult(b *testing.B, name string, res fmt.Stringer) {
	b.Helper()
	if _, loaded := logOnce.LoadOrStore(name, true); !loaded {
		b.Logf("\n%s", res)
	}
}

// BenchmarkTable2GroupingSets regenerates Table 2 (§6.1): GB-MQO vs the
// commercial GROUPING SETS plan on the CONT and SC lineitem workloads.
func BenchmarkTable2GroupingSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "table2", res)
	}
}

// BenchmarkTable3Datasets regenerates Table 3 (§6.2): GB-MQO speedup over the
// naive plan on sales/nref/tpch × SC/TC.
func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "table3", res)
	}
}

// BenchmarkFigure6Storage regenerates the §4.4.1 storage-minimization study
// (paper example 18-vs-20 plus measured peak temp bytes).
func BenchmarkFigure6Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig6", res)
	}
}

// BenchmarkFigure9Optimal regenerates Figure 9 (§6.3): GB-MQO vs the
// exhaustive optimum over ten random 7-column workloads.
func BenchmarkFigure9Optimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig9", res)
	}
}

// BenchmarkFigure10Scaling regenerates Figure 10 (§6.4): optimizer calls,
// optimization time, and run time as the table widens 12→48 columns.
func BenchmarkFigure10Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig10", res)
	}
}

// BenchmarkSection65BinaryTree regenerates the §6.5 comparison of the
// binary-tree restriction against all four merge types.
func BenchmarkSection65BinaryTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Section65(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "sec65", res)
	}
}

// BenchmarkFigure11Pruning regenerates Figure 11 (§6.6): the impact of the
// subsumption and monotonicity pruning techniques.
func BenchmarkFigure11Pruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig11", res)
	}
}

// BenchmarkFigure12StatsOverhead regenerates Figure 12 (§6.7): statistics
// creation time as a fraction of execution-time savings.
func BenchmarkFigure12StatsOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig12", res)
	}
}

// BenchmarkFigure13Skew regenerates Figure 13 (§6.8): speedup vs Zipfian data
// skew.
func BenchmarkFigure13Skew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig13", res)
	}
}

// BenchmarkFigure14PhysicalDesign regenerates Figure 14 (§6.9): run time as
// non-clustered indexes are added one per step, including the plan-adaptation
// effect on l_receiptdate.
func BenchmarkFigure14PhysicalDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure14(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "fig14", res)
	}
}

// BenchmarkOptimizeSC12 isolates pure optimization cost (no execution) for
// the 12-query SC workload — the paper's headline "optimization is cheap"
// claim in §6.4.
func BenchmarkOptimizeSC12(b *testing.B) {
	db := Open(nil)
	li, err := GenerateDataset("lineitem", 40_000, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	db.Register(li)
	queries := [][]string{
		{"l_partkey"}, {"l_suppkey"}, {"l_linenumber"}, {"l_quantity"},
		{"l_returnflag"}, {"l_linestatus"}, {"l_shipdate"}, {"l_commitdate"},
		{"l_receiptdate"}, {"l_shipinstruct"}, {"l_shipmode"}, {"l_comment"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Optimize("lineitem", queries, QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSharedScan measures the §5.1 shared-scan execution
// technique as an ablation: the same SC workload and strategy executed with
// sibling Group Bys batched into one pass vs executed one by one. DESIGN.md
// lists this as an orthogonal physical technique GB-MQO composes with.
func BenchmarkAblationSharedScan(b *testing.B) {
	db := Open(nil)
	li, err := GenerateDataset("lineitem", 40_000, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	db.Register(li)
	queries := [][]string{
		{"l_partkey"}, {"l_suppkey"}, {"l_linenumber"}, {"l_quantity"},
		{"l_returnflag"}, {"l_linestatus"}, {"l_shipdate"}, {"l_commitdate"},
		{"l_receiptdate"}, {"l_shipinstruct"}, {"l_shipmode"}, {"l_comment"},
	}
	variants := []struct {
		name string
		opts QueryOptions
	}{
		{"individual", QueryOptions{}},
		{"shared", QueryOptions{SharedScan: true}},
		{"shared-parallel", QueryOptions{SharedScan: true, Parallelism: -1}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, rep, err := db.Execute("lineitem", queries, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.RowsScanned), "rows-scanned")
			}
			b.Logf(`BENCH {"bench":"AblationSharedScan","variant":%q,"rows":%d,"queries":%d,"ns_per_op":%d}`,
				v.name, li.NumRows(), len(queries), b.Elapsed().Nanoseconds()/int64(b.N))
		})
	}
}

// BenchmarkGroupByHashParallel measures the morsel-driven parallel hash
// aggregate (the tentpole of the parallel-execution work) against its
// sequential baseline: worker counts 1/2/4/GOMAXPROCS crossed with a low-NDV
// key (l_shipmode, 7 groups — merge cost negligible, scan dominates) and a
// high-NDV key (l_partkey — large local tables stress the merge phase).
// workers=1 is the sequential operator (the parallel entry point falls back).
// Each sub-benchmark emits a machine-readable BENCH JSON line; the speedup
// acceptance check compares low-NDV rows_per_sec at 4 workers vs 1.
func BenchmarkGroupByHashParallel(b *testing.B) {
	rows := 1_000_000
	if testing.Short() {
		rows = 200_000
	}
	li, err := GenerateDataset("lineitem", rows, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	li.RowImage() // build the lazy scan image outside the timed region
	cols := map[string]int{}
	for j := 0; j < li.NumCols(); j++ {
		cols[li.Col(j).Name()] = j
	}
	aggs := []exec.Agg{exec.CountStar(), {Kind: exec.AggSum, Col: cols["l_quantity"], Name: "sq"}}
	workers := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		workers = append(workers, p)
	}
	for _, ndv := range []struct{ name, col string }{
		{"low", "l_shipmode"},
		{"high", "l_partkey"},
	} {
		for _, w := range workers {
			w := w
			ndv := ndv
			b.Run(fmt.Sprintf("ndv=%s/workers=%d", ndv.name, w), func(b *testing.B) {
				gcols := []int{cols[ndv.col]}
				var st exec.ParStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st = exec.GroupByHashParallel(li, gcols, aggs, "g", w)
				}
				b.StopTimer()
				rowsPerSec := float64(rows) * float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(rowsPerSec, "rows/s")
				b.Logf(`BENCH {"bench":"GroupByHashParallel","workers":%d,"effective_workers":%d,"ndv":%q,"rows":%d,"ns_per_op":%d,"rows_per_sec":%.0f}`,
					w, st.Workers, ndv.name, rows, b.Elapsed().Nanoseconds()/int64(b.N), rowsPerSec)
			})
		}
	}
}

// BenchmarkBudgetSweep measures the cost of graceful degradation: the same
// multi-group-by workload executed unbounded and then under a MemBudget of
// one quarter of the unbounded run's measured working set (PeakMem), which
// forces sort fallbacks and temp-table re-derivation. The gap between the
// two variants is the price of running memory-constrained; results are
// byte-identical either way (enforced by the engine's Budget tests). Each
// variant emits a machine-readable BENCH JSON line.
func BenchmarkBudgetSweep(b *testing.B) {
	rows := 200_000
	if testing.Short() {
		rows = 50_000
	}
	db := Open(nil)
	li, err := GenerateDataset("lineitem", rows, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	db.Register(li)
	queries := [][]string{
		{"l_returnflag", "l_linestatus", "l_shipmode", "l_shipdate"},
		{"l_returnflag", "l_linestatus"},
		{"l_linestatus", "l_shipmode"},
		{"l_shipmode", "l_shipdate"},
		{"l_returnflag"}, {"l_linestatus"}, {"l_shipmode"}, {"l_shipdate"},
	}
	// Calibrate: one unbounded run measures the working set the budgeted
	// variant is constrained to a quarter of.
	_, calib, err := db.Execute("lineitem", queries, QueryOptions{})
	if err != nil {
		b.Fatal(err)
	}
	workingSet := calib.PeakMem
	variants := []struct {
		name   string
		budget int64
	}{
		{"unbounded", 0},
		{"quarter-working-set", workingSet / 4},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var rep *ExecReport
			for i := 0; i < b.N; i++ {
				_, rep, err = db.Execute("lineitem", queries, QueryOptions{MemBudget: v.budget})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.PeakMem), "peak-mem-bytes")
			b.ReportMetric(float64(rep.SpillFallbacks), "spill-fallbacks")
			b.Logf(`BENCH {"bench":"BudgetSweep","variant":%q,"rows":%d,"queries":%d,"budget_bytes":%d,"peak_mem":%d,"spill_fallbacks":%d,"degradations":%d,"ns_per_op":%d}`,
				v.name, rows, len(queries), v.budget, rep.PeakMem, rep.SpillFallbacks,
				len(rep.Degradations), b.Elapsed().Nanoseconds()/int64(b.N))
		})
	}
}

// BenchmarkGroupByHash isolates the engine's hash aggregate over the base
// table (the substrate operation every plan is built from).
func BenchmarkGroupByHash(b *testing.B) {
	db := Open(nil)
	li, err := GenerateDataset("lineitem", 100_000, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	db.Register(li)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode"); err != nil {
			b.Fatal(err)
		}
	}
}
