package gbmqo

import (
	"strings"
	"testing"
)

func openWithLineitem(t *testing.T, rows int) *DB {
	t.Helper()
	db := Open(nil)
	li, err := GenerateDataset("lineitem", rows, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(li)
	return db
}

func TestOpenAndRegister(t *testing.T) {
	db := openWithLineitem(t, 1000)
	if got := db.Tables(); len(got) != 1 || got[0] != "lineitem" {
		t.Fatalf("tables = %v", got)
	}
	if _, ok := db.Table("lineitem"); !ok {
		t.Fatal("table not resolvable")
	}
}

func TestQueryGroupingSets(t *testing.T) {
	db := openWithLineitem(t, 3000)
	res, err := db.Query(`SELECT l_returnflag, l_linestatus, COUNT(*)
		FROM lineitem
		GROUP BY GROUPING SETS ((l_returnflag), (l_linestatus), (l_returnflag, l_linestatus))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 || res.ColIndex("grp_tag") < 0 {
		t.Fatalf("unexpected result shape: %v", res.ColNames())
	}
}

func TestQueryWithStrategiesAgree(t *testing.T) {
	db := openWithLineitem(t, 3000)
	q := `SELECT COUNT(*) FROM lineitem GROUP BY GROUPING SETS ((l_shipmode), (l_quantity), (l_shipmode, l_quantity))`
	counts := func(s Strategy) int {
		res, err := db.QueryWith(q, QueryOptions{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		return res.Table.NumRows()
	}
	if a, b := counts(Naive), counts(GBMQO); a != b {
		t.Fatalf("row counts differ: naive %d, gbmqo %d", a, b)
	}
}

func TestOptimizeAndExplainSQL(t *testing.T) {
	db := openWithLineitem(t, 5000)
	queries := [][]string{
		{"l_returnflag"}, {"l_linestatus"}, {"l_shipinstruct"}, {"l_shipmode"}, {"l_quantity"},
	}
	p, st, err := db.Optimize("lineitem", queries, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalCost > st.NaiveCost {
		t.Fatalf("optimizer worsened the plan: %v > %v", st.FinalCost, st.NaiveCost)
	}
	stmts, err := db.ExplainSQL(p)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(stmts, "\n")
	if !strings.Contains(joined, "GROUP BY") {
		t.Fatalf("explain output:\n%s", joined)
	}
	// Low-NDV columns should merge, producing at least one temp table.
	if !strings.Contains(joined, "INTO tmp_gb_") {
		t.Fatalf("expected a materialized intermediate:\n%s", joined)
	}
}

func TestExecuteReturnsPerSetResults(t *testing.T) {
	db := openWithLineitem(t, 2000)
	_, report, err := db.Execute("lineitem", [][]string{{"l_returnflag"}, {"l_linestatus"}}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 2 {
		t.Fatalf("results = %d sets", len(report.Results))
	}
}

func TestProfileDataQuality(t *testing.T) {
	db := Open(nil)
	cust, err := GenerateDataset("customer", 20_000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(cust)
	rep, err := db.Profile("customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Columns) != cust.NumCols() {
		t.Fatalf("profiled %d columns", len(rep.Columns))
	}
	var state, mi *ColumnProfile
	for i := range rep.Columns {
		switch rep.Columns[i].Name {
		case "State":
			state = &rep.Columns[i]
		case "MI":
			mi = &rep.Columns[i]
		}
	}
	if state == nil || state.Distinct <= 50 {
		t.Fatalf("State profile should expose >50 distinct values: %+v", state)
	}
	if mi == nil || mi.NullFraction <= 0 {
		t.Fatalf("MI profile should expose NULLs: %+v", mi)
	}
	if !strings.Contains(rep.String(), "State") {
		t.Fatal("report rendering missing columns")
	}
}

func TestAlmostKey(t *testing.T) {
	db := Open(nil)
	cust, err := GenerateDataset("customer", 10_000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(cust)
	distinct, rows, err := db.AlmostKey("customer", []string{"LastName", "FirstName", "MI", "Zip"})
	if err != nil {
		t.Fatal(err)
	}
	if distinct >= rows {
		t.Fatalf("expected almost-key (duplicates injected): %d combos, %d rows", distinct, rows)
	}
	if rows-distinct > rows/10 {
		t.Fatalf("too many duplicates for an almost-key: %d of %d", rows-distinct, rows)
	}
}

func TestCreateIndexAffectsPlans(t *testing.T) {
	db := openWithLineitem(t, 10_000)
	queries := [][]string{{"l_partkey"}}
	_, before, err := db.Execute("lineitem", queries, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("ix_partkey", "lineitem", []string{"l_partkey"}, false); err != nil {
		t.Fatal(err)
	}
	_, after, err := db.Execute("lineitem", queries, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if after.RowsScanned >= before.RowsScanned {
		t.Fatalf("index did not reduce scan: %d vs %d", after.RowsScanned, before.RowsScanned)
	}
	db.DropIndexes("lineitem")
}

func TestRegisterCSVRoundTrip(t *testing.T) {
	db := Open(nil)
	csv := "a,b\n1,x\n2,y\n,z\n"
	tab, err := db.RegisterCSV("t", []ColumnDef{
		{Name: "a", Typ: Int64}, {Name: "b", Typ: String},
	}, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || !tab.Col(0).IsNull(2) {
		t.Fatalf("CSV load wrong: %d rows", tab.NumRows())
	}
	res, err := db.Query("SELECT b, COUNT(*) FROM t GROUP BY b")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
}

func TestErrors(t *testing.T) {
	db := Open(nil)
	if _, _, err := db.Optimize("missing", [][]string{{"a"}}, QueryOptions{}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := GenerateDataset("bogus", 10, 1, 0); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := db.CreateIndex("ix", "missing", []string{"a"}, false); err == nil {
		t.Error("index on unknown table accepted")
	}
	li, _ := GenerateDataset("lineitem", 100, 1, 0)
	db.Register(li)
	if _, _, err := db.Optimize("lineitem", [][]string{{"nope"}}, QueryOptions{}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, _, err := db.AlmostKey("lineitem", []string{"nope"}); err == nil {
		t.Error("unknown key column accepted")
	}
	if _, err := db.ExplainSQL(&Plan{BaseName: "missing"}); err == nil {
		t.Error("explain of unknown base accepted")
	}
}

func TestExecuteQueriesPerSetAggs(t *testing.T) {
	db := openWithLineitem(t, 5000)
	li, _ := db.Table("lineitem")
	plan, rep, err := db.ExecuteQueries("lineitem", []GroupQuery{
		{Cols: []string{"l_returnflag"}, Aggs: []Agg{
			CountStar(),
			{Kind: AggSum, Col: li.ColIndex("l_quantity"), Name: "tq"},
		}},
		{Cols: []string{"l_linestatus"}},
		{Cols: []string{"l_returnflag", "l_linestatus"}},
	}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || len(rep.Results) != 3 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	flagRes := rep.Results[Cols(li.ColIndex("l_returnflag"))]
	if flagRes == nil || flagRes.ColIndex("tq") < 0 {
		t.Fatalf("per-set aggregate missing: %v", flagRes.ColNames())
	}
	statusRes := rep.Results[Cols(li.ColIndex("l_linestatus"))]
	if statusRes.ColIndex("tq") >= 0 {
		t.Fatalf("default-agg set leaked the union: %v", statusRes.ColNames())
	}
	// Totals must tie out.
	var total int64
	for i := 0; i < statusRes.NumRows(); i++ {
		total += statusRes.ColByName("cnt").Value(i).I
	}
	if total != int64(li.NumRows()) {
		t.Fatalf("counts sum to %d, want %d", total, li.NumRows())
	}
}

func TestExecuteQueriesErrors(t *testing.T) {
	db := Open(nil)
	if _, _, err := db.ExecuteQueries("missing", []GroupQuery{{Cols: []string{"a"}}}, QueryOptions{}); err == nil {
		t.Error("unknown table accepted")
	}
	li, _ := GenerateDataset("lineitem", 100, 1, 0)
	db.Register(li)
	if _, _, err := db.ExecuteQueries("lineitem", []GroupQuery{{Cols: []string{"nope"}}}, QueryOptions{}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestQueryOptionsPlumbed(t *testing.T) {
	db := openWithLineitem(t, 4000)
	res, err := db.QueryWith(
		`SELECT COUNT(*) FROM lineitem GROUP BY COMBI(2; l_returnflag, l_linestatus, l_shipmode)`,
		QueryOptions{BinaryOnly: true, UseCardinalityModel: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Table.NumRows() == 0 {
		t.Fatal("combi query produced nothing")
	}
}
