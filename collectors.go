package gbmqo

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gbmqo/internal/engine"
	"gbmqo/internal/obs"
)

// This file assembles the DB's observability from per-subsystem collectors:
// instead of one registerMetrics function threading every subsystem's
// counters through the shared registry, each subsystem (scheduler, engine,
// cache, appends, breakers, shards) implements obs.Collector and is gathered
// at scrape time. /metrics and /healthz are assembled from the registered
// set, each collector carries success+duration self-metrics, and new
// subsystems (the load harness, future ones) join by implementing one
// interface — no server changes required.

// Collector types re-exported from internal/obs so external subsystems (and
// cmd/gbmqo's load harness) can register their own.
type (
	// Collector is the interface a subsystem implements to surface metrics:
	// Name() identifies it, Collect(ch) sends every current sample.
	Collector = obs.Collector
	// Metric is one collected sample (full series name, help, kind, value).
	Metric = obs.Metric
	// CollectorHealth is one collector's status from the most recent gather.
	CollectorHealth = obs.CollectorHealth
)

// RegisterCollector adds a metrics collector to the DB's registry: its
// samples appear on /metrics, WriteMetrics and Metrics, and its status on
// /healthz, with per-collector success and duration self-metrics. Returns an
// error if a collector with the same name is already registered.
func (db *DB) RegisterCollector(c Collector) error { return db.obs.RegisterCollector(c) }

// CollectorHealth runs every registered collector once and reports each
// one's outcome — the /healthz "collectors" payload.
func (db *DB) CollectorHealth() []CollectorHealth { return db.obs.CheckCollectors() }

// HealthSections assembles the detailed /healthz sections from every
// registered collector that implements obs.HealthDetailer, keyed by the
// collector's section name ("batching", "appends", "breakers", …).
func (db *DB) HealthSections() map[string]any {
	out := map[string]any{}
	for _, c := range db.obs.Collectors() {
		hd, ok := c.(obs.HealthDetailer)
		if !ok {
			continue
		}
		if key, detail, include := hd.HealthDetail(); include {
			out[key] = detail
		}
	}
	return out
}

// registerMetrics builds and registers the DB's six subsystem collectors.
// Called once from Open; the scrape endpoints render the union of their
// samples plus anything registered later (DB.RegisterCollector).
func (db *DB) registerMetrics() {
	db.obs.RegisterCollector(&schedCollector{db: db})
	db.obs.RegisterCollector(newEngineCollector(db))
	db.obs.RegisterCollector(&cacheCollector{db: db})
	db.obs.RegisterCollector(newAppendsCollector(db))
	db.obs.RegisterCollector(&breakersCollector{db: db})
	db.obs.RegisterCollector(&shardCollector{db: db})
}

// schedCollector surfaces the micro-batching scheduler: it forwards the
// current batcher's private registry (the batcher is created lazily and
// replaced across StopBatching/StartBatching, so the indirection follows
// whichever instance is live) and contributes the legacy "batching" /healthz
// section.
type schedCollector struct{ db *DB }

func (s *schedCollector) Name() string { return "sched" }

func (s *schedCollector) Collect(ch chan<- obs.Metric) error {
	s.db.batchMu.Lock()
	b := s.db.batcher
	s.db.batchMu.Unlock()
	if b == nil {
		return nil // batching not started; nothing to report yet
	}
	return b.Collect(ch)
}

func (s *schedCollector) HealthDetail() (string, any, bool) {
	st, ok := s.db.BatchStats()
	if !ok {
		return "batching", nil, false
	}
	return "batching", map[string]any{
		"submitted":    st.Submitted,
		"deduped":      st.Deduped,
		"batches":      st.Batches,
		"queue_len":    st.QueueLen,
		"open_windows": st.OpenWindows,
		"shed":         st.Shed,
		"panics":       st.Panics,
	}, true
}

// engineCollector owns the execution-governance counters: a run observer
// accumulates them from every engine Run (SQL, direct and batched paths
// alike) onto a private registry, forwarded at scrape time.
type engineCollector struct{ reg *obs.Registry }

func newEngineCollector(db *DB) *engineCollector {
	r := obs.NewRegistry()
	runs := r.Counter("gbmqo_exec_runs_total", "engine runs completed")
	errs := r.Counter("gbmqo_exec_errors_total", "engine runs that returned an error")
	cancelled := r.Counter("gbmqo_exec_cancelled_total", "engine runs stopped by context cancellation or deadline")
	rows := r.Counter("gbmqo_exec_rows_scanned_total", "input rows consumed by Group By operators")
	queries := r.Counter("gbmqo_exec_queries_total", "Group By statements executed, covered cube/rollup levels included")
	spills := r.Counter("gbmqo_exec_spill_fallbacks_total", "hash aggregations degraded to sort under MemBudget")
	degr := r.Counter("gbmqo_exec_degradations_total", "graceful-degradation decisions taken under MemBudget")
	retries := r.Counter(`gbmqo_exec_retries_total{scope="request"}`, retryHelp)
	peak := r.Gauge("gbmqo_exec_peak_mem_bytes", "high-water mark of governed execution memory over all runs")
	kernels := map[string]*obs.Counter{}
	for _, kind := range []string{"hash", "sort", "dense", "radix"} {
		kernels[kind] = r.Counter(fmt.Sprintf("gbmqo_exec_kernel_total{kind=%q}", kind),
			"plan nodes executed, by physical aggregation kernel")
	}
	rehashes := r.Counter("gbmqo_exec_rehashes_avoided_total", "hash-table growth doublings skipped by NDV-based presizing")
	db.eng.SetRunObserver(func(res *engine.RunResult, err error) {
		if err != nil {
			errs.Inc()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				cancelled.Inc()
			}
		}
		if res == nil || res.Report == nil {
			return
		}
		rep := res.Report
		runs.Inc()
		rows.Add(float64(rep.RowsScanned))
		queries.Add(float64(rep.QueriesRun))
		spills.Add(float64(rep.SpillFallbacks))
		degr.Add(float64(len(rep.Degradations)))
		retries.Add(float64(len(rep.Retries)))
		peak.SetMax(float64(rep.PeakMem))
		for _, ku := range rep.Kernels {
			if c, ok := kernels[ku.Kernel]; ok {
				c.Inc()
			}
		}
		rehashes.Add(float64(rep.RehashesAvoided))
	})
	return &engineCollector{reg: r}
}

func (e *engineCollector) Name() string                       { return "engine" }
func (e *engineCollector) Collect(ch chan<- obs.Metric) error { return e.reg.Collect(ch) }

// retryHelp is shared by every gbmqo_exec_retries_total scope so the family's
// # HELP line is identical no matter which collector renders first.
const retryHelp = "transiently failed attempts retried with backoff, by scope: request = engine retry loop, shard = per-shard gather retries, hedge = hedged duplicate shard requests"

// cacheCollector samples the result cache's own atomic counters at scrape
// time — one Snapshot per gather instead of one per series.
type cacheCollector struct{ db *DB }

func (c *cacheCollector) Name() string { return "cache" }

func (c *cacheCollector) Collect(ch chan<- obs.Metric) error {
	rc := c.db.eng.ResultCache()
	if rc == nil {
		return nil // caching disabled; no series
	}
	s := rc.Snapshot()
	counter := func(name, help string, v int64) {
		ch <- obs.Metric{Name: name, Help: help, Kind: obs.KindCounter, Value: float64(v)}
	}
	counter("gbmqo_cache_hits_total", "exact cross-query cache hits", s.Hits)
	counter("gbmqo_cache_ancestor_hits_total", "queries answered by re-aggregating a cached superset", s.AncestorHits)
	counter("gbmqo_cache_misses_total", "cache lookups that found nothing usable", s.Misses)
	counter("gbmqo_cache_admissions_total", "results admitted to the cache", s.Admissions)
	counter("gbmqo_cache_rejections_total", "results the admission policy declined", s.Rejections)
	counter("gbmqo_cache_evictions_total", "entries displaced by admission pressure", s.Evictions)
	counter("gbmqo_cache_invalidations_total", "entries swept on table version changes", s.Invalidations)
	counter("gbmqo_cache_flight_leads_total", "singleflight computations led", s.FlightLeads)
	counter("gbmqo_cache_flight_shared_total", "callers that piggybacked on an in-flight computation", s.FlightShared)
	counter("gbmqo_cache_corruptions_total", "cache hits whose checksum failed verification (entry evicted and quarantined)", s.Corruptions)
	ch <- obs.Metric{Name: "gbmqo_cache_bytes", Help: "bytes resident in the cache", Kind: obs.KindGauge, Value: float64(s.Bytes)}
	ch <- obs.Metric{Name: "gbmqo_cache_entries", Help: "entries resident in the cache", Kind: obs.KindGauge, Value: float64(s.Entries)}
	return nil
}

// appendsCollector owns the streaming-append counters (fed by an append
// observer onto a private registry) and the legacy "appends" /healthz
// section (per-table refresh lag).
type appendsCollector struct {
	db  *DB
	reg *obs.Registry
}

func newAppendsCollector(db *DB) *appendsCollector {
	r := obs.NewRegistry()
	appends := r.Counter("gbmqo_appends_total", "streaming appends committed")
	appendErrs := r.Counter("gbmqo_append_errors_total", "streaming appends rejected or failed")
	appendRows := r.Counter("gbmqo_append_rows_total", "rows appended to base tables by streaming appends")
	refreshed := r.Counter("gbmqo_cache_refreshed_total", "cached entries rolled forward by delta aggregation after an append")
	lazyDropped := r.Counter("gbmqo_cache_lazy_dropped_total", "cached entries dropped at append time for lazy re-derivation from a maintained ancestor")
	refreshLat := r.Histogram("gbmqo_append_refresh_seconds", "wall time spent maintaining cached entries per append", obs.DurationBuckets)
	db.eng.SetAppendObserver(func(rep *engine.AppendReport, err error) {
		if err != nil {
			appendErrs.Inc()
			return
		}
		appends.Inc()
		appendRows.Add(float64(rep.Rows))
		refreshed.Add(float64(rep.Refreshed))
		lazyDropped.Add(float64(rep.Dropped))
		refreshLat.Observe(rep.RefreshWall.Seconds())
	})
	return &appendsCollector{db: db, reg: r}
}

func (a *appendsCollector) Name() string                       { return "appends" }
func (a *appendsCollector) Collect(ch chan<- obs.Metric) error { return a.reg.Collect(ch) }

func (a *appendsCollector) HealthDetail() (string, any, bool) {
	as := a.db.AppendStats()
	if len(as) == 0 {
		return "appends", nil, false
	}
	// Refresh lag per appended table: epoch position plus the cached entries
	// still pending lazy re-derivation from a maintained ancestor.
	ap := make(map[string]any, len(as))
	for name, st := range as {
		ap[name] = map[string]any{
			"version":      st.Version,
			"delta":        st.Delta,
			"rows":         st.Rows,
			"pending_lazy": st.PendingLazy,
		}
	}
	return "appends", ap, true
}

// breakersCollector snapshots every armed circuit breaker — per-table and
// per-shard alike — as labeled gauges, and carries the legacy "breakers"
// /healthz list.
type breakersCollector struct{ db *DB }

func (b *breakersCollector) Name() string { return "breakers" }

func (b *breakersCollector) Collect(ch chan<- obs.Metric) error {
	for _, br := range b.db.BreakerStates() {
		ch <- obs.Metric{
			Name: fmt.Sprintf("gbmqo_breaker_state{name=%q}", br.Name),
			Help: "circuit breaker state (0 closed, 1 half-open, 2 open)",
			Kind: obs.KindGauge, Value: breakerStateValue(br.State),
		}
		ch <- obs.Metric{
			Name: fmt.Sprintf("gbmqo_breaker_failures{name=%q}", br.Name),
			Help: "failures in the breaker's sliding window",
			Kind: obs.KindGauge, Value: float64(br.Failures),
		}
		ch <- obs.Metric{
			Name: fmt.Sprintf("gbmqo_breaker_samples{name=%q}", br.Name),
			Help: "samples in the breaker's sliding window",
			Kind: obs.KindGauge, Value: float64(br.Samples),
		}
	}
	return nil
}

func breakerStateValue(s BreakerState) float64 {
	switch s {
	case BreakerHalfOpen:
		return 1
	case BreakerOpen:
		return 2
	default:
		return 0
	}
}

func (b *breakersCollector) HealthDetail() (string, any, bool) {
	br := b.db.BreakerStates()
	if len(br) == 0 {
		return "breakers", nil, false
	}
	list := make([]map[string]any, len(br))
	for i, s := range br {
		e := map[string]any{
			"table":    s.Name,
			"state":    s.State.String(),
			"failures": s.Failures,
			"samples":  s.Samples,
		}
		if s.RetryAfter > 0 {
			e["retry_after_ms"] = float64(s.RetryAfter) / float64(time.Millisecond)
		}
		if s.LastFailure != "" {
			e["last_failure"] = s.LastFailure
		}
		list[i] = e
	}
	return "breakers", list, true
}

// shardCollector forwards the scatter-gather coordinator's registry while
// sharding is enabled. Disabled, it still emits the shard- and hedge-scoped
// retry series at zero so the gbmqo_exec_retries_total family always renders
// all three scopes (the request scope lives on the engine collector).
type shardCollector struct{ db *DB }

func (s *shardCollector) Name() string { return "shard" }

func (s *shardCollector) Collect(ch chan<- obs.Metric) error {
	if co := s.db.shardCoordinator(); co != nil {
		return co.Collect(ch)
	}
	for _, scope := range []string{"shard", "hedge"} {
		ch <- obs.Metric{
			Name: fmt.Sprintf("gbmqo_exec_retries_total{scope=%q}", scope),
			Help: retryHelp, Kind: obs.KindCounter,
		}
	}
	return nil
}
