module gbmqo

go 1.22
