// Package gbmqo is a Go implementation of "Efficient Computation of Multiple
// Group By Queries" (Chen & Narasayya, SIGMOD 2005): a cost-based,
// bottom-up multi-query optimizer for sets of Group By queries over one
// relation, together with the columnar execution engine, statistics,
// physical-design simulation and SQL surface needed to run it end to end.
//
// The typical flow:
//
//	db := gbmqo.Open(nil)
//	db.Register(myTable)                       // or db.RegisterCSV / datagen
//	res, err := db.Query(`SELECT l_shipmode, COUNT(*) FROM lineitem
//	                      GROUP BY GROUPING SETS ((l_shipmode), (l_returnflag))`)
//
// Lower-level entry points expose the optimizer directly: Optimize returns
// the logical plan (which Group By results to materialize and in what order),
// ExplainSQL renders it as the SQL script a client-side implementation would
// submit (§5.2 of the paper), and Profile runs the paper's motivating
// data-quality scenario.
package gbmqo

import (
	"context"
	"fmt"
	"io"
	"log"
	"strings"
	"sync"
	"time"

	"gbmqo/internal/cache"
	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/datagen"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/index"
	"gbmqo/internal/obs"
	"gbmqo/internal/plan"
	"gbmqo/internal/sched"
	"gbmqo/internal/shard"
	"gbmqo/internal/sql"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// Re-exported storage types. External callers build tables through these.
type (
	// Table is a named, columnar, dictionary-encoded relation.
	Table = table.Table
	// ColumnDef declares one column of a schema.
	ColumnDef = table.ColumnDef
	// Value is one typed cell.
	Value = table.Value
	// Type enumerates column types.
	Type = table.Type
	// Set is a set of column ordinals identifying a Group By query.
	Set = colset.Set
	// Plan is a logical plan: a tree of Group By queries rooted at the base
	// relation, with intermediate results materialized as temp tables.
	Plan = plan.Plan
	// SearchStats reports the optimizer's search effort.
	SearchStats = core.SearchStats
	// ExecReport accounts one plan execution.
	ExecReport = engine.ExecReport
	// Strategy selects a multi-group-by planning strategy.
	Strategy = engine.Strategy
	// ExecError is the typed error an isolated operator failure (including a
	// panic inside a parallel worker) surfaces as, naming the failing step and
	// plan node. Unwrap with errors.As.
	ExecError = exec.ExecError
	// Degradation records one graceful-degradation decision taken under a
	// MemBudget (see ExecReport.Degradations).
	Degradation = engine.Degradation
	// DegradeKind classifies a Degradation.
	DegradeKind = engine.DegradeKind
	// CacheStats is a point-in-time snapshot of the cross-query result cache
	// (see DB.CacheStats).
	CacheStats = cache.Stats
	// CacheCounters reports how the result cache served one request (see
	// ExecReport.Cache).
	CacheCounters = engine.CacheCounters
	// RetryAttempt records one retried execution attempt: the error, its
	// classification, the backoff slept, and the degradation modes applied to
	// the next attempt (see ExecReport.Retries).
	RetryAttempt = engine.RetryAttempt
	// ErrClass classifies an execution error for retry purposes (see Classify).
	ErrClass = exec.ErrClass
)

// Error classes (see Classify).
const (
	// ClassTransient: an isolated operator failure (ExecError); retryable.
	ClassTransient = exec.ClassTransient
	// ClassFatal: a planning or catalog error; retrying cannot help.
	ClassFatal = exec.ClassFatal
	// ClassCaller: context cancellation or deadline; the caller gave up.
	ClassCaller = exec.ClassCaller
)

// Classify reports how an execution error should be treated: transient
// failures are worth retrying, fatal ones are not, and caller-initiated
// cancellations must never be retried or counted against a circuit breaker.
func Classify(err error) ErrClass { return exec.Classify(err) }

// Degradation kinds a budget-constrained execution can record.
const (
	// DegradeSortAgg: hash aggregation replaced by sort-based aggregation.
	DegradeSortAgg = engine.DegradeSortAgg
	// DegradeUnshare: shared scan split into individual passes.
	DegradeUnshare = engine.DegradeUnshare
	// DegradeRederive: temp-table materialization skipped; children re-derive
	// from the base relation.
	DegradeRederive = engine.DegradeRederive
)

// Column types.
const (
	Int64   = table.TInt64
	Float64 = table.TFloat64
	String  = table.TString
	Date    = table.TDate
)

// Value constructors.
var (
	// IntVal builds a BIGINT value.
	IntVal = table.Int
	// FloatVal builds a FLOAT value.
	FloatVal = table.Float
	// StrVal builds a VARCHAR value.
	StrVal = table.Str
	// DateVal builds a DATE value from days since epoch.
	DateVal = table.Date
	// NullVal builds a NULL of the given type.
	NullVal = table.Null
)

// Planning strategies.
const (
	// Naive computes every Group By directly from the base relation.
	Naive = engine.StrategyNaive
	// GroupingSets emulates the commercial GROUPING SETS plan the paper
	// measured (§6.1).
	GroupingSets = engine.StrategyGroupingSets
	// GBMQO is the paper's hill-climbing optimizer (the default).
	GBMQO = engine.StrategyGBMQO
	// Exhaustive finds the optimal binary plan (small inputs only, §6.3).
	Exhaustive = engine.StrategyExhaustive
)

// NewTable creates an empty table with the given schema.
func NewTable(name string, defs []ColumnDef) *Table { return table.New(name, defs) }

// Agg is one aggregate column specification (see the AggXxx kinds). Col is
// the source column ordinal on the base table; Name is the output column.
type Agg = exec.Agg

// AggKind enumerates aggregate functions.
type AggKind = exec.AggKind

// Aggregate kinds.
const (
	AggCountStar = exec.AggCountStar
	AggCount     = exec.AggCount
	AggSum       = exec.AggSum
	AggMin       = exec.AggMin
	AggMax       = exec.AggMax
)

// CountStar is the COUNT(*) aggregate, the paper's default.
func CountStar() Agg { return exec.CountStar() }

// GroupQuery is one Group By request with its own aggregates (§7.2 allows
// different queries to carry different aggregates; intermediates then hold
// the union).
type GroupQuery struct {
	// Cols are the grouping column names.
	Cols []string
	// Aggs are this query's aggregates (nil = COUNT(*)).
	Aggs []Agg
}

// Cols builds a Set from column ordinals.
func Cols(ords ...int) Set { return colset.Of(ords...) }

// Config tunes a DB.
type Config struct {
	// Estimator selects the NDV estimation method (default GEE sampling).
	Estimator stats.Estimator
	// SampleSize bounds statistics samples (default 10 000 rows).
	SampleSize int
	// Seed makes sampling deterministic.
	Seed int64
	// CacheBytes, when positive, enables the cross-query result cache with
	// this byte budget: Group By results survive across Query calls and
	// answer later queries exactly or by re-aggregation from a cached
	// superset grouping (see DESIGN.md "Cross-query result cache"). 0
	// disables caching.
	CacheBytes int64
}

// DB is the top-level handle: a catalog of tables plus the optimizer and
// execution engine.
//
// A DB is safe for concurrent use once its tables are registered: queries,
// Submit calls and stats reads (CacheStats, Metrics, WriteMetrics) may run
// from any number of goroutines. Registering or replacing tables and building
// indexes are not synchronized with running queries — do schema changes
// before serving traffic.
type DB struct {
	eng *engine.Engine
	obs *obs.Registry

	// batchMu guards the lazily started micro-batching scheduler (see
	// DB.Submit and DB.StartBatching in submit.go).
	batchMu   sync.Mutex
	batcher   *sched.Batcher
	batchOpts BatchOptions

	// shardMu guards the scatter-gather coordinator (see DB.EnableSharding in
	// sharding.go).
	shardMu sync.Mutex
	shards  *shard.Coordinator

	// dur is the crash-durability layer (WAL + snapshots), attached only by
	// OpenDurable; nil for in-memory DBs. See durable.go.
	dur *durability
}

// Open creates an empty DB. A nil config selects sampling-based statistics
// with defaults.
func Open(cfg *Config) *DB {
	c := Config{Estimator: stats.GEE, Seed: 1}
	if cfg != nil {
		c = *cfg
	}
	db := &DB{
		eng: engine.New(stats.NewService(c.Estimator, c.SampleSize, c.Seed)),
		obs: obs.NewRegistry(),
	}
	if c.CacheBytes > 0 {
		db.eng.SetCache(cache.New(cache.Config{MaxBytes: c.CacheBytes}))
	}
	db.registerMetrics()
	obs.PublishExpvar(db.obs)
	return db
}

// CacheStats snapshots the cross-query result cache's counters and residency.
// ok is false when no cache is configured (Config.CacheBytes == 0).
//
// CacheStats is safe to call while queries and Submit batches are running on
// other goroutines: every counter in the snapshot is read atomically, and
// residency (Bytes, Entries) is read under the cache's own lock. The snapshot
// is a consistent point-in-time view of each individual counter, not of the
// whole set — a query completing mid-snapshot may be reflected in Hits but
// not yet in Bytes.
func (db *DB) CacheStats() (st CacheStats, ok bool) {
	c := db.eng.ResultCache()
	if c == nil {
		return CacheStats{}, false
	}
	return c.Snapshot(), true
}

// Register adds (or replaces) a table in the catalog. On a durable DB (see
// OpenDurable) the registration is snapshotted synchronously: it is on disk
// by the time Register returns. Register cannot report a snapshot failure —
// durable callers that must know whether the registration actually persisted
// should use RegisterDurable; Register logs the failure instead of swallowing
// it.
func (db *DB) Register(t *Table) {
	if db.dur != nil {
		if err := db.registerDurable(t); err != nil {
			log.Printf("gbmqo: Register(%q): registration is NOT durable: %v", t.Name(), err)
		}
		return
	}
	db.eng.Catalog().Register(t)
}

// RegisterDurable adds (or replaces) a table in the catalog and returns only
// after the registration is on disk. A non-nil error means the table IS
// registered in memory but NOT durable — a crash before the next successful
// snapshot loses it. On a non-durable DB it behaves like Register and returns
// nil.
func (db *DB) RegisterDurable(t *Table) error {
	if db.dur != nil {
		return db.registerDurable(t)
	}
	db.eng.Catalog().Register(t)
	return nil
}

// RegisterCSV loads a table from CSV (header row required) and registers it.
func (db *DB) RegisterCSV(name string, defs []ColumnDef, r io.Reader) (*Table, error) {
	t, err := table.ReadCSV(name, defs, r)
	if err != nil {
		return nil, err
	}
	db.Register(t)
	return t, nil
}

// Table resolves a registered table.
func (db *DB) Table(name string) (*Table, bool) { return db.eng.Catalog().Table(name) }

// Tables lists registered table names.
func (db *DB) Tables() []string { return db.eng.Catalog().TableNames() }

// CreateIndex builds a (non-)clustered index on the named columns, making the
// engine and cost model physical-design aware (§6.9).
func (db *DB) CreateIndex(ixName, tableName string, cols []string, clustered bool) error {
	t, ok := db.eng.Catalog().Table(tableName)
	if !ok {
		return fmt.Errorf("gbmqo: unknown table %q", tableName)
	}
	ords, err := db.resolveCols(t, cols)
	if err != nil {
		return err
	}
	return db.eng.Catalog().AddIndex(index.Build(t, ixName, ords, clustered))
}

// DropIndexes removes every index on a table.
func (db *DB) DropIndexes(tableName string) { db.eng.Catalog().DropIndexes(tableName) }

// QueryOptions tunes SQL execution.
type QueryOptions struct {
	// Strategy selects the planner (default GBMQO).
	Strategy Strategy
	// UseCardinalityModel switches to the §3.2.1 cost model.
	UseCardinalityModel bool
	// BinaryOnly restricts SubPlanMerge to type (b) (§4.2).
	BinaryOnly bool
	// DisablePruning turns off the §4.3 pruning techniques (on by default).
	DisablePruning bool
	// ConsiderCubeRollup enables the §7.1 CUBE/ROLLUP plan alternatives.
	ConsiderCubeRollup bool
	// StorageBudget bounds intermediate temp-table bytes (§4.4.2); 0 = off.
	StorageBudget float64
	// SharedScan executes sibling Group Bys in one pass over their common
	// parent (the §5.1 shared-scan technique; orthogonal to plan choice).
	SharedScan bool
	// Parallel executes independent sub-plans concurrently (one goroutine per
	// sub-plan, bounded by GOMAXPROCS).
	Parallel bool
	// Parallelism caps the morsel workers used *inside* one Group By operator
	// (intra-operator parallel hash aggregation; composes with Parallel's
	// inter-sub-plan concurrency): 0 disables it, negative selects GOMAXPROCS,
	// positive values are used as-is. Inputs below the engine's size cutoff
	// stay sequential regardless, so small temp-table re-aggregations never
	// pay morsel overhead.
	Parallelism int
	// Context cancels or deadlines execution: operator loops poll it at every
	// morsel and row-batch boundary, so cancellation takes effect within one
	// morsel's worth of work, drops every temp table, and leaves the catalog
	// unchanged. Nil means context.Background().
	Context context.Context
	// MemBudget bounds, in bytes, the execution working state held at once
	// (hash tables, accumulator state, materialized temps). Exceeding it
	// triggers graceful degradation — sort-based aggregation, un-shared
	// scans, re-deriving subtrees from the base relation — rather than
	// failure; decisions taken are recorded in ExecReport.Degradations.
	// 0 means unlimited (peak memory is still measured in ExecReport.PeakMem).
	MemBudget int64
	// NoCache bypasses the cross-query result cache for this query (no
	// lookup, no admission). Irrelevant when the DB has no cache configured.
	NoCache bool
	// MaxAttempts caps execution attempts: a transiently failing run (an
	// isolated operator fault, see ExecError) is retried with exponential
	// backoff up to this many total attempts, each retry descending the
	// degradation ladder (sequential, then unshared / no-retain / no-cache)
	// so the retry avoids whatever machinery the fault hit. 0 or 1 disables
	// retry. Attempts and per-retry detail land in ExecReport.Attempts and
	// ExecReport.Retries. Fatal errors and caller cancellations never retry.
	MaxAttempts int
	// RetryBackoff is the base backoff before the first retry, doubled per
	// attempt with jitter (default 1ms, capped at 100ms).
	RetryBackoff time.Duration
	// AllowPartial opts this query into partial results under sharded
	// execution (see DB.EnableSharding): when a shard is open or exhausts its
	// retries, the surviving shards' merged result is returned with the gap
	// attributed in ExecReport.ShardsFailed and ExecReport.ShardCoverage
	// instead of failing the query. Without it a shard failure surfaces as a
	// typed *ShardError. No effect when sharding is not enabled.
	AllowPartial bool
}

func (db *DB) sqlOptions(o QueryOptions) sql.Options {
	opts := sql.Options{
		Strategy:     o.Strategy,
		Context:      o.Context,
		MemBudget:    o.MemBudget,
		UseCache:     !o.NoCache,
		Retry:        engine.RetryPolicy{MaxAttempts: o.MaxAttempts, BaseBackoff: o.RetryBackoff},
		Parallel:     o.Parallel,
		Parallelism:  o.Parallelism,
		AllowPartial: o.AllowPartial,
	}
	if o.UseCardinalityModel {
		opts.Model = engine.ModelCardinality
	}
	opts.Core = core.Options{
		BinaryOnly:         o.BinaryOnly,
		PruneSubsumption:   !o.DisablePruning,
		PruneMonotonic:     !o.DisablePruning,
		ConsiderCubeRollup: o.ConsiderCubeRollup,
		StorageBudget:      o.StorageBudget,
	}
	return opts
}

// QueryResult is an executed SQL query.
type QueryResult struct {
	// Table is the result set (GROUPING SETS union shape for grouped queries).
	Table *Table
	// Plan is the logical plan chosen for the multi-group-by part.
	Plan *Plan
	// Search reports optimizer effort.
	Search SearchStats
	// Report accounts the execution (nil for non-grouped statements):
	// governance counters, degradations, and per-node kernel attribution
	// (see ExecReport.Kernels).
	Report *ExecReport
}

// Query runs a SQL statement with default options and returns its result set.
func (db *DB) Query(statement string) (*Table, error) {
	res, err := db.QueryWith(statement, QueryOptions{})
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// QueryWith runs a SQL statement with explicit options.
func (db *DB) QueryWith(statement string, o QueryOptions) (*QueryResult, error) {
	res, err := sql.Run(db.eng, statement, db.sqlOptions(o))
	if err != nil {
		return nil, err
	}
	return &QueryResult{Table: res.Table, Plan: res.Plan, Search: res.Search, Report: res.Report}, nil
}

// Optimize plans a set of Group By queries (named columns, one list per
// query) without executing them.
func (db *DB) Optimize(tableName string, queries [][]string, o QueryOptions) (*Plan, SearchStats, error) {
	req, err := db.buildRequest(tableName, queries, o)
	if err != nil {
		return nil, SearchStats{}, err
	}
	p, st, _, err := db.eng.Plan(req)
	return p, st, err
}

// Execute plans and runs a set of Group By queries, returning per-set result
// tables keyed by Set.
func (db *DB) Execute(tableName string, queries [][]string, o QueryOptions) (*Plan, *ExecReport, error) {
	req, err := db.buildRequest(tableName, queries, o)
	if err != nil {
		return nil, nil, err
	}
	run, err := db.eng.Run(req)
	if err != nil {
		return nil, nil, err
	}
	return run.Plan, run.Report, nil
}

// ExecuteQueries plans and runs Group By requests that each carry their own
// aggregates (§7.2): materialized intermediates hold the union of the
// aggregates their descendants need, and every result is projected back to
// its query's own aggregate list.
func (db *DB) ExecuteQueries(tableName string, queries []GroupQuery, o QueryOptions) (*Plan, *ExecReport, error) {
	t, ok := db.eng.Catalog().Table(tableName)
	if !ok {
		return nil, nil, fmt.Errorf("gbmqo: unknown table %q", tableName)
	}
	perSet := make(map[Set][]Agg, len(queries))
	sets := make([]Set, 0, len(queries))
	for _, q := range queries {
		ords, err := db.resolveCols(t, q.Cols)
		if err != nil {
			return nil, nil, err
		}
		set := colset.Of(ords...)
		sets = append(sets, set)
		if len(q.Aggs) > 0 {
			perSet[set] = q.Aggs
		}
	}
	opts := db.sqlOptions(o)
	run, err := db.eng.Run(engine.Request{
		Table:        tableName,
		Sets:         sets,
		Strategy:     o.Strategy,
		Model:        opts.Model,
		Core:         opts.Core,
		SharedScan:   o.SharedScan,
		Parallel:     o.Parallel,
		Parallelism:  o.Parallelism,
		Context:      o.Context,
		MemBudget:    o.MemBudget,
		UseCache:     !o.NoCache,
		Retry:        opts.Retry,
		PerSetAggs:   perSet,
		AllowPartial: o.AllowPartial,
	})
	if err != nil {
		return nil, nil, err
	}
	return run.Plan, run.Report, nil
}

// ExplainSQL renders a plan as the SQL script a client-side implementation
// would submit (§5.2), in the §4.4 storage-minimizing order.
func (db *DB) ExplainSQL(p *Plan) ([]string, error) {
	t, ok := db.eng.Catalog().Table(p.BaseName)
	if !ok {
		return nil, fmt.Errorf("gbmqo: unknown base table %q", p.BaseName)
	}
	env, err := db.eng.CostEnv(t.Name())
	if err != nil {
		return nil, err
	}
	size := func(s Set) float64 { return env.NDV(s) * (env.Width(s) + 8) }
	return plan.EmitSQL(p, size, plan.SQLOptions{}), nil
}

func (db *DB) buildRequest(tableName string, queries [][]string, o QueryOptions) (engine.Request, error) {
	t, ok := db.eng.Catalog().Table(tableName)
	if !ok {
		return engine.Request{}, fmt.Errorf("gbmqo: unknown table %q", tableName)
	}
	sets := make([]Set, 0, len(queries))
	for _, q := range queries {
		ords, err := db.resolveCols(t, q)
		if err != nil {
			return engine.Request{}, err
		}
		sets = append(sets, colset.Of(ords...))
	}
	opts := db.sqlOptions(o)
	return engine.Request{
		Table:        tableName,
		Sets:         sets,
		Strategy:     o.Strategy,
		Model:        opts.Model,
		Core:         opts.Core,
		SharedScan:   o.SharedScan,
		Parallel:     o.Parallel,
		Parallelism:  o.Parallelism,
		Context:      o.Context,
		MemBudget:    o.MemBudget,
		UseCache:     !o.NoCache,
		Retry:        opts.Retry,
		AllowPartial: o.AllowPartial,
	}, nil
}

func (db *DB) resolveCols(t *Table, names []string) ([]int, error) {
	ords := make([]int, 0, len(names))
	for _, n := range names {
		found := -1
		for i := 0; i < t.NumCols(); i++ {
			if strings.EqualFold(t.Col(i).Name(), n) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("gbmqo: table %q has no column %q", t.Name(), n)
		}
		ords = append(ords, found)
	}
	return ords, nil
}

// GenerateDataset builds one of the bundled synthetic datasets: "lineitem"
// (TPC-H-like), "sales", "nref", or "customer". zipf only affects lineitem.
func GenerateDataset(kind string, rows int, seed int64, zipf float64) (*Table, error) {
	switch strings.ToLower(kind) {
	case "lineitem", "tpch":
		return datagen.Lineitem(datagen.LineitemOpts{Rows: rows, Seed: seed, Zipf: zipf}), nil
	case "sales":
		return datagen.Sales(datagen.SalesOpts{Rows: rows, Seed: seed}), nil
	case "nref":
		return datagen.NRef(datagen.NRefOpts{Rows: rows, Seed: seed}), nil
	case "customer", "customers":
		return datagen.Customers(datagen.CustomersOpts{Rows: rows, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("gbmqo: unknown dataset %q (want lineitem, sales, nref, or customer)", kind)
	}
}
