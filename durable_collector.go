package gbmqo

import (
	"time"

	"gbmqo/internal/obs"
)

// durabilityCollector surfaces the WAL writer, snapshot loop, and recovery
// outcome on /metrics, and contributes the "durability" /healthz section
// (fsync policy and lag, replay status, snapshot age). Registered only by
// OpenDurable — in-memory DBs emit no durability series.
type durabilityCollector struct{ db *DB }

func (c *durabilityCollector) Name() string { return "durability" }

func (c *durabilityCollector) Collect(ch chan<- obs.Metric) error {
	d := c.db.dur
	if d == nil {
		return nil
	}
	st := d.w.Stats()
	counter := func(name, help string, v float64) {
		ch <- obs.Metric{Name: name, Help: help, Kind: obs.KindCounter, Value: v}
	}
	gauge := func(name, help string, v float64) {
		ch <- obs.Metric{Name: name, Help: help, Kind: obs.KindGauge, Value: v}
	}
	counter("gbmqo_wal_appends_total", "records written to the append-ahead log (abort markers included)", float64(st.Appends))
	counter("gbmqo_wal_fsyncs_total", "fsyncs issued on the active WAL segment", float64(st.Fsyncs))
	counter("gbmqo_wal_bytes_total", "bytes framed into the append-ahead log", float64(st.Bytes))
	counter("gbmqo_wal_replayed_records_total", "committed WAL records re-applied by the last recovery", float64(d.recovery.ReplayedRecords))
	counter("gbmqo_wal_truncated_tails_total", "torn or corrupt WAL tails truncated by the last recovery", float64(d.recovery.TruncatedTails))
	counter("gbmqo_snapshot_writes_total", "table snapshots written since open", float64(d.snapWrites.Load()))
	counter("gbmqo_snapshot_errors_total", "snapshot or manifest writes that failed", float64(d.snapErrors.Load()))
	syncFailed := 0.0
	if st.SyncErr != nil {
		syncFailed = 1.0
	}
	gauge("gbmqo_wal_sync_failed", "1 while the WAL refuses appends after a background fsync failure", syncFailed)
	gauge("gbmqo_wal_dirty_bytes", "WAL bytes written but not yet fsynced", float64(st.DirtyBytes))
	gauge("gbmqo_wal_segments", "WAL segment files on disk", float64(st.Segments))
	gauge("gbmqo_snapshot_age_seconds", "seconds since the last successful snapshot", c.snapshotAge())
	return nil
}

// snapshotAge reports seconds since the last snapshot this process wrote, or
// -1 when it has not written one yet (recovery-only so far).
func (c *durabilityCollector) snapshotAge() float64 {
	last := c.db.dur.lastSnapUnix.Load()
	if last == 0 {
		return -1
	}
	return time.Since(time.Unix(0, last)).Seconds()
}

func (c *durabilityCollector) HealthDetail() (string, any, bool) {
	d := c.db.dur
	if d == nil {
		return "durability", nil, false
	}
	st := d.w.Stats()
	detail := map[string]any{
		"fsync_policy":     d.opts.Fsync,
		"wal_appends":      st.Appends,
		"wal_fsyncs":       st.Fsyncs,
		"wal_dirty_bytes":  st.DirtyBytes,
		"wal_segments":     st.Segments,
		"snapshot_writes":  d.snapWrites.Load(),
		"snapshot_errors":  d.snapErrors.Load(),
		"snapshot_age_sec": c.snapshotAge(),
		"replay": map[string]any{
			"snapshot_loaded":  d.recovery.SnapshotLoaded,
			"snapshot_wal_seq": d.recovery.SnapshotWalSeq,
			"replayed_records": d.recovery.ReplayedRecords,
			"skipped_records":  d.recovery.SkippedRecords,
			"truncated_tails":  d.recovery.TruncatedTails,
			"rewarmed_entries": d.recovery.RewarmedEntries,
			"quarantined":      d.recovery.QuarantinedEntries,
			"wall_ms":          float64(d.recovery.Wall) / float64(time.Millisecond),
		},
	}
	if st.SyncErr != nil {
		detail["fsync_error"] = st.SyncErr.Error()
	}
	// Fsync lag: how long acknowledged-but-unsynced bytes have been exposed.
	// Zero dirty bytes means no lag regardless of when the last sync ran.
	if st.DirtyBytes > 0 && !st.LastSync.IsZero() {
		detail["fsync_lag_ms"] = float64(time.Since(st.LastSync)) / float64(time.Millisecond)
	} else {
		detail["fsync_lag_ms"] = 0.0
	}
	return "durability", detail, true
}
