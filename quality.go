package gbmqo

import (
	"fmt"
	"strings"

	"gbmqo/internal/colset"
	"gbmqo/internal/exec"
	"gbmqo/internal/stats"
)

// ColumnProfile summarizes one column's value distribution — the aggregates
// the paper's data analysts compute to "evaluate whether the data satisfies
// the expected norm" (§1).
type ColumnProfile struct {
	Name string
	Type Type
	// Distinct is the exact number of distinct non-null values.
	Distinct int64
	// NullFraction is the fraction of NULL rows.
	NullFraction float64
	// TopValue and TopCount describe the most frequent non-null value.
	TopValue string
	TopCount int64
	// Min and Max are the extreme non-null values (rendered).
	Min string
	Max string
}

// QualityReport is a data-quality profile of a relation: one frequency
// distribution per column, computed as a single multi-Group-By request so
// GB-MQO shares work across columns.
type QualityReport struct {
	Table   string
	Rows    int
	Columns []ColumnProfile
	// Plan is the logical plan used to compute the distributions.
	Plan *Plan
	// Report accounts the execution.
	Report *ExecReport
}

// Profile computes single-column value distributions for the named columns
// (all columns when none are given) using the GB-MQO strategy.
func (db *DB) Profile(tableName string, cols ...string) (*QualityReport, error) {
	t, ok := db.eng.Catalog().Table(tableName)
	if !ok {
		return nil, fmt.Errorf("gbmqo: unknown table %q", tableName)
	}
	if len(cols) == 0 {
		cols = t.ColNames()
	}
	queries := make([][]string, len(cols))
	for i, c := range cols {
		queries[i] = []string{c}
	}
	p, report, err := db.Execute(tableName, queries, QueryOptions{Strategy: GBMQO})
	if err != nil {
		return nil, err
	}
	out := &QualityReport{Table: tableName, Rows: t.NumRows(), Plan: p, Report: report}
	for _, c := range cols {
		ords, err := db.resolveCols(t, []string{c})
		if err != nil {
			return nil, err
		}
		ord := ords[0]
		res := report.Results[colset.Of(ord)]
		if res == nil {
			return nil, fmt.Errorf("gbmqo: missing distribution for column %q", c)
		}
		out.Columns = append(out.Columns, profileFrom(t.Col(ord).Name(), t.Col(ord).Type(), res, t.NumRows()))
	}
	return out, nil
}

// profileFrom derives a ColumnProfile from a (value, cnt) distribution table.
func profileFrom(name string, typ Type, dist *Table, totalRows int) ColumnProfile {
	p := ColumnProfile{Name: name, Type: typ}
	valCol := dist.ColByName(name)
	cntCol := dist.ColByName("cnt")
	var nulls int64
	var minV, maxV Value
	seen := false
	for i := 0; i < dist.NumRows(); i++ {
		c := cntCol.Value(i).I
		if valCol.IsNull(i) {
			nulls += c
			continue
		}
		v := valCol.Value(i)
		p.Distinct++
		if c > p.TopCount {
			p.TopCount = c
			p.TopValue = v.String()
		}
		if !seen {
			minV, maxV, seen = v, v, true
		} else {
			if v.Compare(minV) < 0 {
				minV = v
			}
			if v.Compare(maxV) > 0 {
				maxV = v
			}
		}
	}
	if seen {
		p.Min, p.Max = minV.String(), maxV.String()
	}
	if totalRows > 0 {
		p.NullFraction = float64(nulls) / float64(totalRows)
	}
	return p
}

// Histogram is an equi-depth histogram (see internal/stats): exact per-value
// counts for small domains, depth-balanced buckets otherwise.
type Histogram = stats.Histogram

// Histogram builds an equi-depth histogram over one column — the other data-
// profiling primitive next to Profile. buckets <= 0 selects 32.
func (db *DB) Histogram(tableName, col string, buckets int) (*Histogram, error) {
	t, ok := db.eng.Catalog().Table(tableName)
	if !ok {
		return nil, fmt.Errorf("gbmqo: unknown table %q", tableName)
	}
	ords, err := db.resolveCols(t, []string{col})
	if err != nil {
		return nil, err
	}
	return stats.BuildHistogram(t, ords[0], buckets), nil
}

// String renders the report as an aligned table.
func (r *QualityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table %s: %d rows\n", r.Table, r.Rows)
	fmt.Fprintf(&b, "%-16s %-8s %10s %8s  %-24s %8s\n", "column", "type", "distinct", "null%", "top value", "count")
	for _, c := range r.Columns {
		top := c.TopValue
		if len(top) > 24 {
			top = top[:21] + "..."
		}
		fmt.Fprintf(&b, "%-16s %-8s %10d %7.2f%%  %-24s %8d\n",
			c.Name, c.Type, c.Distinct, c.NullFraction*100, top, c.TopCount)
	}
	return b.String()
}

// AlmostKey reports how close a column combination is to being a key: the
// number of distinct combinations, the row count, and the number of duplicate
// rows (rows − combinations). The paper's example: "the analyst may expect
// that (LastName, FirstName, M.I., Zip) is a key (or almost a key)".
func (db *DB) AlmostKey(tableName string, cols []string) (distinct, rows int, err error) {
	t, ok := db.eng.Catalog().Table(tableName)
	if !ok {
		return 0, 0, fmt.Errorf("gbmqo: unknown table %q", tableName)
	}
	ords, err := db.resolveCols(t, cols)
	if err != nil {
		return 0, 0, err
	}
	res := exec.GroupByHash(t, ords, []exec.Agg{exec.CountStar()}, "k")
	return res.NumRows(), t.NumRows(), nil
}
