package gbmqo

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/engine"
	"gbmqo/internal/fault"
	"gbmqo/internal/sched"
	"gbmqo/internal/sql"
	"gbmqo/internal/table"
)

// This file is the online entry point: instead of handing the optimizer a
// complete query set up front (ExecuteQueries), concurrent callers Submit
// individual Group By requests and an adaptive micro-batching scheduler
// groups near-simultaneous arrivals on the same table into one GB-MQO plan.
// See DESIGN.md "Online micro-batching" and internal/sched.

// Batching and per-request types re-exported from the scheduler.
type (
	// BatchInfo tells a Submit caller how its request was served (batch size,
	// dedup, queueing latency, result origin, modeled shared-vs-solo cost).
	BatchInfo = sched.BatchInfo
	// BatchStats is a point-in-time snapshot of scheduler activity.
	BatchStats = sched.Stats
	// SetOrigin attributes a grouping set's result to how it was produced.
	SetOrigin = engine.SetOrigin
	// OverloadError is the typed rejection adaptive load shedding returns:
	// queue state, the recent p95 batch latency that shrank the admission
	// limit, and a RetryAfter hint for clients. Matches ErrQueueFull under
	// errors.Is.
	OverloadError = sched.OverloadError
	// BreakerConfig tunes per-table circuit breakers (see DB.EnableBreakers).
	// The zero value selects defaults.
	BreakerConfig = fault.Config
	// BreakerSnapshot is one table breaker's observable state (see
	// DB.BreakerStates and GET /healthz).
	BreakerSnapshot = fault.Snapshot
	// BreakerState enumerates circuit-breaker states.
	BreakerState = fault.State
	// BreakerOpenError is the fail-fast rejection an open breaker returns,
	// carrying a RetryAfter hint.
	BreakerOpenError = fault.OpenError
)

// Circuit-breaker states.
const (
	// BreakerClosed: requests flow normally.
	BreakerClosed = fault.StateClosed
	// BreakerOpen: requests fail fast with *BreakerOpenError.
	BreakerOpen = fault.StateOpen
	// BreakerHalfOpen: one probe request is allowed through.
	BreakerHalfOpen = fault.StateHalfOpen
)

// Result origins (BatchInfo.Origin, ExecReport.Origins).
const (
	// OriginComputed: executed by this run's plan.
	OriginComputed = engine.OriginComputed
	// OriginCacheHit: served verbatim from the cross-query result cache.
	OriginCacheHit = engine.OriginCacheHit
	// OriginCacheAncestor: re-aggregated from a cached superset grouping.
	OriginCacheAncestor = engine.OriginCacheAncestor
	// OriginFlightShared: piggybacked on a concurrent identical computation.
	OriginFlightShared = engine.OriginFlightShared
)

// Batching errors.
var (
	// ErrBatcherClosed: Submit after StopBatching (or during shutdown).
	ErrBatcherClosed = sched.ErrClosed
	// ErrQueueFull: the scheduler's admission queue is at MaxQueue (or the
	// tighter adaptive limit; see OverloadError for the detailed form).
	ErrQueueFull = sched.ErrQueueFull
	// ErrDraining: the scheduler is draining for shutdown; in-flight batches
	// still deliver but new submissions are refused.
	ErrDraining = sched.ErrDraining
	// ErrBatchAborted: the submission's batch was aborted by a recovered
	// panic in the dispatch path.
	ErrBatchAborted = sched.ErrBatchAborted
)

// BatchOptions tunes the micro-batching scheduler (see DB.StartBatching).
// Zero values select the scheduler defaults (MaxBatch 16, MaxWait 2ms,
// IdleWait MaxWait/4, MaxQueue 4096).
type BatchOptions struct {
	// MaxBatch closes a window once it holds this many distinct queries.
	MaxBatch int
	// MaxWait closes a window this long after it opened — the ceiling on the
	// queueing latency a request can pay to ride a batch.
	MaxWait time.Duration
	// IdleWait closes a window early when no new request arrived for this
	// long.
	IdleWait time.Duration
	// MaxQueue bounds submissions waiting in open windows; beyond it Submit
	// fails fast with ErrQueueFull.
	MaxQueue int
	// ShedLatencyTarget enables adaptive load shedding: when the recent p95
	// batch execution latency exceeds this target, the admission limit shrinks
	// proportionally below MaxQueue and excess submissions fail fast with an
	// *OverloadError carrying a RetryAfter hint. 0 disables shedding (only
	// the hard MaxQueue bound applies).
	ShedLatencyTarget time.Duration
	// Exec are the query options batch runs execute under (strategy, shared
	// scan, parallelism, memory budget, cache bypass). Exec.Context is
	// ignored: a batch runs under its own context, cancelled only when every
	// subscriber has abandoned it.
	Exec QueryOptions
}

// StartBatching starts the micro-batching scheduler with explicit options.
// It is a no-op if batching is already running (the first configuration
// wins); use StopBatching first to reconfigure. Submit starts batching
// lazily with defaults, so calling StartBatching is only needed to override
// them.
func (db *DB) StartBatching(o BatchOptions) {
	db.batchMu.Lock()
	defer db.batchMu.Unlock()
	if db.batcher != nil {
		return
	}
	db.batchOpts = o
	db.batcher = sched.New(db.runBatch, sched.Config{
		MaxBatch:          o.MaxBatch,
		MaxWait:           o.MaxWait,
		IdleWait:          o.IdleWait,
		MaxQueue:          o.MaxQueue,
		ShedLatencyTarget: o.ShedLatencyTarget,
	})
}

// StopBatching flushes open windows, waits for in-flight batches, and stops
// the scheduler. Submissions racing with it fail with ErrBatcherClosed. A
// later Submit or StartBatching starts a fresh scheduler.
func (db *DB) StopBatching() {
	db.batchMu.Lock()
	b := db.batcher
	db.batcher = nil
	db.batchMu.Unlock()
	if b != nil {
		b.Close()
	}
}

// FlushBatches closes all open windows immediately without stopping the
// scheduler (tests and graceful drains).
func (db *DB) FlushBatches() {
	db.batchMu.Lock()
	b := db.batcher
	db.batchMu.Unlock()
	if b != nil {
		b.Flush()
	}
}

// BatchStats snapshots scheduler activity. ok is false when batching has
// never been started.
func (db *DB) BatchStats() (st BatchStats, ok bool) {
	db.batchMu.Lock()
	b := db.batcher
	db.batchMu.Unlock()
	if b == nil {
		return BatchStats{}, false
	}
	return b.Stats(), true
}

// batcherDefaults are the execution options a lazily started scheduler uses:
// shared scans and parallel sub-plans on, because batches exist to amortize
// scans across queries, and bounded retry on, because a batch failure fans
// out to every subscriber.
func batcherDefaults() BatchOptions {
	return BatchOptions{Exec: QueryOptions{SharedScan: true, Parallel: true, MaxAttempts: 3}}
}

// getBatcher returns the running scheduler, starting one with defaults on
// first use.
func (db *DB) getBatcher() *sched.Batcher {
	db.batchMu.Lock()
	defer db.batchMu.Unlock()
	if db.batcher == nil {
		db.batchOpts = batcherDefaults()
		db.batcher = sched.New(db.runBatch, sched.Config{})
	}
	return db.batcher
}

// runBatch executes one dispatched window through the engine: one GB-MQO
// plan over the union of the window's grouping sets, inheriting the DB's
// cache, governance and parallelism settings.
func (db *DB) runBatch(ctx context.Context, tableName string, sets []colset.Set, perSet map[colset.Set][]Agg) (*engine.RunResult, error) {
	db.batchMu.Lock()
	o := db.batchOpts.Exec
	db.batchMu.Unlock()
	opts := db.sqlOptions(o)
	return db.eng.Run(engine.Request{
		Table:        tableName,
		Sets:         sets,
		PerSetAggs:   perSet,
		Strategy:     o.Strategy,
		Model:        opts.Model,
		Core:         opts.Core,
		SharedScan:   o.SharedScan,
		Parallel:     o.Parallel,
		Parallelism:  o.Parallelism,
		Context:      ctx,
		MemBudget:    o.MemBudget,
		UseCache:     !o.NoCache,
		Retry:        opts.Retry,
		AllowPartial: o.AllowPartial,
	})
}

// Drain gracefully shuts down the micro-batching scheduler: new submissions
// fail fast (ErrDraining, then ErrBatcherClosed), open windows flush
// immediately, and Drain blocks until every in-flight batch has delivered or
// ctx expires (returning ctx's error; batches keep draining in the
// background). The drained batcher stays registered so later Submits get
// ErrBatcherClosed instead of silently starting a fresh scheduler — use
// StopBatching + StartBatching to serve again. Drain is a no-op when
// batching never started.
func (db *DB) Drain(ctx context.Context) error {
	db.batchMu.Lock()
	b := db.batcher
	db.batchMu.Unlock()
	if b == nil {
		return nil
	}
	return b.Drain(ctx)
}

// Draining reports whether a Drain or Close is in progress (or finished):
// health endpoints surface this so load balancers stop routing before the
// listener goes away.
func (db *DB) Draining() bool {
	db.batchMu.Lock()
	b := db.batcher
	db.batchMu.Unlock()
	return b != nil && b.Draining()
}

// Close gracefully shuts the DB down for process exit: it drains the
// micro-batching scheduler under ctx's deadline (see Drain) and, on a durable
// DB, takes a final snapshot and sync-closes the WAL so the next OpenDurable
// replays nothing. Queries through Query/Execute still work after Close —
// only the batching entry points (and durable appends) are stopped.
//
// Close is idempotent and safe to call concurrently with in-flight Appends:
// repeated or racing Close calls all observe the first call's outcome, an
// Append that wins the race against the durability shutdown is fully logged
// and snapshotted, and one that loses fails with ErrDBClosed rather than
// landing half-applied.
func (db *DB) Close(ctx context.Context) error {
	err := db.Drain(ctx)
	if db.dur != nil {
		if derr := db.dur.close(db); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// EnableBreakers arms a per-table circuit breaker in front of every engine
// run (Query, Execute, Submit alike): once a table's recent failure rate
// crosses cfg's threshold the breaker opens and requests against that table
// fail fast with *BreakerOpenError until a timed probe succeeds. Caller
// cancellations are never counted as failures. A zero cfg selects defaults.
func (db *DB) EnableBreakers(cfg BreakerConfig) { db.eng.EnableBreakers(cfg) }

// DisableBreakers removes circuit breaking (and forgets breaker history).
func (db *DB) DisableBreakers() { db.eng.DisableBreakers() }

// BreakerStates snapshots every armed breaker — per-table ones (see
// EnableBreakers) and, when sharding is enabled, the per-shard ones guarding
// each fault domain (named "shard-<i>") — sorted by name. Empty when neither
// layer is armed.
func (db *DB) BreakerStates() []BreakerSnapshot {
	out := db.eng.BreakerStates()
	if co := db.shardCoordinator(); co != nil {
		out = append(out, co.BreakerStates()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Submit hands one Group By request to the micro-batching scheduler and
// blocks until its result is ready, ctx expires, or the scheduler rejects
// it. Requests arriving close together on the same table share one GB-MQO
// plan; identical requests (same grouping columns and aggregates) inside a
// window share one computation. The result table is byte-identical to what
// ExecuteQueries would return for the same single query.
//
// ctx bounds only this caller's wait: when it expires the call returns
// ctx.Err() but the batch keeps running for its other subscribers (and is
// cancelled once all of them have abandoned it). q.Cols must be non-empty —
// grand totals have no grouping columns to share and go through Query.
// Submit starts the scheduler with default BatchOptions if StartBatching was
// not called.
func (db *DB) Submit(ctx context.Context, tableName string, q GroupQuery) (*Table, BatchInfo, error) {
	t, ok := db.eng.Catalog().Table(tableName)
	if !ok {
		return nil, BatchInfo{}, fmt.Errorf("gbmqo: unknown table %q", tableName)
	}
	ords, err := db.resolveCols(t, q.Cols)
	if err != nil {
		return nil, BatchInfo{}, err
	}
	aggs := q.Aggs
	if len(aggs) == 0 {
		aggs = []Agg{CountStar()}
	}
	return db.getBatcher().Submit(ctx, sched.Query{Table: t.Name(), Set: colset.Of(ords...), Aggs: aggs})
}

// SubmitSQL runs a SQL statement through the micro-batching scheduler: a
// batchable grouped single-table statement is decomposed into its grouping
// sets, each submitted individually (so concurrent statements' sets batch
// together), and the GROUPING SETS union result is reassembled
// byte-identical to Query. Statements the scheduler cannot batch — joins,
// WHERE filters, plain selects — fall back to a solo QueryWith run under the
// batcher's execution options.
func (db *DB) SubmitSQL(ctx context.Context, statement string) (*Table, error) {
	q, err := sql.Parse(statement)
	if err != nil {
		return nil, err
	}
	spec, ok, err := sql.Decompose(db.eng, q)
	if err != nil {
		return nil, err
	}
	if !ok {
		db.batchMu.Lock()
		o := db.batchOpts.Exec
		db.batchMu.Unlock()
		o.Context = ctx
		res, err := db.QueryWith(statement, o)
		if err != nil {
			return nil, err
		}
		return res.Table, nil
	}
	src, found := db.eng.Catalog().Table(spec.Table)
	if !found {
		return nil, fmt.Errorf("gbmqo: unknown table %q", spec.Table)
	}
	b := db.getBatcher()
	results := make(map[colset.Set]*table.Table, len(spec.Sets))
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	for _, s := range spec.Sets {
		wg.Add(1)
		go func(s colset.Set) {
			defer wg.Done()
			res, _, err := b.Submit(ctx, sched.Query{Table: spec.Table, Set: s, Aggs: spec.Aggs})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			results[s] = res
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sql.Assemble(src, spec, results)
}

// WriteMetrics writes every metric the DB tracks — scheduler, cache,
// execution governance — in Prometheus text exposition format. The same
// series back GET /metrics on the server and expvar under the "gbmqo" key.
func (db *DB) WriteMetrics(w io.Writer) {
	db.obs.WritePrometheus(w)
}

// Metrics snapshots every tracked series as a flat name → value map
// (histograms appear as <name>_sum and <name>_count). Like CacheStats, the
// snapshot is safe to take while queries run.
func (db *DB) Metrics() map[string]float64 {
	return db.obs.Snapshot()
}
