package main

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"gbmqo"
	"gbmqo/internal/loadgen"
)

// TestBenchServeSmoke drives a short seeded harness run end to end through
// the in-process target: zero errors, a cache-assisted origin mix, and an
// artifact that round-trips through ParseArtifact — the same assertions the
// CI load-smoke job makes against the real binary.
func TestBenchServeSmoke(t *testing.T) {
	db := gbmqo.Open(&gbmqo.Config{CacheBytes: 16 << 20})
	li, err := gbmqo.GenerateDataset("lineitem", 20_000, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(li)
	db.StartBatching(gbmqo.BatchOptions{MaxWait: 2 * time.Millisecond,
		Exec: gbmqo.QueryOptions{SharedScan: true, Parallel: true}})
	defer db.StopBatching()

	// A rate the slowest CI runner absorbs under -race: overload from the 8x
	// bursty windows must land in client-shed (bounded in-flight), never in
	// timeout errors.
	smoke := benchOpts{
		Table: "lineitem", Seed: 42, Duration: 600 * time.Millisecond,
		Rate: 80, ZipfS: 1.0, AppendRatio: 0.02, MaxInFlight: 32, Command: "test",
	}
	art, err := runBenchServe(context.Background(), db, smoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Levels) != 2 || art.Levels[0].Level != "steady" || art.Levels[1].Level != "bursty" {
		t.Fatalf("levels = %+v", art.Levels)
	}
	var cacheAssisted int64
	for _, lv := range art.Levels {
		if lv.Errors != 0 {
			t.Fatalf("level %s: %d errors", lv.Level, lv.Errors)
		}
		if lv.Completed == 0 {
			t.Fatalf("level %s completed nothing", lv.Level)
		}
		if lv.SequenceFNV == "" {
			t.Fatalf("level %s has no schedule fingerprint", lv.Level)
		}
		cacheAssisted += lv.OriginMix["cache-hit"] + lv.OriginMix["cache-ancestor"] +
			lv.OriginMix["flight-shared"]
	}
	if cacheAssisted == 0 {
		t.Fatal("no cache-assisted results across both levels")
	}

	// The artifact must survive a JSON round trip through ParseArtifact.
	buf, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	back, err := loadgen.ParseArtifact(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bench != "LoadServe" || len(back.Levels) != 2 {
		t.Fatalf("round-tripped artifact = %+v", back)
	}

	// Same seed, same config: the offered sequence must be identical.
	art2, err := runBenchServe(context.Background(), db, smoke)
	if err != nil {
		t.Fatal(err)
	}
	for i := range art.Levels {
		if art.Levels[i].SequenceFNV != art2.Levels[i].SequenceFNV {
			t.Fatalf("level %s fingerprint changed across same-seed reruns", art.Levels[i].Level)
		}
	}
}
