package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gbmqo"
	"gbmqo/internal/loadgen"
)

// benchOpts parameterizes one -bench-serve invocation. Everything feeding
// the schedule is explicit here so the checked-in artifact records how to
// reproduce itself.
type benchOpts struct {
	Table       string
	Seed        int64
	Duration    time.Duration
	Rate        float64
	ZipfS       float64
	AppendRatio float64
	// MaxInFlight bounds concurrently outstanding operations per level
	// (0 = loadgen default). Excess arrivals count as client-side shed.
	MaxInFlight int
	// URL, when set, drives a live HTTP endpoint instead of the in-process
	// scheduler.
	URL string
	// Command is recorded verbatim in the artifact.
	Command string
}

// runBenchServe offers two seeded load levels — steady Poisson and on/off
// bursty at the same mean rate — against the DB (or a live server when
// opts.URL is set) and returns the artifact for BENCH_load.json. The bursty
// level reuses the same runner, so /metrics shows cumulative driver counters
// across both levels.
func runBenchServe(ctx context.Context, db *gbmqo.DB, opts benchOpts) (*loadgen.Artifact, error) {
	t, ok := db.Table(opts.Table)
	if !ok {
		return nil, fmt.Errorf("-bench-serve: unknown table %q", opts.Table)
	}
	cols := loadgen.PickGroupCols(t, 5, 128)
	if len(cols) == 0 {
		return nil, fmt.Errorf("-bench-serve: table %q has no grouping-friendly columns", opts.Table)
	}
	w := &loadgen.Workload{
		Table:   opts.Table,
		Queries: loadgen.LatticeWorkload(opts.Table, cols, 3, nil),
		Proto:   loadgen.ProtoRows(t, 1024, opts.Seed+9),
	}

	var target loadgen.Target
	if opts.URL != "" {
		target = &loadgen.HTTPTarget{URL: opts.URL, Table: opts.Table,
			Client: loadgen.DefaultHTTPClient(256, 30*time.Second)}
	} else {
		target = &loadgen.InProc{DB: db, Table: opts.Table}
	}
	runner := loadgen.NewRunner(target, w)
	if opts.URL == "" {
		// In-process runs surface live driver counters on the DB's /metrics.
		// A rerun in the same process keeps the first runner's registration;
		// the duplicate-name error is not fatal to the bench itself.
		_ = db.RegisterCollector(runner)
	}

	levels := []loadgen.Config{
		{Name: "steady", Seed: opts.Seed, Duration: opts.Duration, Rate: opts.Rate,
			Arrival: loadgen.ArrivalPoisson, ZipfS: opts.ZipfS, AppendRatio: opts.AppendRatio,
			MaxInFlight: opts.MaxInFlight},
		{Name: "bursty", Seed: opts.Seed + 100, Duration: opts.Duration, Rate: opts.Rate,
			Arrival: loadgen.ArrivalOnOff, BurstFactor: 8, ZipfS: opts.ZipfS,
			AppendRatio: opts.AppendRatio, MaxInFlight: opts.MaxInFlight},
	}
	art := &loadgen.Artifact{
		Bench:   "LoadServe",
		Command: opts.Command,
		Table:   opts.Table,
		Rows:    t.NumRows(),
	}
	for _, cfg := range levels {
		rep, err := loadgen.Run(ctx, runner, cfg)
		if err != nil {
			return nil, err
		}
		art.Levels = append(art.Levels, *rep)
		fmt.Fprintf(os.Stderr,
			"level %s: offered=%d completed=%d errors=%d shed=%d p50=%.2fms p95=%.2fms p99=%.2fms %.0f ops/s\n",
			rep.Level, rep.Offered, rep.Completed, rep.Errors, rep.Shed+rep.ClientShed,
			rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.ThroughputOpsS)
	}
	return art, nil
}

// writeArtifact renders the artifact as indented JSON to path ("-" = stdout).
func writeArtifact(art *loadgen.Artifact, path string) error {
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
