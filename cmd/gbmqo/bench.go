package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gbmqo"
	"gbmqo/internal/loadgen"
)

// benchOpts parameterizes one -bench-serve invocation. Everything feeding
// the schedule is explicit here so the checked-in artifact records how to
// reproduce itself.
type benchOpts struct {
	Table       string
	Seed        int64
	Duration    time.Duration
	Rate        float64
	ZipfS       float64
	AppendRatio float64
	// MaxInFlight bounds concurrently outstanding operations per level
	// (0 = loadgen default). Excess arrivals count as client-side shed.
	MaxInFlight int
	// URL, when set, drives a live HTTP endpoint instead of the in-process
	// scheduler.
	URL string
	// Command is recorded verbatim in the artifact.
	Command string
	// Sweep switches the run into rate-sweep soak mode: instead of the two
	// fixed levels, the offered rate steps geometrically until the shed knee.
	Sweep *sweepOpts
}

// sweepOpts parameterizes -load-sweep; zero fields take loadgen defaults.
type sweepOpts struct {
	StartRate    float64
	Factor       float64
	MaxLevels    int
	KneeShedRate float64
}

// runBenchServe offers two seeded load levels — steady Poisson and on/off
// bursty at the same mean rate — against the DB (or a live server when
// opts.URL is set) and returns the artifact for BENCH_load.json. The bursty
// level reuses the same runner, so /metrics shows cumulative driver counters
// across both levels.
func runBenchServe(ctx context.Context, db *gbmqo.DB, opts benchOpts) (*loadgen.Artifact, error) {
	t, ok := db.Table(opts.Table)
	if !ok {
		return nil, fmt.Errorf("-bench-serve: unknown table %q", opts.Table)
	}
	cols := loadgen.PickGroupCols(t, 5, 128)
	if len(cols) == 0 {
		return nil, fmt.Errorf("-bench-serve: table %q has no grouping-friendly columns", opts.Table)
	}
	w := &loadgen.Workload{
		Table:   opts.Table,
		Queries: loadgen.LatticeWorkload(opts.Table, cols, 3, nil),
		Proto:   loadgen.ProtoRows(t, 1024, opts.Seed+9),
	}

	var target loadgen.Target
	if opts.URL != "" {
		target = &loadgen.HTTPTarget{URL: opts.URL, Table: opts.Table,
			Client: loadgen.DefaultHTTPClient(256, 30*time.Second)}
	} else {
		target = &loadgen.InProc{DB: db, Table: opts.Table}
	}
	runner := loadgen.NewRunner(target, w)
	if opts.URL == "" {
		// In-process runs surface live driver counters on the DB's /metrics.
		// A rerun in the same process keeps the first runner's registration;
		// the duplicate-name error is not fatal to the bench itself.
		_ = db.RegisterCollector(runner)
	}

	if opts.Sweep != nil {
		return runLoadSweep(ctx, runner, opts, t.NumRows())
	}

	levels := []loadgen.Config{
		{Name: "steady", Seed: opts.Seed, Duration: opts.Duration, Rate: opts.Rate,
			Arrival: loadgen.ArrivalPoisson, ZipfS: opts.ZipfS, AppendRatio: opts.AppendRatio,
			MaxInFlight: opts.MaxInFlight},
		{Name: "bursty", Seed: opts.Seed + 100, Duration: opts.Duration, Rate: opts.Rate,
			Arrival: loadgen.ArrivalOnOff, BurstFactor: 8, ZipfS: opts.ZipfS,
			AppendRatio: opts.AppendRatio, MaxInFlight: opts.MaxInFlight},
	}
	art := &loadgen.Artifact{
		Bench:   "LoadServe",
		Command: opts.Command,
		Table:   opts.Table,
		Rows:    t.NumRows(),
	}
	for _, cfg := range levels {
		rep, err := loadgen.Run(ctx, runner, cfg)
		if err != nil {
			return nil, err
		}
		art.Levels = append(art.Levels, *rep)
		fmt.Fprintf(os.Stderr,
			"level %s: offered=%d completed=%d errors=%d shed=%d p50=%.2fms p95=%.2fms p99=%.2fms %.0f ops/s\n",
			rep.Level, rep.Offered, rep.Completed, rep.Errors, rep.Shed+rep.ClientShed,
			rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.ThroughputOpsS)
	}
	return art, nil
}

// runLoadSweep is the -load-sweep soak mode: geometric rate steps on a steady
// Poisson arrival until the shed knee, with knee rate and origin-mix drift
// recorded in the artifact's sweep section.
func runLoadSweep(ctx context.Context, runner *loadgen.Runner, opts benchOpts, rows int) (*loadgen.Artifact, error) {
	sc := loadgen.SweepConfig{
		Base: loadgen.Config{
			Name: "sweep", Seed: opts.Seed, Duration: opts.Duration,
			Arrival: loadgen.ArrivalPoisson, ZipfS: opts.ZipfS,
			AppendRatio: opts.AppendRatio, MaxInFlight: opts.MaxInFlight,
		},
		StartRate:    opts.Sweep.StartRate,
		Factor:       opts.Sweep.Factor,
		MaxLevels:    opts.Sweep.MaxLevels,
		KneeShedRate: opts.Sweep.KneeShedRate,
	}
	if sc.StartRate <= 0 {
		sc.StartRate = opts.Rate
	}
	sweep, err := loadgen.RunSweep(ctx, runner, sc)
	if err != nil {
		return nil, err
	}
	for i, rep := range sweep.Levels {
		drift := sweep.OriginDrift[i].Drift
		fmt.Fprintf(os.Stderr,
			"sweep %s: rate=%.0f offered=%d completed=%d shed=%.1f%% drift=%.3f p95=%.2fms\n",
			rep.Level, rep.TargetRate, rep.Offered, rep.Completed,
			rep.ShedRate*100, drift, rep.LatencyMS.P95)
	}
	if sweep.KneeLevel != "" {
		fmt.Fprintf(os.Stderr, "knee: %.0f ops/s sustained (level %s crossed %.0f%% shed)\n",
			sweep.KneeRate, sweep.KneeLevel, sweep.KneeShedRate*100)
	} else {
		fmt.Fprintf(os.Stderr, "no knee found within %d levels (last sustained %.0f ops/s)\n",
			len(sweep.Levels), sweep.KneeRate)
	}
	return &loadgen.Artifact{
		Bench:   "LoadSweep",
		Command: opts.Command,
		Table:   opts.Table,
		Rows:    rows,
		Sweep:   sweep,
	}, nil
}

// writeArtifact renders the artifact as indented JSON to path ("-" = stdout).
func writeArtifact(art *loadgen.Artifact, path string) error {
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
