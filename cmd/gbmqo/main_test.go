package main

import (
	"testing"

	"gbmqo"
)

func TestParseSchema(t *testing.T) {
	defs, err := parseSchema("a:int, b:string,c:float,d:date,e:bigint")
	if err != nil {
		t.Fatal(err)
	}
	want := []gbmqo.ColumnDef{
		{Name: "a", Typ: gbmqo.Int64},
		{Name: "b", Typ: gbmqo.String},
		{Name: "c", Typ: gbmqo.Float64},
		{Name: "d", Typ: gbmqo.Date},
		{Name: "e", Typ: gbmqo.Int64},
	}
	if len(defs) != len(want) {
		t.Fatalf("defs = %v", defs)
	}
	for i := range want {
		if defs[i] != want[i] {
			t.Fatalf("def %d = %v, want %v", i, defs[i], want[i])
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "a:blob", "a:int,b"} {
		if _, err := parseSchema(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
