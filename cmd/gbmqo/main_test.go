package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"gbmqo"
)

func TestParseSchema(t *testing.T) {
	defs, err := parseSchema("a:int, b:string,c:float,d:date,e:bigint")
	if err != nil {
		t.Fatal(err)
	}
	want := []gbmqo.ColumnDef{
		{Name: "a", Typ: gbmqo.Int64},
		{Name: "b", Typ: gbmqo.String},
		{Name: "c", Typ: gbmqo.Float64},
		{Name: "d", Typ: gbmqo.Date},
		{Name: "e", Typ: gbmqo.Int64},
	}
	if len(defs) != len(want) {
		t.Fatalf("defs = %v", defs)
	}
	for i := range want {
		if defs[i] != want[i] {
			t.Fatalf("def %d = %v, want %v", i, defs[i], want[i])
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "a:blob", "a:int,b"} {
		if _, err := parseSchema(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// TestServeGracefulDrain sends a real SIGTERM to a loaded server and asserts
// runServe drains and returns nil (exit 0): in-flight HTTP requests finish,
// the scheduler refuses new work afterwards, and nothing is left listening.
func TestServeGracefulDrain(t *testing.T) {
	db := gbmqo.Open(nil)
	tbl, err := gbmqo.GenerateDataset("sales", 3000, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(tbl)
	db.StartBatching(gbmqo.BatchOptions{
		MaxWait: 2 * time.Millisecond,
		Exec:    gbmqo.QueryOptions{SharedScan: true, Parallel: true, MaxAttempts: 3},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	defer signal.Stop(sig)
	done := make(chan error, 1)
	go func() { done <- runServe(db, ln, sig, 5*time.Second) }()
	base := "http://" + ln.Addr().String()

	// Wait until the server answers health checks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Load it: concurrent queries in flight while the signal lands.
	cols := []string{tbl.Col(0).Name(), tbl.Col(1).Name()}
	var served atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{
				"table":   "sales",
				"queries": []map[string]any{{"cols": []string{cols[i%2]}}},
			})
			resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
				}
			}
		}(i)
	}

	// Let the load actually land before killing: the signal should find the
	// server mid-traffic, with later requests still in flight.
	for served.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no query succeeded before SIGTERM")
		}
		time.Sleep(time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe = %v, want nil after SIGTERM drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("runServe did not exit after SIGTERM")
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no request was served around the drain")
	}

	// The drained scheduler refuses new work instead of silently restarting.
	if _, _, err := db.Submit(context.Background(), "sales", gbmqo.GroupQuery{Cols: cols[:1]}); err == nil {
		t.Fatal("Submit after drain succeeded, want ErrBatcherClosed")
	}
	// The listener is really gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
