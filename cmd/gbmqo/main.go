// Command gbmqo is the interactive face of the library: it loads or generates
// a dataset, runs SQL (including GROUPING SETS / CUBE / ROLLUP / COMBI), and
// explains GB-MQO plans.
//
// Usage:
//
//	gbmqo -gen lineitem -rows 50000 -sql "SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY GROUPING SETS ((l_shipmode), (l_returnflag))"
//	gbmqo -gen lineitem -explain "l_returnflag; l_linestatus; l_shipmode"
//	gbmqo -csv data.csv -schema "a:int,b:string" -table t -sql "SELECT b, COUNT(*) FROM t GROUP BY b"
//	gbmqo -gen lineitem -profile lineitem
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gbmqo"
	"gbmqo/internal/server"
	"gbmqo/internal/table"
)

func main() {
	var (
		gen       = flag.String("gen", "", "generate a bundled dataset (lineitem, sales, nref, customer)")
		rows      = flag.Int("rows", 50_000, "rows to generate")
		seed      = flag.Int64("seed", 1, "generator seed")
		zipf      = flag.Float64("zipf", 0, "Zipf skew for lineitem")
		csvPath   = flag.String("csv", "", "load a CSV file instead of generating")
		schema    = flag.String("schema", "", "CSV schema, e.g. \"a:int,b:string,c:float,d:date\"")
		tableN    = flag.String("table", "t", "table name for -csv")
		sqlStmt   = flag.String("sql", "", "SQL statement to execute")
		explain   = flag.String("explain", "", "semicolon-separated Group By column lists to optimize and explain")
		profileT  = flag.String("profile", "", "table to run the data-quality profile on")
		strategy  = flag.String("strategy", "gbmqo", "planning strategy: gbmqo, naive, groupingsets, exhaustive")
		limit     = flag.Int("limit", 20, "max result rows to print")
		cacheMB   = flag.Int("cache-mb", 0, "cross-query result cache budget in MiB (0 = off)")
		repeat    = flag.Int("repeat", 1, "run -sql this many times (with -cache-mb, repeats hit the cache)")
		serve     = flag.Bool("serve", false, "serve Group By queries over HTTP (POST /query, POST /sql, GET /metrics)")
		addr      = flag.String("addr", ":8080", "listen address for -serve")
		batchMax  = flag.Int("batch-max", 0, "micro-batch window: max distinct queries (0 = default 16)")
		batchWait = flag.Duration("batch-wait", 0, "micro-batch window: max wait after open (0 = default 2ms)")
		batchIdle = flag.Duration("batch-idle", 0, "micro-batch window: idle flush (0 = default batch-wait/4)")
		shedAt    = flag.Duration("shed-target", 0, "p95 batch latency target for adaptive load shedding (0 = off)")
		drainFor  = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight work on SIGINT/SIGTERM before -serve exits")
		metrics   = flag.Bool("metrics", false, "dump the metrics registry in Prometheus text format after running")
		par       = flag.Int("par", 0, "intra-operator parallelism: morsel workers per large aggregate (-1 = GOMAXPROCS, 0 = off)")
		kernels   = flag.Bool("explain-kernels", false, "with -sql: print which physical aggregation kernel ran each plan node and why")
		shards    = flag.Int("shards", 0, "partition tables into N hash shards and scatter-gather queries across them (0 = unsharded)")
		partialOK = flag.Bool("allow-partial", false, "with -shards: serve partial results when a shard fails terminally instead of erroring")
		appendCSV = flag.String("append-csv", "", "append rows from a CSV file (matching the target table's schema, header row required) as a streaming delta")

		dataDir   = flag.String("data-dir", "", "durable data directory (WAL + snapshots): recover on start, log appends, snapshot in the background")
		fsyncPol  = flag.String("fsync", "always", "WAL fsync policy with -data-dir: always, interval, off")
		snapEvery = flag.Duration("snapshot-interval", 30*time.Second, "background snapshot period with -data-dir (negative = snapshot only on registration and close)")

		benchServe  = flag.Bool("bench-serve", false, "run the seeded open-loop load harness (steady + bursty levels) against the in-process scheduler, or against -load-url, and write a BENCH_load artifact")
		loadSweep   = flag.Bool("load-sweep", false, "rate-sweep soak mode: step the offered rate geometrically until the shed knee and record knee rate + origin-mix drift in the artifact")
		sweepStart  = flag.Float64("sweep-start-rate", 0, "first sweep level's offered rate (0 = -load-rate)")
		sweepFactor = flag.Float64("sweep-factor", 2, "rate multiplier between sweep levels")
		sweepLevels = flag.Int("sweep-levels", 6, "maximum sweep levels")
		sweepKnee   = flag.Float64("sweep-knee-shed", 0.05, "combined shed fraction at which a sweep level counts as past the knee")
		loadSeed    = flag.Int64("load-seed", 42, "load harness seed: same seed, same offered operation sequence")
		loadDur     = flag.Duration("load-duration", 5*time.Second, "offered-load window per level")
		loadRate    = flag.Float64("load-rate", 400, "mean offered rate in operations per second")
		loadZipf    = flag.Float64("load-zipf-s", 1.0, "Zipf skew of query popularity over the group-by lattice (0 = uniform)")
		loadAppend  = flag.Float64("load-append-ratio", 0.02, "fraction of operations that are streaming appends")
		loadURL     = flag.String("load-url", "", "drive a live gbmqo server at this base URL instead of the in-process scheduler")
		benchOut    = flag.String("bench-out", "BENCH_load.json", "load artifact output path (\"-\" = stdout)")
		metricsDump = flag.Bool("metrics-dump", false, "after -bench-serve, dump the metrics registry in Prometheus text format to stderr")
	)
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}

	var cfg *gbmqo.Config
	if *cacheMB > 0 {
		cfg = &gbmqo.Config{CacheBytes: int64(*cacheMB) << 20}
	}
	var db *gbmqo.DB
	if *dataDir != "" {
		var rec *gbmqo.RecoveryReport
		var err error
		db, rec, err = gbmqo.OpenDurable(*dataDir, cfg, &gbmqo.DurabilityOptions{
			Fsync: *fsyncPol, SnapshotInterval: *snapEvery,
		})
		fail(err)
		if rec.SnapshotLoaded || rec.ReplayedRecords > 0 || rec.TruncatedTails > 0 {
			fmt.Printf("recovered %s: %d tables (snapshot wal seq %d), replayed %d WAL records (%d torn tails repaired), rewarmed %d cache entries in %s\n",
				*dataDir, rec.TablesRestored, rec.SnapshotWalSeq, rec.ReplayedRecords,
				rec.TruncatedTails, rec.RewarmedEntries, rec.Wall.Round(time.Millisecond))
		}
	} else {
		db = gbmqo.Open(cfg)
	}
	if *gen != "" {
		t, err := gbmqo.GenerateDataset(*gen, *rows, *seed, *zipf)
		fail(err)
		// A durable restart already recovered this table; regenerating would
		// clobber the recovered epoch and orphan its WAL history.
		if cur, ok := db.Table(t.Name()); ok && *dataDir != "" {
			fmt.Printf("using recovered %s: %d rows (skipping -gen)\n", t.Name(), cur.NumRows())
		} else {
			db.Register(t)
			fmt.Printf("generated %s: %d rows, %d columns\n", t.Name(), t.NumRows(), t.NumCols())
		}
	}
	if *csvPath != "" {
		defs, err := parseSchema(*schema)
		fail(err)
		f, err := os.Open(*csvPath)
		fail(err)
		t, err := db.RegisterCSV(*tableN, defs, f)
		f.Close()
		fail(err)
		fmt.Printf("loaded %s: %d rows\n", t.Name(), t.NumRows())
	}

	if *shards > 0 {
		fail(db.EnableSharding(gbmqo.ShardOptions{Shards: *shards}))
		fmt.Printf("sharding: %d hash shards\n", db.Sharding())
	}

	if *appendCSV != "" {
		name := *tableN
		if _, ok := db.Table(name); !ok && len(db.Tables()) == 1 {
			name = db.Tables()[0]
		}
		t, ok := db.Table(name)
		if !ok {
			fail(fmt.Errorf("-append-csv needs a registered target table (-gen or -csv)"))
		}
		defs := make([]gbmqo.ColumnDef, t.NumCols())
		for i := range defs {
			defs[i] = gbmqo.ColumnDef{Name: t.Col(i).Name(), Typ: t.Col(i).Type()}
		}
		f, err := os.Open(*appendCSV)
		fail(err)
		delta, err := table.ReadCSV("__append_csv", defs, f)
		f.Close()
		fail(err)
		rows := make([][]gbmqo.Value, delta.NumRows())
		for r := range rows {
			row := make([]gbmqo.Value, delta.NumCols())
			for c := range row {
				row[c] = delta.Col(c).Value(r)
			}
			rows[r] = row
		}
		rep, err := db.Append(name, rows)
		fail(err)
		fmt.Printf("appended %d rows to %s (now %d rows, epoch v%d.%d): cache refreshed=%d dropped=%d invalidated=%d in %s\n",
			rep.Rows, rep.Table, rep.TotalRows, rep.Version, rep.Delta,
			rep.Refreshed, rep.Dropped, rep.Invalidated, rep.RefreshWall)
	}

	opts := gbmqo.QueryOptions{Parallelism: *par, AllowPartial: *partialOK}
	switch strings.ToLower(*strategy) {
	case "gbmqo":
		opts.Strategy = gbmqo.GBMQO
	case "naive":
		opts.Strategy = gbmqo.Naive
	case "groupingsets":
		opts.Strategy = gbmqo.GroupingSets
	case "exhaustive":
		opts.Strategy = gbmqo.Exhaustive
	default:
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}

	ran := *appendCSV != ""
	if *sqlStmt != "" {
		ran = true
		var res *gbmqo.QueryResult
		for i := 0; i < *repeat; i++ {
			var err error
			res, err = db.QueryWith(*sqlStmt, opts)
			fail(err)
		}
		if res.Plan != nil {
			fmt.Println("plan:")
			fmt.Println(res.Plan)
		}
		if *kernels && res.Report != nil {
			fmt.Println("kernels:")
			for _, ku := range res.Report.Kernels {
				fmt.Printf("  %s\n", ku)
			}
			if res.Report.RehashesAvoided > 0 {
				fmt.Printf("  rehashes avoided by presizing: %d\n", res.Report.RehashesAvoided)
			}
		}
		fmt.Println(res.Table.FormatRows(*limit))
		if st, ok := db.CacheStats(); ok {
			fmt.Printf("cache: hits=%d ancestor-hits=%d misses=%d admitted=%d evicted=%d entries=%d bytes=%d\n",
				st.Hits, st.AncestorHits, st.Misses, st.Admissions, st.Evictions, st.Entries, st.Bytes)
		}
	}
	if *explain != "" {
		ran = true
		if len(db.Tables()) == 0 {
			fail(fmt.Errorf("-explain needs a table (-gen or -csv)"))
		}
		tableName := db.Tables()[0]
		var queries [][]string
		for _, part := range strings.Split(*explain, ";") {
			var cols []string
			for _, c := range strings.Split(part, ",") {
				if c = strings.TrimSpace(c); c != "" {
					cols = append(cols, c)
				}
			}
			if len(cols) > 0 {
				queries = append(queries, cols)
			}
		}
		p, st, err := db.Optimize(tableName, queries, opts)
		fail(err)
		fmt.Printf("plan (model cost %.0f, naive %.0f, %d optimizer calls):\n%s\n",
			st.FinalCost, st.NaiveCost, st.OptimizerCalls, p)
		stmts, err := db.ExplainSQL(p)
		fail(err)
		fmt.Println("client-side SQL script (§5.2):")
		for _, s := range stmts {
			fmt.Println("  " + s)
		}
	}
	if *profileT != "" {
		ran = true
		rep, err := db.Profile(*profileT)
		fail(err)
		fmt.Print(rep)
		fmt.Printf("\nprofile plan:\n%s", rep.Plan)
	}
	if *serve {
		ran = true
		if len(db.Tables()) == 0 {
			fail(fmt.Errorf("-serve needs at least one table (-gen or -csv)"))
		}
		sopts := opts
		sopts.SharedScan = true
		sopts.Parallel = true
		sopts.MaxAttempts = 3
		db.StartBatching(gbmqo.BatchOptions{
			MaxBatch:          *batchMax,
			MaxWait:           *batchWait,
			IdleWait:          *batchIdle,
			ShedLatencyTarget: *shedAt,
			Exec:              sopts,
		})
		db.EnableBreakers(gbmqo.BreakerConfig{})
		ln, err := net.Listen("tcp", *addr)
		fail(err)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		fmt.Printf("serving %s on %s (POST /query, POST /sql, GET /metrics)\n",
			strings.Join(db.Tables(), ", "), ln.Addr())
		fail(runServe(db, ln, sig, *drainFor))
	}
	if *benchServe || *loadSweep {
		ran = true
		name := *tableN
		if _, ok := db.Table(name); !ok && len(db.Tables()) == 1 {
			name = db.Tables()[0]
		}
		if *loadURL == "" {
			if len(db.Tables()) == 0 {
				fail(fmt.Errorf("-bench-serve needs a table (-gen or -csv) unless -load-url is set"))
			}
			sopts := opts
			sopts.SharedScan = true
			sopts.Parallel = true
			sopts.MaxAttempts = 3
			db.StartBatching(gbmqo.BatchOptions{
				MaxBatch:          *batchMax,
				MaxWait:           *batchWait,
				IdleWait:          *batchIdle,
				ShedLatencyTarget: *shedAt,
				Exec:              sopts,
			})
		}
		bopts := benchOpts{
			Table:       name,
			Seed:        *loadSeed,
			Duration:    *loadDur,
			Rate:        *loadRate,
			ZipfS:       *loadZipf,
			AppendRatio: *loadAppend,
			URL:         *loadURL,
			Command:     strings.Join(os.Args, " "),
		}
		if *loadSweep {
			bopts.Sweep = &sweepOpts{
				StartRate:    *sweepStart,
				Factor:       *sweepFactor,
				MaxLevels:    *sweepLevels,
				KneeShedRate: *sweepKnee,
			}
		}
		art, err := runBenchServe(context.Background(), db, bopts)
		fail(err)
		fail(writeArtifact(art, *benchOut))
		if *metricsDump {
			db.WriteMetrics(os.Stderr)
		}
		if *loadURL == "" {
			db.StopBatching()
		}
	}
	if *metrics {
		ran = true
		db.WriteMetrics(os.Stdout)
	}
	if *dataDir != "" {
		// Final snapshot + clean WAL close; idempotent after -serve's own
		// drain-and-close.
		fail(db.Close(context.Background()))
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runServe serves HTTP on ln until a signal arrives on sig, then shuts down
// gracefully: /healthz flips to draining, the scheduler drains in-flight
// batches, and the HTTP server finishes open requests — each phase bounded
// by drainFor. Returns nil on a clean drain so -serve exits 0 under
// SIGINT/SIGTERM.
func runServe(db *gbmqo.DB, ln net.Listener, sig <-chan os.Signal, drainFor time.Duration) error {
	srv := server.New(db)
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "gbmqo: %v: draining (timeout %s)\n", s, drainFor)
	}
	// Stop routing first (health checks fail), then drain the scheduler so
	// queued Group By work delivers, then close HTTP connections.
	srv.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	if err := db.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gbmqo: drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func parseSchema(s string) ([]gbmqo.ColumnDef, error) {
	if s == "" {
		return nil, fmt.Errorf("-csv requires -schema")
	}
	var defs []gbmqo.ColumnDef
	for _, part := range strings.Split(s, ",") {
		nameType := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(nameType) != 2 {
			return nil, fmt.Errorf("bad schema entry %q (want name:type)", part)
		}
		var typ gbmqo.Type
		switch strings.ToLower(nameType[1]) {
		case "int", "int64", "bigint":
			typ = gbmqo.Int64
		case "float", "float64", "double":
			typ = gbmqo.Float64
		case "string", "varchar", "text":
			typ = gbmqo.String
		case "date":
			typ = gbmqo.Date
		default:
			return nil, fmt.Errorf("unknown type %q", nameType[1])
		}
		defs = append(defs, gbmqo.ColumnDef{Name: nameType[0], Typ: typ})
	}
	return defs, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbmqo:", err)
		os.Exit(1)
	}
}
