// Command experiments regenerates the paper's evaluation tables and figures
// (§6) on the synthetic substrate. By default it runs everything at a
// moderate scale; -exp selects one experiment and -tpch/-sales/-nref scale
// the datasets.
//
// Usage:
//
//	experiments [-exp all|table2|table3|fig6|fig9|fig10|fig11|fig12|fig13|fig14|sec65]
//	            [-tpch rows] [-tpch-large rows] [-sales rows] [-nref rows] [-seed n]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"gbmqo/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (all, table2, table3, fig6, fig9, fig10, fig11, fig12, fig13, fig14, sec65)")
		tpch      = flag.Int("tpch", 0, "TPC-H small row count (default from scale)")
		tpchLarge = flag.Int("tpch-large", 0, "TPC-H large row count")
		sales     = flag.Int("sales", 0, "SALES row count")
		nref      = flag.Int("nref", 0, "NREF row count")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	scale := experiments.DefaultScale()
	scale.Seed = *seed
	if *tpch > 0 {
		scale.TPCHSmall = *tpch
	}
	if *tpchLarge > 0 {
		scale.TPCHLarge = *tpchLarge
	}
	if *sales > 0 {
		scale.Sales = *sales
	}
	if *nref > 0 {
		scale.NRef = *nref
	}

	type runner struct {
		name string
		run  func(experiments.Scale) (fmt.Stringer, error)
	}
	all := []runner{
		{"table2", wrap(experiments.Table2)},
		{"table3", wrap(experiments.Table3)},
		{"fig6", wrap(experiments.Figure6)},
		{"fig9", wrap(experiments.Figure9)},
		{"fig10", wrap(experiments.Figure10)},
		{"sec65", wrap(experiments.Section65)},
		{"fig11", wrap(experiments.Figure11)},
		{"fig12", wrap(experiments.Figure12)},
		{"fig13", wrap(experiments.Figure13)},
		{"fig14", wrap(experiments.Figure14)},
	}

	want := strings.ToLower(*exp)
	matched := false
	for _, r := range all {
		if want != "all" && want != r.name {
			continue
		}
		matched = true
		// Collect garbage from the previous experiment so its allocations
		// don't perturb this one's timings.
		runtime.GC()
		res, err := r.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// wrap adapts a typed experiment to the generic runner signature.
func wrap[T fmt.Stringer](fn func(experiments.Scale) (T, error)) func(experiments.Scale) (fmt.Stringer, error) {
	return func(s experiments.Scale) (fmt.Stringer, error) {
		res, err := fn(s)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}
