// Command datagen emits the bundled synthetic datasets as CSV, so they can be
// inspected, loaded into other systems, or re-imported through gbmqo's CSV
// loader.
//
// Usage:
//
//	datagen -dataset lineitem -rows 100000 -zipf 0 -seed 1 > lineitem.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"gbmqo"
)

func main() {
	var (
		dataset = flag.String("dataset", "lineitem", "dataset to generate (lineitem, sales, nref, customer)")
		rows    = flag.Int("rows", 100_000, "row count")
		seed    = flag.Int64("seed", 1, "generator seed")
		zipf    = flag.Float64("zipf", 0, "Zipf skew (lineitem only)")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	t, err := gbmqo.GenerateDataset(*dataset, *rows, *seed, *zipf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := t.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
