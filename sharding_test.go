package gbmqo

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gbmqo/internal/exec"
	"gbmqo/internal/fault"
)

// shardFP fingerprints a result table for byte-identity comparison.
func shardFP(tb *Table) []byte {
	var buf bytes.Buffer
	for _, c := range tb.ColNames() {
		buf.WriteString(c)
		buf.WriteByte(0)
	}
	img, _ := tb.RowImage()
	buf.Write(img)
	return buf.Bytes()
}

var shardingSQL = []string{
	"SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode",
	"SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity) FROM lineitem " +
		"GROUP BY GROUPING SETS ((l_returnflag), (l_linestatus), (l_returnflag, l_linestatus))",
	"SELECT l_shipmode, l_returnflag, COUNT(*) FROM lineitem GROUP BY CUBE (l_shipmode, l_returnflag)",
	"SELECT l_shipinstruct, MIN(l_quantity), MAX(l_quantity) FROM lineitem " +
		"GROUP BY ROLLUP (l_shipinstruct, l_shipmode)",
}

// TestShardingSQLDifferential runs full SQL statements (GROUPING SETS, CUBE,
// ROLLUP) through a sharded DB at several shard counts and requires the
// output byte-identical to an unsharded DB over the same table — and that
// the sharded path actually served them (ShardsTotal set), so the test can
// never pass via silent fallback.
func TestShardingSQLDifferential(t *testing.T) {
	li, err := GenerateDataset("lineitem", 5000, 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain := Open(nil)
	plain.Register(li)
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			db := Open(nil)
			db.Register(li)
			if err := db.EnableSharding(ShardOptions{Shards: n}); err != nil {
				t.Fatal(err)
			}
			if db.Sharding() != n {
				t.Fatalf("Sharding() = %d, want %d", db.Sharding(), n)
			}
			for _, stmt := range shardingSQL {
				want, err := plain.QueryWith(stmt, QueryOptions{})
				if err != nil {
					t.Fatalf("unsharded %q: %v", stmt, err)
				}
				got, err := db.QueryWith(stmt, QueryOptions{})
				if err != nil {
					t.Fatalf("sharded %q: %v", stmt, err)
				}
				if got.Report == nil || got.Report.ShardsTotal != n {
					t.Fatalf("%q did not run sharded (report %+v)", stmt, got.Report)
				}
				if !bytes.Equal(shardFP(want.Table), shardFP(got.Table)) {
					t.Fatalf("%q differs from unsharded:\nwant:\n%s\ngot:\n%s",
						stmt, want.Table.FormatRows(30), got.Table.FormatRows(30))
				}
			}
			// Disabling returns to plain execution.
			db.DisableSharding()
			if db.Sharding() != 0 {
				t.Fatal("Sharding() != 0 after disable")
			}
			res, err := db.QueryWith(shardingSQL[0], QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.ShardsTotal != 0 {
				t.Fatal("request still routed through shards after DisableSharding")
			}
		})
	}
}

// TestShardingPartialPublicAPI exercises the public partial-result contract:
// a forced-open shard fails a strict query with a typed *ShardError, while
// AllowPartial serves the survivors with the loss attributed in the report.
func TestShardingPartialPublicAPI(t *testing.T) {
	db := openWithLineitem(t, 3000)
	if err := db.EnableSharding(ShardOptions{Shards: 4,
		Breaker: BreakerConfig{Window: 4, MinSamples: 1, FailureRate: 0.01, OpenFor: time.Hour}}); err != nil {
		t.Fatal(err)
	}
	db.shardCoordinator().Breaker(3).RecordErr(errors.New("injected outage"))

	stmt := "SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode"
	_, err := db.QueryWith(stmt, QueryOptions{})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("strict query error is %T (%v), want *ShardError", err, err)
	}
	if se.Shard != 3 {
		t.Fatalf("ShardError names shard %d, want 3", se.Shard)
	}
	var oe *BreakerOpenError
	if !errors.As(err, &oe) {
		t.Fatal("open-breaker cause not reachable from ShardError")
	}

	res, err := db.QueryWith(stmt, QueryOptions{AllowPartial: true})
	if err != nil {
		t.Fatalf("AllowPartial query failed: %v", err)
	}
	rep := res.Report
	if !rep.Partial || len(rep.ShardsFailed) != 1 || rep.ShardsFailed[0].Shard != 3 {
		t.Fatalf("partial attribution: partial=%v failed=%v", rep.Partial, rep.ShardsFailed)
	}
	if rep.ShardCoverage <= 0 || rep.ShardCoverage >= 1 {
		t.Fatalf("coverage = %v, want in (0,1)", rep.ShardCoverage)
	}

	// The per-shard breaker surfaces in BreakerStates with its last failure.
	var found bool
	for _, b := range db.BreakerStates() {
		if b.Name == "shard-3" {
			found = true
			if b.State != fault.StateOpen || b.LastFailure != "injected outage" {
				t.Fatalf("shard-3 snapshot: %+v", b)
			}
		}
	}
	if !found {
		t.Fatal("shard-3 breaker missing from BreakerStates")
	}
}

// TestShardingMetricsSurface: sharded execution must register and move the
// gbmqo_shard_* series on the DB's registry, and the scoped retry counter
// family must carry the request/shard/hedge labels.
func TestShardingMetricsSurface(t *testing.T) {
	db := openWithLineitem(t, 2000)
	if err := db.EnableSharding(ShardOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	db.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"gbmqo_shard_gathers_total 1",
		"gbmqo_shard_partials_total",
		"gbmqo_shard_latency_seconds",
		`gbmqo_shard_exec_total{shard="0"}`,
		`gbmqo_exec_retries_total{scope="request"}`,
		`gbmqo_exec_retries_total{scope="shard"}`,
		`gbmqo_exec_retries_total{scope="hedge"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestShardDrainWhileScattered is the shutdown-under-fire test: submissions
// whose gathers are mid-scatter (slowed by a failpoint) when Drain begins
// must all deliver a result or a clean error before Drain returns, and no
// goroutine may leak.
func TestShardDrainWhileScattered(t *testing.T) {
	li, err := GenerateDataset("lineitem", 8000, 23, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reference results from a plain DB, computed before any fault hooks.
	ref := Open(nil)
	ref.Register(li)
	queries := []GroupQuery{
		{Cols: []string{"l_shipmode"}},
		{Cols: []string{"l_returnflag"}},
		{Cols: []string{"l_returnflag", "l_linestatus"}},
	}
	refFP := make([][]byte, len(queries))
	for i, q := range queries {
		res, _, err := ref.Submit(context.Background(), "lineitem", q)
		if err != nil {
			t.Fatal(err)
		}
		refFP[i] = shardFP(res)
	}
	ref.StopBatching()

	baseline := runtime.NumGoroutine()
	db := Open(nil)
	db.Register(li)
	if err := db.EnableSharding(ShardOptions{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	db.StartBatching(BatchOptions{MaxWait: time.Millisecond,
		Exec: QueryOptions{SharedScan: true, Parallel: true}})

	// Slow every shard execution so Drain lands while gathers are scattered.
	exec.Testing.SetFailPoint(func(site string) {
		if site == "shard.exec" {
			time.Sleep(4 * time.Millisecond)
		}
	})
	defer exec.Testing.ClearFailPoint()

	const submitters = 12
	var wg sync.WaitGroup
	outcomes := make([]error, submitters)
	results := make([]*Table, submitters) // fingerprinted after the join:
	// deduped submissions share one result table, and RowImage materializes
	// lazily — hashing it concurrently would race on test-owned state.
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			res, _, err := db.Submit(ctx, "lineitem", queries[g%len(queries)])
			results[g], outcomes[g] = res, err
		}(g)
	}
	time.Sleep(3 * time.Millisecond) // let scatters begin
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := db.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Every submitter must already be unblocked: nothing is delivered (or
	// stuck) past the drain.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submitters still blocked after Close returned")
	}
	for g, err := range outcomes {
		if err != nil {
			if !errors.Is(err, ErrDraining) && !errors.Is(err, ErrBatcherClosed) {
				t.Fatalf("submitter %d: %v", g, err)
			}
			continue
		}
		if i := g % len(queries); !bytes.Equal(shardFP(results[g]), refFP[i]) {
			t.Fatalf("submitter %d: result differs from reference", g)
		}
	}
	exec.Testing.ClearFailPoint()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, n)
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
}
