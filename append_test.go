package gbmqo

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gbmqo/internal/datagen"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// tableRows extracts rows [lo,hi) of tb as append-ready value slices.
func tableRows(tb *Table, lo, hi int) [][]Value {
	rows := make([][]Value, 0, hi-lo)
	for r := lo; r < hi; r++ {
		row := make([]Value, tb.NumCols())
		for c := 0; c < tb.NumCols(); c++ {
			row[c] = tb.Col(c).Value(r)
		}
		rows = append(rows, row)
	}
	return rows
}

// rebuildFromScratch materializes a brand-new table — fresh dictionaries,
// cold images, no shared state — holding exactly src's logical rows in the
// same order. Aggregating it is the independent recompute the incremental
// path must match byte for byte.
func rebuildFromScratch(src *Table) *Table {
	defs := make([]table.ColumnDef, src.NumCols())
	for c := range defs {
		defs[c] = table.ColumnDef{Name: src.Col(c).Name(), Typ: src.Col(c).Type()}
	}
	out := table.New(src.Name(), defs)
	for r := 0; r < src.NumRows(); r++ {
		out.AppendRow(tableRows(src, r, r+1)[0]...)
	}
	return out
}

// appendDiffQueries is the query pool for the interleaving suite: lattice
// shapes with genuine subset chains (so refreshed ancestors serve dropped
// descendants), every mergeable aggregate, and an AVG (the invalidation
// fallback).
func appendDiffQueries() []GroupQuery {
	return []GroupQuery{
		{Cols: []string{"l_returnflag"}},
		{Cols: []string{"l_linestatus"}},
		{Cols: []string{"l_returnflag", "l_linestatus"}},
		{Cols: []string{"l_shipmode", "l_returnflag", "l_linestatus"}},
		{Cols: []string{"l_shipmode"}, Aggs: []Agg{
			{Kind: AggCountStar, Name: "cnt"},
			{Kind: AggSum, Col: datagen.LQuantity, Name: "sum_qty"}}},
		{Cols: []string{"l_shipinstruct", "l_shipmode"}, Aggs: []Agg{
			{Kind: AggMin, Col: datagen.LShipDate, Name: "min_sd"},
			{Kind: AggMax, Col: datagen.LShipDate, Name: "max_sd"}}},
		{Cols: []string{"l_shipinstruct"}, Aggs: []Agg{
			{Kind: exec.AggAvg, Col: datagen.LQuantity, Name: "avg_qty"}}},
	}
}

// TestAppendDifferentialRandomized is the end-to-end contract for streaming
// appends: random interleavings of DB.Append and multi-query executions —
// cache warm, lattice subset chains, AVG fallback, sharded and unsharded —
// where every answer must be byte-identical to a cold recompute over a table
// rebuilt from scratch with the same logical rows.
func TestAppendDifferentialRandomized(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(23 + shards)))
			base, err := GenerateDataset("lineitem", 2500, 5, 0)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := GenerateDataset("lineitem", 1200, 77, 0)
			if err != nil {
				t.Fatal(err)
			}
			db := Open(&Config{CacheBytes: 32 << 20})
			db.Register(base)
			if shards > 0 {
				if err := db.EnableSharding(ShardOptions{Shards: shards}); err != nil {
					t.Fatal(err)
				}
			}
			// The reference DB always holds a from-scratch rebuild of the
			// current logical table: no cache, no sharding, fresh dictionaries.
			ref := Open(nil)
			ref.Register(rebuildFromScratch(base))

			queries := appendDiffQueries()
			poolOff, appendsDone := 0, 0
			for step := 0; step < 28; step++ {
				if poolOff < pool.NumRows() && rng.Intn(3) == 0 {
					n := 40 + rng.Intn(120)
					if poolOff+n > pool.NumRows() {
						n = pool.NumRows() - poolOff
					}
					rep, err := db.Append("lineitem", tableRows(pool, poolOff, poolOff+n))
					if err != nil {
						t.Fatalf("step %d append: %v", step, err)
					}
					poolOff += n
					appendsDone++
					if rep.Rows != n || rep.TotalRows != base.NumRows()+poolOff {
						t.Fatalf("step %d append report = %+v", step, rep)
					}
					if rep.Delta != uint64(appendsDone) {
						t.Fatalf("step %d epoch delta = %d, want %d", step, rep.Delta, appendsDone)
					}
					cur, ok := db.Table("lineitem")
					if !ok {
						t.Fatal("table vanished")
					}
					ref.Register(rebuildFromScratch(cur))
					continue
				}
				// 1–3 distinct queries per execution, random planner options.
				idx := rng.Perm(len(queries))[:1+rng.Intn(3)]
				qs := make([]GroupQuery, len(idx))
				for i, j := range idx {
					qs[i] = queries[j]
				}
				opts := QueryOptions{SharedScan: rng.Intn(2) == 0, Parallel: rng.Intn(2) == 0}
				_, got, err := db.ExecuteQueries("lineitem", qs, opts)
				if err != nil {
					t.Fatalf("step %d query: %v", step, err)
				}
				_, want, err := ref.ExecuteQueries("lineitem", qs, QueryOptions{})
				if err != nil {
					t.Fatalf("step %d reference: %v", step, err)
				}
				if len(got.Results) != len(want.Results) {
					t.Fatalf("step %d result sets %d, want %d", step, len(got.Results), len(want.Results))
				}
				for set, wt := range want.Results {
					gt, ok := got.Results[set]
					if !ok {
						t.Fatalf("step %d missing result for %v", step, set)
					}
					if !bytes.Equal(shardFP(gt), shardFP(wt)) {
						t.Fatalf("step %d set %v differs from cold rebuild:\nwant:\n%s\ngot:\n%s",
							step, set, wt.FormatRows(20), gt.FormatRows(20))
					}
				}
			}
			if appendsDone == 0 {
				t.Fatal("interleaving never appended")
			}

			if shards > 0 {
				// The appends must have been propagated into the shard
				// partitions, not silently unsharded: a cache-bypassing
				// mergeable query still scatters across all shards.
				if db.Sharding() != shards {
					t.Fatalf("Sharding() = %d after appends", db.Sharding())
				}
				_, rep, err := db.ExecuteQueries("lineitem",
					[]GroupQuery{{Cols: []string{"l_shipmode"}}}, QueryOptions{NoCache: true})
				if err != nil {
					t.Fatal(err)
				}
				if rep.ShardsTotal != shards {
					t.Fatalf("post-append query ran on %d shards, want %d (append fell back to unsharded)",
						rep.ShardsTotal, shards)
				}
			}
		})
	}
}

// TestAppendStatsPublicAPI: DB.AppendStats surfaces epoch and refresh lag.
func TestAppendStatsPublicAPI(t *testing.T) {
	base, err := GenerateDataset("lineitem", 800, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := Open(&Config{CacheBytes: 8 << 20})
	db.Register(base)
	if len(db.AppendStats()) != 0 {
		t.Fatalf("append stats before any append: %+v", db.AppendStats())
	}
	if _, err := db.Append("lineitem", tableRows(base, 0, 50)); err != nil {
		t.Fatal(err)
	}
	as, ok := db.AppendStats()["lineitem"]
	if !ok || as.Delta != 1 || as.Rows != 850 {
		t.Fatalf("append stats = %+v ok=%v", as, ok)
	}
}

// TestAppendMetrics: the observability registry attributes appends, appended
// rows and refresh outcomes.
func TestAppendMetrics(t *testing.T) {
	base, err := GenerateDataset("lineitem", 1000, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := Open(&Config{CacheBytes: 8 << 20})
	db.Register(base)
	if _, _, err := db.ExecuteQueries("lineitem",
		[]GroupQuery{{Cols: []string{"l_returnflag"}}}, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append("lineitem", tableRows(base, 0, 60)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append("nope", nil); err == nil {
		t.Fatal("unknown table accepted")
	}
	m := db.Metrics()
	if m["gbmqo_appends_total"] != 1 {
		t.Fatalf("appends_total = %v", m["gbmqo_appends_total"])
	}
	if m["gbmqo_append_rows_total"] != 60 {
		t.Fatalf("append_rows_total = %v", m["gbmqo_append_rows_total"])
	}
	if m["gbmqo_append_errors_total"] != 1 {
		t.Fatalf("append_errors_total = %v", m["gbmqo_append_errors_total"])
	}
	if m["gbmqo_cache_refreshed_total"] < 1 {
		t.Fatalf("cache_refreshed_total = %v", m["gbmqo_cache_refreshed_total"])
	}
}

// TestAppendBatchingFence: appends interleaved with Submit micro-batches stay
// correct — the append flushes the table's open batch window first, so
// batched queries never straddle the epoch bump.
func TestAppendBatchingFence(t *testing.T) {
	base, err := GenerateDataset("lineitem", 1200, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := Open(&Config{CacheBytes: 8 << 20})
	db.Register(base)
	db.StartBatching(BatchOptions{MaxWait: 50 * time.Millisecond})
	defer db.StopBatching()

	q := GroupQuery{Cols: []string{"l_returnflag"}, Aggs: []Agg{
		{Kind: AggCountStar, Name: "cnt"},
		{Kind: AggSum, Col: datagen.LQuantity, Name: "sum_qty"}}}
	done := make(chan error, 1)
	var pre *Table
	go func() {
		var err error
		pre, _, err = db.Submit(context.Background(), "lineitem", q)
		done <- err
	}()
	// The append lands while the window is (very likely) still open; the
	// fence closes it against the pre-append snapshot.
	if _, err := db.Append("lineitem", tableRows(base, 0, 80)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if pre.NumRows() == 0 {
		t.Fatal("batched query returned nothing")
	}

	// A post-append submit must see the appended rows.
	post, _, err := db.Submit(context.Background(), "lineitem", q)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := db.Table("lineitem")
	ref := Open(nil)
	ref.Register(rebuildFromScratch(cur))
	want, _, err := ref.Submit(context.Background(), "lineitem", q)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shardFP(post), shardFP(want)) {
		t.Fatalf("post-append submit differs from cold rebuild:\nwant:\n%s\ngot:\n%s",
			want.FormatRows(20), post.FormatRows(20))
	}
}
