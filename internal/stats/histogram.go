package stats

import (
	"fmt"
	"sort"
	"strings"

	"gbmqo/internal/table"
)

// Histogram is an equi-depth histogram over one column, used for selection
// selectivity when a GROUPING SETS query carries a WHERE clause (§5.1.1
// pushes selections below the grouping-set computation; the cost model needs
// their selectivity). Small domains keep exact per-value counts; larger
// domains are cut into equi-depth buckets.
type Histogram struct {
	col      table.ColumnDef
	rows     int
	nulls    int
	distinct int
	exact    []exactEntry // small-domain path, sorted by value
	buckets  []bucket     // large-domain path
}

type exactEntry struct {
	v    table.Value
	rows int
}

type bucket struct {
	lo, hi table.Value // inclusive bounds
	rows   int
	ndv    int
}

// maxExactDomain is the distinct-value count up to which the histogram keeps
// exact per-value counts instead of buckets.
const maxExactDomain = 512

// BuildHistogram constructs an equi-depth histogram with the given number of
// buckets over column ord of t. nbuckets <= 0 selects 32.
func BuildHistogram(t *table.Table, ord, nbuckets int) *Histogram {
	col := t.Col(ord)
	h := &Histogram{col: col.Def(), rows: col.Len()}

	counts := make(map[uint32]int)
	for i := 0; i < col.Len(); i++ {
		counts[col.Code(i)]++
	}
	h.nulls = counts[0]
	delete(counts, 0)
	h.distinct = len(counts)

	codes := make([]uint32, 0, len(counts))
	for c := range counts {
		codes = append(codes, c)
	}
	ranks := col.Ranks()
	sort.Slice(codes, func(a, b int) bool { return ranks[codes[a]] < ranks[codes[b]] })

	if len(counts) <= maxExactDomain {
		for _, code := range codes {
			h.exact = append(h.exact, exactEntry{v: col.Decode(code), rows: counts[code]})
		}
		return h
	}

	nonNull := col.Len() - h.nulls
	if nbuckets <= 0 {
		nbuckets = 32
	}
	target := (nonNull + nbuckets - 1) / nbuckets
	var cur bucket
	flush := func() {
		if cur.ndv > 0 {
			h.buckets = append(h.buckets, cur)
			cur = bucket{}
		}
	}
	for _, code := range codes {
		v := col.Decode(code)
		if cur.ndv == 0 {
			cur.lo = v
		}
		cur.hi = v
		cur.ndv++
		cur.rows += counts[code]
		if cur.rows >= target {
			flush()
		}
	}
	flush()
	return h
}

// Rows returns the total row count the histogram was built over.
func (h *Histogram) Rows() int { return h.rows }

// NullFraction returns the fraction of NULL rows.
func (h *Histogram) NullFraction() float64 {
	if h.rows == 0 {
		return 0
	}
	return float64(h.nulls) / float64(h.rows)
}

// Distinct returns the exact distinct non-null value count.
func (h *Histogram) Distinct() int { return h.distinct }

// CmpOp is a comparison operator for selectivity estimation.
type CmpOp int

// Comparison operators understood by Selectivity.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Eval reports whether `a op b` holds for two non-null values.
func (op CmpOp) Eval(a, b table.Value) bool { return cmpSatisfies(a.Compare(b), op) }

func cmpSatisfies(c int, op CmpOp) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	default:
		return false
	}
}

// Selectivity estimates the fraction of rows satisfying `col op v`. NULL rows
// never satisfy a comparison.
func (h *Histogram) Selectivity(op CmpOp, v table.Value) float64 {
	if h.rows == 0 {
		return 0
	}
	matched := 0.0
	if h.exact != nil {
		for _, e := range h.exact {
			if cmpSatisfies(e.v.Compare(v), op) {
				matched += float64(e.rows)
			}
		}
	} else {
		for _, b := range h.buckets {
			matched += b.matched(op, v)
		}
	}
	sel := matched / float64(h.rows)
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

func (b bucket) matched(op CmpOp, v table.Value) float64 {
	loC := b.lo.Compare(v) // <0 when bucket lo < v
	hiC := b.hi.Compare(v)
	rows := float64(b.rows)
	switch op {
	case CmpEq:
		if loC > 0 || hiC < 0 {
			return 0
		}
		return rows / float64(b.ndv)
	case CmpNe:
		if loC > 0 || hiC < 0 {
			return rows
		}
		return rows * (1 - 1/float64(b.ndv))
	case CmpLt, CmpLe:
		if hiC < 0 || (hiC == 0 && op == CmpLe) {
			return rows // whole bucket below v
		}
		if loC > 0 || (loC == 0 && op == CmpLt) {
			return 0 // whole bucket above v
		}
		return rows / 2 // partial overlap: assume half
	case CmpGt, CmpGe:
		if loC > 0 || (loC == 0 && op == CmpGe) {
			return rows
		}
		if hiC < 0 || (hiC == 0 && op == CmpGt) {
			return 0
		}
		return rows / 2
	default:
		return 0
	}
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "histogram(%s): rows=%d nulls=%d ndv=%d", h.col.Name, h.rows, h.nulls, h.distinct)
	if h.exact != nil {
		fmt.Fprintf(&b, " exact-domain")
	} else {
		fmt.Fprintf(&b, " buckets=%d", len(h.buckets))
	}
	return b.String()
}
