package stats

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/table"
)

// Sample is a uniform random sample of row ordinals from one table. One
// sample per table is drawn once and reused to build statistics on any column
// set — the amortization the paper notes ("the optimizer can create multiple
// statistics from one sample").
type Sample struct {
	t    *table.Table
	rows []int32
}

// NewSample draws a uniform sample of up to size rows, deterministically from
// seed. If the table has at most size rows the sample is the whole table.
func NewSample(t *table.Table, size int, seed int64) *Sample {
	n := t.NumRows()
	if size >= n {
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(i)
		}
		return &Sample{t: t, rows: rows}
	}
	// Reservoir sampling keeps the draw uniform without materializing a full
	// permutation.
	r := rand.New(rand.NewSource(seed))
	rows := make([]int32, size)
	for i := 0; i < size; i++ {
		rows[i] = int32(i)
	}
	for i := size; i < n; i++ {
		if j := r.Intn(i + 1); j < size {
			rows[j] = int32(i)
		}
	}
	return &Sample{t: t, rows: rows}
}

// Size returns the number of sampled rows.
func (s *Sample) Size() int { return len(s.rows) }

// ProfileOf counts the frequency profile of column-set combinations within
// the sample. Combinations are keyed by a 64-bit mix of their codes; for
// statistics purposes the ~2⁻⁶⁴ per-pair collision probability is
// negligible against sampling error, and it makes profiling an order of
// magnitude cheaper than materializing byte keys (profiling cost is exactly
// the §6.7 statistics-creation overhead).
func (s *Sample) ProfileOf(set colset.Set) Profile {
	cols := set.Columns()
	codes := make([][]uint32, len(cols))
	for i, c := range cols {
		codes[i] = s.t.Col(c).Codes()
	}
	counts := make(map[uint64]int32, len(s.rows))
	for _, row := range s.rows {
		h := uint64(0x9e3779b97f4a7c15)
		for _, col := range codes {
			h ^= uint64(col[row]) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 27
		}
		counts[h]++
	}
	freq := make(map[int]int)
	for _, c := range counts {
		freq[int(c)]++
	}
	return Profile{N: s.t.NumRows(), n: len(s.rows), d: len(counts), Freq: freq}
}

// ExactNDV counts the exact number of distinct column-set combinations in the
// full table. O(rows); used by the Exact estimator, tests, and calibration.
func ExactNDV(t *table.Table, set colset.Set) int {
	cols := set.Columns()
	seen := make(map[string]struct{}, 1024)
	var key []byte
	for row := 0; row < t.NumRows(); row++ {
		key = key[:0]
		for _, c := range cols {
			key = binary.LittleEndian.AppendUint32(key, t.Col(c).Code(row))
		}
		if _, ok := seen[string(key)]; !ok {
			seen[string(key)] = struct{}{}
		}
	}
	return len(seen)
}

// Accounting records the cost of statistics creation, the quantity §6.7
// reports as a fraction of execution-time savings.
type Accounting struct {
	// StatsCreated is the number of distinct column-set statistics built.
	StatsCreated int
	// SamplesDrawn is the number of table samples drawn.
	SamplesDrawn int
	// CreateTime is total wall time spent drawing samples and profiling.
	CreateTime time.Duration
}

// Service builds and caches column-set statistics over registered tables. A
// statistic for a column set is created on demand the first time the cost
// model asks for it ("the algorithm created a statistics on the grouping
// columns of a Group By query if it encountered that Group By for the first
// time", §6.7) and reused afterwards.
type Service struct {
	estimator  Estimator
	sampleSize int
	seed       int64

	// mu guards the memoization maps and the accounting: one service is
	// shared by every concurrent query (the result-cache path costs lattice
	// ancestors from multiple goroutines at once), so creation and lookup
	// must be serialized. Statistics creation is one-time per column set, so
	// holding the lock across a profile build does not serialize steady-state
	// costing.
	mu      sync.Mutex
	samples map[string]*Sample
	ndv     map[string]map[colset.Set]float64
	// built records which table snapshot each cached entry was computed over.
	// Statistics are memoized by table *name*, but a name can be rebound to a
	// new snapshot (replace, or an append producing a new *Table): comparing
	// pointers on every lookup self-heals the cache, so stale NDVs for dead
	// snapshots can never accumulate or be served.
	built map[string]*table.Table
	acct  Accounting
}

// NewService creates a statistics service. sampleSize <= 0 selects a default
// of 10 000 rows.
func NewService(e Estimator, sampleSize int, seed int64) *Service {
	if sampleSize <= 0 {
		sampleSize = 10_000
	}
	return &Service{
		estimator:  e,
		sampleSize: sampleSize,
		seed:       seed,
		samples:    make(map[string]*Sample),
		ndv:        make(map[string]map[colset.Set]float64),
		built:      make(map[string]*table.Table),
	}
}

// syncLocked wipes cached statistics built over a different snapshot of t's
// name. Callers hold s.mu.
func (s *Service) syncLocked(t *table.Table) {
	if prev, ok := s.built[t.Name()]; ok && prev == t {
		return
	}
	delete(s.samples, t.Name())
	delete(s.ndv, t.Name())
	s.built[t.Name()] = t
}

// Estimator returns the configured estimation method.
func (s *Service) Estimator() Estimator { return s.estimator }

// NDV returns the estimated number of distinct combinations of the column set
// over the table, creating (and caching) the statistic on first use. An empty
// set has NDV 1 (the single global group).
//
// Single columns are answered exactly from the column dictionary — the
// full-scan statistics every commercial DBMS maintains per column. Sampled
// multi-column estimates are clamped to the sandwich every optimizer applies:
// at least the largest member column's NDV, at most the product of member
// NDVs (and never above the row count). Without the lower bound, sampling
// estimators can under-estimate a near-unique combination several-fold and
// trick the optimizer into materializing an intermediate nearly as large as
// the base table.
func (s *Service) NDV(t *table.Table, set colset.Set) float64 {
	if set.IsEmpty() {
		return 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncLocked(t)
	byTable, ok := s.ndv[t.Name()]
	if !ok {
		byTable = make(map[colset.Set]float64)
		s.ndv[t.Name()] = byTable
	}
	if v, ok := byTable[set]; ok {
		return v
	}
	start := time.Now()
	est := s.estimate(t, set, byTable)
	s.acct.StatsCreated++
	s.acct.CreateTime += time.Since(start)
	byTable[set] = est
	return est
}

// CachedNDV is the non-creating lookup NDV: it answers from already-built
// statistics and never profiles. Execution-time consumers (the adaptive
// kernel chooser) use it so a statistic the optimizer did not need is not
// built mid-query. An empty set answers 1; a single column answers exactly
// from the dictionary (free — no sample involved); anything else misses with
// (0, false) unless the optimizer already built it.
func (s *Service) CachedNDV(t *table.Table, set colset.Set) (float64, bool) {
	if set.IsEmpty() {
		return 1, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if byTable, ok := s.ndv[t.Name()]; ok && s.built[t.Name()] == t {
		if v, ok := byTable[set]; ok {
			return v, true
		}
	}
	if set.Len() == 1 {
		return float64(t.Col(set.Min()).DictSize()), true
	}
	return 0, false
}

func (s *Service) estimate(t *table.Table, set colset.Set, byTable map[colset.Set]float64) float64 {
	if s.estimator == Exact {
		return float64(ExactNDV(t, set))
	}
	if set.Len() == 1 {
		// Exact per-column distinct count straight off the dictionary.
		return float64(t.Col(set.Min()).DictSize())
	}
	sample, ok := s.samples[t.Name()]
	if !ok {
		sample = NewSample(t, s.sampleSize, s.seed)
		s.samples[t.Name()] = sample
		s.acct.SamplesDrawn++
	}
	profile := sample.ProfileOf(set)

	lo, hi := 1.0, 1.0
	set.ForEach(func(c int) {
		single, cached := byTable[colset.Of(c)]
		if !cached {
			single = float64(t.Col(c).DictSize())
			byTable[colset.Of(c)] = single
		}
		if single > lo {
			lo = single
		}
		hi *= single
	})
	if n := float64(t.NumRows()); hi > n {
		hi = n
	}

	var est float64
	if float64(profile.Distinct()) > saturationFraction*float64(profile.SampleSize()) {
		// The sample is saturated (most sampled rows are distinct
		// combinations): f1-based extrapolation is unreliable by sqrt(N/n)
		// here, but the *collision count* still identifies the scale — under
		// uniform draws the expected number of colliding rows is
		// n(n-1)/(2D), so D̂ = n(n-1)/(2c) (birthday estimator). Zero
		// collisions are indistinguishable from all-distinct, giving D̂ = N.
		est = birthdayEstimate(profile, float64(t.NumRows()))
	} else {
		est = profile.Estimate(s.estimator)
	}
	return clamp(est, lo, hi)
}

// saturationFraction is the observed-distinct to sample-size ratio above
// which f1-extrapolation is abandoned for the collision-based estimate.
const saturationFraction = 0.5

// birthdayEstimate inverts the birthday bound: with n sampled rows showing d
// distinct combinations, c = n − d rows collided, and E[c] ≈ n(n−1)/(2D).
func birthdayEstimate(p Profile, rows float64) float64 {
	n := float64(p.SampleSize())
	c := n - float64(p.Distinct())
	if c <= 0 {
		return rows
	}
	return n * (n - 1) / (2 * c)
}

// Accounting returns a copy of the creation-cost counters.
func (s *Service) Accounting() Accounting {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acct
}

// ResetAccounting zeroes the counters (cached statistics are kept).
func (s *Service) ResetAccounting() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acct = Accounting{}
}

// Invalidate drops cached statistics and the sample for a table (used when a
// table is regenerated between experiment steps).
func (s *Service) Invalidate(tableName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.samples, tableName)
	delete(s.ndv, tableName)
	delete(s.built, tableName)
}

// DropStale drops cached statistics for a table unless they were built over
// the given current snapshot. The engine calls it when the result cache sweeps
// stale versions (cache.InvalidateBelow), so NDVs for dead versions are
// reclaimed in step with the cached results derived from them rather than
// accumulating until the next on-demand lookup.
func (s *Service) DropStale(tableName string, current *table.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.built[tableName]; ok && prev == current {
		return
	}
	delete(s.samples, tableName)
	delete(s.ndv, tableName)
	delete(s.built, tableName)
}

// Retained reports how many tables currently have cached statistics (tests
// use it to assert the churn leak stays bounded).
func (s *Service) Retained() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ndv)
}
