package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/table"
)

// intTable builds a single-column Int64 table from values.
func intTable(name string, vals ...int64) *table.Table {
	t := table.New(name, []table.ColumnDef{{Name: "a", Typ: table.TInt64}})
	for _, v := range vals {
		t.AppendRow(table.Int(v))
	}
	return t
}

// uniformTable builds rows random values in [0, domain).
func uniformTable(rows, domain int, seed int64) *table.Table {
	r := rand.New(rand.NewSource(seed))
	t := table.New("u", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TInt64},
	})
	for i := 0; i < rows; i++ {
		t.AppendRow(table.Int(int64(r.Intn(domain))), table.Int(int64(r.Intn(7))))
	}
	return t
}

func TestExactNDV(t *testing.T) {
	tb := intTable("t", 1, 2, 2, 3, 3, 3)
	if got := ExactNDV(tb, colset.Of(0)); got != 3 {
		t.Fatalf("ExactNDV = %d, want 3", got)
	}
}

func TestExactNDVMultiColumn(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TInt64},
	})
	tb.AppendRow(table.Int(1), table.Int(1))
	tb.AppendRow(table.Int(1), table.Int(2))
	tb.AppendRow(table.Int(1), table.Int(1))
	if got := ExactNDV(tb, colset.Of(0, 1)); got != 2 {
		t.Fatalf("pair NDV = %d, want 2", got)
	}
	if got := ExactNDV(tb, colset.Of(0)); got != 1 {
		t.Fatalf("single NDV = %d, want 1", got)
	}
}

func TestSampleCoversSmallTable(t *testing.T) {
	tb := intTable("t", 1, 2, 3)
	s := NewSample(tb, 100, 1)
	if s.Size() != 3 {
		t.Fatalf("sample size = %d, want 3 (whole table)", s.Size())
	}
	p := s.ProfileOf(colset.Of(0))
	if p.Distinct() != 3 {
		t.Fatalf("profile distinct = %d", p.Distinct())
	}
	// Whole-table sample must estimate exactly regardless of estimator.
	for _, e := range []Estimator{GEE, Shlosser, Chao} {
		if got := p.Estimate(e); got != 3 {
			t.Errorf("%v estimate on full sample = %v, want 3", e, got)
		}
	}
}

func TestSampleIsUniformish(t *testing.T) {
	tb := uniformTable(10_000, 100, 9)
	s := NewSample(tb, 1000, 1)
	if s.Size() != 1000 {
		t.Fatalf("sample size = %d", s.Size())
	}
	// A 10% sample of a 100-value uniform domain should see nearly all values.
	p := s.ProfileOf(colset.Of(0))
	if p.Distinct() < 95 {
		t.Fatalf("sample saw only %d of ~100 values", p.Distinct())
	}
}

func TestEstimatorsWithinReasonOnUniform(t *testing.T) {
	// 50k rows over 500 distinct values, sample 2k: all estimators should land
	// within 2x of the truth on uniform data.
	tb := uniformTable(50_000, 500, 11)
	s := NewSample(tb, 2000, 2)
	truth := float64(ExactNDV(tb, colset.Of(0)))
	p := s.ProfileOf(colset.Of(0))
	for _, e := range []Estimator{GEE, Shlosser, Chao} {
		got := p.Estimate(e)
		if got < truth/2 || got > truth*2 {
			t.Errorf("%v estimate = %.0f, truth = %.0f (off by more than 2x)", e, got, truth)
		}
	}
}

func TestEstimateClamping(t *testing.T) {
	p := Profile{N: 100, n: 10, d: 10, Freq: map[int]int{1: 10}}
	for _, e := range []Estimator{GEE, Shlosser, Chao} {
		got := p.Estimate(e)
		if got < 10 || got > 100 {
			t.Errorf("%v estimate %v outside [d, N]", e, got)
		}
	}
}

func TestEstimateEmptyProfile(t *testing.T) {
	p := Profile{N: 100, n: 0, d: 0, Freq: map[int]int{}}
	if got := p.Estimate(GEE); got != 0 {
		t.Fatalf("empty profile estimate = %v", got)
	}
}

func TestChaoFallbackNoDoubletons(t *testing.T) {
	p := Profile{N: 1000, n: 10, d: 10, Freq: map[int]int{1: 10}}
	got := p.Estimate(Chao)
	if got <= 10 {
		t.Fatalf("Chao fallback should extrapolate beyond d: %v", got)
	}
	if got > 1000 {
		t.Fatalf("Chao fallback exceeded N: %v", got)
	}
}

func TestEstimatorString(t *testing.T) {
	for e, want := range map[Estimator]string{GEE: "GEE", Shlosser: "Shlosser", Chao: "Chao", Exact: "Exact"} {
		if e.String() != want {
			t.Errorf("%d.String() = %q", int(e), e.String())
		}
	}
	if !strings.Contains(Estimator(42).String(), "42") {
		t.Error("unknown estimator should include code")
	}
}

func TestServiceCachesAndAccounts(t *testing.T) {
	tb := uniformTable(5000, 50, 13)
	svc := NewService(GEE, 1000, 1)
	a := svc.NDV(tb, colset.Of(0))
	if a != 50 { // single columns are exact off the dictionary
		t.Fatalf("NDV = %v, want 50", a)
	}
	acct := svc.Accounting()
	if acct.StatsCreated != 1 || acct.SamplesDrawn != 0 {
		t.Fatalf("accounting after single-column call = %+v", acct)
	}
	// Second call on the same set must hit the cache.
	b := svc.NDV(tb, colset.Of(0))
	if b != a {
		t.Fatalf("cached NDV differs: %v vs %v", b, a)
	}
	if got := svc.Accounting().StatsCreated; got != 1 {
		t.Fatalf("cache miss on repeated call: StatsCreated = %d", got)
	}
	// A multi-column set draws the sample; a further one reuses it.
	svc.NDV(tb, colset.Of(0, 1))
	acct = svc.Accounting()
	if acct.StatsCreated != 2 || acct.SamplesDrawn != 1 {
		t.Fatalf("accounting after pair = %+v", acct)
	}
}

func TestBirthdayEstimate(t *testing.T) {
	// 1000 sampled rows, 900 distinct → 100 collisions → D̂ = 1000·999/200.
	p := Profile{N: 1_000_000, n: 1000, d: 900, Freq: nil}
	got := birthdayEstimate(p, 1_000_000)
	want := 1000.0 * 999 / 200
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("birthdayEstimate = %v, want %v", got, want)
	}
	// Zero collisions are indistinguishable from all-distinct.
	p = Profile{N: 1_000_000, n: 1000, d: 1000}
	if got := birthdayEstimate(p, 1_000_000); got != 1_000_000 {
		t.Fatalf("zero-collision estimate = %v, want N", got)
	}
}

func TestSaturatedSampleFallsBackToBackoff(t *testing.T) {
	// Two near-unique columns: their pair saturates the sample, so the
	// estimate must come out near the row count, not the ~sqrt(N/n)-scaled
	// sample distinct count.
	r := rand.New(rand.NewSource(31))
	tb := table.New("t", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TInt64},
	})
	n := 60_000
	for i := 0; i < n; i++ {
		tb.AppendRow(table.Int(int64(r.Intn(n))), table.Int(int64(r.Intn(n))))
	}
	svc := NewService(GEE, 2000, 1)
	got := svc.NDV(tb, colset.Of(0, 1))
	if got < float64(n)*0.6 {
		t.Fatalf("saturated pair NDV = %v, want near %d", got, n)
	}
}

func TestServiceEmptySet(t *testing.T) {
	tb := intTable("t", 1, 2)
	svc := NewService(GEE, 10, 1)
	if got := svc.NDV(tb, colset.Set(0)); got != 1 {
		t.Fatalf("empty-set NDV = %v, want 1", got)
	}
}

func TestServiceExactEstimator(t *testing.T) {
	tb := intTable("t", 1, 2, 2, 3)
	svc := NewService(Exact, 2, 1)
	if got := svc.NDV(tb, colset.Of(0)); got != 3 {
		t.Fatalf("Exact NDV = %v, want 3", got)
	}
}

func TestServiceInvalidate(t *testing.T) {
	tb := intTable("t", 1, 2, 3)
	svc := NewService(Exact, 10, 1)
	svc.NDV(tb, colset.Of(0))
	svc.Invalidate("t")
	svc.ResetAccounting()
	svc.NDV(tb, colset.Of(0))
	if got := svc.Accounting().StatsCreated; got != 1 {
		t.Fatalf("invalidate did not drop cache: created = %d", got)
	}
}

func TestNDVSupersetAtLeastSubset(t *testing.T) {
	// Estimated NDV of a superset should not be (much) below a subset — with
	// the same sample both profiles come from the same rows, so the observed
	// distinct counts are monotone, and clamping keeps estimates ordered
	// within estimator noise.
	tb := uniformTable(20_000, 200, 17)
	svc := NewService(GEE, 2000, 3)
	sub := svc.NDV(tb, colset.Of(1))
	super := svc.NDV(tb, colset.Of(0, 1))
	if super < sub*0.8 {
		t.Fatalf("superset NDV %v below subset NDV %v", super, sub)
	}
}

func TestHistogramExactDomain(t *testing.T) {
	tb := intTable("t", 1, 1, 2, 3, 3, 3)
	h := BuildHistogram(tb, 0, 4)
	if h.Distinct() != 3 || h.Rows() != 6 {
		t.Fatalf("histogram = %v", h)
	}
	if got := h.Selectivity(CmpEq, table.Int(3)); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("sel(=3) = %v, want 0.5", got)
	}
	if got := h.Selectivity(CmpLt, table.Int(2)); math.Abs(got-2.0/6) > 1e-9 {
		t.Fatalf("sel(<2) = %v, want 1/3", got)
	}
	if got := h.Selectivity(CmpGe, table.Int(2)); math.Abs(got-4.0/6) > 1e-9 {
		t.Fatalf("sel(>=2) = %v, want 2/3", got)
	}
	if got := h.Selectivity(CmpNe, table.Int(1)); math.Abs(got-4.0/6) > 1e-9 {
		t.Fatalf("sel(<>1) = %v, want 2/3", got)
	}
}

func TestHistogramNulls(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{{Name: "a", Typ: table.TInt64}})
	tb.AppendRow(table.Int(1))
	tb.AppendRow(table.Null(table.TInt64))
	tb.AppendRow(table.Null(table.TInt64))
	tb.AppendRow(table.Int(5))
	h := BuildHistogram(tb, 0, 4)
	if got := h.NullFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("null fraction = %v", got)
	}
	// NULLs never satisfy comparisons.
	if got := h.Selectivity(CmpGe, table.Int(0)); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("sel(>=0) = %v, want 0.5", got)
	}
}

func TestHistogramBucketedDomain(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	tb := table.New("t", []table.ColumnDef{{Name: "a", Typ: table.TInt64}})
	for i := 0; i < 20_000; i++ {
		tb.AppendRow(table.Int(int64(r.Intn(5000))))
	}
	h := BuildHistogram(tb, 0, 32)
	if h.exact != nil {
		t.Fatal("large domain should use buckets")
	}
	if !strings.Contains(h.String(), "buckets=") {
		t.Fatalf("String = %q", h.String())
	}
	// Median split should be near 0.5 (within bucket resolution).
	got := h.Selectivity(CmpLt, table.Int(2500))
	if got < 0.4 || got > 0.6 {
		t.Fatalf("sel(<median) = %v, want ≈0.5", got)
	}
	// Range sanity: sel(<0) ≈ 0, sel(<5001) = 1.
	if got := h.Selectivity(CmpLt, table.Int(0)); got > 0.01 {
		t.Fatalf("sel(<0) = %v", got)
	}
	if got := h.Selectivity(CmpLe, table.Int(5001)); got < 0.99 {
		t.Fatalf("sel(<=max) = %v", got)
	}
}

func TestHistogramEmptyTable(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{{Name: "a", Typ: table.TInt64}})
	h := BuildHistogram(tb, 0, 4)
	if h.Selectivity(CmpEq, table.Int(1)) != 0 || h.NullFraction() != 0 {
		t.Fatal("empty table selectivity should be 0")
	}
}

func TestCmpOpEvalAndString(t *testing.T) {
	if !CmpLt.Eval(table.Int(1), table.Int(2)) || CmpLt.Eval(table.Int(2), table.Int(2)) {
		t.Fatal("CmpLt.Eval wrong")
	}
	for op, want := range map[CmpOp]string{CmpEq: "=", CmpNe: "<>", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">="} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
}

func TestSampleDeterminism(t *testing.T) {
	tb := uniformTable(5000, 100, 23)
	a := NewSample(tb, 500, 7)
	b := NewSample(tb, 500, 7)
	pa, pb := a.ProfileOf(colset.Of(0)), b.ProfileOf(colset.Of(0))
	if pa.Distinct() != pb.Distinct() {
		t.Fatalf("samples differ across runs: %d vs %d", pa.Distinct(), pb.Distinct())
	}
}
