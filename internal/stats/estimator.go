// Package stats implements the statistics substrate the optimizer cost model
// relies on (§3.2): uniform row samples, sampling-based distinct-value
// estimation (the paper points at Haas, Naughton, Seshadri & Stokes, VLDB
// 1995, for this), per-column-set statistics with creation-time accounting
// (§6.7 measures that overhead), and equi-depth histograms for selection
// selectivity.
package stats

import (
	"fmt"
	"math"
)

// Estimator selects the distinct-value extrapolation method applied to a
// sample frequency profile.
type Estimator int

const (
	// GEE is the Guaranteed-Error Estimator: D̂ = sqrt(N/n)·f1 + Σ_{j≥2} fj.
	GEE Estimator = iota
	// Shlosser is the Shlosser estimator from Haas et al. 1995, accurate for
	// skewed data.
	Shlosser
	// Chao is the Chao84 estimator: D̂ = d + f1²/(2·f2).
	Chao
	// Exact scans the full table instead of extrapolating from a sample. It
	// exists for tests and for calibrating the sampling estimators.
	Exact
)

// String names the estimator.
func (e Estimator) String() string {
	switch e {
	case GEE:
		return "GEE"
	case Shlosser:
		return "Shlosser"
	case Chao:
		return "Chao"
	case Exact:
		return "Exact"
	default:
		return fmt.Sprintf("Estimator(%d)", int(e))
	}
}

// Profile is the frequency profile of a sample: d distinct combinations were
// observed in a sample of n rows drawn from N rows, and Freq[j] combinations
// occurred exactly j times.
type Profile struct {
	N    int // total rows in the relation
	n    int // sample size
	d    int // distinct combinations in the sample
	Freq map[int]int
}

// Distinct returns the number of distinct combinations in the sample.
func (p Profile) Distinct() int { return p.d }

// SampleSize returns the number of sampled rows.
func (p Profile) SampleSize() int { return p.n }

// Estimate extrapolates the profile to a full-relation NDV estimate with the
// chosen estimator. Results are clamped to [d, N]: the true NDV is at least
// the observed distinct count and at most the row count.
func (p Profile) Estimate(e Estimator) float64 {
	if p.n == 0 || p.d == 0 {
		return 0
	}
	if p.n >= p.N {
		// The sample is the whole relation; the observed count is exact.
		return float64(p.d)
	}
	var est float64
	f1 := float64(p.Freq[1])
	switch e {
	case GEE:
		rest := float64(p.d - p.Freq[1])
		est = math.Sqrt(float64(p.N)/float64(p.n))*f1 + rest
	case Chao:
		f2 := float64(p.Freq[2])
		if f2 == 0 {
			// Standard bias-corrected fallback when no doubletons were seen.
			est = float64(p.d) + f1*(f1-1)/2
		} else {
			est = float64(p.d) + f1*f1/(2*f2)
		}
	case Shlosser:
		est = p.shlosser()
	case Exact:
		// Exact estimation is handled by the Service (full scan); if asked to
		// extrapolate a sample exactly, the observed count is the best answer.
		est = float64(p.d)
	default:
		est = float64(p.d)
	}
	return clamp(est, float64(p.d), float64(p.N))
}

// shlosser computes the Shlosser 1981 estimator:
//
//	D̂ = d + f1 · Σ_i (1-q)^i·f_i / Σ_i i·q·(1-q)^(i-1)·f_i,  q = n/N.
func (p Profile) shlosser() float64 {
	q := float64(p.n) / float64(p.N)
	var num, den float64
	for i, fi := range p.Freq {
		f := float64(fi)
		num += math.Pow(1-q, float64(i)) * f
		den += float64(i) * q * math.Pow(1-q, float64(i-1)) * f
	}
	if den == 0 {
		return float64(p.d)
	}
	return float64(p.d) + float64(p.Freq[1])*num/den
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
