package sql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics throws arbitrary strings at the parser; it must
// return (possibly an error) without panicking.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTokenSoupNeverPanics builds random-but-SQL-flavored token soups,
// which reach much deeper into the parser than arbitrary bytes.
func TestQuickTokenSoupNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "GROUPING", "SETS", "CUBE",
		"ROLLUP", "COMBI", "JOIN", "ON", "AND", "AS", "COUNT", "SUM", "MIN",
		"MAX", "(", ")", ",", ";", "*", "=", "<", ">", "<=", ">=", "<>",
		"a", "b", "t", "42", "3.14", "'x'",
	}
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(20)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(vocab[r.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		input := sb.String()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on %q: %v", input, rec)
				}
			}()
			_, _ = Parse(input)
		}()
	}
}

// TestQuickExecutorRejectsGracefully runs random parseable-looking queries
// against a real engine; anything that parses must either execute or fail
// with an error — never panic.
func TestQuickExecutorRejectsGracefully(t *testing.T) {
	eng, _ := newSQLEngine(t)
	cols := []string{"a", "b", "c", "x", "nosuch"}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		c1, c2 := cols[r.Intn(len(cols))], cols[r.Intn(len(cols))]
		gclause := ""
		switch r.Intn(6) {
		case 0:
			gclause = "GROUP BY " + c1
		case 1:
			gclause = "GROUP BY GROUPING SETS ((" + c1 + "), (" + c2 + "))"
		case 2:
			gclause = "GROUP BY CUBE(" + c1 + ", " + c2 + ")"
		case 3:
			gclause = "GROUP BY ROLLUP(" + c1 + ")"
		case 4:
			gclause = "GROUP BY COMBI(2; " + c1 + ", " + c2 + ")"
		}
		where := ""
		if r.Intn(2) == 0 {
			where = "WHERE " + c1 + " >= 1"
		}
		q := "SELECT COUNT(*) FROM t " + where + " " + gclause
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on %q: %v", q, rec)
				}
			}()
			res, err := Run(eng, q, Options{})
			if err == nil && res.Table == nil {
				t.Fatalf("nil result without error for %q", q)
			}
		}()
	}
}
