package sql

import (
	"fmt"
	"strings"

	"gbmqo/internal/stats"
)

// Query is the parsed form of a supported statement:
//
//	SELECT <items> FROM <table> [JOIN <table> ON a = b]
//	[WHERE <conjuncts>] [GROUP BY <group spec>]
type Query struct {
	Select []SelectItem
	From   FromClause
	Where  []Condition
	Group  GroupSpec
}

// SelectItem is one projection: a column reference or an aggregate.
type SelectItem struct {
	// Star marks `*` (legal only without GROUP BY; equivalent to selecting
	// the grouping columns in grouped queries).
	Star bool
	// Agg names an aggregate function (COUNT, SUM, MIN, MAX); empty for a
	// plain column reference.
	Agg string
	// AggStar marks COUNT(*).
	AggStar bool
	// Column is the referenced column (aggregate argument or group column).
	Column string
	// Alias is the output name (AS alias).
	Alias string
}

// FromClause is a base table, optionally inner-joined to a second one.
type FromClause struct {
	Table string
	// Join, when non-empty, is the right-side table of an inner equi-join.
	Join string
	// LeftCol/RightCol are the join columns (ON left = right).
	LeftCol, RightCol string
}

// Condition is one WHERE conjunct: column op literal.
type Condition struct {
	Column string
	Op     stats.CmpOp
	// Lit is the literal as scanned; the binder types it against the column.
	Lit litValue
}

type litValue struct {
	isString bool
	s        string
	num      string
}

// GroupKind classifies the GROUP BY clause.
type GroupKind int

// Group specifications.
const (
	// GroupNone means no GROUP BY clause (plain or global-aggregate query).
	GroupNone GroupKind = iota
	// GroupPlain is GROUP BY col, col, …
	GroupPlain
	// GroupGroupingSets is GROUP BY GROUPING SETS ((..), (..), …).
	GroupGroupingSets
	// GroupCube is GROUP BY CUBE(col, …).
	GroupCube
	// GroupRollup is GROUP BY ROLLUP(col, …).
	GroupRollup
	// GroupCombi is the COMBI(k; col, …) extension: every subset of the
	// columns up to size k (§2's syntactic extension for data-analysis
	// workloads, after Hinneburg et al. [15]).
	GroupCombi
)

// GroupSpec is the parsed GROUP BY clause.
type GroupSpec struct {
	Kind GroupKind
	// Cols are the columns of plain/CUBE/ROLLUP/COMBI specs.
	Cols []string
	// Sets are the explicit GROUPING SETS lists.
	Sets [][]string
	// CombiK is the subset-size bound for COMBI.
	CombiK int
}

// String re-renders the query (canonical form; used by round-trip tests).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	fmt.Fprintf(&b, " FROM %s", q.From.Table)
	if q.From.Join != "" {
		fmt.Fprintf(&b, " JOIN %s ON %s = %s", q.From.Join, q.From.LeftCol, q.From.RightCol)
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	if q.Group.Kind != GroupNone {
		b.WriteString(" GROUP BY ")
		b.WriteString(q.Group.String())
	}
	return b.String()
}

// String renders a select item.
func (it SelectItem) String() string {
	var s string
	switch {
	case it.Star:
		return "*"
	case it.AggStar:
		s = "COUNT(*)"
	case it.Agg != "":
		s = fmt.Sprintf("%s(%s)", it.Agg, it.Column)
	default:
		s = it.Column
	}
	if it.Alias != "" {
		s += " AS " + it.Alias
	}
	return s
}

// String renders a condition.
func (c Condition) String() string {
	lit := c.Lit.num
	if c.Lit.isString {
		lit = "'" + strings.ReplaceAll(c.Lit.s, "'", "''") + "'"
	}
	return fmt.Sprintf("%s %s %s", c.Column, c.Op, lit)
}

// String renders a group spec.
func (g GroupSpec) String() string {
	switch g.Kind {
	case GroupPlain:
		return strings.Join(g.Cols, ", ")
	case GroupCube:
		return fmt.Sprintf("CUBE(%s)", strings.Join(g.Cols, ", "))
	case GroupRollup:
		return fmt.Sprintf("ROLLUP(%s)", strings.Join(g.Cols, ", "))
	case GroupCombi:
		return fmt.Sprintf("COMBI(%d; %s)", g.CombiK, strings.Join(g.Cols, ", "))
	case GroupGroupingSets:
		parts := make([]string, len(g.Sets))
		for i, s := range g.Sets {
			parts[i] = "(" + strings.Join(s, ", ") + ")"
		}
		return "GROUPING SETS (" + strings.Join(parts, ", ") + ")"
	default:
		return ""
	}
}
