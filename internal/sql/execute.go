package sql

import (
	"context"
	"fmt"

	"strconv"
	"strings"
	"sync/atomic"

	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/plan"
	"gbmqo/internal/table"
)

// Options configures query execution.
type Options struct {
	// Strategy selects the multi-group-by planner (default GB-MQO).
	Strategy engine.Strategy
	// Model selects the cost model for optimizing strategies.
	Model engine.ModelKind
	// Core forwards search options to the optimizer.
	Core core.Options
	// Context cancels or deadlines execution (see engine.ExecOptions.Context).
	// Nil means context.Background().
	Context context.Context
	// Parallel executes independent sub-plans concurrently (see
	// engine.Request.Parallel).
	Parallel bool
	// Parallelism caps morsel workers inside one Group By operator (see
	// engine.Request.Parallelism; negative = GOMAXPROCS, 0 = sequential).
	Parallelism int
	// MemBudget bounds execution working memory in bytes with graceful
	// degradation (see engine.ExecOptions.MemBudget). 0 means unlimited.
	MemBudget int64
	// UseCache serves the grouped part of the query through the engine's
	// cross-query result cache when one is configured (see
	// engine.Request.UseCache). WHERE-filtered and join-derived sources are
	// ephemeral "__"-prefixed tables and always bypass the cache.
	UseCache bool
	// Retry retries transient execution failures with backoff and degradation
	// (see engine.Request.Retry). The zero value disables retry.
	Retry engine.RetryPolicy
	// AllowPartial opts into partial results under sharded execution: when a
	// shard fails terminally the merged survivors are returned with the loss
	// attributed in the report (see engine.Request.AllowPartial).
	AllowPartial bool
}

// Result is the outcome of executing a query.
type Result struct {
	// Table is the result set. Grouped queries produce the union-all shape of
	// GROUPING SETS output: all grouping columns (NULL where absent),
	// aggregate columns, and a grp_tag naming each row's grouping set.
	Table *table.Table
	// Plan is the logical plan used for the multi-group-by part (nil for
	// non-grouped queries).
	Plan *plan.Plan
	// Search reports optimizer effort when GB-MQO planned the query.
	Search core.SearchStats
	// Report accounts the plan execution (nil for non-grouped queries):
	// governance counters, degradations, and per-node kernel attribution.
	Report *engine.ExecReport
}

// tempSeq numbers ephemeral tables registered during execution.
var tempSeq atomic.Int64

func nextTempName(prefix string) string {
	return fmt.Sprintf("__%s_%d", prefix, tempSeq.Add(1))
}

// Run parses and executes a query against the engine.
func Run(eng *engine.Engine, query string, opts Options) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Execute(eng, q, opts)
}

// Execute runs a parsed query.
func Execute(eng *engine.Engine, q *Query, opts Options) (*Result, error) {
	if q.From.Join != "" {
		return executeJoin(eng, q, opts)
	}
	base, ok := resolveTable(eng, q.From.Table)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", q.From.Table)
	}
	src, cleanup, err := applyWhere(eng, base, q.Where)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	return executeGrouping(eng, src, q, opts)
}

// applyWhere filters the source table, registering the derived table so the
// engine can plan over it. The returned cleanup drops it.
func applyWhere(eng *engine.Engine, base *table.Table, conds []Condition) (*table.Table, func(), error) {
	if len(conds) == 0 {
		return base, func() {}, nil
	}
	pred, err := buildPredicate(base, conds)
	if err != nil {
		return nil, nil, err
	}
	name := nextTempName("where")
	filtered := exec.Filter(base, name, pred)
	eng.Catalog().Register(filtered)
	return filtered, func() { eng.Catalog().Drop(name) }, nil
}

func buildPredicate(t *table.Table, conds []Condition) (func(int) bool, error) {
	var preds []func(int) bool
	for _, c := range conds {
		ord := resolveColumn(t, c.Column)
		if ord < 0 {
			return nil, fmt.Errorf("sql: unknown column %q in WHERE", c.Column)
		}
		lit, err := typeLiteral(t.Col(ord).Type(), c.Lit)
		if err != nil {
			return nil, err
		}
		preds = append(preds, exec.CmpPredicate(t, ord, c.Op, lit))
	}
	return func(row int) bool {
		for _, p := range preds {
			if !p(row) {
				return false
			}
		}
		return true
	}, nil
}

// typeLiteral coerces a scanned literal to the column's type.
func typeLiteral(typ table.Type, lit litValue) (table.Value, error) {
	if lit.isString {
		if typ != table.TString {
			return table.Value{}, fmt.Errorf("sql: string literal compared to %s column", typ)
		}
		return table.Str(lit.s), nil
	}
	switch typ {
	case table.TInt64, table.TDate:
		n, err := strconv.ParseInt(lit.num, 10, 64)
		if err != nil {
			return table.Value{}, fmt.Errorf("sql: %q is not an integer literal", lit.num)
		}
		if typ == table.TDate {
			return table.Date(n), nil
		}
		return table.Int(n), nil
	case table.TFloat64:
		f, err := strconv.ParseFloat(lit.num, 64)
		if err != nil {
			return table.Value{}, fmt.Errorf("sql: %q is not a numeric literal", lit.num)
		}
		return table.Float(f), nil
	default:
		return table.Value{}, fmt.Errorf("sql: numeric literal compared to %s column", typ)
	}
}

// resolveTable finds a table by exact or case-insensitive name.
func resolveTable(eng *engine.Engine, name string) (*table.Table, bool) {
	if t, ok := eng.Catalog().Table(name); ok {
		return t, true
	}
	for _, n := range eng.Catalog().TableNames() {
		if strings.EqualFold(n, name) {
			return eng.Catalog().Table(n)
		}
	}
	return nil, false
}

// resolveColumn finds a column by case-insensitive name.
func resolveColumn(t *table.Table, name string) int {
	for i := 0; i < t.NumCols(); i++ {
		if strings.EqualFold(t.Col(i).Name(), name) {
			return i
		}
	}
	return -1
}

// BatchSpec is a grouped single-table query decomposed into scheduler form:
// the resolved base table, its grouping sets, the shared aggregate list, and
// whether the grand-total (empty) grouping set belongs to the result. It is
// how the SQL surface hands a statement to the micro-batching scheduler one
// grouping set at a time.
type BatchSpec struct {
	Table        string
	Sets         []colset.Set
	Aggs         []exec.Agg
	IncludeGrand bool
}

// Decompose resolves a parsed query into a BatchSpec. ok is false when the
// statement is not batchable by shape — joins, WHERE filters (their derived
// tables are ephemeral and private to one run) and non-grouped selects go
// down the solo path. Resolution failures (unknown table or column) are
// real errors regardless of shape.
func Decompose(eng *engine.Engine, q *Query) (spec *BatchSpec, ok bool, err error) {
	if q.From.Join != "" || len(q.Where) > 0 || q.Group.Kind == GroupNone {
		return nil, false, nil
	}
	src, found := resolveTable(eng, q.From.Table)
	if !found {
		return nil, false, fmt.Errorf("sql: unknown table %q", q.From.Table)
	}
	aggs, err := bindAggregates(src, q.Select)
	if err != nil {
		return nil, false, err
	}
	if len(aggs) == 0 {
		aggs = []exec.Agg{exec.CountStar()}
	}
	sets, includeGrand, err := expandGroupSpec(src, q.Group)
	if err != nil {
		return nil, false, err
	}
	return &BatchSpec{Table: src.Name(), Sets: sets, Aggs: aggs, IncludeGrand: includeGrand}, true, nil
}

// Assemble builds the GROUPING SETS union result shape from per-set result
// tables — the same assembly Execute performs, exported so a batching
// front-end that collected the per-set tables through the scheduler produces
// output byte-identical to a solo Run of the statement.
func Assemble(src *table.Table, spec *BatchSpec, results map[colset.Set]*table.Table) (*table.Table, error) {
	return assembleUnion(src, spec.Sets, spec.Aggs, results, spec.IncludeGrand)
}

// executeGrouping handles single-table queries.
func executeGrouping(eng *engine.Engine, src *table.Table, q *Query, opts Options) (*Result, error) {
	aggs, err := bindAggregates(src, q.Select)
	if err != nil {
		return nil, err
	}
	if q.Group.Kind == GroupNone {
		if len(aggs) > 0 {
			out := exec.GroupByHash(src, nil, aggs, "result")
			return &Result{Table: out}, nil
		}
		return &Result{Table: src.Rename("result")}, nil
	}
	sets, includeGrand, err := expandGroupSpec(src, q.Group)
	if err != nil {
		return nil, err
	}
	if len(aggs) == 0 {
		aggs = []exec.Agg{exec.CountStar()}
	}
	req := engine.Request{
		Table:     src.Name(),
		Sets:      sets,
		Aggs:      aggs,
		Strategy:  opts.Strategy,
		Model:     opts.Model,
		Core:      opts.Core,
		Context:   opts.Context,
		MemBudget: opts.MemBudget,
		UseCache:  opts.UseCache,
		Retry:     opts.Retry,

		Parallel:     opts.Parallel,
		Parallelism:  opts.Parallelism,
		AllowPartial: opts.AllowPartial,
	}
	run, err := eng.Run(req)
	if err != nil {
		return nil, err
	}
	out, err := assembleUnion(src, sets, aggs, run.Report.Results, includeGrand)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out, Plan: run.Plan, Search: run.Search, Report: run.Report}, nil
}

// bindAggregates turns the select list's aggregate items into exec.Agg specs.
// Plain column references must be grouping columns (checked by the engine
// implicitly: the output carries all grouping columns anyway).
func bindAggregates(t *table.Table, items []SelectItem) ([]exec.Agg, error) {
	var aggs []exec.Agg
	names := map[string]bool{}
	for _, it := range items {
		if it.Star || it.Agg == "" {
			continue
		}
		a := exec.Agg{}
		switch {
		case it.AggStar:
			a = exec.CountStar()
		default:
			ord := resolveColumn(t, it.Column)
			if ord < 0 {
				return nil, fmt.Errorf("sql: unknown column %q in %s()", it.Column, it.Agg)
			}
			a.Col = ord
			switch it.Agg {
			case "COUNT":
				a.Kind = exec.AggCount
			case "SUM":
				a.Kind = exec.AggSum
			case "MIN":
				a.Kind = exec.AggMin
			case "MAX":
				a.Kind = exec.AggMax
			default:
				return nil, fmt.Errorf("sql: unsupported aggregate %q", it.Agg)
			}
			a.Name = strings.ToLower(it.Agg) + "_" + strings.ToLower(it.Column)
		}
		if it.Alias != "" {
			a.Name = strings.ToLower(it.Alias)
		}
		if names[a.Name] {
			return nil, fmt.Errorf("sql: duplicate output column %q", a.Name)
		}
		names[a.Name] = true
		aggs = append(aggs, a)
	}
	return aggs, nil
}

// expandGroupSpec resolves the GROUP BY clause to column sets. The second
// return value reports whether the grand-total (empty) grouping set is part
// of the query (CUBE and ROLLUP include it per SQL).
func expandGroupSpec(t *table.Table, g GroupSpec) ([]colset.Set, bool, error) {
	resolve := func(names []string) (colset.Set, error) {
		var s colset.Set
		for _, n := range names {
			ord := resolveColumn(t, n)
			if ord < 0 {
				return 0, fmt.Errorf("sql: unknown grouping column %q", n)
			}
			if ord >= colset.MaxColumns {
				return 0, fmt.Errorf("sql: column ordinal %d exceeds the %d-column grouping limit", ord, colset.MaxColumns)
			}
			s = s.Add(ord)
		}
		return s, nil
	}
	var sets []colset.Set
	grand := false
	add := func(s colset.Set) {
		if s.IsEmpty() {
			grand = true
			return
		}
		for _, have := range sets {
			if have == s {
				return
			}
		}
		sets = append(sets, s)
	}
	switch g.Kind {
	case GroupPlain:
		s, err := resolve(g.Cols)
		if err != nil {
			return nil, false, err
		}
		add(s)
	case GroupGroupingSets:
		for _, names := range g.Sets {
			s, err := resolve(names)
			if err != nil {
				return nil, false, err
			}
			add(s)
		}
	case GroupCube:
		full, err := resolve(g.Cols)
		if err != nil {
			return nil, false, err
		}
		full.Subsets(func(s colset.Set) bool { add(s); return true })
	case GroupRollup:
		var prefix []string
		grand = true
		for _, c := range g.Cols {
			prefix = append(prefix, c)
			s, err := resolve(prefix)
			if err != nil {
				return nil, false, err
			}
			add(s)
		}
	case GroupCombi:
		full, err := resolve(g.Cols)
		if err != nil {
			return nil, false, err
		}
		full.Subsets(func(s colset.Set) bool {
			if !s.IsEmpty() && s.Len() <= g.CombiK {
				add(s)
			}
			return true
		})
	default:
		return nil, false, fmt.Errorf("sql: unsupported group kind %v", g.Kind)
	}
	if len(sets) == 0 && !grand {
		return nil, false, fmt.Errorf("sql: GROUP BY resolved to no grouping sets")
	}
	colset.SortSets(sets)
	return sets, grand, nil
}

// assembleUnion builds the GROUPING SETS result shape: the union of all
// grouping columns, the aggregates, and a grp_tag. The grand-total row, when
// requested, is rolled up from the first grouping set's result.
func assembleUnion(src *table.Table, sets []colset.Set, aggs []exec.Agg, results map[colset.Set]*table.Table, includeGrand bool) (*table.Table, error) {
	union := colset.UnionAll(sets)
	var outCols []table.ColumnDef
	union.ForEach(func(c int) {
		outCols = append(outCols, src.Col(c).Def())
	})
	for _, a := range aggs {
		outCols = append(outCols, table.ColumnDef{Name: a.Name, Typ: aggOutType(src, a)})
	}
	var parts []*table.Table
	var tags []string
	names := src.ColNames()
	for _, s := range sets {
		res, ok := results[s]
		if !ok {
			return nil, fmt.Errorf("sql: missing result for grouping set %s", s)
		}
		parts = append(parts, res)
		tags = append(tags, s.Format(names))
	}
	if includeGrand {
		if len(sets) == 0 {
			parts = append(parts, exec.GroupByHash(src, nil, aggs, "grand"))
		} else {
			first := results[sets[0]]
			rolled := make([]exec.Agg, len(aggs))
			for i, a := range aggs {
				ord := first.ColIndex(a.Name)
				if ord < 0 {
					return nil, fmt.Errorf("sql: aggregate %q missing from intermediate", a.Name)
				}
				rolled[i] = a.Rollup(ord)
			}
			parts = append(parts, exec.GroupByHash(first, nil, rolled, "grand"))
		}
		tags = append(tags, "()")
	}
	return exec.UnionAllTagged("result", outCols, parts, tags)
}

// aggOutType mirrors the accumulator output types.
func aggOutType(src *table.Table, a exec.Agg) table.Type {
	switch a.Kind {
	case exec.AggCountStar, exec.AggCount:
		return table.TInt64
	case exec.AggSum:
		if src.Col(a.Col).Type() == table.TFloat64 {
			return table.TFloat64
		}
		return table.TInt64
	default:
		return src.Col(a.Col).Type()
	}
}
