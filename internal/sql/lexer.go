// Package sql implements the SQL surface of the engine: a small
// lexer/parser/binder for single-block aggregation queries with GROUP BY,
// GROUPING SETS, CUBE, ROLLUP and the COMBI extension of [15] (§2), WHERE
// conjunctions, and two-table equi-joins with the §5.1.1 group-by pushdown.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , ; * = < > <= >= <>
)

type token struct {
	kind tokenKind
	text string // identifiers keep their original case; strings are decoded
	pos  int
}

// lex tokenizes the input. Identifier case is preserved (keyword matching and
// name resolution are case-insensitive downstream).
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(input) {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
				}
				if input[j] == '\'' {
					if j+1 < len(input) && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '*':
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '=':
			toks = append(toks, token{kind: tokSymbol, text: "=", pos: i})
			i++
		case c == '<':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: "<=", pos: i})
				i += 2
			} else if i+1 < len(input) && input[i+1] == '>' {
				toks = append(toks, token{kind: tokSymbol, text: "<>", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: ">", pos: i})
				i++
			}
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9':
			j := i + 1
			for j < len(input) && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(input) && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
