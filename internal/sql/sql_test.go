package sql

import (
	"math/rand"
	"strings"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, COUNT(*) FROM t WHERE x >= 10 AND s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	if texts[0] != "SELECT" || texts[1] != "a" {
		t.Fatalf("texts = %v", texts)
	}
	// The escaped string must decode.
	found := false
	for i, k := range kinds {
		if k == tokString && texts[i] == "it's" {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped string not decoded: %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT A, COUNT(*) FROM T GROUP BY A",
		"SELECT A, B, COUNT(*) AS N FROM T GROUP BY GROUPING SETS ((A), (B), (A, B))",
		"SELECT COUNT(*) FROM T GROUP BY CUBE(A, B)",
		"SELECT COUNT(*) FROM T GROUP BY ROLLUP(A, B, C)",
		"SELECT COUNT(*) FROM T GROUP BY COMBI(2; A, B, C)",
		"SELECT SUM(X) AS SX, MIN(Y) FROM T WHERE A > 5 AND B = 'Z' GROUP BY C",
		"SELECT COUNT(*) FROM R JOIN S ON A = B GROUP BY C",
		"SELECT * FROM T",
	}
	for _, q := range queries {
		ast, err := Parse(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		// Canonical print must re-parse to an identical print (fixpoint).
		printed := ast.String()
		ast2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse %q: %v", printed, err)
		}
		if ast2.String() != printed {
			t.Fatalf("print not a fixpoint:\n%q\n%q", printed, ast2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT a FROM",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t GROUP BY",
		"SELECT a FROM t GROUP BY GROUPING SETS ()",
		"SELECT a FROM t GROUP BY GROUPING SETS (())",
		"SELECT a FROM t GROUP BY CUBE()",
		"SELECT a FROM t GROUP BY COMBI(0; a)",
		"SELECT a FROM t GROUP BY COMBI(a; b)",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a ~ 3",
		"SELECT a FROM t WHERE a =",
		"SELECT a FROM t JOIN s ON a b",
		"SELECT a FROM t extra",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

// newSQLEngine registers a small synthetic table.
func newSQLEngine(t *testing.T) (*engine.Engine, *table.Table) {
	t.Helper()
	eng := engine.New(stats.NewService(stats.Exact, 0, 1))
	r := rand.New(rand.NewSource(5))
	tb := table.New("t", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TString},
		{Name: "c", Typ: table.TInt64},
		{Name: "x", Typ: table.TFloat64},
	})
	bs := []string{"p", "q", "r"}
	for i := 0; i < 3000; i++ {
		tb.AppendRow(
			table.Int(int64(r.Intn(5))),
			table.Str(bs[r.Intn(3)]),
			table.Int(int64(r.Intn(7))),
			table.Float(float64(r.Intn(50))),
		)
	}
	eng.Catalog().Register(tb)
	return eng, tb
}

// tagRows partitions result rows by grp_tag and returns count sums per tag.
func tagRows(t *testing.T, res *table.Table) map[string]int {
	t.Helper()
	out := map[string]int{}
	tag := res.ColByName(exec.GrpTagCol)
	if tag == nil {
		t.Fatal("result lacks grp_tag")
	}
	for i := 0; i < res.NumRows(); i++ {
		out[tag.Value(i).S]++
	}
	return out
}

func TestRunGroupingSets(t *testing.T) {
	eng, tb := newSQLEngine(t)
	res, err := Run(eng, "SELECT a, b, COUNT(*) FROM t GROUP BY GROUPING SETS ((a), (b), (a, b))", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tags := tagRows(t, res.Table)
	if len(tags) != 3 {
		t.Fatalf("tags = %v", tags)
	}
	if tags["(a)"] != tb.Col(0).DistinctCount() {
		t.Fatalf("(a) rows = %d, want %d", tags["(a)"], tb.Col(0).DistinctCount())
	}
	if tags["(b)"] != tb.Col(1).DistinctCount() {
		t.Fatalf("(b) rows = %d", tags["(b)"])
	}
	// Counts per grouping set must sum to the row count.
	cnt := res.Table.ColByName("cnt")
	sums := map[string]int64{}
	for i := 0; i < res.Table.NumRows(); i++ {
		sums[res.Table.ColByName(exec.GrpTagCol).Value(i).S] += cnt.Value(i).I
	}
	for tag, s := range sums {
		if s != int64(tb.NumRows()) {
			t.Fatalf("tag %s counts sum to %d, want %d", tag, s, tb.NumRows())
		}
	}
	// Absent grouping columns must be NULL.
	aCol, bCol := res.Table.ColByName("a"), res.Table.ColByName("b")
	tagCol := res.Table.ColByName(exec.GrpTagCol)
	for i := 0; i < res.Table.NumRows(); i++ {
		switch tagCol.Value(i).S {
		case "(a)":
			if !bCol.IsNull(i) || aCol.IsNull(i) {
				t.Fatal("(a) rows should have NULL b")
			}
		case "(b)":
			if !aCol.IsNull(i) || bCol.IsNull(i) {
				t.Fatal("(b) rows should have NULL a")
			}
		}
	}
}

func TestRunCubeIncludesGrandTotal(t *testing.T) {
	eng, tb := newSQLEngine(t)
	res, err := Run(eng, "SELECT COUNT(*) FROM t GROUP BY CUBE(a, b)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tags := tagRows(t, res.Table)
	if len(tags) != 4 { // (a,b), (a), (b), ()
		t.Fatalf("cube tags = %v", tags)
	}
	if tags["()"] != 1 {
		t.Fatalf("grand total rows = %d", tags["()"])
	}
	// The grand-total count equals the table size.
	tagCol := res.Table.ColByName(exec.GrpTagCol)
	for i := 0; i < res.Table.NumRows(); i++ {
		if tagCol.Value(i).S == "()" {
			if got := res.Table.ColByName("cnt").Value(i).I; got != int64(tb.NumRows()) {
				t.Fatalf("grand total = %d, want %d", got, tb.NumRows())
			}
		}
	}
}

func TestRunRollup(t *testing.T) {
	eng, _ := newSQLEngine(t)
	res, err := Run(eng, "SELECT COUNT(*) FROM t GROUP BY ROLLUP(a, b)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tags := tagRows(t, res.Table)
	// ROLLUP(a, b) = (a,b), (a), ().
	if len(tags) != 3 || tags["()"] != 1 {
		t.Fatalf("rollup tags = %v", tags)
	}
	if _, has := tags["(b)"]; has {
		t.Fatal("rollup must not include (b)")
	}
}

func TestRunCombi(t *testing.T) {
	eng, _ := newSQLEngine(t)
	res, err := Run(eng, "SELECT COUNT(*) FROM t GROUP BY COMBI(2; a, b, c)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tags := tagRows(t, res.Table)
	// All subsets of size 1 and 2 of 3 columns: 3 + 3 = 6.
	if len(tags) != 6 {
		t.Fatalf("combi tags = %v", tags)
	}
}

func TestRunWhere(t *testing.T) {
	eng, tb := newSQLEngine(t)
	res, err := Run(eng, "SELECT a, COUNT(*) FROM t WHERE c >= 3 AND b = 'p' GROUP BY a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference count.
	want := 0
	for i := 0; i < tb.NumRows(); i++ {
		if tb.Col(2).Value(i).I >= 3 && tb.Col(1).Value(i).S == "p" {
			want++
		}
	}
	total := int64(0)
	for i := 0; i < res.Table.NumRows(); i++ {
		total += res.Table.ColByName("cnt").Value(i).I
	}
	if total != int64(want) {
		t.Fatalf("filtered total = %d, want %d", total, want)
	}
	// The ephemeral filtered table must be gone.
	for _, name := range eng.Catalog().TableNames() {
		if strings.HasPrefix(name, "__where") {
			t.Fatalf("leaked temp table %s", name)
		}
	}
}

func TestRunAggregates(t *testing.T) {
	eng, tb := newSQLEngine(t)
	res, err := Run(eng, "SELECT b, COUNT(*) AS n, SUM(x) AS total, MIN(c) AS lo, MAX(c) AS hi FROM t GROUP BY b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct := exec.GroupByHash(tb, []int{1}, []exec.Agg{
		{Kind: exec.AggCountStar, Name: "n"},
		{Kind: exec.AggSum, Col: 3, Name: "total"},
		{Kind: exec.AggMin, Col: 2, Name: "lo"},
		{Kind: exec.AggMax, Col: 2, Name: "hi"},
	}, "direct")
	if res.Table.NumRows() != direct.NumRows() {
		t.Fatalf("rows %d vs %d", res.Table.NumRows(), direct.NumRows())
	}
	byB := func(tb *table.Table) map[string][4]table.Value {
		m := map[string][4]table.Value{}
		for i := 0; i < tb.NumRows(); i++ {
			m[tb.ColByName("b").Value(i).S] = [4]table.Value{
				tb.ColByName("n").Value(i), tb.ColByName("total").Value(i),
				tb.ColByName("lo").Value(i), tb.ColByName("hi").Value(i),
			}
		}
		return m
	}
	d, g := byB(direct), byB(res.Table)
	for k, dv := range d {
		gv := g[k]
		for i := range dv {
			if !dv[i].Equal(gv[i]) {
				t.Fatalf("b=%q agg %d: %v vs %v", k, i, gv[i], dv[i])
			}
		}
	}
}

func TestRunGlobalAggregate(t *testing.T) {
	eng, tb := newSQLEngine(t)
	res, err := Run(eng, "SELECT COUNT(*) FROM t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 1 || res.Table.ColByName("cnt").Value(0).I != int64(tb.NumRows()) {
		t.Fatalf("global aggregate wrong: %s", res.Table.FormatRows(-1))
	}
}

func TestRunPlainSelect(t *testing.T) {
	eng, tb := newSQLEngine(t)
	res, err := Run(eng, "SELECT * FROM t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != tb.NumRows() {
		t.Fatal("plain select lost rows")
	}
}

func TestRunStrategiesAgree(t *testing.T) {
	eng, _ := newSQLEngine(t)
	q := "SELECT COUNT(*) FROM t GROUP BY GROUPING SETS ((a), (b), (c), (a, c))"
	collect := func(strat engine.Strategy) map[string]int64 {
		res, err := Run(eng, q, Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]int64{}
		for i := 0; i < res.Table.NumRows(); i++ {
			key := ""
			for j := 0; j < res.Table.NumCols(); j++ {
				v := res.Table.Col(j).Value(i)
				if res.Table.Col(j).Name() == "cnt" {
					continue
				}
				key += "|" + v.String()
			}
			m[key] += res.Table.ColByName("cnt").Value(i).I
		}
		return m
	}
	naive := collect(engine.StrategyNaive)
	gbmqo := collect(engine.StrategyGBMQO)
	if len(naive) != len(gbmqo) {
		t.Fatalf("row sets differ: %d vs %d", len(naive), len(gbmqo))
	}
	for k, v := range naive {
		if gbmqo[k] != v {
			t.Fatalf("key %q: %d vs %d", k, gbmqo[k], v)
		}
	}
}

func TestRunErrors(t *testing.T) {
	eng, _ := newSQLEngine(t)
	bad := []string{
		"SELECT COUNT(*) FROM missing GROUP BY a",
		"SELECT COUNT(*) FROM t GROUP BY nosuchcol",
		"SELECT SUM(nope) FROM t GROUP BY a",
		"SELECT COUNT(*) FROM t WHERE nope = 1",
		"SELECT COUNT(*) FROM t WHERE b = 3",   // string col vs number
		"SELECT COUNT(*) FROM t WHERE a = 'x'", // int col vs string
		"SELECT COUNT(*) AS n, SUM(x) AS n FROM t GROUP BY a",
	}
	for _, q := range bad {
		if _, err := Run(eng, q, Options{}); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestCaseInsensitiveResolution(t *testing.T) {
	eng, tb := newSQLEngine(t)
	res, err := Run(eng, "select A, count(*) from T group by A", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != tb.Col(0).DistinctCount() {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
}

// tablesIdentical compares schema and every cell.
func tablesIdentical(t *testing.T, got, want *table.Table) {
	t.Helper()
	if got.NumCols() != want.NumCols() || got.NumRows() != want.NumRows() {
		t.Fatalf("shape %dx%d, want %dx%d", got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for c := 0; c < got.NumCols(); c++ {
		if got.Col(c).Name() != want.Col(c).Name() || got.Col(c).Type() != want.Col(c).Type() {
			t.Fatalf("col %d is %s %v, want %s %v", c, got.Col(c).Name(), got.Col(c).Type(), want.Col(c).Name(), want.Col(c).Type())
		}
	}
	for r := 0; r < got.NumRows(); r++ {
		for c := 0; c < got.NumCols(); c++ {
			g, w := got.Col(c).Value(r), want.Col(c).Value(r)
			if g != w {
				t.Fatalf("cell (%d,%d) = %v, want %v", r, c, g, w)
			}
		}
	}
}

func TestDecomposeAssembleMatchesRun(t *testing.T) {
	eng, tb := newSQLEngine(t)
	for _, stmt := range []string{
		"SELECT a, b, COUNT(*), SUM(c) AS sc FROM t GROUP BY GROUPING SETS ((a), (b), (a, b))",
		"SELECT COUNT(*) FROM t GROUP BY CUBE(a, b)",
		"SELECT a, MIN(c) AS mn, MAX(c) AS mx FROM t GROUP BY ROLLUP(a, b)",
		"SELECT a FROM t GROUP BY a",
	} {
		q, err := Parse(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		spec, ok, err := Decompose(eng, q)
		if err != nil || !ok {
			t.Fatalf("%s: decompose ok=%v err=%v", stmt, ok, err)
		}
		if spec.Table != tb.Name() {
			t.Fatalf("%s: table %q", stmt, spec.Table)
		}
		// Compute each grouping set through the engine one at a time, the way
		// the scheduler would, then reassemble.
		results := map[colset.Set]*table.Table{}
		for _, s := range spec.Sets {
			run, err := eng.Run(engine.Request{Table: spec.Table, Sets: []colset.Set{s}, Aggs: spec.Aggs})
			if err != nil {
				t.Fatalf("%s: per-set run: %v", stmt, err)
			}
			results[s] = run.Report.Results[s]
		}
		got, err := Assemble(tb, spec, results)
		if err != nil {
			t.Fatalf("%s: assemble: %v", stmt, err)
		}
		want, err := Run(eng, stmt, Options{})
		if err != nil {
			t.Fatalf("%s: solo run: %v", stmt, err)
		}
		tablesIdentical(t, got, want.Table)
	}
}

func TestDecomposeRejectsUnbatchableShapes(t *testing.T) {
	eng, _ := newSQLEngine(t)
	for _, stmt := range []string{
		"SELECT a, COUNT(*) FROM t WHERE c > 2 GROUP BY a",
		"SELECT COUNT(*) FROM t",
		"SELECT a FROM t",
	} {
		q, err := Parse(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		spec, ok, err := Decompose(eng, q)
		if err != nil || ok || spec != nil {
			t.Fatalf("%s: want ok=false, got spec=%v ok=%v err=%v", stmt, spec, ok, err)
		}
	}
	// Resolution failures are errors, not fallbacks.
	q, err := Parse("SELECT a, COUNT(*) FROM nosuch GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompose(eng, q); err == nil {
		t.Fatal("unknown table must error")
	}
}
