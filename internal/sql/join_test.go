package sql

import (
	"math/rand"
	"testing"

	"gbmqo/internal/engine"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// newJoinEngine registers R(a, b, c) and S(a2, d) with a shared join domain.
func newJoinEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng := engine.New(stats.NewService(stats.Exact, 0, 1))
	r := rand.New(rand.NewSource(17))
	R := table.New("R", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TInt64},
		{Name: "c", Typ: table.TString},
	})
	cs := []string{"u", "v", "w"}
	for i := 0; i < 2000; i++ {
		R.AppendRow(
			table.Int(int64(r.Intn(30))),
			table.Int(int64(r.Intn(5))),
			table.Str(cs[r.Intn(3)]),
		)
	}
	S := table.New("S", []table.ColumnDef{
		{Name: "a2", Typ: table.TInt64},
		{Name: "d", Typ: table.TInt64},
	})
	for i := 0; i < 200; i++ {
		S.AppendRow(table.Int(int64(r.Intn(40))), table.Int(int64(r.Intn(4))))
	}
	eng.Catalog().Register(R)
	eng.Catalog().Register(S)
	return eng
}

// collectCounts maps "group-key" → summed count over a tagged result.
func collectCounts(t *testing.T, res *table.Table) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	cnt := res.ColByName("cnt")
	if cnt == nil {
		t.Fatal("no cnt column")
	}
	for i := 0; i < res.NumRows(); i++ {
		key := ""
		for j := 0; j < res.NumCols(); j++ {
			if res.Col(j).Name() == "cnt" {
				continue
			}
			key += "|" + res.Col(j).Value(i).String()
			if res.Col(j).IsNull(i) {
				key += "\x00"
			}
		}
		out[key] += cnt.Value(i).I
	}
	return out
}

func TestJoinPushdownMatchesFallback(t *testing.T) {
	eng := newJoinEngine(t)
	// Pushdown-eligible query (grouping cols and COUNT(*) on the left side).
	pushQ := "SELECT b, c, COUNT(*) FROM R JOIN S ON a = a2 GROUP BY GROUPING SETS ((b), (c), (b, c))"
	push, err := Run(eng, pushQ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Force the fallback by aggregating a right-side column too — SUM(d)
	// disables pushdown; then compare COUNT values via a COUNT-only fallback
	// obtained by grouping on a right-side column trick. Simpler: compute the
	// reference by joining manually through a SUM query that also carries
	// COUNT(*): the fallback path always runs when any non-COUNT aggregate
	// appears.
	fallbackQ := "SELECT b, c, COUNT(*), SUM(d) AS sd FROM R JOIN S ON a = a2 GROUP BY GROUPING SETS ((b), (c), (b, c))"
	fb, err := Run(eng, fallbackQ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare count columns on the shared group keys.
	pc := collectCounts(t, push.Table)
	// Fallback result has an extra sd column; rebuild keys without it.
	fc := map[string]int64{}
	for i := 0; i < fb.Table.NumRows(); i++ {
		key := ""
		for j := 0; j < fb.Table.NumCols(); j++ {
			name := fb.Table.Col(j).Name()
			if name == "cnt" || name == "sd" {
				continue
			}
			key += "|" + fb.Table.Col(j).Value(i).String()
			if fb.Table.Col(j).IsNull(i) {
				key += "\x00"
			}
		}
		fc[key] += fb.Table.ColByName("cnt").Value(i).I
	}
	if len(pc) != len(fc) {
		t.Fatalf("group counts differ: pushdown %d, fallback %d", len(pc), len(fc))
	}
	for k, v := range pc {
		if fc[k] != v {
			t.Fatalf("group %q: pushdown %d, fallback %d", k, v, fc[k])
		}
	}
}

func TestJoinCountMatchesManualJoin(t *testing.T) {
	eng := newJoinEngine(t)
	res, err := Run(eng, "SELECT b, COUNT(*) FROM R JOIN S ON a = a2 GROUP BY b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Manual reference: count join pairs per b.
	R, _ := eng.Catalog().Table("R")
	S, _ := eng.Catalog().Table("S")
	sCount := map[int64]int64{}
	for i := 0; i < S.NumRows(); i++ {
		sCount[S.Col(0).Value(i).I]++
	}
	want := map[int64]int64{}
	for i := 0; i < R.NumRows(); i++ {
		want[R.Col(1).Value(i).I] += sCount[R.Col(0).Value(i).I]
	}
	// Drop zero groups (no join partner).
	for k, v := range want {
		if v == 0 {
			delete(want, k)
		}
	}
	got := map[int64]int64{}
	for i := 0; i < res.Table.NumRows(); i++ {
		got[res.Table.ColByName("b").Value(i).I] = res.Table.ColByName("cnt").Value(i).I
	}
	if len(got) != len(want) {
		t.Fatalf("groups %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("b=%d: %d, want %d", k, got[k], v)
		}
	}
}

func TestJoinWithWhereBothSides(t *testing.T) {
	eng := newJoinEngine(t)
	res, err := Run(eng, "SELECT b, COUNT(*) FROM R JOIN S ON a = a2 WHERE c = 'u' AND d >= 2 GROUP BY b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	R, _ := eng.Catalog().Table("R")
	S, _ := eng.Catalog().Table("S")
	sCount := map[int64]int64{}
	for i := 0; i < S.NumRows(); i++ {
		if S.Col(1).Value(i).I >= 2 {
			sCount[S.Col(0).Value(i).I]++
		}
	}
	want := map[int64]int64{}
	for i := 0; i < R.NumRows(); i++ {
		if R.Col(2).Value(i).S == "u" {
			if n := sCount[R.Col(0).Value(i).I]; n > 0 {
				want[R.Col(1).Value(i).I] += n
			}
		}
	}
	got := map[int64]int64{}
	for i := 0; i < res.Table.NumRows(); i++ {
		got[res.Table.ColByName("b").Value(i).I] = res.Table.ColByName("cnt").Value(i).I
	}
	if len(got) != len(want) {
		t.Fatalf("groups %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("b=%d: %d, want %d", k, got[k], v)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	eng := newJoinEngine(t)
	bad := []string{
		"SELECT COUNT(*) FROM R JOIN missing ON a = a2 GROUP BY b",
		"SELECT COUNT(*) FROM missing JOIN S ON a = a2 GROUP BY b",
		"SELECT COUNT(*) FROM R JOIN S ON nope = a2 GROUP BY b",
		"SELECT COUNT(*) FROM R JOIN S ON a = a2 WHERE zz = 1 GROUP BY b",
	}
	for _, q := range bad {
		if _, err := Run(eng, q, Options{}); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestJoinFallbackGroupsRightColumn(t *testing.T) {
	// Grouping on a right-side column forces the fallback path.
	eng := newJoinEngine(t)
	res, err := Run(eng, "SELECT d, COUNT(*) FROM R JOIN S ON a = a2 GROUP BY d", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("no groups from right-side grouping")
	}
	total := int64(0)
	for i := 0; i < res.Table.NumRows(); i++ {
		total += res.Table.ColByName("cnt").Value(i).I
	}
	// Total must equal the join size.
	R, _ := eng.Catalog().Table("R")
	S, _ := eng.Catalog().Table("S")
	sCount := map[int64]int64{}
	for i := 0; i < S.NumRows(); i++ {
		sCount[S.Col(0).Value(i).I]++
	}
	var joinSize int64
	for i := 0; i < R.NumRows(); i++ {
		joinSize += sCount[R.Col(0).Value(i).I]
	}
	if total != joinSize {
		t.Fatalf("counts sum to %d, join size %d", total, joinSize)
	}
}
