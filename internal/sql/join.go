package sql

import (
	"fmt"

	"gbmqo/internal/colset"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// executeJoin handles GROUPING SETS queries over an inner equi-join
// (§5.1.1). When every aggregate is COUNT(*) and every grouping column lives
// on the left relation, the grouping-set computation is pushed below the
// join, Figure-8 style: the left side computes Group Bys on (s ∪ {joincol})
// — shared through GB-MQO, including the optimizer-introduced supersets — the
// right side pre-aggregates on its join column, and each pushed-down result
// joins and re-aggregates with its counts multiplied. Anything else falls
// back to materializing the join and grouping over it.
func executeJoin(eng *engine.Engine, q *Query, opts Options) (*Result, error) {
	left, ok := resolveTable(eng, q.From.Table)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", q.From.Table)
	}
	right, ok := resolveTable(eng, q.From.Join)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", q.From.Join)
	}
	lKey := resolveColumn(left, q.From.LeftCol)
	rKey := resolveColumn(right, q.From.RightCol)
	if lKey < 0 || rKey < 0 {
		return nil, fmt.Errorf("sql: join columns %q/%q not found", q.From.LeftCol, q.From.RightCol)
	}

	// Split WHERE conjuncts by the side owning the column.
	var lConds, rConds []Condition
	for _, c := range q.Where {
		switch {
		case resolveColumn(left, c.Column) >= 0:
			lConds = append(lConds, c)
		case resolveColumn(right, c.Column) >= 0:
			rConds = append(rConds, c)
		default:
			return nil, fmt.Errorf("sql: unknown column %q in WHERE", c.Column)
		}
	}
	lSrc, lCleanup, err := applyWhere(eng, left, lConds)
	if err != nil {
		return nil, err
	}
	defer lCleanup()
	rSrc := right
	if len(rConds) > 0 {
		pred, err := buildPredicate(right, rConds)
		if err != nil {
			return nil, err
		}
		rSrc = exec.Filter(right, nextTempName("rwhere"), pred)
	}

	if pushable(lSrc, q) {
		return pushdownJoin(eng, q, opts, lSrc, rSrc, lKey, rKey)
	}

	// Fallback: materialize the join and group over it.
	joined := exec.HashJoin(lSrc, rSrc, lKey, rKey, nextTempName("join"))
	eng.Catalog().Register(joined)
	defer eng.Catalog().Drop(joined.Name())
	return executeGrouping(eng, joined, q, opts)
}

// pushable reports whether the §5.1.1 pushdown applies: grouped query, all
// grouping columns on the left side, and COUNT(*)-only aggregates.
func pushable(left *table.Table, q *Query) bool {
	if q.Group.Kind == GroupNone {
		return false
	}
	nAggs := 0
	for _, it := range q.Select {
		if it.Agg == "" {
			continue
		}
		if !it.AggStar {
			return false
		}
		nAggs++
	}
	if nAggs > 1 {
		return false
	}
	cols := q.Group.Cols
	for _, set := range q.Group.Sets {
		cols = append(cols, set...)
	}
	for _, c := range cols {
		if resolveColumn(left, c) < 0 {
			return false
		}
	}
	return true
}

// rcntCol is the right side's pre-aggregated count column.
const rcntCol = "__rcnt"

func pushdownJoin(eng *engine.Engine, q *Query, opts Options, left, right *table.Table, lKey, rKey int) (*Result, error) {
	sets, includeGrand, err := expandGroupSpec(left, q.Group)
	if err != nil {
		return nil, err
	}
	aggs, err := bindAggregates(left, q.Select)
	if err != nil {
		return nil, err
	}
	if len(aggs) == 0 {
		aggs = []exec.Agg{exec.CountStar()}
	}
	cntName := aggs[0].Name

	// Push the join column into every grouping set (the pushed-down Group
	// Bys "will need to include the join attribute in the grouping").
	augmented := make([]colset.Set, 0, len(sets))
	seen := map[colset.Set]bool{}
	for _, s := range sets {
		a := s.Add(lKey)
		if !seen[a] {
			seen[a] = true
			augmented = append(augmented, a)
		}
	}

	// Left side: one multi-group-by computation, shared via the chosen
	// strategy. The left source must be registered for the engine to plan it.
	registered := left
	if _, ok := eng.Catalog().Table(left.Name()); !ok {
		eng.Catalog().Register(left)
		defer eng.Catalog().Drop(left.Name())
	}
	run, err := eng.Run(engine.Request{
		Table:     registered.Name(),
		Sets:      augmented,
		Aggs:      []exec.Agg{{Kind: exec.AggCountStar, Name: cntName}},
		Strategy:  opts.Strategy,
		Model:     opts.Model,
		Core:      opts.Core,
		Context:   opts.Context,
		MemBudget: opts.MemBudget,
		Retry:     opts.Retry,
	})
	if err != nil {
		return nil, err
	}

	// Right side: pre-aggregate counts per join value.
	rightAgg := exec.GroupByHash(right, []int{rKey}, []exec.Agg{{Kind: exec.AggCountStar, Name: rcntCol}}, "rside")

	// For each requested set: join its pushed-down result, multiply counts,
	// and re-aggregate to the original grouping columns.
	results := map[colset.Set]*table.Table{}
	for _, s := range sets {
		part := run.Report.Results[s.Add(lKey)]
		if part == nil {
			return nil, fmt.Errorf("sql: missing pushed-down result for %s", s.Add(lKey))
		}
		partKey := part.ColIndex(left.Col(lKey).Name())
		if partKey < 0 {
			return nil, fmt.Errorf("sql: pushed-down result lost the join column")
		}
		joined := exec.HashJoin(part, rightAgg, partKey, 0, "j")
		scaled, err := multiplyCounts(joined, cntName, rcntCol, left, s)
		if err != nil {
			return nil, err
		}
		final := exec.GroupByHash(scaled, groupOrdinals(scaled, left, s),
			[]exec.Agg{{Kind: exec.AggSum, Col: scaled.ColIndex(cntName), Name: cntName}}, "agg")
		results[s] = final
	}
	out, err := assembleUnion(left, sets, aggs, results, includeGrand)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out, Plan: run.Plan, Search: run.Search}, nil
}

// multiplyCounts builds a table with the grouping columns of s plus a count
// column equal to cnt × rcnt for each joined row.
func multiplyCounts(joined *table.Table, cntName, rcntName string, base *table.Table, s colset.Set) (*table.Table, error) {
	cnt := joined.ColByName(cntName)
	rcnt := joined.ColByName(rcntName)
	if cnt == nil || rcnt == nil {
		return nil, fmt.Errorf("sql: join result lacks count columns")
	}
	var cols []*table.Column
	s.ForEach(func(c int) {
		name := base.Col(c).Name()
		src := joined.ColByName(name)
		cols = append(cols, src)
	})
	for _, c := range cols {
		if c == nil {
			return nil, fmt.Errorf("sql: join result lost a grouping column")
		}
	}
	prod := table.NewColumn(table.ColumnDef{Name: cntName, Typ: table.TInt64})
	for i := 0; i < joined.NumRows(); i++ {
		prod.Append(table.Int(cnt.Value(i).I * rcnt.Value(i).I))
	}
	return table.FromColumns("scaled", append(cols, prod)), nil
}

// groupOrdinals maps base grouping ordinals to a derived table's ordinals.
func groupOrdinals(t *table.Table, base *table.Table, s colset.Set) []int {
	var out []int
	s.ForEach(func(c int) {
		out = append(out, t.ColIndex(base.Col(c).Name()))
	})
	return out
}
