package sql

import (
	"fmt"
	"strconv"
	"strings"

	"gbmqo/internal/stats"
)

// Parse parses one supported statement. A trailing semicolon is allowed.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected input after statement")
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q", sym)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	t := p.cur().text
	p.pos++
	return t, nil
}

func (p *parser) query() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		it, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, it)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	q.From.Table = tbl
	if p.acceptKeyword("JOIN") {
		if q.From.Join, err = p.ident(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		if q.From.LeftCol, err = p.ident(); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		if q.From.RightCol, err = p.ident(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("WHERE") {
		for {
			c, err := p.condition()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, c)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		g, err := p.groupSpec()
		if err != nil {
			return nil, err
		}
		q.Group = g
	}
	return q, nil
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true}

func (p *parser) selectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	name, err := p.ident()
	if err != nil {
		return SelectItem{}, err
	}
	it := SelectItem{}
	if aggNames[strings.ToUpper(name)] && p.acceptSymbol("(") {
		name = strings.ToUpper(name)
		it.Agg = name
		if p.acceptSymbol("*") {
			if name != "COUNT" {
				return it, p.errf("%s(*) is not valid", name)
			}
			it.AggStar = true
		} else {
			if it.Column, err = p.ident(); err != nil {
				return it, err
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return it, err
		}
	} else {
		it.Column = name
	}
	if p.acceptKeyword("AS") {
		if it.Alias, err = p.ident(); err != nil {
			return it, err
		}
	}
	return it, nil
}

func (p *parser) condition() (Condition, error) {
	col, err := p.ident()
	if err != nil {
		return Condition{}, err
	}
	var op stats.CmpOp
	switch {
	case p.acceptSymbol("="):
		op = stats.CmpEq
	case p.acceptSymbol("<>"):
		op = stats.CmpNe
	case p.acceptSymbol("<="):
		op = stats.CmpLe
	case p.acceptSymbol("<"):
		op = stats.CmpLt
	case p.acceptSymbol(">="):
		op = stats.CmpGe
	case p.acceptSymbol(">"):
		op = stats.CmpGt
	default:
		return Condition{}, p.errf("expected comparison operator")
	}
	lit, err := p.literal()
	if err != nil {
		return Condition{}, err
	}
	return Condition{Column: col, Op: op, Lit: lit}, nil
}

func (p *parser) literal() (litValue, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		return litValue{num: t.text}, nil
	case tokString:
		p.pos++
		return litValue{isString: true, s: t.text}, nil
	default:
		return litValue{}, p.errf("expected literal")
	}
}

func (p *parser) groupSpec() (GroupSpec, error) {
	switch {
	case p.acceptKeyword("GROUPING"):
		if err := p.expectKeyword("SETS"); err != nil {
			return GroupSpec{}, err
		}
		if err := p.expectSymbol("("); err != nil {
			return GroupSpec{}, err
		}
		g := GroupSpec{Kind: GroupGroupingSets}
		for {
			if err := p.expectSymbol("("); err != nil {
				return g, err
			}
			set, err := p.colList()
			if err != nil {
				return g, err
			}
			if len(set) == 0 {
				return g, p.errf("empty grouping set")
			}
			if err := p.expectSymbol(")"); err != nil {
				return g, err
			}
			g.Sets = append(g.Sets, set)
			if !p.acceptSymbol(",") {
				break
			}
		}
		return g, p.expectSymbol(")")
	case p.acceptKeyword("CUBE"):
		return p.parenCols(GroupCube)
	case p.acceptKeyword("ROLLUP"):
		return p.parenCols(GroupRollup)
	case p.acceptKeyword("COMBI"):
		if err := p.expectSymbol("("); err != nil {
			return GroupSpec{}, err
		}
		if p.cur().kind != tokNumber {
			return GroupSpec{}, p.errf("COMBI expects a size bound")
		}
		k, err := strconv.Atoi(p.cur().text)
		if err != nil || k < 1 {
			return GroupSpec{}, p.errf("invalid COMBI bound %q", p.cur().text)
		}
		p.pos++
		if err := p.expectSymbol(";"); err != nil {
			return GroupSpec{}, err
		}
		cols, err := p.colList()
		if err != nil {
			return GroupSpec{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return GroupSpec{}, err
		}
		return GroupSpec{Kind: GroupCombi, Cols: cols, CombiK: k}, nil
	default:
		cols, err := p.colList()
		if err != nil {
			return GroupSpec{}, err
		}
		if len(cols) == 0 {
			return GroupSpec{}, p.errf("empty GROUP BY list")
		}
		return GroupSpec{Kind: GroupPlain, Cols: cols}, nil
	}
}

func (p *parser) parenCols(kind GroupKind) (GroupSpec, error) {
	if err := p.expectSymbol("("); err != nil {
		return GroupSpec{}, err
	}
	cols, err := p.colList()
	if err != nil {
		return GroupSpec{}, err
	}
	if len(cols) == 0 {
		return GroupSpec{}, p.errf("empty column list")
	}
	if err := p.expectSymbol(")"); err != nil {
		return GroupSpec{}, err
	}
	return GroupSpec{Kind: kind, Cols: cols}, nil
}

func (p *parser) colList() ([]string, error) {
	var cols []string
	for p.cur().kind == tokIdent {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return cols, nil
}
