package table

import "fmt"

// This file is the serialization seam the durability layer builds on: a
// column decomposes into (definition, ordered dictionary values, code vector)
// and reassembles from the same parts with *identical* code assignment.
// Codes are assigned by interning order (1, 2, 3, ... — see dict.code), so
// re-interning DictValues in order reproduces every code, which makes a
// snapshot-restored table's row image — and therefore its fingerprint and
// any cached aggregate checksum derived from it — byte-identical to the
// original. That bytewise stability is what recovery verification and warm
// cache restore assert against.

// DictValues returns the column's distinct non-null dictionary values in code
// order: element i is the value of code i+1. Re-interning them in order into
// a fresh column reproduces the same code assignment.
//
// Not safe to call concurrently with an Append on a newer snapshot of the
// same lineage (the dictionary backing is shared); callers serialize against
// the append path, exactly like the append path itself does.
func (c *Column) DictValues() []Value {
	n := c.dict.size()
	out := make([]Value, n)
	for i := 0; i < n; i++ {
		out[i] = c.dict.value(uint32(i + 1))
	}
	return out
}

// ColumnFromParts rebuilds a column from its serialized decomposition: the
// definition, the dictionary values in code order, and the code vector. The
// rebuilt column owns fresh backing (no sharing with any live table) and its
// code assignment is identical to the column DictValues/Codes came from.
func ColumnFromParts(def ColumnDef, dictVals []Value, codes []uint32) (*Column, error) {
	c := NewColumn(def)
	for i, v := range dictVals {
		if v.Null {
			return nil, fmt.Errorf("table: column %q dictionary value %d is NULL", def.Name, i)
		}
		if v.Typ != def.Typ {
			return nil, fmt.Errorf("table: column %q dictionary value %d is %s, want %s", def.Name, i, v.Typ, def.Typ)
		}
		if code := c.dict.code(v); code != uint32(i+1) {
			return nil, fmt.Errorf("table: column %q dictionary value %d interned as code %d (duplicate value?)", def.Name, i, code)
		}
	}
	limit := uint32(len(dictVals))
	for i, code := range codes {
		if code > limit {
			return nil, fmt.Errorf("table: column %q row %d has code %d beyond dictionary size %d", def.Name, i, code, limit)
		}
	}
	c.codes = append(c.codes, codes...)
	return c, nil
}
