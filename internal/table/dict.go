package table

import (
	"sort"
	"sync"
)

// nullCode is the dictionary code reserved for NULL in every column.
const nullCode uint32 = 0

// dict maps distinct column values to dense uint32 codes starting at 1
// (code 0 is reserved for NULL). Every column in the engine is
// dictionary-encoded at build time; grouping then operates on code tuples
// only, which makes the group-by operators type-agnostic and fast. A dict is
// shared (not copied) when rows are gathered into a derived table.
type dict struct {
	typ Type

	ints    []int64   // value per code-1, TInt64/TDate
	floats  []float64 // TFloat64
	strs    []string  // TString
	lookupI map[int64]uint32
	lookupF map[float64]uint32
	lookupS map[string]uint32

	strBytes int64 // total bytes across strs, for average-width accounting

	rankOnce sync.Once
	rank     []uint32 // rank[code] = position of code in value order; NULL first
}

func newDict(t Type) *dict {
	d := &dict{typ: t}
	switch t {
	case TInt64, TDate:
		d.lookupI = make(map[int64]uint32)
	case TFloat64:
		d.lookupF = make(map[float64]uint32)
	case TString:
		d.lookupS = make(map[string]uint32)
	}
	return d
}

// size returns the number of non-null codes in the dictionary.
func (d *dict) size() int {
	switch d.typ {
	case TInt64, TDate:
		return len(d.ints)
	case TFloat64:
		return len(d.floats)
	default:
		return len(d.strs)
	}
}

// code interns a value and returns its code. NULLs map to nullCode.
func (d *dict) code(v Value) uint32 {
	if v.Null {
		return nullCode
	}
	switch d.typ {
	case TInt64, TDate:
		if c, ok := d.lookupI[v.I]; ok {
			return c
		}
		d.ints = append(d.ints, v.I)
		c := uint32(len(d.ints))
		d.lookupI[v.I] = c
		return c
	case TFloat64:
		if c, ok := d.lookupF[v.F]; ok {
			return c
		}
		d.floats = append(d.floats, v.F)
		c := uint32(len(d.floats))
		d.lookupF[v.F] = c
		return c
	default:
		if c, ok := d.lookupS[v.S]; ok {
			return c
		}
		d.strs = append(d.strs, v.S)
		d.strBytes += int64(len(v.S))
		c := uint32(len(d.strs))
		d.lookupS[v.S] = c
		return c
	}
}

// extend returns a copy-on-write extension of this dictionary for an append
// snapshot. Value slices and lookup maps are shared with the parent — codes
// assigned so far keep their meaning, and appending new values through the
// extension grows the shared backing past the parent's slice lengths, which
// parent readers never index. The rank table is NOT shared: it was computed
// over the parent's code range, so the extension recomputes it lazily over
// the grown range (MIN/MAX correctness over appended values).
//
// The sharing contract: only the NEWEST snapshot of a lineage may intern new
// values (the catalog's append path serializes appends per table and always
// extends the current snapshot), and readers of older snapshots never touch
// the lookup maps. Violating either corrupts the shared state.
func (d *dict) extend() *dict {
	return &dict{
		typ:      d.typ,
		ints:     d.ints,
		floats:   d.floats,
		strs:     d.strs,
		lookupI:  d.lookupI,
		lookupF:  d.lookupF,
		lookupS:  d.lookupS,
		strBytes: d.strBytes,
	}
}

// value decodes a code back to a Value.
func (d *dict) value(code uint32) Value {
	if code == nullCode {
		return Null(d.typ)
	}
	switch d.typ {
	case TInt64:
		return Int(d.ints[code-1])
	case TDate:
		return Date(d.ints[code-1])
	case TFloat64:
		return Float(d.floats[code-1])
	default:
		return Str(d.strs[code-1])
	}
}

// ranks returns the code→rank table ordering codes by value with NULL first.
// It is computed once, lazily, and is safe for concurrent readers. The table
// is only valid for the codes present when it was first requested; the engine
// never appends to a column after it starts sorting it.
func (d *dict) ranks() []uint32 {
	d.rankOnce.Do(func() {
		n := d.size()
		order := make([]uint32, n) // order[i] = code at sorted position i (codes 1..n)
		for i := range order {
			order[i] = uint32(i + 1)
		}
		switch d.typ {
		case TInt64, TDate:
			sort.Slice(order, func(a, b int) bool { return d.ints[order[a]-1] < d.ints[order[b]-1] })
		case TFloat64:
			sort.Slice(order, func(a, b int) bool { return d.floats[order[a]-1] < d.floats[order[b]-1] })
		default:
			sort.Slice(order, func(a, b int) bool { return d.strs[order[a]-1] < d.strs[order[b]-1] })
		}
		rank := make([]uint32, n+1)
		rank[nullCode] = 0 // NULL sorts first
		for pos, code := range order {
			rank[code] = uint32(pos + 1)
		}
		d.rank = rank
	})
	return d.rank
}

// avgWidth returns the average storage width in bytes of a value of this
// dictionary's type. For strings it is the mean length over distinct values
// (a reasonable proxy for on-disk width that is stable under gathers).
func (d *dict) avgWidth() float64 {
	if w := d.typ.fixedWidth(); w != 0 {
		return w
	}
	if len(d.strs) == 0 {
		return 1
	}
	return float64(d.strBytes) / float64(len(d.strs))
}
