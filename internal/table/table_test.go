package table

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"gbmqo/internal/colset"
)

func sampleDefs() []ColumnDef {
	return []ColumnDef{
		{Name: "id", Typ: TInt64},
		{Name: "name", Typ: TString},
		{Name: "score", Typ: TFloat64},
		{Name: "day", Typ: TDate},
	}
}

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tb := New("t", sampleDefs())
	tb.AppendRow(Int(1), Str("alice"), Float(1.5), Date(10))
	tb.AppendRow(Int(2), Str("bob"), Float(2.5), Date(11))
	tb.AppendRow(Int(1), Null(TString), Null(TFloat64), Date(10))
	return tb
}

func TestAppendAndDecode(t *testing.T) {
	tb := sampleTable(t)
	if tb.NumRows() != 3 || tb.NumCols() != 4 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	row := tb.Row(2)
	if row[0].I != 1 || !row[1].Null || !row[2].Null || row[3].I != 10 {
		t.Fatalf("row 2 = %v", row)
	}
}

func TestDictSharing(t *testing.T) {
	tb := sampleTable(t)
	// Rows 0 and 2 share the id code for value 1.
	c := tb.Col(0)
	if c.Code(0) != c.Code(2) {
		t.Fatal("equal values got different codes")
	}
	if c.Code(0) == c.Code(1) {
		t.Fatal("different values got equal codes")
	}
}

func TestNullCodeIsZero(t *testing.T) {
	tb := sampleTable(t)
	if !tb.Col(1).IsNull(2) || tb.Col(1).Code(2) != 0 {
		t.Fatal("NULL should have code 0")
	}
	if tb.Col(1).IsNull(0) {
		t.Fatal("non-null reported as null")
	}
}

func TestAppendTypeMismatchPanics(t *testing.T) {
	tb := New("t", []ColumnDef{{Name: "a", Typ: TInt64}})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	tb.AppendRow(Str("oops"))
}

func TestAppendRowArityPanics(t *testing.T) {
	tb := New("t", []ColumnDef{{Name: "a", Typ: TInt64}})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on arity mismatch")
		}
	}()
	tb.AppendRow(Int(1), Int(2))
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate column")
		}
	}()
	New("t", []ColumnDef{{Name: "a", Typ: TInt64}, {Name: "a", Typ: TString}})
}

func TestGatherSharesDict(t *testing.T) {
	tb := sampleTable(t)
	g := tb.Gather("g", []int32{2, 0})
	if g.NumRows() != 2 {
		t.Fatalf("gather rows = %d", g.NumRows())
	}
	if !reflect.DeepEqual(g.Row(0), tb.Row(2)) || !reflect.DeepEqual(g.Row(1), tb.Row(0)) {
		t.Fatal("gather reordered values wrong")
	}
	if g.Col(1).dict != tb.Col(1).dict {
		t.Fatal("gather did not share dictionary")
	}
}

func TestProject(t *testing.T) {
	tb := sampleTable(t)
	p := tb.Project("p", []int{3, 0})
	if p.NumCols() != 2 || p.Col(0).Name() != "day" || p.Col(1).Name() != "id" {
		t.Fatalf("project schema = %v", p.ColNames())
	}
	if p.NumRows() != tb.NumRows() {
		t.Fatalf("project rows = %d", p.NumRows())
	}
}

func TestColIndexAndByName(t *testing.T) {
	tb := sampleTable(t)
	if tb.ColIndex("score") != 2 {
		t.Fatalf("ColIndex(score) = %d", tb.ColIndex("score"))
	}
	if tb.ColIndex("nope") != -1 {
		t.Fatal("missing column should give -1")
	}
	if tb.ColByName("nope") != nil {
		t.Fatal("missing column should give nil")
	}
	if tb.ColByName("name").Name() != "name" {
		t.Fatal("ColByName wrong column")
	}
}

func TestDistinctCount(t *testing.T) {
	tb := sampleTable(t)
	if got := tb.Col(0).DistinctCount(); got != 2 {
		t.Fatalf("id distinct = %d, want 2", got)
	}
	// name has alice, bob, NULL -> 3 distinct groups.
	if got := tb.Col(1).DistinctCount(); got != 3 {
		t.Fatalf("name distinct = %d, want 3", got)
	}
}

func TestRanksOrderValues(t *testing.T) {
	tb := New("t", []ColumnDef{{Name: "s", Typ: TString}})
	for _, s := range []string{"pear", "apple", "fig"} {
		tb.AppendRow(Str(s))
	}
	tb.AppendRow(Null(TString))
	c := tb.Col(0)
	ranks := c.Ranks()
	// NULL (code 0) must rank lowest.
	if ranks[0] != 0 {
		t.Fatalf("NULL rank = %d", ranks[0])
	}
	// apple < fig < pear regardless of insertion order.
	get := func(s string) uint32 {
		for i := 0; i < 3; i++ {
			if c.Value(i).S == s {
				return ranks[c.Code(i)]
			}
		}
		t.Fatalf("value %q not found", s)
		return 0
	}
	if !(get("apple") < get("fig") && get("fig") < get("pear")) {
		t.Fatalf("ranks out of order: apple=%d fig=%d pear=%d", get("apple"), get("fig"), get("pear"))
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Str("a"), Str("b"), -1},
		{Date(5), Date(4), 1},
		{Null(TInt64), Int(-100), -1},
		{Int(-100), Null(TInt64), 1},
		{Null(TString), Null(TString), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic comparing across types")
		}
	}()
	Int(1).Compare(Str("x"))
}

func TestValueEqualNullSemantics(t *testing.T) {
	if !Null(TInt64).Equal(Null(TInt64)) {
		t.Fatal("NULL should equal NULL for grouping")
	}
	if Null(TInt64).Equal(Int(0)) {
		t.Fatal("NULL should not equal 0")
	}
}

func TestWidthBytes(t *testing.T) {
	tb := sampleTable(t)
	// id 8 + score 8 + day 4 = 20, plus avg string width of {alice,bob}.
	strW := tb.Col(1).AvgWidth()
	if strW != 4 { // (5+3)/2
		t.Fatalf("string avg width = %v, want 4", strW)
	}
	if got := tb.WidthBytes(colset.Set(0)); got != 24 {
		t.Fatalf("full width = %v, want 24", got)
	}
	if got := tb.WidthBytes(colset.Of(0, 3)); got != 12 {
		t.Fatalf("subset width = %v, want 12", got)
	}
	if tb.SizeBytes() != 24*3 {
		t.Fatalf("SizeBytes = %v", tb.SizeBytes())
	}
}

func TestEmptyStringColumnWidth(t *testing.T) {
	tb := New("t", []ColumnDef{{Name: "s", Typ: TString}})
	if tb.Col(0).AvgWidth() != 1 {
		t.Fatalf("empty string column width = %v", tb.Col(0).AvgWidth())
	}
}

func TestRename(t *testing.T) {
	tb := sampleTable(t)
	r := tb.Rename("other")
	if r.Name() != "other" || tb.Name() != "t" {
		t.Fatal("rename should not mutate original")
	}
	if r.NumRows() != tb.NumRows() {
		t.Fatal("rename changed data")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sampleTable(t)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t", sampleDefs(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tb.NumRows() {
		t.Fatalf("round trip rows = %d", back.NumRows())
	}
	for i := 0; i < tb.NumRows(); i++ {
		a, b := tb.Row(i), back.Row(i)
		for j := range a {
			if !a[j].Equal(b[j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	defs := []ColumnDef{{Name: "a", Typ: TInt64}}
	if _, err := ReadCSV("t", defs, strings.NewReader("b\n1\n")); err == nil {
		t.Error("mismatched header accepted")
	}
	if _, err := ReadCSV("t", defs, strings.NewReader("a\nxyz\n")); err == nil {
		t.Error("bad integer accepted")
	}
	if _, err := ReadCSV("t", defs, strings.NewReader("a,b\n")); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestFormatRows(t *testing.T) {
	tb := sampleTable(t)
	out := tb.FormatRows(2)
	if !strings.Contains(out, "alice") || !strings.Contains(out, "1 more rows") {
		t.Fatalf("FormatRows output:\n%s", out)
	}
	full := tb.FormatRows(-1)
	if !strings.Contains(full, "NULL") {
		t.Fatalf("FormatRows should render NULL:\n%s", full)
	}
}

func TestTypeString(t *testing.T) {
	if TInt64.String() != "BIGINT" || TString.String() != "VARCHAR" ||
		TDate.String() != "DATE" || TFloat64.String() != "FLOAT" {
		t.Fatal("unexpected type names")
	}
	if !strings.Contains(Type(99).String(), "99") {
		t.Fatal("unknown type should include the code")
	}
}

// Property: dictionary round-trips arbitrary int64 and string values.
func TestQuickDictRoundTripInt(t *testing.T) {
	tb := New("t", []ColumnDef{{Name: "a", Typ: TInt64}})
	f := func(v int64) bool {
		tb.AppendRow(Int(v))
		got := tb.Col(0).Value(tb.NumRows() - 1)
		return !got.Null && got.I == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDictRoundTripString(t *testing.T) {
	tb := New("t", []ColumnDef{{Name: "a", Typ: TString}})
	f := func(v string) bool {
		tb.AppendRow(Str(v))
		got := tb.Col(0).Value(tb.NumRows() - 1)
		return !got.Null && got.S == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: codes are equal iff values are equal within a column.
func TestQuickCodeEqualityMatchesValueEquality(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tb := New("t", []ColumnDef{{Name: "a", Typ: TInt64}})
	for i := 0; i < 500; i++ {
		if r.Intn(10) == 0 {
			tb.AppendRow(Null(TInt64))
		} else {
			tb.AppendRow(Int(int64(r.Intn(20))))
		}
	}
	c := tb.Col(0)
	for trial := 0; trial < 200; trial++ {
		i, j := r.Intn(c.Len()), r.Intn(c.Len())
		codesEq := c.Code(i) == c.Code(j)
		valsEq := c.Value(i).Equal(c.Value(j))
		if codesEq != valsEq {
			t.Fatalf("rows %d,%d: codes equal=%v values equal=%v", i, j, codesEq, valsEq)
		}
	}
}

func TestAppendCodesBulk(t *testing.T) {
	tb := sampleTable(t)
	src := tb.Col(1)
	// Bulk-appending a permutation of existing codes into a dict-sharing
	// column must decode to the same values as appending them one by one.
	bulk := src.EmptyLike("bulk")
	one := src.EmptyLike("one")
	codes := []uint32{src.Code(2), src.Code(0), src.Code(1), src.Code(0)}
	bulk.AppendCodes(codes)
	for _, c := range codes {
		one.AppendCode(c)
	}
	if bulk.Len() != len(codes) {
		t.Fatalf("len = %d, want %d", bulk.Len(), len(codes))
	}
	for i := range codes {
		if !bulk.Value(i).Equal(one.Value(i)) {
			t.Fatalf("row %d: bulk %v, one-by-one %v", i, bulk.Value(i), one.Value(i))
		}
	}
	if !bulk.Value(0).Null || bulk.Value(1).S != "alice" {
		t.Fatalf("decoded values wrong: %v, %v", bulk.Value(0), bulk.Value(1))
	}
}
