package table

import (
	"fmt"
	"strconv"
)

// Type identifies the logical type of a column.
type Type uint8

const (
	// TInt64 is a 64-bit signed integer column.
	TInt64 Type = iota
	// TFloat64 is a 64-bit floating point column.
	TFloat64
	// TString is a variable-length string column.
	TString
	// TDate is a date column stored as days since an arbitrary epoch. Dates
	// are kept distinct from TInt64 because they are narrower on disk (the
	// cost model charges 4 bytes) and print as dates.
	TDate
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt64:
		return "BIGINT"
	case TFloat64:
		return "FLOAT"
	case TString:
		return "VARCHAR"
	case TDate:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// fixedWidth returns the storage width in bytes for fixed-width types and 0
// for TString (whose width depends on the data).
func (t Type) fixedWidth() float64 {
	switch t {
	case TInt64, TFloat64:
		return 8
	case TDate:
		return 4
	default:
		return 0
	}
}

// Value is one typed cell. The zero Value is a NULL of type TInt64.
type Value struct {
	Typ  Type
	Null bool
	I    int64 // TInt64, TDate
	F    float64
	S    string
}

// Int builds a non-null TInt64 value.
func Int(v int64) Value { return Value{Typ: TInt64, I: v} }

// Float builds a non-null TFloat64 value.
func Float(v float64) Value { return Value{Typ: TFloat64, F: v} }

// Str builds a non-null TString value.
func Str(v string) Value { return Value{Typ: TString, S: v} }

// Date builds a non-null TDate value from days since epoch.
func Date(days int64) Value { return Value{Typ: TDate, I: days} }

// Null builds a NULL value of the given type.
func Null(t Type) Value { return Value{Typ: t, Null: true} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Null }

// Compare orders two values of the same type: -1, 0, or +1. NULL sorts before
// every non-null value and equal to NULL (SQL grouping semantics: NULLs form
// one group). Comparing values of different types panics: the planner
// guarantees homogeneous comparisons.
func (v Value) Compare(o Value) int {
	if v.Typ != o.Typ {
		panic(fmt.Sprintf("table: comparing %s with %s", v.Typ, o.Typ))
	}
	switch {
	case v.Null && o.Null:
		return 0
	case v.Null:
		return -1
	case o.Null:
		return 1
	}
	switch v.Typ {
	case TInt64, TDate:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case TFloat64:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
		return 0
	case TString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("table: unknown type %v", v.Typ))
}

// Equal reports whether two values are identical (NULL == NULL, matching
// grouping semantics).
func (v Value) Equal(o Value) bool { return v.Typ == o.Typ && v.Compare(o) == 0 }

// String renders the value for display and CSV output. NULL renders as the
// empty string.
func (v Value) String() string {
	if v.Null {
		return ""
	}
	switch v.Typ {
	case TInt64:
		return strconv.FormatInt(v.I, 10)
	case TDate:
		return fmt.Sprintf("D%d", v.I)
	case TFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	}
	return fmt.Sprintf("?%d", v.Typ)
}
