package table

import (
	"bytes"
	"testing"
)

func appendRows() [][]Value {
	return [][]Value{
		{Int(3), Str("carol"), Float(3.5), Date(12)},
		{Int(1), Str("alice"), Null(TFloat64), Date(10)},
		{Int(4), Null(TString), Float(4.5), Null(TDate)},
	}
}

func TestAppendSnapshotIsolation(t *testing.T) {
	base := sampleTable(t)
	next := base.Append(appendRows())
	if base.NumRows() != 3 {
		t.Fatalf("append mutated parent row count: %d", base.NumRows())
	}
	if next.NumRows() != 6 || next.NumCols() != base.NumCols() {
		t.Fatalf("child shape = %dx%d", next.NumRows(), next.NumCols())
	}
	if next.DeltaStart() != 3 || !next.HasDelta() {
		t.Fatalf("DeltaStart = %d, HasDelta = %v", next.DeltaStart(), next.HasDelta())
	}
	if base.HasDelta() {
		t.Fatal("parent should not report a delta")
	}
	// Old-snapshot readers see exactly the pre-append rows.
	for i := 0; i < base.NumRows(); i++ {
		a, b := base.Row(i), next.Row(i)
		for j := range a {
			if !a[j].Equal(b[j]) {
				t.Fatalf("row %d col %d diverged: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
	if v := next.Col(1).Value(3); v.S != "carol" {
		t.Fatalf("delta row decoded %v", v)
	}
	if !next.Col(3).IsNull(5) {
		t.Fatal("delta NULL lost")
	}
}

func TestAppendKeepsCodesStable(t *testing.T) {
	base := sampleTable(t)
	next := base.Append(appendRows())
	// Pre-existing values must keep their codes: "alice" appended again in the
	// delta interns to the same code the base assigned.
	c := next.Col(1)
	if c.Code(0) != c.Code(4) {
		t.Fatalf("re-appended value got a new code: %d vs %d", c.Code(0), c.Code(4))
	}
	for j := 0; j < base.NumCols(); j++ {
		for i := 0; i < base.NumRows(); i++ {
			if base.Col(j).Code(i) != next.Col(j).Code(i) {
				t.Fatalf("col %d row %d code changed across append", j, i)
			}
		}
	}
}

func TestAppendExtendsRanks(t *testing.T) {
	base := New("t", []ColumnDef{{Name: "s", Typ: TString}})
	base.AppendRow(Str("fig"))
	base.AppendRow(Str("pear"))
	// Force the parent's rank table before appending: the child must still
	// rank the newly interned value correctly (fresh rank table, not the
	// parent's stale one).
	_ = base.Col(0).Ranks()
	next := base.Append([][]Value{{Str("apple")}})
	c := next.Col(0)
	ranks := c.Ranks()
	if len(ranks) != c.DictSize()+1 {
		t.Fatalf("rank table covers %d codes, dict has %d", len(ranks)-1, c.DictSize())
	}
	rank := func(row int) uint32 { return ranks[c.Code(row)] }
	if !(rank(2) < rank(0) && rank(0) < rank(1)) {
		t.Fatalf("ranks out of order: apple=%d fig=%d pear=%d", rank(2), rank(0), rank(1))
	}
}

func TestAppendExtendsBuiltImage(t *testing.T) {
	base := sampleTable(t)
	img, _ := base.RowImage() // build the parent's scan image first
	next := base.Append(appendRows())
	got, _ := next.RowImage()
	want := packRows(next.cols, 0, next.NumRows())
	if !bytes.Equal(got, want) {
		t.Fatal("extended image differs from a full repack")
	}
	if again, _ := base.RowImage(); !bytes.Equal(again, img) {
		t.Fatal("parent image changed")
	}
	// And the lazy path (parent image never built) must agree too.
	cold := sampleTable(t).Append(appendRows())
	if coldImg, _ := cold.RowImage(); !bytes.Equal(coldImg, want) {
		t.Fatal("lazily built image differs")
	}
}

func TestDeltaViewSharesDicts(t *testing.T) {
	base := sampleTable(t)
	next := base.Append(appendRows())
	dv := next.DeltaView()
	if dv.NumRows() != 3 || dv.NumCols() != next.NumCols() {
		t.Fatalf("delta view shape = %dx%d", dv.NumRows(), dv.NumCols())
	}
	for j := 0; j < next.NumCols(); j++ {
		if dv.Col(j).dict != next.Col(j).dict {
			t.Fatalf("delta view col %d does not share the dictionary", j)
		}
		for i := 0; i < dv.NumRows(); i++ {
			if dv.Col(j).Code(i) != next.Col(j).Code(next.DeltaStart()+i) {
				t.Fatalf("delta view col %d row %d code mismatch", j, i)
			}
		}
	}
}

func TestAppendChain(t *testing.T) {
	cur := sampleTable(t)
	for step := 0; step < 4; step++ {
		cur = cur.Append(appendRows())
	}
	if cur.NumRows() != 3+4*3 {
		t.Fatalf("chained rows = %d", cur.NumRows())
	}
	if cur.DeltaStart() != cur.NumRows()-3 {
		t.Fatalf("DeltaStart after chain = %d", cur.DeltaStart())
	}
	// Every value decodes correctly through the repeatedly extended dicts.
	for i := 3; i < cur.NumRows(); i += 3 {
		if v := cur.Col(0).Value(i); v.I != 3 {
			t.Fatalf("row %d col 0 = %v", i, v)
		}
	}
}

func TestAppendEmptyIsNoopSnapshot(t *testing.T) {
	base := sampleTable(t)
	next := base.Append(nil)
	if next.NumRows() != base.NumRows() || next.HasDelta() {
		t.Fatalf("empty append: rows=%d hasDelta=%v", next.NumRows(), next.HasDelta())
	}
}

func TestEmptyLikeExtendedFreshRanks(t *testing.T) {
	base := New("t", []ColumnDef{{Name: "n", Typ: TInt64}})
	base.AppendRow(Int(5))
	base.AppendRow(Int(9))
	_ = base.Col(0).Ranks() // freeze the source's rank table
	ext := base.Col(0).EmptyLikeExtended("ext")
	ext.AppendCodes(base.Col(0).Codes())
	ext.Append(Int(7)) // interns into the shared lookup state
	// The source column's view stays at its snapshot size (slice headers are
	// per-dict), preserving old-reader isolation...
	if base.Col(0).DictSize() != 2 || ext.DictSize() != 3 {
		t.Fatalf("dict sizes = %d/%d, want 2/3", base.Col(0).DictSize(), ext.DictSize())
	}
	// ...and the extended column's rank table covers the new code.
	ranks := ext.Ranks()
	if len(ranks) != 4 {
		t.Fatalf("extended rank table covers %d codes", len(ranks)-1)
	}
	if !(ranks[ext.Code(0)] < ranks[ext.Code(2)] && ranks[ext.Code(2)] < ranks[ext.Code(1)]) {
		t.Fatal("extended ranks out of order")
	}
}
