// Package table implements the columnar storage substrate of the engine.
//
// Every column is dictionary-encoded: cell i of a column is a uint32 code into
// a per-column dictionary, with code 0 reserved for NULL. Group-by operators
// in internal/exec therefore work on uniform code tuples regardless of column
// types, and derived tables produced by gathering rows share their parents'
// dictionaries, making materialization of intermediate Group By results cheap
// — the property the paper's plans depend on.
package table

import (
	"fmt"
	"sync"

	"gbmqo/internal/colset"
)

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Typ  Type
}

// Column is one dictionary-encoded column. Columns are append-only while a
// table is being built and immutable afterwards.
type Column struct {
	def   ColumnDef
	codes []uint32
	dict  *dict
}

// NewColumn creates an empty column.
func NewColumn(def ColumnDef) *Column {
	return &Column{def: def, dict: newDict(def.Typ)}
}

// Def returns the column definition.
func (c *Column) Def() ColumnDef { return c.def }

// Name returns the column name.
func (c *Column) Name() string { return c.def.Name }

// Type returns the column type.
func (c *Column) Type() Type { return c.def.Typ }

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.codes) }

// Code returns the dictionary code of row i (0 for NULL).
func (c *Column) Code(i int) uint32 { return c.codes[i] }

// Codes exposes the raw code vector. Callers must not mutate it.
func (c *Column) Codes() []uint32 { return c.codes }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.codes[i] == nullCode }

// Value decodes row i.
func (c *Column) Value(i int) Value { return c.dict.value(c.codes[i]) }

// Decode decodes an arbitrary code from this column's dictionary.
func (c *Column) Decode(code uint32) Value { return c.dict.value(code) }

// Append interns v and appends it. It panics on a type mismatch, which is
// always a caller bug.
func (c *Column) Append(v Value) {
	if !v.Null && v.Typ != c.def.Typ {
		panic(fmt.Sprintf("table: appending %s value to %s column %q", v.Typ, c.def.Typ, c.def.Name))
	}
	c.codes = append(c.codes, c.dict.code(v))
}

// AppendCode appends a raw code that must already belong to this column's
// dictionary (used by operators that copy rows between tables sharing a dict).
func (c *Column) AppendCode(code uint32) { c.codes = append(c.codes, code) }

// AppendCodes bulk-appends raw codes that must already belong to this
// column's dictionary. Output assembly for high-NDV Group By results uses it
// instead of per-row AppendCode calls.
func (c *Column) AppendCodes(codes []uint32) { c.codes = append(c.codes, codes...) }

// Ranks returns the code→rank table for order-by-value sorting (NULL ranks
// first).
func (c *Column) Ranks() []uint32 { return c.dict.ranks() }

// DictSize returns the number of distinct non-null values interned in the
// dictionary. For a base column this equals the column's exact NDV; for a
// gathered column it is an upper bound.
func (c *Column) DictSize() int { return c.dict.size() }

// DistinctCount computes the exact number of distinct values present in the
// column (counting NULL as one value if present). It is O(rows) and intended
// for tests and exact statistics, not the hot path.
func (c *Column) DistinctCount() int {
	seen := make([]bool, c.dict.size()+1)
	n := 0
	for _, code := range c.codes {
		if !seen[code] {
			seen[code] = true
			n++
		}
	}
	return n
}

// AvgWidth returns the average width in bytes of one value.
func (c *Column) AvgWidth() float64 { return c.dict.avgWidth() }

// Int64DecodeTable returns a code-indexed decode table for TInt64/TDate
// columns: table[code] is the value of that code (index 0, the NULL code, is
// unused). Aggregation hot loops use it to avoid per-row Value construction.
// It panics on other column types.
func (c *Column) Int64DecodeTable() []int64 {
	if c.def.Typ != TInt64 && c.def.Typ != TDate {
		panic(fmt.Sprintf("table: Int64DecodeTable on %s column %q", c.def.Typ, c.def.Name))
	}
	out := make([]int64, len(c.dict.ints)+1)
	copy(out[1:], c.dict.ints)
	return out
}

// Float64DecodeTable is the TFloat64 analogue of Int64DecodeTable.
func (c *Column) Float64DecodeTable() []float64 {
	if c.def.Typ != TFloat64 {
		panic(fmt.Sprintf("table: Float64DecodeTable on %s column %q", c.def.Typ, c.def.Name))
	}
	out := make([]float64, len(c.dict.floats)+1)
	copy(out[1:], c.dict.floats)
	return out
}

// EmptyLike creates an empty column under a new name that shares this
// column's dictionary, so codes can be copied across with AppendCode. This is
// how group-by operators emit key columns without re-interning values.
func (c *Column) EmptyLike(name string) *Column {
	def := c.def
	def.Name = name
	return &Column{def: def, dict: c.dict}
}

// EmptyLikeExtended is EmptyLike over an extended view of the dictionary: the
// backing value arrays and lookup maps stay shared (existing codes remain
// valid and comparable) but the rank table is recomputed on demand over the
// grown code range. Use it instead of EmptyLike when the new column will
// intern values that a rank table already built for the source column would
// not cover — the append path's shard-partition extension does this for the
// hidden row column.
func (c *Column) EmptyLikeExtended(name string) *Column {
	def := c.def
	def.Name = name
	return &Column{def: def, dict: c.dict.extend()}
}

// gather builds a new column containing rows idx, sharing this column's
// dictionary.
func (c *Column) gather(idx []int32) *Column {
	out := &Column{def: c.def, dict: c.dict, codes: make([]uint32, len(idx))}
	for i, r := range idx {
		out.codes[i] = c.codes[r]
	}
	return out
}

// imgState holds a table's lazily built scan image behind its own lock, as a
// separate allocation so Table values stay copyable (Rename) and so an
// appended snapshot can extend its parent's already-built image without
// racing a concurrent lazy build by a reader of the parent.
type imgState struct {
	mu   sync.Mutex
	data []byte
}

// Table is a named collection of equal-length columns.
type Table struct {
	name  string
	cols  []*Column
	byIdx map[string]int
	nrows int

	// deltaStart is the append watermark: rows [deltaStart, nrows) arrived in
	// the Append call that produced this snapshot (0 for tables not produced
	// by Append). See DeltaView.
	deltaStart int

	// img is the packed row-major scan image (see RowImage), built lazily on
	// first scan.
	img *imgState
}

// New creates an empty table with the given schema. Column names must be
// unique and non-empty.
func New(name string, defs []ColumnDef) *Table {
	t := &Table{name: name, byIdx: make(map[string]int, len(defs)), img: &imgState{}}
	for i, d := range defs {
		if d.Name == "" {
			panic(fmt.Sprintf("table %q: column %d has empty name", name, i))
		}
		if _, dup := t.byIdx[d.Name]; dup {
			panic(fmt.Sprintf("table %q: duplicate column %q", name, d.Name))
		}
		t.byIdx[d.Name] = i
		t.cols = append(t.cols, NewColumn(d))
	}
	return t
}

// FromColumns assembles a table from pre-built columns of equal length.
func FromColumns(name string, cols []*Column) *Table {
	t := &Table{name: name, byIdx: make(map[string]int, len(cols)), cols: cols, img: &imgState{}}
	for i, c := range cols {
		if _, dup := t.byIdx[c.Name()]; dup {
			panic(fmt.Sprintf("table %q: duplicate column %q", name, c.Name()))
		}
		t.byIdx[c.Name()] = i
		if c.Len() != cols[0].Len() {
			panic(fmt.Sprintf("table %q: column %q has %d rows, want %d", name, c.Name(), c.Len(), cols[0].Len()))
		}
	}
	if len(cols) > 0 {
		t.nrows = cols[0].Len()
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Rename returns the same table under a different name (shallow; columns are
// shared). Used when materializing temp tables.
func (t *Table) Rename(name string) *Table {
	out := *t
	out.name = name
	return &out
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.nrows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Col returns column i.
func (t *Table) Col(i int) *Column { return t.cols[i] }

// ColIndex returns the ordinal of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.byIdx[name]; ok {
		return i
	}
	return -1
}

// ColByName returns the named column or nil.
func (t *Table) ColByName(name string) *Column {
	if i := t.ColIndex(name); i >= 0 {
		return t.cols[i]
	}
	return nil
}

// Defs returns the schema as a fresh slice.
func (t *Table) Defs() []ColumnDef {
	out := make([]ColumnDef, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.def
	}
	return out
}

// ColNames returns the column names in ordinal order.
func (t *Table) ColNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Name()
	}
	return out
}

// AppendRow appends one row; vals must match the schema arity.
func (t *Table) AppendRow(vals ...Value) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("table %q: AppendRow got %d values, want %d", t.name, len(vals), len(t.cols)))
	}
	for i, v := range vals {
		t.cols[i].Append(v)
	}
	t.nrows++
}

// Row decodes row i (convenience for tests and display).
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.Value(i)
	}
	return out
}

// Gather builds a new table containing rows idx in order, sharing
// dictionaries with this table.
func (t *Table) Gather(name string, idx []int32) *Table {
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.gather(idx)
	}
	out := FromColumns(name, cols)
	return out
}

// Project builds a new table with only the given column ordinals (shallow:
// columns are shared, not copied).
func (t *Table) Project(name string, ords []int) *Table {
	cols := make([]*Column, len(ords))
	for i, o := range ords {
		cols[i] = t.cols[o]
	}
	return FromColumns(name, cols)
}

// RowImage returns the packed row-major code image of the table — 4 bytes
// (one little-endian uint32 code) per column per row — along with the row
// stride, building it on first use. Table-scanning operators read key codes
// through this image, which gives the storage engine row-store scan
// behaviour: touching any column of a row pulls the whole row's bytes through
// the cache, so scan cost grows with table *width*, exactly like the
// disk-based row store the paper evaluated on. This is what makes computing a
// narrow Group By from a narrow materialized intermediate much cheaper than
// from the wide base relation.
//
// The build is synchronized: concurrent readers of a shared table (cached
// entries, shard partitions, append snapshots) may all trigger the first
// scan, and exactly one of them builds the image.
func (t *Table) RowImage() (image []byte, stride int) {
	stride = 4 * len(t.cols)
	t.img.mu.Lock()
	defer t.img.mu.Unlock()
	if t.img.data == nil {
		t.img.data = packRows(t.cols, 0, t.nrows)
	}
	return t.img.data, stride
}

// packRows encodes rows [lo, hi) of cols into the packed row-major image
// form: one little-endian uint32 code per column per row.
func packRows(cols []*Column, lo, hi int) []byte {
	stride := 4 * len(cols)
	img := make([]byte, (hi-lo)*stride)
	for ci, c := range cols {
		off := 4 * ci
		for r := lo; r < hi; r++ {
			code := c.codes[r]
			p := (r-lo)*stride + off
			img[p] = byte(code)
			img[p+1] = byte(code >> 8)
			img[p+2] = byte(code >> 16)
			img[p+3] = byte(code >> 24)
		}
	}
	return img
}

// WidthBytes returns the average row width in bytes over the given column
// set, the quantity the optimizer cost model charges scans and writes for.
// An empty set means all columns.
func (t *Table) WidthBytes(set colset.Set) float64 {
	w := 0.0
	if set.IsEmpty() {
		for _, c := range t.cols {
			w += c.AvgWidth()
		}
		return w
	}
	set.ForEach(func(i int) {
		if i < len(t.cols) {
			w += t.cols[i].AvgWidth()
		}
	})
	return w
}

// SizeBytes estimates total storage of the table: rows × average row width.
func (t *Table) SizeBytes() float64 {
	return float64(t.nrows) * t.WidthBytes(colset.Set(0))
}

// MemSize returns the actual resident bytes of the table's columnar state —
// 4 bytes of dictionary code per cell, plus the row-major scan image when it
// has been built — the quantity a MemBudget is charged when the engine
// materializes this table as a temp. Dictionaries are deliberately excluded:
// gathered and aggregated tables share them with their parent, so
// materializing an intermediate costs no extra dictionary memory.
func (t *Table) MemSize() int64 {
	t.img.mu.Lock()
	imgBytes := len(t.img.data)
	t.img.mu.Unlock()
	return int64(t.nrows)*int64(len(t.cols))*4 + int64(imgBytes)
}

// String summarizes the table.
func (t *Table) String() string {
	return fmt.Sprintf("%s(%d cols, %d rows)", t.name, len(t.cols), t.nrows)
}
