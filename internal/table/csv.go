package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the table with a header row. NULLs render as empty fields,
// which ReadCSV maps back to NULL.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for i := 0; i < t.nrows; i++ {
		for j, c := range t.cols {
			v := c.Value(i)
			if v.Null {
				rec[j] = ""
			} else if v.Typ == TDate {
				rec[j] = strconv.FormatInt(v.I, 10)
			} else {
				rec[j] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table with the given schema from CSV with a header row. The
// header must match the schema's column names in order.
func ReadCSV(name string, defs []ColumnDef, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	if len(header) != len(defs) {
		return nil, fmt.Errorf("table: CSV has %d columns, schema has %d", len(header), len(defs))
	}
	for i, h := range header {
		if h != defs[i].Name {
			return nil, fmt.Errorf("table: CSV column %d is %q, schema says %q", i, h, defs[i].Name)
		}
	}
	t := New(name, defs)
	vals := make([]Value, len(defs))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV row: %w", err)
		}
		for i, field := range rec {
			v, err := parseField(defs[i].Typ, field)
			if err != nil {
				return nil, fmt.Errorf("table: column %q: %w", defs[i].Name, err)
			}
			vals[i] = v
		}
		t.AppendRow(vals...)
	}
	return t, nil
}

func parseField(typ Type, field string) (Value, error) {
	if field == "" {
		return Null(typ), nil
	}
	switch typ {
	case TInt64:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as BIGINT: %w", field, err)
		}
		return Int(n), nil
	case TDate:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as DATE: %w", field, err)
		}
		return Date(n), nil
	case TFloat64:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as FLOAT: %w", field, err)
		}
		return Float(f), nil
	default:
		return Str(field), nil
	}
}

// FormatRows renders up to limit rows as an aligned text grid for display in
// examples and the CLI. A negative limit renders all rows.
func (t *Table) FormatRows(limit int) string {
	n := t.nrows
	truncated := false
	if limit >= 0 && n > limit {
		n = limit
		truncated = true
	}
	widths := make([]int, t.NumCols())
	header := t.ColNames()
	for j, h := range header {
		widths[j] = len(h)
	}
	cells := make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, t.NumCols())
		for j, c := range t.cols {
			v := c.Value(i)
			s := v.String()
			if v.Null {
				s = "NULL"
			}
			row[j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
		cells[i] = row
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for j, s := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], s)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for j := range header {
		if j > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[j]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	if truncated {
		fmt.Fprintf(&b, "... (%d more rows)\n", t.nrows-n)
	}
	return b.String()
}
