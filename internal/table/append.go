package table

import "fmt"

// Append returns a new snapshot of the table with rows appended. The receiver
// is left observable exactly as it was: the new snapshot shares the code
// backing arrays and (extended) dictionaries with its parent, and writes land
// strictly past the parent's row count, so readers of the old snapshot never
// see them. Dictionary codes are stable across snapshots — a group-key code in
// a cached aggregate computed over the parent means the same value over the
// child — which is what makes delta roll-forward of cached Group By results
// possible without re-keying.
//
// Concurrency contract: Append must only be called on the NEWEST snapshot of a
// table's lineage, one call at a time (the engine serializes appends per
// catalog). Appending twice from the same parent would make both children
// write the same backing range. Readers of any snapshot are always safe.
//
// Validation is all-or-nothing and happens before any shared state is
// touched: a type-mismatched or wrong-arity row leaves the dictionaries and
// code arrays unmodified.
func (t *Table) Append(rows [][]Value) *Table {
	for ri, row := range rows {
		if len(row) != len(t.cols) {
			panic(fmt.Sprintf("table %q: Append row %d has %d values, want %d", t.name, ri, len(row), len(t.cols)))
		}
		for ci, v := range row {
			if !v.Null && v.Typ != t.cols[ci].def.Typ {
				panic(fmt.Sprintf("table %q: Append row %d column %q: %s value in %s column",
					t.name, ri, t.cols[ci].def.Name, v.Typ, t.cols[ci].def.Typ))
			}
		}
	}
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = &Column{def: c.def, codes: c.codes, dict: c.dict.extend()}
	}
	for _, row := range rows {
		for ci, v := range row {
			cols[ci].Append(v)
		}
	}
	out := &Table{
		name:       t.name,
		cols:       cols,
		byIdx:      t.byIdx,
		nrows:      t.nrows + len(rows),
		deltaStart: t.nrows,
		img:        &imgState{},
	}
	// If the parent's scan image is already built, extend it for the child
	// instead of forcing a full O(rows×cols) repack on the child's first scan.
	// The extension uses the same shared-backing discipline as the code
	// arrays: writes land strictly past the parent's length, so parent
	// readers (bounded by their own slice length) never see them, and spare
	// capacity left by append's growth makes chained appends amortized
	// O(delta) instead of O(total) per append. The newest-snapshot-only
	// contract above is what makes the shared tail safe.
	t.img.mu.Lock()
	if t.img.data != nil {
		out.img.data = append(t.img.data, packRows(cols, t.nrows, out.nrows)...)
	}
	t.img.mu.Unlock()
	return out
}

// DeltaStart returns the append watermark: rows [DeltaStart, NumRows) arrived
// in the Append call that produced this snapshot. Zero for tables not produced
// by Append.
func (t *Table) DeltaStart() int { return t.deltaStart }

// HasDelta reports whether this snapshot was produced by Append and carries a
// non-empty delta segment.
func (t *Table) HasDelta() bool { return t.deltaStart > 0 && t.deltaStart < t.nrows }

// DeltaView returns a table over only the delta segment [DeltaStart, NumRows),
// sharing dictionaries with this snapshot so codes keep their meaning. The
// engine aggregates this view with the ordinary kernels and merges the result
// into cached entries. The three-index slice caps capacity at the segment end,
// so an accidental append to the view cannot clobber shared backing.
func (t *Table) DeltaView() *Table {
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = &Column{def: c.def, codes: c.codes[t.deltaStart:t.nrows:t.nrows], dict: c.dict}
	}
	return FromColumns(t.name+"__delta", cols)
}
