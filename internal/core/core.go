// Package core implements the paper's primary contribution: the GB-MQO
// search algorithm (§4). Given a set of required Group By queries over one
// relation, it finds a low-cost logical plan by hill climbing from the naïve
// plan (every query computed from R), repeatedly applying the SubPlanMerge
// operator (§4.1, Figure 4) to the best-improving pair of sub-plans until no
// merge improves the plan (§4.2, Figure 5). Unlike partial-cube and
// view-selection predecessors it never constructs the exponential search DAG:
// only the part of the lattice the merges touch is ever instantiated, which
// is what lets it scale to the data-analysis workloads of §1.
package core

import (
	"fmt"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/cost"
	"gbmqo/internal/plan"
)

// Options configures the search.
type Options struct {
	// Model prices plan edges. Required.
	Model cost.Model
	// NAggs is the number of aggregate columns each query carries (default 1,
	// the paper's COUNT(*) setting).
	NAggs int
	// BinaryOnly restricts SubPlanMerge to type (b) (§4.2: "restriction of
	// the space of logical plans to binary trees"), the configuration §6.5
	// evaluates. The subsumption degenerate case is always available.
	BinaryOnly bool
	// PruneSubsumption enables §4.3.1: skip merging (vi, vj) when some other
	// pair's union is strictly contained in vi ∪ vj.
	PruneSubsumption bool
	// PruneMonotonic enables §4.3.2: once a pair's merge fails to improve,
	// never try a pair whose union contains that pair's union.
	PruneMonotonic bool
	// ConsiderCubeRollup enables the §7.1 extension: each merge additionally
	// considers replacing the new root with a CUBE or ROLLUP operator.
	ConsiderCubeRollup bool
	// MaxCubeCols caps the width of CUBE roots considered (default 5; a CUBE
	// on k columns covers 2^k sets).
	MaxCubeCols int
	// StorageBudget, when positive, rejects merged sub-plans whose minimum
	// intermediate storage (§4.4.1) exceeds the budget (§4.4.2). Requires
	// SizeFn.
	StorageBudget float64
	// SizeFn estimates materialized node sizes for the storage constraint.
	SizeFn plan.SizeFn
}

func (o *Options) normalize() error {
	if o.Model == nil {
		return fmt.Errorf("core: Options.Model is required")
	}
	if o.NAggs <= 0 {
		o.NAggs = 1
	}
	if o.MaxCubeCols <= 0 {
		o.MaxCubeCols = 5
	}
	if o.StorageBudget > 0 && o.SizeFn == nil {
		return fmt.Errorf("core: StorageBudget requires SizeFn")
	}
	return nil
}

// SearchStats reports search effort, the quantities §6.4–§6.6 chart.
type SearchStats struct {
	// Iterations is the number of hill-climbing rounds (applied merges + 1).
	Iterations int
	// MergeEvaluations counts SubPlanMerge invocations (cache misses only).
	MergeEvaluations int
	// PrunedPairs counts pairs skipped by the §4.3 pruning techniques.
	PrunedPairs int
	// OptimizerCalls is the number of cost-model edge costings performed
	// during the search — the paper's optimization-cost metric.
	OptimizerCalls int
	// Elapsed is wall-clock optimization time.
	Elapsed time.Duration
	// NaiveCost and FinalCost are the model costs of the starting and final
	// plans.
	NaiveCost float64
	FinalCost float64
}

// Optimize runs the GB-MQO search and returns the chosen logical plan.
// required must be non-empty, with distinct non-empty sets.
func Optimize(baseName string, colNames []string, required []colset.Set, opts Options) (*plan.Plan, SearchStats, error) {
	if err := opts.normalize(); err != nil {
		return nil, SearchStats{}, err
	}
	if len(required) == 0 {
		return nil, SearchStats{}, fmt.Errorf("core: no required queries")
	}
	seen := map[colset.Set]bool{}
	for _, s := range required {
		if s.IsEmpty() {
			return nil, SearchStats{}, fmt.Errorf("core: empty grouping set in input")
		}
		if seen[s] {
			return nil, SearchStats{}, fmt.Errorf("core: duplicate grouping set %s", s)
		}
		seen[s] = true
	}

	start := time.Now()
	callsBefore := opts.Model.Calls()
	s := &searcher{
		opts:       opts,
		baseName:   baseName,
		colNames:   colNames,
		required:   required,
		desc:       map[*plan.Node]float64{},
		mergeCache: map[pairKey]mergeOutcome{},
		setsCache:  map[*plan.Node]map[colset.Set]bool{},
	}
	s.initNaive()
	s.stats.NaiveCost = s.totalCost()

	for {
		s.stats.Iterations++
		best, ok := s.bestMerge()
		if !ok {
			break
		}
		if !s.tryApply(best) {
			// The merged plan violated a structural invariant (possible in
			// overlapping workloads when a union collides in ways the cheap
			// pre-checks miss); remember the pair as unmergeable and retry.
			s.mergeCache[makePairKey(s.subplans[best.i], s.subplans[best.j])] = mergeOutcome{}
			continue
		}
	}

	s.stats.FinalCost = s.totalCost()
	s.stats.OptimizerCalls = opts.Model.Calls() - callsBefore
	s.stats.Elapsed = time.Since(start)

	p := s.plan()
	p.Normalize()
	if err := p.Validate(required); err != nil {
		// A failed invariant here is a bug in the search, not user error.
		panic(fmt.Sprintf("core: produced invalid plan: %v\n%s", err, p))
	}
	return p, s.stats, nil
}

// subPlan is one tree whose root is computed directly from R.
type subPlan struct {
	root *plan.Node
	// cost is the full subtree cost (edge from base + everything below).
	cost float64
}

// searcher holds hill-climbing state.
type searcher struct {
	opts     Options
	baseName string
	colNames []string
	required []colset.Set

	subplans []*subPlan
	// desc caches, per node, the cost of everything strictly below it (the
	// sum over children of edge-into-child + child's desc). It is invariant
	// to the node's own parent, which is what makes merge candidates cheap to
	// price.
	desc map[*plan.Node]float64

	mergeCache   map[pairKey]mergeOutcome
	setsCache    map[*plan.Node]map[colset.Set]bool
	failedUnions []colset.Set // §4.3.2 state
	stats        SearchStats
}

// pairKey identifies an evaluated sub-plan pair by root identity. Sub-plan
// trees are immutable once built, so pointer identity is a sound cache key
// across iterations; this is the memoization that keeps total SubPlanMerge
// work O(n²) (§4.2, "Analysis of Running Time").
type pairKey [2]*plan.Node

func makePairKey(a, b *subPlan) pairKey {
	if a.root.Set > b.root.Set {
		a, b = b, a
	}
	return pairKey{a.root, b.root}
}

func (s *searcher) initNaive() {
	for _, set := range s.required {
		n := plan.NewNode(set, true)
		s.desc[n] = 0
		s.subplans = append(s.subplans, &subPlan{
			root: n,
			cost: s.edge(true, 0, set, false),
		})
	}
}

// edge prices one edge through the model.
func (s *searcher) edge(parentIsBase bool, parent, v colset.Set, materialize bool) float64 {
	return s.opts.Model.EdgeCost(cost.Edge{
		ParentIsBase: parentIsBase,
		Parent:       parent,
		V:            v,
		NAggs:        s.opts.NAggs,
		Materialize:  materialize,
	})
}

func (s *searcher) totalCost() float64 {
	t := 0.0
	for _, sp := range s.subplans {
		t += sp.cost
	}
	return t
}

// plan assembles the current state into a Plan.
func (s *searcher) plan() *plan.Plan {
	p := &plan.Plan{BaseName: s.baseName, ColNames: s.colNames}
	for _, sp := range s.subplans {
		p.Roots = append(p.Roots, sp.root)
	}
	return p
}

// bestMerge evaluates all pairs (subject to pruning and the memo) and
// returns the best strictly-improving merge.
func (s *searcher) bestMerge() (chosen applied, ok bool) {
	bestBenefit := 0.0
	for i := 0; i < len(s.subplans); i++ {
		for j := i + 1; j < len(s.subplans); j++ {
			p1, p2 := s.subplans[i], s.subplans[j]
			if s.pruned(p1, p2) {
				s.stats.PrunedPairs++
				continue
			}
			out := s.evaluate(p1, p2)
			if !out.valid {
				continue
			}
			benefit := p1.cost + p2.cost - out.cost
			if benefit <= 0 && s.opts.PruneMonotonic {
				s.noteFailedUnion(p1.root.Set.Union(p2.root.Set))
			}
			if benefit > bestBenefit {
				bestBenefit = benefit
				chosen = applied{i: i, j: j, outcome: out}
				ok = true
			}
		}
	}
	return chosen, ok
}

// applied identifies the merge to perform.
type applied struct {
	i, j    int
	outcome mergeOutcome
}

// tryApply replaces sub-plans i and j with the merged sub-plan, coalesces any
// sub-plans whose root sets became equal (possible when a union collides with
// an existing required root), and validates the result. On validation failure
// the previous state is restored and false returned.
func (s *searcher) tryApply(a applied) bool {
	snapshot := append([]*subPlan(nil), s.subplans...)
	merged := s.build(s.subplans[a.i], s.subplans[a.j], a.outcome)
	keep := make([]*subPlan, 0, len(s.subplans)-1)
	for k, sp := range s.subplans {
		if k != a.i && k != a.j {
			keep = append(keep, sp)
		}
	}
	s.subplans = append(keep, merged)
	s.coalesceEqualRoots()
	if err := s.plan().Validate(s.required); err != nil {
		s.subplans = snapshot
		return false
	}
	return true
}

// coalesceEqualRoots merges sub-plans sharing a root set into one node.
func (s *searcher) coalesceEqualRoots() {
	byset := map[colset.Set]*subPlan{}
	out := s.subplans[:0]
	for _, sp := range s.subplans {
		prev, dup := byset[sp.root.Set]
		if !dup {
			byset[sp.root.Set] = sp
			out = append(out, sp)
			continue
		}
		// Fold sp into prev: union children, OR the required flags.
		merged := plan.NewNode(prev.root.Set, prev.root.Required || sp.root.Required)
		merged.Children = append(append([]*plan.Node(nil), prev.root.Children...), sp.root.Children...)
		s.finishNode(merged)
		prev.root = merged
		prev.cost = s.edge(true, 0, merged.Set, merged.IsIntermediate()) + s.desc[merged]
	}
	s.subplans = out
}

// finishNode computes and caches desc for a freshly built node whose
// children already have cached desc values.
func (s *searcher) finishNode(n *plan.Node) {
	d := 0.0
	for _, c := range n.Children {
		d += s.edge(false, n.Set, c.Set, c.IsIntermediate()) + s.desc[c]
	}
	s.desc[n] = d
}
