package core

import (
	"fmt"
	"math"
	"math/bits"

	"gbmqo/internal/colset"
	"gbmqo/internal/cost"
	"gbmqo/internal/plan"
)

// MaxExhaustive is the largest input size ExhaustiveOptimize accepts; the
// space is exponential (the paper's §6.3 comparison "restricted the number of
// columns to 7" for the same reason).
const MaxExhaustive = 12

// ExhaustiveOptimize finds the optimal plan by dynamic programming over
// subsets of the required queries, searching the space of binary type-(b)
// forests with subsumption degeneracies — the space §6.5 shows loses less
// than 10% to the full space while being enumerable. It is used by the §6.3
// quality comparison and by property tests asserting that hill climbing never
// beats the optimum.
func ExhaustiveOptimize(baseName string, colNames []string, required []colset.Set, model cost.Model, nAggs int) (*plan.Plan, float64, error) {
	n := len(required)
	if n == 0 {
		return nil, 0, fmt.Errorf("core: no required queries")
	}
	if n > MaxExhaustive {
		return nil, 0, fmt.Errorf("core: exhaustive search limited to %d queries, got %d", MaxExhaustive, n)
	}
	if nAggs <= 0 {
		nAggs = 1
	}
	e := &exhaustive{required: required, model: model, nAggs: nAggs,
		tree: map[uint32]memo{}, under: map[underKey]memo{}}

	full := uint32(1)<<uint(n) - 1
	// Forest DP: partition the required set into sub-plans.
	forest := make([]float64, full+1)
	choice := make([]uint32, full+1)
	forest[0] = 0
	for mask := uint32(1); mask <= full; mask++ {
		forest[mask] = -1
		low := mask & (^mask + 1) // lowest set bit anchors the partition
		for sub := mask; sub > 0; sub = (sub - 1) & mask {
			if sub&low == 0 {
				continue
			}
			c := e.treeCost(sub) + forest[mask&^sub]
			if forest[mask] < 0 || c < forest[mask] {
				forest[mask] = c
				choice[mask] = sub
			}
		}
	}

	// Reconstruct.
	p := &plan.Plan{BaseName: baseName, ColNames: colNames}
	for mask := full; mask != 0; {
		sub := choice[mask]
		p.Roots = append(p.Roots, e.buildTree(sub))
		mask &^= sub
	}
	p.Normalize()
	if err := p.Validate(required); err != nil {
		return nil, 0, fmt.Errorf("core: exhaustive produced invalid plan: %w", err)
	}
	return p, forest[full], nil
}

type memo struct {
	cost  float64
	split uint32 // 0 = leaf / direct
}

type underKey struct {
	mask   uint32
	parent colset.Set
}

type exhaustive struct {
	required []colset.Set
	model    cost.Model
	nAggs    int
	tree     map[uint32]memo
	under    map[underKey]memo
}

func (e *exhaustive) union(mask uint32) colset.Set {
	var u colset.Set
	for m := mask; m != 0; m &= m - 1 {
		u = u.Union(e.required[bits.TrailingZeros32(m)])
	}
	return u
}

func (e *exhaustive) edge(parentIsBase bool, parent, v colset.Set, mat bool) float64 {
	return e.model.EdgeCost(cost.Edge{
		ParentIsBase: parentIsBase,
		Parent:       parent,
		V:            v,
		NAggs:        e.nAggs,
		Materialize:  mat,
	})
}

// treeCost prices computing all required queries in mask as one sub-plan
// hanging directly off the base relation.
func (e *exhaustive) treeCost(mask uint32) float64 {
	if m, ok := e.tree[mask]; ok {
		return m.cost
	}
	var m memo
	if bits.OnesCount32(mask) == 1 {
		s := e.required[bits.TrailingZeros32(mask)]
		m = memo{cost: e.edge(true, 0, s, false)}
	} else {
		u := e.union(mask)
		if e.collidesOutside(u, mask) {
			e.tree[mask] = memo{cost: math.Inf(1)}
			return math.Inf(1)
		}
		best, split := -1.0, uint32(0)
		low := mask & (^mask + 1)
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub&low == 0 {
				continue
			}
			c := e.underCost(sub, u) + e.underCost(mask&^sub, u)
			if best < 0 || c < best {
				best, split = c, sub
			}
		}
		// The root u is materialized; it may itself be a required query (when
		// the union coincides with one), in which case its own edge is all
		// that query needs.
		m = memo{cost: e.edge(true, 0, u, true) + best, split: split}
	}
	e.tree[mask] = m
	return m.cost
}

// underCost prices computing the queries of mask beneath a materialized
// parent with grouping set `parent`.
func (e *exhaustive) underCost(mask uint32, parent colset.Set) float64 {
	key := underKey{mask, parent}
	if m, ok := e.under[key]; ok {
		return m.cost
	}
	var m memo
	if bits.OnesCount32(mask) == 1 {
		s := e.required[bits.TrailingZeros32(mask)]
		if s == parent {
			m = memo{cost: 0} // the parent itself is this required query
		} else {
			m = memo{cost: e.edge(false, parent, s, false)}
		}
	} else {
		u := e.union(mask)
		if u == parent {
			// No new node: split directly beneath the parent.
			best, split := -1.0, uint32(0)
			low := mask & (^mask + 1)
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if sub&low == 0 {
					continue
				}
				c := e.underCost(sub, parent) + e.underCost(mask&^sub, parent)
				if best < 0 || c < best {
					best, split = c, sub
				}
			}
			m = memo{cost: best, split: split}
		} else if e.collidesOutside(u, mask) {
			m = memo{cost: math.Inf(1)}
		} else {
			best, split := -1.0, uint32(0)
			low := mask & (^mask + 1)
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if sub&low == 0 {
					continue
				}
				c := e.underCost(sub, u) + e.underCost(mask&^sub, u)
				if best < 0 || c < best {
					best, split = c, sub
				}
			}
			m = memo{cost: e.edge(false, parent, u, true) + best, split: split}
		}
	}
	e.under[key] = m
	return m.cost
}

// buildTree reconstructs the sub-plan for mask rooted under the base.
func (e *exhaustive) buildTree(mask uint32) *plan.Node {
	if bits.OnesCount32(mask) == 1 {
		return plan.NewNode(e.required[bits.TrailingZeros32(mask)], true)
	}
	u := e.union(mask)
	e.treeCost(mask) // ensure memo
	m := e.tree[mask]
	root := plan.NewNode(u, e.isRequiredSet(u))
	e.attachChildren(root, mask, m.split, u)
	return root
}

// attachChildren expands the DP's split decisions into child nodes under a
// node with grouping set `parent`.
func (e *exhaustive) attachChildren(parent *plan.Node, mask, split uint32, parentSet colset.Set) {
	for _, part := range []uint32{split, mask &^ split} {
		e.attachPart(parent, part, parentSet)
	}
}

func (e *exhaustive) attachPart(parent *plan.Node, mask uint32, parentSet colset.Set) {
	if bits.OnesCount32(mask) == 1 {
		s := e.required[bits.TrailingZeros32(mask)]
		if s == parentSet {
			parent.Required = true
			return
		}
		parent.Children = append(parent.Children, plan.NewNode(s, true))
		return
	}
	u := e.union(mask)
	e.underCost(mask, parentSet) // ensure memo
	m := e.under[underKey{mask, parentSet}]
	if u == parentSet {
		e.attachChildren(parent, mask, m.split, parentSet)
		return
	}
	node := plan.NewNode(u, e.isRequiredSet(u))
	e.attachChildren(node, mask, m.split, u)
	parent.Children = append(parent.Children, node)
}

func (e *exhaustive) isRequiredSet(u colset.Set) bool {
	for _, r := range e.required {
		if r == u {
			return true
		}
	}
	return false
}

// collidesOutside reports whether creating an internal node with set u inside
// mask would duplicate a required query handled outside mask (which would
// make the reconstructed plan invalid).
func (e *exhaustive) collidesOutside(u colset.Set, mask uint32) bool {
	for i, r := range e.required {
		if r == u && mask&(1<<uint(i)) == 0 {
			return true
		}
	}
	return false
}
