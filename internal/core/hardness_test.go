package core

// The paper's Appendix A proves GB-MQO NP-complete (even for single-column
// inputs under the cardinality cost model) by reduction from the optimal
// bushy cross-product plan problem (XR): given relations R1..RN, build the
// cross-product relation R with one column per Ri; then the optimal GB-MQO
// plan for the single-column queries mirrors the optimal bushy join tree,
// with  C(P_opt) = 2·C'(T_opt) + 2|R|·(#sub-plans cost) … concretely, every
// internal join node of cardinality |Ri|·|Rj|·… becomes a materialized Group
// By with the same cardinality. This file *executes* the reduction on small
// instances: it brute-forces the optimal bushy plan, maps it through the
// reduction, and checks the exhaustive GB-MQO optimum matches the mapped
// cost exactly.

import (
	"math"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/cost"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// crossProductTable builds R = R1 × … × RN where column i takes |Ri| distinct
// values and every combination appears exactly once (the reduction's setup:
// one column per relation, all tuples distinct).
func crossProductTable(sizes []int) *table.Table {
	defs := make([]table.ColumnDef, len(sizes))
	for i := range sizes {
		defs[i] = table.ColumnDef{Name: string(rune('a' + i)), Typ: table.TInt64}
	}
	t := table.New("X", defs)
	total := 1
	for _, s := range sizes {
		total *= s
	}
	row := make([]table.Value, len(sizes))
	for r := 0; r < total; r++ {
		rem := r
		for i, s := range sizes {
			row[i] = table.Int(int64(rem % s))
			rem /= s
		}
		t.AppendRow(row...)
	}
	return t
}

// optimalBushy brute-forces the XR problem: the minimum over bushy
// cross-product trees of the sum of internal-node cardinalities, excluding
// the root (the root is the full product — in the reduction it maps to R
// itself and costs nothing). Masks index into sizes.
func optimalBushy(sizes []int) float64 {
	n := len(sizes)
	full := (1 << n) - 1
	card := make([]float64, full+1)
	for mask := 1; mask <= full; mask++ {
		card[mask] = 1
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				card[mask] *= float64(sizes[i])
			}
		}
	}
	memo := make([]float64, full+1)
	for i := range memo {
		memo[i] = -1
	}
	// best(mask) = min sum of internal-node cardinalities in a bushy tree
	// computing the product of mask, *including* the node for mask itself.
	var best func(mask int) float64
	best = func(mask int) float64 {
		if mask&(mask-1) == 0 {
			return 0 // leaf relation: not an internal node
		}
		if memo[mask] >= 0 {
			return memo[mask]
		}
		low := mask & (-mask)
		res := math.Inf(1)
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub&low == 0 {
				continue
			}
			if c := best(sub) + best(mask&^sub); c < res {
				res = c
			}
		}
		res += card[mask]
		memo[mask] = res
		return res
	}
	// Exclude the root's own cardinality (it maps to R, already materialized).
	return best(full) - card[full]
}

func TestHardnessReductionMapsOptimalPlans(t *testing.T) {
	cases := [][]int{
		{2, 3},
		{2, 3, 4},
		{3, 3, 3},
		{2, 2, 5, 3},
		{4, 2, 3, 2},
	}
	for _, sizes := range cases {
		tb := crossProductTable(sizes)
		env := cost.NewEnv(tb, stats.NewService(stats.Exact, 0, 1), nil)
		model := cost.NewCardinality(env)
		req := make([]colset.Set, len(sizes))
		for i := range sizes {
			req[i] = colset.Of(i)
		}
		_, got, err := ExhaustiveOptimize("X", tb.ColNames(), req, model, 1)
		if err != nil {
			t.Fatalf("%v: %v", sizes, err)
		}

		// Map the optimal bushy plan through the reduction. In the GB-MQO
		// image, every internal join node n (≠ root) is computed once from
		// its parent and feeds its two children, contributing 2|n| (|n| as a
		// scan for each child; its own creation was charged as the parent's
		// scan). The two children of the root are computed from R, i.e. 2|R|.
		// Leaves contribute their parent scans, already counted. So:
		//   C(P_opt) = 2|R| + 2·Σ_{internal n ≠ root} |n|.
		// A single-relation edge hanging directly off the root is the
		// degenerate case where the "internal node" is absent.
		want := 2*float64(tb.NumRows()) + 2*optimalBushy(sizes)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("sizes %v: GB-MQO optimum %.0f, reduction predicts %.0f", sizes, got, want)
		}
	}
}

func TestHardnessReductionNaiveAgreement(t *testing.T) {
	// Sanity for the cost accounting underlying the reduction: the naive plan
	// over the cross product costs N·|R| under the cardinality model.
	sizes := []int{2, 3, 4}
	tb := crossProductTable(sizes)
	env := cost.NewEnv(tb, stats.NewService(stats.Exact, 0, 1), nil)
	model := cost.NewCardinality(env)
	req := []colset.Set{colset.Of(0), colset.Of(1), colset.Of(2)}
	_, st, err := Optimize("X", tb.ColNames(), req, Options{Model: model, BinaryOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * float64(tb.NumRows()); st.NaiveCost != want {
		t.Fatalf("naive cost = %v, want %v", st.NaiveCost, want)
	}
	// The hill climber, too, should land on the reduction-predicted optimum
	// for these tiny instances.
	want := 2*float64(tb.NumRows()) + 2*optimalBushy(sizes)
	if math.Abs(st.FinalCost-want) > 1e-6 {
		t.Fatalf("hill climb = %v, reduction predicts %v", st.FinalCost, want)
	}
}
