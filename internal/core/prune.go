package core

import (
	"gbmqo/internal/colset"
)

// pruned applies the §4.3 pruning techniques to a candidate pair, returning
// true when the pair should not be evaluated this round.
func (s *searcher) pruned(p1, p2 *subPlan) bool {
	if !s.opts.PruneSubsumption && !s.opts.PruneMonotonic {
		return false
	}
	u := p1.root.Set.Union(p2.root.Set)
	if s.opts.PruneMonotonic && s.monotonicPruned(u) {
		return true
	}
	if s.opts.PruneSubsumption && s.subsumptionPruned(p1, p2, u) {
		return true
	}
	return false
}

// subsumptionPruned implements §4.3.1: "given two sub-plans rooted at vi and
// vj, if there are any two sub-plans rooted at vx and vy such that
// (vi ∪ vj) ⊃ (vx ∪ vy), then do not consider merging vi and vj" — it is
// always at least as good to merge the closer pair first. Sound under the
// cardinality cost model with type-(b) merges (paper's Claim); a heuristic
// otherwise.
func (s *searcher) subsumptionPruned(p1, p2 *subPlan, u colset.Set) bool {
	for i := 0; i < len(s.subplans); i++ {
		for j := i + 1; j < len(s.subplans); j++ {
			q1, q2 := s.subplans[i], s.subplans[j]
			if (q1 == p1 && q2 == p2) || (q1 == p2 && q2 == p1) {
				continue
			}
			if q1.root.Set.Union(q2.root.Set).ProperSubsetOf(u) {
				return true
			}
		}
	}
	return false
}

// monotonicPruned implements §4.3.2, the Apriori-style rule: once merging a
// pair with union f failed to improve the plan, any pair whose union contains
// f is skipped. Sound under the cardinality model with type-(b) merges
// (paper's Claim); a heuristic otherwise.
func (s *searcher) monotonicPruned(u colset.Set) bool {
	for _, f := range s.failedUnions {
		if f.SubsetOf(u) {
			return true
		}
	}
	return false
}

// noteFailedUnion records a non-improving merge union for monotonic pruning,
// keeping the list minimal (supersets of an existing entry are redundant).
func (s *searcher) noteFailedUnion(u colset.Set) {
	keep := s.failedUnions[:0]
	for _, f := range s.failedUnions {
		if f.SubsetOf(u) {
			return // already covered by a smaller failed union
		}
		if !u.SubsetOf(f) {
			keep = append(keep, f)
		}
	}
	s.failedUnions = append(keep, u)
}
