package core

import (
	"gbmqo/internal/colset"
	"gbmqo/internal/plan"
)

// mergeKind identifies which SubPlanMerge variant (Figure 4) a candidate is.
type mergeKind int

const (
	// kindInvalid marks an unmergeable pair.
	kindInvalid mergeKind = iota
	// kindA re-parents the children of both roots under v1∪v2, eliminating
	// both roots (Figure 4a; requires neither root to be required).
	kindA
	// kindB keeps both sub-plans intact as children of v1∪v2 (Figure 4b; the
	// binary-tree restriction of §4.2 allows only this).
	kindB
	// kindC eliminates v1 (re-parenting its children) and keeps v2 (Figure 4c).
	kindC
	// kindD eliminates v2 and keeps v1 (Figure 4d).
	kindD
	// kindAttach handles the subsumption degeneracy (§4.1): when v2 ⊂ v1 the
	// merged root is v1 itself and v2's sub-plan hangs under it.
	kindAttach
	// kindAttachFlat is the subsumption degeneracy of (a)/(d): v2 ⊂ v1 and
	// v2's children re-parent directly under v1, eliminating v2.
	kindAttachFlat
	// kindCube replaces the kind-B root with a CUBE operator (§7.1).
	kindCube
	// kindRollup replaces the kind-B root with a ROLLUP operator (§7.1).
	kindRollup
)

// mergeOutcome is the priced best variant for a pair.
type mergeOutcome struct {
	valid bool
	kind  mergeKind
	cost  float64
	// swap indicates p1/p2 roles were exchanged (for kindAttach*, the
	// subsuming root is always "first").
	swap bool
	// rollupOrder is the column order for kindRollup.
	rollupOrder []int
}

// evaluate prices SubPlanMerge(p1, p2), returning the cheapest variant. The
// result is memoized by root identity.
func (s *searcher) evaluate(p1, p2 *subPlan) mergeOutcome {
	key := makePairKey(p1, p2)
	if out, ok := s.mergeCache[key]; ok {
		return out
	}
	s.stats.MergeEvaluations++
	out := s.evaluateUncached(p1, p2)
	s.mergeCache[key] = out
	return out
}

func (s *searcher) evaluateUncached(p1, p2 *subPlan) mergeOutcome {
	v1, v2 := p1.root.Set, p2.root.Set
	u := v1.Union(v2)
	if v1 == v2 {
		return mergeOutcome{} // coalesceEqualRoots owns this case
	}
	if s.unionCollides(u, v1, v2) || s.subtreesOverlap(p1.root, p2.root) {
		return mergeOutcome{}
	}

	// Subsumption degeneracy: the union coincides with one of the roots, so
	// "merging" means computing the subsumed sub-plan from the subsuming one
	// (§4.1: "(b) (c) and (d) degenerate into one case in which we compute
	// v2 from v1").
	if v2.ProperSubsetOf(v1) {
		return s.evaluateAttach(p1, p2, false)
	}
	if v1.ProperSubsetOf(v2) {
		return s.evaluateAttach(p2, p1, true)
	}

	// General case: price each permitted variant from shared edge terms.
	eU := s.edge(true, 0, u, true) // root u is always materialized
	intoV1 := s.edge(false, u, v1, p1.root.IsIntermediate()) + s.desc[p1.root]
	intoV2 := s.edge(false, u, v2, p2.root.IsIntermediate()) + s.desc[p2.root]

	best := mergeOutcome{valid: true, kind: kindB, cost: eU + intoV1 + intoV2}
	if !s.opts.BinaryOnly {
		// Re-parenting terms are only priced when types (a)/(c)/(d) are in
		// play — this is where the §6.5 binary restriction saves its ~30% of
		// optimizer calls.
		reparent1 := s.reparentCost(u, p1.root)
		reparent2 := s.reparentCost(u, p2.root)
		if !p1.root.Required && !p2.root.Required {
			if c := eU + reparent1 + reparent2; c < best.cost {
				best = mergeOutcome{valid: true, kind: kindA, cost: c}
			}
		}
		if !p1.root.Required {
			if c := eU + reparent1 + intoV2; c < best.cost {
				best = mergeOutcome{valid: true, kind: kindC, cost: c}
			}
		}
		if !p2.root.Required {
			if c := eU + reparent2 + intoV1; c < best.cost {
				best = mergeOutcome{valid: true, kind: kindD, cost: c}
			}
		}
	}
	if s.opts.ConsiderCubeRollup {
		if alt, ok := s.evaluateCubeRollup(u, eU, p1, p2); ok && alt.cost < best.cost {
			best = alt
		}
	}
	if !s.fitsBudget(best, p1, p2) {
		return mergeOutcome{}
	}
	return best
}

// reparentCost prices moving root's children directly under u (root itself
// disappears).
func (s *searcher) reparentCost(u colset.Set, root *plan.Node) float64 {
	total := 0.0
	for _, c := range root.Children {
		total += s.edge(false, u, c.Set, c.IsIntermediate()) + s.desc[c]
	}
	return total
}

// evaluateAttach prices the subsumption case: sub ⊂ sup, candidates are
// attaching sub's whole sub-plan under sup's root, or (when sub's root is not
// required, and k-way trees are allowed) re-parenting sub's children under it.
func (s *searcher) evaluateAttach(sup, sub *subPlan, swapped bool) mergeOutcome {
	v1 := sup.root.Set
	// Attaching forces sup's root to be materialized.
	eRoot := s.edge(true, 0, v1, true)
	attach := eRoot + s.desc[sup.root] +
		s.edge(false, v1, sub.root.Set, sub.root.IsIntermediate()) + s.desc[sub.root]
	best := mergeOutcome{valid: true, kind: kindAttach, cost: attach, swap: swapped}
	if !s.opts.BinaryOnly && !sub.root.Required && len(sub.root.Children) > 0 {
		flat := eRoot + s.desc[sup.root] + s.reparentCost(v1, sub.root)
		if flat < best.cost {
			best = mergeOutcome{valid: true, kind: kindAttachFlat, cost: flat, swap: swapped}
		}
	}
	if !s.fitsBudget(best, sup, sub) {
		return mergeOutcome{}
	}
	return best
}

// build constructs the merged sub-plan for a priced outcome. The new root
// adopts existing subtrees by pointer; sub-plan trees are never mutated after
// construction, so sharing is safe.
func (s *searcher) build(p1, p2 *subPlan, out mergeOutcome) *subPlan {
	if out.swap {
		p1, p2 = p2, p1
	}
	u := p1.root.Set.Union(p2.root.Set)
	root := plan.NewNode(u, s.isRequired(u))
	switch out.kind {
	case kindA:
		root.Children = append(append([]*plan.Node(nil), p1.root.Children...), p2.root.Children...)
	case kindB:
		root.Children = []*plan.Node{p1.root, p2.root}
	case kindC:
		root.Children = append(append([]*plan.Node(nil), p1.root.Children...), p2.root)
	case kindD:
		root.Children = append(append([]*plan.Node(nil), p2.root.Children...), p1.root)
	case kindAttach:
		root = plan.NewNode(p1.root.Set, p1.root.Required)
		root.Children = append(append([]*plan.Node(nil), p1.root.Children...), p2.root)
	case kindAttachFlat:
		root = plan.NewNode(p1.root.Set, p1.root.Required)
		root.Children = append(append([]*plan.Node(nil), p1.root.Children...), p2.root.Children...)
	case kindCube:
		root.Op = plan.OpCube
		root.Children = []*plan.Node{p1.root, p2.root}
	case kindRollup:
		root.Op = plan.OpRollup
		root.RollupOrder = out.rollupOrder
		root.Children = []*plan.Node{p1.root, p2.root}
	default:
		panic("core: building invalid merge outcome")
	}
	// The outcome's cost already includes every edge; derive desc without
	// re-pricing (keeps the optimizer-call counter honest).
	s.desc[root] = out.cost - s.edge(true, 0, root.Set, root.IsIntermediate())
	// That edge call re-priced the root edge; refund the counter by pricing
	// once and reusing: acceptable—the extra call is one per applied merge.
	return &subPlan{root: root, cost: out.cost}
}

// isRequired reports whether set is one of the required queries (a merge
// union can coincide with a required set, e.g. merging (A) and (B) when
// (A,B) is itself requested).
func (s *searcher) isRequired(set colset.Set) bool {
	for _, r := range s.required {
		if r == set {
			return true
		}
	}
	return false
}

// unionCollides reports whether u already exists as an internal (non-root)
// node somewhere, which would create a duplicate temp table.
func (s *searcher) unionCollides(u, v1, v2 colset.Set) bool {
	for _, sp := range s.subplans {
		if sp.root.Set == v1 || sp.root.Set == v2 {
			continue
		}
		found := false
		sp.root.Walk(func(n *plan.Node) {
			if n != sp.root && n.Set == u {
				found = true
			}
		})
		if found {
			return true
		}
	}
	return false
}

// fitsBudget applies the §4.4.2 storage constraint to a candidate by building
// a throwaway view of the merged tree and evaluating the §4.4.1 recursion.
func (s *searcher) fitsBudget(out mergeOutcome, p1, p2 *subPlan) bool {
	if s.opts.StorageBudget <= 0 {
		return true
	}
	probe := s.build(p1, p2, out)
	return plan.MinStorage(probe.root, s.opts.SizeFn, nil) <= s.opts.StorageBudget
}

// evaluateCubeRollup prices the §7.1 alternatives for a kind-B-shaped merge:
// a CUBE root covers every subset of u (children come free but all 2^|u|
// covered sets are computed), a ROLLUP root covers the prefixes of a chosen
// column order.
func (s *searcher) evaluateCubeRollup(u colset.Set, eU float64, p1, p2 *subPlan) (mergeOutcome, bool) {
	var best mergeOutcome
	found := false
	if u.Len() <= s.opts.MaxCubeCols {
		// Level-wise pricing matching plan.coveredCost: each subset comes
		// from CoveredParent, and both children are covered (they are proper
		// subsets of u), so only their descendants cost anything.
		probe := &plan.Node{Set: u, Op: plan.OpCube}
		c := eU + s.desc[p1.root] + s.desc[p2.root]
		u.Subsets(func(sub colset.Set) bool {
			if !sub.IsEmpty() && sub != u {
				c += s.edge(false, plan.CoveredParent(probe, sub), sub, false)
			}
			return true
		})
		best = mergeOutcome{valid: true, kind: kindCube, cost: c}
		found = true
	}
	if order, ok := rollupOrderFor(u, p1.root.Set, p2.root.Set); ok {
		probe := &plan.Node{Set: u, Op: plan.OpRollup, RollupOrder: order}
		c := eU
		var prefix colset.Set
		for _, col := range order {
			prefix = prefix.Add(col)
			if prefix != u {
				c += s.edge(false, plan.CoveredParent(probe, prefix), prefix, false)
			}
		}
		for _, child := range []*plan.Node{p1.root, p2.root} {
			if isPrefixOf(child.Set, order) {
				c += s.desc[child]
			} else {
				c += s.edge(false, u, child.Set, child.IsIntermediate()) + s.desc[child]
			}
		}
		if !found || c < best.cost {
			best = mergeOutcome{valid: true, kind: kindRollup, cost: c, rollupOrder: order}
			found = true
		}
	}
	return best, found
}

// rollupOrderFor picks a column order for ROLLUP(u) that makes at least one
// of the two child sets a prefix: the smaller child's columns first, then the
// rest. Returns ok=false when neither child can be a prefix (e.g. equal-size
// overlapping sets where neither contains the other's start).
func rollupOrderFor(u, a, b colset.Set) ([]int, bool) {
	small, big := a, b
	if b.Len() < a.Len() {
		small, big = b, a
	}
	order := small.Columns()
	// If the bigger child extends the smaller one, put its extra columns next
	// so both are prefixes.
	if small.SubsetOf(big) {
		order = append(order, big.Diff(small).Columns()...)
		order = append(order, u.Diff(big).Columns()...)
	} else {
		order = append(order, u.Diff(small).Columns()...)
	}
	if len(order) != u.Len() {
		return nil, false
	}
	return order, true
}

func isPrefixOf(set colset.Set, order []int) bool {
	var prefix colset.Set
	for _, c := range order {
		prefix = prefix.Add(c)
		if prefix == set {
			return true
		}
		if prefix.Len() >= set.Len() {
			break
		}
	}
	return false
}

// subtreeSets returns (and caches) the grouping sets occurring in a sub-plan.
func (s *searcher) subtreeSets(root *plan.Node) map[colset.Set]bool {
	if m, ok := s.setsCache[root]; ok {
		return m
	}
	m := map[colset.Set]bool{}
	root.Walk(func(n *plan.Node) { m[n.Set] = true })
	s.setsCache[root] = m
	return m
}

// subtreesOverlap reports whether two sub-plans contain a common grouping
// set, which would create duplicate temp tables if merged into one tree.
func (s *searcher) subtreesOverlap(a, b *plan.Node) bool {
	sa, sb := s.subtreeSets(a), s.subtreeSets(b)
	if len(sb) < len(sa) {
		sa, sb = sb, sa
	}
	for set := range sa {
		if sb[set] {
			return true
		}
	}
	return false
}
