package core

import (
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/cost"
	"gbmqo/internal/plan"
)

// tableModel is a fully scripted cost model for white-box merge tests: edge
// costs come from a lookup table, with a fallback constant.
type tableModel struct {
	calls    int
	base     float64 // cost of any base edge not listed
	inner    float64 // cost of any non-base edge not listed
	override map[cost.Edge]float64
}

func (m *tableModel) Name() string { return "table" }
func (m *tableModel) Calls() int   { return m.calls }
func (m *tableModel) ResetCalls()  { m.calls = 0 }
func (m *tableModel) EdgeCost(e cost.Edge) float64 {
	m.calls++
	if v, ok := m.override[e]; ok {
		return v
	}
	if e.ParentIsBase {
		return m.base
	}
	return m.inner
}

// newSearcher builds a searcher over the given required sets with leaves as
// sub-plans (the naive starting state).
func newSearcher(t *testing.T, m cost.Model, required ...colset.Set) *searcher {
	t.Helper()
	opts := Options{Model: m}
	if err := opts.normalize(); err != nil {
		t.Fatal(err)
	}
	s := &searcher{
		opts:       opts,
		baseName:   "R",
		required:   required,
		desc:       map[*plan.Node]float64{},
		mergeCache: map[pairKey]mergeOutcome{},
		setsCache:  map[*plan.Node]map[colset.Set]bool{},
	}
	s.initNaive()
	return s
}

func TestMergeKindBChosenForRequiredRoots(t *testing.T) {
	m := &tableModel{base: 100, inner: 1}
	s := newSearcher(t, m, colset.Of(0), colset.Of(1))
	out := s.evaluate(s.subplans[0], s.subplans[1])
	if !out.valid || out.kind != kindB {
		t.Fatalf("outcome = %+v, want valid kind B (required roots forbid a/c/d)", out)
	}
	// cost = base edge for (0,1) materialized + two cheap inner edges.
	if out.cost != 102 {
		t.Fatalf("cost = %v, want 102", out.cost)
	}
}

func TestMergeKindAEliminatesBothNonRequiredRoots(t *testing.T) {
	m := &tableModel{base: 100, inner: 1}
	s := newSearcher(t, m, colset.Of(0), colset.Of(1), colset.Of(2), colset.Of(3))
	// Merge (0),(1) and (2),(3) to create two non-required intermediate
	// roots (01) and (23).
	if !s.tryApply(applied{i: 0, j: 1, outcome: s.evaluate(s.subplans[0], s.subplans[1])}) {
		t.Fatal("first merge failed")
	}
	if !s.tryApply(applied{i: 0, j: 1, outcome: s.evaluate(s.subplans[0], s.subplans[1])}) {
		t.Fatal("second merge failed")
	}
	if len(s.subplans) != 2 {
		t.Fatalf("subplans = %d", len(s.subplans))
	}
	p1, p2 := s.subplans[0], s.subplans[1]
	if p1.root.Required || p2.root.Required {
		t.Fatal("intermediate roots should not be required")
	}
	out := s.evaluateUncached(p1, p2)
	if !out.valid || out.kind != kindA {
		t.Fatalf("outcome = %+v, want kind A (re-parent all four leaves)", out)
	}
	merged := s.build(p1, p2, out)
	if merged.root.Set != colset.Of(0, 1, 2, 3) || len(merged.root.Children) != 4 {
		t.Fatalf("kind-A root = %s with %d children", merged.root.Set, len(merged.root.Children))
	}
}

func TestMergeKindCDKeepCheaperSide(t *testing.T) {
	// Make keeping p2's root much better than keeping p1's: p1's root is
	// non-required and expensive to keep materialized.
	m := &tableModel{base: 100, inner: 1}
	s := newSearcher(t, m, colset.Of(0), colset.Of(1), colset.Of(2))
	// Build a non-required root (01) over leaves (0), (1).
	if !s.tryApply(applied{i: 0, j: 1, outcome: s.evaluate(s.subplans[0], s.subplans[1])}) {
		t.Fatal("setup merge failed")
	}
	leaf := s.subplans[0]  // root (2), required (merged sub-plans append last)
	inter := s.subplans[1] // root (01), not required
	if inter.root.Set != colset.Of(0, 1) || leaf.root.Set != colset.Of(2) {
		t.Fatalf("unexpected setup: %s / %s", inter.root.Set, leaf.root.Set)
	}
	// Make computing (01) from (012) expensive so eliminating it (kind C with
	// p1 = inter) wins over keeping it (kind B).
	m.override = map[cost.Edge]float64{
		{Parent: colset.Of(0, 1, 2), V: colset.Of(0, 1), NAggs: 1, Materialize: true}: 50,
	}
	out := s.evaluateUncached(inter, leaf)
	if !out.valid || out.kind != kindC {
		t.Fatalf("outcome = %+v, want kind C (eliminate the intermediate root)", out)
	}
	merged := s.build(inter, leaf, out)
	// Children: (0), (1) re-parented + the kept leaf (2).
	if len(merged.root.Children) != 3 {
		t.Fatalf("kind-C children = %d, want 3", len(merged.root.Children))
	}
	for _, c := range merged.root.Children {
		if c.Set == colset.Of(0, 1) {
			t.Fatal("eliminated root survived")
		}
	}
}

func TestMergeAttachSubsumption(t *testing.T) {
	m := &tableModel{base: 100, inner: 1}
	s := newSearcher(t, m, colset.Of(0, 1), colset.Of(0))
	out := s.evaluate(s.subplans[0], s.subplans[1])
	if !out.valid || out.kind != kindAttach {
		t.Fatalf("outcome = %+v, want attach", out)
	}
	merged := s.build(s.subplans[0], s.subplans[1], out)
	if merged.root.Set != colset.Of(0, 1) || !merged.root.Required {
		t.Fatalf("attach root = %s required=%v", merged.root.Set, merged.root.Required)
	}
	if len(merged.root.Children) != 1 || merged.root.Children[0].Set != colset.Of(0) {
		t.Fatalf("attach children wrong: %v", merged.root.Children)
	}
}

func TestMergeAttachSwapNormalizesRoles(t *testing.T) {
	m := &tableModel{base: 100, inner: 1}
	// Pass the subsumed sub-plan FIRST: evaluate must swap.
	s := newSearcher(t, m, colset.Of(0), colset.Of(0, 1))
	out := s.evaluate(s.subplans[0], s.subplans[1])
	if !out.valid || out.kind != kindAttach || !out.swap {
		t.Fatalf("outcome = %+v, want swapped attach", out)
	}
	merged := s.build(s.subplans[0], s.subplans[1], out)
	if merged.root.Set != colset.Of(0, 1) {
		t.Fatalf("attach root = %s", merged.root.Set)
	}
}

func TestMergeAttachFlatEliminatesSubsumedIntermediate(t *testing.T) {
	m := &tableModel{base: 100, inner: 1}
	s := newSearcher(t, m, colset.Of(0), colset.Of(1), colset.Of(0, 1, 2))
	// Build non-required (01) over (0),(1).
	if !s.tryApply(applied{i: 0, j: 1, outcome: s.evaluate(s.subplans[0], s.subplans[1])}) {
		t.Fatal("setup merge failed")
	}
	wide := s.subplans[0]  // (012), required leaf (merged sub-plans append last)
	inter := s.subplans[1] // (01), not required
	// Computing (01) from (012) priced prohibitively: the flat variant, which
	// eliminates (01) and re-parents (0),(1) under (012), must win.
	m.override = map[cost.Edge]float64{
		{Parent: colset.Of(0, 1, 2), V: colset.Of(0, 1), NAggs: 1, Materialize: true}: 1000,
	}
	out := s.evaluateUncached(inter, wide)
	if !out.valid || out.kind != kindAttachFlat {
		t.Fatalf("outcome = %+v, want attach-flat", out)
	}
	merged := s.build(inter, wide, out)
	if merged.root.Set != colset.Of(0, 1, 2) || len(merged.root.Children) != 2 {
		t.Fatalf("flat root = %s children=%d", merged.root.Set, len(merged.root.Children))
	}
}

func TestMergeBinaryOnlyForbidsACD(t *testing.T) {
	m := &tableModel{base: 100, inner: 1}
	s := newSearcher(t, m, colset.Of(0), colset.Of(1), colset.Of(2), colset.Of(3))
	s.opts.BinaryOnly = true
	if !s.tryApply(applied{i: 0, j: 1, outcome: s.evaluate(s.subplans[0], s.subplans[1])}) {
		t.Fatal("setup failed")
	}
	if !s.tryApply(applied{i: 0, j: 1, outcome: s.evaluate(s.subplans[0], s.subplans[1])}) {
		t.Fatal("setup failed")
	}
	out := s.evaluateUncached(s.subplans[0], s.subplans[1])
	if !out.valid || out.kind != kindB {
		t.Fatalf("outcome = %+v, want kind B under BinaryOnly", out)
	}
}

func TestMergeRejectsOverlappingSubtrees(t *testing.T) {
	m := &tableModel{base: 100, inner: 1}
	s := newSearcher(t, m, colset.Of(0), colset.Of(1))
	// Fabricate two sub-plans that share an internal set.
	shared := plan.NewNode(colset.Of(2), false)
	s.desc[shared] = 0
	a := plan.NewNode(colset.Of(0, 2), false)
	a.Children = []*plan.Node{shared}
	s.desc[a] = 1
	b := plan.NewNode(colset.Of(1, 2), false)
	b.Children = []*plan.Node{shared.Clone()}
	s.desc[b.Children[0]] = 0
	s.desc[b] = 1
	out := s.evaluateUncached(&subPlan{root: a, cost: 1}, &subPlan{root: b, cost: 1})
	if out.valid {
		t.Fatal("overlapping subtrees accepted")
	}
}

func TestMergeCacheHitsAreFree(t *testing.T) {
	m := &tableModel{base: 100, inner: 1}
	s := newSearcher(t, m, colset.Of(0), colset.Of(1))
	s.evaluate(s.subplans[0], s.subplans[1])
	evals := s.stats.MergeEvaluations
	calls := m.Calls()
	s.evaluate(s.subplans[0], s.subplans[1])
	s.evaluate(s.subplans[1], s.subplans[0]) // symmetric key
	if s.stats.MergeEvaluations != evals || m.Calls() != calls {
		t.Fatal("cache miss on repeated pair")
	}
}
