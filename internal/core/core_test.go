package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/cost"
	"gbmqo/internal/plan"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// corrTable builds a table whose first k columns are low-NDV and correlated
// (so merging their Group Bys is profitable) and whose remaining columns are
// high-NDV (so merging them is not).
func corrTable(rows, lowCols, highCols int, seed int64) *table.Table {
	r := rand.New(rand.NewSource(seed))
	defs := make([]table.ColumnDef, 0, lowCols+highCols)
	for i := 0; i < lowCols+highCols; i++ {
		defs = append(defs, table.ColumnDef{Name: string(rune('a' + i)), Typ: table.TInt64})
	}
	t := table.New("R", defs)
	row := make([]table.Value, lowCols+highCols)
	for i := 0; i < rows; i++ {
		base := r.Intn(4)
		for j := 0; j < lowCols; j++ {
			row[j] = table.Int(int64(base + j*r.Intn(2)))
		}
		for j := lowCols; j < lowCols+highCols; j++ {
			row[j] = table.Int(int64(r.Intn(rows / 2)))
		}
		t.AppendRow(row...)
	}
	return t
}

func exactEnv(t *table.Table) *cost.Env {
	return cost.NewEnv(t, stats.NewService(stats.Exact, 0, 1), nil)
}

func singles(n int) []colset.Set {
	out := make([]colset.Set, n)
	for i := range out {
		out[i] = colset.Of(i)
	}
	return out
}

func TestOptimizeImprovesOnNaive(t *testing.T) {
	tb := corrTable(20_000, 4, 2, 1)
	m := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
	p, st, err := Optimize("R", tb.ColNames(), singles(6), Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalCost >= st.NaiveCost {
		t.Fatalf("no improvement: naive %.0f, final %.0f\n%s", st.NaiveCost, st.FinalCost, p)
	}
	// The low-NDV columns should have been merged under a shared root.
	merged := false
	for _, r := range p.Roots {
		if r.Set.Len() > 1 && len(r.Children) > 0 {
			merged = true
		}
	}
	if !merged {
		t.Fatalf("expected at least one merged sub-plan:\n%s", p)
	}
}

func TestOptimizeFinalCostMatchesPlanCost(t *testing.T) {
	tb := corrTable(10_000, 3, 2, 2)
	m := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
	p, st, err := Optimize("R", tb.ColNames(), singles(5), Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	// Re-pricing the returned plan from scratch must reproduce FinalCost —
	// the searcher's incremental accounting must not drift.
	got := p.Cost(m, 1)
	if math.Abs(got-st.FinalCost) > 1e-6*math.Max(1, st.FinalCost) {
		t.Fatalf("incremental cost %.3f != replayed cost %.3f", st.FinalCost, got)
	}
}

func TestOptimizeSubsumptionAttach(t *testing.T) {
	// Required {(a), (a,b)}: the optimal move is computing (a) from the
	// materialized (a,b) — the §4.1 degenerate case.
	tb := corrTable(10_000, 3, 0, 3)
	m := cost.NewCardinality(exactEnv(tb))
	p, _, err := Optimize("R", tb.ColNames(), []colset.Set{colset.Of(0), colset.Of(0, 1)}, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Roots) != 1 {
		t.Fatalf("expected a single sub-plan:\n%s", p)
	}
	root := p.Roots[0]
	if root.Set != colset.Of(0, 1) || !root.Required || len(root.Children) != 1 || root.Children[0].Set != colset.Of(0) {
		t.Fatalf("expected (a,b)*→(a):\n%s", p)
	}
}

func TestOptimizeCONTWorkloadUsesContainment(t *testing.T) {
	// The §6.1 CONT shape: three singles and their three pairs. Every single
	// should end up computed from one of the materialized pairs, never from R.
	tb := corrTable(20_000, 2, 4, 4)
	required := []colset.Set{
		colset.Of(0), colset.Of(1), colset.Of(2),
		colset.Of(0, 1), colset.Of(0, 2), colset.Of(1, 2),
	}
	m := cost.NewCardinality(exactEnv(tb))
	p, st, err := Optimize("R", tb.ColNames(), required, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalCost >= st.NaiveCost {
		t.Fatalf("CONT workload not improved: %v vs %v", st.FinalCost, st.NaiveCost)
	}
	for _, r := range p.Roots {
		if r.Set.Len() == 1 {
			t.Fatalf("single-column set computed from base:\n%s", p)
		}
	}
}

func TestHillClimbNeverBeatsExhaustive(t *testing.T) {
	// The exhaustive DP searches binary type-(b) forests, so the hill climber
	// must be restricted to the same space for the dominance check (with all
	// four merge types it can legitimately find cheaper k-way plans — the
	// §6.5 observation).
	for seed := int64(0); seed < 8; seed++ {
		tb := corrTable(5000, 3, 2, 10+seed)
		env := exactEnv(tb)
		m := cost.NewOptimizer(env, cost.Coefficients{})
		req := singles(5)
		_, st, err := Optimize("R", tb.ColNames(), req, Options{Model: m, BinaryOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		_, optCost, err := ExhaustiveOptimize("R", tb.ColNames(), req, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st.FinalCost < optCost-1e-6*optCost {
			t.Fatalf("seed %d: hill climbing (%.1f) beat the exhaustive optimum (%.1f)", seed, st.FinalCost, optCost)
		}
		if optCost > st.NaiveCost+1e-6 {
			t.Fatalf("seed %d: optimum (%.1f) worse than naive (%.1f)", seed, optCost, st.NaiveCost)
		}
	}
}

func TestExhaustivePlanCostMatchesReportedCost(t *testing.T) {
	tb := corrTable(5000, 4, 1, 3)
	m := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
	req := singles(5)
	p, reported, err := ExhaustiveOptimize("R", tb.ColNames(), req, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Cost(m, 1)
	if math.Abs(got-reported) > 1e-6*math.Max(1, reported) {
		t.Fatalf("DP cost %.3f != plan cost %.3f\n%s", reported, got, p)
	}
}

func TestExhaustiveWithOverlappingRequired(t *testing.T) {
	// Required sets where a union coincides with a required set: {(a),(b),(a,b)}.
	tb := corrTable(5000, 3, 0, 4)
	m := cost.NewCardinality(exactEnv(tb))
	req := []colset.Set{colset.Of(0), colset.Of(1), colset.Of(0, 1)}
	p, c, err := ExhaustiveOptimize("R", tb.ColNames(), req, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(req); err != nil {
		t.Fatal(err)
	}
	// Optimal: materialize (a,b) once (|R|) and compute both singles from it.
	want := 5000 + 2*float64(stats.ExactNDV(tb, colset.Of(0, 1)))
	if math.Abs(c-want) > 1e-6 {
		t.Fatalf("cost = %v, want %v\n%s", c, want, p)
	}
}

func TestExhaustiveLimits(t *testing.T) {
	tb := corrTable(100, 2, 0, 5)
	m := cost.NewCardinality(exactEnv(tb))
	if _, _, err := ExhaustiveOptimize("R", nil, nil, m, 1); err == nil {
		t.Error("empty input accepted")
	}
	big := make([]colset.Set, MaxExhaustive+1)
	for i := range big {
		big[i] = colset.Of(i % 2)
	}
	if _, _, err := ExhaustiveOptimize("R", nil, big, m, 1); err == nil {
		t.Error("oversized input accepted")
	}
}

func TestPruningSoundUnderCardinalityModel(t *testing.T) {
	// §4.3: with the cardinality cost model and type-(b)-only merges over
	// non-overlapping inputs, both pruning techniques must not change the
	// final plan cost. Property-checked over random tables.
	for seed := int64(0); seed < 10; seed++ {
		tb := corrTable(3000, 4, 3, 20+seed)
		req := singles(7)
		run := func(sub, mono bool) float64 {
			m := cost.NewCardinality(exactEnv(tb))
			_, st, err := Optimize("R", tb.ColNames(), req, Options{
				Model: m, BinaryOnly: true,
				PruneSubsumption: sub, PruneMonotonic: mono,
			})
			if err != nil {
				t.Fatal(err)
			}
			return st.FinalCost
		}
		base := run(false, false)
		for _, cfg := range [][2]bool{{true, false}, {false, true}, {true, true}} {
			if got := run(cfg[0], cfg[1]); math.Abs(got-base) > 1e-6*math.Max(1, base) {
				t.Fatalf("seed %d: pruning (S=%v M=%v) changed cost: %.1f vs %.1f",
					seed, cfg[0], cfg[1], got, base)
			}
		}
	}
}

func TestPruningReducesWork(t *testing.T) {
	tb := corrTable(10_000, 6, 4, 6)
	req := singles(10)
	run := func(sub, mono bool) (int, int) {
		m := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
		_, st, err := Optimize("R", tb.ColNames(), req, Options{
			Model: m, BinaryOnly: true, PruneSubsumption: sub, PruneMonotonic: mono,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.OptimizerCalls, st.PrunedPairs
	}
	noneCalls, _ := run(false, false)
	bothCalls, pruned := run(true, true)
	if pruned == 0 {
		t.Fatal("pruning never fired")
	}
	if bothCalls >= noneCalls {
		t.Fatalf("pruning did not reduce optimizer calls: %d vs %d", bothCalls, noneCalls)
	}
}

func TestBinaryOnlyProducesBinaryTrees(t *testing.T) {
	tb := corrTable(10_000, 5, 3, 7)
	m := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
	p, _, err := Optimize("R", tb.ColNames(), singles(8), Options{Model: m, BinaryOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Roots {
		r.Walk(func(n *plan.Node) {
			if len(n.Children) > 2 {
				t.Fatalf("node %s has %d children under BinaryOnly:\n%s", n.Set, len(n.Children), p)
			}
		})
	}
}

func TestNonBinaryCanBeatBinary(t *testing.T) {
	// With all four merge types the search space is a superset, so the result
	// is never worse.
	for seed := int64(0); seed < 6; seed++ {
		tb := corrTable(8000, 5, 2, 30+seed)
		req := singles(7)
		mb := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
		_, stBin, err := Optimize("R", tb.ColNames(), req, Options{Model: mb, BinaryOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		ma := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
		_, stAll, err := Optimize("R", tb.ColNames(), req, Options{Model: ma})
		if err != nil {
			t.Fatal(err)
		}
		// Both are hill climbers, so no strict guarantee — but the k-way
		// space includes every binary plan reachable from the same moves, and
		// on these inputs all-types should be no more than a sliver worse.
		if stAll.FinalCost > stBin.FinalCost*1.10 {
			t.Fatalf("seed %d: all-types (%.0f) much worse than binary (%.0f)", seed, stAll.FinalCost, stBin.FinalCost)
		}
	}
}

func TestMergeEvaluationsQuadraticBound(t *testing.T) {
	tb := corrTable(5000, 8, 4, 8)
	n := 12
	m := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
	_, st, err := Optimize("R", tb.ColNames(), singles(n), Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	// Memoization bounds total merge evaluations by ~n²: each iteration only
	// evaluates pairs involving the newly created sub-plan.
	if st.MergeEvaluations > n*n {
		t.Fatalf("merge evaluations %d exceed n² = %d", st.MergeEvaluations, n*n)
	}
	if st.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestCubeRollupExtension(t *testing.T) {
	// All non-empty subsets of 3 low-NDV columns requested: a CUBE (or
	// ROLLUP-augmented) plan should be at least as good as the plain search.
	tb := corrTable(20_000, 3, 0, 9)
	var req []colset.Set
	colset.Of(0, 1, 2).Subsets(func(s colset.Set) bool {
		if !s.IsEmpty() {
			req = append(req, s)
		}
		return true
	})
	mPlain := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
	_, stPlain, err := Optimize("R", tb.ColNames(), req, Options{Model: mPlain})
	if err != nil {
		t.Fatal(err)
	}
	mExt := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
	pExt, stExt, err := Optimize("R", tb.ColNames(), req, Options{Model: mExt, ConsiderCubeRollup: true})
	if err != nil {
		t.Fatal(err)
	}
	if stExt.FinalCost > stPlain.FinalCost+1e-6 {
		t.Fatalf("cube/rollup extension worsened the plan: %.1f vs %.1f\n%s", stExt.FinalCost, stPlain.FinalCost, pExt)
	}
}

func TestRollupOrderFor(t *testing.T) {
	order, ok := rollupOrderFor(colset.Of(0, 1, 2), colset.Of(0), colset.Of(0, 1))
	if !ok {
		t.Fatal("rollup order not found")
	}
	// (a) then (a,b) must both be prefixes.
	if !isPrefixOf(colset.Of(0), order) || !isPrefixOf(colset.Of(0, 1), order) {
		t.Fatalf("order %v does not cover both children", order)
	}
	if len(order) != 3 {
		t.Fatalf("order %v incomplete", order)
	}
}

func TestStorageBudgetBlocksMerges(t *testing.T) {
	tb := corrTable(10_000, 4, 0, 11)
	size := func(s colset.Set) float64 { return float64(stats.ExactNDV(tb, s)) }
	m := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
	// A budget below any possible intermediate forces the naive plan.
	p, st, err := Optimize("R", tb.ColNames(), singles(4), Options{
		Model: m, StorageBudget: 0.5, SizeFn: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalCost != st.NaiveCost || len(p.Roots) != 4 {
		t.Fatalf("tiny budget should force naive plan:\n%s", p)
	}
	// A generous budget must allow merging again.
	m2 := cost.NewOptimizer(exactEnv(tb), cost.Coefficients{})
	_, st2, err := Optimize("R", tb.ColNames(), singles(4), Options{
		Model: m2, StorageBudget: 1e12, SizeFn: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.FinalCost >= st2.NaiveCost {
		t.Fatal("generous budget still blocked merges")
	}
}

func TestOptimizeInputValidation(t *testing.T) {
	tb := corrTable(100, 2, 0, 12)
	m := cost.NewCardinality(exactEnv(tb))
	if _, _, err := Optimize("R", nil, singles(2), Options{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, _, err := Optimize("R", nil, nil, Options{Model: m}); err == nil {
		t.Error("empty required accepted")
	}
	if _, _, err := Optimize("R", nil, []colset.Set{colset.Of(0), colset.Of(0)}, Options{Model: m}); err == nil {
		t.Error("duplicate required accepted")
	}
	if _, _, err := Optimize("R", nil, []colset.Set{0}, Options{Model: m}); err == nil {
		t.Error("empty set accepted")
	}
	if _, _, err := Optimize("R", nil, singles(1), Options{Model: m, StorageBudget: 5}); err == nil {
		t.Error("storage budget without SizeFn accepted")
	}
}

func TestOptimizeSingleQuery(t *testing.T) {
	tb := corrTable(1000, 2, 0, 13)
	m := cost.NewCardinality(exactEnv(tb))
	p, st, err := Optimize("R", tb.ColNames(), singles(1), Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Roots) != 1 || p.Roots[0].IsIntermediate() {
		t.Fatalf("single query should stay naive:\n%s", p)
	}
	if st.FinalCost != st.NaiveCost {
		t.Fatal("single query cost changed")
	}
}

func TestCardinalityModelMergeMatchesPaperFormula(t *testing.T) {
	// Under the cardinality model, merging leaf sub-plans (a) and (b) into
	// (ab)[(a),(b)] changes cost by exactly 2|ab| − |R| (§4.3.1's algebra:
	// Cost(vi)+Cost(vj)−Cost(vi∪vj) = |R| − 2|vi∪vj|).
	tb := corrTable(5000, 3, 0, 14)
	env := exactEnv(tb)
	m := cost.NewCardinality(env)
	_, st, err := Optimize("R", tb.ColNames(), singles(2), Options{Model: m, BinaryOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	R := float64(tb.NumRows())
	ab := float64(stats.ExactNDV(tb, colset.Of(0, 1)))
	wantMerged := R + 2*ab
	wantNaive := 2 * R
	if st.NaiveCost != wantNaive {
		t.Fatalf("naive = %v, want %v", st.NaiveCost, wantNaive)
	}
	want := math.Min(wantNaive, wantMerged)
	if math.Abs(st.FinalCost-want) > 1e-9 {
		t.Fatalf("final = %v, want %v", st.FinalCost, want)
	}
}

func TestPlanStringMentionsMaterialization(t *testing.T) {
	tb := corrTable(20_000, 4, 0, 15)
	m := cost.NewCardinality(exactEnv(tb))
	p, _, err := Optimize("R", tb.ColNames(), singles(4), Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "[materialized]") {
		t.Fatalf("expected materialized intermediates:\n%s", p)
	}
}

// TestQuickHillClimbVsExhaustiveRandom cross-checks on random required sets
// (including overlapping multi-column ones).
func TestQuickHillClimbVsExhaustiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		tb := corrTable(2000, 4, 2, int64(40+trial))
		nq := 3 + r.Intn(3)
		seen := map[colset.Set]bool{}
		var req []colset.Set
		for len(req) < nq {
			var s colset.Set
			for s.IsEmpty() {
				for c := 0; c < 6; c++ {
					if r.Intn(3) == 0 {
						s = s.Add(c)
					}
				}
			}
			if !seen[s] {
				seen[s] = true
				req = append(req, s)
			}
		}
		m := cost.NewCardinality(exactEnv(tb))
		p, st, err := Optimize("R", tb.ColNames(), req, Options{Model: m, BinaryOnly: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.Validate(req); err != nil {
			t.Fatalf("trial %d: invalid plan: %v", trial, err)
		}
		_, optCost, err := ExhaustiveOptimize("R", tb.ColNames(), req, m, 1)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		if st.FinalCost < optCost-1e-6*math.Max(1, optCost) {
			t.Fatalf("trial %d: hill climb %.1f beat optimum %.1f (req %v)", trial, st.FinalCost, optCost, req)
		}
	}
}
