package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gbmqo"
)

// Result is one operation's outcome as the driver accounts it.
type Result struct {
	// Err is the terminal error, nil on success (and nil when Shed — shed is
	// expected overload behavior, not a failure).
	Err error
	// Shed reports the server refused the operation under overload or
	// drain (ErrQueueFull / 429 / 503): counted separately from errors.
	Shed bool
	// Origin attributes a query result ("computed", "cache-hit",
	// "cache-ancestor", "flight-shared"); empty for appends and failures.
	Origin string
	// Partial reports a degraded sharded result that lost shards.
	Partial bool
}

// Target is where the driver sends operations: the in-process scheduler or a
// live HTTP endpoint. Implementations must be safe for concurrent use.
type Target interface {
	// Query runs the q-th population member and classifies the outcome.
	Query(ctx context.Context, q gbmqo.GroupQuery) Result
	// Append streams rows into the table under maintenance.
	Append(ctx context.Context, rows [][]gbmqo.Value) Result
}

// InProc drives gbmqo.DB directly through Submit/Append — the zero-transport
// baseline that isolates scheduler and engine behavior from HTTP overhead.
type InProc struct {
	DB    *gbmqo.DB
	Table string
}

// Query submits through the micro-batching scheduler; overload and drain
// rejections classify as shed.
func (t *InProc) Query(ctx context.Context, q gbmqo.GroupQuery) Result {
	_, info, err := t.DB.Submit(ctx, t.Table, q)
	if err != nil {
		if errors.Is(err, gbmqo.ErrQueueFull) || errors.Is(err, gbmqo.ErrDraining) ||
			errors.Is(err, gbmqo.ErrBatcherClosed) {
			return Result{Shed: true}
		}
		return Result{Err: err}
	}
	return Result{Origin: info.Origin.String(), Partial: info.Partial}
}

// Append feeds the streaming delta maintenance path.
func (t *InProc) Append(ctx context.Context, rows [][]gbmqo.Value) Result {
	if _, err := t.DB.Append(t.Table, rows); err != nil {
		return Result{Err: err}
	}
	return Result{}
}

// HTTPTarget drives a live gbmqo server (POST /query, POST /append) — the
// full-stack measurement including transport and JSON encoding. 429 and 503
// classify as shed, matching the server's overload contract.
type HTTPTarget struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL   string
	Table string
	// Client defaults to a dedicated client with a generous pooled
	// transport; share one across levels so connections are reused.
	Client *http.Client
}

func (t *HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// httpQueryReq / httpQueryResp mirror the server's /query wire shape.
type httpQueryReq struct {
	Table   string         `json:"table"`
	Queries []httpQueryOne `json:"queries"`
}

type httpQueryOne struct {
	Cols []string      `json:"cols"`
	Aggs []httpAggJSON `json:"aggs,omitempty"`
}

type httpAggJSON struct {
	Fn  string `json:"fn"`
	Col string `json:"col,omitempty"`
	As  string `json:"as,omitempty"`
}

type httpQueryResp struct {
	Results []struct {
		Batch *struct {
			Origin  string `json:"origin"`
			Partial bool   `json:"partial"`
		} `json:"batch"`
		Error string `json:"error"`
	} `json:"results"`
}

// Query posts the request and classifies the status code.
func (t *HTTPTarget) Query(ctx context.Context, q gbmqo.GroupQuery) Result {
	body := httpQueryReq{Table: t.Table, Queries: []httpQueryOne{{Cols: q.Cols}}}
	var resp httpQueryResp
	res := t.post(ctx, "/query", body, &resp)
	if res.Err != nil || res.Shed {
		return res
	}
	if len(resp.Results) == 0 {
		return Result{Err: errors.New("loadgen: /query returned no results")}
	}
	r0 := resp.Results[0]
	if r0.Error != "" {
		return Result{Err: errors.New(r0.Error)}
	}
	if r0.Batch != nil {
		res.Origin = r0.Batch.Origin
		res.Partial = r0.Batch.Partial
	}
	return res
}

// Append posts rows as JSON cells in schema order.
func (t *HTTPTarget) Append(ctx context.Context, rows [][]gbmqo.Value) Result {
	enc := make([][]any, len(rows))
	for i, row := range rows {
		cells := make([]any, len(row))
		for c, v := range row {
			cells[c] = cellJSON(v)
		}
		enc[i] = cells
	}
	return t.post(ctx, "/append", map[string]any{"table": t.Table, "rows": enc}, &struct{}{})
}

// post encodes body, issues the request, decodes into out, and classifies
// overload statuses as shed.
func (t *HTTPTarget) post(ctx context.Context, path string, body, out any) Result {
	buf, err := json.Marshal(body)
	if err != nil {
		return Result{Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.URL+path, bytes.NewReader(buf))
	if err != nil {
		return Result{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(req)
	if err != nil {
		return Result{Err: err}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable:
		return Result{Shed: true}
	case resp.StatusCode != http.StatusOK:
		return Result{Err: fmt.Errorf("loadgen: %s returned %s", path, resp.Status)}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return Result{Err: err}
	}
	return Result{}
}

// cellJSON renders one typed value as the JSON cell the server's bindValue
// accepts: numbers for BIGINT/FLOAT/DATE, strings for VARCHAR, null for NULL.
func cellJSON(v gbmqo.Value) any {
	if v.IsNull() {
		return nil
	}
	switch v.Typ {
	case gbmqo.Float64:
		return v.F
	case gbmqo.String:
		return v.S
	default: // Int64 and Date carry I
		return v.I
	}
}

// DefaultHTTPClient builds a client suited to open-loop load: pooled
// connections sized to the in-flight bound and an overall request timeout.
func DefaultHTTPClient(maxInFlight int, timeout time.Duration) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        maxInFlight,
		MaxIdleConnsPerHost: maxInFlight,
	}
	return &http.Client{Transport: tr, Timeout: timeout}
}
