package loadgen

import (
	"math/rand"
	"sort"

	"gbmqo"
)

// Workload is the query population the driver draws from plus the rows it
// appends: Queries is rank-ordered (index 0 is the Zipf-most-popular query),
// Proto holds prototype rows cycled through by append operations.
type Workload struct {
	Table   string
	Queries []gbmqo.GroupQuery
	Proto   [][]gbmqo.Value
}

// LatticeWorkload enumerates the group-by lattice over cols — every
// non-empty subset of up to maxDims grouping columns, coarsest first — as
// the query population. Coarse subsets ranking first matches how dashboards
// behave (few-column rollups dominate), which is exactly the regime where
// the cross-query cache and ancestor re-aggregation pay off. Each query
// carries the given aggregate list (COUNT(*) when empty).
func LatticeWorkload(table string, cols []string, maxDims int, aggs []gbmqo.Agg) []gbmqo.GroupQuery {
	if maxDims <= 0 || maxDims > len(cols) {
		maxDims = len(cols)
	}
	if len(aggs) == 0 {
		aggs = []gbmqo.Agg{gbmqo.CountStar()}
	}
	var out []gbmqo.GroupQuery
	for size := 1; size <= maxDims; size++ {
		subsets(len(cols), size, func(idx []int) {
			q := gbmqo.GroupQuery{Aggs: aggs}
			for _, i := range idx {
				q.Cols = append(q.Cols, cols[i])
			}
			out = append(out, q)
		})
	}
	return out
}

// subsets calls fn with every size-k index subset of 0..n-1 in lexicographic
// order (fn must copy idx if it retains it).
func subsets(n, k int, fn func(idx []int)) {
	idx := make([]int, k)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == k {
			fn(idx)
			return
		}
		for i := start; i <= n-(k-d); i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
}

// PickGroupCols selects up to max grouping-friendly dimension columns from
// t: distinct count at least 2 (a constant column groups trivially) and at
// most maxNDV (identifier-grade columns explode the lattice), lowest
// cardinality first — the columns a dashboard would actually group by.
func PickGroupCols(t *gbmqo.Table, max, maxNDV int) []string {
	type cand struct {
		name string
		ndv  int
	}
	var cands []cand
	for i := 0; i < t.NumCols(); i++ {
		c := t.Col(i)
		if ndv := c.DistinctCount(); ndv >= 2 && ndv <= maxNDV {
			cands = append(cands, cand{c.Name(), ndv})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].ndv < cands[b].ndv })
	if max > 0 && len(cands) > max {
		cands = cands[:max]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// ProtoRows samples n rows from t (seeded, with replacement) as the append
// prototypes: appended batches then carry the base table's value
// distributions, so delta aggregation sees realistic group keys instead of
// synthetic constants.
func ProtoRows(t *gbmqo.Table, n int, seed int64) [][]gbmqo.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]gbmqo.Value, n)
	for i := range out {
		r := rng.Intn(t.NumRows())
		row := make([]gbmqo.Value, t.NumCols())
		for c := range row {
			row[c] = t.Col(c).Value(r)
		}
		out[i] = row
	}
	return out
}

// AppendBatch returns the rows for the i-th append operation: a rotating
// window of size rows over the prototype set, so consecutive appends differ
// but the stream stays deterministic.
func (w *Workload) AppendBatch(i, rows int) [][]gbmqo.Value {
	if len(w.Proto) == 0 || rows <= 0 {
		return nil
	}
	out := make([][]gbmqo.Value, 0, rows)
	for k := 0; k < rows; k++ {
		out = append(out, w.Proto[(i*rows+k)%len(w.Proto)])
	}
	return out
}
