package loadgen

import (
	"context"
	"math"
	"testing"
	"time"

	"gbmqo"
	"gbmqo/internal/obs"
)

// TestScheduleDeterministic: same seed, same config → byte-identical
// operation sequences (the reproducibility contract BENCH_load relies on).
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Duration: 2 * time.Second, Rate: 500, ZipfS: 1.0, AppendRatio: 0.05}
	a := Schedule(cfg, 30)
	b := Schedule(cfg, 30)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if SequenceFNV(a) != SequenceFNV(b) {
		t.Fatal("fingerprints differ for identical schedules")
	}
	cfg.Seed = 43
	if SequenceFNV(Schedule(cfg, 30)) == SequenceFNV(a) {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

// TestPoissonInterArrivalMean: exponential gaps at rate λ must average 1/λ
// within 5% over a long window (law of large numbers check on the sampler).
func TestPoissonInterArrivalMean(t *testing.T) {
	cfg := Config{Seed: 7, Duration: 60 * time.Second, Rate: 1000, Arrival: ArrivalPoisson}
	ops := Schedule(cfg, 10)
	if len(ops) < 10_000 {
		t.Fatalf("only %d arrivals in 60s at 1000/s", len(ops))
	}
	mean := ops[len(ops)-1].At.Seconds() / float64(len(ops)-1)
	want := 1.0 / cfg.Rate
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean inter-arrival %.6fs, want %.6fs ±5%%", mean, want)
	}
}

// TestZipfRankFrequencies: with s=1 over n ranks, observed frequencies must
// track the harmonic weights 1/(r+1) within tolerance, and rank order must
// be monotone for the head.
func TestZipfRankFrequencies(t *testing.T) {
	const n = 8
	cfg := Config{Seed: 11, Duration: 120 * time.Second, Rate: 1000, ZipfS: 1.0}
	ops := Schedule(cfg, n)
	counts := make([]float64, n)
	for _, op := range ops {
		counts[op.Query]++
	}
	total := float64(len(ops))
	hn := 0.0
	for r := 1; r <= n; r++ {
		hn += 1 / float64(r)
	}
	for r := 0; r < n; r++ {
		want := (1 / float64(r+1)) / hn
		got := counts[r] / total
		if math.Abs(got-want)/want > 0.10 {
			t.Fatalf("rank %d frequency %.4f, want %.4f ±10%%", r, got, want)
		}
	}
	for r := 1; r < n; r++ {
		if counts[r] > counts[r-1] {
			t.Fatalf("rank %d more popular than rank %d — Zipf order broken", r, r-1)
		}
	}
}

// TestZipfUniformWhenZeroSkew: s=0 must degrade to uniform.
func TestZipfUniformWhenZeroSkew(t *testing.T) {
	const n = 4
	cfg := Config{Seed: 13, Duration: 60 * time.Second, Rate: 1000, ZipfS: 0}
	ops := Schedule(cfg, n)
	counts := make([]float64, n)
	for _, op := range ops {
		counts[op.Query]++
	}
	want := float64(len(ops)) / n
	for r, c := range counts {
		if math.Abs(c-want)/want > 0.10 {
			t.Fatalf("rank %d count %.0f, want %.0f ±10%%", r, c, want)
		}
	}
}

// TestOnOffBurstDensity: arrivals inside ON windows must be denser than OFF
// windows by roughly BurstFactor² (rate is multiplied in ON, divided in OFF).
func TestOnOffBurstDensity(t *testing.T) {
	cfg := Config{Seed: 17, Duration: 30 * time.Second, Rate: 200, Arrival: ArrivalOnOff,
		BurstFactor: 8, BurstOn: 200 * time.Millisecond, BurstOff: 600 * time.Millisecond}
	ops := Schedule(cfg, 5)
	period := cfg.BurstOn + cfg.BurstOff
	var on, off float64
	for _, op := range ops {
		if op.At%period < cfg.BurstOn {
			on++
		} else {
			off++
		}
	}
	onRate := on / (cfg.Duration.Seconds() * cfg.BurstOn.Seconds() / period.Seconds())
	offRate := off / (cfg.Duration.Seconds() * cfg.BurstOff.Seconds() / period.Seconds())
	if onRate < offRate*16 {
		t.Fatalf("on-window rate %.0f/s vs off %.0f/s: bursts not bursty", onRate, offRate)
	}
}

// TestAppendMixRatio: the read/append mix must track AppendRatio.
func TestAppendMixRatio(t *testing.T) {
	cfg := Config{Seed: 19, Duration: 60 * time.Second, Rate: 1000, AppendRatio: 0.10}
	ops := Schedule(cfg, 10)
	var appends float64
	for _, op := range ops {
		if op.Append {
			appends++
		}
	}
	got := appends / float64(len(ops))
	if math.Abs(got-0.10) > 0.01 {
		t.Fatalf("append fraction %.4f, want 0.10 ±0.01", got)
	}
}

// TestLatticeWorkload: the population enumerates every subset up to maxDims,
// coarsest first.
func TestLatticeWorkload(t *testing.T) {
	qs := LatticeWorkload("t", []string{"a", "b", "c"}, 2, nil)
	if len(qs) != 6 { // 3 singletons + 3 pairs
		t.Fatalf("got %d queries, want 6", len(qs))
	}
	if len(qs[0].Cols) != 1 || len(qs[5].Cols) != 2 {
		t.Fatalf("population not ordered coarsest-first: %v ... %v", qs[0].Cols, qs[5].Cols)
	}
	for _, q := range qs {
		if len(q.Aggs) != 1 {
			t.Fatalf("query %v missing default COUNT(*)", q.Cols)
		}
	}
}

// TestRunInProcSmoke: a short seeded run against a real in-process DB must
// complete queries with zero errors, record latencies, and show cache
// activity in the origin mix (the Zipf head repeats, so the result cache and
// window dedup must serve some of it).
func TestRunInProcSmoke(t *testing.T) {
	db := gbmqo.Open(&gbmqo.Config{CacheBytes: 16 << 20})
	li, err := gbmqo.GenerateDataset("lineitem", 20_000, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(li)
	db.StartBatching(gbmqo.BatchOptions{MaxWait: 2 * time.Millisecond,
		Exec: gbmqo.QueryOptions{SharedScan: true}})
	defer db.StopBatching()

	w := &Workload{
		Table:   "lineitem",
		Queries: LatticeWorkload("lineitem", []string{"l_returnflag", "l_linestatus", "l_shipmode"}, 2, nil),
		Proto:   ProtoRows(li, 256, 5),
	}
	r := NewRunner(&InProc{DB: db, Table: "lineitem"}, w)
	rep, err := Run(context.Background(), r, Config{
		Name: "smoke", Seed: 42, Duration: 800 * time.Millisecond, Rate: 300,
		ZipfS: 1.0, AppendRatio: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors in smoke run", rep.Errors)
	}
	if rep.Completed == 0 {
		t.Fatal("no operations completed")
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Fatalf("implausible latency quantiles: %+v", rep.LatencyMS)
	}
	served := rep.OriginMix["cache-hit"] + rep.OriginMix["cache-ancestor"] + rep.OriginMix["flight-shared"]
	if served == 0 {
		t.Fatalf("no cache or flight sharing in origin mix %v — Zipf head not repeating?", rep.OriginMix)
	}
	// The runner doubles as a collector: its counters must surface.
	snap := map[string]bool{}
	ms, errC := collectAll(r)
	if errC != nil {
		t.Fatal(errC)
	}
	for _, m := range ms {
		snap[m.Name] = true
	}
	if !snap[`gbmqo_loadgen_ops_total{kind="query"}`] || !snap["gbmqo_loadgen_latency_seconds"] {
		t.Fatalf("collector surface missing driver series: %v", snap)
	}
}

// collectAll drains a Collector into a slice.
func collectAll(c obs.Collector) ([]obs.Metric, error) {
	ch := make(chan obs.Metric, 1024)
	err := c.Collect(ch)
	close(ch)
	var out []obs.Metric
	for m := range ch {
		out = append(out, m)
	}
	return out, err
}
