package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gbmqo"
)

// shedTarget is a synthetic target with a hard capacity: queries beyond
// capacity ops/sec (measured per level via a simple token count against the
// offered total) are shed. It lets sweep tests find a knee without timing
// sensitivity.
type shedTarget struct {
	capacity int64 // max completions per level
	served   atomic.Int64
	origin   func(n int64) string
}

func (s *shedTarget) Query(ctx context.Context, q gbmqo.GroupQuery) Result {
	n := s.served.Add(1)
	if n > s.capacity {
		return Result{Shed: true}
	}
	origin := "computed"
	if s.origin != nil {
		origin = s.origin(n)
	}
	return Result{Origin: origin}
}

func (s *shedTarget) Append(ctx context.Context, rows [][]gbmqo.Value) Result { return Result{} }

func sweepWorkload() *Workload {
	return &Workload{
		Table:   "t",
		Queries: []gbmqo.GroupQuery{{Cols: []string{"a"}}, {Cols: []string{"b"}}},
	}
}

func TestRunSweepFindsKnee(t *testing.T) {
	// 120 lifetime completions: level 0 (~50 ops at 100/s over 0.5s) fits,
	// level 1 (~100 ops at 200/s) blows through the budget and sheds well
	// past 5%, stopping the sweep.
	target := &shedTarget{capacity: 120}
	r := NewRunner(target, sweepWorkload())
	sc := SweepConfig{
		Base:         Config{Seed: 5, Duration: 500 * time.Millisecond, MaxInFlight: 1024},
		StartRate:    100,
		Factor:       2,
		MaxLevels:    5,
		KneeShedRate: 0.05,
	}
	rep, err := RunSweep(context.Background(), r, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KneeLevel == "" {
		t.Fatalf("sweep never found the knee: %+v", rep)
	}
	if rep.KneeRate <= 0 || rep.KneeRate >= rep.Levels[len(rep.Levels)-1].TargetRate {
		t.Fatalf("knee rate %v not below the shedding level's rate", rep.KneeRate)
	}
	if len(rep.Levels) != len(rep.OriginDrift) {
		t.Fatalf("%d levels but %d drift entries", len(rep.Levels), len(rep.OriginDrift))
	}
	last := rep.Levels[len(rep.Levels)-1]
	if last.Level != rep.KneeLevel || last.ShedRate < sc.KneeShedRate {
		t.Fatalf("knee level %q shed %.3f, want ≥ %v", last.Level, last.ShedRate, sc.KneeShedRate)
	}
	// Earlier levels stayed under the knee.
	for _, lv := range rep.Levels[:len(rep.Levels)-1] {
		if lv.ShedRate >= sc.KneeShedRate {
			t.Fatalf("pre-knee level %q already shed %.3f", lv.Level, lv.ShedRate)
		}
	}
}

func TestRunSweepExhaustsWithoutKnee(t *testing.T) {
	target := &shedTarget{capacity: 1 << 30} // effectively infinite
	r := NewRunner(target, sweepWorkload())
	rep, err := RunSweep(context.Background(), r, SweepConfig{
		Base:      Config{Seed: 9, Duration: 100 * time.Millisecond, MaxInFlight: 1024},
		StartRate: 50, MaxLevels: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.KneeLevel != "" {
		t.Fatalf("found a knee on an unshoppable target: %+v", rep)
	}
	if len(rep.Levels) != 3 {
		t.Fatalf("ran %d levels, want 3", len(rep.Levels))
	}
	if rep.KneeRate != rep.Levels[2].TargetRate {
		t.Fatalf("KneeRate %v should be the last sustained rate %v", rep.KneeRate, rep.Levels[2].TargetRate)
	}
}

func TestOriginDriftMeasured(t *testing.T) {
	// A steady all-cache-hit target: the sweep's first level anchors the
	// drift baseline at zero, and the drift metric itself is unit-checked on
	// synthetic mixes below.
	target := &shedTarget{capacity: 1 << 30, origin: func(int64) string { return "cache-hit" }}
	r := NewRunner(target, sweepWorkload())
	sc := SweepConfig{
		Base:      Config{Seed: 13, Duration: 100 * time.Millisecond, MaxInFlight: 1024},
		StartRate: 200, MaxLevels: 2,
	}
	rep, err := RunSweep(context.Background(), r, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OriginDrift[0].Drift != 0 {
		t.Fatalf("first level drift = %v, want 0", rep.OriginDrift[0].Drift)
	}
	if rep.OriginDrift[0].Shares["cache-hit"] != 1 {
		t.Fatalf("first level shares: %v", rep.OriginDrift[0].Shares)
	}

	// Unit-check the drift metric itself on synthetic mixes.
	a := &LevelReport{Level: "a", OriginMix: map[string]int64{"cache-hit": 10}}
	b := &LevelReport{Level: "b", OriginMix: map[string]int64{"computed": 10}}
	c := &LevelReport{Level: "c", OriginMix: map[string]int64{"cache-hit": 5, "computed": 5}}
	base := originShift(a, nil)
	if d := originShift(b, []OriginShift{base}).Drift; d != 1 {
		t.Fatalf("disjoint mixes drift = %v, want 1", d)
	}
	if d := originShift(c, []OriginShift{base}).Drift; d != 0.5 {
		t.Fatalf("half-moved mix drift = %v, want 0.5", d)
	}
	if d := originShift(a, []OriginShift{base}).Drift; d != 0 {
		t.Fatalf("identical mix drift = %v, want 0", d)
	}
}

func TestParseArtifactRoundTrip(t *testing.T) {
	a := &Artifact{
		Bench:   "load",
		Command: "gbmqo -load-sweep",
		Table:   "lineitem",
		Rows:    50000,
		Levels: []LevelReport{{
			Level: "steady", Arrival: ArrivalPoisson, Seed: 42, TargetRate: 500,
			Offered: 1000, Completed: 990, Shed: 10,
			OriginMix: map[string]int64{"cache-hit": 700, "computed": 290},
			LatencyMS: LatencyQuantiles{P50: 1.5, P95: 9.8, P99: 20.1},
		}},
		Sweep: &SweepReport{
			KneeRate: 800, KneeLevel: "sweep-3", KneeShedRate: 0.05,
			Levels: []LevelReport{{Level: "sweep-0", TargetRate: 100}},
			OriginDrift: []OriginShift{
				{Level: "sweep-0", Rate: 100, Shares: map[string]float64{"computed": 1}},
			},
		},
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bench != a.Bench || got.Rows != a.Rows || len(got.Levels) != 1 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Sweep == nil || got.Sweep.KneeRate != 800 || got.Sweep.KneeLevel != "sweep-3" {
		t.Fatalf("sweep section lost: %+v", got.Sweep)
	}
	if got.Levels[0].OriginMix["cache-hit"] != 700 {
		t.Fatalf("origin mix lost: %+v", got.Levels[0].OriginMix)
	}
	if got.Sweep.OriginDrift[0].Shares["computed"] != 1 {
		t.Fatalf("drift shares lost: %+v", got.Sweep.OriginDrift)
	}
}

func TestParseArtifactRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"bench": `,
		"missing bench": `{"levels":[{"level":"x"}]}`,
		"no levels":     `{"bench":"load"}`,
		"empty sweep":   `{"bench":"load","sweep":{"levels":[]}}`,
	}
	for name, payload := range cases {
		if _, err := ParseArtifact([]byte(payload)); err == nil {
			t.Errorf("%s: ParseArtifact accepted %q", name, payload)
		}
	}
	// Sweep-only artifacts (no top-level levels) are valid.
	ok := `{"bench":"load","sweep":{"knee_rate_ops_s":100,"knee_shed_rate":0.05,"levels":[{"level":"sweep-0"}]}}`
	if _, err := ParseArtifact([]byte(ok)); err != nil {
		t.Errorf("sweep-only artifact rejected: %v", err)
	}
}

// TestHTTPTargetClassification pins the shed-vs-error contract: 429 and 503
// are shed (expected overload), other non-200s and transport failures are
// errors, and 200 carries the origin through.
func TestHTTPTargetClassification(t *testing.T) {
	var status atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		code := int(status.Load())
		if code != http.StatusOK {
			w.WriteHeader(code)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"results":[{"batch":{"origin":"cache-hit","partial":false}}]}`))
	}))
	defer srv.Close()

	target := &HTTPTarget{URL: srv.URL, Table: "t"}
	q := gbmqo.GroupQuery{Cols: []string{"a"}}
	ctx := context.Background()

	status.Store(http.StatusTooManyRequests)
	if res := target.Query(ctx, q); !res.Shed || res.Err != nil {
		t.Fatalf("429: %+v, want shed", res)
	}
	status.Store(http.StatusServiceUnavailable)
	if res := target.Query(ctx, q); !res.Shed || res.Err != nil {
		t.Fatalf("503: %+v, want shed", res)
	}
	status.Store(http.StatusInternalServerError)
	if res := target.Query(ctx, q); res.Shed || res.Err == nil {
		t.Fatalf("500: %+v, want error", res)
	}
	status.Store(http.StatusOK)
	if res := target.Query(ctx, q); res.Err != nil || res.Shed || res.Origin != "cache-hit" {
		t.Fatalf("200: %+v, want origin cache-hit", res)
	}
	// Appends share the same classifier.
	status.Store(http.StatusTooManyRequests)
	if res := target.Append(ctx, [][]gbmqo.Value{{gbmqo.IntVal(1)}}); !res.Shed {
		t.Fatalf("append 429: %+v, want shed", res)
	}

	// Transport failure (server gone) is an error, never shed.
	srv.Close()
	if res := target.Query(ctx, q); res.Shed || res.Err == nil {
		t.Fatalf("dead server: %+v, want transport error", res)
	}

	// Cancelled context is an error too (the driver's timeout path).
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if res := target.Query(cancelled, q); res.Err == nil {
		t.Fatalf("cancelled ctx: %+v, want error", res)
	}
}
