package loadgen

import (
	"context"
	"fmt"
	"time"
)

// SweepConfig steps a base load level's arrival rate geometrically until the
// target sheds: the rate sweep that locates the serving stack's capacity knee
// instead of measuring one arbitrary operating point.
type SweepConfig struct {
	// Base is the level template; Rate, Name, and Seed are overridden per
	// step (Seed advances per level so schedules stay independent).
	Base Config
	// StartRate is the first level's offered rate (default Base.Rate, or the
	// Config default when that is unset).
	StartRate float64
	// Factor multiplies the rate between levels (default 2).
	Factor float64
	// MaxLevels bounds the sweep (default 6).
	MaxLevels int
	// KneeShedRate is the combined shed fraction (server + client) at which a
	// level counts as past the knee (default 0.05).
	KneeShedRate float64
	// LevelDuration overrides Base.Duration per level when set.
	LevelDuration time.Duration
}

func (sc SweepConfig) withDefaults() SweepConfig {
	if sc.StartRate <= 0 {
		sc.StartRate = sc.Base.withDefaults().Rate
	}
	if sc.Factor <= 1 {
		sc.Factor = 2
	}
	if sc.MaxLevels <= 0 {
		sc.MaxLevels = 6
	}
	if sc.KneeShedRate <= 0 {
		sc.KneeShedRate = 0.05
	}
	if sc.LevelDuration > 0 {
		sc.Base.Duration = sc.LevelDuration
	}
	return sc
}

// OriginShift is one level's result-origin composition and how far it drifted
// from the sweep's first level — the signal that rising load is changing
// *what* the server serves (cache share collapsing, flight sharing taking
// over), not just how fast.
type OriginShift struct {
	Level string  `json:"level"`
	Rate  float64 `json:"rate_ops_s"`
	// Shares is each origin's fraction of completed queries at this level.
	Shares map[string]float64 `json:"shares"`
	// Drift is the total-variation distance (½·L1) between this level's
	// shares and the first level's — 0 means the mix is unchanged, 1 means
	// it is disjoint.
	Drift float64 `json:"drift"`
}

// SweepReport is the rate sweep's artifact section: every level run, the knee
// found, and the origin-mix drift trajectory.
type SweepReport struct {
	// KneeRate is the highest offered rate sustained below KneeShedRate
	// (0 when even the first level shed past it).
	KneeRate float64 `json:"knee_rate_ops_s"`
	// KneeLevel names the first level past the knee ("" when the sweep ended
	// without finding it — raise MaxLevels or Factor).
	KneeLevel    string        `json:"knee_level,omitempty"`
	KneeShedRate float64       `json:"knee_shed_rate"`
	Levels       []LevelReport `json:"levels"`
	OriginDrift  []OriginShift `json:"origin_drift"`
}

// RunSweep steps the offered rate geometrically from StartRate, running one
// level per step on the shared runner, until a level's combined shed rate
// crosses the knee threshold or MaxLevels is exhausted. Per-operation
// failures don't stop the sweep; only setup errors do.
func RunSweep(ctx context.Context, r *Runner, sc SweepConfig) (*SweepReport, error) {
	sc = sc.withDefaults()
	out := &SweepReport{KneeShedRate: sc.KneeShedRate}
	rate := sc.StartRate
	for i := 0; i < sc.MaxLevels && ctx.Err() == nil; i++ {
		cfg := sc.Base
		cfg.Rate = rate
		cfg.Name = fmt.Sprintf("sweep-%d", i)
		cfg.Seed = sc.Base.Seed + int64(i)
		rep, err := Run(ctx, r, cfg)
		if err != nil {
			return nil, err
		}
		out.Levels = append(out.Levels, *rep)
		out.OriginDrift = append(out.OriginDrift, originShift(rep, out.OriginDrift))
		if rep.ShedRate >= sc.KneeShedRate {
			out.KneeLevel = rep.Level
			return out, nil
		}
		out.KneeRate = rate
		rate *= sc.Factor
	}
	return out, nil
}

// originShift reduces a level's origin mix to shares and measures drift
// against the first recorded level.
func originShift(rep *LevelReport, prior []OriginShift) OriginShift {
	s := OriginShift{Level: rep.Level, Rate: rep.TargetRate, Shares: map[string]float64{}}
	var total int64
	for _, n := range rep.OriginMix {
		total += n
	}
	if total > 0 {
		for origin, n := range rep.OriginMix {
			s.Shares[origin] = float64(n) / float64(total)
		}
	}
	if len(prior) > 0 {
		base := prior[0].Shares
		keys := map[string]bool{}
		for k := range base {
			keys[k] = true
		}
		for k := range s.Shares {
			keys[k] = true
		}
		for k := range keys {
			d := s.Shares[k] - base[k]
			if d < 0 {
				d = -d
			}
			s.Drift += d
		}
		s.Drift /= 2
	}
	return s
}
