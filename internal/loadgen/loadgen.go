// Package loadgen is the deterministic open-loop workload driver for the
// serving stack: it generates a seeded arrival schedule (Poisson or on/off
// bursty), draws query popularity from a Zipf distribution over the group-by
// lattice, mixes in streaming appends that exercise the incremental cache
// maintenance path, fires the schedule at a Target (in-process DB.Submit or
// a live HTTP endpoint) without waiting for responses (open loop: offered
// load does not shrink when the server slows down), and reduces the run to a
// closed-form LevelReport — latency quantiles, throughput, shed rate, origin
// mix — suitable for checking in as a benchmark artifact.
//
// Everything before the wall clock is pure: Schedule(cfg, population) is a
// deterministic function of the seed, so two runs with the same seed offer
// the identical operation sequence (fingerprinted by SequenceFNV) and load
// results are comparable across commits.
package loadgen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Arrival process names for Config.Arrival.
const (
	// ArrivalPoisson draws independent exponential inter-arrival gaps at
	// Config.Rate — the memoryless steady-state baseline.
	ArrivalPoisson = "poisson"
	// ArrivalOnOff alternates bursty ON windows at Rate*BurstFactor with
	// quiet OFF windows at Rate/BurstFactor (gaps still exponential inside
	// each window) — the flash-crowd shape that stresses admission control.
	ArrivalOnOff = "onoff"
)

// Config describes one load level. The zero value is not runnable; use
// (Config).withDefaults via Schedule/Runner, which fill the documented
// defaults.
type Config struct {
	// Name labels the level in reports ("steady", "bursty", ...).
	Name string
	// Seed derives every random stream: arrivals use Seed, popularity uses
	// Seed+1, the read/append mix uses Seed+2. Same seed, same schedule.
	Seed int64
	// Duration is the offered-load window.
	Duration time.Duration
	// Rate is the mean offered rate in operations per second.
	Rate float64
	// Arrival selects the arrival process (default ArrivalPoisson).
	Arrival string
	// BurstFactor scales Rate inside ON windows (and divides it in OFF
	// windows) when Arrival is ArrivalOnOff (default 8).
	BurstFactor float64
	// BurstOn / BurstOff are the ON / OFF window lengths for ArrivalOnOff
	// (defaults 200ms / 600ms).
	BurstOn  time.Duration
	BurstOff time.Duration
	// ZipfS is the Zipf skew of query popularity over the workload's query
	// population: weight(rank r) ∝ 1/(r+1)^s. 0 is uniform; 1 (the default)
	// is the classic web-workload skew that makes the result cache earn its
	// keep.
	ZipfS float64
	// AppendRatio is the fraction of operations that are streaming appends
	// instead of queries (default 0 — read-only).
	AppendRatio float64
	// AppendRows is the number of rows per append operation (default 64).
	AppendRows int
	// MaxInFlight bounds concurrently outstanding operations; an arrival
	// finding no free slot is counted as client-side shed rather than
	// queueing (open-loop backpressure accounting, default 256).
	MaxInFlight int
	// Timeout bounds each individual operation (default 5s).
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "level"
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 8
	}
	if c.BurstOn <= 0 {
		c.BurstOn = 200 * time.Millisecond
	}
	if c.BurstOff <= 0 {
		c.BurstOff = 600 * time.Millisecond
	}
	if c.AppendRows <= 0 {
		c.AppendRows = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	return c
}

// Op is one scheduled operation: fire at offset At from the run's start;
// either an append or the Query-th member of the workload's population.
type Op struct {
	Seq    int
	At     time.Duration
	Append bool
	Query  int
}

// Schedule expands cfg into the full deterministic operation sequence over a
// query population of the given size. Three independent seeded streams feed
// it — arrival gaps (Seed), Zipf popularity draws (Seed+1), and the
// read/append mix (Seed+2) — so changing, say, AppendRatio does not perturb
// which queries the read stream issues.
func Schedule(cfg Config, population int) []Op {
	cfg = cfg.withDefaults()
	if population < 1 {
		population = 1
	}
	arrival := rand.New(rand.NewSource(cfg.Seed))
	popular := rand.New(rand.NewSource(cfg.Seed + 1))
	mix := rand.New(rand.NewSource(cfg.Seed + 2))
	zipf := newZipfPicker(population, cfg.ZipfS)

	var ops []Op
	t := time.Duration(0)
	for {
		t += gap(cfg, arrival, t)
		if t >= cfg.Duration {
			break
		}
		op := Op{Seq: len(ops), At: t}
		if cfg.AppendRatio > 0 && mix.Float64() < cfg.AppendRatio {
			op.Append = true
		} else {
			op.Query = zipf.pick(popular)
		}
		ops = append(ops, op)
	}
	return ops
}

// gap draws the next exponential inter-arrival gap at the rate in force at
// offset t (constant for Poisson; phase-dependent for on/off).
func gap(cfg Config, rng *rand.Rand, t time.Duration) time.Duration {
	rate := cfg.Rate
	if cfg.Arrival == ArrivalOnOff {
		period := cfg.BurstOn + cfg.BurstOff
		if t%period < cfg.BurstOn {
			rate = cfg.Rate * cfg.BurstFactor
		} else {
			rate = cfg.Rate / cfg.BurstFactor
		}
	}
	g := rng.ExpFloat64() / rate
	return time.Duration(g * float64(time.Second))
}

// zipfPicker samples ranks 0..n-1 with weight(r) ∝ 1/(r+1)^s by inverse-CDF
// binary search over precomputed cumulative weights. rand.Zipf would serve,
// but the explicit CDF keeps the distribution identical across Go versions
// and lets s = 0 degrade to exactly uniform.
type zipfPicker struct {
	cum []float64 // cumulative normalized weights, cum[n-1] == 1
}

func newZipfPicker(n int, s float64) *zipfPicker {
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / pow(float64(r+1), s)
		cum[r] = total
	}
	for r := range cum {
		cum[r] /= total
	}
	return &zipfPicker{cum: cum}
}

func (z *zipfPicker) pick(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// pow is math.Pow with the two exponents the picker actually uses fast-pathed
// (s=0 uniform, s=1 harmonic), so the common configurations cost no libm
// call per rank when setting up large populations.
func pow(base, exp float64) float64 {
	switch exp {
	case 0:
		return 1
	case 1:
		return base
	}
	return math.Pow(base, exp)
}

// SequenceFNV fingerprints a schedule: FNV-1a over every op's offset, kind
// and query index. Two runs with equal fingerprints offered the identical
// operation sequence — the reproducibility witness checked into BENCH_load.
func SequenceFNV(ops []Op) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, op := range ops {
		put(uint64(op.At))
		if op.Append {
			put(1)
		} else {
			put(0)
		}
		put(uint64(op.Query))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
