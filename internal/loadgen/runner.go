package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"gbmqo/internal/obs"
)

// LevelReport is the closed-form result of one load level — the unit checked
// into BENCH_load.json. Every field is computed from the run; SequenceFNV is
// the schedule fingerprint a same-seed rerun must reproduce.
type LevelReport struct {
	Level       string  `json:"level"`
	Arrival     string  `json:"arrival"`
	Seed        int64   `json:"seed"`
	DurationS   float64 `json:"duration_s"`
	TargetRate  float64 `json:"target_rate_ops_s"`
	ZipfS       float64 `json:"zipf_s"`
	AppendRatio float64 `json:"append_ratio"`
	SequenceFNV string  `json:"sequence_fnv"`

	Offered    int64 `json:"offered"`
	Completed  int64 `json:"completed"`
	Errors     int64 `json:"errors"`
	Shed       int64 `json:"shed"`
	ClientShed int64 `json:"client_shed"`
	Appends    int64 `json:"appends"`
	Partials   int64 `json:"partials"`

	ThroughputOpsS float64          `json:"throughput_ops_s"`
	LatencyMS      LatencyQuantiles `json:"latency_ms"`
	OriginMix      map[string]int64 `json:"origin_mix"`
	ShedRate       float64          `json:"shed_rate"`
	PartialRate    float64          `json:"partial_rate"`
}

// LatencyQuantiles are histogram-estimated latency quantiles, milliseconds.
type LatencyQuantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Artifact is the whole benchmark file: one entry per load level, plus the
// provenance needed to rerun it.
type Artifact struct {
	Bench   string        `json:"bench"`
	Command string        `json:"command"`
	Table   string        `json:"table"`
	Rows    int           `json:"rows"`
	Levels  []LevelReport `json:"levels"`
	// Sweep holds the rate-sweep section when the run was -load-sweep: the
	// knee rate found and the origin-mix drift per level.
	Sweep *SweepReport `json:"sweep,omitempty"`
}

// ParseArtifact decodes a BENCH_load.json payload and sanity-checks its
// shape, so CI can assert on artifacts without re-running load.
func ParseArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("loadgen: bad artifact: %w", err)
	}
	if a.Bench == "" {
		return nil, fmt.Errorf("loadgen: artifact missing bench name")
	}
	if len(a.Levels) == 0 && (a.Sweep == nil || len(a.Sweep.Levels) == 0) {
		return nil, fmt.Errorf("loadgen: artifact has no levels")
	}
	return &a, nil
}

// latencyBounds spans 100µs .. ~13s in ×1.5 steps — fine enough that
// interpolated quantiles resolve sub-millisecond differences at the fast end.
var latencyBounds = obs.ExpBuckets(0.0001, 1.5, 30)

// Runner drives one or more load levels at a Target and accounts every
// operation on a private obs registry, which it exposes as an obs.Collector
// (name "loadgen") so a serving process can surface live driver-side counters
// on its own /metrics while a soak runs.
type Runner struct {
	Target   Target
	Workload *Workload

	reg      *obs.Registry
	ops      *obs.Counter
	appends  *obs.Counter
	errsQ    *obs.Counter
	errsA    *obs.Counter
	shed     *obs.Counter
	clShed   *obs.Counter
	partials *obs.Counter
	origins  map[string]*obs.Counter
	latency  *obs.Histogram
}

// NewRunner wires a runner and its metrics registry.
func NewRunner(target Target, w *Workload) *Runner {
	reg := obs.NewRegistry()
	r := &Runner{
		Target:   target,
		Workload: w,
		reg:      reg,
		ops:      reg.Counter(`gbmqo_loadgen_ops_total{kind="query"}`, "operations offered by the load driver, by kind"),
		appends:  reg.Counter(`gbmqo_loadgen_ops_total{kind="append"}`, "operations offered by the load driver, by kind"),
		errsQ:    reg.Counter(`gbmqo_loadgen_errors_total{kind="query"}`, "driver operations that terminally failed, by kind"),
		errsA:    reg.Counter(`gbmqo_loadgen_errors_total{kind="append"}`, "driver operations that terminally failed, by kind"),
		shed:     reg.Counter("gbmqo_loadgen_shed_total", "operations the server refused under overload or drain"),
		clShed:   reg.Counter("gbmqo_loadgen_client_shed_total", "arrivals dropped at the driver: in-flight bound reached"),
		partials: reg.Counter("gbmqo_loadgen_partials_total", "query results served degraded (lost shards)"),
		origins:  map[string]*obs.Counter{},
		latency: reg.Histogram("gbmqo_loadgen_latency_seconds",
			"end-to-end operation latency as the driver observes it", latencyBounds),
	}
	for _, o := range []string{"computed", "cache-hit", "cache-ancestor", "flight-shared"} {
		r.origins[o] = reg.Counter(fmt.Sprintf("gbmqo_loadgen_origin_total{origin=%q}", o),
			"completed queries by result origin")
	}
	return r
}

// Name implements obs.Collector.
func (r *Runner) Name() string { return "loadgen" }

// Collect implements obs.Collector by forwarding the private registry.
func (r *Runner) Collect(ch chan<- obs.Metric) error { return r.reg.Collect(ch) }

// Run offers cfg's schedule at the target, open loop: arrivals fire at their
// scheduled offsets regardless of how long earlier operations take, bounded
// only by MaxInFlight (beyond it arrivals are dropped and counted, never
// queued — queueing would close the loop). Returns the level's report; the
// error is non-nil only for setup problems, not per-operation failures.
func Run(ctx context.Context, r *Runner, cfg Config) (*LevelReport, error) {
	cfg = cfg.withDefaults()
	if r.Workload == nil || len(r.Workload.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: empty workload")
	}
	ops := Schedule(cfg, len(r.Workload.Queries))

	// Per-level accounting is separate from the cumulative registry counters
	// so multiple levels can share one Runner (and one /metrics surface).
	var mu sync.Mutex
	lat := obs.NewHistogram(latencyBounds)
	rep := &LevelReport{
		Level: cfg.Name, Arrival: cfg.Arrival, Seed: cfg.Seed,
		DurationS: cfg.Duration.Seconds(), TargetRate: cfg.Rate,
		ZipfS: cfg.ZipfS, AppendRatio: cfg.AppendRatio,
		SequenceFNV: SequenceFNV(ops),
		OriginMix:   map[string]int64{},
	}

	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	for _, op := range ops {
		if d := time.Until(start.Add(op.At)); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		rep.Offered++
		select {
		case sem <- struct{}{}:
		default:
			r.clShed.Inc()
			rep.ClientShed++
			continue
		}
		wg.Add(1)
		go func(op Op) {
			defer wg.Done()
			defer func() { <-sem }()
			opCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			var res Result
			if op.Append {
				r.appends.Inc()
				res = r.Target.Append(opCtx, r.Workload.AppendBatch(op.Seq, cfg.AppendRows))
			} else {
				r.ops.Inc()
				res = r.Target.Query(opCtx, r.Workload.Queries[op.Query])
			}
			elapsed := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case res.Shed:
				r.shed.Inc()
				rep.Shed++
			case res.Err != nil:
				if op.Append {
					r.errsA.Inc()
				} else {
					r.errsQ.Inc()
				}
				rep.Errors++
			default:
				rep.Completed++
				lat.Observe(elapsed.Seconds())
				r.latency.Observe(elapsed.Seconds())
				if op.Append {
					rep.Appends++
					return
				}
				if res.Origin != "" {
					rep.OriginMix[res.Origin]++
					if c, ok := r.origins[res.Origin]; ok {
						c.Inc()
					}
				}
				if res.Partial {
					r.partials.Inc()
					rep.Partials++
				}
			}
		}(op)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	if wall > 0 {
		rep.ThroughputOpsS = float64(rep.Completed) / wall
	}
	rep.LatencyMS = LatencyQuantiles{
		P50: lat.Quantile(0.50) * 1000,
		P95: lat.Quantile(0.95) * 1000,
		P99: lat.Quantile(0.99) * 1000,
	}
	if rep.Offered > 0 {
		rep.ShedRate = float64(rep.Shed+rep.ClientShed) / float64(rep.Offered)
	}
	if rep.Completed > 0 {
		rep.PartialRate = float64(rep.Partials) / float64(rep.Completed)
	}
	return rep, nil
}
