// Package cache implements the cross-query Group By result cache: a
// concurrency-safe store of materialized Group By results, keyed by
// (base-table name, base-table version, grouping column set, aggregate list),
// that survives across queries. It is the repeated-workload extension of the
// paper's per-batch temp tables — instead of dying at the end of one
// multi-query optimization, small intermediates are retained and answer
// later queries, either exactly or by re-aggregation from a cached lattice
// ancestor (any entry whose grouping columns are a superset of the query's).
//
// Admission is cost-based: an entry is admitted with an estimated benefit —
// the plan cost a future hit saves versus recomputing from the base relation
// — amortized over the observed demand for its key. Eviction is LRU-W by
// benefit-per-byte: when the byte budget is exceeded, the entries with the
// lowest benefit·uses/bytes score go first, ties broken toward the least
// recently used. Base-table mutation bumps the version held in the catalog;
// entries keyed to older versions can never match again and are swept by
// InvalidateBelow.
//
// Concurrency: an RWMutex guards the entry map (lookups take the read lock;
// per-entry usage counters are atomics), and an embedded singleflight group
// lets callers collapse concurrent identical computations so each key is
// computed once per stampede.
package cache

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"gbmqo/internal/colset"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// Key identifies one cacheable Group By result.
type Key struct {
	// Table is the base relation's catalog name.
	Table string
	// Version is the base relation's catalog version when the result was
	// computed; a mutated (re-registered) table gets a new version, so stale
	// entries can never be returned.
	Version uint64
	// Delta is the append-epoch minor counter within Version: each streaming
	// append bumps it. Entries at an older delta are not served directly, but
	// unlike a version bump they are candidates for roll-forward (Refresh)
	// rather than unconditional invalidation.
	Delta uint64
	// Set is the grouping column set (base-table ordinals).
	Set colset.Set
	// AggSig is the canonical signature of the aggregate list the cached
	// table carries (see AggSignature).
	AggSig string
}

// String renders the key (also the singleflight key for this result).
func (k Key) String() string {
	return fmt.Sprintf("%s@v%d.%d|%s|%s", k.Table, k.Version, k.Delta, k.Set, k.AggSig)
}

// KeyOf builds the key for a query's grouping set and aggregate list at an
// append epoch (version major, delta minor).
func KeyOf(tableName string, version, delta uint64, set colset.Set, aggs []exec.Agg) Key {
	return Key{Table: tableName, Version: version, Delta: delta, Set: set, AggSig: AggSignature(aggs)}
}

// AggSignature canonicalizes an aggregate list: kind, source ordinal and
// output name per aggregate, order-sensitive. COUNT(*) ignores its source
// column, so it is normalized out of the signature.
func AggSignature(aggs []exec.Agg) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		col := a.Col
		if a.Kind == exec.AggCountStar {
			col = -1
		}
		parts[i] = fmt.Sprintf("%d:%d:%s", a.Kind, col, a.Name)
	}
	return strings.Join(parts, ",")
}

// Rollupable reports whether every aggregate in the list can be re-aggregated
// through a materialized intermediate (AVG cannot: the average of averages is
// wrong, and exec.Agg.Rollup panics on it).
func Rollupable(aggs []exec.Agg) bool {
	for _, a := range aggs {
		if a.Kind == exec.AggAvg {
			return false
		}
	}
	return true
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	// Hits counts exact-key lookups answered from the cache.
	Hits int64
	// AncestorHits counts queries answered by re-aggregating a cached
	// superset entry (recorded by the engine via TouchAncestor).
	AncestorHits int64
	// Misses counts lookups that found nothing usable (recorded by the
	// engine via NoteMiss, after the ancestor search also failed).
	Misses int64
	// Admissions and Rejections count Offer outcomes.
	Admissions int64
	Rejections int64
	// Evictions counts entries displaced by admission pressure or ShrinkTo.
	Evictions int64
	// Invalidations counts entries swept because their table version went
	// stale.
	Invalidations int64
	// Refreshes counts entries rolled forward in place to a new append epoch
	// by delta maintenance instead of being invalidated.
	Refreshes int64
	// Corruptions counts hits whose stored checksum no longer matched the
	// entry's bytes; each one evicted and quarantined the entry instead of
	// serving a corrupt result.
	Corruptions int64
	// FlightLeads counts singleflight computations executed; FlightShared
	// counts callers that piggybacked on another caller's computation.
	FlightLeads  int64
	FlightShared int64
	// Bytes and Entries describe current residency.
	Bytes   int64
	Entries int
}

// Config tunes a Cache.
type Config struct {
	// MaxBytes is the byte budget for resident entries (required, > 0).
	MaxBytes int64
	// MinBenefitPerByte rejects candidates whose amortized benefit density
	// falls below this floor (0 admits everything that fits).
	MinBenefitPerByte float64
}

// entry is one cached result.
type entry struct {
	key     Key
	aggs    []exec.Agg
	tbl     *table.Table
	bytes   int64
	benefit float64 // estimated plan cost one exact hit saves vs base
	sum     uint64  // FNV-64a over schema + row image, fixed at admission

	uses     atomic.Int64  // demanded-or-hit count, the W in LRU-W
	lastUsed atomic.Uint64 // logical clock of the last touch
}

// score is the eviction priority: benefit per byte, amortized over observed
// demand. Higher scores survive longer.
func (e *entry) score() float64 {
	uses := e.uses.Load()
	if uses < 1 {
		uses = 1
	}
	b := e.bytes
	if b < 1 {
		b = 1
	}
	return e.benefit * float64(uses) / float64(b)
}

// demandCap bounds the miss-frequency map; past it the counts reset, making
// observed frequency approximate instead of unbounded state.
const demandCap = 1 << 16

// Cache is the concurrency-safe cross-query result cache.
type Cache struct {
	cfg Config

	mu      sync.RWMutex
	entries map[Key]*entry
	bytes   int64

	// quarantined marks keys whose entries failed checksum verification;
	// they are never re-admitted (whatever produced the corruption — a stray
	// write through a shared slice, a buggy operator — would poison the same
	// bytes again). Guarded by mu.
	quarantined map[Key]bool

	dmu    sync.Mutex
	demand map[Key]int64 // requests seen for not-yet-cached keys

	clock atomic.Uint64

	hits, ancHits, misses          atomic.Int64
	admissions, rejections         atomic.Int64
	evictions, invalidations       atomic.Int64
	refreshes                      atomic.Int64
	corruptions                    atomic.Int64
	flightLeads, flightSharedCalls atomic.Int64

	flight flightGroup
}

// New creates a cache with the given configuration.
func New(cfg Config) *Cache {
	return &Cache{
		cfg:         cfg,
		entries:     make(map[Key]*entry),
		quarantined: make(map[Key]bool),
		demand:      make(map[Key]int64),
	}
}

// MaxBytes returns the configured byte budget.
func (c *Cache) MaxBytes() int64 { return c.cfg.MaxBytes }

// Get returns the cached table for an exact key, recording demand either way.
// The entry's checksum is verified before it is served: a mismatch evicts and
// quarantines the key, bumps Stats.Corruptions, and reports a miss — a
// corrupt result is never returned.
func (c *Cache) Get(key Key) (*table.Table, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e == nil {
		c.bumpDemand(key)
		return nil, false
	}
	if checksumTable(e.tbl) != e.sum {
		c.quarantine(key, e)
		return nil, false
	}
	e.uses.Add(1)
	e.lastUsed.Store(c.clock.Add(1))
	c.hits.Add(1)
	return e.tbl, true
}

// quarantine handles a checksum mismatch detected on key's entry: evict it,
// permanently bar the key from re-admission, and count the corruption. The
// entry is re-checked under the write lock so two concurrent detections count
// once.
func (c *Cache) quarantine(key Key, e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[key] != e {
		return // already evicted by a concurrent detection or invalidation
	}
	c.evictLocked(e)
	c.quarantined[key] = true
	c.corruptions.Add(1)
}

// checksumTable fingerprints a cached table: FNV-64a over the column names
// and the row-major scan image. The image is built lazily and cached by the
// table, and Offer forces it before admission, so hashing here reads stable
// bytes.
func checksumTable(t *table.Table) uint64 {
	h := fnv.New64a()
	for i := 0; i < t.NumCols(); i++ {
		io.WriteString(h, t.Col(i).Name())
		h.Write([]byte{0})
	}
	img, _ := t.RowImage()
	h.Write(img)
	return h.Sum64()
}

// Ancestor is one lattice-lookup candidate: a cached entry whose grouping
// columns are a superset of the query's and whose aggregate list covers the
// query's, so the query can be answered by re-aggregating its table.
type Ancestor struct {
	Key   Key
	Set   colset.Set
	Table *table.Table
	Aggs  []exec.Agg
}

// Ancestors returns every cached entry that can answer a query over set with
// the given aggregates by re-aggregation: same table and version, a superset
// grouping, and aggregate coverage. The caller (the engine) picks the
// cheapest candidate with its cost model — the paper's compute-from-the-
// smallest-parent rule applied to the cache.
func (c *Cache) Ancestors(tableName string, version, delta uint64, set colset.Set, queryAggs []exec.Agg) []Ancestor {
	if c == nil || !Rollupable(queryAggs) {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Ancestor
	for k, e := range c.entries {
		if k.Table != tableName || k.Version != version || k.Delta != delta {
			continue
		}
		if !set.SubsetOf(k.Set) {
			continue
		}
		if !CoversAggs(e.aggs, queryAggs) {
			continue
		}
		out = append(out, Ancestor{Key: k, Set: k.Set, Table: e.tbl, Aggs: e.aggs})
	}
	return out
}

// CoversAggs reports whether the entry's aggregate list contains every query
// aggregate (same kind, output name, and — except COUNT(*) — source column).
// The append-maintenance path uses it to decide whether one resident entry
// subsumes another when picking the finest ancestors to refresh eagerly.
func CoversAggs(have, want []exec.Agg) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h.Kind == w.Kind && h.Name == w.Name && (w.Kind == exec.AggCountStar || h.Col == w.Col) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TouchAncestor records that an entry answered a query as a lattice ancestor:
// its usage weight and recency bump exactly like an exact hit.
func (c *Cache) TouchAncestor(key Key) {
	if c == nil {
		return
	}
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e == nil {
		return
	}
	e.uses.Add(1)
	e.lastUsed.Store(c.clock.Add(1))
	c.ancHits.Add(1)
}

// NoteMiss records that a query found neither an exact entry nor a usable
// ancestor.
func (c *Cache) NoteMiss() {
	if c == nil {
		return
	}
	c.misses.Add(1)
}

// Offer submits a computed result for admission. The decision is cost-based:
// the candidate's score is its benefit (estimated plan cost one future exact
// hit saves) amortized over the demand observed for its key, per byte. It is
// admitted when it fits the byte budget after evicting only strictly
// lower-scored entries; a candidate that would require evicting
// better-than-itself entries is rejected. Returns whether it was admitted.
//
// The table's lazy row-major scan image is forced here, outside the lock:
// cached tables are shared by concurrent queries, and the image must never be
// built by two readers at once.
func (c *Cache) Offer(key Key, aggs []exec.Agg, t *table.Table, benefit float64) bool {
	if c == nil || t == nil {
		return false
	}
	exec.Testing.Fire("cache.admit")
	t.RowImage()
	sum := checksumTable(t)
	bytes := t.MemSize()
	if bytes < 1 {
		bytes = 1
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.quarantined[key] {
		c.rejections.Add(1)
		return false
	}
	if _, exists := c.entries[key]; exists {
		return false
	}
	if bytes > c.cfg.MaxBytes {
		c.rejections.Add(1)
		return false
	}
	uses := c.takeDemand(key)
	if uses < 1 {
		uses = 1
	}
	score := benefit * float64(uses) / float64(bytes)
	if score < c.cfg.MinBenefitPerByte {
		c.rejections.Add(1)
		return false
	}
	for c.bytes+bytes > c.cfg.MaxBytes {
		victim := c.victimLocked()
		if victim == nil || victim.score() >= score {
			c.rejections.Add(1)
			return false
		}
		c.evictLocked(victim)
		c.evictions.Add(1)
	}
	e := &entry{key: key, aggs: append([]exec.Agg(nil), aggs...), tbl: t, bytes: bytes, benefit: benefit, sum: sum}
	e.uses.Store(uses)
	e.lastUsed.Store(c.clock.Add(1))
	c.entries[key] = e
	c.bytes += bytes
	c.admissions.Add(1)
	return true
}

// victimLocked returns the entry with the lowest score, ties broken toward
// the least recently used (the LRU-W order). Callers hold c.mu.
func (c *Cache) victimLocked() *entry {
	var victim *entry
	var vScore float64
	for _, e := range c.entries {
		s := e.score()
		if victim == nil || s < vScore ||
			(s == vScore && e.lastUsed.Load() < victim.lastUsed.Load()) {
			victim, vScore = e, s
		}
	}
	return victim
}

// evictLocked removes one entry. Callers hold c.mu and count the eviction.
func (c *Cache) evictLocked(e *entry) {
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

// ShrinkTo evicts lowest-scored entries until residency is at most maxBytes,
// returning the bytes freed. The engine calls it before running under a
// memory budget so the cache yields memory before operators must degrade.
func (c *Cache) ShrinkTo(maxBytes int64) int64 {
	if c == nil {
		return 0
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	freed := int64(0)
	for c.bytes > maxBytes {
		victim := c.victimLocked()
		if victim == nil {
			break
		}
		c.evictLocked(victim)
		c.evictions.Add(1)
		freed += victim.bytes
	}
	return freed
}

// InvalidateBelow sweeps every entry of the table whose epoch differs from
// (version, delta) — a mutated base relation invalidates all dependent
// results, and append maintenance sweeps the old-epoch leftovers it chose not
// to (or failed to) roll forward. Returns the number of entries removed.
func (c *Cache) InvalidateBelow(tableName string, version, delta uint64) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, e := range c.entries {
		if k.Table == tableName && (k.Version != version || k.Delta != delta) {
			c.evictLocked(e)
			c.invalidations.Add(1)
			n++
		}
	}
	return n
}

// Resident describes one resident entry of a table at a given epoch, with
// everything append maintenance needs to decide refresh vs. drop: the full
// key, grouping set, aggregate list, and the cached table itself.
type Resident struct {
	Key   Key
	Set   colset.Set
	Aggs  []exec.Agg
	Table *table.Table
}

// ResidentsAt lists the entries of tableName at exactly (version, delta).
// The append path calls it with the pre-append epoch to find the entries
// eligible for roll-forward.
func (c *Cache) ResidentsAt(tableName string, version, delta uint64) []Resident {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Resident
	for k, e := range c.entries {
		if k.Table == tableName && k.Version == version && k.Delta == delta {
			out = append(out, Resident{Key: k, Set: k.Set, Aggs: e.aggs, Table: e.tbl})
		}
	}
	return out
}

// Invalidate removes one entry by exact key, reporting whether it was
// resident. Append maintenance uses it for targeted invalidation of
// non-mergeable entries (AVG) and of entries it deliberately leaves to lazy
// re-derivation.
func (c *Cache) Invalidate(key Key) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.evictLocked(e)
	c.invalidations.Add(1)
	return true
}

// Refresh replaces the entry at oldKey with a rolled-forward table under
// newKey, preserving the entry's benefit, observed usage weight and recency —
// the entry is the *same* result advanced one append epoch, so its eviction
// standing carries over. The table's scan image is forced and re-checksummed
// (the merged table is new bytes). If the refreshed entry grew past the byte
// budget, strictly lower-scored entries are evicted to make room, exactly as
// in Offer; if room cannot be made, the old entry is dropped and the refresh
// reported as false (the caller falls back to invalidation semantics — the
// sweep has nothing left to do either way). A quarantined newKey is never
// admitted.
func (c *Cache) Refresh(oldKey, newKey Key, t *table.Table) bool {
	if c == nil || t == nil {
		return false
	}
	exec.Testing.Fire("cache.refresh")
	t.RowImage()
	sum := checksumTable(t)
	bytes := t.MemSize()
	if bytes < 1 {
		bytes = 1
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.entries[oldKey]
	if !ok {
		return false
	}
	c.evictLocked(old)
	if c.quarantined[newKey] {
		c.invalidations.Add(1)
		return false
	}
	if _, exists := c.entries[newKey]; exists {
		// Someone already computed the new epoch directly; keep theirs.
		c.invalidations.Add(1)
		return false
	}
	if bytes > c.cfg.MaxBytes {
		c.invalidations.Add(1)
		return false
	}
	score := old.benefit * float64(max64(old.uses.Load(), 1)) / float64(bytes)
	for c.bytes+bytes > c.cfg.MaxBytes {
		victim := c.victimLocked()
		if victim == nil || victim.score() >= score {
			c.invalidations.Add(1)
			return false
		}
		c.evictLocked(victim)
		c.evictions.Add(1)
	}
	e := &entry{key: newKey, aggs: old.aggs, tbl: t, bytes: bytes, benefit: old.benefit, sum: sum}
	e.uses.Store(old.uses.Load())
	e.lastUsed.Store(c.clock.Add(1))
	c.entries[newKey] = e
	c.bytes += bytes
	c.refreshes.Add(1)
	return true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// DropTable removes every entry of the named table regardless of version.
func (c *Cache) DropTable(tableName string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if k.Table == tableName {
			c.evictLocked(e)
			c.invalidations.Add(1)
		}
	}
}

// Bytes returns current residency.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Snapshot returns a point-in-time view of the counters and residency.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.RLock()
	bytes, entries := c.bytes, len(c.entries)
	c.mu.RUnlock()
	return Stats{
		Hits:          c.hits.Load(),
		AncestorHits:  c.ancHits.Load(),
		Misses:        c.misses.Load(),
		Admissions:    c.admissions.Load(),
		Rejections:    c.rejections.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Refreshes:     c.refreshes.Load(),
		Corruptions:   c.corruptions.Load(),
		FlightLeads:   c.flightLeads.Load(),
		FlightShared:  c.flightSharedCalls.Load(),
		Bytes:         bytes,
		Entries:       entries,
	}
}

// Do collapses concurrent identical computations: the first caller for key
// runs fn, concurrent callers for the same key wait and share the outcome.
func (c *Cache) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	val, err, shared = c.flight.do(key, fn)
	if shared {
		c.flightSharedCalls.Add(1)
	} else {
		c.flightLeads.Add(1)
	}
	return val, err, shared
}

// bumpDemand records a request for a not-yet-cached key; the count weights
// the key's admission score when its result is later offered.
func (c *Cache) bumpDemand(key Key) {
	c.dmu.Lock()
	if len(c.demand) >= demandCap {
		c.demand = make(map[Key]int64) // approximate: reset rather than grow unbounded
	}
	c.demand[key]++
	c.dmu.Unlock()
}

// takeDemand consumes the demand count observed for a key.
func (c *Cache) takeDemand(key Key) int64 {
	c.dmu.Lock()
	n := c.demand[key]
	delete(c.demand, key)
	c.dmu.Unlock()
	return n
}
