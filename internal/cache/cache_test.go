package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// testTable builds a tiny two-column table; same rows → same MemSize, so
// admission arithmetic in the tests is deterministic.
func testTable(name string, rows int) *table.Table {
	tb := table.New(name, []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "cnt", Typ: table.TInt64},
	})
	for i := 0; i < rows; i++ {
		tb.AppendRow(table.Int(int64(i%7)), table.Int(1))
	}
	return tb
}

func countStar() []exec.Agg { return []exec.Agg{exec.CountStar()} }

// entrySize is the resident size of a testTable entry: Offer forces the
// row-major scan image, which MemSize then includes.
func entrySize(rows int) int64 {
	tb := testTable("x", rows)
	tb.RowImage()
	return tb.MemSize()
}

func TestAggSignature(t *testing.T) {
	star := exec.Agg{Kind: exec.AggCountStar, Col: 3, Name: "cnt"}
	star2 := exec.Agg{Kind: exec.AggCountStar, Col: 9, Name: "cnt"}
	if AggSignature([]exec.Agg{star}) != AggSignature([]exec.Agg{star2}) {
		t.Fatal("COUNT(*) signature must ignore the source column")
	}
	sum := exec.Agg{Kind: exec.AggSum, Col: 3, Name: "s"}
	sumOther := exec.Agg{Kind: exec.AggSum, Col: 4, Name: "s"}
	if AggSignature([]exec.Agg{sum}) == AggSignature([]exec.Agg{sumOther}) {
		t.Fatal("SUM signature must distinguish source columns")
	}
	if AggSignature([]exec.Agg{star, sum}) == AggSignature([]exec.Agg{sum, star}) {
		t.Fatal("signature must be order-sensitive")
	}
}

func TestRollupable(t *testing.T) {
	if !Rollupable([]exec.Agg{exec.CountStar(), {Kind: exec.AggSum, Col: 1, Name: "s"}}) {
		t.Fatal("COUNT(*)+SUM should be rollupable")
	}
	if Rollupable([]exec.Agg{{Kind: exec.AggAvg, Col: 1, Name: "a"}}) {
		t.Fatal("AVG must not be rollupable")
	}
}

func TestExactHit(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	tbl := testTable("t1", 10)
	key := KeyOf("base", 1, 0, colset.Of(0), countStar())
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Offer(key, countStar(), tbl, 100) {
		t.Fatal("offer rejected with ample budget")
	}
	got, ok := c.Get(key)
	if !ok || got != tbl {
		t.Fatalf("Get = %v, %v; want the offered table", got, ok)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 0 || st.Admissions != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != tbl.MemSize() {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, tbl.MemSize())
	}
	// A different version is a different key.
	if _, ok := c.Get(KeyOf("base", 2, 0, colset.Of(0), countStar())); ok {
		t.Fatal("hit across table versions")
	}
}

func TestOfferRejectsOversizeAndDuplicates(t *testing.T) {
	tbl := testTable("t1", 100)
	tbl.RowImage()
	c := New(Config{MaxBytes: tbl.MemSize() - 1})
	key := KeyOf("base", 1, 0, colset.Of(0), countStar())
	if c.Offer(key, countStar(), tbl, 100) {
		t.Fatal("admitted a table larger than the whole budget")
	}
	c = New(Config{MaxBytes: 1 << 20})
	if !c.Offer(key, countStar(), tbl, 100) {
		t.Fatal("first offer rejected")
	}
	if c.Offer(key, countStar(), testTable("t2", 100), 100) {
		t.Fatal("duplicate key admitted twice")
	}
}

func TestEvictionIsBenefitPerByteOrdered(t *testing.T) {
	size := entrySize(50)
	c := New(Config{MaxBytes: 2 * size})
	keyOf := func(i int) Key { return KeyOf("base", 1, 0, colset.Of(i), countStar()) }
	if !c.Offer(keyOf(0), countStar(), testTable("a", 50), 10) {
		t.Fatal("offer a")
	}
	if !c.Offer(keyOf(1), countStar(), testTable("b", 50), 20) {
		t.Fatal("offer b")
	}
	// Higher-benefit candidate evicts the lowest-scored entry (a).
	if !c.Offer(keyOf(2), countStar(), testTable("c", 50), 30) {
		t.Fatal("offer c rejected; should evict a")
	}
	if _, ok := c.Get(keyOf(0)); ok {
		t.Fatal("lowest-score entry survived eviction")
	}
	if _, ok := c.Get(keyOf(1)); !ok {
		t.Fatal("higher-score entry was evicted")
	}
	// A candidate scoring below every resident entry is rejected, not admitted
	// by evicting better entries.
	if c.Offer(keyOf(3), countStar(), testTable("d", 50), 1) {
		t.Fatal("low-benefit candidate displaced better entries")
	}
	st := c.Snapshot()
	if st.Evictions != 1 || st.Rejections == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDemandWeightsAdmission(t *testing.T) {
	size := entrySize(50)
	c := New(Config{MaxBytes: 2 * size})
	hot := KeyOf("base", 1, 0, colset.Of(0), countStar())
	cold1 := KeyOf("base", 1, 0, colset.Of(1), countStar())
	cold2 := KeyOf("base", 1, 0, colset.Of(2), countStar())
	c.Offer(cold1, countStar(), testTable("c1", 50), 10)
	c.Offer(cold2, countStar(), testTable("c2", 50), 10)
	// Three unanswered requests for hot: its demand weight amortizes the same
	// benefit over observed frequency, beating the cold entries.
	for i := 0; i < 3; i++ {
		c.Get(hot)
	}
	if !c.Offer(hot, countStar(), testTable("h", 50), 10) {
		t.Fatal("demanded key lost admission to equal-benefit cold entries")
	}
	if _, ok := c.Get(hot); !ok {
		t.Fatal("hot entry missing after admission")
	}
}

func TestAncestors(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	aggs := []exec.Agg{exec.CountStar(), {Kind: exec.AggSum, Col: 1, Name: "s"}}
	super := colset.Of(0, 1, 2)
	key := KeyOf("base", 1, 0, super, aggs)
	tb := table.New("anc", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64}, {Name: "b", Typ: table.TInt64},
		{Name: "c", Typ: table.TInt64}, {Name: "cnt", Typ: table.TInt64},
		{Name: "s", Typ: table.TInt64},
	})
	tb.AppendRow(table.Int(1), table.Int(2), table.Int(3), table.Int(4), table.Int(5))
	if !c.Offer(key, aggs, tb, 100) {
		t.Fatal("offer")
	}

	got := c.Ancestors("base", 1, 0, colset.Of(0, 2), countStar())
	if len(got) != 1 || got[0].Set != super || got[0].Table != tb {
		t.Fatalf("Ancestors = %+v", got)
	}
	if len(c.Ancestors("base", 1, 0, colset.Of(0, 3), countStar())) != 0 {
		t.Fatal("non-subset query matched an ancestor")
	}
	if len(c.Ancestors("base", 2, 0, colset.Of(0), countStar())) != 0 {
		t.Fatal("stale version matched an ancestor")
	}
	if len(c.Ancestors("other", 1, 0, colset.Of(0), countStar())) != 0 {
		t.Fatal("wrong table matched an ancestor")
	}
	if len(c.Ancestors("base", 1, 0, colset.Of(0), []exec.Agg{{Kind: exec.AggMin, Col: 2, Name: "m"}})) != 0 {
		t.Fatal("uncovered aggregate matched an ancestor")
	}
	if len(c.Ancestors("base", 1, 0, colset.Of(0), []exec.Agg{{Kind: exec.AggAvg, Col: 1, Name: "v"}})) != 0 {
		t.Fatal("AVG query must never take the ancestor path")
	}
	c.TouchAncestor(got[0].Key)
	if st := c.Snapshot(); st.AncestorHits != 1 {
		t.Fatalf("AncestorHits = %d", st.AncestorHits)
	}
}

func TestInvalidateBelow(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	c.Offer(KeyOf("base", 1, 0, colset.Of(0), countStar()), countStar(), testTable("a", 10), 10)
	c.Offer(KeyOf("base", 2, 0, colset.Of(1), countStar()), countStar(), testTable("b", 10), 10)
	c.Offer(KeyOf("other", 1, 0, colset.Of(0), countStar()), countStar(), testTable("c", 10), 10)
	if n := c.InvalidateBelow("base", 2, 0); n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after invalidation", c.Len())
	}
	c.DropTable("base")
	if c.Len() != 1 {
		t.Fatalf("Len = %d after DropTable", c.Len())
	}
	if st := c.Snapshot(); st.Invalidations != 2 {
		t.Fatalf("Invalidations = %d", st.Invalidations)
	}
}

func TestShrinkTo(t *testing.T) {
	size := entrySize(50)
	c := New(Config{MaxBytes: 4 * size})
	for i := 0; i < 4; i++ {
		c.Offer(KeyOf("base", 1, 0, colset.Of(i), countStar()), countStar(),
			testTable(fmt.Sprintf("t%d", i), 50), float64(10*(i+1)))
	}
	freed := c.ShrinkTo(2 * size)
	if freed != 2*size {
		t.Fatalf("freed %d bytes, want %d", freed, 2*size)
	}
	if c.Bytes() > 2*size {
		t.Fatalf("Bytes = %d over shrink target", c.Bytes())
	}
	// The two lowest-benefit entries went first.
	for i, wantLive := range []bool{false, false, true, true} {
		_, ok := c.Get(KeyOf("base", 1, 0, colset.Of(i), countStar()))
		if ok != wantLive {
			t.Fatalf("entry %d live = %v, want %v", i, ok, wantLive)
		}
	}
	if c.ShrinkTo(0); c.Len() != 0 {
		t.Fatal("ShrinkTo(0) left entries")
	}
}

func TestDoCollapsesStampede(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	var computes atomic.Int64
	computing := make(chan struct{})
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	shareds := make([]bool, n)
	run := func(i int) {
		defer wg.Done()
		v, err, shared := c.Do("k", func() (any, error) {
			if computes.Add(1) == 1 {
				close(computing)
			}
			<-release // hold the flight open so the other goroutines join it
			return "value", nil
		})
		if err != nil {
			t.Errorf("Do error: %v", err)
		}
		results[i], shareds[i] = v, shared
	}
	wg.Add(1)
	go run(0)
	<-computing // the flight is registered; everyone below must share it
	for i := 1; i < n; i++ {
		wg.Add(1)
		go run(i)
	}
	// Let the followers reach the in-flight call before the leader finishes
	// (the flight stays registered until release closes, so a follower only
	// needs to have called Do by then).
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	leaders := 0
	for i := range results {
		if results[i] != "value" {
			t.Fatalf("result %d = %v", i, results[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	st := c.Snapshot()
	if st.FlightLeads != 1 || st.FlightShared != n-1 {
		t.Fatalf("flight stats = %+v", st)
	}
}

// TestDoPanicPropagatesToLeaderAndWaiters injects a leader panic and checks
// the failure semantics: the panic is recovered into a typed *exec.ExecError
// that both the leader and every waiter receive exactly once — nobody hangs,
// nobody sees a nil value with a nil error, and the process survives.
func TestDoPanicPropagatesToLeaderAndWaiters(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	entered := make(chan struct{})
	finish := make(chan struct{})
	var leaderVal, followerVal any
	var leaderErr, followerErr error
	var followerShared bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		leaderVal, leaderErr, _ = c.Do("k", func() (any, error) {
			close(entered)
			<-finish
			panic("boom")
		})
	}()
	go func() {
		defer wg.Done()
		<-entered
		followerVal, followerErr, followerShared = c.Do("k", func() (any, error) { return "late", nil })
	}()
	// Give the follower a moment to join the in-flight call, then let the
	// leader panic.
	<-entered
	close(finish)
	wg.Wait()
	var ee *exec.ExecError
	if leaderVal != nil || !errors.As(leaderErr, &ee) {
		t.Fatalf("leader got (%v, %v), want (nil, *exec.ExecError)", leaderVal, leaderErr)
	}
	if followerShared {
		// The follower joined the panicking flight: same typed error, no value.
		if followerVal != nil || !errors.As(followerErr, &ee) {
			t.Fatalf("waiter got (%v, %v), want (nil, *exec.ExecError)", followerVal, followerErr)
		}
	} else if followerVal != "late" || followerErr != nil {
		// The follower arrived after cleanup and computed fresh.
		t.Fatalf("post-cleanup follower got (%v, %v)", followerVal, followerErr)
	}
	// The failed flight must not leave a registered call behind: a fresh Do
	// computes immediately.
	v, err, _ := c.Do("k", func() (any, error) { return "fresh", nil })
	if v != "fresh" || err != nil {
		t.Fatalf("Do after failed flight = (%v, %v)", v, err)
	}
}

// TestChecksumDetectsCorruption corrupts a cached entry's bytes in place and
// checks the next exact hit refuses to serve it: miss, eviction, quarantine
// (no re-admission), and a bumped Corruptions counter.
func TestChecksumDetectsCorruption(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	key := KeyOf("t", 1, 0, colset.Of(0), countStar())
	tb := testTable("t_a", 32)
	if !c.Offer(key, countStar(), tb, 100) {
		t.Fatal("offer rejected")
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("clean entry missed")
	}
	// Corrupt the cached row image through the shared table — the failure
	// mode a stray write through a shared slice produces.
	img, _ := tb.RowImage()
	img[0] ^= 0xff

	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry was served")
	}
	st := c.Snapshot()
	if st.Corruptions != 1 || st.Entries != 0 {
		t.Fatalf("stats after corruption = %+v, want 1 corruption, 0 entries", st)
	}
	// A second lookup is a plain miss, counted once.
	if _, ok := c.Get(key); ok {
		t.Fatal("quarantined key hit")
	}
	if st := c.Snapshot(); st.Corruptions != 1 {
		t.Fatalf("corruption double-counted: %+v", st)
	}
	// The quarantined key can never be re-admitted, even with pristine bytes.
	if c.Offer(key, countStar(), testTable("t_a", 32), 100) {
		t.Fatal("quarantined key re-admitted")
	}
	// Other keys are unaffected.
	other := KeyOf("t", 1, 0, colset.Of(1), countStar())
	if !c.Offer(other, countStar(), testTable("t_b", 32), 100) {
		t.Fatal("unrelated key rejected after quarantine")
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(Key{}); ok {
		t.Fatal("nil cache hit")
	}
	if c.Offer(Key{}, countStar(), testTable("t", 1), 1) {
		t.Fatal("nil cache admitted")
	}
	if c.Ancestors("x", 1, 0, colset.Of(0), countStar()) != nil {
		t.Fatal("nil cache ancestors")
	}
	c.NoteMiss()
	c.TouchAncestor(Key{})
	c.ShrinkTo(0)
	c.InvalidateBelow("x", 1, 0)
	c.DropTable("x")
	if c.Bytes() != 0 || c.Len() != 0 {
		t.Fatal("nil cache residency")
	}
	if (c.Snapshot() != Stats{}) {
		t.Fatal("nil cache stats")
	}
}
