package cache

import (
	"fmt"
	"sort"

	"gbmqo/internal/colset"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// This file is the cache's durability surface: a manifest describing the hot
// resident entries (keys, admission-time checksums, and eviction standing) so
// a restarted process can rewarm the lattice cache and then *verify* each
// recomputed result against the checksum the pre-crash process stored. A
// mismatch means the recovered base state diverged — the rewarm path routes it
// into the same quarantine the live corruption detector uses.

// ChecksumTable fingerprints a result table exactly as the cache does at
// admission: FNV-64a over the column names (NUL-separated) and the row-major
// scan image. Exported so snapshot verification and manifest rewarm compare
// against the same fingerprint the live cache enforces.
func ChecksumTable(t *table.Table) uint64 {
	return checksumTable(t)
}

// ManifestEntry describes one resident entry for persistence: everything
// needed to recompute it after restart (key + aggregate list) plus the
// checksum it must reproduce and the eviction standing it had earned.
type ManifestEntry struct {
	Table   string     `json:"table"`
	Version uint64     `json:"version"`
	Delta   uint64     `json:"delta"`
	Set     uint64     `json:"set"`
	AggSig  string     `json:"agg_sig"`
	Aggs    []exec.Agg `json:"aggs"`
	// Sum is the entry's checksum rendered as 16 hex digits (uint64 exceeds
	// JSON number precision).
	Sum     string  `json:"sum"`
	Benefit float64 `json:"benefit"`
	Uses    int64   `json:"uses"`
}

// Manifest lists the resident entries, most valuable first by eviction score,
// for persistence alongside a snapshot.
func (c *Cache) Manifest() []ManifestEntry {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ManifestEntry, 0, len(c.entries))
	for k, e := range c.entries {
		out = append(out, ManifestEntry{
			Table:   k.Table,
			Version: k.Version,
			Delta:   k.Delta,
			Set:     uint64(k.Set),
			AggSig:  k.AggSig,
			Aggs:    append([]exec.Agg(nil), e.aggs...),
			Sum:     fmt.Sprintf("%016x", e.sum),
			Benefit: e.benefit,
			Uses:    e.uses.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		si := out[i].Benefit * float64(maxi64(out[i].Uses, 1))
		sj := out[j].Benefit * float64(maxi64(out[j].Uses, 1))
		return si > sj
	})
	return out
}

// Key reconstructs the cache key a manifest entry describes.
func (m ManifestEntry) CacheKey() Key {
	return Key{Table: m.Table, Version: m.Version, Delta: m.Delta,
		Set: colset.Set(m.Set), AggSig: m.AggSig}
}

// SumOf returns the stored admission-time checksum of a resident entry.
func (c *Cache) SumOf(key Key) (uint64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[key]
	if !ok {
		return 0, false
	}
	return e.sum, true
}

// ForceQuarantine evicts key (if resident) and permanently bars it from
// re-admission, counting a corruption. The rewarm path uses it when a
// recomputed entry's checksum contradicts the manifest: the result cannot be
// trusted, so it takes the same one-way door a live checksum mismatch does.
// Returns whether the key was resident when quarantined.
func (c *Cache) ForceQuarantine(key Key) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, resident := c.entries[key]
	if resident {
		c.evictLocked(e)
	}
	c.quarantined[key] = true
	c.corruptions.Add(1)
	return resident
}

// Seed grants a not-yet-cached key advance demand weight, so a rewarm-time
// Offer admits it with the standing it had earned before the restart instead
// of starting from one observed use.
func (c *Cache) Seed(key Key, uses int64) {
	if c == nil || uses <= 0 {
		return
	}
	c.dmu.Lock()
	if len(c.demand) < demandCap {
		c.demand[key] += uses
	}
	c.dmu.Unlock()
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
