package cache

import (
	"fmt"
	"sync"
)

// flightCall is one in-flight computation shared by every caller that asked
// for the same key while it ran.
type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// flightGroup deduplicates concurrent computations by key: the first caller
// (the leader) runs fn, later callers block until the leader finishes and
// share its outcome. Once the call completes the key is forgotten, so a later
// request computes afresh — the cache in front of the group is what makes
// repeated requests cheap, the group only collapses *stampedes*.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// do runs fn once per concurrently-requested key. shared reports whether this
// caller received another caller's result. A panic inside fn is converted to
// an error for the waiters (so none of them blocks forever) and then
// re-raised in the leader, preserving the process's panic semantics.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	normal := false
	defer func() {
		if !normal {
			c.err = fmt.Errorf("cache: in-flight computation for %q panicked", key)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	normal = true
	return c.val, c.err, false
}
