package cache

import (
	"fmt"
	"sync"

	"gbmqo/internal/exec"
)

// flightCall is one in-flight computation shared by every caller that asked
// for the same key while it ran.
type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// flightGroup deduplicates concurrent computations by key: the first caller
// (the leader) runs fn, later callers block until the leader finishes and
// share its outcome. Once the call completes the key is forgotten, so a later
// request computes afresh — the cache in front of the group is what makes
// repeated requests cheap, the group only collapses *stampedes*.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// do runs fn once per concurrently-requested key. shared reports whether this
// caller received another caller's result.
//
// A panic inside fn is recovered into a typed *exec.ExecError that propagates
// to the leader AND every waiter exactly once — nobody blocks forever, nobody
// sees a nil value with a nil error, and the process survives (a flight
// failure is an isolated, transient operator failure, exactly what the engine
// retry loop exists for). The flight is deregistered before delivery, so the
// failed value can never be mistaken for a usable result by a later caller.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	defer func() {
		if pnc := recover(); pnc != nil {
			c.val = nil
			c.err = &exec.ExecError{
				Step: fmt.Sprintf("in-flight computation %q", key),
				Err:  panicErr(pnc),
			}
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		c.wg.Done()
		val, err = c.val, c.err
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// panicErr converts a recovered panic value into an error, preserving error
// panics for errors.Is/As chains.
func panicErr(p any) error {
	if e, ok := p.(error); ok {
		return fmt.Errorf("panic: %w", e)
	}
	return fmt.Errorf("panic: %v", p)
}
