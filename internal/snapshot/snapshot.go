// Package snapshot persists point-in-time table images so recovery replays a
// bounded WAL suffix instead of the whole history. An image is the column
// store's own decomposition — per-column dictionary values in code order plus
// the code vector — captured at a pinned epoch, so the restored table is
// byte-identical to the captured one: same codes, same row image, same
// fingerprint, and therefore the same checksums every rewarmed cache entry
// must reproduce. Files are written atomically (tmp + rename + dir fsync),
// carry a whole-body CRC32C, and the loader falls back to the previous
// snapshot when the newest is torn or corrupt.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

const (
	magic      = "GBSNAP1\x00"
	filePrefix = "snap-"
	fileSuffix = ".gbs"
	// keep is how many most-recent snapshots survive pruning: the newest plus
	// one fallback in case the newest is later found torn.
	keep = 2
	// maxBody bounds a snapshot body a corrupt length header could claim.
	maxBody = 1 << 32
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// TableImage is one table's serialized decomposition at a pinned epoch.
type TableImage struct {
	Name    string
	Version uint64
	Delta   uint64
	Defs    []table.ColumnDef
	// Dicts[i] holds column i's dictionary values in code order; Codes[i] its
	// code vector. Restoring interns Dicts[i] in order, reproducing every code.
	Dicts [][]table.Value
	Codes [][]uint32
	// Fingerprint is Fingerprint() of the source table, recomputed after
	// restore to verify the rebuild.
	Fingerprint uint64
}

// Snapshot is a consistent image of every base table plus the WAL horizon it
// covers: recovery replays only records with sequence > WalSeq.
type Snapshot struct {
	WalSeq uint64
	Tables []TableImage
}

// ImageOf captures a table's decomposition. The caller must hold whatever
// lock serializes appends to this table's lineage — dictionary backing is
// shared across append snapshots, and DictValues reads it. The returned image
// owns copies of the dictionary values; the code slices alias the table's
// backing but their lengths are pinned here, and appends only ever write past
// those lengths.
func ImageOf(t *table.Table, version, delta uint64) TableImage {
	img := TableImage{
		Name:    t.Name(),
		Version: version,
		Delta:   delta,
		Defs:    append([]table.ColumnDef(nil), t.Defs()...),
		Dicts:   make([][]table.Value, t.NumCols()),
		Codes:   make([][]uint32, t.NumCols()),
	}
	for i := 0; i < t.NumCols(); i++ {
		c := t.Col(i)
		img.Dicts[i] = c.DictValues()
		img.Codes[i] = c.Codes()
	}
	img.Fingerprint = fingerprintImage(&img)
	return img
}

// Restore rebuilds the table from its image and verifies the fingerprint.
func Restore(img *TableImage) (*table.Table, error) {
	cols := make([]*table.Column, len(img.Defs))
	for i, def := range img.Defs {
		c, err := table.ColumnFromParts(def, img.Dicts[i], img.Codes[i])
		if err != nil {
			return nil, fmt.Errorf("snapshot: table %q: %w", img.Name, err)
		}
		cols[i] = c
	}
	t := table.FromColumns(img.Name, cols)
	if got := Fingerprint(t); got != img.Fingerprint {
		return nil, fmt.Errorf("snapshot: table %q fingerprint mismatch: restored %016x, stored %016x",
			img.Name, got, img.Fingerprint)
	}
	return t, nil
}

// Fingerprint hashes a table's logical content — column definitions,
// dictionary values in code order, and code vectors — with FNV-64a. It is
// computed from the same decomposition the snapshot stores, so verifying a
// restore needs no row image materialization.
func Fingerprint(t *table.Table) uint64 {
	h := fnv.New64a()
	var tmp [8]byte
	w64 := func(v uint64) { binary.LittleEndian.PutUint64(tmp[:], v); h.Write(tmp[:]) }
	for i := 0; i < t.NumCols(); i++ {
		c := t.Col(i)
		io.WriteString(h, c.Name())
		h.Write([]byte{0, byte(c.Type())})
		for _, v := range c.DictValues() {
			hashValue(h, w64, v)
		}
		h.Write([]byte{0xff})
		for _, code := range c.Codes() {
			binary.LittleEndian.PutUint32(tmp[:4], code)
			h.Write(tmp[:4])
		}
		h.Write([]byte{0xfe})
	}
	return h.Sum64()
}

func fingerprintImage(img *TableImage) uint64 {
	h := fnv.New64a()
	var tmp [8]byte
	w64 := func(v uint64) { binary.LittleEndian.PutUint64(tmp[:], v); h.Write(tmp[:]) }
	for i, def := range img.Defs {
		io.WriteString(h, def.Name)
		h.Write([]byte{0, byte(def.Typ)})
		for _, v := range img.Dicts[i] {
			hashValue(h, w64, v)
		}
		h.Write([]byte{0xff})
		for _, code := range img.Codes[i] {
			binary.LittleEndian.PutUint32(tmp[:4], code)
			h.Write(tmp[:4])
		}
		h.Write([]byte{0xfe})
	}
	return h.Sum64()
}

func hashValue(h io.Writer, w64 func(uint64), v table.Value) {
	switch v.Typ {
	case table.TInt64, table.TDate:
		w64(uint64(v.I))
	case table.TFloat64:
		w64(math.Float64bits(v.F))
	case table.TString:
		io.WriteString(h, v.S)
		h.Write([]byte{0})
	}
}

// Write persists the snapshot atomically as the next ordinal file in dir and
// prunes all but the newest `keep` snapshots. The snapshot.write failpoint
// fires before any byte is written, so an injected crash leaves the previous
// snapshot untouched.
func Write(dir string, s *Snapshot) (string, error) {
	exec.Testing.Fire("snapshot.write")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	ords, err := listOrdinals(dir)
	if err != nil {
		return "", err
	}
	next := uint64(1)
	if len(ords) > 0 {
		next = ords[len(ords)-1] + 1
	}
	body := encodeBody(s)
	buf := make([]byte, 0, len(magic)+8+len(body))
	buf = append(buf, magic...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)

	final := filepath.Join(dir, fileName(next))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	syncDir(dir)
	prune(dir)
	return final, nil
}

// Load reads the newest valid snapshot in dir, falling back to older ones
// when the newest is torn or corrupt (its file is removed so the next writer
// does not stack ordinals on garbage). The returned path lets a caller that
// later finds the snapshot unusable (a failed restore) remove it and call
// Load again for the next-older fallback. Returns (nil, "", nil) when no
// snapshot exists — a cold start, not an error.
func Load(dir string) (*Snapshot, string, error) {
	ords, err := listOrdinals(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	for i := len(ords) - 1; i >= 0; i-- {
		path := filepath.Join(dir, fileName(ords[i]))
		s, err := loadFile(path)
		if err == nil {
			return s, path, nil
		}
		// Corrupt or torn: drop it and fall back.
		os.Remove(path)
	}
	return nil, "", nil
}

func loadFile(path string) (*Snapshot, error) {
	body, err := readBody(path)
	if err != nil {
		return nil, err
	}
	return decodeBody(body)
}

// readBody reads a snapshot file and returns its body after verifying magic,
// length, and CRC.
func readBody(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+8 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: %s: bad magic", path)
	}
	n := binary.LittleEndian.Uint32(data[len(magic) : len(magic)+4])
	sum := binary.LittleEndian.Uint32(data[len(magic)+4 : len(magic)+8])
	body := data[len(magic)+8:]
	if uint64(n) > maxBody || int(n) != len(body) {
		return nil, fmt.Errorf("snapshot: %s: truncated body (%d of %d bytes)", path, len(body), n)
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("snapshot: %s: body CRC mismatch", path)
	}
	return body, nil
}

// OldestRetainedWalSeq returns the WAL horizon of the oldest intact snapshot
// in dir. Retention keeps older snapshots precisely so recovery can fall back
// when the newest is corrupt or unrestorable — a fallback is only usable if
// its replay suffix survives, so WAL pruning must not pass this horizon.
// ok is false when no intact snapshot exists. A corrupt file constrains
// nothing (Load would discard it) and is skipped.
func OldestRetainedWalSeq(dir string) (seq uint64, ok bool) {
	ords, err := listOrdinals(dir)
	if err != nil {
		return 0, false
	}
	for _, ord := range ords {
		body, err := readBody(filepath.Join(dir, fileName(ord)))
		if err != nil {
			continue
		}
		v, n := binary.Uvarint(body)
		if n <= 0 {
			continue
		}
		return v, true
	}
	return 0, false
}

func fileName(ord uint64) string {
	return fmt.Sprintf("%s%020d%s", filePrefix, ord, fileSuffix)
}

func listOrdinals(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ords []uint64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix), 10, 64)
		if err != nil {
			continue
		}
		ords = append(ords, n)
	}
	sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
	return ords, nil
}

func prune(dir string) {
	ords, err := listOrdinals(dir)
	if err != nil || len(ords) <= keep {
		return
	}
	for _, ord := range ords[:len(ords)-keep] {
		os.Remove(filepath.Join(dir, fileName(ord)))
	}
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
