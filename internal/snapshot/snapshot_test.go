package snapshot

import (
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"gbmqo/internal/table"
)

func buildTable(t *testing.T, name string, rows int) *table.Table {
	t.Helper()
	defs := []table.ColumnDef{
		{Name: "k", Typ: table.TInt64},
		{Name: "s", Typ: table.TString},
		{Name: "f", Typ: table.TFloat64},
		{Name: "d", Typ: table.TDate},
	}
	tb := table.New(name, defs)
	for i := 0; i < rows; i++ {
		row := []table.Value{
			table.Int(int64(i % 7)),
			table.Str("grp" + string(rune('a'+i%5))),
			table.Float(float64(i) * 0.25),
			table.Date(int64(20260100 + i%30)),
		}
		if i%11 == 0 {
			row[1] = table.Null(table.TString)
		}
		tb.AppendRow(row...)
	}
	return tb
}

// rowBytes mirrors the cache's checksum surface: names + row image.
func rowBytes(t *testing.T, tb *table.Table) uint64 {
	t.Helper()
	h := fnv.New64a()
	for i := 0; i < tb.NumCols(); i++ {
		h.Write([]byte(tb.Col(i).Name()))
		h.Write([]byte{0})
	}
	img, _ := tb.RowImage()
	h.Write(img)
	return h.Sum64()
}

func TestImageRestoreRoundTrip(t *testing.T) {
	src := buildTable(t, "lineitem", 200)
	img := ImageOf(src, 3, 7)
	got, err := Restore(&img)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != src.NumRows() || got.NumCols() != src.NumCols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", got.NumRows(), got.NumCols(), src.NumRows(), src.NumCols())
	}
	if rowBytes(t, got) != rowBytes(t, src) {
		t.Fatal("restored table is not byte-identical to source")
	}
	if Fingerprint(got) != img.Fingerprint {
		t.Fatal("restored fingerprint diverges from stored")
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := buildTable(t, "lineitem", 150)
	s := &Snapshot{WalSeq: 42, Tables: []TableImage{ImageOf(src, 2, 5)}}
	if _, err := Write(dir, s); err != nil {
		t.Fatal(err)
	}
	got, _, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.WalSeq != 42 || len(got.Tables) != 1 {
		t.Fatalf("loaded %+v", got)
	}
	img := got.Tables[0]
	if img.Name != "lineitem" || img.Version != 2 || img.Delta != 5 {
		t.Fatalf("image header %s v%d.%d", img.Name, img.Version, img.Delta)
	}
	tb, err := Restore(&img)
	if err != nil {
		t.Fatal(err)
	}
	if rowBytes(t, tb) != rowBytes(t, src) {
		t.Fatal("loaded+restored table is not byte-identical to source")
	}
}

func TestLoadEmptyDir(t *testing.T) {
	s, _, err := Load(filepath.Join(t.TempDir(), "missing"))
	if err != nil || s != nil {
		t.Fatalf("cold start: s=%v err=%v", s, err)
	}
}

func TestLoadFallsBackOnCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	src := buildTable(t, "t", 50)
	s1 := &Snapshot{WalSeq: 10, Tables: []TableImage{ImageOf(src, 1, 1)}}
	if _, err := Write(dir, s1); err != nil {
		t.Fatal(err)
	}
	src2 := buildTable(t, "t", 80)
	s2 := &Snapshot{WalSeq: 20, Tables: []TableImage{ImageOf(src2, 1, 2)}}
	path2, err := Write(dir, s2)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest: flip a byte inside the body.
	data, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(path2, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, _, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.WalSeq != 10 {
		t.Fatalf("expected fallback to walSeq 10, got %+v", got)
	}
	if _, err := os.Stat(path2); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot not removed")
	}
}

func TestPruneKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	src := buildTable(t, "t", 10)
	for i := 0; i < 5; i++ {
		s := &Snapshot{WalSeq: uint64(i + 1), Tables: []TableImage{ImageOf(src, 1, uint64(i))}}
		if _, err := Write(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	ords, err := listOrdinals(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ords) != keep {
		t.Fatalf("pruning kept %d snapshots, want %d", len(ords), keep)
	}
	got, _, err := Load(dir)
	if err != nil || got == nil || got.WalSeq != 5 {
		t.Fatalf("newest after prune: %+v err=%v", got, err)
	}
}

func TestTruncatedFileFallsBack(t *testing.T) {
	dir := t.TempDir()
	src := buildTable(t, "t", 60)
	if _, err := Write(dir, &Snapshot{WalSeq: 1, Tables: []TableImage{ImageOf(src, 1, 0)}}); err != nil {
		t.Fatal(err)
	}
	path2, err := Write(dir, &Snapshot{WalSeq: 2, Tables: []TableImage{ImageOf(src, 1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path2)
	if err := os.WriteFile(path2, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := Load(dir)
	if err != nil || got == nil || got.WalSeq != 1 {
		t.Fatalf("torn newest should fall back: %+v err=%v", got, err)
	}
}
