package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"

	"gbmqo/internal/table"
)

// Body layout (everything after magic + length + CRC):
//
//	uvarint walSeq
//	uvarint ntables
//	per table:
//	  uvarint len(name), name
//	  uvarint version, uvarint delta
//	  uvarint ncols
//	  per column:
//	    uvarint len(colName), colName
//	    1B type
//	    uvarint ndict, then each dictionary value (type-directed, non-null:
//	      8B LE for int64/date/float64 bits, uvarint len + bytes for string)
//	    uvarint ncodes, then 4B LE per code
//	  8B LE fingerprint

func encodeBody(s *Snapshot) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	uv(s.WalSeq)
	uv(uint64(len(s.Tables)))
	for ti := range s.Tables {
		img := &s.Tables[ti]
		uv(uint64(len(img.Name)))
		buf = append(buf, img.Name...)
		uv(img.Version)
		uv(img.Delta)
		uv(uint64(len(img.Defs)))
		for ci, def := range img.Defs {
			uv(uint64(len(def.Name)))
			buf = append(buf, def.Name...)
			buf = append(buf, byte(def.Typ))
			uv(uint64(len(img.Dicts[ci])))
			for _, v := range img.Dicts[ci] {
				switch def.Typ {
				case table.TInt64, table.TDate:
					w64(uint64(v.I))
				case table.TFloat64:
					w64(math.Float64bits(v.F))
				case table.TString:
					uv(uint64(len(v.S)))
					buf = append(buf, v.S...)
				}
			}
			uv(uint64(len(img.Codes[ci])))
			for _, code := range img.Codes[ci] {
				binary.LittleEndian.PutUint32(tmp[:4], code)
				buf = append(buf, tmp[:4]...)
			}
		}
		w64(img.Fingerprint)
	}
	return buf
}

type bodyReader struct {
	buf []byte
	off int
}

func (r *bodyReader) uv() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("snapshot: truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *bodyReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, fmt.Errorf("snapshot: truncated field at offset %d (want %d bytes)", r.off, n)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *bodyReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// maxElems bounds any single decoded count so a corrupt-but-CRC-valid body
// cannot drive an absurd allocation.
const maxElems = 1 << 31

func decodeBody(buf []byte) (*Snapshot, error) {
	r := &bodyReader{buf: buf}
	s := &Snapshot{}
	var err error
	if s.WalSeq, err = r.uv(); err != nil {
		return nil, err
	}
	ntables, err := r.uv()
	if err != nil {
		return nil, err
	}
	if ntables > maxElems {
		return nil, fmt.Errorf("snapshot: body claims %d tables", ntables)
	}
	s.Tables = make([]TableImage, ntables)
	for ti := range s.Tables {
		img := &s.Tables[ti]
		nameLen, err := r.uv()
		if err != nil {
			return nil, err
		}
		name, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		img.Name = string(name)
		if img.Version, err = r.uv(); err != nil {
			return nil, err
		}
		if img.Delta, err = r.uv(); err != nil {
			return nil, err
		}
		ncols, err := r.uv()
		if err != nil {
			return nil, err
		}
		if ncols > maxElems {
			return nil, fmt.Errorf("snapshot: table %q claims %d columns", img.Name, ncols)
		}
		img.Defs = make([]table.ColumnDef, ncols)
		img.Dicts = make([][]table.Value, ncols)
		img.Codes = make([][]uint32, ncols)
		for ci := range img.Defs {
			colLen, err := r.uv()
			if err != nil {
				return nil, err
			}
			colName, err := r.bytes(int(colLen))
			if err != nil {
				return nil, err
			}
			tb, err := r.bytes(1)
			if err != nil {
				return nil, err
			}
			typ := table.Type(tb[0])
			if typ > table.TDate {
				return nil, fmt.Errorf("snapshot: column %q has unknown type %d", colName, typ)
			}
			img.Defs[ci] = table.ColumnDef{Name: string(colName), Typ: typ}
			ndict, err := r.uv()
			if err != nil {
				return nil, err
			}
			if ndict > maxElems {
				return nil, fmt.Errorf("snapshot: column %q claims %d dict values", colName, ndict)
			}
			dict := make([]table.Value, ndict)
			for di := range dict {
				switch typ {
				case table.TInt64:
					v, err := r.u64()
					if err != nil {
						return nil, err
					}
					dict[di] = table.Int(int64(v))
				case table.TDate:
					v, err := r.u64()
					if err != nil {
						return nil, err
					}
					dict[di] = table.Date(int64(v))
				case table.TFloat64:
					v, err := r.u64()
					if err != nil {
						return nil, err
					}
					dict[di] = table.Float(math.Float64frombits(v))
				case table.TString:
					n, err := r.uv()
					if err != nil {
						return nil, err
					}
					sb, err := r.bytes(int(n))
					if err != nil {
						return nil, err
					}
					dict[di] = table.Str(string(sb))
				}
			}
			img.Dicts[ci] = dict
			ncodes, err := r.uv()
			if err != nil {
				return nil, err
			}
			if ncodes > maxElems {
				return nil, fmt.Errorf("snapshot: column %q claims %d codes", colName, ncodes)
			}
			raw, err := r.bytes(int(ncodes) * 4)
			if err != nil {
				return nil, err
			}
			codes := make([]uint32, ncodes)
			for i := range codes {
				codes[i] = binary.LittleEndian.Uint32(raw[i*4:])
			}
			img.Codes[ci] = codes
		}
		if img.Fingerprint, err = r.u64(); err != nil {
			return nil, err
		}
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after body", len(r.buf)-r.off)
	}
	return s, nil
}
