package plan

import (
	"fmt"

	"gbmqo/internal/colset"
)

// SizeFn estimates the materialized size in bytes (or any consistent unit) of
// a Group By node's result.
type SizeFn func(set colset.Set) float64

// Traversal is the per-node execution strategy of §4.4.1: breadth-first
// computes all of a node's children before dropping it; depth-first descends
// into each child's subtree in turn and keeps the node alive throughout.
type Traversal int

// Traversal strategies.
const (
	BreadthFirst Traversal = iota
	DepthFirst
)

// String renders the strategy.
func (t Traversal) String() string {
	if t == BreadthFirst {
		return "BF"
	}
	return "DF"
}

// MinStorage evaluates the paper's recursive formula
//
//	Storage(u) = d(u) + min( Σ_i d(v_i),  max_i Storage(v_i) )
//
// bottom-up over a subtree and records the per-node BF/DF marking that
// attains it. marks may be nil when only the value is needed.
func MinStorage(n *Node, size SizeFn, marks map[*Node]Traversal) float64 {
	d := size(n.Set)
	if len(n.Children) == 0 {
		return d
	}
	sumChildren := 0.0
	maxChild := 0.0
	for _, c := range n.Children {
		sumChildren += size(c.Set)
		if s := MinStorage(c, size, marks); s > maxChild {
			maxChild = s
		}
	}
	bf := d + sumChildren
	df := d + maxChild
	if marks != nil {
		if bf <= df {
			marks[n] = BreadthFirst
		} else {
			marks[n] = DepthFirst
		}
	}
	if bf <= df {
		return bf
	}
	return df
}

// PlanMinStorage evaluates the formula across all sub-plans; sub-plans run
// sequentially, so the plan value is the max over them.
func PlanMinStorage(p *Plan, size SizeFn, marks map[*Node]Traversal) float64 {
	peak := 0.0
	for _, r := range p.Roots {
		if s := MinStorage(r, size, marks); s > peak {
			peak = s
		}
	}
	return peak
}

// ExactMinStorage evaluates the *exact* peak intermediate storage of the
// best per-node BF/DF execution, fixing a blind spot in the paper's §4.4.1
// recursion: the paper's breadth-first term d(u) + Σ d(vᵢ) ignores that
// while child i's subtree is being processed, its not-yet-processed siblings
// are still materialized. The exact recursion is
//
//	P_DF(u) = d(u) + maxᵢ P(vᵢ)
//	P_BF(u) = max( d(u) + maxᵢ (Σ_{j<i, int} d(vⱼ) + d(vᵢ)),     — build phase
//	               maxᵢ (P(vᵢ) + Σ_{j>i, int} d(vⱼ)) )           — drain phase
//	P(u)    = min(P_DF(u), P_BF(u))
//
// where "int" restricts to intermediate children (leaves are transient).
// Schedule uses these markings, so the generated order's simulated peak
// equals this value exactly. MinStorage remains available as the paper's
// original estimate.
func ExactMinStorage(n *Node, size SizeFn, marks map[*Node]Traversal) float64 {
	d := size(n.Set)
	if len(n.Children) == 0 {
		return d
	}
	childPeaks := make([]float64, len(n.Children))
	for i, c := range n.Children {
		childPeaks[i] = ExactMinStorage(c, size, marks)
	}
	intSize := func(c *Node) float64 {
		if c.IsIntermediate() {
			return size(c.Set)
		}
		return 0
	}
	// Depth-first: children processed (and freed) one at a time under u.
	df := 0.0
	for _, p := range childPeaks {
		if p > df {
			df = p
		}
	}
	df += d

	// Breadth-first build phase: children materialize one by one under u.
	build := 0.0
	retained := 0.0
	for _, c := range n.Children {
		if cand := retained + size(c.Set); cand > build {
			build = cand
		}
		retained += intSize(c)
	}
	build += d
	// Drain phase: u dropped; intermediate child i processes its own subtree
	// while later siblings remain materialized (leaf children have nothing to
	// process and contribute only their retained size).
	drain := 0.0
	suffix := 0.0
	for i := len(n.Children) - 1; i >= 0; i-- {
		if n.Children[i].IsIntermediate() {
			if cand := childPeaks[i] + suffix; cand > drain {
				drain = cand
			}
		}
		suffix += intSize(n.Children[i])
	}
	bf := build
	if drain > bf {
		bf = drain
	}

	if marks != nil {
		if bf <= df {
			marks[n] = BreadthFirst
		} else {
			marks[n] = DepthFirst
		}
	}
	if bf <= df {
		return bf
	}
	return df
}

// StepKind distinguishes schedule actions.
type StepKind int

// Schedule step kinds.
const (
	// StepCompute materializes (or, for leaves, emits) Node from Parent.
	StepCompute StepKind = iota
	// StepDrop frees an intermediate temp table.
	StepDrop
)

// Step is one action in an execution schedule.
type Step struct {
	Kind StepKind
	// Node is the plan node acted upon.
	Node *Node
	// Parent is the node Node is computed from; nil means the base relation.
	// Only meaningful for StepCompute.
	Parent *Node
}

// Schedule orders the plan's queries according to the BF/DF marking produced
// by the exact storage recursion, dropping each temp table as soon as all of
// its children have been computed (BF) or fully processed (DF).
func Schedule(p *Plan, size SizeFn) []Step {
	marks := map[*Node]Traversal{}
	for _, r := range p.Roots {
		ExactMinStorage(r, size, marks)
	}
	var steps []Step
	var process func(n *Node)
	process = func(n *Node) {
		if len(n.Children) == 0 {
			return
		}
		if marks[n] == BreadthFirst {
			for _, c := range n.Children {
				steps = append(steps, Step{Kind: StepCompute, Node: c, Parent: n})
			}
			steps = append(steps, Step{Kind: StepDrop, Node: n})
			for _, c := range n.Children {
				process(c)
			}
			return
		}
		for _, c := range n.Children {
			steps = append(steps, Step{Kind: StepCompute, Node: c, Parent: n})
			process(c)
		}
		steps = append(steps, Step{Kind: StepDrop, Node: n})
	}
	for _, r := range p.Roots {
		steps = append(steps, Step{Kind: StepCompute, Node: r, Parent: nil})
		process(r)
	}
	return steps
}

// SimulatePeak replays a schedule and returns the true maximum bytes held by
// intermediate results at any instant. Leaf results are charged transiently
// while being computed (they stream out to the client); intermediates stay
// live until their StepDrop. It errors on malformed schedules (drop before
// compute, double compute, missing drop).
func SimulatePeak(steps []Step, size SizeFn) (float64, error) {
	live := map[colset.Set]float64{}
	cur, peak := 0.0, 0.0
	computed := map[colset.Set]bool{}
	for i, s := range steps {
		switch s.Kind {
		case StepCompute:
			if computed[s.Node.Set] {
				return 0, fmt.Errorf("plan: step %d computes %s twice", i, s.Node.Set)
			}
			computed[s.Node.Set] = true
			if s.Parent != nil && !computed[s.Parent.Set] {
				return 0, fmt.Errorf("plan: step %d computes %s before parent %s", i, s.Node.Set, s.Parent.Set)
			}
			if s.Parent != nil {
				if _, ok := live[s.Parent.Set]; !ok {
					return 0, fmt.Errorf("plan: step %d reads dropped parent %s", i, s.Parent.Set)
				}
			}
			d := size(s.Node.Set)
			if s.Node.IsIntermediate() {
				live[s.Node.Set] = d
				cur += d
				if cur > peak {
					peak = cur
				}
			} else {
				// Transient: charged during production only.
				if cur+d > peak {
					peak = cur + d
				}
			}
		case StepDrop:
			d, ok := live[s.Node.Set]
			if !ok {
				return 0, fmt.Errorf("plan: step %d drops %s which is not live", i, s.Node.Set)
			}
			delete(live, s.Node.Set)
			cur -= d
		default:
			return 0, fmt.Errorf("plan: step %d has unknown kind %d", i, s.Kind)
		}
	}
	if len(live) != 0 {
		return 0, fmt.Errorf("plan: %d intermediates never dropped", len(live))
	}
	return peak, nil
}

// FitsStorageBudget reports whether the plan's minimum intermediate storage
// (per the §4.4.1 recursion) is within the user-specified budget — the §4.4.2
// constrained variant keeps only such plans during search.
func FitsStorageBudget(p *Plan, size SizeFn, budget float64) bool {
	return PlanMinStorage(p, size, nil) <= budget
}
