package plan

import (
	"math/rand"
	"testing"

	"gbmqo/internal/colset"
)

// randomTree builds a random plan tree (each node's set is a superset of its
// children's) with random materialized sizes, for storage-property checks.
func randomTree(r *rand.Rand, depth int, set colset.Set, sizes map[colset.Set]float64, used map[colset.Set]bool) *Node {
	n := NewNode(set, true)
	used[set] = true
	sizes[set] = float64(1 + r.Intn(20))
	if depth == 0 || set.Len() <= 1 {
		return n
	}
	kids := r.Intn(4)
	for i := 0; i < kids; i++ {
		// A random proper subset not used yet.
		var sub colset.Set
		for attempt := 0; attempt < 10; attempt++ {
			var s colset.Set
			set.ForEach(func(c int) {
				if r.Intn(2) == 0 {
					s = s.Add(c)
				}
			})
			if !s.IsEmpty() && s != set && !used[s] {
				sub = s
				break
			}
		}
		if sub.IsEmpty() {
			continue
		}
		n.Children = append(n.Children, randomTree(r, depth-1, sub, sizes, used))
	}
	return n
}

// forcedDFValue evaluates the recursion with depth-first forced at every node
// — which is exactly the peak of the naive depth-first schedule.
func forcedDFValue(n *Node, size SizeFn) float64 {
	d := size(n.Set)
	m := 0.0
	for _, c := range n.Children {
		if v := forcedDFValue(c, size); v > m {
			m = v
		}
	}
	return d + m
}

func dfSchedule(p *Plan) []Step {
	var steps []Step
	var walk func(n, parent *Node)
	walk = func(n, parent *Node) {
		steps = append(steps, Step{Kind: StepCompute, Node: n, Parent: parent})
		for _, c := range n.Children {
			walk(c, n)
		}
		if n.IsIntermediate() {
			steps = append(steps, Step{Kind: StepDrop, Node: n})
		}
	}
	for _, r := range p.Roots {
		walk(r, nil)
	}
	return steps
}

func TestQuickStorageProperties(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		sizes := map[colset.Set]float64{}
		used := map[colset.Set]bool{}
		root := randomTree(r, 3, colset.Range(8), sizes, used)
		p := &Plan{BaseName: "R", Roots: []*Node{root}}
		size := func(s colset.Set) float64 { return sizes[s] }

		// Property 1: the forced-DF recursion value equals the simulated peak
		// of the depth-first schedule exactly (the DF branch of the paper's
		// formula is exact, not approximate).
		dfVal := forcedDFValue(root, size)
		dfPeak, err := SimulatePeak(dfSchedule(p), size)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if dfVal != dfPeak {
			t.Fatalf("trial %d: DF recursion %v != DF simulation %v", trial, dfVal, dfPeak)
		}

		// Property 2: the marked schedule is structurally valid, its simulated
		// peak never exceeds the depth-first baseline, and it equals the
		// exact recursion's prediction precisely.
		sched := Schedule(p, size)
		peak, err := SimulatePeak(sched, size)
		if err != nil {
			t.Fatalf("trial %d: marked schedule invalid: %v", trial, err)
		}
		if peak > dfPeak {
			t.Fatalf("trial %d: marked schedule peak %v exceeds DF baseline %v", trial, peak, dfPeak)
		}
		if exact := ExactMinStorage(root, size, nil); exact != peak {
			t.Fatalf("trial %d: exact recursion %v != simulated peak %v", trial, exact, peak)
		}

		// Property 3: the formula's value is a lower bound for its own
		// schedule only in the DF case; globally it must never exceed the DF
		// value (it minimizes over a superset of choices).
		if v := MinStorage(root, size, nil); v > dfVal {
			t.Fatalf("trial %d: MinStorage %v exceeds forced-DF %v", trial, v, dfVal)
		}
	}
}
