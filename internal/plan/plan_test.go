package plan

import (
	"strings"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/cost"
)

// fakeModel is a deterministic cost.Model for plan tests: base has 1000 rows
// and NDV(set) = 10 · 2^|set|; edge cost = |parent| (+ materialization bytes
// when asked to, so Materialize matters).
type fakeModel struct {
	calls       int
	chargeWrite bool
}

func (m *fakeModel) Name() string { return "fake" }
func (m *fakeModel) Calls() int   { return m.calls }
func (m *fakeModel) ResetCalls()  { m.calls = 0 }

func fakeRows(set colset.Set) float64 { return 10 * float64(int(1)<<uint(set.Len())) }

func (m *fakeModel) EdgeCost(e cost.Edge) float64 {
	m.calls++
	c := 1000.0
	if !e.ParentIsBase {
		c = fakeRows(e.Parent)
	}
	if m.chargeWrite && e.Materialize {
		c += fakeRows(e.V)
	}
	return c
}

func reqSets() []colset.Set {
	return []colset.Set{colset.Of(0), colset.Of(1), colset.Of(2), colset.Of(0, 2)}
}

func TestNaivePlan(t *testing.T) {
	p := Naive("R", []string{"A", "B", "C", "D"}, reqSets())
	if len(p.Roots) != 4 {
		t.Fatalf("naive roots = %d", len(p.Roots))
	}
	if err := p.Validate(reqSets()); err != nil {
		t.Fatalf("naive plan invalid: %v", err)
	}
	m := &fakeModel{}
	// Four edges from base: 4 × 1000.
	if got := p.Cost(m, 1); got != 4000 {
		t.Fatalf("naive cost = %v, want 4000", got)
	}
}

// figure2P2 builds plan P2 from the paper's Figure 2: (AB) materialized
// feeding (A) and (B); (AC) required and materialized feeding (C).
func figure2P2() *Plan {
	ab := NewNode(colset.Of(0, 1), false)
	ab.Children = []*Node{NewNode(colset.Of(0), true), NewNode(colset.Of(1), true)}
	ac := NewNode(colset.Of(0, 2), true)
	ac.Children = []*Node{NewNode(colset.Of(2), true)}
	return &Plan{BaseName: "R", ColNames: []string{"A", "B", "C", "D"}, Roots: []*Node{ab, ac}}
}

func TestFigure2PlanValidatesAndCosts(t *testing.T) {
	p := figure2P2()
	if err := p.Validate(reqSets()); err != nil {
		t.Fatalf("figure-2 plan invalid: %v", err)
	}
	m := &fakeModel{}
	// Edges: R→AB (1000), AB→A (40), AB→B (40), R→AC (1000), AC→C (40).
	if got := p.Cost(m, 1); got != 2120 {
		t.Fatalf("cost = %v, want 2120", got)
	}
	if m.Calls() != 5 {
		t.Fatalf("edge costings = %d, want 5", m.Calls())
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := figure2P2()
	c := p.Clone()
	c.Roots[0].Children[0].Required = false
	c.Roots[0].Children = c.Roots[0].Children[:1]
	if !p.Roots[0].Children[0].Required || len(p.Roots[0].Children) != 2 {
		t.Fatal("clone shares structure with original")
	}
}

func TestValidateRejectsDuplicateSet(t *testing.T) {
	a1, a2 := NewNode(colset.Of(0), true), NewNode(colset.Of(0), false)
	ab := NewNode(colset.Of(0, 1), false)
	ab.Children = []*Node{a2}
	p := &Plan{BaseName: "R", Roots: []*Node{a1, ab}}
	if err := p.Validate([]colset.Set{colset.Of(0)}); err == nil {
		t.Fatal("duplicate set accepted")
	}
}

func TestValidateRejectsNonSubsetChild(t *testing.T) {
	ab := NewNode(colset.Of(0, 1), false)
	ab.Children = []*Node{NewNode(colset.Of(2), true)}
	p := &Plan{BaseName: "R", Roots: []*Node{ab}}
	if err := p.Validate([]colset.Set{colset.Of(2)}); err == nil {
		t.Fatal("non-subset child accepted")
	}
}

func TestValidateRejectsEqualChild(t *testing.T) {
	ab := NewNode(colset.Of(0, 1), false)
	ab.Children = []*Node{NewNode(colset.Of(0, 1), true)}
	p := &Plan{BaseName: "R", Roots: []*Node{ab}}
	if err := p.Validate([]colset.Set{colset.Of(0, 1)}); err == nil {
		t.Fatal("child equal to parent accepted")
	}
}

func TestValidateRejectsMissingRequired(t *testing.T) {
	p := Naive("R", nil, []colset.Set{colset.Of(0)})
	if err := p.Validate([]colset.Set{colset.Of(0), colset.Of(1)}); err == nil {
		t.Fatal("missing required set accepted")
	}
}

func TestValidateRejectsWrongRequired(t *testing.T) {
	p := Naive("R", nil, []colset.Set{colset.Of(0)})
	if err := p.Validate([]colset.Set{colset.Of(1)}); err == nil {
		t.Fatal("wrong required set accepted")
	}
}

func TestValidateRejectsEmptySet(t *testing.T) {
	p := &Plan{BaseName: "R", Roots: []*Node{NewNode(colset.Set(0), true)}}
	if err := p.Validate([]colset.Set{colset.Set(0)}); err == nil {
		t.Fatal("empty grouping set accepted")
	}
}

func TestNormalizeDeterministic(t *testing.T) {
	p := figure2P2()
	// Shuffle roots/children then normalize.
	p.Roots[0], p.Roots[1] = p.Roots[1], p.Roots[0]
	p.Roots[1].Children[0], p.Roots[1].Children[1] = p.Roots[1].Children[1], p.Roots[1].Children[0]
	p.Normalize()
	q := figure2P2()
	q.Normalize()
	if p.String() != q.String() {
		t.Fatalf("normalize not canonical:\n%s\nvs\n%s", p, q)
	}
}

func TestStringRendering(t *testing.T) {
	p := figure2P2()
	s := p.String()
	for _, want := range []string{"(A, B) [materialized]", "(A) *", "(A, C) * [materialized]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestIsIntermediateAndCounts(t *testing.T) {
	p := figure2P2()
	if !p.Roots[0].IsIntermediate() || p.Roots[0].Children[0].IsIntermediate() {
		t.Fatal("IsIntermediate wrong")
	}
	if got := p.Roots[0].CountNodes(); got != 3 {
		t.Fatalf("CountNodes = %d", got)
	}
}

// figure6Tree reproduces the paper's Figure 6 sub-plan with its storage
// numbers: ABCD(10) → {ABC(6) → {AB(4), BC, AC}, BCD(2) → {BD, CD}}.
func figure6Tree() (*Node, SizeFn) {
	abcd := NewNode(colset.Of(0, 1, 2, 3), false)
	abc := NewNode(colset.Of(0, 1, 2), false)
	bcd := NewNode(colset.Of(1, 2, 3), false)
	ab := NewNode(colset.Of(0, 1), true)
	bc := NewNode(colset.Of(1, 2), true)
	ac := NewNode(colset.Of(0, 2), true)
	bd := NewNode(colset.Of(1, 3), true)
	cd := NewNode(colset.Of(2, 3), true)
	abc.Children = []*Node{ab, bc, ac}
	bcd.Children = []*Node{bd, cd}
	abcd.Children = []*Node{abc, bcd}
	sizes := map[colset.Set]float64{
		abcd.Set: 10, abc.Set: 6, bcd.Set: 2,
		ab.Set: 4, bc.Set: 1, ac.Set: 1, bd.Set: 1, cd.Set: 1,
	}
	return abcd, func(s colset.Set) float64 { return sizes[s] }
}

func TestFigure6StorageFormula(t *testing.T) {
	root, size := figure6Tree()
	marks := map[*Node]Traversal{}
	got := MinStorage(root, size, marks)
	// Paper: breadth-first at (ABCD) gives 18 (10+6+2); depth-first gives 20
	// (10+6+4). The formula must choose 18 and mark (ABCD) breadth-first.
	if got != 18 {
		t.Fatalf("MinStorage = %v, want 18", got)
	}
	if marks[root] != BreadthFirst {
		t.Fatalf("root marked %v, want BF", marks[root])
	}
}

func TestFigure6ScheduleSimulation(t *testing.T) {
	root, size := figure6Tree()
	p := &Plan{BaseName: "R", Roots: []*Node{root}}
	steps := Schedule(p, size)
	peak, err := SimulatePeak(steps, size)
	if err != nil {
		t.Fatal(err)
	}
	if peak != 18 {
		t.Fatalf("simulated peak = %v, want 18", peak)
	}
	// Force all-DF by inverting marks: simulate manually with a DF schedule.
	dfSteps := depthFirstSchedule(p)
	dfPeak, err := SimulatePeak(dfSteps, size)
	if err != nil {
		t.Fatal(err)
	}
	if dfPeak != 20 {
		t.Fatalf("pure-DF peak = %v, want 20", dfPeak)
	}
}

// depthFirstSchedule builds the naive depth-first order for comparison.
func depthFirstSchedule(p *Plan) []Step {
	var steps []Step
	var walk func(n *Node, parent *Node)
	walk = func(n *Node, parent *Node) {
		steps = append(steps, Step{Kind: StepCompute, Node: n, Parent: parent})
		for _, c := range n.Children {
			walk(c, n)
		}
		if n.IsIntermediate() {
			steps = append(steps, Step{Kind: StepDrop, Node: n})
		}
	}
	for _, r := range p.Roots {
		walk(r, nil)
	}
	return steps
}

func TestScheduleInvariants(t *testing.T) {
	p := figure2P2()
	size := func(s colset.Set) float64 { return fakeRows(s) }
	steps := Schedule(p, size)
	computed := map[colset.Set]bool{}
	dropped := map[colset.Set]bool{}
	childrenDone := map[colset.Set]int{}
	wantChildren := map[colset.Set]int{}
	p.Roots[0].Walk(func(n *Node) { wantChildren[n.Set] = len(n.Children) })
	p.Roots[1].Walk(func(n *Node) { wantChildren[n.Set] = len(n.Children) })
	for _, s := range steps {
		switch s.Kind {
		case StepCompute:
			if computed[s.Node.Set] {
				t.Fatalf("%s computed twice", s.Node.Set)
			}
			if s.Parent != nil {
				if !computed[s.Parent.Set] || dropped[s.Parent.Set] {
					t.Fatalf("%s computed from unavailable parent", s.Node.Set)
				}
				childrenDone[s.Parent.Set]++
			}
			computed[s.Node.Set] = true
		case StepDrop:
			if dropped[s.Node.Set] {
				t.Fatalf("%s dropped twice", s.Node.Set)
			}
			if childrenDone[s.Node.Set] != wantChildren[s.Node.Set] {
				t.Fatalf("%s dropped before all children computed", s.Node.Set)
			}
			dropped[s.Node.Set] = true
		}
	}
	for set, n := range wantChildren {
		if !computed[set] {
			t.Fatalf("%s never computed", set)
		}
		if n > 0 && !dropped[set] {
			t.Fatalf("intermediate %s never dropped", set)
		}
	}
}

func TestSimulatePeakRejectsMalformed(t *testing.T) {
	a := NewNode(colset.Of(0), true)
	size := func(colset.Set) float64 { return 1 }
	// Drop without compute.
	if _, err := SimulatePeak([]Step{{Kind: StepDrop, Node: a}}, size); err == nil {
		t.Error("drop-before-compute accepted")
	}
	// Double compute.
	if _, err := SimulatePeak([]Step{
		{Kind: StepCompute, Node: a}, {Kind: StepCompute, Node: a},
	}, size); err == nil {
		t.Error("double compute accepted")
	}
	// Never-dropped intermediate.
	ab := NewNode(colset.Of(0, 1), false)
	ab.Children = []*Node{NewNode(colset.Of(1), true)}
	if _, err := SimulatePeak([]Step{{Kind: StepCompute, Node: ab}}, size); err == nil {
		t.Error("undropped intermediate accepted")
	}
}

func TestFitsStorageBudget(t *testing.T) {
	root, size := figure6Tree()
	p := &Plan{BaseName: "R", Roots: []*Node{root}}
	if !FitsStorageBudget(p, size, 18) {
		t.Error("plan should fit budget 18")
	}
	if FitsStorageBudget(p, size, 17) {
		t.Error("plan should not fit budget 17")
	}
}

func TestEmitSQL(t *testing.T) {
	p := figure2P2()
	size := func(s colset.Set) float64 { return fakeRows(s) }
	stmts := EmitSQL(p, size, SQLOptions{})
	joined := strings.Join(stmts, "\n")
	// Intermediate (A,B) goes INTO a temp table and is later dropped.
	if !strings.Contains(joined, "INTO tmp_gb_0_1") || !strings.Contains(joined, "DROP TABLE tmp_gb_0_1;") {
		t.Fatalf("missing temp-table lifecycle:\n%s", joined)
	}
	// First-level query uses COUNT(*), second-level SUM(cnt) (§5.2).
	if !strings.Contains(joined, "SELECT A, B, COUNT(*) AS cnt INTO tmp_gb_0_1 FROM R GROUP BY A, B;") {
		t.Fatalf("bad first-level SQL:\n%s", joined)
	}
	if !strings.Contains(joined, "SELECT A, SUM(cnt) AS cnt FROM tmp_gb_0_1 GROUP BY A;") {
		t.Fatalf("bad rollup SQL:\n%s", joined)
	}
	// (A,C) is required AND materialized: its stored result is emitted.
	if !strings.Contains(joined, "SELECT * FROM tmp_gb_0_2;") {
		t.Fatalf("required intermediate not emitted:\n%s", joined)
	}
}

func TestEmitSQLCubeAndRollup(t *testing.T) {
	cube := NewNode(colset.Of(0, 1), false)
	cube.Op = OpCube
	cube.Children = []*Node{NewNode(colset.Of(0), true), NewNode(colset.Of(1), true)}
	roll := NewNode(colset.Of(2, 3), false)
	roll.Op = OpRollup
	roll.RollupOrder = []int{2, 3}
	roll.Children = []*Node{NewNode(colset.Of(2), true)}
	p := &Plan{BaseName: "R", ColNames: []string{"A", "B", "C", "D"},
		Roots: []*Node{cube, roll}}
	stmts := EmitSQL(p, func(colset.Set) float64 { return 1 }, SQLOptions{})
	joined := strings.Join(stmts, "\n")
	if !strings.Contains(joined, "GROUP BY CUBE(A, B)") {
		t.Fatalf("missing CUBE:\n%s", joined)
	}
	if !strings.Contains(joined, "GROUP BY ROLLUP(C, D)") {
		t.Fatalf("missing ROLLUP:\n%s", joined)
	}
}

func TestCubeCoversChildrenCostFree(t *testing.T) {
	// CUBE(A,B) with required children (A) and (B): the children edges must
	// not be charged, but the cube's covered sets are.
	cube := NewNode(colset.Of(0, 1), false)
	cube.Op = OpCube
	cube.Children = []*Node{NewNode(colset.Of(0), true), NewNode(colset.Of(1), true)}
	p := &Plan{BaseName: "R", Roots: []*Node{cube}}
	m := &fakeModel{}
	got := p.Cost(m, 1)
	// Edge R→AB = 1000; covered subsets of AB excluding AB: (A), (B) each
	// priced as computed from AB: 2 × fakeRows(AB) = 2 × 40.
	if got != 1080 {
		t.Fatalf("cube cost = %v, want 1080", got)
	}
}

func TestRollupCoverage(t *testing.T) {
	roll := NewNode(colset.Of(0, 1), false)
	roll.Op = OpRollup
	roll.RollupOrder = []int{0, 1}
	if !Covered(roll, colset.Of(0)) {
		t.Error("prefix (A) should be covered")
	}
	if Covered(roll, colset.Of(1)) {
		t.Error("(B) is not a prefix of rollup (A, B)")
	}
	plain := NewNode(colset.Of(0, 1), false)
	if Covered(plain, colset.Of(0)) {
		t.Error("plain Group By covers nothing")
	}
}

func TestTempName(t *testing.T) {
	if got := TempName(colset.Of(0, 2, 5)); got != "tmp_gb_0_2_5" {
		t.Fatalf("TempName = %q", got)
	}
}

func TestTraversalString(t *testing.T) {
	if BreadthFirst.String() != "BF" || DepthFirst.String() != "DF" {
		t.Fatal("traversal names wrong")
	}
}

func TestOpString(t *testing.T) {
	if OpGroupBy.String() != "GROUP BY" || OpCube.String() != "CUBE" || OpRollup.String() != "ROLLUP" {
		t.Fatal("op names wrong")
	}
}
