package plan

import (
	"fmt"
	"strings"

	"gbmqo/internal/colset"
)

// SQLOptions configures SQL emission.
type SQLOptions struct {
	// CountCol is the aggregate column name (default "cnt").
	CountCol string
}

// EmitSQL renders the plan as the sequence of SQL statements a client-side
// implementation would submit (§5.2): `SELECT … INTO tmp …` for intermediate
// nodes, plain SELECTs for required leaves, COUNT(*) replaced by SUM(cnt)
// when reading from an intermediate, and DROP TABLE once a temp table's
// children are all computed. Statements follow the §4.4 storage-minimizing
// schedule.
func EmitSQL(p *Plan, size SizeFn, opts SQLOptions) []string {
	if opts.CountCol == "" {
		opts.CountCol = "cnt"
	}
	steps := Schedule(p, size)
	var stmts []string
	for _, s := range steps {
		switch s.Kind {
		case StepCompute:
			stmts = append(stmts, computeSQL(p, s, opts))
			if s.Node.Required && s.Node.IsIntermediate() {
				// Materialized *and* required: emit the stored result too.
				stmts = append(stmts, fmt.Sprintf("SELECT * FROM %s;", TempName(s.Node.Set)))
			}
		case StepDrop:
			stmts = append(stmts, fmt.Sprintf("DROP TABLE %s;", TempName(s.Node.Set)))
		}
	}
	return stmts
}

func computeSQL(p *Plan, s Step, opts SQLOptions) string {
	cols := columnList(p, s.Node.Set)
	fromBase := s.Parent == nil
	src := p.BaseName
	agg := "COUNT(*)"
	if !fromBase {
		src = TempName(s.Parent.Set)
		agg = fmt.Sprintf("SUM(%s)", opts.CountCol)
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(cols)
	fmt.Fprintf(&b, ", %s AS %s", agg, opts.CountCol)
	if s.Node.IsIntermediate() {
		fmt.Fprintf(&b, " INTO %s", TempName(s.Node.Set))
	}
	fmt.Fprintf(&b, " FROM %s", src)
	switch s.Node.Op {
	case OpCube:
		fmt.Fprintf(&b, " GROUP BY CUBE(%s);", cols)
	case OpRollup:
		names := make([]string, len(s.Node.RollupOrder))
		for i, c := range s.Node.RollupOrder {
			names[i] = colName(p, c)
		}
		fmt.Fprintf(&b, " GROUP BY ROLLUP(%s);", strings.Join(names, ", "))
	default:
		fmt.Fprintf(&b, " GROUP BY %s;", cols)
	}
	return b.String()
}

func columnList(p *Plan, set colset.Set) string {
	cols := set.Columns()
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = colName(p, c)
	}
	return strings.Join(names, ", ")
}

func colName(p *Plan, c int) string {
	if c < len(p.ColNames) {
		return p.ColNames[c]
	}
	return fmt.Sprintf("c%d", c)
}
