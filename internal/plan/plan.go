// Package plan implements logical plans for multi-Group-By computation
// (§3.1): directed trees over the search DAG, rooted at the base relation R,
// whose nodes are Group By queries. An edge u→v means v is computed as a
// Group By over (the materialized result of) u. The package provides plan
// validation, costing against a cost model, the intermediate-storage
// minimizing execution schedule of §4.4, and SQL emission for the client-side
// implementation of §5.2.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"gbmqo/internal/colset"
	"gbmqo/internal/cost"
)

// Op is the operator a node executes (§7.1 extends plain Group By nodes with
// CUBE and ROLLUP alternatives).
type Op int

// Node operators.
const (
	OpGroupBy Op = iota
	OpCube
	OpRollup
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case OpGroupBy:
		return "GROUP BY"
	case OpCube:
		return "CUBE"
	case OpRollup:
		return "ROLLUP"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Node is one query in a logical plan.
type Node struct {
	// Set is the grouping column set (ordinals on the base relation).
	Set colset.Set
	// Required marks sets the user asked for (they must be emitted).
	Required bool
	// Op is the node's operator. OpCube computes every subset of Set, OpRollup
	// every prefix (§7.1); required children whose sets those cover are
	// emitted directly from the operator's output.
	Op Op
	// RollupOrder fixes the column significance order for OpRollup.
	RollupOrder []int
	// Children are computed from this node's materialized result.
	Children []*Node
}

// NewNode builds a plain Group By node.
func NewNode(set colset.Set, required bool) *Node {
	return &Node{Set: set, Required: required}
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	out := &Node{Set: n.Set, Required: n.Required, Op: n.Op}
	if n.RollupOrder != nil {
		out.RollupOrder = append([]int(nil), n.RollupOrder...)
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// IsIntermediate reports whether the node's result must be materialized: it
// has children to feed. (A required node with children is materialized *and*
// emitted.)
func (n *Node) IsIntermediate() bool { return len(n.Children) > 0 }

// Walk visits the subtree pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// CountNodes returns the number of nodes in the subtree.
func (n *Node) CountNodes() int {
	total := 0
	n.Walk(func(*Node) { total++ })
	return total
}

// sortChildren orders children deterministically (by cardinality then bits).
func (n *Node) sortChildren() {
	sort.Slice(n.Children, func(i, j int) bool {
		a, b := n.Children[i].Set, n.Children[j].Set
		if la, lb := a.Len(), b.Len(); la != lb {
			return la < lb
		}
		return a < b
	})
	for _, c := range n.Children {
		c.sortChildren()
	}
}

// Plan is a logical plan: a forest of sub-plans whose roots are computed
// directly from the base relation R (§3.1 calls the trees under R
// "sub-plans").
type Plan struct {
	// BaseName names the base relation (for printing and SQL emission).
	BaseName string
	// ColNames names the base columns, indexed by ordinal.
	ColNames []string
	// Roots are the sub-plan roots, each computed directly from R.
	Roots []*Node

	// notes holds per-node display annotations keyed by the node's Set.String()
	// (see Annotate); String renders them after the node. The executor uses
	// this to show which physical kernel ran each node.
	notes map[string]string
}

// Annotate attaches display annotations to nodes, keyed by Set.String().
// Subsequent String calls render each matching node with its annotation
// appended in angle brackets. A nil map clears annotations.
func (p *Plan) Annotate(notes map[string]string) { p.notes = notes }

// Naive builds the §4.2 starting point: every required set computed directly
// from R.
func Naive(baseName string, colNames []string, required []colset.Set) *Plan {
	p := &Plan{BaseName: baseName, ColNames: colNames}
	for _, s := range required {
		p.Roots = append(p.Roots, NewNode(s, true))
	}
	return p
}

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	out := &Plan{BaseName: p.BaseName, ColNames: p.ColNames}
	for _, r := range p.Roots {
		out.Roots = append(out.Roots, r.Clone())
	}
	return out
}

// Normalize orders sub-plans and children deterministically so equivalent
// plans print identically.
func (p *Plan) Normalize() {
	for _, r := range p.Roots {
		r.sortChildren()
	}
	sort.Slice(p.Roots, func(i, j int) bool {
		a, b := p.Roots[i].Set, p.Roots[j].Set
		if la, lb := a.Len(), b.Len(); la != lb {
			return la < lb
		}
		return a < b
	})
}

// Validate checks structural invariants: every child's set is a proper subset
// of its parent's (except under CUBE/ROLLUP, where covered children are
// allowed to equal prefixes), no column set appears twice, and the required
// sets are exactly `required`.
func (p *Plan) Validate(required []colset.Set) error {
	seen := map[colset.Set]*Node{}
	var reqSeen []colset.Set
	var walk func(n *Node, parent *Node) error
	walk = func(n *Node, parent *Node) error {
		if prev, dup := seen[n.Set]; dup && prev != n {
			return fmt.Errorf("plan: set %s appears twice", n.Set)
		}
		seen[n.Set] = n
		if parent != nil && !n.Set.ProperSubsetOf(parent.Set) {
			return fmt.Errorf("plan: child %s not a proper subset of parent %s", n.Set, parent.Set)
		}
		if n.Set.IsEmpty() {
			return fmt.Errorf("plan: empty grouping set")
		}
		if n.Required {
			reqSeen = append(reqSeen, n.Set)
		}
		for _, c := range n.Children {
			if err := walk(c, n); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range p.Roots {
		if err := walk(r, nil); err != nil {
			return err
		}
	}
	want := append([]colset.Set(nil), required...)
	colset.SortSets(want)
	colset.SortSets(reqSeen)
	if len(want) != len(reqSeen) {
		return fmt.Errorf("plan: %d required nodes, want %d", len(reqSeen), len(want))
	}
	for i := range want {
		if want[i] != reqSeen[i] {
			return fmt.Errorf("plan: required set %s missing (found %s)", want[i], reqSeen[i])
		}
	}
	return nil
}

// Cost sums the model's edge costs over the plan. nAggs is the number of
// aggregate columns each query carries (1 for the paper's COUNT(*) setting).
// CUBE/ROLLUP nodes are priced as the sum of computing every covered subset
// from the parent's materialization of Set (see cubeCost).
func (p *Plan) Cost(m cost.Model, nAggs int) float64 {
	total := 0.0
	for _, r := range p.Roots {
		total += SubtreeCost(r, m, nAggs)
	}
	return total
}

// SubtreeCost prices a sub-plan whose root is computed directly from R.
func SubtreeCost(root *Node, m cost.Model, nAggs int) float64 {
	return nodeCost(root, m, nAggs, true, colset.Set(0))
}

func nodeCost(n *Node, m cost.Model, nAggs int, parentIsBase bool, parent colset.Set) float64 {
	edge := cost.Edge{
		ParentIsBase: parentIsBase,
		Parent:       parent,
		V:            n.Set,
		NAggs:        nAggs,
		Materialize:  n.IsIntermediate(),
	}
	total := m.EdgeCost(edge)
	switch n.Op {
	case OpCube:
		total += coveredCost(n, m, nAggs, cubeCovered(n.Set))
	case OpRollup:
		total += coveredCost(n, m, nAggs, rollupCovered(n.RollupOrder))
	}
	for _, c := range n.Children {
		if n.Op != OpGroupBy && isCovered(n, c.Set) {
			// The operator's own output already contains this child; only its
			// descendants cost anything (computed from the covered result).
			for _, gc := range c.Children {
				total += nodeCost(gc, m, nAggs, false, c.Set)
			}
			continue
		}
		total += nodeCost(c, m, nAggs, false, n.Set)
	}
	return total
}

// coveredCost prices producing all covered subsets level-wise, the way a
// pipelined cube/rollup implementation (PipeSort/PipeHash, §5.1) computes
// them: each covered set is computed from its covering parent one level up
// (CubeParent / the rollup chain), not from the full materialized Set. This
// is what makes the §7.1 alternatives genuinely cheaper when many small
// subsets are required.
func coveredCost(n *Node, m cost.Model, nAggs int, covered []colset.Set) float64 {
	total := 0.0
	for _, s := range covered {
		if s == n.Set {
			continue
		}
		total += m.EdgeCost(cost.Edge{
			ParentIsBase: false,
			Parent:       CoveredParent(n, s),
			V:            s,
			NAggs:        nAggs,
			Materialize:  false,
		})
	}
	return total
}

// CoveredParent returns the covered set one level up that a covered set s is
// computed from inside a CUBE/ROLLUP node: for ROLLUP the next-longer prefix;
// for CUBE the set s plus the lowest missing column (a deterministic choice
// shared with the executor).
func CoveredParent(n *Node, s colset.Set) colset.Set {
	if n.Op == OpRollup {
		var prefix colset.Set
		for _, c := range n.RollupOrder {
			next := prefix.Add(c)
			if prefix == s {
				return next
			}
			prefix = next
		}
		return n.Set
	}
	missing := n.Set.Diff(s)
	if missing.IsEmpty() {
		return n.Set
	}
	return s.Add(missing.Min())
}

// cubeCovered lists every non-empty subset of set.
func cubeCovered(set colset.Set) []colset.Set {
	var out []colset.Set
	set.Subsets(func(s colset.Set) bool {
		if !s.IsEmpty() {
			out = append(out, s)
		}
		return true
	})
	colset.SortSets(out)
	return out
}

// rollupCovered lists the non-empty prefixes of the rollup order.
func rollupCovered(order []int) []colset.Set {
	var out []colset.Set
	var prefix colset.Set
	for _, c := range order {
		prefix = prefix.Add(c)
		out = append(out, prefix)
	}
	return out
}

// isCovered reports whether the node's operator output already contains set.
func isCovered(n *Node, set colset.Set) bool {
	switch n.Op {
	case OpCube:
		return set.ProperSubsetOf(n.Set)
	case OpRollup:
		var prefix colset.Set
		for _, c := range n.RollupOrder {
			prefix = prefix.Add(c)
			if prefix == set {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Covered exposes isCovered for the executor.
func Covered(n *Node, set colset.Set) bool { return isCovered(n, set) }

// String renders the plan as an indented tree using column names.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.BaseName)
	for _, r := range p.Roots {
		p.writeNode(&b, r, 1)
	}
	return b.String()
}

func (p *Plan) writeNode(b *strings.Builder, n *Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if n.Op != OpGroupBy {
		fmt.Fprintf(b, "%s ", n.Op)
	}
	b.WriteString(n.Set.Format(p.ColNames))
	if n.Required {
		b.WriteString(" *")
	}
	if n.IsIntermediate() {
		b.WriteString(" [materialized]")
	}
	if note, ok := p.notes[n.Set.String()]; ok {
		fmt.Fprintf(b, " <%s>", note)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		p.writeNode(b, c, depth+1)
	}
}

// TempName generates the deterministic temp-table name for a node's set.
func TempName(set colset.Set) string {
	cols := set.Columns()
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "tmp_gb_" + strings.Join(parts, "_")
}
