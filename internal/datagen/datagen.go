// Package datagen builds the deterministic synthetic datasets used by the
// experiments. Each generator reproduces the *column-cardinality structure* of
// the corresponding dataset in the paper's evaluation (Table 1) — correlated
// date columns, low-cardinality flags, hierarchy-shaped dimension columns and
// high-cardinality identifier/comment columns — scaled down so the benchmark
// harness runs on one machine. Plan choice in GB-MQO depends on the ratios
// |GroupBy(v)| / |R|, which these generators keep in the paper's regime.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"gbmqo/internal/table"
)

// rng returns a deterministic random source for a dataset generator. All
// generators are pure functions of (rows, seed, knobs).
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// pick returns a uniformly random element of vals.
func pick(r *rand.Rand, vals []string) string { return vals[r.Intn(len(vals))] }

// zipfDrawer draws Zipf(z)-distributed indexes over arbitrary domain sizes by
// inverse-CDF sampling: P(i) ∝ 1/(i+1)^z. Unlike math/rand's Zipf it supports
// the full 0 ≤ z ≤ 1 range the paper sweeps (§6.8: "varying Zipfian
// distributions of skew factor 0, 0.5, 1, 1.5, 2, 2.5, 3"). Cumulative tables
// are cached per domain size.
type zipfDrawer struct {
	r   *rand.Rand
	z   float64
	cum map[int][]float64
}

func newZipfDrawer(r *rand.Rand, z float64) *zipfDrawer {
	return &zipfDrawer{r: r, z: z, cum: map[int][]float64{}}
}

// index draws from [0, n).
func (d *zipfDrawer) index(n int) int {
	if n <= 1 {
		return 0
	}
	if d.z <= 0 {
		return d.r.Intn(n)
	}
	cum, ok := d.cum[n]
	if !ok {
		cum = make([]float64, n)
		total := 0.0
		for i := 0; i < n; i++ {
			total += math.Pow(float64(i+1), -d.z)
			cum[i] = total
		}
		d.cum[n] = cum
	}
	u := d.r.Float64() * cum[n-1]
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Widen returns a copy of t with every column repeated `copies` times
// (including the original), suffixing repeated column names with _2, _3, ….
// This reproduces the §6.4 scaling setup: "we start with the projection of the
// lineitem relation on its 12 non-floating-point columns, and widen it by
// repeating all 12 columns".
func Widen(t *table.Table, copies int) *table.Table {
	if copies < 1 {
		panic(fmt.Sprintf("datagen: Widen copies = %d", copies))
	}
	n := t.NumCols()
	cols := make([]*table.Column, 0, n*copies)
	for rep := 0; rep < copies; rep++ {
		for i := 0; i < n; i++ {
			src := t.Col(i)
			def := src.Def()
			if rep > 0 {
				def.Name = fmt.Sprintf("%s_%d", def.Name, rep+1)
			}
			col := table.NewColumn(def)
			for r := 0; r < src.Len(); r++ {
				col.Append(src.Value(r))
			}
			cols = append(cols, col)
		}
	}
	return table.FromColumns(fmt.Sprintf("%s_w%d", t.Name(), copies), cols)
}
