package datagen

import (
	"math/rand"
	"testing"

	"gbmqo/internal/table"
)

func TestLineitemShapeAndDeterminism(t *testing.T) {
	opts := LineitemOpts{Rows: 2000, Seed: 1}
	a := Lineitem(opts)
	b := Lineitem(opts)
	if a.NumRows() != 2000 || a.NumCols() != lineitemNumCols {
		t.Fatalf("shape = %dx%d", a.NumRows(), a.NumCols())
	}
	for i := 0; i < a.NumRows(); i += 97 {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if !ra[j].Equal(rb[j]) {
				t.Fatalf("row %d col %d differs between runs: %v vs %v", i, j, ra[j], rb[j])
			}
		}
	}
}

func TestLineitemCardinalityStructure(t *testing.T) {
	li := Lineitem(LineitemOpts{Rows: 20_000, Seed: 2})
	ndv := func(ord int) int { return li.Col(ord).DistinctCount() }
	// Low-NDV columns the optimizer should want to merge.
	if n := ndv(LReturnFlag); n != 3 {
		t.Errorf("returnflag NDV = %d, want 3", n)
	}
	if n := ndv(LLineStatus); n != 2 {
		t.Errorf("linestatus NDV = %d, want 2", n)
	}
	if n := ndv(LShipMode); n != 7 {
		t.Errorf("shipmode NDV = %d, want 7", n)
	}
	if n := ndv(LQuantity); n != 10 {
		t.Errorf("quantity NDV = %d, want 10", n)
	}
	// Dates: correlated; pair NDV must stay well under the row count so the
	// paper's (receipt, commit) merge is profitable.
	if n := ndv(LShipDate); n > 150 {
		t.Errorf("shipdate NDV = %d, want <= 150", n)
	}
	pairNDV := distinctPairs(li, LCommitDate, LReceiptDate)
	if pairNDV > li.NumRows()/2 {
		t.Errorf("(commit,receipt) NDV = %d, too close to row count %d", pairNDV, li.NumRows())
	}
	// Comment is near-unique.
	if n := ndv(LComment); n < li.NumRows()*8/10 {
		t.Errorf("comment NDV = %d, want near %d", n, li.NumRows())
	}
	// Date arithmetic invariants.
	for i := 0; i < li.NumRows(); i += 131 {
		ship := li.Col(LShipDate).Value(i).I
		receipt := li.Col(LReceiptDate).Value(i).I
		commit := li.Col(LCommitDate).Value(i).I
		if receipt < ship+1 || receipt > ship+3 {
			t.Fatalf("row %d: receipt %d out of range for ship %d", i, receipt, ship)
		}
		if commit < ship+4 || commit > ship+10 {
			t.Fatalf("row %d: commit %d out of range for ship %d", i, commit, ship)
		}
	}
}

func distinctPairs(t *table.Table, a, b int) int {
	seen := map[[2]uint32]bool{}
	ca, cb := t.Col(a), t.Col(b)
	for i := 0; i < t.NumRows(); i++ {
		seen[[2]uint32{ca.Code(i), cb.Code(i)}] = true
	}
	return len(seen)
}

func TestLineitemZipfSkewConcentrates(t *testing.T) {
	flat := Lineitem(LineitemOpts{Rows: 10_000, Seed: 3, Zipf: 0})
	skewed := Lineitem(LineitemOpts{Rows: 10_000, Seed: 3, Zipf: 2})
	// Skew should reduce distinct quantity values observed or at least
	// concentrate: compare NDV of the suppkey column, whose domain is larger
	// than the row slice each value gets under heavy skew.
	nFlat := flat.Col(LSuppKey).DistinctCount()
	nSkew := skewed.Col(LSuppKey).DistinctCount()
	if nSkew >= nFlat {
		t.Fatalf("zipf=2 NDV (%d) should be below zipf=0 NDV (%d)", nSkew, nFlat)
	}
}

func TestZipfDrawerRangeAndSkew(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, z := range []float64{0, 0.5, 1, 1.5, 2, 3} {
		d := newZipfDrawer(r, z)
		counts := make([]int, 37)
		for i := 0; i < 20_000; i++ {
			got := d.index(37)
			if got < 0 || got >= 37 {
				t.Fatalf("zipf(z=%v) = %d out of range", z, got)
			}
			counts[got]++
		}
		if z > 0 {
			// Mass must concentrate on low indexes, increasingly with z.
			if counts[0] <= counts[18] {
				t.Fatalf("z=%v: index 0 (%d draws) not favored over 18 (%d)", z, counts[0], counts[18])
			}
		}
	}
	d := newZipfDrawer(r, 2)
	if d.index(1) != 0 {
		t.Fatal("n=1 must return 0")
	}
}

func TestZipfDrawerMonotoneConcentration(t *testing.T) {
	// The share of the most frequent value must grow with z — the §6.8
	// premise ("as a column becomes more skewed, it becomes more sparse").
	top := func(z float64) float64 {
		r := rand.New(rand.NewSource(6))
		d := newZipfDrawer(r, z)
		counts := make([]int, 50)
		n := 30_000
		for i := 0; i < n; i++ {
			counts[d.index(50)]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return float64(best) / float64(n)
	}
	prev := 0.0
	for _, z := range []float64{0, 1, 2, 3} {
		cur := top(z)
		if cur <= prev {
			t.Fatalf("top-value share not growing: z=%v gives %.3f after %.3f", z, cur, prev)
		}
		prev = cur
	}
}

func TestLineitemSCWorkload(t *testing.T) {
	sc := LineitemSC()
	if len(sc) != 12 {
		t.Fatalf("SC workload has %d columns, want 12", len(sc))
	}
	defs := LineitemDefs()
	for _, ord := range sc {
		typ := defs[ord].Typ
		if typ == table.TFloat64 {
			t.Errorf("SC workload includes float column %s", defs[ord].Name)
		}
	}
}

func TestLineitemCONTWorkload(t *testing.T) {
	cont := LineitemCONT()
	if len(cont) != 6 {
		t.Fatalf("CONT workload has %d sets, want 6", len(cont))
	}
	// First three are singles, last three pairs with containment.
	for i, set := range cont {
		wantLen := 1
		if i >= 3 {
			wantLen = 2
		}
		if len(set) != wantLen {
			t.Errorf("CONT[%d] has %d cols, want %d", i, len(set), wantLen)
		}
	}
}

func TestSalesHierarchyFunctionalDependencies(t *testing.T) {
	s := Sales(SalesOpts{Rows: 15_000, Seed: 4})
	if s.NumCols() != salesNumCols {
		t.Fatalf("sales cols = %d", s.NumCols())
	}
	// store_id → store_state must be functional: |(store_id, state)| == |store_id|.
	storeNDV := s.Col(SStoreID).DistinctCount()
	if pairs := distinctPairs(s, SStoreID, SStoreState); pairs != storeNDV {
		t.Errorf("store→state not functional: %d pairs vs %d stores", pairs, storeNDV)
	}
	prodNDV := s.Col(SProductID).DistinctCount()
	if pairs := distinctPairs(s, SProductID, SProductBrand); pairs != prodNDV {
		t.Errorf("product→brand not functional: %d pairs vs %d products", pairs, prodNDV)
	}
	brandNDV := s.Col(SProductBrand).DistinctCount()
	if pairs := distinctPairs(s, SProductBrand, SProductCategory); pairs != brandNDV {
		t.Errorf("brand→category not functional")
	}
	if len(SalesSC()) != 15 {
		t.Errorf("sales SC = %d cols, want 15", len(SalesSC()))
	}
}

func TestNRefShape(t *testing.T) {
	n := NRef(NRefOpts{Rows: 8000, Seed: 5})
	if n.NumCols() != nrefNumCols || n.NumRows() != 8000 {
		t.Fatalf("nref shape = %dx%d", n.NumRows(), n.NumCols())
	}
	if got := n.Col(NFlag).DistinctCount(); got != 2 {
		t.Errorf("flag NDV = %d", got)
	}
	// nref_id is high NDV.
	if got := n.Col(NRefID).DistinctCount(); got < 1000 {
		t.Errorf("nref_id NDV = %d, want high", got)
	}
	if len(NRefSC()) != 10 {
		t.Errorf("nref SC = %d cols, want 10", len(NRefSC()))
	}
}

func TestCustomersQualityDefects(t *testing.T) {
	c := Customers(CustomersOpts{Rows: 30_000, Seed: 6})
	// The State column must exceed 50 distinct values (the paper's motivating
	// data-quality signal).
	if got := c.ColByName("State").DistinctCount(); got <= 50 {
		t.Errorf("State NDV = %d, want > 50", got)
	}
	// MI and Gender must contain NULLs.
	hasNull := func(name string) bool {
		col := c.ColByName(name)
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) {
				return true
			}
		}
		return false
	}
	if !hasNull("MI") {
		t.Error("MI has no NULLs")
	}
	if !hasNull("Gender") {
		t.Error("Gender has no NULLs")
	}
	// (LastName, FirstName, MI, Zip) must NOT be a key (injected duplicates)…
	rows := c.NumRows()
	keyNDV := distinct4(c, CLastName, CFirstName, CMI, CZip)
	if keyNDV >= rows {
		t.Errorf("almost-key is exactly a key: %d combos over %d rows", keyNDV, rows)
	}
	// …but it must be close to one.
	if keyNDV < rows*9/10 {
		t.Errorf("almost-key too far from key: %d combos over %d rows", keyNDV, rows)
	}
	if len(CustomersSC()) != customersNumCols {
		t.Errorf("customers SC size = %d", len(CustomersSC()))
	}
}

func distinct4(t *table.Table, ords ...int) int {
	seen := map[[4]uint32]bool{}
	for i := 0; i < t.NumRows(); i++ {
		var k [4]uint32
		for j, o := range ords {
			k[j] = t.Col(o).Code(i)
		}
		seen[k] = true
	}
	return len(seen)
}

func TestWiden(t *testing.T) {
	li := Lineitem(LineitemOpts{Rows: 500, Seed: 7})
	narrow := li.Project("narrow", LineitemSC())
	wide := Widen(narrow, 3)
	if wide.NumCols() != 36 {
		t.Fatalf("widened cols = %d, want 36", wide.NumCols())
	}
	if wide.NumRows() != 500 {
		t.Fatalf("widened rows = %d", wide.NumRows())
	}
	// Repeated columns carry the same data under suffixed names.
	if wide.ColIndex("l_shipdate_2") < 0 || wide.ColIndex("l_shipdate_3") < 0 {
		t.Fatalf("missing suffixed columns: %v", wide.ColNames())
	}
	orig := wide.ColByName("l_shipdate")
	copy2 := wide.ColByName("l_shipdate_2")
	for i := 0; i < 500; i += 50 {
		if !orig.Value(i).Equal(copy2.Value(i)) {
			t.Fatalf("row %d: copy differs", i)
		}
	}
}

func TestWidenPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Widen(0) did not panic")
		}
	}()
	Widen(table.New("x", []table.ColumnDef{{Name: "a", Typ: table.TInt64}}), 0)
}

func TestLineitemOptsNormalize(t *testing.T) {
	opts := LineitemOpts{}
	opts.normalize()
	if opts.Rows != 100_000 || opts.Days != 120 {
		t.Fatalf("normalize defaults = %+v", opts)
	}
}
