package datagen

import (
	"gbmqo/internal/table"
)

// NRefOpts configures the PIR-NREF-like generator. The paper uses the
// neighboring_seq relation (78M rows, 10 columns): protein/sequence
// identifiers with very high cardinality plus a handful of categorical and
// banded-measure columns.
type NRefOpts struct {
	Rows int
	Seed int64
}

// NRef column ordinals.
const (
	NRefID = iota
	NNeighborID
	NOrganism
	NDBSource
	NSeqLength
	NScoreBand
	NEValueBand
	NMethod
	NClusterID
	NFlag
	nrefNumCols
)

var (
	nrefSources = []string{"PIR1", "PIR2", "PIR3", "SWISSPROT", "GENPEPT"}
	nrefMethods = []string{"BLAST", "FASTA", "SW"}
)

// NRefDefs returns the neighboring_seq-like schema.
func NRefDefs() []table.ColumnDef {
	return []table.ColumnDef{
		{Name: "nref_id", Typ: table.TInt64},
		{Name: "neighbor_id", Typ: table.TInt64},
		{Name: "organism", Typ: table.TInt64},
		{Name: "db_source", Typ: table.TString},
		{Name: "seq_length", Typ: table.TInt64},
		{Name: "score_band", Typ: table.TInt64},
		{Name: "evalue_band", Typ: table.TInt64},
		{Name: "method", Typ: table.TString},
		{Name: "cluster_id", Typ: table.TInt64},
		{Name: "flag", Typ: table.TInt64},
	}
}

// NRef generates the neighboring_seq-like table.
func NRef(opts NRefOpts) *table.Table {
	if opts.Rows <= 0 {
		opts.Rows = 100_000
	}
	r := rng(opts.Seed ^ 0x9ef)
	ids := opts.Rows / 3
	t := table.New("neighboring_seq", NRefDefs())
	for i := 0; i < opts.Rows; i++ {
		t.AppendRow(
			table.Int(int64(r.Intn(ids))),
			table.Int(int64(r.Intn(ids))),
			table.Int(int64(r.Intn(800))),
			table.Str(pick(r, nrefSources)),
			table.Int(int64(50+r.Intn(1500))),
			table.Int(int64(r.Intn(20))),
			table.Int(int64(r.Intn(15))),
			table.Str(pick(r, nrefMethods)),
			table.Int(int64(r.Intn(4000))),
			table.Int(int64(r.Intn(2))),
		)
	}
	return t
}

// NRefSC returns all 10 single-column workload ordinals.
func NRefSC() []int {
	out := make([]int, nrefNumCols)
	for i := range out {
		out[i] = i
	}
	return out
}
