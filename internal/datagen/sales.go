package datagen

import (
	"fmt"

	"gbmqo/internal/table"
)

// SalesOpts configures the SALES-like generator. The paper's SALES dataset is
// a proprietary 24M-row sales warehouse with 15 columns used; we reproduce its
// structure as a denormalized star: store and product hierarchies (functional
// dependencies store→state→region and product→brand→category make the
// hierarchy column groups highly mergeable), a handful of low-NDV flags, and
// medium-NDV date/person columns.
type SalesOpts struct {
	Rows int
	Seed int64
}

// Sales column ordinals.
const (
	SStoreID = iota
	SStoreState
	SStoreRegion
	SProductID
	SProductBrand
	SProductCategory
	SCustomerSegment
	SPromoFlag
	SChannel
	SPayment
	SSaleDate
	SShipMode
	SQty
	SPriceBand
	SSalesperson
	salesNumCols
)

var (
	salesRegions  = []string{"NORTH", "SOUTH", "EAST", "WEST", "CENTRAL", "NE", "NW", "SE", "SW", "INTL"}
	salesSegments = []string{"CONSUMER", "CORPORATE", "HOME OFFICE", "SMALL BIZ", "GOVERNMENT"}
	salesChannels = []string{"STORE", "WEB", "PHONE", "CATALOG"}
	salesPayments = []string{"CASH", "CREDIT", "DEBIT", "CHECK", "GIFT", "FINANCE"}
	salesShip     = []string{"GROUND", "AIR", "FREIGHT", "PICKUP", "COURIER"}
)

// SalesDefs returns the sales schema.
func SalesDefs() []table.ColumnDef {
	return []table.ColumnDef{
		{Name: "store_id", Typ: table.TInt64},
		{Name: "store_state", Typ: table.TString},
		{Name: "store_region", Typ: table.TString},
		{Name: "product_id", Typ: table.TInt64},
		{Name: "product_brand", Typ: table.TString},
		{Name: "product_category", Typ: table.TString},
		{Name: "customer_segment", Typ: table.TString},
		{Name: "promo_flag", Typ: table.TInt64},
		{Name: "channel", Typ: table.TString},
		{Name: "payment", Typ: table.TString},
		{Name: "sale_date", Typ: table.TDate},
		{Name: "ship_mode", Typ: table.TString},
		{Name: "qty", Typ: table.TInt64},
		{Name: "price_band", Typ: table.TInt64},
		{Name: "salesperson", Typ: table.TInt64},
	}
}

// Sales generates the SALES-like table.
func Sales(opts SalesOpts) *table.Table {
	if opts.Rows <= 0 {
		opts.Rows = 100_000
	}
	r := rng(opts.Seed ^ 0x5a1e5)
	const (
		stores   = 600
		products = 3000
		brands   = 180
		cats     = 25
		people   = 400
		days     = 730
	)
	// Hierarchies as fixed mappings: store → state → region, product → brand →
	// category. Functional dependencies mean e.g. |(store_id, store_state)| =
	// |store_id|, which is what makes hierarchy merges nearly free.
	storeState := make([]int, stores)
	for i := range storeState {
		storeState[i] = r.Intn(50)
	}
	stateRegion := make([]int, 50)
	for i := range stateRegion {
		stateRegion[i] = r.Intn(len(salesRegions))
	}
	productBrand := make([]int, products)
	for i := range productBrand {
		productBrand[i] = r.Intn(brands)
	}
	brandCat := make([]int, brands)
	for i := range brandCat {
		brandCat[i] = r.Intn(cats)
	}
	t := table.New("sales", SalesDefs())
	for i := 0; i < opts.Rows; i++ {
		store := r.Intn(stores)
		prod := r.Intn(products)
		state := storeState[store]
		brand := productBrand[prod]
		t.AppendRow(
			table.Int(int64(store)),
			table.Str(fmt.Sprintf("ST%02d", state)),
			table.Str(salesRegions[stateRegion[state]]),
			table.Int(int64(prod)),
			table.Str(fmt.Sprintf("BR%03d", brand)),
			table.Str(fmt.Sprintf("CAT%02d", brandCat[brand])),
			table.Str(pick(r, salesSegments)),
			table.Int(int64(r.Intn(2))),
			table.Str(pick(r, salesChannels)),
			table.Str(pick(r, salesPayments)),
			table.Date(int64(r.Intn(days))),
			table.Str(pick(r, salesShip)),
			table.Int(int64(1+r.Intn(20))),
			table.Int(int64(r.Intn(12))),
			table.Int(int64(r.Intn(people))),
		)
	}
	return t
}

// SalesSC returns all 15 single-column workload ordinals.
func SalesSC() []int {
	out := make([]int, salesNumCols)
	for i := range out {
		out[i] = i
	}
	return out
}
