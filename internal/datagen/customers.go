package datagen

import (
	"fmt"

	"gbmqo/internal/table"
)

// CustomersOpts configures the Customer relation generator from the paper's
// introduction: Customer(LastName, FirstName, MI, Gender, Address, City,
// State, Zip, Country). The generated data deliberately contains the quality
// problems the paper motivates data analysts to hunt for: more than 50
// distinct State values for USA customers (typos), missing (NULL) values in
// several columns, and (LastName, FirstName, MI, Zip) being *almost* — but not
// exactly — a key.
type CustomersOpts struct {
	Rows int
	Seed int64
}

// Customer column ordinals.
const (
	CLastName = iota
	CFirstName
	CMI
	CGender
	CAddress
	CCity
	CState
	CZip
	CCountry
	customersNumCols
)

var (
	lastNames = []string{
		"SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER",
		"DAVIS", "RODRIGUEZ", "MARTINEZ", "HERNANDEZ", "LOPEZ", "GONZALEZ",
		"WILSON", "ANDERSON", "THOMAS", "TAYLOR", "MOORE", "JACKSON", "MARTIN",
		"LEE", "PEREZ", "THOMPSON", "WHITE", "HARRIS", "SANCHEZ", "CLARK",
		"RAMIREZ", "LEWIS", "ROBINSON", "WALKER", "YOUNG", "ALLEN", "KING",
	}
	firstNames = []string{
		"JAMES", "MARY", "ROBERT", "PATRICIA", "JOHN", "JENNIFER", "MICHAEL",
		"LINDA", "DAVID", "ELIZABETH", "WILLIAM", "BARBARA", "RICHARD",
		"SUSAN", "JOSEPH", "JESSICA", "THOMAS", "SARAH", "CHARLES", "KAREN",
	}
	usStates = []string{
		"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID",
		"IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS",
		"MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK",
		"OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
		"WI", "WY",
	}
	// Dirty state values that push the distinct count past 50 — the paper's
	// concrete data-quality example ("if the number of distinct values in the
	// State column ... is more than 50, this could indicate a potential
	// problem with data quality").
	dirtyStates = []string{"CALIFORNIA", "Tex", "N.Y.", "FLA", "wa", "Ohio."}
	streets     = []string{"MAIN ST", "OAK AVE", "PARK BLVD", "CEDAR LN", "ELM DR", "LAKE RD", "HILL CT"}
)

// CustomersDefs returns the Customer schema.
func CustomersDefs() []table.ColumnDef {
	return []table.ColumnDef{
		{Name: "LastName", Typ: table.TString},
		{Name: "FirstName", Typ: table.TString},
		{Name: "MI", Typ: table.TString},
		{Name: "Gender", Typ: table.TString},
		{Name: "Address", Typ: table.TString},
		{Name: "City", Typ: table.TString},
		{Name: "State", Typ: table.TString},
		{Name: "Zip", Typ: table.TString},
		{Name: "Country", Typ: table.TString},
	}
}

// Customers generates the Customer table with injected quality defects.
func Customers(opts CustomersOpts) *table.Table {
	if opts.Rows <= 0 {
		opts.Rows = 20_000
	}
	r := rng(opts.Seed ^ 0xc057)
	t := table.New("customer", CustomersDefs())
	appendOne := func() {
		state := pick(r, usStates)
		if r.Intn(400) == 0 {
			state = pick(r, dirtyStates)
		}
		mi := table.Str(string(rune('A' + r.Intn(26))))
		if r.Intn(5) == 0 {
			mi = table.Null(table.TString)
		}
		gender := table.Str([]string{"M", "F"}[r.Intn(2)])
		switch r.Intn(50) {
		case 0:
			gender = table.Null(table.TString)
		case 1:
			gender = table.Str("U")
		}
		country := table.Str("USA")
		if r.Intn(300) == 0 {
			country = table.Str(pick(r, []string{"U.S.A.", "US", "United States"}))
		}
		t.AppendRow(
			table.Str(pick(r, lastNames)),
			table.Str(pick(r, firstNames)),
			mi,
			gender,
			table.Str(fmt.Sprintf("%d %s", 1+r.Intn(9999), pick(r, streets))),
			table.Str(fmt.Sprintf("CITY%03d", r.Intn(180))),
			table.Str(state),
			table.Str(fmt.Sprintf("%05d", 10000+r.Intn(2000))),
			country,
		)
	}
	for i := 0; i < opts.Rows; i++ {
		appendOne()
	}
	// Duplicate a handful of rows so (LastName, FirstName, MI, Zip) is almost
	// — but not exactly — a key.
	dups := opts.Rows / 2000
	if dups == 0 {
		dups = 2
	}
	for i := 0; i < dups; i++ {
		src := r.Intn(t.NumRows())
		t.AppendRow(t.Row(src)...)
	}
	return t
}

// CustomersSC returns all single-column workload ordinals.
func CustomersSC() []int {
	out := make([]int, customersNumCols)
	for i := range out {
		out[i] = i
	}
	return out
}
