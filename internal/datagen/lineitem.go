package datagen

import (
	"fmt"
	"math/rand"

	"gbmqo/internal/table"
)

// LineitemOpts configures the TPC-H-like lineitem generator.
type LineitemOpts struct {
	Rows int
	Seed int64
	// Zipf is the skew factor z applied to categorical/identifier value
	// selection (0 = uniform, the TPC-H default; §6.8 sweeps 0..3).
	Zipf float64
	// Days is the shipdate domain size. The default (120) keeps the
	// date-cardinality-to-row-count ratio of the paper's 6M-row / ~2500-day
	// setup at our reduced scale: what matters for plan choice is that the
	// NDV of merged date sets stays well below the row count.
	Days int
}

func (o *LineitemOpts) normalize() {
	if o.Rows <= 0 {
		o.Rows = 100_000
	}
	if o.Days <= 0 {
		o.Days = 120
	}
}

// Lineitem column ordinals, in schema order.
const (
	LOrderKey = iota
	LPartKey
	LSuppKey
	LLineNumber
	LQuantity
	LExtendedPrice
	LDiscount
	LTax
	LReturnFlag
	LLineStatus
	LShipDate
	LCommitDate
	LReceiptDate
	LShipInstruct
	LShipMode
	LComment
	lineitemNumCols
)

var (
	returnFlags   = []string{"N", "A", "R"}
	lineStatuses  = []string{"O", "F"}
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes     = []string{"AIR", "AIR REG", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK"}
	commentWords  = []string{
		"carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
		"requests", "packages", "accounts", "ideas", "pending", "final",
		"express", "regular", "special", "bold", "ironic", "even", "silent",
		"above", "against", "along", "among", "sleep", "wake", "nag", "haggle",
	}
)

// LineitemDefs returns the lineitem schema.
func LineitemDefs() []table.ColumnDef {
	return []table.ColumnDef{
		{Name: "l_orderkey", Typ: table.TInt64},
		{Name: "l_partkey", Typ: table.TInt64},
		{Name: "l_suppkey", Typ: table.TInt64},
		{Name: "l_linenumber", Typ: table.TInt64},
		{Name: "l_quantity", Typ: table.TInt64},
		{Name: "l_extendedprice", Typ: table.TFloat64},
		{Name: "l_discount", Typ: table.TFloat64},
		{Name: "l_tax", Typ: table.TFloat64},
		{Name: "l_returnflag", Typ: table.TString},
		{Name: "l_linestatus", Typ: table.TString},
		{Name: "l_shipdate", Typ: table.TDate},
		{Name: "l_commitdate", Typ: table.TDate},
		{Name: "l_receiptdate", Typ: table.TDate},
		{Name: "l_shipinstruct", Typ: table.TString},
		{Name: "l_shipmode", Typ: table.TString},
		{Name: "l_comment", Typ: table.TString},
	}
}

// Lineitem generates a TPC-H-shaped lineitem table. Cardinality structure
// (domains are scaled so NDV/rowcount ratios at laptop row counts match the
// paper's 6M-row setup — the quantity that decides which merges pay off):
//
//   - l_orderkey/l_partkey/l_suppkey: high/medium NDV identifiers;
//   - l_linenumber (4), l_quantity (10), l_discount (11), l_tax (9),
//     l_returnflag (3), l_linestatus (2), l_shipinstruct (4), l_shipmode (7):
//     the low-NDV columns the paper's optimizer merges into one intermediate;
//   - l_shipdate / l_commitdate / l_receiptdate: correlated dates (receipt =
//     ship + 1..3, commit = ship + 4..10) so merged date sets stay well below
//     the row count, reproducing the paper's Example 1 plan where
//     (l_receiptdate, l_commitdate) is materialized as one intermediate;
//   - l_comment: high-NDV text that no merge helps (its §6.9 role).
func Lineitem(opts LineitemOpts) *table.Table {
	opts.normalize()
	r := rng(opts.Seed ^ 0x11ea17e4)
	draw := newZipfDrawer(r, opts.Zipf)
	t := table.New("lineitem", LineitemDefs())
	orders := opts.Rows/4 + 1
	parts := opts.Rows/20 + 1
	supps := opts.Rows/100 + 1
	for i := 0; i < opts.Rows; i++ {
		ship := int64(draw.index(opts.Days))
		receipt := ship + 1 + int64(r.Intn(3))
		commit := ship + 4 + int64(r.Intn(7))
		qty := int64(1 + draw.index(10))
		price := float64(qty) * (900 + float64(r.Intn(100_000))/100)
		t.AppendRow(
			table.Int(int64(draw.index(orders))),
			table.Int(int64(draw.index(parts))),
			table.Int(int64(draw.index(supps))),
			table.Int(int64(1+r.Intn(4))),
			table.Int(qty),
			table.Float(price),
			table.Float(float64(draw.index(11))/100),
			table.Float(float64(draw.index(9))/100),
			table.Str(returnFlags[draw.index(len(returnFlags))]),
			table.Str(lineStatuses[draw.index(len(lineStatuses))]),
			table.Date(ship),
			table.Date(commit),
			table.Date(receipt),
			table.Str(shipInstructs[draw.index(len(shipInstructs))]),
			table.Str(shipModes[draw.index(len(shipModes))]),
			table.Str(randComment(r)),
		)
	}
	return t
}

func randComment(r *rand.Rand) string {
	n := 3 + r.Intn(4)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += pick(r, commentWords)
	}
	// Suffix a number so most comments are distinct, like real l_comment.
	return fmt.Sprintf("%s %d", s, r.Intn(1_000_000))
}

// LineitemSC returns the column ordinals of the paper's "SC" workload on
// lineitem: all single-column Group By queries except the floating-point
// columns (l_extendedprice, l_discount, l_tax) and the near-unique l_orderkey,
// i.e. 12 columns (§6.1: "the input was 12 single column Group By queries").
func LineitemSC() []int {
	return []int{
		LPartKey, LSuppKey, LLineNumber, LQuantity, LReturnFlag, LLineStatus,
		LShipDate, LCommitDate, LReceiptDate, LShipInstruct, LShipMode, LComment,
	}
}

// LineitemCONT returns the §6.1 "CONT" workload: grouping sets with many
// containment relationships — {(ship), (commit), (receipt), (ship, commit),
// (ship, receipt), (commit, receipt)}.
func LineitemCONT() [][]int {
	return [][]int{
		{LShipDate},
		{LCommitDate},
		{LReceiptDate},
		{LShipDate, LCommitDate},
		{LShipDate, LReceiptDate},
		{LCommitDate, LReceiptDate},
	}
}
