package cost

import (
	"math/rand"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/index"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// testEnv builds a 3-column table with known NDVs: a∈[0,4) b∈[0,50) c near-unique.
func testEnv(t *testing.T, rows int) *Env {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	tb := table.New("t", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TInt64},
		{Name: "c", Typ: table.TInt64},
	})
	for i := 0; i < rows; i++ {
		tb.AppendRow(table.Int(int64(r.Intn(4))), table.Int(int64(r.Intn(50))), table.Int(int64(i)))
	}
	return NewEnv(tb, stats.NewService(stats.Exact, 0, 1), nil)
}

func TestEnvBasics(t *testing.T) {
	env := testEnv(t, 1000)
	if env.BaseRows() != 1000 {
		t.Fatalf("BaseRows = %v", env.BaseRows())
	}
	if got := env.NDV(colset.Of(0)); got != 4 {
		t.Fatalf("NDV(a) = %v", got)
	}
	if got := env.Width(colset.Of(0, 1)); got != 16 {
		t.Fatalf("Width = %v", got)
	}
	if env.Base().Name() != "t" {
		t.Fatal("Base wrong")
	}
}

func TestCardinalityModel(t *testing.T) {
	env := testEnv(t, 1000)
	m := NewCardinality(env)
	if m.Name() != "cardinality" {
		t.Fatal("name")
	}
	base := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0)})
	if base != 1000 {
		t.Fatalf("base edge = %v", base)
	}
	inter := m.EdgeCost(Edge{Parent: colset.Of(0, 1), V: colset.Of(0)})
	// |GroupBy(a,b)| = 200 at most (4×50); exact NDV from the data.
	want := env.NDV(colset.Of(0, 1))
	if inter != want {
		t.Fatalf("intermediate edge = %v, want %v", inter, want)
	}
	// Materialization is free under the cardinality model (§3.2.1).
	mat := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0), Materialize: true})
	if mat != base {
		t.Fatalf("materialize changed cardinality cost: %v vs %v", mat, base)
	}
	if m.Calls() != 3 { // three EdgeCost invocations; env.NDV doesn't count
		t.Fatalf("calls = %d, want 3", m.Calls())
	}
	m.ResetCalls()
	if m.Calls() != 0 {
		t.Fatal("ResetCalls failed")
	}
}

func TestOptimizerModelOrdering(t *testing.T) {
	env := testEnv(t, 10_000)
	m := NewOptimizer(env, Coefficients{})
	if m.Name() != "optimizer" {
		t.Fatal("name")
	}
	// Computing (a) from the small intermediate (a,b) must be much cheaper
	// than from the base table.
	fromBase := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0), NAggs: 1})
	fromAB := m.EdgeCost(Edge{Parent: colset.Of(0, 1), V: colset.Of(0), NAggs: 1})
	if fromAB >= fromBase/10 {
		t.Fatalf("intermediate edge %v not ≪ base edge %v", fromAB, fromBase)
	}
	// Materialization adds cost.
	plain := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0), NAggs: 1})
	mat := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0), NAggs: 1, Materialize: true})
	if mat <= plain {
		t.Fatalf("materialize did not add cost: %v vs %v", mat, plain)
	}
	// A wide grouping set costs more than a narrow one (more bytes scanned,
	// more groups built).
	narrow := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0), NAggs: 1})
	wide := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0, 1, 2), NAggs: 1})
	if wide <= narrow {
		t.Fatalf("wide set not more expensive: %v vs %v", wide, narrow)
	}
}

func TestOptimizerModelIndexPaths(t *testing.T) {
	env := testEnv(t, 10_000)
	m := NewOptimizer(env, Coefficients{})
	noIx := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(1), NAggs: 1})

	// Exact-match index: cost collapses to O(#groups).
	ix := index.Build(env.Base(), "ix_b", []int{1}, false)
	env.SetIndexes([]*index.Index{ix})
	exact := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(1), NAggs: 1})
	if exact >= noIx/10 {
		t.Fatalf("exact index path %v not ≪ hash path %v", exact, noIx)
	}

	// Prefix match: cheaper than hash but dearer than exact.
	ix2 := index.Build(env.Base(), "ix_bc", []int{1, 2}, false)
	env.SetIndexes([]*index.Index{ix2})
	prefix := m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(1), NAggs: 1})
	if prefix >= noIx || prefix <= exact {
		t.Fatalf("prefix path %v out of order (hash %v, exact %v)", prefix, noIx, exact)
	}

	// Index paths only apply to base-table scans.
	interBefore := m.EdgeCost(Edge{Parent: colset.Of(1, 2), V: colset.Of(1), NAggs: 1})
	env.SetIndexes(nil)
	interAfter := m.EdgeCost(Edge{Parent: colset.Of(1, 2), V: colset.Of(1), NAggs: 1})
	if interBefore != interAfter {
		t.Fatal("index affected non-base edge")
	}
}

func TestDefaultCoefficientsApplied(t *testing.T) {
	env := testEnv(t, 100)
	a := NewOptimizer(env, Coefficients{})
	b := NewOptimizer(env, DefaultCoefficients())
	ea := a.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0), NAggs: 1})
	eb := b.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0), NAggs: 1})
	if ea != eb {
		t.Fatalf("zero-value coefficients not defaulted: %v vs %v", ea, eb)
	}
}

func TestOptimizerCallsCounted(t *testing.T) {
	env := testEnv(t, 100)
	m := NewOptimizer(env, Coefficients{})
	for i := 0; i < 5; i++ {
		m.EdgeCost(Edge{ParentIsBase: true, V: colset.Of(0)})
	}
	if m.Calls() != 5 {
		t.Fatalf("calls = %d", m.Calls())
	}
}

func TestParallelDiscount(t *testing.T) {
	env := testEnv(t, 100_000)
	m := NewOptimizer(env, Coefficients{})
	edge := Edge{ParentIsBase: true, V: colset.Of(0), NAggs: 1}
	seq := m.EdgeCost(edge)
	p4 := Parallel(m, 4)
	if p4.Name() != "optimizer+dop4" {
		t.Fatalf("name = %q", p4.Name())
	}
	par := p4.EdgeCost(edge)
	// The scan-dominated edge must be discounted, but never by the full 4×:
	// per-group work stays serial and the merge term is added.
	if par >= seq {
		t.Fatalf("dop=4 edge %v not below sequential %v", par, seq)
	}
	if par <= seq/4 {
		t.Fatalf("dop=4 edge %v below the perfect-scaling floor %v", par, seq/4)
	}
	// dop=1 wrapping is a no-op.
	if got := Parallel(m, 1).EdgeCost(edge); got != seq {
		t.Fatalf("dop=1 edge %v, want %v", got, seq)
	}
	// Calls delegate to the wrapped model.
	m.ResetCalls()
	p4.EdgeCost(edge)
	if p4.Calls() != 1 || m.Calls() != 1 {
		t.Fatalf("calls not delegated: wrapper %d, inner %d", p4.Calls(), m.Calls())
	}
	// Cardinality model: plain division.
	c := NewCardinality(env)
	if got, want := Parallel(c, 4).EdgeCost(edge), c.EdgeCost(edge)/4; got != want {
		t.Fatalf("cardinality dop=4 = %v, want %v", got, want)
	}
	// Index paths are priced serially — no discount.
	ix := index.Build(env.Base(), "ix_a", []int{0}, false)
	env.SetIndexes([]*index.Index{ix})
	if got, want := p4.EdgeCost(edge), m.EdgeCost(edge); got != want {
		t.Fatalf("index path discounted: %v vs %v", got, want)
	}
}
