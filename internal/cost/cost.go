// Package cost implements the two cost models of §3.2. Both price one edge
// u→v of a logical plan — computing Group By v from parent u and optionally
// materializing the result — and both count how often they are consulted,
// which is the "number of optimizer calls" metric of §6.4–§6.6.
package cost

import (
	"fmt"

	"gbmqo/internal/colset"
	"gbmqo/internal/index"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// Env describes one base relation to the cost models: its cardinality, column
// widths, physical design, and the statistics used to estimate group-by
// cardinalities. Group By results are always subsets of base columns, so NDV
// estimates for any node in the search DAG come from base-table statistics
// (for v ⊆ u, the distinct combinations of v in GroupBy(u) equal those in R).
type Env struct {
	base    *table.Table
	stats   *stats.Service
	indexes []*index.Index
}

// NewEnv builds a costing environment. indexes may be nil.
func NewEnv(base *table.Table, svc *stats.Service, indexes []*index.Index) *Env {
	return &Env{base: base, stats: svc, indexes: indexes}
}

// Base returns the base relation.
func (e *Env) Base() *table.Table { return e.base }

// BaseRows returns |R|.
func (e *Env) BaseRows() float64 { return float64(e.base.NumRows()) }

// NDV estimates |GroupBy(set)| through the statistics service.
func (e *Env) NDV(set colset.Set) float64 { return e.stats.NDV(e.base, set) }

// CachedNDV answers |GroupBy(set)| from already-built statistics without
// creating any (see stats.Service.CachedNDV). The execution layer's kernel
// chooser reads estimates through this so choosing a kernel never triggers
// mid-query profiling.
func (e *Env) CachedNDV(set colset.Set) (float64, bool) { return e.stats.CachedNDV(e.base, set) }

// Width returns the average byte width of the given base columns.
func (e *Env) Width(set colset.Set) float64 { return e.base.WidthBytes(set) }

// Indexes returns the physical design.
func (e *Env) Indexes() []*index.Index { return e.indexes }

// SetIndexes replaces the physical design (used by the §6.9 experiment as it
// adds indexes step by step).
func (e *Env) SetIndexes(ixs []*index.Index) { e.indexes = ixs }

// Edge identifies one plan edge for costing. ParentIsBase distinguishes the
// root relation R from an intermediate node with grouping set Parent.
type Edge struct {
	ParentIsBase bool
	Parent       colset.Set // grouping set of the parent when not base
	V            colset.Set // grouping set being computed
	NAggs        int        // number of aggregate columns carried
	Materialize  bool       // v is an intermediate that must be written out
}

// Model prices plan edges.
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// EdgeCost estimates the cost of one edge.
	EdgeCost(Edge) float64
	// Calls returns how many edge costings have been performed — the paper's
	// "number of calls to the query optimizer" metric.
	Calls() int
	// ResetCalls zeroes the counter.
	ResetCalls()
}

// counter implements call accounting for embedding into models.
type counter struct{ n int }

func (c *counter) Calls() int  { return c.n }
func (c *counter) ResetCalls() { c.n = 0 }
func (c *counter) bump()       { c.n++ }

// Cardinality is the §3.2.1 model: the cost of an edge u→v is |u|, the number
// of rows scanned; materialization is free. Its simplicity is what makes the
// pruning-soundness claims (§4.3) provable, and the NP-hardness reduction
// (Appendix A) is stated against it.
type Cardinality struct {
	counter
	env *Env
}

// NewCardinality builds the cardinality model over env.
func NewCardinality(env *Env) *Cardinality { return &Cardinality{env: env} }

// Name implements Model.
func (m *Cardinality) Name() string { return "cardinality" }

// EdgeCost implements Model: cost = |parent|.
func (m *Cardinality) EdgeCost(e Edge) float64 {
	m.bump()
	if e.ParentIsBase {
		return m.env.BaseRows()
	}
	return m.env.NDV(e.Parent)
}

// Coefficients tunes the Optimizer model. The defaults were calibrated
// against the execution engine (see TestOptimizerModelTracksEngine) so that
// estimated costs rank plans the way wall-clock times do.
type Coefficients struct {
	// ReadByte is the cost of scanning one byte from a table.
	ReadByte float64
	// WriteByte is the cost of materializing one byte into a temp table.
	WriteByte float64
	// HashRow is the per-row cost of hashing/probing in a hash aggregate.
	HashRow float64
	// GroupBuild is the per-output-group cost of creating a group.
	GroupBuild float64
	// StreamRow is the per-row cost of boundary detection when streaming an
	// index in order (replaces HashRow on index paths).
	StreamRow float64
	// IndexGroupRead is the per-group cost of the exact-match index path that
	// reads counts off precomputed boundaries.
	IndexGroupRead float64
	// AggWidth is the assumed byte width of one aggregate column.
	AggWidth float64
}

// DefaultCoefficients returns the calibrated defaults. The ratios were fitted
// against the execution engine: hashing one row costs ~40 units, emitting one
// output group (hash-table insert, key-code copy, aggregate-dictionary
// interning) ~200 units, and materializing adds ~4 units per byte. Getting
// the per-group terms right is what stops the optimizer from accepting
// merges whose intermediate is nearly as large as the base table.
func DefaultCoefficients() Coefficients {
	return Coefficients{
		ReadByte:       1,
		WriteByte:      4,
		HashRow:        40,
		GroupBuild:     200,
		StreamRow:      10,
		IndexGroupRead: 100,
		AggWidth:       8,
	}
}

// codeWidth is the per-column byte width of the engine's row-store scan image
// (table.RowImage stores one 4-byte code per column per row). Scan and
// materialization costs are expressed against this width so the model tracks
// the engine's real memory traffic.
const codeWidth = 4.0

// Optimizer is the §3.2.2 model: it prices the actual physical work of the
// execution engine — scan, aggregate, materialize — and is aware of the
// physical design, so (like a commercial optimizer's what-if mode) an index
// on the grouping columns lowers the estimate and changes plan choice (§6.9).
// Scans are priced row-store style: a Group By over relation u reads u's
// full row width regardless of how few columns it groups on (the engine's
// table.RowImage behaves the same way), which is exactly why computing many
// narrow Group Bys from a narrow materialized intermediate wins.
type Optimizer struct {
	counter
	env  *Env
	coef Coefficients
}

// NewOptimizer builds the optimizer cost model with the given coefficients
// (zero value selects the defaults).
func NewOptimizer(env *Env, coef Coefficients) *Optimizer {
	if coef == (Coefficients{}) {
		coef = DefaultCoefficients()
	}
	return &Optimizer{env: env, coef: coef}
}

// Name implements Model.
func (m *Optimizer) Name() string { return "optimizer" }

// EdgeCost implements Model.
func (m *Optimizer) EdgeCost(e Edge) float64 {
	m.bump()
	return m.edgeCostDOP(e, 1)
}

// edgeCostDOP prices an edge executed by dop morsel workers. The sequential
// model is the dop=1 special case. Per-row scan/hash work divides across
// workers; per-group work (group build, materialization) stays serial, and
// the merge phase re-touches every output group once per extra worker. Index
// paths are not parallelized by the executor and are priced serially.
func (m *Optimizer) edgeCostDOP(e Edge, dop float64) float64 {
	c := m.coef
	groupsV := m.env.NDV(e.V)
	// Result row width: one code per grouping column plus the aggregates.
	widthV := codeWidth*float64(e.V.Len()) + float64(e.NAggs)*c.AggWidth

	var compute float64
	switch {
	case e.ParentIsBase && m.exactIndex(e.V) != nil:
		// Counts straight off index boundaries: O(#groups), no base scan.
		compute = groupsV * (widthV*c.ReadByte + c.IndexGroupRead)
	case e.ParentIsBase && m.prefixIndex(e.V) != nil:
		// Prefix-match index path: walk the index's full-key group
		// boundaries, O(#full-key groups), never touching the base table.
		ix := m.prefixIndex(e.V)
		compute = float64(ix.NumGroups())*(codeWidth*float64(e.V.Len())*c.ReadByte+c.StreamRow) + groupsV*c.GroupBuild
	default:
		// Row-store hash aggregate: the scan pays the parent's full width.
		rows := m.env.BaseRows()
		scanWidth := codeWidth * float64(m.env.Base().NumCols())
		if !e.ParentIsBase {
			rows = m.env.NDV(e.Parent)
			scanWidth = codeWidth*float64(e.Parent.Len()) + float64(e.NAggs)*c.AggWidth
		}
		compute = rows*(scanWidth*c.ReadByte+c.HashRow)/dop + groupsV*c.GroupBuild
		if dop > 1 {
			// Merging worker-local tables probes every group once per worker.
			compute += (dop - 1) * groupsV * c.HashRow
		}
	}
	if e.Materialize {
		compute += groupsV * widthV * c.WriteByte
	}
	return compute
}

// Parallel wraps a model with the morsel-driven executor's
// degree-of-parallelism discount: per-row scan/hash work divides across dop
// workers while per-group work stays serial and merging re-touches every
// group once per extra worker (see Optimizer.edgeCostDOP). Plan *choice*
// keeps using the wrapped sequential model — the paper's — so enabling
// parallel execution never changes plan shape; this wrapper exists to report
// the expected parallel cost of a chosen plan alongside the sequential
// estimate. Models without a parallel formulation (e.g. test doubles) pass
// through undiscounted except Cardinality, whose pure scan cost divides.
func Parallel(m Model, dop int) Model {
	if dop < 1 {
		dop = 1
	}
	return &parallelModel{inner: m, dop: float64(dop)}
}

type parallelModel struct {
	inner Model
	dop   float64
}

// Name implements Model.
func (p *parallelModel) Name() string {
	return fmt.Sprintf("%s+dop%d", p.inner.Name(), int(p.dop))
}

// Calls implements Model, delegating to the wrapped model's counter.
func (p *parallelModel) Calls() int { return p.inner.Calls() }

// ResetCalls implements Model.
func (p *parallelModel) ResetCalls() { p.inner.ResetCalls() }

// EdgeCost implements Model.
func (p *parallelModel) EdgeCost(e Edge) float64 {
	switch m := p.inner.(type) {
	case *Optimizer:
		m.bump()
		return m.edgeCostDOP(e, p.dop)
	case *Cardinality:
		return m.EdgeCost(e) / p.dop
	default:
		return p.inner.EdgeCost(e)
	}
}

// exactIndex returns an index whose full key is exactly v, if any.
func (m *Optimizer) exactIndex(v colset.Set) *index.Index {
	best := index.BestFor(m.env.indexes, v)
	if best != nil && best.ExactMatch(v) {
		return best
	}
	return nil
}

// prefixIndex returns an index having v as a proper key prefix, if any.
func (m *Optimizer) prefixIndex(v colset.Set) *index.Index {
	best := index.BestFor(m.env.indexes, v)
	if best != nil && best.PrefixLen(v) > 0 {
		return best
	}
	return nil
}
