package experiments

import (
	"fmt"
	"strings"

	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/engine"
	"gbmqo/internal/plan"
)

// Figure6Result reproduces the §4.4.1 intermediate-storage example and
// additionally measures real peak temp-table storage for a GB-MQO plan
// executed with and without the storage-minimizing schedule.
type Figure6Result struct {
	// FormulaBF and FormulaDF are the paper's example values: the recursion
	// must pick 18 (breadth-first at the root) over 20 (depth-first).
	FormulaBF float64
	FormulaDF float64
	// MeasuredScheduled and MeasuredDepthFirst are actual peak temp bytes for
	// a GB-MQO plan on lineitem, executed in scheduled vs naive DF order.
	MeasuredScheduled  float64
	MeasuredDepthFirst float64
}

// Figure6 evaluates the storage-minimization machinery.
func Figure6(s Scale) (*Figure6Result, error) {
	out := &Figure6Result{}

	// The paper's concrete example tree.
	root, size := paperFigure6Tree()
	marks := map[*plan.Node]plan.Traversal{}
	out.FormulaBF = plan.MinStorage(root, size, marks)
	// Force-depth-first value for the comparison the paper narrates.
	out.FormulaDF = size(root.Set) + maxChildStorage(root, size)

	// Measured: run the SC workload plan both ways and simulate peaks.
	li := lineitemSmall(s)
	e := newEngine(s.Seed)
	e.Catalog().Register(li)
	sets := singleSets(datagen.LineitemSC())
	p, _, _, err := e.Plan(engine.Request{Table: li.Name(), Sets: sets, Strategy: engine.StrategyGBMQO, Core: prunedGBMQO()})
	if err != nil {
		return nil, err
	}
	env, err := e.CostEnv(li.Name())
	if err != nil {
		return nil, err
	}
	sz := func(set colset.Set) float64 { return env.NDV(set) * (env.Width(set) + 8) }
	sched := plan.Schedule(p, sz)
	out.MeasuredScheduled, err = plan.SimulatePeak(sched, sz)
	if err != nil {
		return nil, err
	}
	out.MeasuredDepthFirst, err = plan.SimulatePeak(depthFirstSteps(p), sz)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func maxChildStorage(n *plan.Node, size plan.SizeFn) float64 {
	m := 0.0
	for _, c := range n.Children {
		if s := plan.MinStorage(c, size, nil); s > m {
			m = s
		}
	}
	return m
}

// paperFigure6Tree rebuilds the example of Figure 6 with its node sizes.
func paperFigure6Tree() (*plan.Node, plan.SizeFn) {
	abcd := plan.NewNode(colset.Of(0, 1, 2, 3), false)
	abc := plan.NewNode(colset.Of(0, 1, 2), false)
	bcd := plan.NewNode(colset.Of(1, 2, 3), false)
	ab := plan.NewNode(colset.Of(0, 1), true)
	bc := plan.NewNode(colset.Of(1, 2), true)
	ac := plan.NewNode(colset.Of(0, 2), true)
	bd := plan.NewNode(colset.Of(1, 3), true)
	cd := plan.NewNode(colset.Of(2, 3), true)
	abc.Children = []*plan.Node{ab, bc, ac}
	bcd.Children = []*plan.Node{bd, cd}
	abcd.Children = []*plan.Node{abc, bcd}
	sizes := map[colset.Set]float64{
		abcd.Set: 10, abc.Set: 6, bcd.Set: 2,
		ab.Set: 4, bc.Set: 1, ac.Set: 1, bd.Set: 1, cd.Set: 1,
	}
	return abcd, func(s colset.Set) float64 { return sizes[s] }
}

// depthFirstSteps builds the naive depth-first schedule for comparison.
func depthFirstSteps(p *plan.Plan) []plan.Step {
	var steps []plan.Step
	var walk func(n, parent *plan.Node)
	walk = func(n, parent *plan.Node) {
		steps = append(steps, plan.Step{Kind: plan.StepCompute, Node: n, Parent: parent})
		for _, c := range n.Children {
			walk(c, n)
		}
		if n.IsIntermediate() {
			steps = append(steps, plan.Step{Kind: plan.StepDrop, Node: n})
		}
	}
	for _, r := range p.Roots {
		walk(r, nil)
	}
	return steps
}

// String renders the storage study.
func (r *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6 (§4.4.1). Intermediate-storage minimization\n")
	fmt.Fprintf(&b, "paper example: formula picks %.0f (BF) over %.0f (DF)\n", r.FormulaBF, r.FormulaDF)
	fmt.Fprintf(&b, "lineitem SC plan: scheduled peak %.0f bytes, depth-first peak %.0f bytes\n",
		r.MeasuredScheduled, r.MeasuredDepthFirst)
	return b.String()
}
