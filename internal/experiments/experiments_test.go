package experiments

import (
	"strings"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/engine"
)

// testScale keeps unit-test runtime modest while preserving the NDV/rowcount
// regime the experiments rely on.
func testScale() Scale {
	return Scale{TPCHSmall: 8000, TPCHLarge: 20_000, Sales: 8000, NRef: 8000, Seed: 3}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range res.Rows {
		byName[r.Query] = r
	}
	// SC: GB-MQO must clearly beat the commercial GROUPING SETS emulation
	// (paper: 4.5x). The work ratio is deterministic; the wall speedup is
	// asserted loosely because unit-test timings are micro-scale.
	if byName["SC"].WorkRatio < 1.3 {
		t.Errorf("SC work ratio = %.2f, want > 1.3\n%s", byName["SC"].WorkRatio, res)
	}
	if byName["SC"].Speedup < 1.0 {
		t.Errorf("SC speedup = %.2f, want >= 1\n%s", byName["SC"].Speedup, res)
	}
	// CONT: both should be comparable (paper: 1.03x); we only require GB-MQO
	// not to lose badly.
	if byName["CONT"].Speedup < 0.6 {
		t.Errorf("CONT speedup = %.2f, want comparable\n%s", byName["CONT"].Speedup, res)
	}
	if !strings.Contains(res.String(), "Table 2") {
		t.Error("render missing title")
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 4 datasets × SC/TC
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// GB-MQO must reduce scan work everywhere (paper speedups: 1.9–4.5x;
		// the deterministic work ratio is the unit-test proxy because
		// micro-scale wall timings jitter). Wall time must at least not
		// collapse.
		min := 1.25
		if r.Workload == "TC" {
			min = 1.1 // pair NDVs approach the row count at unit-test scale
		}
		if r.WorkRatio < min {
			t.Errorf("%s %s work ratio = %.2f, want > %.2f", r.Dataset, r.Workload, r.WorkRatio, min)
		}
		if r.Speedup < 0.75 {
			t.Errorf("%s %s wall speedup = %.2f, collapsed", r.Dataset, r.Workload, r.Speedup)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	res, err := Figure9(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.GBMQOReduction < 0 || r.GBMQOReduction > 1 || r.OptimalReduction < 0 || r.OptimalReduction > 1 {
			t.Errorf("%s reductions out of range: %+v", r.Query, r)
		}
	}
	// Across ten queries GB-MQO must land close to optimal on average
	// (timing noise makes per-query comparison flaky).
	var mqo, opt float64
	for _, r := range res.Rows {
		mqo += r.GBMQOReduction
		opt += r.OptimalReduction
	}
	if mqo < opt-2.0 { // average gap under 20 points
		t.Errorf("GB-MQO far from optimal: sums %.2f vs %.2f", mqo, opt)
	}
}

func TestFigure10Shape(t *testing.T) {
	res, err := Figure10(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r.Columns != 12*(i+1) {
			t.Errorf("row %d columns = %d", i, r.Columns)
		}
		if i > 0 && r.OptimizerCalls <= res.Rows[i-1].OptimizerCalls {
			t.Errorf("optimizer calls not growing: %d then %d", res.Rows[i-1].OptimizerCalls, r.OptimizerCalls)
		}
		if r.GBMQOScan >= r.NaiveScan {
			t.Errorf("width %d: GB-MQO scanned %d rows, naive %d", r.Columns, r.GBMQOScan, r.NaiveScan)
		}
	}
}

func TestSection65Shape(t *testing.T) {
	res, err := Section65(testScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		// Binary restriction must reduce optimization work (paper: ~30%).
		if r.CallsBinary >= r.CallsAllTypes {
			t.Errorf("%s: binary calls %d >= all-types calls %d", r.Dataset, r.CallsBinary, r.CallsAllTypes)
		}
		// And execution quality must stay in the same ballpark (paper: <10%;
		// we allow 2x for timing noise at test scale).
		if float64(r.TimeBinary) > 2*float64(r.TimeAllTypes)+float64(msOf(2)) {
			t.Errorf("%s: binary plan much slower: %v vs %v", r.Dataset, r.TimeBinary, r.TimeAllTypes)
		}
	}
}

func msOf(n int) int64 { return int64(n) * 1_000_000 }

func TestFigure11Shape(t *testing.T) {
	res, err := Figure11(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 { // 4 datasets × 4 configs
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]Figure11Row{}
	for _, r := range res.Rows {
		byKey[r.Dataset+"/"+r.Config] = r
	}
	for _, ds := range []string{"tpch (sc)", "tpch (tc)", "sales (sc)", "sales (tc)"} {
		none := byKey[ds+"/None"]
		both := byKey[ds+"/S+M"]
		if both.OptimizerCalls >= none.OptimizerCalls {
			t.Errorf("%s: S+M calls %d >= None calls %d", ds, both.OptimizerCalls, none.OptimizerCalls)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	res, err := Figure12(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]Figure12Row{}
	for _, r := range res.Rows {
		byKey[r.Dataset+"/"+r.Workload] = r
		if r.StatsTime <= 0 {
			t.Errorf("%s %s: no statistics creation recorded", r.Dataset, r.Workload)
		}
	}
	// The paper's claim is relative: "the statistics creation overhead
	// appears to become smaller as the dataset becomes larger". The SC
	// workload has robust savings at any scale; the TC rows' savings sit
	// within timing noise at test scale, so the shrink assertion uses SC.
	small := byKey["tpch-small/SC"]
	large := byKey["tpch-large/SC"]
	if small.Savings <= 0 || large.Savings <= 0 {
		t.Fatalf("SC savings not positive: small %v, large %v", small.Savings, large.Savings)
	}
	if large.OverheadPct >= small.OverheadPct {
		t.Errorf("SC overhead did not shrink with scale: small %.1f%%, large %.1f%%",
			small.OverheadPct*100, large.OverheadPct*100)
	}
}

func TestFigure13Shape(t *testing.T) {
	res, err := Figure13(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's shape: the advantage grows with skew (sparser columns merge
	// better). Asserted on the deterministic work ratio.
	first, last := res.Rows[0].WorkRatio, res.Rows[len(res.Rows)-1].WorkRatio
	if last <= first {
		t.Errorf("work ratio not growing with skew: z=0 %.2f, z=3 %.2f\n%s", first, last, res)
	}
}

func TestFigure14Shape(t *testing.T) {
	res, err := Figure14(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 { // clustered-only + 10 steps
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0].GBMQOTime, res.Rows[len(res.Rows)-1].GBMQOTime
	if last >= first {
		t.Errorf("full physical design (%v) not faster than none (%v)\n%s", last, first, res)
	}
	// Plan adaptation: once l_receiptdate has its own index (step 1), it
	// should become (and stay) a singleton.
	if !res.Rows[1].ReceiptDateSingleton {
		t.Errorf("receiptdate not singleton after its index\n%s", res)
	}
}

func TestFigure6Storage(t *testing.T) {
	res, err := Figure6(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.FormulaBF != 18 || res.FormulaDF != 20 {
		t.Fatalf("paper example: BF %.0f DF %.0f, want 18/20", res.FormulaBF, res.FormulaDF)
	}
	if res.MeasuredScheduled > res.MeasuredDepthFirst {
		t.Fatalf("scheduled peak %.0f exceeds depth-first peak %.0f", res.MeasuredScheduled, res.MeasuredDepthFirst)
	}
	if !strings.Contains(res.String(), "18") {
		t.Error("render missing formula value")
	}
}

// TestExample1PlanShape anchors the paper's Example 1: on the SC workload
// the chosen plan must (a) merge the correlated date columns into one
// materialized intermediate, (b) merge low-cardinality flag-like columns into
// another, and (c) compute the near-unique l_comment directly from the base
// table (no merge can help it).
func TestExample1PlanShape(t *testing.T) {
	s := testScale()
	li := lineitemSmall(s)
	e := newEngine(s.Seed)
	e.Catalog().Register(li)
	p, _, _, err := e.Plan(engine.Request{
		Table: li.Name(), Sets: singleSets(datagen.LineitemSC()),
		Strategy: engine.StrategyGBMQO, Core: prunedGBMQO(),
	})
	if err != nil {
		t.Fatal(err)
	}
	comment := colset.Of(datagen.LComment)
	dates := colset.Of(datagen.LShipDate, datagen.LCommitDate, datagen.LReceiptDate)
	lowCols := colset.Of(datagen.LReturnFlag, datagen.LLineStatus, datagen.LShipMode,
		datagen.LShipInstruct, datagen.LQuantity, datagen.LLineNumber)

	var commentFromBase, datesMerged, lowMerged bool
	for _, r := range p.Roots {
		if r.Set == comment && len(r.Children) == 0 {
			commentFromBase = true
		}
		if r.Set.SubsetOf(dates) && r.Set.Len() >= 2 && r.IsIntermediate() {
			datesMerged = true
		}
		if r.Set.SubsetOf(lowCols) && r.Set.Len() >= 2 && r.IsIntermediate() {
			lowMerged = true
		}
	}
	if !commentFromBase {
		t.Errorf("l_comment not computed directly from base:\n%s", p)
	}
	if !datesMerged {
		t.Errorf("date columns not merged into an intermediate:\n%s", p)
	}
	if !lowMerged {
		t.Errorf("low-cardinality columns not merged:\n%s", p)
	}
}

func TestRendersNonEmpty(t *testing.T) {
	s := testScale()
	t2, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.String()) == 0 {
		t.Fatal("empty render")
	}
}
