package experiments

import (
	"fmt"
	"strings"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/engine"
)

// Table2Row is one row of the paper's Table 2 (§6.1): GROUPING SETS vs
// GB-MQO on the CONT and SC workloads. WorkRatio is the rows-scanned ratio, a
// deterministic hardware-independent companion to the wall-clock speedup.
type Table2Row struct {
	Query      string
	GrpSetTime time.Duration
	GBMQOTime  time.Duration
	Speedup    float64
	GrpSetScan int64
	GBMQOScan  int64
	WorkRatio  float64
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs the §6.1 comparison: the commercial GROUPING SETS emulation
// against GB-MQO on TPC-H lineitem, for the containment-rich CONT input and
// the non-overlapping SC input. The paper reports speedups of ~1.03 (CONT)
// and ~4.5 (SC).
func Table2(s Scale) (*Table2Result, error) {
	li := lineitemSmall(s)
	e := newEngine(s.Seed)
	e.Catalog().Register(li)

	var contSets []colset.Set
	for _, cols := range datagen.LineitemCONT() {
		contSets = append(contSets, colset.Of(cols...))
	}
	scSets := singleSets(datagen.LineitemSC())

	out := &Table2Result{}
	for _, w := range []struct {
		name string
		sets []colset.Set
	}{{"CONT", contSets}, {"SC", scSets}} {
		gs, gsRes, err := measure(e, engine.Request{Table: li.Name(), Sets: w.sets, Strategy: engine.StrategyGroupingSets})
		if err != nil {
			return nil, err
		}
		mqo, mqoRes, err := measure(e, engine.Request{Table: li.Name(), Sets: w.sets, Strategy: engine.StrategyGBMQO, Core: prunedGBMQO()})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table2Row{
			Query: w.name, GrpSetTime: gs, GBMQOTime: mqo, Speedup: speedup(gs, mqo),
			GrpSetScan: gsRes.Report.RowsScanned, GBMQOScan: mqoRes.Report.RowsScanned,
			WorkRatio: float64(gsRes.Report.RowsScanned) / float64(mqoRes.Report.RowsScanned),
		})
	}
	return out, nil
}

// String renders Table 2.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2. Speedup over GROUPING SETS (TPC-H lineitem)\n")
	fmt.Fprintf(&b, "%-6s %14s %14s %9s %10s\n", "Query", "GrpSet Time", "GB-MQO Time", "Speedup", "Work ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s %14s %14s %8.2fx %9.2fx\n", row.Query,
			row.GrpSetTime.Round(time.Microsecond), row.GBMQOTime.Round(time.Microsecond),
			row.Speedup, row.WorkRatio)
	}
	return b.String()
}

// Table3Row is one row of Table 3 (§6.2): GB-MQO speedup over the naïve plan
// per dataset and workload.
type Table3Row struct {
	Dataset   string
	Workload  string // SC or TC
	NumGroups int
	NaiveTime time.Duration
	GBMQOTime time.Duration
	Speedup   float64
	NaiveScan int64
	GBMQOScan int64
	// WorkRatio is the deterministic rows-scanned ratio.
	WorkRatio float64
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs single-column (SC) and two-column (TC) workloads over the four
// datasets, comparing GB-MQO against the naïve plan. The paper reports
// speedups of 1.9–4.5.
func Table3(s Scale) (*Table3Result, error) {
	out := &Table3Result{}
	datasets := []struct {
		name string
		get  func() (string, *engine.Engine, []int)
	}{
		{"sales", func() (string, *engine.Engine, []int) {
			t := salesTable(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, datagen.SalesSC()
		}},
		{"nref", func() (string, *engine.Engine, []int) {
			t := nrefTable(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, datagen.NRefSC()
		}},
		{"tpch-large", func() (string, *engine.Engine, []int) {
			t := lineitemLarge(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, datagen.LineitemSC()
		}},
		{"tpch-small", func() (string, *engine.Engine, []int) {
			t := lineitemSmall(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, datagen.LineitemSC()
		}},
	}
	for _, d := range datasets {
		name, e, ords := d.get()
		for _, w := range []struct {
			kind string
			sets []colset.Set
		}{{"SC", singleSets(ords)}, {"TC", pairSets(ords)}} {
			naive, nRes, err := measure(e, engine.Request{Table: name, Sets: w.sets, Strategy: engine.StrategyNaive})
			if err != nil {
				return nil, err
			}
			mqo, mRes, err := measure(e, engine.Request{Table: name, Sets: w.sets, Strategy: engine.StrategyGBMQO, Core: prunedGBMQO()})
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Table3Row{
				Dataset: d.name, Workload: w.kind, NumGroups: len(w.sets),
				NaiveTime: naive, GBMQOTime: mqo, Speedup: speedup(naive, mqo),
				NaiveScan: nRes.Report.RowsScanned, GBMQOScan: mRes.Report.RowsScanned,
				WorkRatio: float64(nRes.Report.RowsScanned) / float64(mRes.Report.RowsScanned),
			})
		}
	}
	return out, nil
}

// String renders Table 3.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3. Speedup over naive plan on different datasets\n")
	fmt.Fprintf(&b, "%-12s %-4s %8s %14s %14s %9s %10s\n", "Dataset", "WL", "#GrBys", "Naive", "GB-MQO", "Speedup", "Work ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-4s %8d %14s %14s %8.2fx %9.2fx\n",
			row.Dataset, row.Workload, row.NumGroups,
			row.NaiveTime.Round(time.Microsecond), row.GBMQOTime.Round(time.Microsecond),
			row.Speedup, row.WorkRatio)
	}
	return b.String()
}
