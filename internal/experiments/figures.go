package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/datagen"
	"gbmqo/internal/engine"
	"gbmqo/internal/index"
	"gbmqo/internal/plan"
	"gbmqo/internal/table"
)

// Figure9Row is one query of §6.3's quality comparison: run-time reduction
// against the naïve plan for the GB-MQO plan and the exhaustive optimum.
type Figure9Row struct {
	Query            string
	GBMQOReduction   float64
	OptimalReduction float64
}

// Figure9Result reproduces Figure 9.
type Figure9Result struct {
	Rows []Figure9Row
}

// Figure9 generates 10 random 7-column single-column workloads from the 12
// non-float lineitem columns (the paper's setup, restricted to 7 columns
// because the exhaustive search is exponential) and compares the measured
// run-time reduction of the GB-MQO plan with the optimal plan's.
func Figure9(s Scale) (*Figure9Result, error) {
	li := lineitemSmall(s)
	e := newEngine(s.Seed)
	e.Catalog().Register(li)
	r := rand.New(rand.NewSource(s.Seed + 9))
	candidates := datagen.LineitemSC()
	out := &Figure9Result{}
	for q := 0; q < 10; q++ {
		perm := r.Perm(len(candidates))[:7]
		var sets []colset.Set
		for _, i := range perm {
			sets = append(sets, colset.Of(candidates[i]))
		}
		_, nRes, err := measure(e, engine.Request{Table: li.Name(), Sets: sets, Strategy: engine.StrategyNaive})
		if err != nil {
			return nil, err
		}
		_, mRes, err := measure(e, engine.Request{Table: li.Name(), Sets: sets, Strategy: engine.StrategyGBMQO, Core: prunedGBMQO()})
		if err != nil {
			return nil, err
		}
		_, oRes, err := measure(e, engine.Request{Table: li.Name(), Sets: sets, Strategy: engine.StrategyExhaustive})
		if err != nil {
			return nil, err
		}
		// Reductions are computed on the deterministic scan-work metric so
		// the per-query comparison is free of micro-scale timing jitter (the
		// paper's figure uses run time at 1-GB scale, where the same signal
		// dominates).
		out.Rows = append(out.Rows, Figure9Row{
			Query:            fmt.Sprintf("Q%d", q),
			GBMQOReduction:   workReduction(nRes.Report.RowsScanned, mRes.Report.RowsScanned),
			OptimalReduction: workReduction(nRes.Report.RowsScanned, oRes.Report.RowsScanned),
		})
	}
	return out, nil
}

// workReduction is `reduction` on the rows-scanned metric.
func workReduction(naive, other int64) float64 {
	if naive <= 0 {
		return 0
	}
	r := 1 - float64(other)/float64(naive)
	if r < 0 {
		r = 0
	}
	return r
}

// String renders Figure 9.
func (r *Figure9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9. Scan-work reduction vs naive: GB-MQO and exhaustive optimal\n")
	fmt.Fprintf(&b, "%-5s %10s %10s\n", "Query", "GB-MQO", "optimal")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-5s %9.1f%% %9.1f%%\n", row.Query, row.GBMQOReduction*100, row.OptimalReduction*100)
	}
	return b.String()
}

// Figure10Row is one width step of the §6.4 scaling study.
type Figure10Row struct {
	Columns        int
	OptimizerCalls int
	OptimizeTime   time.Duration
	NaiveTime      time.Duration
	GBMQOTime      time.Duration
	NaiveScan      int64
	GBMQOScan      int64
}

// Figure10Result reproduces Figure 10 (a) optimizer calls, (b) optimization
// time, (c) run time vs naive.
type Figure10Result struct {
	Rows []Figure10Row
}

// Figure10 widens the 12 non-float lineitem columns by repetition to 12, 24,
// 36 and 48 columns and requests all single-column Group Bys, tracking how
// the optimization cost grows (the paper: quadratic, "optimizing 48
// single-column Group By queries can be accomplished within 100 seconds" on
// 2005 hardware).
func Figure10(s Scale) (*Figure10Result, error) {
	li := lineitemSmall(s)
	narrow := li.Project("lineitem_narrow", datagen.LineitemSC())
	out := &Figure10Result{}
	for copies := 1; copies <= 4; copies++ {
		wide := datagen.Widen(narrow, copies)
		e := newEngine(s.Seed)
		e.Catalog().Register(wide)
		var sets []colset.Set
		for i := 0; i < wide.NumCols(); i++ {
			sets = append(sets, colset.Of(i))
		}
		naive, nRes, err := measure(e, engine.Request{Table: wide.Name(), Sets: sets, Strategy: engine.StrategyNaive})
		if err != nil {
			return nil, err
		}
		mqoTime, res, err := measure(e, engine.Request{Table: wide.Name(), Sets: sets, Strategy: engine.StrategyGBMQO, Core: prunedGBMQO()})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure10Row{
			Columns:        wide.NumCols(),
			OptimizerCalls: res.Search.OptimizerCalls,
			OptimizeTime:   res.Search.Elapsed,
			NaiveTime:      naive,
			GBMQOTime:      mqoTime,
			NaiveScan:      nRes.Report.RowsScanned,
			GBMQOScan:      res.Report.RowsScanned,
		})
	}
	return out, nil
}

// String renders Figure 10.
func (r *Figure10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10. Scaling with number of columns (all single-column Group Bys)\n")
	fmt.Fprintf(&b, "%8s %12s %14s %14s %14s\n", "#Columns", "Opt calls", "Opt time", "Naive", "GB-MQO")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12d %14s %14s %14s\n",
			row.Columns, row.OptimizerCalls, row.OptimizeTime.Round(time.Microsecond),
			row.NaiveTime.Round(time.Microsecond), row.GBMQOTime.Round(time.Microsecond))
	}
	return b.String()
}

// Section65Row is one dataset of the §6.5 binary-tree restriction study.
type Section65Row struct {
	Dataset       string
	CallsAllTypes int
	CallsBinary   int
	TimeAllTypes  time.Duration
	TimeBinary    time.Duration
}

// Section65Result reproduces the §6.5 text finding ("the number of optimizer
// calls reduced by 30%, while the difference in the execution times was less
// than 10%").
type Section65Result struct {
	Rows []Section65Row
}

// Section65 compares the full four-way SubPlanMerge against the type-(b)
// binary restriction on the TPC-H and SALES single-column workloads.
func Section65(s Scale) (*Section65Result, error) {
	out := &Section65Result{}
	for _, d := range []struct {
		name string
		get  func() (string, *engine.Engine, []int)
	}{
		{"tpch (sc)", func() (string, *engine.Engine, []int) {
			t := lineitemSmall(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, datagen.LineitemSC()
		}},
		{"sales (sc)", func() (string, *engine.Engine, []int) {
			t := salesTable(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, datagen.SalesSC()
		}},
	} {
		name, e, ords := d.get()
		sets := singleSets(ords)
		run := func(binary bool) (int, time.Duration, error) {
			opts := prunedGBMQO()
			opts.BinaryOnly = binary
			wall, res, err := measure(e, engine.Request{Table: name, Sets: sets, Strategy: engine.StrategyGBMQO, Core: opts})
			if err != nil {
				return 0, 0, err
			}
			return res.Search.OptimizerCalls, wall, nil
		}
		ca, ta, err := run(false)
		if err != nil {
			return nil, err
		}
		cb, tb, err := run(true)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Section65Row{Dataset: d.name, CallsAllTypes: ca, CallsBinary: cb, TimeAllTypes: ta, TimeBinary: tb})
	}
	return out, nil
}

// String renders the §6.5 comparison.
func (r *Section65Result) String() string {
	var b strings.Builder
	b.WriteString("Section 6.5. Binary-tree restriction (type (b) merges only)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s\n", "Dataset", "calls(all)", "calls(bin)", "time(all)", "time(bin)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12d %12d %12s %12s\n", row.Dataset,
			row.CallsAllTypes, row.CallsBinary,
			row.TimeAllTypes.Round(time.Microsecond), row.TimeBinary.Round(time.Microsecond))
	}
	return b.String()
}

// Figure11Row is one (dataset, workload, pruning-config) cell of §6.6.
type Figure11Row struct {
	Dataset        string
	Config         string // None, M, S, S+M
	OptimizerCalls int
	// Reduction is the scan-work reduction of the plan found under this
	// pruning configuration, against the naive plan — the quantity that must
	// NOT collapse when pruning removes optimizer calls.
	Reduction float64
}

// Figure11Result reproduces Figure 11 (a) optimizer calls and (b) run-time
// reduction for the pruning techniques.
type Figure11Result struct {
	Rows []Figure11Row
}

// Figure11 sweeps pruning configurations over SC and TC workloads on TPC-H
// and SALES. The paper: combined pruning cuts optimizer calls by up to 80%
// while the plan still reduces run time by more than 65% on the two-column
// workloads.
func Figure11(s Scale) (*Figure11Result, error) {
	out := &Figure11Result{}
	configs := []struct {
		name     string
		sub, mon bool
	}{{"None", false, false}, {"M", false, true}, {"S", true, false}, {"S+M", true, true}}
	for _, d := range []struct {
		name string
		get  func() (string, *engine.Engine, []colset.Set)
	}{
		{"tpch (sc)", func() (string, *engine.Engine, []colset.Set) {
			t := lineitemSmall(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, singleSets(datagen.LineitemSC())
		}},
		{"tpch (tc)", func() (string, *engine.Engine, []colset.Set) {
			t := lineitemSmall(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, pairSets(datagen.LineitemSC())
		}},
		{"sales (sc)", func() (string, *engine.Engine, []colset.Set) {
			t := salesTable(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, singleSets(datagen.SalesSC())
		}},
		{"sales (tc)", func() (string, *engine.Engine, []colset.Set) {
			t := salesTable(s)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			return t.Name(), e, pairSets(datagen.SalesSC())
		}},
	} {
		name, e, sets := d.get()
		_, nRes, err := measure(e, engine.Request{Table: name, Sets: sets, Strategy: engine.StrategyNaive})
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			opts := core.Options{PruneSubsumption: cfg.sub, PruneMonotonic: cfg.mon}
			_, res, err := measure(e, engine.Request{Table: name, Sets: sets, Strategy: engine.StrategyGBMQO, Core: opts})
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Figure11Row{
				Dataset: d.name, Config: cfg.name,
				OptimizerCalls: res.Search.OptimizerCalls,
				Reduction:      workReduction(nRes.Report.RowsScanned, res.Report.RowsScanned),
			})
		}
	}
	return out, nil
}

// String renders Figure 11.
func (r *Figure11Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 11. Pruning techniques: optimizer calls and scan-work reduction vs naive\n")
	fmt.Fprintf(&b, "%-12s %-6s %12s %12s\n", "Dataset", "Prune", "Opt calls", "Reduction")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-6s %12d %11.1f%%\n", row.Dataset, row.Config, row.OptimizerCalls, row.Reduction*100)
	}
	return b.String()
}

// Figure12Row is one cell of the §6.7 statistics-overhead study.
type Figure12Row struct {
	Dataset  string
	Workload string
	// StatsTime is wall time spent creating statistics during optimization.
	StatsTime time.Duration
	// Savings is naive minus GB-MQO execution time.
	Savings time.Duration
	// OverheadPct is StatsTime / Savings.
	OverheadPct float64
}

// Figure12Result reproduces Figure 12.
type Figure12Result struct {
	Rows []Figure12Row
}

// Figure12 measures statistics-creation time as a percentage of the running
// time saved by the GB-MQO plan, over TPC-H small/large × SC/TC. The paper
// reports 1–15%, shrinking as the dataset grows.
func Figure12(s Scale) (*Figure12Result, error) {
	out := &Figure12Result{}
	// The overhead ratio is only meaningful when execution dominates noise;
	// below ~30k rows the two-column workload's savings are within jitter, so
	// the experiment enforces a scale floor regardless of the requested Scale.
	small, large := s.TPCHSmall, s.TPCHLarge
	if small < 30_000 {
		small = 30_000
	}
	if large < 3*small {
		large = 3 * small
	}
	for _, d := range []struct {
		name string
		rows int
	}{{"tpch-small", small}, {"tpch-large", large}} {
		for _, w := range []string{"SC", "TC"} {
			t := cachedLineitem(d.rows, s.Seed)
			e := newEngine(s.Seed)
			e.Catalog().Register(t)
			var sets []colset.Set
			if w == "SC" {
				sets = singleSets(datagen.LineitemSC())
			} else {
				sets = pairSets(datagen.LineitemSC())
			}
			naive, _, err := measureMin(e, engine.Request{Table: t.Name(), Sets: sets, Strategy: engine.StrategyNaive}, 5)
			if err != nil {
				return nil, err
			}
			e.Catalog().Stats().ResetAccounting()
			mqo, _, err := measureMin(e, engine.Request{Table: t.Name(), Sets: sets, Strategy: engine.StrategyGBMQO, Core: prunedGBMQO()}, 5)
			if err != nil {
				return nil, err
			}
			acct := e.Catalog().Stats().Accounting()
			savings := naive - mqo
			pct := 0.0
			if savings > 0 {
				pct = float64(acct.CreateTime) / float64(savings)
			}
			out.Rows = append(out.Rows, Figure12Row{
				Dataset: d.name, Workload: w,
				StatsTime: acct.CreateTime, Savings: savings, OverheadPct: pct,
			})
		}
	}
	return out, nil
}

// String renders Figure 12.
func (r *Figure12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12. Statistics creation time vs running-time savings\n")
	fmt.Fprintf(&b, "%-12s %-4s %14s %14s %10s\n", "Dataset", "WL", "Stats time", "Savings", "Overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-4s %14s %14s %9.1f%%\n",
			row.Dataset, row.Workload,
			row.StatsTime.Round(time.Microsecond), row.Savings.Round(time.Microsecond), row.OverheadPct*100)
	}
	return b.String()
}

// Figure13Row is one skew level of §6.8.
type Figure13Row struct {
	Zipf    float64
	Speedup float64
	// WorkRatio is the deterministic rows-scanned ratio (naive / GB-MQO).
	WorkRatio float64
}

// Figure13Result reproduces Figure 13.
type Figure13Result struct {
	Rows []Figure13Row
}

// Figure13 sweeps Zipf skew 0–3 on lineitem and reports the GB-MQO speedup
// over the naïve plan for the SC workload. The paper's finding: more skew →
// fewer distinct values → merging becomes more attractive → speedup grows.
func Figure13(s Scale) (*Figure13Result, error) {
	out := &Figure13Result{}
	for _, z := range []float64{0, 0.5, 1, 1.5, 2, 2.5, 3} {
		z := z
		li := cached(fmt.Sprintf("li-%d-%d-z%.1f", s.TPCHSmall, s.Seed, z), func() *table.Table {
			return datagen.Lineitem(datagen.LineitemOpts{Rows: s.TPCHSmall, Seed: s.Seed, Zipf: z})
		})
		e := newEngine(s.Seed)
		e.Catalog().Register(li)
		sets := singleSets(datagen.LineitemSC())
		naive, nRes, err := measure(e, engine.Request{Table: li.Name(), Sets: sets, Strategy: engine.StrategyNaive})
		if err != nil {
			return nil, err
		}
		mqo, mRes, err := measure(e, engine.Request{Table: li.Name(), Sets: sets, Strategy: engine.StrategyGBMQO, Core: prunedGBMQO()})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure13Row{
			Zipf: z, Speedup: speedup(naive, mqo),
			WorkRatio: float64(nRes.Report.RowsScanned) / float64(mRes.Report.RowsScanned),
		})
	}
	return out, nil
}

// String renders Figure 13.
func (r *Figure13Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 13. Speedup vs data skew (Zipfian)\n")
	fmt.Fprintf(&b, "%6s %9s %11s\n", "Zipf", "Speedup", "Work ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6.1f %8.2fx %10.2fx\n", row.Zipf, row.Speedup, row.WorkRatio)
	}
	return b.String()
}

// Figure14Row is one physical-design step of §6.9.
type Figure14Row struct {
	Step      string
	Indexes   int
	GBMQOTime time.Duration
	// ReceiptDateSingleton reports whether l_receiptdate stayed un-merged in
	// the plan (the paper observes it becomes a singleton once indexed).
	ReceiptDateSingleton bool
}

// Figure14Result reproduces Figure 14.
type Figure14Result struct {
	Rows []Figure14Row
}

// Figure14 starts from a clustered index on the primary key and adds ten
// non-clustered indexes one per step, re-running the SC workload after each.
// The paper's findings: run time falls as indexes arrive (dramatically for
// the dense l_comment), and plans adapt — l_receiptdate merges with other
// dates until its own index appears.
func Figure14(s Scale) (*Figure14Result, error) {
	li := lineitemSmall(s)
	steps := []struct {
		label string
		col   int
	}{
		{"l_receiptdate", datagen.LReceiptDate},
		{"l_shipdate", datagen.LShipDate},
		{"l_commitdate", datagen.LCommitDate},
		{"l_partkey", datagen.LPartKey},
		{"l_suppkey", datagen.LSuppKey},
		{"l_returnflag", datagen.LReturnFlag},
		{"l_linestatus", datagen.LLineStatus},
		{"l_shipinstruct", datagen.LShipInstruct},
		{"l_shipmode", datagen.LShipMode},
		{"l_comment", datagen.LComment},
	}
	out := &Figure14Result{}
	e := newEngine(s.Seed)
	e.Catalog().Register(li)
	// Clustered index on the combined primary key (orderkey, linenumber).
	if err := e.Catalog().AddIndex(index.Build(li, "pk", []int{datagen.LOrderKey, datagen.LLineNumber}, true)); err != nil {
		return nil, err
	}
	sets := singleSets(datagen.LineitemSC())
	record := func(label string, n int) error {
		wall, res, err := measure(e, engine.Request{Table: li.Name(), Sets: sets, Strategy: engine.StrategyGBMQO, Core: prunedGBMQO()})
		if err != nil {
			return err
		}
		out.Rows = append(out.Rows, Figure14Row{
			Step: label, Indexes: n, GBMQOTime: wall,
			ReceiptDateSingleton: isSingletonRoot(res.Plan, datagen.LReceiptDate),
		})
		return nil
	}
	if err := record("clustered PK only", 0); err != nil {
		return nil, err
	}
	for i, st := range steps {
		if err := e.Catalog().AddIndex(index.Build(li, "nc_"+st.label, []int{st.col}, false)); err != nil {
			return nil, err
		}
		if err := record("+"+st.label, i+1); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// isSingletonRoot reports whether the single-column set {col} is a root
// sub-plan of its own (not merged under any intermediate).
func isSingletonRoot(p *plan.Plan, col int) bool {
	want := colset.Of(col)
	for _, r := range p.Roots {
		if r.Set == want && len(r.Children) == 0 {
			return true
		}
	}
	return false
}

// String renders Figure 14.
func (r *Figure14Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 14. TPC-H variation with physical design (SC workload)\n")
	fmt.Fprintf(&b, "%-20s %8s %14s %22s\n", "Step", "#NC ixs", "GB-MQO time", "receiptdate singleton")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %8d %14s %22v\n", row.Step, row.Indexes,
			row.GBMQOTime.Round(time.Microsecond), row.ReceiptDateSingleton)
	}
	return b.String()
}
