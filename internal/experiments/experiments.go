// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic substrate. Each experiment function
// returns a result struct with a String() renderer producing rows shaped like
// the paper's; cmd/experiments and the root benchmarks drive them. Absolute
// numbers differ from the paper (different hardware, reduced scale) — the
// quantities that must reproduce are the *shapes*: who wins, by roughly what
// factor, and where behaviour changes.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/datagen"
	"gbmqo/internal/engine"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// Scale sets dataset sizes. The defaults stand in for the paper's 6M-row
// TPC-H 1G, 60M-row TPC-H 10G, 24M-row SALES and 78M-row NREF datasets at
// laptop scale, preserving the NDV-to-rowcount ratios that drive plan choice.
type Scale struct {
	TPCHSmall int
	TPCHLarge int
	Sales     int
	NRef      int
	Seed      int64
}

// DefaultScale returns the benchmark-friendly sizes.
func DefaultScale() Scale {
	return Scale{TPCHSmall: 40_000, TPCHLarge: 120_000, Sales: 50_000, NRef: 60_000, Seed: 1}
}

// dataset caching: experiments re-use generated tables across benchmarks.
var (
	cacheMu sync.Mutex
	cache   = map[string]*table.Table{}
)

func cached(key string, build func() *table.Table) *table.Table {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if t, ok := cache[key]; ok {
		return t
	}
	t := build()
	cache[key] = t
	return t
}

func cachedLineitem(rows int, seed int64) *table.Table {
	return cached(fmt.Sprintf("li-%d-%d", rows, seed), func() *table.Table {
		return datagen.Lineitem(datagen.LineitemOpts{Rows: rows, Seed: seed})
	})
}

func lineitemSmall(s Scale) *table.Table { return cachedLineitem(s.TPCHSmall, s.Seed) }

func lineitemLarge(s Scale) *table.Table { return cachedLineitem(s.TPCHLarge, s.Seed) }

func salesTable(s Scale) *table.Table {
	return cached(fmt.Sprintf("sales-%d-%d", s.Sales, s.Seed), func() *table.Table {
		return datagen.Sales(datagen.SalesOpts{Rows: s.Sales, Seed: s.Seed})
	})
}

func nrefTable(s Scale) *table.Table {
	return cached(fmt.Sprintf("nref-%d-%d", s.NRef, s.Seed), func() *table.Table {
		return datagen.NRef(datagen.NRefOpts{Rows: s.NRef, Seed: s.Seed})
	})
}

// newEngine builds an engine with sampling statistics (the production
// configuration; §6.7 measures exactly this statistics-creation overhead).
// 2000-row samples keep estimates accurate at experiment scale (the birthday
// fallback and single-column dictionary counts carry the high-NDV regime)
// while keeping profiling cheap.
func newEngine(seed int64) *engine.Engine {
	return engine.New(stats.NewService(stats.GEE, 2000, seed))
}

// singleSets converts column ordinals to single-column grouping sets.
func singleSets(ords []int) []colset.Set {
	out := make([]colset.Set, len(ords))
	for i, c := range ords {
		out[i] = colset.Of(c)
	}
	return out
}

// pairSets builds all two-column grouping sets over the ordinals (the paper's
// "TC" workloads).
func pairSets(ords []int) []colset.Set {
	var out []colset.Set
	for i := 0; i < len(ords); i++ {
		for j := i + 1; j < len(ords); j++ {
			out = append(out, colset.Of(ords[i], ords[j]))
		}
	}
	return out
}

// prunedGBMQO are the search options every experiment uses unless it is
// explicitly studying a knob: both §4.3 pruning techniques on, all merge
// types allowed.
func prunedGBMQO() core.Options {
	return core.Options{PruneSubsumption: true, PruneMonotonic: true}
}

// measure runs a request and returns its execution wall time and the result.
func measure(e *engine.Engine, req engine.Request) (time.Duration, *engine.RunResult, error) {
	return measureMin(e, req, 2)
}

// measureMin runs a request `reps` times and returns the minimum execution
// wall time (the standard way to strip scheduler noise from micro-scale
// timings), along with the last run's result.
func measureMin(e *engine.Engine, req engine.Request, reps int) (time.Duration, *engine.RunResult, error) {
	if reps < 1 {
		reps = 1
	}
	var best time.Duration
	var last *engine.RunResult
	for i := 0; i < reps; i++ {
		res, err := e.Run(req)
		if err != nil {
			return 0, nil, err
		}
		if last == nil || res.Report.Wall < best {
			best = res.Report.Wall
		}
		last = res
	}
	return best, last, nil
}

// speedup guards against division by ~zero on very fast runs.
func speedup(baseline, improved time.Duration) float64 {
	if improved <= 0 {
		improved = time.Microsecond
	}
	return float64(baseline) / float64(improved)
}

// reduction renders the "ratio of reduction in running time against naive"
// metric of Figure 9/11.
func reduction(naive, other time.Duration) float64 {
	if naive <= 0 {
		return 0
	}
	r := 1 - float64(other)/float64(naive)
	if r < 0 {
		r = 0
	}
	return r
}
