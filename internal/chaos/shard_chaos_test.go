package chaos

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"gbmqo"
)

// shardSites are the four failpoints the sharded scatter-gather path fires.
var shardSites = []string{"shard.scatter", "shard.exec", "shard.merge", "shard.hedge"}

// runShardSeed is one sharded chaos trial: a 4-shard DB with hedging and
// retries armed, seeded faults over the shard failpoints only, three rounds
// of concurrent submissions. Invariants are the harness's usual three, plus:
// results that survive must be byte-identical to the unsharded reference —
// a lost hedge race or a double-merged partial would show up as a wrong
// count, not an error.
func runShardSeed(t *testing.T, seed int64, allowPartial bool) {
	setup(t)
	queries := chaosQueries()
	baseline := runtime.NumGoroutine()

	db := gbmqo.Open(nil)
	db.Register(baseTbl)
	if err := db.EnableSharding(gbmqo.ShardOptions{
		Shards:       4,
		MaxAttempts:  3,
		RetryBackoff: 100 * time.Microsecond,
		HedgeAfter:   2 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	db.StartBatching(gbmqo.BatchOptions{
		MaxWait: time.Millisecond,
		Exec: gbmqo.QueryOptions{
			SharedScan:   true,
			Parallel:     true,
			MaxAttempts:  3,
			RetryBackoff: 100 * time.Microsecond,
			AllowPartial: allowPartial,
		},
	})

	sched := NewSchedule(seed, shardSites, 4, 8)
	in := Install(sched)
	submitted := 0

	submitRound := func(mustSucceed bool) {
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q gbmqo.GroupQuery) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				res, info, err := db.Submit(ctx, "lineitem", q)
				if err != nil {
					if mustSucceed {
						t.Errorf("%s: query %d failed after faults disarmed: %v", sched, i, err)
					}
					return
				}
				if info.Partial {
					// A partial is only legal when the caller opted in, and it
					// must say how many shards it lost.
					if !allowPartial || info.ShardsFailed == 0 {
						t.Errorf("%s: query %d: partial=%v shards_failed=%d (allowPartial=%v)",
							sched, i, info.Partial, info.ShardsFailed, allowPartial)
					}
					return
				}
				if got := tableBytes(res); !bytes.Equal(got, reference[i]) {
					t.Errorf("%s: query %d survived but differs from reference (%d vs %d bytes)",
						sched, i, len(got), len(reference[i]))
				}
			}(i, q)
		}
		wg.Wait()
		submitted += len(queries)
	}

	for round := 0; round < 3; round++ {
		submitRound(false)
	}
	in.Uninstall()
	submitRound(true)
	t.Logf("%s: struck %d (scatter=%d exec=%d merge=%d hedge=%d)", sched, in.Struck(),
		in.Fired("shard.scatter"), in.Fired("shard.exec"), in.Fired("shard.merge"), in.Fired("shard.hedge"))

	db.FlushBatches()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := db.BatchStats()
		if !ok {
			t.Fatal("no batch stats")
		}
		if st.QueueLen == 0 && st.OpenWindows == 0 {
			if st.Submitted != int64(submitted) {
				t.Fatalf("%s: submitted counter = %d, want %d (stats %+v)", sched, st.Submitted, submitted, st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: scheduler never settled: %+v", sched, st)
		}
		time.Sleep(time.Millisecond)
	}
	db.StopBatching()

	deadline = time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%s: goroutines leaked: baseline %d, now %d", sched, baseline, n)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardChaosSeeds runs the shard-failpoint battery in strict mode: every
// fault must end in a clean error or a byte-identical result.
func TestShardChaosSeeds(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runShardSeed(t, seed, false) })
	}
}

// TestShardChaosSeedsPartial repeats the battery with AllowPartial: outcomes
// widen to clean-error / byte-identical / attributed-partial, and nothing
// else.
func TestShardChaosSeedsPartial(t *testing.T) {
	for seed := int64(50); seed <= 55; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runShardSeed(t, seed, true) })
	}
}
