package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"gbmqo"
	"gbmqo/internal/table"
)

// appendSites focuses the schedule on the streaming-append machinery plus the
// execution/cache layers a refresh flows through, so strikes actually land on
// the maintenance path rather than dissipating across the whole site list.
var appendSites = []string{
	"table.append",
	"cache.refresh",
	"cache.admit",
	"engine.step",
	"exec.hash.batch",
}

// chaosRows extracts rows [lo,hi) of tb as append-ready value slices.
func chaosRows(tb *gbmqo.Table, lo, hi int) [][]gbmqo.Value {
	rows := make([][]gbmqo.Value, 0, hi-lo)
	for r := lo; r < hi; r++ {
		row := make([]gbmqo.Value, tb.NumCols())
		for c := 0; c < tb.NumCols(); c++ {
			row[c] = tb.Col(c).Value(r)
		}
		rows = append(rows, row)
	}
	return rows
}

// rebuildExpected materializes, from scratch (fresh dictionaries, no shared
// state with the DB under test), the table the chaos run *should* have
// produced: every base row plus the pool rows whose appends reported success.
func rebuildExpected(base, pool *gbmqo.Table, poolOff int) *gbmqo.Table {
	defs := make([]table.ColumnDef, base.NumCols())
	for c := range defs {
		defs[c] = table.ColumnDef{Name: base.Col(c).Name(), Typ: base.Col(c).Type()}
	}
	out := table.New(base.Name(), defs)
	for _, row := range chaosRows(base, 0, base.NumRows()) {
		out.AppendRow(row...)
	}
	for _, row := range chaosRows(pool, 0, poolOff) {
		out.AppendRow(row...)
	}
	return out
}

// runAppendSeed is one append-chaos trial: arm a seed-derived schedule over
// the append/refresh failpoints, interleave streaming appends with warm
// queries, then verify the invariants — (1) every append either errors
// cleanly with the table byte-for-byte untouched (abort safety) or lands in
// full; (2) after disarming, every query over the survivor state is
// byte-identical to a from-scratch rebuild of exactly the rows whose appends
// reported success; (3) the cache never served corrupt bytes; (4) goroutines
// return to baseline.
func runAppendSeed(t *testing.T, seed int64) {
	baseline := runtime.NumGoroutine()
	base, err := gbmqo.GenerateDataset("lineitem", 4000, 31, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gbmqo.GenerateDataset("lineitem", 1500, 63, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := gbmqo.Open(&gbmqo.Config{CacheBytes: 8 << 20})
	db.Register(base)
	queries := chaosQueries()
	// Warm the cache fault-free so the appends have entries to maintain.
	for i, q := range queries {
		if _, _, err := db.ExecuteQueries("lineitem", []gbmqo.GroupQuery{q}, gbmqo.QueryOptions{}); err != nil {
			t.Fatalf("warmup query %d: %v", i, err)
		}
	}

	sched := NewSchedule(seed, appendSites, 4, 6)
	in := Install(sched)
	rng := rand.New(rand.NewSource(seed))
	expectRows, poolOff := base.NumRows(), 0
	for step := 0; step < 12; step++ {
		if step%2 == 0 && poolOff < pool.NumRows() {
			n := 100 + rng.Intn(100)
			if poolOff+n > pool.NumRows() {
				n = pool.NumRows() - poolOff
			}
			rep, err := db.Append("lineitem", chaosRows(pool, poolOff, poolOff+n))
			cur, ok := db.Table("lineitem")
			if !ok {
				t.Fatalf("%s: table vanished at step %d", sched, step)
			}
			if err != nil {
				// Abort safety: a failed append leaves the table exactly as
				// it was — same rows, and still fully queryable.
				if cur.NumRows() != expectRows {
					t.Errorf("%s: failed append left %d rows, want %d", sched, cur.NumRows(), expectRows)
				}
				continue
			}
			poolOff += n
			expectRows += n
			if rep.TotalRows != expectRows || cur.NumRows() != expectRows {
				t.Errorf("%s: append reported %d rows, table has %d, want %d",
					sched, rep.TotalRows, cur.NumRows(), expectRows)
			}
		} else {
			q := queries[rng.Intn(len(queries))]
			// Errors are acceptable while armed; wrong answers are caught by
			// the post-disarm verification below (any entry a faulty refresh
			// corrupted would still be resident and serve).
			_, _, _ = db.ExecuteQueries("lineitem", []gbmqo.GroupQuery{q}, gbmqo.QueryOptions{})
		}
	}
	in.Uninstall()
	t.Logf("%s: struck %d, appended %d of %d pool rows", sched, in.Struck(), poolOff, pool.NumRows())

	// Invariant 2: the survivor state answers every query byte-identically to
	// a from-scratch rebuild — twice, so both the compute path and the
	// maintained/re-admitted cache entries are checked.
	ref := gbmqo.Open(nil)
	ref.Register(rebuildExpected(base, pool, poolOff))
	for i, q := range queries {
		_, want, err := ref.ExecuteQueries("lineitem", []gbmqo.GroupQuery{q}, gbmqo.QueryOptions{})
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		for pass := 0; pass < 2; pass++ {
			_, got, err := db.ExecuteQueries("lineitem", []gbmqo.GroupQuery{q}, gbmqo.QueryOptions{})
			if err != nil {
				t.Fatalf("%s: query %d failed after faults disarmed: %v", sched, i, err)
			}
			for set, wt := range want.Results {
				gt := got.Results[set]
				if gt == nil || !bytes.Equal(tableBytes(gt), tableBytes(wt)) {
					t.Fatalf("%s: query %d pass %d differs from rebuilt reference", sched, i, pass)
				}
			}
		}
	}

	// Invariant 3: no corrupt cache entry was ever served.
	if st, ok := db.CacheStats(); ok && st.Corruptions != 0 {
		t.Errorf("%s: cache corruptions = %d", sched, st.Corruptions)
	}

	// Invariant 4: goroutine hygiene.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%s: goroutines leaked: baseline %d, now %d", sched, baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAppendChaosSeeds runs the append-chaos harness over a reproducible
// battery of seeds plus one time-derived wild seed (override with
// APPEND_CHAOS_SEED to replay a failure).
func TestAppendChaosSeeds(t *testing.T) {
	for seed := int64(1); seed <= 16; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runAppendSeed(t, seed) })
	}
	wild := time.Now().UnixNano()
	if env := os.Getenv("APPEND_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("APPEND_CHAOS_SEED = %q: %v", env, err)
		}
		wild = v
	}
	t.Run(fmt.Sprintf("seed=%d(wild)", wild), func(t *testing.T) {
		t.Logf("replay with APPEND_CHAOS_SEED=%d", wild)
		runAppendSeed(t, wild)
	})
}
