// Package chaos is a deterministic fault-injection harness: it derives a
// fault schedule from a seed, arms it on the process-wide failpoint hook
// (exec.Testing), and counts what actually fired. The harness itself injects
// nothing on its own — tests drive real workloads through the library while
// a schedule is installed and then assert the resilience invariants (results
// byte-identical or cleanly errored, no goroutine leaks, scheduler books
// balanced). See chaos_test.go and DESIGN.md "Failure semantics".
//
// Faults are panics, the harshest failure the engine claims to contain:
// every armed site sits under a recover boundary (morsel workers, engine
// runs, singleflight leaders, batch dispatch, HTTP handlers), so a strike
// exercises containment, classification, retry and fan-out all at once.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"gbmqo/internal/exec"
)

// Sites are the failpoints a schedule can arm, spanning every layer of the
// stack: operator internals, the engine step loop, temp-table retention,
// cache admission (inside a singleflight leader), scheduler dispatch, and
// the HTTP handler chain.
var Sites = []string{
	"exec.morsel.worker",
	"exec.hash.batch",
	"exec.sort.stream",
	"exec.dense.batch",
	"exec.radix.scatter",
	"exec.radix.build",
	"engine.step",
	"engine.retain",
	"cache.admit",
	"sched.window.close",
	"shard.scatter",
	"shard.exec",
	"shard.merge",
	"shard.hedge",
	"table.append",
	"cache.refresh",
	"wal.append",
	"wal.fsync",
	"snapshot.write",
	"recover.replay",
	"server.handler",
}

// Fault arms one failpoint: panic the Nth time Site fires (1-based,
// process-wide across all goroutines).
type Fault struct {
	Site string
	Nth  int64
}

// Schedule is a seed-derived fault plan. Equal seeds over equal site lists
// always produce equal schedules.
type Schedule struct {
	Seed   int64
	Faults []Fault
}

// NewSchedule derives a deterministic schedule from seed: between 1 and
// maxFaults faults, each at a site drawn from sites and striking within that
// site's first spread firings. Duplicate (site, nth) draws collapse.
func NewSchedule(seed int64, sites []string, maxFaults, spread int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxFaults)
	seen := make(map[Fault]bool, n)
	s := Schedule{Seed: seed}
	for i := 0; i < n; i++ {
		f := Fault{Site: sites[rng.Intn(len(sites))], Nth: 1 + int64(rng.Intn(spread))}
		if seen[f] {
			continue
		}
		seen[f] = true
		s.Faults = append(s.Faults, f)
	}
	return s
}

// String renders a schedule compactly for failure messages.
func (s Schedule) String() string {
	out := fmt.Sprintf("seed %d:", s.Seed)
	for _, f := range s.Faults {
		out += fmt.Sprintf(" %s#%d", f.Site, f.Nth)
	}
	return out
}

// siteState tracks one site's firings and its armed strike points.
type siteState struct {
	count   atomic.Int64
	strikes []int64 // sorted, read-only after Install
}

// Injector is an installed schedule: it observes every failpoint firing and
// panics at the armed ones. The fire path is lock-free — the site map is
// frozen at Install and only atomic counters move afterwards.
type Injector struct {
	schedule Schedule
	sites    map[string]*siteState
	struck   atomic.Int64
}

// Install arms s on the process-wide failpoint hook and returns the
// injector. Only one injector (or any other failpoint) can be installed at a
// time; Uninstall when done.
func Install(s Schedule) *Injector {
	in := &Injector{schedule: s, sites: make(map[string]*siteState, len(Sites))}
	for _, site := range Sites {
		in.sites[site] = &siteState{}
	}
	for _, f := range s.Faults {
		st := in.sites[f.Site]
		if st == nil {
			st = &siteState{}
			in.sites[f.Site] = st
		}
		st.strikes = append(st.strikes, f.Nth)
	}
	for _, st := range in.sites {
		sort.Slice(st.strikes, func(i, j int) bool { return st.strikes[i] < st.strikes[j] })
	}
	exec.Testing.SetFailPoint(in.fire)
	return in
}

func (in *Injector) fire(site string) {
	st := in.sites[site]
	if st == nil {
		return
	}
	n := st.count.Add(1)
	for _, strike := range st.strikes {
		if strike == n {
			in.struck.Add(1)
			panic(fmt.Sprintf("chaos: injected fault at %s firing %d (seed %d)", site, n, in.schedule.Seed))
		}
		if strike > n {
			break
		}
	}
}

// Uninstall removes the hook. Counters remain readable.
func (in *Injector) Uninstall() { exec.Testing.ClearFailPoint() }

// Struck reports how many armed faults actually detonated.
func (in *Injector) Struck() int64 { return in.struck.Load() }

// Fired reports how many times site has fired so far.
func (in *Injector) Fired(site string) int64 {
	if st := in.sites[site]; st != nil {
		return st.count.Load()
	}
	return 0
}
