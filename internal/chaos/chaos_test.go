package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"gbmqo"
	"gbmqo/internal/server"
)

// The chaos workload: one shared lineitem table and a fixed set of Group By
// queries over its low-NDV columns (the shape the paper's optimizer merges
// aggressively, so shared scans, temp-table retention and the cache all
// engage), plus a fault-free reference result per query computed once.
var (
	setupOnce sync.Once
	baseTbl   *gbmqo.Table
	reference [][]byte
)

func chaosQueries() []gbmqo.GroupQuery {
	sum := gbmqo.Agg{Kind: gbmqo.AggSum, Col: 4, Name: "sum_qty"} // l_quantity
	return []gbmqo.GroupQuery{
		{Cols: []string{"l_returnflag"}},
		{Cols: []string{"l_linestatus"}},
		{Cols: []string{"l_shipmode"}},
		{Cols: []string{"l_shipinstruct"}},
		{Cols: []string{"l_returnflag", "l_linestatus"}},
		{Cols: []string{"l_shipmode", "l_returnflag"}},
		{Cols: []string{"l_shipmode", "l_linestatus", "l_returnflag"}},
		{Cols: []string{"l_shipinstruct", "l_shipmode"}, Aggs: []gbmqo.Agg{sum}},
	}
}

// tableBytes is the byte-identity fingerprint: column names plus the row
// image, the same material the cache checksums.
func tableBytes(tb *gbmqo.Table) []byte {
	var buf bytes.Buffer
	for _, c := range tb.ColNames() {
		buf.WriteString(c)
		buf.WriteByte(0)
	}
	img, _ := tb.RowImage()
	buf.Write(img)
	return buf.Bytes()
}

func setup(t *testing.T) {
	t.Helper()
	setupOnce.Do(func() {
		var err error
		// Above two morsels (16384 rows each) so Parallelism actually spawns
		// workers and the exec.morsel.worker site fires.
		baseTbl, err = gbmqo.GenerateDataset("lineitem", 40_000, 42, 0)
		if err != nil {
			panic(err)
		}
		// Fault-free reference through the same Submit path the chaos rounds
		// use (Submit results are byte-identical to solo execution).
		db := gbmqo.Open(nil)
		db.Register(baseTbl)
		db.StartBatching(gbmqo.BatchOptions{MaxWait: time.Millisecond,
			Exec: gbmqo.QueryOptions{SharedScan: true, Parallel: true}})
		defer db.StopBatching()
		for _, q := range chaosQueries() {
			res, _, err := db.Submit(context.Background(), "lineitem", q)
			if err != nil {
				panic(fmt.Sprintf("reference: %v", err))
			}
			reference = append(reference, tableBytes(res))
		}
	})
	if len(reference) == 0 {
		t.Fatal("reference setup failed")
	}
}

// runSeed is one chaos trial: arm the seed's schedule, drive three rounds of
// concurrent submissions through a fresh cached DB, then verify the three
// invariants — (1) every outcome is a clean error or a byte-identical
// result, and after the faults are disarmed everything succeeds; (2) the
// goroutine count returns to baseline; (3) the scheduler's books balance.
func runSeed(t *testing.T, seed int64) {
	setup(t)
	queries := chaosQueries()
	baseline := runtime.NumGoroutine()

	db := gbmqo.Open(&gbmqo.Config{CacheBytes: 8 << 20})
	db.Register(baseTbl)
	db.StartBatching(gbmqo.BatchOptions{
		MaxWait: time.Millisecond,
		Exec: gbmqo.QueryOptions{
			SharedScan:   true,
			Parallel:     true,
			Parallelism:  2,
			MaxAttempts:  3,
			RetryBackoff: 100 * time.Microsecond,
		},
	})

	// Arm every site except the HTTP one (no server in this trial). Strikes
	// land within each site's first 8 firings: deep enough to vary where in
	// the run they hit, shallow enough that most schedules actually strike
	// (cache hits mean later rounds barely execute operators).
	sched := NewSchedule(seed, Sites[:len(Sites)-1], 4, 8)
	in := Install(sched)
	submitted := 0

	submitRound := func(mustSucceed bool) {
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q gbmqo.GroupQuery) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				res, _, err := db.Submit(ctx, "lineitem", q)
				if err != nil {
					// Invariant 1a: failures must be surfaced errors, never
					// wrong answers — and only while faults are armed.
					if mustSucceed {
						t.Errorf("%s: query %d failed after faults disarmed: %v", sched, i, err)
					}
					return
				}
				if got := tableBytes(res); !bytes.Equal(got, reference[i]) {
					t.Errorf("%s: query %d survived but differs from reference (%d vs %d bytes)",
						sched, i, len(got), len(reference[i]))
				}
			}(i, q)
		}
		wg.Wait()
		submitted += len(queries)
	}

	for round := 0; round < 3; round++ {
		submitRound(false)
	}
	in.Uninstall()
	// Invariant 1b: the system recovered — a fault-free round fully succeeds.
	submitRound(true)
	t.Logf("%s: struck %d", sched, in.Struck())

	db.FlushBatches()
	// Invariant 3: the books balance. Every submission was admitted (the
	// queue never approaches MaxQueue here), so the submitted counter must
	// match, and nothing may be left queued or open.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := db.BatchStats()
		if !ok {
			t.Fatal("no batch stats")
		}
		if st.QueueLen == 0 && st.OpenWindows == 0 {
			if st.Submitted != int64(submitted) {
				t.Fatalf("%s: submitted counter = %d, want %d (stats %+v)", sched, st.Submitted, submitted, st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: scheduler never settled: %+v", sched, st)
		}
		time.Sleep(time.Millisecond)
	}
	db.StopBatching()

	// Invariant 2: no goroutine leaks once the batcher is stopped.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%s: goroutines leaked: baseline %d, now %d", sched, baseline, n)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosSeeds runs the harness over a fixed battery of seeds (fully
// reproducible) plus one time-derived seed, overridable with CHAOS_SEED, so
// every CI run also explores new schedules and logs how to replay them.
func TestChaosSeeds(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runSeed(t, seed) })
	}
	wild := time.Now().UnixNano()
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED = %q: %v", env, err)
		}
		wild = v
	}
	t.Run(fmt.Sprintf("seed=%d(wild)", wild), func(t *testing.T) {
		t.Logf("replay with CHAOS_SEED=%d", wild)
		runSeed(t, wild)
	})
}

// TestChaosHTTP extends the harness through the HTTP layer: handler-level
// faults land as contained 500s, engine faults retry underneath, and the
// server keeps serving correct results afterwards.
func TestChaosHTTP(t *testing.T) {
	setup(t)
	db := gbmqo.Open(&gbmqo.Config{CacheBytes: 8 << 20})
	db.Register(baseTbl)
	db.StartBatching(gbmqo.BatchOptions{
		MaxWait: time.Millisecond,
		Exec: gbmqo.QueryOptions{SharedScan: true, Parallel: true,
			MaxAttempts: 3, RetryBackoff: 100 * time.Microsecond},
	})
	defer db.StopBatching()
	ts := httptest.NewServer(server.New(db).Handler())
	defer ts.Close()

	queries := chaosQueries()
	post := func(i int) (int, map[string]any) {
		body, err := json.Marshal(map[string]any{
			"table":   "lineitem",
			"queries": []map[string]any{{"cols": queries[i].Cols}},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("transport error (fault escaped containment?): %v", err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("response not JSON: %v", err)
		}
		return resp.StatusCode, out
	}

	for seed := int64(100); seed < 104; seed++ {
		sched := NewSchedule(seed, []string{"server.handler", "engine.step", "cache.admit"}, 3, 12)
		in := Install(sched)
		for i := range queries {
			code, out := post(i % len(queries))
			switch code {
			case http.StatusOK, http.StatusInternalServerError:
				// 200 with a result (or inline error) and contained 500 are
				// both acceptable under fault; anything else is a protocol
				// violation.
			default:
				t.Fatalf("%s: status %d (body %v)", sched, code, out)
			}
		}
		in.Uninstall()
		t.Logf("%s: struck %d", sched, in.Struck())
	}

	// Disarmed, the server must answer correctly again.
	for i := range queries[:4] {
		code, out := post(i)
		if code != http.StatusOK {
			t.Fatalf("post-chaos status %d (body %v)", code, out)
		}
		r := out["results"].([]any)[0].(map[string]any)
		if e, present := r["error"]; present && e != nil {
			t.Fatalf("post-chaos query %d error: %v", i, e)
		}
	}
}
