package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	osexec "os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"gbmqo"
	"gbmqo/internal/exec"
)

// Crash-durability harness: a child copy of this test binary (re-exec'd via
// GBMQO_CRASH_CHILD) opens a durable DB, appends batches — printing "ACK n"
// after each acknowledged append — and SIGKILLs itself the Nth time an armed
// durability failpoint fires. The parent then recovers the data dir
// in-process and asserts the invariants: no acknowledged append is lost
// (fsync=always), no partial batch is visible, every query over the recovered
// state is byte-identical to a never-crashed control fed the same batches,
// and the rewarmed cache carries zero quarantined entries.

const (
	crashTable     = "lineitem"
	crashBaseRows  = 2000
	crashBatchRows = 60
	crashBatches   = 6
)

// crashSites are the durability failpoints a kill can be armed on.
var crashSites = []string{"wal.append", "wal.fsync", "snapshot.write", "recover.replay"}

// crashBase and crashPool are regenerated identically in parent and child:
// equal seeds make the workload a pure function of the kill point.
func crashBase() *gbmqo.Table {
	tb, err := gbmqo.GenerateDataset(crashTable, crashBaseRows, 31, 0)
	if err != nil {
		panic(err)
	}
	return tb
}

func crashPool() *gbmqo.Table {
	tb, err := gbmqo.GenerateDataset(crashTable, crashBatches*crashBatchRows, 63, 0)
	if err != nil {
		panic(err)
	}
	return tb
}

func TestMain(m *testing.M) {
	if os.Getenv("GBMQO_CRASH_CHILD") == "1" {
		crashChild()
		return
	}
	os.Exit(m.Run())
}

// crashChild is one process "life": recover (or create) the durable DB under
// GBMQO_CRASH_DIR, resume appending wherever the recovered row count says the
// previous life stopped, and die by SIGKILL the Nth time the armed site
// fires. Exit 0 means it finished all batches and closed cleanly.
func crashChild() {
	dir := os.Getenv("GBMQO_CRASH_DIR")
	site := os.Getenv("GBMQO_CRASH_SITE")
	nth, _ := strconv.ParseInt(os.Getenv("GBMQO_CRASH_NTH"), 10, 64)
	var fired atomic.Int64
	exec.Testing.SetFailPoint(func(s string) {
		if s == site && fired.Add(1) == nth {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // never execute past an armed kill
		}
	})

	db, _, err := gbmqo.OpenDurable(dir, &gbmqo.Config{CacheBytes: 16 << 20},
		&gbmqo.DurabilityOptions{SnapshotInterval: 25 * time.Millisecond})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child open: %v\n", err)
		os.Exit(2)
	}
	done := 0
	if tb, ok := db.Table(crashTable); ok {
		done = (tb.NumRows() - crashBaseRows) / crashBatchRows
	} else {
		db.Register(crashBase())
	}
	pool := crashPool()
	queries := chaosQueries()
	for b := done; b < crashBatches; b++ {
		if _, err := db.Append(crashTable, chaosRows(pool, b*crashBatchRows, (b+1)*crashBatchRows)); err != nil {
			fmt.Fprintf(os.Stderr, "child append %d: %v\n", b, err)
			os.Exit(3)
		}
		fmt.Printf("ACK %d\n", b)
		// Warm queries give the snapshot loop cache entries to manifest.
		if _, _, err := db.ExecuteQueries(crashTable, queries[:3], gbmqo.QueryOptions{}); err != nil {
			fmt.Fprintf(os.Stderr, "child query: %v\n", err)
			os.Exit(4)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := db.Close(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "child close: %v\n", err)
		os.Exit(5)
	}
	fmt.Println("DONE")
	os.Exit(0)
}

// runCrashChild re-execs the test binary as one child life and returns the
// highest batch it acknowledged (-1 for none) and whether it exited cleanly.
// Any death other than the armed SIGKILL fails the test.
func runCrashChild(t *testing.T, dir, site string, nth int64) (maxAck int, clean bool) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := osexec.Command(exe)
	cmd.Env = append(os.Environ(),
		"GBMQO_CRASH_CHILD=1",
		"GBMQO_CRASH_DIR="+dir,
		"GBMQO_CRASH_SITE="+site,
		"GBMQO_CRASH_NTH="+strconv.FormatInt(nth, 10),
	)
	var out, errOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errOut
	runErr := cmd.Run()

	maxAck = -1
	for _, line := range strings.Split(out.String(), "\n") {
		if n, ok := strings.CutPrefix(line, "ACK "); ok {
			if v, err := strconv.Atoi(strings.TrimSpace(n)); err == nil && v > maxAck {
				maxAck = v
			}
		}
	}
	if runErr == nil {
		return maxAck, true
	}
	var ee *osexec.ExitError
	if errors.As(runErr, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
			return maxAck, false // the armed kill — expected
		}
	}
	t.Fatalf("child %s#%d died abnormally (%v):\n%s", site, nth, runErr, errOut.String())
	return maxAck, false
}

// verifyCrashRecovery recovers dir in-process and checks every durability
// invariant against a never-crashed control.
func verifyCrashRecovery(t *testing.T, dir string, maxAck int) {
	t.Helper()
	db, rep, err := gbmqo.OpenDurable(dir, &gbmqo.Config{CacheBytes: 16 << 20},
		&gbmqo.DurabilityOptions{SnapshotInterval: -1})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db.Close(context.Background())
	if rep.QuarantinedEntries != 0 {
		t.Errorf("quarantine leak: recovery quarantined %d manifest entries (%+v)", rep.QuarantinedEntries, rep)
	}

	tb, ok := db.Table(crashTable)
	if !ok {
		// Killed before the registration snapshot committed: nothing was ever
		// acknowledged, so an empty recovery is the correct outcome.
		if maxAck >= 0 {
			t.Fatalf("table lost after %d acknowledged batches", maxAck+1)
		}
		return
	}
	extra := tb.NumRows() - crashBaseRows
	if extra < 0 || extra%crashBatchRows != 0 {
		t.Fatalf("recovered %d rows: a partial batch is visible", tb.NumRows())
	}
	k := extra / crashBatchRows
	if k < maxAck+1 {
		t.Fatalf("acknowledged appends lost: recovered %d batches, child acked %d", k, maxAck+1)
	}

	// Control: a never-crashed process fed the identical first k batches.
	ctl := gbmqo.Open(&gbmqo.Config{CacheBytes: 16 << 20})
	ctl.Register(crashBase())
	pool := crashPool()
	for b := 0; b < k; b++ {
		if _, err := ctl.Append(crashTable, chaosRows(pool, b*crashBatchRows, (b+1)*crashBatchRows)); err != nil {
			t.Fatal(err)
		}
	}
	for i, q := range chaosQueries() {
		_, want, err := ctl.ExecuteQueries(crashTable, []gbmqo.GroupQuery{q}, gbmqo.QueryOptions{})
		if err != nil {
			t.Fatalf("control query %d: %v", i, err)
		}
		_, got, err := db.ExecuteQueries(crashTable, []gbmqo.GroupQuery{q}, gbmqo.QueryOptions{})
		if err != nil {
			t.Fatalf("recovered query %d: %v", i, err)
		}
		for set, wt := range want.Results {
			gt := got.Results[set]
			if gt == nil || !bytes.Equal(tableBytes(gt), tableBytes(wt)) {
				t.Fatalf("query %d differs from never-crashed control after recovery", i)
			}
		}
	}
	if st, ok := db.CacheStats(); ok && st.Corruptions != 0 {
		t.Errorf("cache served/held corrupt bytes after recovery: %d corruptions", st.Corruptions)
	}
}

// TestCrashRecoveryFixedPoints kills the child at fixed (site, nth) points
// across the WAL and snapshot write paths and verifies recovery after each.
func TestCrashRecoveryFixedPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec harness")
	}
	scenarios := []struct {
		site string
		nth  int64
	}{
		{"wal.append", 1},
		{"wal.append", 3},
		{"wal.fsync", 2},
		{"wal.fsync", 6},
		{"snapshot.write", 1},
		{"snapshot.write", 2},
	}
	for _, sc := range scenarios {
		t.Run(fmt.Sprintf("%s#%d", sc.site, sc.nth), func(t *testing.T) {
			dir := t.TempDir()
			maxAck, clean := runCrashChild(t, dir, sc.site, sc.nth)
			t.Logf("child acked %d batches, clean exit=%v", maxAck+1, clean)
			verifyCrashRecovery(t, dir, maxAck)
		})
	}
}

// TestCrashDuringRecoveryReplay crashes once mid-run to leave a WAL suffix,
// then crashes a second life during its recovery replay, then verifies the
// third (in-process) recovery still lands on the control state.
func TestCrashDuringRecoveryReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec harness")
	}
	dir := t.TempDir()
	maxAck, _ := runCrashChild(t, dir, "wal.fsync", 4)
	ack2, clean := runCrashChild(t, dir, "recover.replay", 1)
	if ack2 > maxAck {
		maxAck = ack2
	}
	t.Logf("life 1 acked %d, life 2 acked %d (clean=%v)", maxAck+1, ack2+1, clean)
	verifyCrashRecovery(t, dir, maxAck)
}

// TestCrashRestartResume chains two crashed lives: the second recovers the
// first's state and resumes appending where it left off before dying itself.
func TestCrashRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec harness")
	}
	dir := t.TempDir()
	maxAck, _ := runCrashChild(t, dir, "wal.append", 2)
	ack2, _ := runCrashChild(t, dir, "wal.fsync", 5)
	if ack2 > maxAck {
		maxAck = ack2
	}
	verifyCrashRecovery(t, dir, maxAck)
}

// TestCrashRecoveryWildSeed derives a random kill schedule per run (override
// with CRASH_SEED to replay): up to three lives, each killed at a random
// durability site/firing, then a final verification.
func TestCrashRecoveryWildSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec harness")
	}
	seed := time.Now().UnixNano()
	if env := os.Getenv("CRASH_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CRASH_SEED = %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("replay with CRASH_SEED=%d", seed)
	rng := rand.New(rand.NewSource(seed))

	dir := t.TempDir()
	maxAck := -1
	for life := 0; life < 3; life++ {
		site := crashSites[rng.Intn(len(crashSites))]
		nth := int64(1 + rng.Intn(8))
		ack, clean := runCrashChild(t, dir, site, nth)
		t.Logf("life %d: %s#%d acked %d clean=%v", life, site, nth, ack+1, clean)
		if ack > maxAck {
			maxAck = ack
		}
		if clean {
			break
		}
	}
	verifyCrashRecovery(t, dir, maxAck)
}
