// Package index implements the physical-design substrate for §6.9: clustered
// and non-clustered indexes over base tables. An index on key columns (k1, …,
// km) stores the permutation of row ids sorted by (k1, …, km) plus the group
// boundaries of the full key. The engine exploits an index in two ways, both
// mirrored by the cost model:
//
//   - exact match: a Group By on exactly {k1..km} reads counts straight off
//     the group boundaries — O(#groups) instead of a hash aggregate;
//   - prefix match: a Group By on {k1..kj}, j < m, streams the permutation and
//     aggregates on boundary changes — sequential, no hash table.
package index

import (
	"fmt"
	"sort"

	"gbmqo/internal/colset"
	"gbmqo/internal/table"
)

// Index is a (non-)clustered index over a base table.
type Index struct {
	name      string
	tableName string
	cols      []int // key column ordinals, significance order
	clustered bool

	perm   []int32 // row ids sorted by key
	bounds []int32 // starts of full-key groups; bounds[len-1] == len(perm)
}

// Build sorts the index. cols is the key column order; clustered marks the
// index as the table's clustered (physical) order, which the cost model
// charges less for because it involves no separate structure.
func Build(t *table.Table, name string, cols []int, clustered bool) *Index {
	if len(cols) == 0 {
		panic(fmt.Sprintf("index %q: empty key", name))
	}
	n := t.NumRows()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	ranks := make([][]uint32, len(cols))
	codes := make([][]uint32, len(cols))
	for i, c := range cols {
		col := t.Col(c)
		ranks[i] = col.Ranks()
		codes[i] = col.Codes()
	}
	sort.Slice(perm, func(a, b int) bool {
		ra, rb := perm[a], perm[b]
		for i := range cols {
			ka, kb := ranks[i][codes[i][ra]], ranks[i][codes[i][rb]]
			if ka != kb {
				return ka < kb
			}
		}
		return ra < rb // stable tie-break for determinism
	})
	// Full-key group boundaries (an empty table has zero groups).
	bounds := []int32{0}
	if n > 0 {
		for i := 1; i < n; i++ {
			for j := range cols {
				if codes[j][perm[i]] != codes[j][perm[i-1]] {
					bounds = append(bounds, int32(i))
					break
				}
			}
		}
		bounds = append(bounds, int32(n))
	}
	return &Index{
		name:      name,
		tableName: t.Name(),
		cols:      append([]int(nil), cols...),
		clustered: clustered,
		perm:      perm,
		bounds:    bounds,
	}
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// TableName returns the indexed table's name.
func (ix *Index) TableName() string { return ix.tableName }

// Cols returns the key column ordinals in significance order.
func (ix *Index) Cols() []int { return append([]int(nil), ix.cols...) }

// KeySet returns the key columns as a set.
func (ix *Index) KeySet() colset.Set { return colset.Of(ix.cols...) }

// Clustered reports whether this is the table's clustered order.
func (ix *Index) Clustered() bool { return ix.clustered }

// Perm returns the sorted row-id permutation. Callers must not mutate it.
func (ix *Index) Perm() []int32 { return ix.perm }

// Bounds returns the full-key group starts (last element = row count).
// Callers must not mutate it.
func (ix *Index) Bounds() []int32 { return ix.bounds }

// NumGroups returns the number of distinct full-key groups.
func (ix *Index) NumGroups() int { return len(ix.bounds) - 1 }

// PrefixLen returns k > 0 if set equals exactly the first k key columns of
// the index, and 0 otherwise. A non-zero result means a Group By on set can
// stream this index in order; k == len(cols) additionally means group counts
// come straight from the boundaries.
func (ix *Index) PrefixLen(set colset.Set) int {
	var prefix colset.Set
	for k, c := range ix.cols {
		prefix = prefix.Add(c)
		if prefix == set {
			return k + 1
		}
		if set.Len() <= prefix.Len() {
			break
		}
	}
	return 0
}

// ExactMatch reports whether set is exactly the full index key.
func (ix *Index) ExactMatch(set colset.Set) bool { return ix.PrefixLen(set) == len(ix.cols) }

// String summarizes the index.
func (ix *Index) String() string {
	kind := "nonclustered"
	if ix.clustered {
		kind = "clustered"
	}
	return fmt.Sprintf("%s %s on %s cols=%v groups=%d", kind, ix.name, ix.tableName, ix.cols, ix.NumGroups())
}

// BestFor picks, among the given indexes, the one most useful for a Group By
// on set: an exact match beats a prefix match; among prefix matches the
// longest prefix wins; clustered breaks ties. Returns nil when none applies.
func BestFor(indexes []*Index, set colset.Set) *Index {
	var best *Index
	bestLen, bestExact := 0, false
	for _, ix := range indexes {
		k := ix.PrefixLen(set)
		if k == 0 {
			continue
		}
		exact := k == len(ix.cols)
		better := false
		switch {
		case exact && !bestExact:
			better = true
		case exact == bestExact && k > bestLen:
			better = true
		case exact == bestExact && k == bestLen && best != nil && ix.clustered && !best.clustered:
			better = true
		}
		if best == nil || better {
			best, bestLen, bestExact = ix, k, exact
		}
	}
	return best
}
