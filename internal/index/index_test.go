package index

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/table"
)

func twoColTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New("t", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TString},
	})
	rows := []struct {
		a int64
		b string
	}{
		{3, "x"}, {1, "y"}, {3, "x"}, {2, "z"}, {1, "y"}, {3, "w"},
	}
	for _, r := range rows {
		tb.AppendRow(table.Int(r.a), table.Str(r.b))
	}
	return tb
}

func TestBuildSortsAndBounds(t *testing.T) {
	tb := twoColTable(t)
	ix := Build(tb, "ix_ab", []int{0, 1}, false)
	if ix.NumGroups() != 4 { // (1,y) (2,z) (3,w) (3,x)
		t.Fatalf("groups = %d, want 4", ix.NumGroups())
	}
	// Permutation must be sorted by (a, b).
	perm := ix.Perm()
	for i := 1; i < len(perm); i++ {
		pa, pb := perm[i-1], perm[i]
		va, vb := tb.Col(0).Value(int(pa)), tb.Col(0).Value(int(pb))
		c := va.Compare(vb)
		if c > 0 {
			t.Fatalf("perm not sorted on a at %d", i)
		}
		if c == 0 {
			if tb.Col(1).Value(int(pa)).Compare(tb.Col(1).Value(int(pb))) > 0 {
				t.Fatalf("perm not sorted on b at %d", i)
			}
		}
	}
	// Bounds must partition [0, rows).
	b := ix.Bounds()
	if b[0] != 0 || b[len(b)-1] != int32(tb.NumRows()) {
		t.Fatalf("bounds ends = %v", b)
	}
	if !sort.SliceIsSorted(b, func(i, j int) bool { return b[i] < b[j] }) {
		t.Fatalf("bounds unsorted: %v", b)
	}
	// Group sizes: (1,y)x2 (2,z)x1 (3,w)x1 (3,x)x2.
	sizes := []int32{}
	for i := 1; i < len(b); i++ {
		sizes = append(sizes, b[i]-b[i-1])
	}
	wantSizes := []int32{2, 1, 1, 2}
	for i := range sizes {
		if sizes[i] != wantSizes[i] {
			t.Fatalf("group sizes = %v, want %v", sizes, wantSizes)
		}
	}
}

func TestPrefixLen(t *testing.T) {
	tb := twoColTable(t)
	ix := Build(tb, "ix", []int{0, 1}, false)
	if got := ix.PrefixLen(colset.Of(0)); got != 1 {
		t.Errorf("PrefixLen({a}) = %d, want 1", got)
	}
	if got := ix.PrefixLen(colset.Of(0, 1)); got != 2 {
		t.Errorf("PrefixLen({a,b}) = %d, want 2", got)
	}
	if got := ix.PrefixLen(colset.Of(1)); got != 0 {
		t.Errorf("PrefixLen({b}) = %d, want 0 (not a prefix)", got)
	}
	if got := ix.PrefixLen(colset.Of(0, 1, 2)); got != 0 {
		t.Errorf("PrefixLen(superset) = %d, want 0", got)
	}
	if !ix.ExactMatch(colset.Of(0, 1)) || ix.ExactMatch(colset.Of(0)) {
		t.Error("ExactMatch wrong")
	}
}

func TestBuildEmptyKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty key")
		}
	}()
	Build(twoColTable(t), "bad", nil, false)
}

func TestBestFor(t *testing.T) {
	tb := twoColTable(t)
	ixA := Build(tb, "ix_a", []int{0}, false)
	ixAB := Build(tb, "ix_ab", []int{0, 1}, false)
	ixB := Build(tb, "ix_b", []int{1}, true)
	all := []*Index{ixA, ixAB, ixB}

	// Exact match beats prefix: Group By {a} should pick ix_a over ix_ab.
	if got := BestFor(all, colset.Of(0)); got != ixA {
		t.Errorf("BestFor({a}) = %v", got)
	}
	if got := BestFor(all, colset.Of(0, 1)); got != ixAB {
		t.Errorf("BestFor({a,b}) = %v", got)
	}
	if got := BestFor(all, colset.Of(1)); got != ixB {
		t.Errorf("BestFor({b}) = %v", got)
	}
	if got := BestFor(all, colset.Of(2)); got != nil {
		t.Errorf("BestFor(unindexed) = %v, want nil", got)
	}
	if got := BestFor(nil, colset.Of(0)); got != nil {
		t.Errorf("BestFor(no indexes) = %v", got)
	}
}

func TestBestForPrefersLongerPrefix(t *testing.T) {
	tb := table.New("t3", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TInt64},
		{Name: "c", Typ: table.TInt64},
	})
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		tb.AppendRow(table.Int(int64(r.Intn(5))), table.Int(int64(r.Intn(5))), table.Int(int64(r.Intn(5))))
	}
	ixABC := Build(tb, "abc", []int{0, 1, 2}, false)
	ixAB := Build(tb, "ab", []int{0, 1}, false)
	// For Group By {a,b}: ixAB is exact, ixABC only prefix — exact wins.
	if got := BestFor([]*Index{ixABC, ixAB}, colset.Of(0, 1)); got != ixAB {
		t.Errorf("exact match should win: got %v", got)
	}
}

func TestClusteredFlagAndString(t *testing.T) {
	tb := twoColTable(t)
	c := Build(tb, "pk", []int{0}, true)
	n := Build(tb, "nc", []int{1}, false)
	if !c.Clustered() || n.Clustered() {
		t.Fatal("clustered flags wrong")
	}
	if !strings.Contains(c.String(), "clustered") || !strings.Contains(n.String(), "nonclustered") {
		t.Fatalf("String() = %q / %q", c.String(), n.String())
	}
	if c.TableName() != "t" || c.Name() != "pk" {
		t.Fatal("metadata wrong")
	}
}

func TestColsCopy(t *testing.T) {
	tb := twoColTable(t)
	ix := Build(tb, "ix", []int{0, 1}, false)
	cols := ix.Cols()
	cols[0] = 99
	if ix.Cols()[0] == 99 {
		t.Fatal("Cols() exposed internal slice")
	}
}

func TestBoundsMatchDistinctGroups(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tb := table.New("t", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TInt64},
	})
	for i := 0; i < 5000; i++ {
		tb.AppendRow(table.Int(int64(r.Intn(30))), table.Int(int64(r.Intn(30))))
	}
	ix := Build(tb, "ix", []int{0, 1}, false)
	// Count exact distinct pairs.
	seen := map[[2]uint32]bool{}
	for i := 0; i < tb.NumRows(); i++ {
		seen[[2]uint32{tb.Col(0).Code(i), tb.Col(1).Code(i)}] = true
	}
	if ix.NumGroups() != len(seen) {
		t.Fatalf("index groups = %d, distinct pairs = %d", ix.NumGroups(), len(seen))
	}
	// Every group must be homogeneous.
	b := ix.Bounds()
	perm := ix.Perm()
	for g := 0; g < ix.NumGroups(); g++ {
		first := perm[b[g]]
		for i := b[g] + 1; i < b[g+1]; i++ {
			if tb.Col(0).Code(int(perm[i])) != tb.Col(0).Code(int(first)) ||
				tb.Col(1).Code(int(perm[i])) != tb.Col(1).Code(int(first)) {
				t.Fatalf("group %d not homogeneous", g)
			}
		}
	}
}
