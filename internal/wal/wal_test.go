package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gbmqo/internal/table"
)

func testRows(n, base int) [][]table.Value {
	rows := make([][]table.Value, n)
	for i := range rows {
		rows[i] = []table.Value{
			table.Int(int64(base + i)),
			table.Str("v" + string(rune('a'+(base+i)%26))),
			table.Float(float64(base+i) * 1.5),
			table.Date(int64(20260000 + base + i)),
			table.Null(table.TString),
		}
	}
	return rows
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		{Seq: 1, Table: "lineitem", ExpectRows: 105, Rows: testRows(5, 100)},
		{Seq: 2, Abort: true},
		{Seq: 3, Table: "t", ExpectRows: 0, Rows: nil},
	}
	for _, rec := range recs {
		got, err := decodePayload(encodePayload(rec))
		if err != nil {
			t.Fatalf("decode seq %d: %v", rec.Seq, err)
		}
		if got.Seq != rec.Seq || got.Abort != rec.Abort || got.Table != rec.Table ||
			got.ExpectRows != rec.ExpectRows {
			t.Fatalf("header mismatch: got %+v want %+v", got, rec)
		}
		if len(rec.Rows) > 0 && !reflect.DeepEqual(got.Rows, rec.Rows) {
			t.Fatalf("rows mismatch for seq %d", rec.Seq)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := encodePayload(&Record{Seq: 7, Table: "t", ExpectRows: 2, Rows: testRows(2, 0)})
	for cut := 1; cut < len(good); cut++ {
		if _, err := decodePayload(good[:cut]); err == nil {
			// Some prefixes decode cleanly (e.g. cutting inside the trailing
			// rows can still leave a shorter valid record only if counts
			// matched, which they won't here) — any clean decode is a bug.
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

func TestWriterReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64]int)
	for i := 0; i < 10; i++ {
		seq, err := w.Append(&Record{Table: "lineitem", ExpectRows: (i + 1) * 3, Rows: testRows(3, i*3)})
		if err != nil {
			t.Fatal(err)
		}
		want[seq] = (i + 1) * 3
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []uint64
	st, err := Replay(dir, 0, func(r *Record) error {
		got = append(got, r.Seq)
		if r.ExpectRows != want[r.Seq] {
			t.Fatalf("seq %d expectRows %d want %d", r.Seq, r.ExpectRows, want[r.Seq])
		}
		if len(r.Rows) != 3 {
			t.Fatalf("seq %d has %d rows", r.Seq, len(r.Rows))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 10 || st.TruncatedTails != 0 {
		t.Fatalf("stats %+v", st)
	}
	for i, seq := range got {
		if i > 0 && seq <= got[i-1] {
			t.Fatalf("sequences out of order: %v", got)
		}
	}

	// Replay from a midpoint delivers only the suffix.
	n := 0
	if _, err := Replay(dir, got[4], func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("replay after mid seq delivered %d records, want 5", n)
	}
}

func TestSegmentRotationAndObsolete(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 20; i++ {
		last, err = w.Append(&Record{Table: "t", ExpectRows: i + 1, Rows: testRows(1, i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >=3 segments, got %d", len(segs))
	}

	// Everything up to the last record is snapshot-covered: all but the
	// active segment become removable.
	removed, err := w.RemoveObsolete(last)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("expected obsolete segments removed")
	}
	n := 0
	if _, err := Replay(dir, last, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replay past snapshot seq delivered %d records", n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortMarkerSkipsRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := w.Append(&Record{Table: "t", ExpectRows: 1, Rows: testRows(1, 0)})
	s2, _ := w.Append(&Record{Table: "t", ExpectRows: 2, Rows: testRows(1, 1)})
	if err := w.AppendAbort(s2); err != nil {
		t.Fatal(err)
	}
	s3, _ := w.Append(&Record{Table: "t", ExpectRows: 2, Rows: testRows(1, 2)})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	st, err := Replay(dir, 0, func(r *Record) error { got = append(got, r.Seq); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != s1 || got[1] != s3 {
		t.Fatalf("replayed %v, want [%d %d]", got, s1, s3)
	}
	if st.Aborted != 1 {
		t.Fatalf("aborted count %d, want 1", st.Aborted)
	}
}

// TestAbortAfterRotationSurvivesReopen covers the case where an Append
// crosses SegmentBytes and rotates inside the same call, so the following
// AppendAbort lands as the first frame of a segment named one past the aborted
// sequence. A reopening writer wants exactly that name; it must burn the label
// rather than delete the segment — deleting it would destroy the abort marker
// while the voided append survives in the earlier segment, resurrecting a
// never-acknowledged append at the next recovery.
func TestAbortAfterRotationSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncAlways, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := w.Append(&Record{Table: "t", ExpectRows: 1, Rows: testRows(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if segs, _ := listSegments(dir); len(segs) != 2 {
		t.Fatalf("append did not rotate: %d segments", len(segs))
	}
	// Simulate the apply failing after the log write: the abort marker is the
	// only frame of the freshly rotated segment, carrying the OLDER sequence.
	if err := w.AppendAbort(s1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(Options{Dir: dir, Policy: FsyncAlways, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	found := false
	for _, s := range segs {
		if s.firstSeq == s1+1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reopen deleted the abort-marker segment: %+v", segs)
	}
	s2, err := w2.Append(&Record{Table: "t", ExpectRows: 1, Rows: testRows(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1+2 {
		t.Fatalf("resumed at seq %d, want %d (label %d burned)", s2, s1+2, s1+1)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	var got []uint64
	st, err := Replay(dir, 0, func(r *Record) error { got = append(got, r.Seq); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborted != 1 {
		t.Fatalf("aborted count %d, want 1", st.Aborted)
	}
	if len(got) != 1 || got[0] != s2 {
		t.Fatalf("replay delivered %v, want [%d] only — aborted append resurrected", got, s2)
	}
}

// TestEmptyStaleSegmentReclaimed keeps the original reclaim behavior: a
// process that opened the log but never committed anything leaves an empty
// segment, and the next writer reuses its name (and its sequence).
func TestEmptyStaleSegmentReclaimed(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir, Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.Append(&Record{Table: "t", ExpectRows: 1, Rows: testRows(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("resumed at seq %d, want 1", seq)
	}
	if segs, _ := listSegments(dir); len(segs) != 1 {
		t.Fatalf("empty stale segment not reclaimed: %+v", segs)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundSyncFailureRefusesAppend: once the FsyncInterval flusher hits
// an fsync error, the writer must stop acknowledging appends instead of
// silently degrading to FsyncOff until Close.
func TestBackgroundSyncFailureRefusesAppend(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(&Record{Table: "t", ExpectRows: 1, Rows: testRows(1, 0)}); err != nil {
		t.Fatal(err)
	}
	sick := errors.New("fsync: input/output error")
	w.flushErrMu.Lock()
	w.flushErr = sick
	w.flushErrMu.Unlock()
	if _, err := w.Append(&Record{Table: "t", ExpectRows: 2, Rows: testRows(1, 1)}); !errors.Is(err, sick) {
		t.Fatalf("append after failed background fsync: err=%v, want wrapped %v", err, sick)
	}
	if got := w.Stats().SyncErr; !errors.Is(got, sick) {
		t.Fatalf("Stats.SyncErr = %v, want %v", got, sick)
	}
	// Abort markers stay writable: refusing them could resurrect records.
	if err := w.AppendAbort(1); err != nil {
		t.Fatalf("AppendAbort after failed background fsync: %v", err)
	}
	if err := w.Close(); !errors.Is(err, sick) {
		t.Fatalf("Close = %v, want the sticky sync error", err)
	}
}

func TestDecodeRejectsCellCountOverflow(t *testing.T) {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	uv(1)                  // seq
	buf = append(buf, 0)   // flags
	uv(1)                  // len(table)
	buf = append(buf, 't') // table
	uv(0)                  // expectRows
	uv(1 << 62)            // nrows
	uv(4)                  // ncols: product wraps uint64 to 0
	if _, err := decodePayload(buf); err == nil {
		t.Fatal("cell-count overflow decoded without error")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append(&Record{Table: "t", ExpectRows: i + 1, Rows: testRows(1, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[len(segs)-1].name)

	// Simulate a torn write: garbage appended to the active segment.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	n := 0
	st, err := Replay(dir, 0, func(*Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("replay after tear delivered %d records, want 5", n)
	}
	if st.TruncatedTails != 1 {
		t.Fatalf("truncated tails %d, want 1", st.TruncatedTails)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("tail not truncated: %d -> %d", before.Size(), after.Size())
	}

	// A second replay over the repaired log is clean.
	n = 0
	st, err = Replay(dir, 0, func(*Record) error { n++; return nil })
	if err != nil || n != 5 || st.TruncatedTails != 0 {
		t.Fatalf("re-replay: n=%d st=%+v err=%v", n, st, err)
	}

	// A writer reopened over the repaired log continues past the old tail.
	w2, err := Open(Options{Dir: dir, Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.Append(&Record{Table: "t", ExpectRows: 6, Rows: testRows(1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("resumed at seq %d, want 6", seq)
	}
	w2.Close()
}

func TestCorruptMiddleFrameDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncOff, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := w.Append(&Record{Table: "t", ExpectRows: i + 1, Rows: testRows(1, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	// Flip a byte mid-log: replay keeps everything before the corrupt
	// segment's tear and removes everything after it.
	mid := filepath.Join(dir, segs[1].name)
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+frameHdr] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var got []uint64
	st, err := Replay(dir, 0, func(r *Record) error { got = append(got, r.Seq); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.TruncatedTails != 1 {
		t.Fatalf("truncated tails %d, want 1", st.TruncatedTails)
	}
	if len(got) == 0 || len(got) >= 12 {
		t.Fatalf("replay after mid-log corruption delivered %d records", len(got))
	}
	for _, seq := range got {
		if seq >= segs[1].firstSeq+uint64(0) && seq > got[len(got)-1] {
			t.Fatalf("out-of-order seq %d", seq)
		}
	}
	if rem, _ := listSegments(dir); len(rem) >= len(segs) {
		t.Fatalf("segments past the tear not removed: %d -> %d", len(segs), len(rem))
	}
}

func TestIntervalPolicyFlushes(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: FsyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(&Record{Table: "t", ExpectRows: 1, Rows: testRows(1, 0)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := w.Stats()
		if st.Fsyncs > 0 && st.DirtyBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background flusher never synced: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
