// Package wal is the append-ahead log behind the durability layer: every
// acknowledged streaming append is framed, CRC32C-protected, and written to a
// segmented log before it is applied to the in-memory engine, so a process
// death loses at most the unacknowledged tail. Segments rotate at a byte
// threshold, fsync policy is configurable (always / interval / off), and the
// reader detects a torn or corrupt tail by CRC and truncates it instead of
// failing recovery.
package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"gbmqo/internal/table"
)

// Record is one logical WAL entry. Append records carry the full row payload
// of one streaming append plus the row count the table must reach after the
// apply (the replay-time verification fingerprint). Abort records mark a
// previously written append whose in-memory apply failed after the log write:
// replay must skip the aborted sequence so recovered state matches what the
// original process acknowledged.
type Record struct {
	// Seq is the record's log sequence number, assigned by the writer,
	// strictly increasing across segments.
	Seq uint64
	// Abort marks this record as an abort marker for sequence Seq (the rows
	// and table of an abort record are empty).
	Abort bool
	// Table names the base table appended to.
	Table string
	// ExpectRows is the table's row count after this append applies — checked
	// during replay so a divergent recovery is detected, not silently served.
	ExpectRows int
	// Rows is the appended row payload, one Value per column in schema order.
	Rows [][]table.Value
}

const (
	flagAbort = 1 << 0
	nullBit   = 0x80
)

// encodePayload renders the record body (everything the frame CRC covers).
func encodePayload(r *Record) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	putUvarint(r.Seq)
	var flags byte
	if r.Abort {
		flags |= flagAbort
	}
	buf = append(buf, flags)
	if r.Abort {
		return buf
	}
	putUvarint(uint64(len(r.Table)))
	buf = append(buf, r.Table...)
	putUvarint(uint64(r.ExpectRows))
	putUvarint(uint64(len(r.Rows)))
	ncols := 0
	if len(r.Rows) > 0 {
		ncols = len(r.Rows[0])
	}
	putUvarint(uint64(ncols))
	for _, row := range r.Rows {
		for _, v := range row {
			tag := byte(v.Typ)
			if v.Null {
				tag |= nullBit
			}
			buf = append(buf, tag)
			if v.Null {
				continue
			}
			switch v.Typ {
			case table.TInt64, table.TDate:
				put64(uint64(v.I))
			case table.TFloat64:
				put64(math.Float64bits(v.F))
			case table.TString:
				putUvarint(uint64(len(v.S)))
				buf = append(buf, v.S...)
			}
		}
	}
	return buf
}

// payloadReader decodes a record body with bounds checking; any malformed
// field surfaces as an error rather than a panic, so a corrupt-but-CRC-valid
// payload (impossible barring a bug, but cheap to defend) cannot crash
// recovery.
type payloadReader struct {
	buf []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated uvarint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) bytes(n int) ([]byte, error) {
	if n < 0 || p.off+n > len(p.buf) {
		return nil, fmt.Errorf("wal: truncated field at offset %d (want %d bytes)", p.off, n)
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b, nil
}

func (p *payloadReader) u64() (uint64, error) {
	b, err := p.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// maxRecordCells bounds a single record's decoded cell count; a payload
// claiming more is rejected as corrupt instead of allocating unboundedly.
const maxRecordCells = 1 << 26

// decodePayload parses one record body.
func decodePayload(buf []byte) (*Record, error) {
	p := &payloadReader{buf: buf}
	seq, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	flags, err := p.bytes(1)
	if err != nil {
		return nil, err
	}
	rec := &Record{Seq: seq}
	if flags[0]&flagAbort != 0 {
		rec.Abort = true
		return rec, nil
	}
	nameLen, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	name, err := p.bytes(int(nameLen))
	if err != nil {
		return nil, err
	}
	rec.Table = string(name)
	expect, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	rec.ExpectRows = int(expect)
	nrows, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	ncols, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	// Bound each factor before multiplying: both ≤ 2^26 keeps the product
	// ≤ 2^52, so it cannot wrap uint64 and sneak past the cell guard.
	if nrows > maxRecordCells || ncols > maxRecordCells || nrows*ncols > maxRecordCells {
		return nil, fmt.Errorf("wal: record claims %d x %d cells", nrows, ncols)
	}
	rec.Rows = make([][]table.Value, nrows)
	for ri := range rec.Rows {
		row := make([]table.Value, ncols)
		for ci := range row {
			tag, err := p.bytes(1)
			if err != nil {
				return nil, err
			}
			typ := table.Type(tag[0] &^ nullBit)
			if typ > table.TDate {
				return nil, fmt.Errorf("wal: row %d col %d has unknown type %d", ri, ci, typ)
			}
			if tag[0]&nullBit != 0 {
				row[ci] = table.Null(typ)
				continue
			}
			switch typ {
			case table.TInt64, table.TDate:
				v, err := p.u64()
				if err != nil {
					return nil, err
				}
				if typ == table.TDate {
					row[ci] = table.Date(int64(v))
				} else {
					row[ci] = table.Int(int64(v))
				}
			case table.TFloat64:
				v, err := p.u64()
				if err != nil {
					return nil, err
				}
				row[ci] = table.Float(math.Float64frombits(v))
			case table.TString:
				n, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				s, err := p.bytes(int(n))
				if err != nil {
					return nil, err
				}
				row[ci] = table.Str(string(s))
			}
		}
		rec.Rows[ri] = row
	}
	return rec, nil
}
