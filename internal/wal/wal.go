package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gbmqo/internal/exec"
)

// Segment layout:
//
//	[8B magic "GBMQWAL1"]
//	frame*   where frame = [4B payload len LE][4B CRC32C(payload) LE][payload]
//
// A segment is named wal-%020d.log where the number is the sequence of its
// first record; the active segment is the numerically largest. The CRC is
// Castagnoli, computed over the payload only — a torn write (short frame or
// garbage tail) fails either the length bound or the CRC, and replay
// truncates the segment there instead of failing.

const (
	segMagic   = "GBMQWAL1"
	segPrefix  = "wal-"
	segSuffix  = ".log"
	frameHdr   = 8
	defaultSeg = 4 << 20
	// maxFrame bounds a single frame so a corrupt length field cannot drive a
	// huge allocation during replay.
	maxFrame = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when the writer fsyncs the active segment.
type Policy int

const (
	// FsyncAlways syncs after every append: acknowledged appends survive any
	// crash (the durability mode the crash suite gates on).
	FsyncAlways Policy = iota
	// FsyncInterval syncs at most once per interval from a background
	// flusher: bounded data loss, near-FsyncOff append latency.
	FsyncInterval
	// FsyncOff never syncs explicitly; the OS page cache decides. Survives
	// process death (the kernel still has the pages) but not power loss.
	FsyncOff
)

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "off"
	}
}

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Options configures a Writer.
type Options struct {
	// Dir is the WAL directory (created if absent).
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// Policy selects the fsync mode (default FsyncAlways).
	Policy Policy
	// Interval is the background sync period under FsyncInterval
	// (default 50ms).
	Interval time.Duration
}

// Stats is a point-in-time snapshot of writer counters.
type Stats struct {
	Appends  uint64
	Fsyncs   uint64
	Bytes    uint64
	Segments int
	// NextSeq is the sequence the next record will be assigned.
	NextSeq uint64
	// LastSync is when the active segment was last fsynced (zero if never).
	LastSync time.Time
	// DirtyBytes counts bytes written since the last fsync.
	DirtyBytes uint64
	// SyncErr is the sticky background-fsync failure under FsyncInterval (nil
	// while healthy). Once set, Append refuses new records: after a failed
	// fsync the kernel may have dropped the dirty pages, so durability cannot
	// be re-promised by a later sync succeeding.
	SyncErr error
}

// Writer appends framed records to the active segment, rotating and syncing
// per Options. Safe for concurrent use.
type Writer struct {
	opts Options

	mu       sync.Mutex
	f        *os.File
	segStart uint64 // first seq of the active segment
	segSize  int64
	nextSeq  uint64
	closed   bool

	appends    uint64
	fsyncs     uint64
	bytes      uint64
	dirty      uint64
	lastSync   time.Time
	flushStop  chan struct{}
	flushDone  chan struct{}
	flushErrMu sync.Mutex
	flushErr   error
}

// ErrClosed is returned by operations on a closed Writer.
var ErrClosed = errors.New("wal: writer closed")

// Open creates (or continues) the log in opts.Dir. The writer always starts a
// fresh segment whose first sequence is one past the highest committed-or-torn
// sequence on disk, so a recovering process never appends into a segment whose
// tail it may have just truncated.
func Open(opts Options) (*Writer, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSeg
	}
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	next, err := nextSeqOnDisk(opts.Dir)
	if err != nil {
		return nil, err
	}
	// A previous process that opened the log but never committed an append can
	// leave a segment bearing exactly the first sequence the new writer wants.
	// Reclaim the name only when the segment holds no CRC-valid frame at all
	// (empty or wholly torn — nothing acknowledged lives in it). It can also
	// hold valid frames that never advanced the scan: an Append that rotates
	// mid-call makes a following AppendAbort the first frame of the new
	// segment, carrying the OLDER sequence. Deleting such a segment would
	// destroy the durable abort marker and resurrect a never-acknowledged
	// append on the next recovery — instead the label itself is burned: any
	// torn tail is truncated and the writer starts one sequence past the name.
	if stale := filepath.Join(opts.Dir, segName(next)); fileExists(stale) {
		valid, tearOff, serr := segmentFrameState(stale)
		if serr != nil {
			return nil, serr
		}
		if valid == 0 {
			if err := os.Remove(stale); err != nil {
				return nil, err
			}
		} else {
			if tearOff >= 0 {
				if err := os.Truncate(stale, tearOff); err != nil {
					return nil, err
				}
			}
			next++
		}
	}
	w := &Writer{opts: opts, nextSeq: next}
	if err := w.rotateLocked(); err != nil {
		return nil, err
	}
	if opts.Policy == FsyncInterval {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// nextSeqOnDisk scans existing segments and returns one past the highest
// sequence present (committed or torn — a torn record's sequence is burned,
// never reused, so replay's "skip aborted/unseen" logic stays simple).
func nextSeqOnDisk(dir string) (uint64, error) {
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		return 1, err
	}
	last := segs[len(segs)-1]
	max := last.firstSeq - 1
	err = scanSegment(filepath.Join(dir, last.name), func(payload []byte) error {
		seq, n := binary.Uvarint(payload)
		if n <= 0 {
			return fmt.Errorf("wal: segment %s has frame without sequence", last.name)
		}
		if seq > max {
			max = seq
		}
		return nil
	})
	if err != nil {
		var te *tornError
		if !errors.As(err, &te) {
			return 0, err
		}
	}
	return max + 1, nil
}

// segmentFrameState reports how many CRC-valid frames the segment at path
// holds and, when its tail is torn, the tear's byte offset (-1 for a clean
// tail). Read errors pass through; tears do not.
func segmentFrameState(path string) (validFrames int, tearOff int64, err error) {
	err = scanSegment(path, func([]byte) error { validFrames++; return nil })
	if err != nil {
		var te *tornError
		if errors.As(err, &te) {
			return validFrames, te.off, nil
		}
		return validFrames, -1, err
	}
	return validFrames, -1, nil
}

type segInfo struct {
	name     string
	firstSeq uint64
}

func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		n, err := strconv.ParseUint(numStr, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{name: name, firstSeq: n})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// rotateLocked closes the active segment (if any) and opens a new one whose
// first sequence is nextSeq. Caller holds mu (or is Open, pre-publication).
func (w *Writer) rotateLocked() error {
	if w.f != nil {
		if w.dirty > 0 && w.opts.Policy != FsyncOff {
			if err := w.syncLocked(); err != nil {
				return err
			}
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	path := filepath.Join(w.opts.Dir, segName(w.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segStart = w.nextSeq
	w.segSize = int64(len(segMagic))
	return nil
}

// Append frames, writes, and (per policy) syncs one record, assigning and
// returning its sequence. Fires the wal.append failpoint before the write and
// wal.fsync before each sync so the crash harness can kill the process at
// either boundary.
func (w *Writer) Append(rec *Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.syncFailure(); err != nil {
		// A background fsync has failed: acknowledged-but-unsynced bytes may
		// already be lost, so acknowledging more writes would silently degrade
		// FsyncInterval to FsyncOff on a sick disk.
		return 0, fmt.Errorf("wal: background fsync failed, refusing append: %w", err)
	}
	// The sequence is burned before the failpoint fires: an injected panic or
	// kill between assignment and write leaves a gap, never a reused sequence
	// that a later abort marker could void by mistake.
	rec.Seq = w.nextSeq
	w.nextSeq++
	exec.Testing.Fire("wal.append")
	if err := w.writeLocked(rec); err != nil {
		return 0, err
	}
	w.appends++
	if w.opts.Policy == FsyncAlways {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	if w.segSize >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return rec.Seq, nil
}

// AppendAbort writes an abort marker for seq: the in-memory apply of that
// record failed after the log write, so replay must skip it. The marker is
// synced under every policy except off — losing it would resurrect rows the
// original process never acknowledged.
func (w *Writer) AppendAbort(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	rec := &Record{Seq: seq, Abort: true}
	if err := w.writeLocked(rec); err != nil {
		return err
	}
	w.appends++
	if w.opts.Policy != FsyncOff {
		return w.syncLocked()
	}
	return nil
}

func (w *Writer) writeLocked(rec *Record) error {
	payload := encodePayload(rec)
	if len(payload) > maxFrame {
		return fmt.Errorf("wal: record of %d bytes exceeds frame limit", len(payload))
	}
	frame := make([]byte, frameHdr+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHdr:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.segSize += int64(len(frame))
	w.bytes += uint64(len(frame))
	w.dirty += uint64(len(frame))
	return nil
}

func (w *Writer) syncLocked() error {
	exec.Testing.Fire("wal.fsync")
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs++
	w.dirty = 0
	w.lastSync = time.Now()
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.dirty == 0 {
		return nil
	}
	return w.syncLocked()
}

// syncFailure returns the sticky background-fsync error (nil while healthy).
func (w *Writer) syncFailure() error {
	w.flushErrMu.Lock()
	defer w.flushErrMu.Unlock()
	return w.flushErr
}

func (w *Writer) flushLoop() {
	defer close(w.flushDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.mu.Lock()
			var err error
			if !w.closed && w.dirty > 0 {
				err = w.syncLocked()
			}
			w.mu.Unlock()
			if err != nil {
				w.flushErrMu.Lock()
				w.flushErr = err
				w.flushErrMu.Unlock()
			}
		}
	}
}

// Close syncs (unless policy off) and closes the active segment. Idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.f != nil {
		if w.dirty > 0 && w.opts.Policy != FsyncOff {
			err = w.syncLocked()
		}
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	stop := w.flushStop
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.flushDone
	}
	w.flushErrMu.Lock()
	if err == nil {
		err = w.flushErr
	}
	w.flushErrMu.Unlock()
	return err
}

// Stats returns a snapshot of writer counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, _ := listSegments(w.opts.Dir)
	return Stats{
		Appends:    w.appends,
		Fsyncs:     w.fsyncs,
		Bytes:      w.bytes,
		Segments:   len(segs),
		NextSeq:    w.nextSeq,
		LastSync:   w.lastSync,
		DirtyBytes: w.dirty,
		SyncErr:    w.syncFailure(),
	}
}

// RemoveObsolete deletes segments made redundant by a snapshot at uptoSeq:
// a segment is removable when the NEXT segment starts at or before uptoSeq+1
// (every record in it is ≤ uptoSeq). The active segment is never removed.
// Returns the number of segments deleted.
func (w *Writer) RemoveObsolete(uptoSeq uint64) (int, error) {
	w.mu.Lock()
	active := w.segStart
	w.mu.Unlock()
	segs, err := listSegments(w.opts.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].firstSeq == active || segs[i+1].firstSeq > uptoSeq+1 {
			break
		}
		if err := os.Remove(filepath.Join(w.opts.Dir, segs[i].name)); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// tornError marks the point where a segment's tail stopped parsing; scan
// callers treat it as "stop here", not failure.
type tornError struct {
	off int64
	why string
}

func (e *tornError) Error() string {
	return fmt.Sprintf("wal: torn tail at offset %d: %s", e.off, e.why)
}

// scanSegment streams each frame payload through fn. A malformed header,
// oversized length, short payload, or CRC mismatch returns a *tornError
// carrying the offset of the bad frame; fn errors pass through unchanged.
func scanSegment(path string, fn func(payload []byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return &tornError{off: 0, why: "bad segment magic"}
	}
	off := int64(len(segMagic))
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < frameHdr {
			return &tornError{off: off, why: "short frame header"}
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxFrame {
			return &tornError{off: off, why: "frame length out of range"}
		}
		if len(rest) < frameHdr+int(n) {
			return &tornError{off: off, why: "short frame payload"}
		}
		payload := rest[frameHdr : frameHdr+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return &tornError{off: off, why: "payload CRC mismatch"}
		}
		if err := fn(payload); err != nil {
			return err
		}
		off += int64(frameHdr) + int64(n)
	}
	return nil
}

// ReplayStats summarizes a Replay pass.
type ReplayStats struct {
	// Records is the count of committed append records delivered to fn.
	Records int
	// Aborted counts records skipped because an abort marker voided them.
	Aborted int
	// TruncatedTails counts segments whose tail failed CRC/framing and was
	// truncated (later segments, if any, are removed wholesale).
	TruncatedTails int
	// MaxSeq is the highest sequence observed, committed or not.
	MaxSeq uint64
}

// Replay scans the log in dir and delivers every committed append record with
// sequence > after to fn, in sequence order. Torn or corrupt tails are
// truncated on disk (and segments past the tear removed) rather than failing:
// a tear means the process died mid-write, so nothing after it was ever
// acknowledged. An error from fn aborts the replay and is returned.
//
// Replay runs two passes: the first collects abort markers and repairs tears
// (an abort marker can follow its target, even in a later segment), the
// second delivers committed records.
func Replay(dir string, after uint64, fn func(*Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return st, err
	}

	// Pass 1: find the tear (if any), collect abort markers up to it.
	aborted := map[uint64]bool{}
	tearSeg := -1
	var tear *tornError
	for i, s := range segs {
		err := scanSegment(filepath.Join(dir, s.name), func(payload []byte) error {
			rec, err := decodePayload(payload)
			if err != nil {
				return err
			}
			if rec.Seq > st.MaxSeq {
				st.MaxSeq = rec.Seq
			}
			if rec.Abort {
				aborted[rec.Seq] = true
			}
			return nil
		})
		if err != nil {
			var te *tornError
			if errors.As(err, &te) {
				tearSeg, tear = i, te
				break
			}
			// Undecodable-but-CRC-valid payload: treat as a tear at that
			// segment too — the data is not trustworthy past this point.
			tearSeg, tear = i, &tornError{off: 0, why: err.Error()}
			break
		}
	}

	// Repair: truncate the torn segment at the tear and drop later segments.
	if tearSeg >= 0 {
		st.TruncatedTails++
		path := filepath.Join(dir, segs[tearSeg].name)
		if tear.off <= int64(len(segMagic)) {
			// Nothing valid in this segment; remove it entirely.
			if err := os.Remove(path); err != nil {
				return st, err
			}
		} else if err := os.Truncate(path, tear.off); err != nil {
			return st, err
		}
		for _, s := range segs[tearSeg+1:] {
			if err := os.Remove(filepath.Join(dir, s.name)); err != nil {
				return st, err
			}
		}
		segs = segs[:tearSeg+1]
		if tear.off <= int64(len(segMagic)) {
			segs = segs[:tearSeg]
		}
	}

	// Pass 2: deliver committed records in order.
	for _, s := range segs {
		err := scanSegment(filepath.Join(dir, s.name), func(payload []byte) error {
			rec, err := decodePayload(payload)
			if err != nil {
				return err
			}
			if rec.Abort || rec.Seq <= after || aborted[rec.Seq] {
				if !rec.Abort && aborted[rec.Seq] && rec.Seq > after {
					st.Aborted++
				}
				return nil
			}
			exec.Testing.Fire("recover.replay")
			if err := fn(rec); err != nil {
				return err
			}
			st.Records++
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	return st, nil
}
