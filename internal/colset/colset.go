// Package colset implements small, value-type column sets used throughout the
// GB-MQO search. A Set identifies a Group By query by the ordinals of its
// grouping columns within one relation's schema; the search DAG of the paper
// (§3.1) is the subset lattice over these sets. Sets support at most 64
// columns, which comfortably covers the paper's widest experiment (48 columns,
// §6.4).
package colset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxColumns is the largest column ordinal + 1 representable in a Set.
const MaxColumns = 64

// Set is a bitset of column ordinals. The zero value is the empty set. Sets
// are immutable values: all operations return new sets.
type Set uint64

// Of builds a set from column ordinals. It panics if an ordinal is out of
// range, since that is always a programming error in callers.
func Of(cols ...int) Set {
	var s Set
	for _, c := range cols {
		s = s.Add(c)
	}
	return s
}

// Range returns the set {0, 1, ..., n-1}.
func Range(n int) Set {
	if n < 0 || n > MaxColumns {
		panic(fmt.Sprintf("colset: Range(%d) out of range", n))
	}
	if n == MaxColumns {
		return Set(^uint64(0))
	}
	return Set((uint64(1) << uint(n)) - 1)
}

// Add returns s with column c included.
func (s Set) Add(c int) Set {
	if c < 0 || c >= MaxColumns {
		panic(fmt.Sprintf("colset: column ordinal %d out of range [0,%d)", c, MaxColumns))
	}
	return s | Set(uint64(1)<<uint(c))
}

// Remove returns s with column c excluded.
func (s Set) Remove(c int) Set {
	if c < 0 || c >= MaxColumns {
		panic(fmt.Sprintf("colset: column ordinal %d out of range [0,%d)", c, MaxColumns))
	}
	return s &^ Set(uint64(1)<<uint(c))
}

// Has reports whether column c is in the set.
func (s Set) Has(c int) bool {
	if c < 0 || c >= MaxColumns {
		return false
	}
	return s&Set(uint64(1)<<uint(c)) != 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns s \ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// Len returns the number of columns in the set.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether the set has no columns.
func (s Set) IsEmpty() bool { return s == 0 }

// SubsetOf reports whether every column of s is in t (s ⊆ t).
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s ⊂ t.
func (s Set) ProperSubsetOf(t Set) bool { return s != t && s.SubsetOf(t) }

// SupersetOf reports whether s ⊇ t.
func (s Set) SupersetOf(t Set) bool { return t.SubsetOf(s) }

// Overlaps reports whether s and t share at least one column.
func (s Set) Overlaps(t Set) bool { return s&t != 0 }

// Min returns the smallest column ordinal in the set. It panics on the empty
// set.
func (s Set) Min() int {
	if s == 0 {
		panic("colset: Min of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// Max returns the largest column ordinal in the set. It panics on the empty
// set.
func (s Set) Max() int {
	if s == 0 {
		panic("colset: Max of empty set")
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// Columns returns the column ordinals in ascending order.
func (s Set) Columns() []int {
	out := make([]int, 0, s.Len())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, bits.TrailingZeros64(v))
	}
	return out
}

// ForEach calls fn for each column ordinal in ascending order.
func (s Set) ForEach(fn func(c int)) {
	for v := uint64(s); v != 0; v &= v - 1 {
		fn(bits.TrailingZeros64(v))
	}
}

// String renders the set as "{c0,c3,c7}" using raw ordinals. Use Format for
// schema-aware names.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(c int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "c%d", c)
	})
	b.WriteByte('}')
	return b.String()
}

// Format renders the set using the provided column names, e.g.
// "(l_shipdate, l_commitdate)". Ordinals without a name fall back to "c<i>".
func (s Set) Format(names []string) string {
	var b strings.Builder
	b.WriteByte('(')
	first := true
	s.ForEach(func(c int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		if c < len(names) {
			b.WriteString(names[c])
		} else {
			fmt.Fprintf(&b, "c%d", c)
		}
	})
	b.WriteByte(')')
	return b.String()
}

// Subsets enumerates every subset of s (including the empty set and s itself)
// in an unspecified order, calling fn for each. If fn returns false the
// enumeration stops early.
func (s Set) Subsets(fn func(Set) bool) {
	// Standard subset-enumeration trick: iterate sub = (sub-1)&s downward.
	sub := s
	for {
		if !fn(sub) {
			return
		}
		if sub == 0 {
			return
		}
		sub = (sub - 1) & s
	}
}

// SortSets orders a slice of sets deterministically: ascending by cardinality,
// then by bit pattern. Experiments rely on this for reproducible output.
func SortSets(sets []Set) {
	sort.Slice(sets, func(i, j int) bool {
		if li, lj := sets[i].Len(), sets[j].Len(); li != lj {
			return li < lj
		}
		return sets[i] < sets[j]
	})
}

// UnionAll returns the union of all sets.
func UnionAll(sets []Set) Set {
	var u Set
	for _, s := range sets {
		u |= s
	}
	return u
}
