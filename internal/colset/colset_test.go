package colset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOfAndColumns(t *testing.T) {
	s := Of(3, 0, 7, 3)
	if got := s.Columns(); !reflect.DeepEqual(got, []int{0, 3, 7}) {
		t.Fatalf("Columns() = %v, want [0 3 7]", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", s.Len())
	}
}

func TestRange(t *testing.T) {
	if got := Range(0); got != 0 {
		t.Errorf("Range(0) = %v, want empty", got)
	}
	if got := Range(3); !reflect.DeepEqual(got.Columns(), []int{0, 1, 2}) {
		t.Errorf("Range(3) = %v", got.Columns())
	}
	if got := Range(64); got.Len() != 64 {
		t.Errorf("Range(64).Len() = %d", got.Len())
	}
}

func TestRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(65) did not panic")
		}
	}()
	Range(65)
}

func TestAddRemoveHas(t *testing.T) {
	var s Set
	s = s.Add(5)
	if !s.Has(5) {
		t.Fatal("Has(5) after Add(5) = false")
	}
	if s.Has(4) {
		t.Fatal("Has(4) = true on {5}")
	}
	s = s.Remove(5)
	if !s.IsEmpty() {
		t.Fatal("set not empty after removing only element")
	}
	// Removing an absent column is a no-op.
	if got := Of(1).Remove(2); got != Of(1) {
		t.Fatalf("Remove absent changed set: %v", got)
	}
}

func TestHasOutOfRange(t *testing.T) {
	if Of(1).Has(-1) || Of(1).Has(64) {
		t.Fatal("Has out of range should be false")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	for _, c := range []int{-1, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", c)
				}
			}()
			Of(c)
		}()
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := Of(0, 1, 2), Of(2, 3)
	if got := a.Union(b); got != Of(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != Of(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != Of(0, 1) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps = false")
	}
	if Of(0).Overlaps(Of(1)) {
		t.Error("disjoint sets report overlap")
	}
}

func TestSubsetRelations(t *testing.T) {
	a, b := Of(1, 2), Of(1, 2, 3)
	if !a.SubsetOf(b) || !a.ProperSubsetOf(b) {
		t.Error("a should be proper subset of b")
	}
	if !b.SupersetOf(a) {
		t.Error("b should be superset of a")
	}
	if !a.SubsetOf(a) {
		t.Error("a ⊆ a should hold")
	}
	if a.ProperSubsetOf(a) {
		t.Error("a ⊂ a should not hold")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a should not hold")
	}
	var empty Set
	if !empty.SubsetOf(a) {
		t.Error("∅ ⊆ a should hold")
	}
}

func TestMinMax(t *testing.T) {
	s := Of(5, 9, 33)
	if s.Min() != 5 {
		t.Errorf("Min = %d", s.Min())
	}
	if s.Max() != 33 {
		t.Errorf("Max = %d", s.Max())
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, fn := range map[string]func(Set) int{"Min": Set.Min, "Max": Set.Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty set did not panic", name)
				}
			}()
			fn(Set(0))
		}()
	}
}

func TestString(t *testing.T) {
	if got := Of(0, 2).String(); got != "{c0,c2}" {
		t.Errorf("String = %q", got)
	}
	if got := Set(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestFormat(t *testing.T) {
	names := []string{"a", "b"}
	if got := Of(0, 1).Format(names); got != "(a, b)" {
		t.Errorf("Format = %q", got)
	}
	if got := Of(0, 5).Format(names); got != "(a, c5)" {
		t.Errorf("Format fallback = %q", got)
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	s := Of(0, 2, 5)
	seen := map[Set]bool{}
	s.Subsets(func(sub Set) bool {
		if seen[sub] {
			t.Fatalf("subset %v enumerated twice", sub)
		}
		if !sub.SubsetOf(s) {
			t.Fatalf("enumerated non-subset %v", sub)
		}
		seen[sub] = true
		return true
	})
	if len(seen) != 8 {
		t.Fatalf("enumerated %d subsets, want 8", len(seen))
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	n := 0
	Of(0, 1, 2).Subsets(func(Set) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("enumeration did not stop early: n=%d", n)
	}
}

func TestSortSets(t *testing.T) {
	sets := []Set{Of(0, 1), Of(2), Of(0), Of(1, 2), Of(0, 1, 2)}
	SortSets(sets)
	want := []Set{Of(0), Of(2), Of(0, 1), Of(1, 2), Of(0, 1, 2)}
	if !reflect.DeepEqual(sets, want) {
		t.Fatalf("SortSets = %v, want %v", sets, want)
	}
}

func TestUnionAll(t *testing.T) {
	if got := UnionAll([]Set{Of(0), Of(3), Of(0, 5)}); got != Of(0, 3, 5) {
		t.Fatalf("UnionAll = %v", got)
	}
	if got := UnionAll(nil); got != 0 {
		t.Fatalf("UnionAll(nil) = %v", got)
	}
}

// modelSet is a map-based reference implementation used to property-test the
// bitset against.
type modelSet map[int]bool

func toModel(s Set) modelSet {
	m := modelSet{}
	s.ForEach(func(c int) { m[c] = true })
	return m
}

func fromModel(m modelSet) Set {
	var s Set
	for c := range m {
		s = s.Add(c)
	}
	return s
}

func randomSet(r *rand.Rand) Set {
	return Set(r.Uint64())
}

func TestQuickAlgebraMatchesModel(t *testing.T) {
	f := func(a, b uint64) bool {
		sa, sb := Set(a), Set(b)
		ma, mb := toModel(sa), toModel(sb)
		union := modelSet{}
		for c := range ma {
			union[c] = true
		}
		for c := range mb {
			union[c] = true
		}
		inter := modelSet{}
		for c := range ma {
			if mb[c] {
				inter[c] = true
			}
		}
		diff := modelSet{}
		for c := range ma {
			if !mb[c] {
				diff[c] = true
			}
		}
		return sa.Union(sb) == fromModel(union) &&
			sa.Intersect(sb) == fromModel(inter) &&
			sa.Diff(sb) == fromModel(diff) &&
			sa.Len() == len(ma)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetDefinition(t *testing.T) {
	f := func(a, b uint64) bool {
		sa, sb := Set(a), Set(b)
		want := true
		sa.ForEach(func(c int) {
			if !sb.Has(c) {
				want = false
			}
		})
		return sa.SubsetOf(sb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetsCount(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		// Keep sets small so 2^len is manageable.
		s := randomSet(r) & Set(0xFFFF) // at most 16 columns
		if s.Len() > 12 {
			continue
		}
		n := 0
		s.Subsets(func(Set) bool { n++; return true })
		if n != 1<<uint(s.Len()) {
			t.Fatalf("set %v: %d subsets, want %d", s, n, 1<<uint(s.Len()))
		}
	}
}

func TestQuickColumnsRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		s := Set(a)
		return Of(s.Columns()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
