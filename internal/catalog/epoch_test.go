package catalog

import (
	"testing"

	"gbmqo/internal/index"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

func epochTable(t *testing.T, n int) *table.Table {
	t.Helper()
	tb := table.New("t", []table.ColumnDef{{Name: "a", Typ: table.TInt64}})
	for i := 0; i < n; i++ {
		tb.AppendRow(table.Int(int64(i % 3)))
	}
	return tb
}

func TestRegisterDeltaAdvancesEpoch(t *testing.T) {
	c := New(stats.NewService(stats.Exact, 0, 1))
	base := epochTable(t, 4)
	c.Register(base)
	ep0 := c.Epoch("t")
	if ep0.Delta != 0 {
		t.Fatalf("fresh registration delta = %d", ep0.Delta)
	}
	next := base.Append([][]table.Value{{table.Int(9)}})
	ep1, err := c.RegisterDelta(next)
	if err != nil {
		t.Fatal(err)
	}
	if ep1.Version != ep0.Version || ep1.Delta != 1 {
		t.Fatalf("epoch after delta = %+v, want version %d delta 1", ep1, ep0.Version)
	}
	got, ep, ok := c.TableEpoch("t")
	if !ok || got != next || ep != ep1 {
		t.Fatalf("TableEpoch = (%v, %+v, %v)", got, ep, ok)
	}
}

func TestRegisterDeltaUnknownTable(t *testing.T) {
	c := New(stats.NewService(stats.Exact, 0, 1))
	if _, err := c.RegisterDelta(epochTable(t, 1)); err == nil {
		t.Fatal("RegisterDelta on an unregistered table should error")
	}
}

func TestRegisterResetsDelta(t *testing.T) {
	c := New(stats.NewService(stats.Exact, 0, 1))
	base := epochTable(t, 4)
	c.Register(base)
	if _, err := c.RegisterDelta(base.Append([][]table.Value{{table.Int(9)}})); err != nil {
		t.Fatal(err)
	}
	v1 := c.Epoch("t").Version
	c.Register(epochTable(t, 4)) // full replacement
	ep := c.Epoch("t")
	if ep.Version <= v1 || ep.Delta != 0 {
		t.Fatalf("re-registration epoch = %+v, want version > %d, delta 0", ep, v1)
	}
}

func TestDropResetsDelta(t *testing.T) {
	c := New(stats.NewService(stats.Exact, 0, 1))
	base := epochTable(t, 4)
	c.Register(base)
	if _, err := c.RegisterDelta(base.Append([][]table.Value{{table.Int(9)}})); err != nil {
		t.Fatal(err)
	}
	c.Drop("t")
	c.Register(epochTable(t, 4))
	if ep := c.Epoch("t"); ep.Delta != 0 {
		t.Fatalf("delta survived drop: %+v", ep)
	}
}

func TestRegisterDeltaDropsIndexes(t *testing.T) {
	c := New(stats.NewService(stats.Exact, 0, 1))
	base := epochTable(t, 6)
	c.Register(base)
	if err := c.AddIndex(index.Build(base, "ix", []int{0}, false)); err != nil {
		t.Fatal(err)
	}
	if len(c.Indexes("t")) != 1 {
		t.Fatal("index not registered")
	}
	if _, err := c.RegisterDelta(base.Append([][]table.Value{{table.Int(9)}})); err != nil {
		t.Fatal(err)
	}
	// A stale index fast path would silently miss the delta rows.
	if len(c.Indexes("t")) != 0 {
		t.Fatal("indexes survived a delta registration")
	}
}
