// Package catalog is the runtime registry tying together base tables,
// materialized temporary tables, physical design (indexes) and the statistics
// service. The engine resolves every table reference through it, and the
// optimizer's what-if costing registers hypothetical tables here so that
// queries over not-yet-materialized intermediates can be costed (§3.2.2).
package catalog

import (
	"fmt"
	"sort"

	"gbmqo/internal/colset"
	"gbmqo/internal/index"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// HypoTable is a what-if hypothetical table: it does not exist, but carries
// the cardinality and width metadata the cost model needs, exactly like the
// what-if analysis APIs in commercial optimizers the paper leans on ("these
// APIs allow us to pretend that a table exists, and has a given cardinality
// and database statistics").
type HypoTable struct {
	Name string
	// Base is the base relation this hypothetical descends from.
	Base *table.Table
	// Set is the grouping column set (ordinals on Base) whose Group By result
	// this table would hold.
	Set colset.Set
	// Rows is the estimated cardinality.
	Rows float64
	// RowWidth is the estimated row width in bytes (grouping columns plus
	// aggregate columns).
	RowWidth float64
}

// Catalog registers tables, indexes and hypothetical tables.
type Catalog struct {
	tables  map[string]*table.Table
	indexes map[string][]*index.Index
	hypos   map[string]*HypoTable
	stats   *stats.Service
	// versions counts mutations per table name: every Register (create or
	// replace) and Drop bumps the counter, so any cached derivation keyed by
	// (name, version) goes stale the moment the table's contents may differ.
	versions map[string]uint64
}

// New creates an empty catalog backed by the given statistics service.
func New(svc *stats.Service) *Catalog {
	return &Catalog{
		tables:   make(map[string]*table.Table),
		indexes:  make(map[string][]*index.Index),
		hypos:    make(map[string]*HypoTable),
		stats:    svc,
		versions: make(map[string]uint64),
	}
}

// Stats returns the statistics service.
func (c *Catalog) Stats() *stats.Service { return c.stats }

// Register adds or replaces a table. Replacing drops the old table's indexes
// and invalidates its statistics.
func (c *Catalog) Register(t *table.Table) {
	if _, existed := c.tables[t.Name()]; existed {
		delete(c.indexes, t.Name())
		if c.stats != nil {
			c.stats.Invalidate(t.Name())
		}
	}
	c.versions[t.Name()]++
	c.tables[t.Name()] = t
}

// Version returns the table's mutation counter. It changes whenever the
// table is registered (created or replaced) or dropped, so results derived
// from one version can be recognized as stale after any mutation. Unknown
// tables report 0.
func (c *Catalog) Version(name string) uint64 { return c.versions[name] }

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*table.Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// MustTable resolves a table or panics; for callers that already validated.
func (c *Catalog) MustTable(name string) *table.Table {
	t, ok := c.tables[name]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown table %q", name))
	}
	return t
}

// Drop removes a table, its indexes, and its statistics. Dropping an unknown
// table is a no-op (temp-table cleanup paths may race with earlier drops).
func (c *Catalog) Drop(name string) {
	if _, existed := c.tables[name]; existed {
		c.versions[name]++
	}
	delete(c.tables, name)
	delete(c.indexes, name)
	if c.stats != nil {
		c.stats.Invalidate(name)
	}
}

// TableNames lists registered tables in sorted order.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddIndex registers an index for its table. The table must exist.
func (c *Catalog) AddIndex(ix *index.Index) error {
	if _, ok := c.tables[ix.TableName()]; !ok {
		return fmt.Errorf("catalog: index %q references unknown table %q", ix.Name(), ix.TableName())
	}
	for _, existing := range c.indexes[ix.TableName()] {
		if existing.Name() == ix.Name() {
			return fmt.Errorf("catalog: duplicate index %q on %q", ix.Name(), ix.TableName())
		}
	}
	c.indexes[ix.TableName()] = append(c.indexes[ix.TableName()], ix)
	return nil
}

// Indexes returns the indexes registered for a table (nil when none).
func (c *Catalog) Indexes(tableName string) []*index.Index { return c.indexes[tableName] }

// DropIndexes removes every index on a table.
func (c *Catalog) DropIndexes(tableName string) { delete(c.indexes, tableName) }

// RegisterHypo adds or replaces a hypothetical table.
func (c *Catalog) RegisterHypo(h *HypoTable) { c.hypos[h.Name] = h }

// Hypo resolves a hypothetical table.
func (c *Catalog) Hypo(name string) (*HypoTable, bool) {
	h, ok := c.hypos[name]
	return h, ok
}

// DropHypo removes a hypothetical table.
func (c *Catalog) DropHypo(name string) { delete(c.hypos, name) }
