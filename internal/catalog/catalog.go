// Package catalog is the runtime registry tying together base tables,
// materialized temporary tables, physical design (indexes) and the statistics
// service. The engine resolves every table reference through it, and the
// optimizer's what-if costing registers hypothetical tables here so that
// queries over not-yet-materialized intermediates can be costed (§3.2.2).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"gbmqo/internal/colset"
	"gbmqo/internal/index"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// HypoTable is a what-if hypothetical table: it does not exist, but carries
// the cardinality and width metadata the cost model needs, exactly like the
// what-if analysis APIs in commercial optimizers the paper leans on ("these
// APIs allow us to pretend that a table exists, and has a given cardinality
// and database statistics").
type HypoTable struct {
	Name string
	// Base is the base relation this hypothetical descends from.
	Base *table.Table
	// Set is the grouping column set (ordinals on Base) whose Group By result
	// this table would hold.
	Set colset.Set
	// Rows is the estimated cardinality.
	Rows float64
	// RowWidth is the estimated row width in bytes (grouping columns plus
	// aggregate columns).
	RowWidth float64
}

// Epoch identifies one observable state of a table's contents. Version is the
// major counter: it bumps on Register (create or replace) and Drop, i.e. any
// mutation that can rewrite or re-encode existing rows, and invalidates every
// derivation. Delta is the minor counter within a Version: it bumps on
// RegisterDelta (an append-only snapshot swap), under which existing rows and
// their dictionary codes are guaranteed stable — which is what lets the cache
// roll cached aggregates forward instead of discarding them.
type Epoch struct {
	Version uint64
	Delta   uint64
}

// Catalog registers tables, indexes and hypothetical tables. All methods are
// safe for concurrent use: queries resolve tables while the append path swaps
// in new snapshots.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*table.Table
	indexes map[string][]*index.Index
	hypos   map[string]*HypoTable
	stats   *stats.Service
	// versions counts mutations per table name: every Register (create or
	// replace) and Drop bumps the counter, so any cached derivation keyed by
	// (name, version) goes stale the moment the table's contents may differ.
	// Appends bump deltas instead (see Epoch).
	versions map[string]uint64
	deltas   map[string]uint64
}

// New creates an empty catalog backed by the given statistics service.
func New(svc *stats.Service) *Catalog {
	return &Catalog{
		tables:   make(map[string]*table.Table),
		indexes:  make(map[string][]*index.Index),
		hypos:    make(map[string]*HypoTable),
		stats:    svc,
		versions: make(map[string]uint64),
		deltas:   make(map[string]uint64),
	}
}

// Stats returns the statistics service.
func (c *Catalog) Stats() *stats.Service { return c.stats }

// Register adds or replaces a table. Replacing drops the old table's indexes
// and invalidates its statistics. The delta counter resets: a replace starts a
// fresh Version whose contents have no append lineage.
func (c *Catalog) Register(t *table.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, existed := c.tables[t.Name()]; existed {
		delete(c.indexes, t.Name())
		if c.stats != nil {
			c.stats.Invalidate(t.Name())
		}
	}
	c.versions[t.Name()]++
	delete(c.deltas, t.Name())
	c.tables[t.Name()] = t
}

// RegisterDelta swaps in an append-only snapshot of an existing table,
// bumping the Delta counter but not the Version: rows [0, old.NumRows) and
// all dictionary codes are unchanged, so derivations from the previous epoch
// remain mergeable rather than merely stale. Indexes on the table are dropped
// — they were built over the old row range and an index fast path would
// silently miss appended rows. Statistics are NOT invalidated here; the
// stats service self-heals on snapshot-pointer mismatch so the append path
// can refresh them lazily.
func (c *Catalog) RegisterDelta(t *table.Table) (Epoch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name()]; !ok {
		return Epoch{}, fmt.Errorf("catalog: RegisterDelta on unknown table %q", t.Name())
	}
	delete(c.indexes, t.Name())
	c.deltas[t.Name()]++
	c.tables[t.Name()] = t
	return Epoch{Version: c.versions[t.Name()], Delta: c.deltas[t.Name()]}, nil
}

// RestoreAt installs a recovered table at an exact epoch, bypassing the
// Register/RegisterDelta counters. Crash recovery uses it so a table rebuilt
// from a snapshot resumes at the (Version, Delta) the snapshot recorded —
// replayed WAL appends then advance Delta through RegisterDelta exactly as
// the pre-crash appends did, and any rewarmed cache entry keyed at a
// post-snapshot epoch lines up. The epoch must be at least as high as the
// table's current one (recovery runs against a fresh catalog, so normally the
// table is unknown and any epoch is fine); moving a live table backwards
// would resurrect stale cached derivations and is rejected.
func (c *Catalog) RestoreAt(t *table.Table, ep Epoch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := t.Name()
	cur := Epoch{Version: c.versions[name], Delta: c.deltas[name]}
	if ep.Version < cur.Version || (ep.Version == cur.Version && ep.Delta < cur.Delta) {
		return fmt.Errorf("catalog: RestoreAt %q at v%d.%d behind current v%d.%d",
			name, ep.Version, ep.Delta, cur.Version, cur.Delta)
	}
	delete(c.indexes, name)
	if c.stats != nil {
		c.stats.Invalidate(name)
	}
	c.versions[name] = ep.Version
	if ep.Delta == 0 {
		delete(c.deltas, name)
	} else {
		c.deltas[name] = ep.Delta
	}
	c.tables[name] = t
	return nil
}

// Version returns the table's mutation counter. It changes whenever the
// table is registered (created or replaced) or dropped, so results derived
// from one version can be recognized as stale after any mutation. Unknown
// tables report 0. Appends do not change it — see Epoch.
func (c *Catalog) Version(name string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.versions[name]
}

// Epoch returns the table's full (Version, Delta) epoch.
func (c *Catalog) Epoch(name string) Epoch {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Epoch{Version: c.versions[name], Delta: c.deltas[name]}
}

// TableEpoch resolves a table and its epoch in one consistent read, so a
// caller never pairs a new snapshot with a stale epoch (or vice versa).
func (c *Catalog) TableEpoch(name string) (*table.Table, Epoch, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, Epoch{Version: c.versions[name], Delta: c.deltas[name]}, ok
}

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*table.Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// MustTable resolves a table or panics; for callers that already validated.
func (c *Catalog) MustTable(name string) *table.Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown table %q", name))
	}
	return t
}

// Drop removes a table, its indexes, and its statistics. Dropping an unknown
// table is a no-op (temp-table cleanup paths may race with earlier drops).
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, existed := c.tables[name]; existed {
		c.versions[name]++
		delete(c.deltas, name)
	}
	delete(c.tables, name)
	delete(c.indexes, name)
	if c.stats != nil {
		c.stats.Invalidate(name)
	}
}

// TableNames lists registered tables in sorted order.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddIndex registers an index for its table. The table must exist.
func (c *Catalog) AddIndex(ix *index.Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[ix.TableName()]; !ok {
		return fmt.Errorf("catalog: index %q references unknown table %q", ix.Name(), ix.TableName())
	}
	for _, existing := range c.indexes[ix.TableName()] {
		if existing.Name() == ix.Name() {
			return fmt.Errorf("catalog: duplicate index %q on %q", ix.Name(), ix.TableName())
		}
	}
	c.indexes[ix.TableName()] = append(c.indexes[ix.TableName()], ix)
	return nil
}

// Indexes returns the indexes registered for a table (nil when none). Callers
// must not mutate the returned slice.
func (c *Catalog) Indexes(tableName string) []*index.Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.indexes[tableName]
}

// DropIndexes removes every index on a table.
func (c *Catalog) DropIndexes(tableName string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.indexes, tableName)
}

// RegisterHypo adds or replaces a hypothetical table.
func (c *Catalog) RegisterHypo(h *HypoTable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hypos[h.Name] = h
}

// Hypo resolves a hypothetical table.
func (c *Catalog) Hypo(name string) (*HypoTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.hypos[name]
	return h, ok
}

// DropHypo removes a hypothetical table.
func (c *Catalog) DropHypo(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.hypos, name)
}
