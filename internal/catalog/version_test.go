package catalog

import (
	"testing"

	"gbmqo/internal/stats"
)

// TestVersionBumps: every Register of a name advances its version (the result
// cache keys on it, so a replaced table can never serve stale entries), and
// Drop advances it too so a later re-register of the same name cannot collide
// with entries cached before the drop.
func TestVersionBumps(t *testing.T) {
	c := New(stats.NewService(stats.Exact, 0, 1))
	if v := c.Version("t"); v != 0 {
		t.Fatalf("unregistered version = %d", v)
	}
	c.Register(newTable("t"))
	v1 := c.Version("t")
	if v1 == 0 {
		t.Fatal("version not bumped on first register")
	}
	c.Register(newTable("t"))
	v2 := c.Version("t")
	if v2 <= v1 {
		t.Fatalf("re-register version %d, want > %d", v2, v1)
	}
	c.Drop("t")
	v3 := c.Version("t")
	if v3 <= v2 {
		t.Fatalf("drop version %d, want > %d", v3, v2)
	}
	c.Drop("t") // dropping a missing table must not bump
	if v := c.Version("t"); v != v3 {
		t.Fatalf("idempotent drop bumped version %d -> %d", v3, v)
	}
	c.Register(newTable("u"))
	if v := c.Version("t"); v != v3 {
		t.Fatal("registering another table changed t's version")
	}
}
