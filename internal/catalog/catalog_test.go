package catalog

import (
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/index"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

func newTable(name string) *table.Table {
	t := table.New(name, []table.ColumnDef{{Name: "a", Typ: table.TInt64}})
	t.AppendRow(table.Int(1))
	t.AppendRow(table.Int(2))
	return t
}

func TestRegisterAndResolve(t *testing.T) {
	c := New(stats.NewService(stats.Exact, 0, 1))
	tb := newTable("t")
	c.Register(tb)
	got, ok := c.Table("t")
	if !ok || got != tb {
		t.Fatal("table not resolvable")
	}
	if _, ok := c.Table("missing"); ok {
		t.Fatal("missing table resolved")
	}
	if c.MustTable("t") != tb {
		t.Fatal("MustTable wrong")
	}
}

func TestMustTablePanics(t *testing.T) {
	c := New(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable did not panic")
		}
	}()
	c.MustTable("nope")
}

func TestReRegisterInvalidates(t *testing.T) {
	svc := stats.NewService(stats.Exact, 0, 1)
	c := New(svc)
	tb := newTable("t")
	c.Register(tb)
	if err := c.AddIndex(index.Build(tb, "ix", []int{0}, false)); err != nil {
		t.Fatal(err)
	}
	svc.NDV(tb, colset.Of(0))
	svc.ResetAccounting()

	// Replacing the table must drop indexes and stats.
	tb2 := newTable("t")
	c.Register(tb2)
	if got := c.Indexes("t"); len(got) != 0 {
		t.Fatalf("indexes survived re-register: %d", len(got))
	}
	svc.NDV(tb2, colset.Of(0))
	if svc.Accounting().StatsCreated != 1 {
		t.Fatal("stats cache survived re-register")
	}
}

func TestDrop(t *testing.T) {
	c := New(stats.NewService(stats.Exact, 0, 1))
	tb := newTable("t")
	c.Register(tb)
	if err := c.AddIndex(index.Build(tb, "ix", []int{0}, false)); err != nil {
		t.Fatal(err)
	}
	c.Drop("t")
	if _, ok := c.Table("t"); ok {
		t.Fatal("dropped table still resolvable")
	}
	if len(c.Indexes("t")) != 0 {
		t.Fatal("dropped table still has indexes")
	}
	c.Drop("t") // idempotent
}

func TestAddIndexErrors(t *testing.T) {
	c := New(nil)
	tb := newTable("t")
	ix := index.Build(tb, "ix", []int{0}, false)
	if err := c.AddIndex(ix); err == nil {
		t.Fatal("index on unregistered table accepted")
	}
	c.Register(tb)
	if err := c.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(index.Build(tb, "ix", []int{0}, true)); err == nil {
		t.Fatal("duplicate index name accepted")
	}
	c.DropIndexes("t")
	if len(c.Indexes("t")) != 0 {
		t.Fatal("DropIndexes left indexes behind")
	}
}

func TestTableNamesSorted(t *testing.T) {
	c := New(nil)
	c.Register(newTable("zeta"))
	c.Register(newTable("alpha"))
	names := c.TableNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestHypoTables(t *testing.T) {
	c := New(nil)
	base := newTable("base")
	h := &HypoTable{Name: "hypo1", Base: base, Set: colset.Of(0), Rows: 42, RowWidth: 16}
	c.RegisterHypo(h)
	got, ok := c.Hypo("hypo1")
	if !ok || got.Rows != 42 {
		t.Fatal("hypo not resolvable")
	}
	c.DropHypo("hypo1")
	if _, ok := c.Hypo("hypo1"); ok {
		t.Fatal("dropped hypo still resolvable")
	}
}
