package shard

import (
	"fmt"
	"sort"

	"gbmqo/internal/colset"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// The ordering technique: unsharded results list groups in global
// first-appearance row order. Each shard partition carries the hidden
// RowColumn (global row indexes, ascending within a shard), and every
// grouping set's shard sub-request carries the hidden MIN(RowColumn)
// aggregate — so each shard partial reports, per group, the global row where
// that group first appears in the shard. MIN rolls up losslessly through any
// plan shape (intermediates, shared scans, cube/rollup covers), the merge
// takes the minimum across shards, and sorting merged groups by it
// reconstructs the exact global first-appearance order. The hidden column is
// stripped before results are emitted.

// shardRequest derives the per-shard sub-request: each grouping set's own
// aggregates (explicit per-set list, request default, or COUNT(*)) plus the
// hidden MIN(RowColumn), with the coordinator owning all resilience — shard
// engines run single attempts, uncached. The returned map holds each set's
// own (visible) aggregates for the merge.
func (c *Coordinator) shardRequest(req engine.Request, ti tableInfo) (engine.Request, map[colset.Set][]exec.Agg) {
	own := make(map[colset.Set][]exec.Agg, len(req.Sets))
	per := make(map[colset.Set][]exec.Agg, len(req.Sets))
	hidden := exec.Agg{Kind: exec.AggMin, Col: ti.rowOrd, Name: FirstAgg}
	for _, s := range req.Sets {
		o := req.PerSetAggs[s]
		if len(o) == 0 {
			o = req.Aggs
		}
		if len(o) == 0 {
			o = []exec.Agg{exec.CountStar()}
		}
		own[s] = o
		aug := make([]exec.Agg, len(o), len(o)+1)
		copy(aug, o)
		per[s] = append(aug, hidden)
	}
	sub := req
	sub.PerSetAggs = per
	sub.Retry = engine.RetryPolicy{}
	sub.UseCache = false
	sub.AllowPartial = false
	return sub, own
}

// mergeGroup accumulates one group across shard partials.
type mergeGroup struct {
	codes []uint32      // grouping-key dictionary codes (dicts shared with base)
	vals  []table.Value // visible aggregate values, merged
	first int64         // global first-appearance row (min of shard minima)
}

// merge combines the surviving shards' per-set partials into final result
// tables, byte-identical to unsharded execution: group keys are matched by
// dictionary code (partitions share the base dictionaries), aggregates merge
// by kind, and groups are emitted in global first-appearance order.
func (c *Coordinator) merge(req engine.Request, own map[colset.Set][]exec.Agg, outs []outcome, okIdx []int) (map[colset.Set]*table.Table, error) {
	merged := make(map[colset.Set]*table.Table, len(req.Sets))
	var keyBuf []byte
	for _, set := range req.Sets {
		if _, done := merged[set]; done {
			continue
		}
		nk := set.Len()
		aggs := own[set]
		na := len(aggs)
		byKey := make(map[string]*mergeGroup)
		var groups []*mergeGroup
		var proto *table.Table
		for _, si := range okIdx {
			rt := outs[si].res.Report.Results[set]
			if rt == nil {
				return nil, fmt.Errorf("shard: shard %d returned no result for set %v", si, set)
			}
			if rt.NumCols() != nk+na+1 {
				return nil, fmt.Errorf("shard: shard %d result for set %v has %d columns, want %d", si, set, rt.NumCols(), nk+na+1)
			}
			if proto == nil {
				proto = rt
			}
			for r := 0; r < rt.NumRows(); r++ {
				keyBuf = keyBuf[:0]
				for k := 0; k < nk; k++ {
					code := rt.Col(k).Code(r)
					keyBuf = append(keyBuf, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
				}
				first := rt.Col(nk + na).Value(r).I
				g, ok := byKey[string(keyBuf)]
				if !ok {
					g = &mergeGroup{codes: make([]uint32, nk), vals: make([]table.Value, na), first: first}
					for k := 0; k < nk; k++ {
						g.codes[k] = rt.Col(k).Code(r)
					}
					for j := 0; j < na; j++ {
						g.vals[j] = rt.Col(nk + j).Value(r)
					}
					byKey[string(keyBuf)] = g
					groups = append(groups, g)
					continue
				}
				for j := 0; j < na; j++ {
					g.vals[j] = mergeValue(aggs[j].Kind, g.vals[j], rt.Col(nk+j).Value(r))
				}
				if first < g.first {
					g.first = first
				}
			}
		}
		if proto == nil {
			return nil, fmt.Errorf("shard: no surviving shard produced set %v", set)
		}
		sort.SliceStable(groups, func(a, b int) bool { return groups[a].first < groups[b].first })

		outCols := make([]*table.Column, 0, nk+na)
		for k := 0; k < nk; k++ {
			oc := proto.Col(k).EmptyLike(proto.Col(k).Name())
			for _, g := range groups {
				oc.AppendCode(g.codes[k])
			}
			outCols = append(outCols, oc)
		}
		for j := 0; j < na; j++ {
			src := proto.Col(nk + j)
			oc := table.NewColumn(table.ColumnDef{Name: src.Name(), Typ: src.Type()})
			for _, g := range groups {
				oc.Append(g.vals[j])
			}
			outCols = append(outCols, oc)
		}
		merged[set] = table.FromColumns(proto.Name(), outCols)
	}
	return merged, nil
}

// mergeValue combines two shard partials of one aggregate. NULL handling
// mirrors the accumulators: COUNTs are never NULL, SUM/MIN/MAX skip NULL
// partials (a partial is NULL only when every contributing value was NULL, so
// the merged value is NULL only when all shards' were).
func mergeValue(kind exec.AggKind, a, b table.Value) table.Value {
	switch kind {
	case exec.AggCountStar, exec.AggCount:
		return table.Int(a.I + b.I)
	case exec.AggSum:
		if a.Null {
			return b
		}
		if b.Null {
			return a
		}
		if a.Typ == table.TFloat64 {
			return table.Float(a.F + b.F)
		}
		return table.Int(a.I + b.I)
	case exec.AggMin:
		if a.Null {
			return b
		}
		if b.Null {
			return a
		}
		if b.Compare(a) < 0 {
			return b
		}
		return a
	case exec.AggMax:
		if a.Null {
			return b
		}
		if b.Null {
			return a
		}
		if b.Compare(a) > 0 {
			return b
		}
		return a
	}
	panic(fmt.Sprintf("shard: unmergeable aggregate kind %v", kind))
}

// foldReports sums the surviving shards' execution reports into the gather's:
// scan and query work add up, peaks sum pessimistically (shards run
// concurrently), degradations and kernel attributions concatenate in shard
// order, and every requested set is attributed OriginComputed.
func foldReports(req engine.Request, outs []outcome, okIdx []int) *engine.ExecReport {
	rep := &engine.ExecReport{Attempts: 1}
	for _, i := range okIdx {
		r := outs[i].res.Report
		rep.RowsScanned += r.RowsScanned
		rep.QueriesRun += r.QueriesRun
		rep.TempTables += r.TempTables
		rep.PeakTempBytes += r.PeakTempBytes
		rep.ParallelOps += r.ParallelOps
		if r.MaxWorkers > rep.MaxWorkers {
			rep.MaxWorkers = r.MaxWorkers
		}
		rep.MergeTime += r.MergeTime
		rep.PeakMem += r.PeakMem
		rep.SpillFallbacks += r.SpillFallbacks
		rep.Degradations = append(rep.Degradations, r.Degradations...)
		rep.Kernels = append(rep.Kernels, r.Kernels...)
		rep.RehashesAvoided += r.RehashesAvoided
	}
	rep.Origins = make(map[colset.Set]engine.SetOrigin, len(req.Sets))
	for _, s := range req.Sets {
		rep.Origins[s] = engine.OriginComputed
	}
	return rep
}
