package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/fault"
	"gbmqo/internal/table"
)

// fp is the byte-identity fingerprint used throughout: column names plus the
// row image, the same material the result cache checksums. Two tables with
// equal fingerprints are byte-identical for every consumer in the stack.
func fp(tb *table.Table) []byte {
	var buf bytes.Buffer
	for _, c := range tb.ColNames() {
		buf.WriteString(c)
		buf.WriteByte(0)
	}
	img, _ := tb.RowImage()
	buf.Write(img)
	return buf.Bytes()
}

// assertIdentical requires the sharded run to reproduce the unsharded result
// byte-identically for every requested set.
func assertIdentical(t *testing.T, label string, sets []colset.Set, want, got *engine.RunResult) {
	t.Helper()
	for _, s := range sets {
		wt, gt := want.Report.Results[s], got.Report.Results[s]
		if wt == nil || gt == nil {
			t.Fatalf("%s: set %v: missing result (unsharded %v, sharded %v)", label, s, wt != nil, gt != nil)
		}
		if !bytes.Equal(fp(wt), fp(gt)) {
			t.Fatalf("%s: set %v differs from unsharded reference\nunsharded:\n%s\nsharded:\n%s",
				label, s, wt.FormatRows(20), gt.FormatRows(20))
		}
	}
}

// TestShardDifferentialRandomized is the core acceptance suite: randomized
// grouping sets, aggregate mixes, per-set aggregates, strategies and exec
// configurations (sequential hash, morsel-parallel, shared-scan, tight memory
// budget — steering through the hash/dense/radix/sort kernels), each compared
// byte-identically against unsharded execution at shard counts 1, 2, 4 and 8.
func TestShardDifferentialRandomized(t *testing.T) {
	li := datagen.Lineitem(datagen.LineitemOpts{Rows: 6000, Seed: 7})
	lowNDV := []int{3, 4, 8, 9, 13, 14}
	aggPool := []exec.Agg{
		exec.CountStar(),
		{Kind: exec.AggCount, Col: 0, Name: "cnt_ok"},
		{Kind: exec.AggSum, Col: 4, Name: "sum_qty"},
		{Kind: exec.AggMin, Col: 10, Name: "min_ship"},
		{Kind: exec.AggMax, Col: 4, Name: "max_qty"},
	}
	strategies := []engine.Strategy{engine.StrategyGBMQO, engine.StrategyNaive, engine.StrategyGroupingSets}
	type execCfg struct {
		parallel    bool
		parallelism int
		sharedScan  bool
		memBudget   int64
	}
	cfgs := []execCfg{
		{},
		{parallel: true, parallelism: 2},
		{parallel: true, sharedScan: true},
		{memBudget: 1 << 18},
		{parallelism: -1},
	}

	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			eng := engine.New(nil)
			eng.Catalog().Register(li)
			co, err := New(eng.Catalog(), Options{Shards: n})
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(int64(1000 + n)))
			for trial := 0; trial < 8; trial++ {
				seen := map[colset.Set]bool{}
				var sets []colset.Set
				for len(sets) < 2+r.Intn(3) {
					var s colset.Set
					for s.IsEmpty() {
						for _, c := range lowNDV {
							if r.Intn(3) == 0 {
								s = s.Add(c)
							}
						}
					}
					if !seen[s] {
						seen[s] = true
						sets = append(sets, s)
					}
				}
				aggs := aggPool[:1+r.Intn(len(aggPool))]
				var perSet map[colset.Set][]exec.Agg
				if r.Intn(2) == 0 {
					perSet = map[colset.Set][]exec.Agg{}
					for _, s := range sets {
						if r.Intn(2) == 0 {
							perSet[s] = aggPool[r.Intn(3) : 3+r.Intn(3)]
						}
					}
				}
				cfg := cfgs[trial%len(cfgs)]
				req := engine.Request{
					Table:       "lineitem",
					Sets:        sets,
					Aggs:        aggs,
					PerSetAggs:  perSet,
					Strategy:    strategies[trial%len(strategies)],
					Parallel:    cfg.parallel,
					Parallelism: cfg.parallelism,
					SharedScan:  cfg.sharedScan,
					MemBudget:   cfg.memBudget,
				}
				want, err := eng.Run(req)
				if err != nil {
					t.Fatalf("trial %d: unsharded: %v", trial, err)
				}
				got, err, handled := co.Route(req)
				if !handled {
					t.Fatalf("trial %d: router declined a shardable request", trial)
				}
				if err != nil {
					t.Fatalf("trial %d: sharded: %v", trial, err)
				}
				label := fmt.Sprintf("shards=%d trial=%d", n, trial)
				assertIdentical(t, label, sets, want, got)
				if got.Report.ShardsTotal != n {
					t.Fatalf("%s: ShardsTotal = %d, want %d", label, got.Report.ShardsTotal, n)
				}
				if got.Report.Partial || got.Report.ShardCoverage != 1 {
					t.Fatalf("%s: clean gather reported partial (coverage %v)", label, got.Report.ShardCoverage)
				}
			}
		})
	}
}

// TestShardKeyPartitioning runs the differential with an explicit hash key:
// equal key values co-locate, and results stay byte-identical.
func TestShardKeyPartitioning(t *testing.T) {
	li := datagen.Lineitem(datagen.LineitemOpts{Rows: 5000, Seed: 13})
	eng := engine.New(nil)
	eng.Catalog().Register(li)
	co, err := New(eng.Catalog(), Options{Shards: 4, Keys: map[string]string{"lineitem": "l_shipmode"}})
	if err != nil {
		t.Fatal(err)
	}
	// Every l_shipmode value must live on exactly one shard.
	perShard := 0
	for i := 0; i < 4; i++ {
		if co.shards[i].Rows("lineitem") > 0 {
			perShard++
		}
	}
	if perShard == 0 {
		t.Fatal("no shard holds any rows")
	}
	sets := []colset.Set{colset.Of(14), colset.Of(8, 14), colset.Of(9)}
	req := engine.Request{Table: "lineitem", Sets: sets,
		Aggs: []exec.Agg{exec.CountStar(), {Kind: exec.AggSum, Col: 4, Name: "sq"}}}
	want, err := eng.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err, handled := co.Route(req)
	if !handled || err != nil {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	assertIdentical(t, "keyed", sets, want, got)

	// Unknown key table / column are errors at New time.
	if _, err := New(eng.Catalog(), Options{Shards: 2, Keys: map[string]string{"nope": "x"}}); err == nil {
		t.Fatal("unknown key table accepted")
	}
	if _, err := New(eng.Catalog(), Options{Shards: 2, Keys: map[string]string{"lineitem": "nope"}}); err == nil {
		t.Fatal("unknown key column accepted")
	}
}

// TestShardMergeNullsAndFloats exercises the merge's NULL semantics (SUM/MIN/
// MAX skip NULL partials; a group whose every value is NULL stays NULL) and
// float SUM with reorder-exact values, on a deliberately uneven shard count.
func TestShardMergeNullsAndFloats(t *testing.T) {
	tb := table.New("nf", []table.ColumnDef{
		{Name: "k", Typ: table.TString},
		{Name: "f", Typ: table.TFloat64},
		{Name: "i", Typ: table.TInt64},
	})
	r := rand.New(rand.NewSource(5))
	keys := []string{"a", "b", "c", "d", "allnull"}
	for row := 0; row < 900; row++ {
		k := table.Str(keys[r.Intn(len(keys))])
		if r.Intn(7) == 0 {
			k = table.Null(table.TString)
		}
		f := table.Float(0.25 * float64(r.Intn(40)))
		if r.Intn(5) == 0 || (k.S == "allnull" && !k.Null) {
			f = table.Null(table.TFloat64)
		}
		i := table.Int(int64(r.Intn(50)))
		if r.Intn(4) == 0 {
			i = table.Null(table.TInt64)
		}
		tb.AppendRow(k, f, i)
	}
	eng := engine.New(nil)
	eng.Catalog().Register(tb)
	co, err := New(eng.Catalog(), Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	sets := []colset.Set{colset.Of(0)}
	req := engine.Request{Table: "nf", Sets: sets, Aggs: []exec.Agg{
		exec.CountStar(),
		{Kind: exec.AggCount, Col: 2, Name: "cnt_i"},
		{Kind: exec.AggSum, Col: 1, Name: "sum_f"},
		{Kind: exec.AggSum, Col: 2, Name: "sum_i"},
		{Kind: exec.AggMin, Col: 1, Name: "min_f"},
		{Kind: exec.AggMax, Col: 2, Name: "max_i"},
	}}
	want, err := eng.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err, handled := co.Route(req)
	if !handled || err != nil {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	assertIdentical(t, "nulls", sets, want, got)
}

// TestShardRouteDeclines pins the fallback surface: everything the sharded
// path cannot serve byte-identically must be declined (handled=false), never
// mis-served.
func TestShardRouteDeclines(t *testing.T) {
	li := datagen.Lineitem(datagen.LineitemOpts{Rows: 500, Seed: 3})
	eng := engine.New(nil)
	eng.Catalog().Register(li)
	co, err := New(eng.Catalog(), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	decline := func(label string, req engine.Request) {
		t.Helper()
		if _, _, handled := co.Route(req); handled {
			t.Fatalf("%s: router accepted an unshardable request", label)
		}
	}
	ok := engine.Request{Table: "lineitem", Sets: []colset.Set{colset.Of(8)}}
	if _, _, handled := co.Route(ok); !handled {
		t.Fatal("baseline request declined")
	}

	decline("unknown table", engine.Request{Table: "nope", Sets: []colset.Set{colset.Of(0)}})
	decline("no sets", engine.Request{Table: "lineitem"})
	decline("out-of-range set", engine.Request{Table: "lineitem", Sets: []colset.Set{colset.Of(16)}})
	decline("avg aggregate", engine.Request{Table: "lineitem", Sets: []colset.Set{colset.Of(8)},
		Aggs: []exec.Agg{{Kind: exec.AggAvg, Col: 4, Name: "avg_qty"}}})
	decline("hidden agg name", engine.Request{Table: "lineitem", Sets: []colset.Set{colset.Of(8)},
		Aggs: []exec.Agg{{Kind: exec.AggSum, Col: 4, Name: FirstAgg}}})
	decline("avg in per-set aggs", engine.Request{Table: "lineitem", Sets: []colset.Set{colset.Of(8)},
		PerSetAggs: map[colset.Set][]exec.Agg{colset.Of(8): {{Kind: exec.AggAvg, Col: 4, Name: "a"}}}})

	// Re-registering the table bumps the catalog version: the snapshot is
	// stale and the router must fall back rather than serve old rows.
	eng.Catalog().Register(datagen.Lineitem(datagen.LineitemOpts{Rows: 600, Seed: 4}))
	decline("re-registered table", ok)
}

// forcedOpenCoordinator builds a 4-shard coordinator whose breaker config
// trips on the first recorded failure and stays open for an hour.
func forcedOpenCoordinator(t *testing.T, eng *engine.Engine) *Coordinator {
	t.Helper()
	co, err := New(eng.Catalog(), Options{Shards: 4,
		Breaker: fault.Config{Window: 4, MinSamples: 1, FailureRate: 0.01, OpenFor: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// TestShardForcedOpenPartial is the acceptance scenario: with one shard's
// breaker forced open, an AllowPartial request merges the survivors with
// accurate ShardsFailed and coverage — never a hang, never a silent short
// count.
func TestShardForcedOpenPartial(t *testing.T) {
	li := datagen.Lineitem(datagen.LineitemOpts{Rows: 4000, Seed: 21})
	eng := engine.New(nil)
	eng.Catalog().Register(li)
	co := forcedOpenCoordinator(t, eng)
	co.Breaker(2).RecordErr(errors.New("injected disk failure"))

	set := colset.Of(14)
	req := engine.Request{Table: "lineitem", Sets: []colset.Set{set, colset.Of(8, 9)},
		Aggs: []exec.Agg{exec.CountStar(), {Kind: exec.AggSum, Col: 4, Name: "sq"}}, AllowPartial: true}
	res, err, handled := co.Route(req)
	if !handled {
		t.Fatal("router declined")
	}
	if err != nil {
		t.Fatalf("AllowPartial gather failed outright: %v", err)
	}
	rep := res.Report
	if !rep.Partial || len(rep.ShardsFailed) != 1 || rep.ShardsFailed[0].Shard != 2 {
		t.Fatalf("failure attribution wrong: partial=%v failed=%v", rep.Partial, rep.ShardsFailed)
	}
	var oe *fault.OpenError
	if !errors.As(rep.ShardsFailed[0].Err, &oe) {
		t.Fatalf("shard failure cause is %T, want *fault.OpenError", rep.ShardsFailed[0].Err)
	}
	ti := co.info["lineitem"]
	covered := ti.total - ti.perShard[2]
	if want := float64(covered) / float64(ti.total); math.Abs(rep.ShardCoverage-want) > 1e-9 {
		t.Fatalf("coverage = %v, want %v", rep.ShardCoverage, want)
	}
	// The short count must be exactly the surviving shards' rows — partial,
	// but never silently wrong.
	rt := rep.Results[set]
	var total int64
	for r := 0; r < rt.NumRows(); r++ {
		total += rt.Col(1).Value(r).I
	}
	if total != int64(covered) {
		t.Fatalf("merged COUNT(*) sums to %d, want covered rows %d", total, covered)
	}
	// The breaker snapshot carries the why.
	if st := co.BreakerStates()[2]; st.State != fault.StateOpen || st.LastFailure != "injected disk failure" {
		t.Fatalf("breaker snapshot = %+v", st)
	}
}

// TestShardForcedOpenFailFast: the same forced-open shard without
// AllowPartial must fail with a typed *Error naming the shard, wrapping the
// open-breaker cause.
func TestShardForcedOpenFailFast(t *testing.T) {
	li := datagen.Lineitem(datagen.LineitemOpts{Rows: 2000, Seed: 22})
	eng := engine.New(nil)
	eng.Catalog().Register(li)
	co := forcedOpenCoordinator(t, eng)
	co.Breaker(1).RecordErr(errors.New("forced"))

	req := engine.Request{Table: "lineitem", Sets: []colset.Set{colset.Of(8)}}
	_, err, handled := co.Route(req)
	if !handled {
		t.Fatal("router declined")
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *shard.Error", err, err)
	}
	if se.Shard != 1 || se.Shards != 4 {
		t.Fatalf("attribution: %+v", se)
	}
	var oe *fault.OpenError
	if !errors.As(err, &oe) {
		t.Fatal("open-breaker cause not reachable through Unwrap")
	}

	// All shards open: even AllowPartial has nothing to merge and must error.
	for i := 0; i < 4; i++ {
		co.Breaker(i).RecordErr(errors.New("forced"))
	}
	req.AllowPartial = true
	if _, err, _ := co.Route(req); err == nil {
		t.Fatal("all-shards-open AllowPartial gather returned a result")
	}
}

// TestShardHedgeRace forces one straggling primary (a sleeping failpoint
// hook) with hedging armed: the hedge must fire, win, and the merged result
// must stay byte-identical — the raced loser is never double-merged.
func TestShardHedgeRace(t *testing.T) {
	li := datagen.Lineitem(datagen.LineitemOpts{Rows: 2000, Seed: 31})
	eng := engine.New(nil)
	eng.Catalog().Register(li)
	sets := []colset.Set{colset.Of(14), colset.Of(8, 9)}
	req := engine.Request{Table: "lineitem", Sets: sets,
		Aggs: []exec.Agg{exec.CountStar(), {Kind: exec.AggSum, Col: 4, Name: "sq"}}}
	want, err := eng.Run(req)
	if err != nil {
		t.Fatal(err)
	}

	co, err := New(eng.Catalog(), Options{Shards: 2, HedgeAfter: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "shard.exec" && fired.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond)
		}
	})
	defer exec.Testing.ClearFailPoint()

	got, err, handled := co.Route(req)
	if !handled || err != nil {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	assertIdentical(t, "hedged", sets, want, got)
	if got.Report.HedgesFired < 1 {
		t.Fatalf("no hedge fired (report %+v)", got.Report)
	}
	if got.Report.HedgesWon < 1 {
		t.Fatalf("hedge lost to a primary sleeping 150ms (fired %d)", got.Report.HedgesFired)
	}
	if got.Report.Partial {
		t.Fatal("hedged gather reported partial")
	}
}

// TestShardRetryDegradation: a failpoint that panics exactly once on
// shard.exec must be absorbed by the shard retry loop (MaxAttempts 2) and the
// result must still be byte-identical, with the retry accounted.
func TestShardRetryDegradation(t *testing.T) {
	li := datagen.Lineitem(datagen.LineitemOpts{Rows: 2000, Seed: 33})
	eng := engine.New(nil)
	eng.Catalog().Register(li)
	sets := []colset.Set{colset.Of(14)}
	req := engine.Request{Table: "lineitem", Sets: sets, Aggs: []exec.Agg{exec.CountStar()}}
	want, err := eng.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	co, err := New(eng.Catalog(), Options{Shards: 4, MaxAttempts: 2, RetryBackoff: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "shard.exec" && fired.Add(1) == 1 {
			panic("injected shard fault")
		}
	})
	defer exec.Testing.ClearFailPoint()
	got, err, handled := co.Route(req)
	if !handled || err != nil {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	assertIdentical(t, "retried", sets, want, got)
	if got.Report.ShardRetries != 1 {
		t.Fatalf("ShardRetries = %d, want 1", got.Report.ShardRetries)
	}
	// The same single fault with a one-attempt budget and AllowPartial must
	// instead produce an attributed partial.
	exec.Testing.ClearFailPoint()
	co1, err := New(eng.Catalog(), Options{Shards: 4, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	fired.Store(0)
	exec.Testing.SetFailPoint(func(site string) {
		if site == "shard.exec" && fired.Add(1) == 1 {
			panic("injected shard fault")
		}
	})
	preq := req
	preq.AllowPartial = true
	res, err, handled := co1.Route(preq)
	if !handled || err != nil {
		t.Fatalf("partial: handled=%v err=%v", handled, err)
	}
	rep := res.Report
	if !rep.Partial || len(rep.ShardsFailed) != 1 {
		t.Fatalf("partial attribution: partial=%v failed=%v", rep.Partial, rep.ShardsFailed)
	}
	lost := rep.ShardsFailed[0].Shard
	ti := co1.info["lineitem"]
	covered := ti.total - ti.perShard[lost]
	rt := rep.Results[sets[0]]
	var totalCnt int64
	for r := 0; r < rt.NumRows(); r++ {
		totalCnt += rt.Col(1).Value(r).I
	}
	if totalCnt != int64(covered) {
		t.Fatalf("partial COUNT(*) sums to %d, want %d", totalCnt, covered)
	}
}

// TestShardGatherGoroutineHygiene drives many gathers (with hedging and
// injected faults) and requires the goroutine count to settle back to
// baseline: nothing may outlive a gather.
func TestShardGatherGoroutineHygiene(t *testing.T) {
	li := datagen.Lineitem(datagen.LineitemOpts{Rows: 2000, Seed: 41})
	eng := engine.New(nil)
	eng.Catalog().Register(li)
	co, err := New(eng.Catalog(), Options{Shards: 4, MaxAttempts: 2,
		RetryBackoff: 100 * time.Microsecond, HedgeAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	var fired atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		switch site {
		case "shard.exec":
			n := fired.Add(1)
			if n%7 == 0 {
				panic("injected")
			}
			if n%5 == 0 {
				time.Sleep(3 * time.Millisecond) // force hedges
			}
		case "shard.merge":
			if fired.Add(1)%11 == 0 {
				panic("injected")
			}
		}
	})
	req := engine.Request{Table: "lineitem", Sets: []colset.Set{colset.Of(14), colset.Of(8)}}
	for i := 0; i < 30; i++ {
		r := req
		r.AllowPartial = i%2 == 0
		co.Route(r) // errors are fine; leaks are not
	}
	exec.Testing.ClearFailPoint()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, n)
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
}
