// Package shard implements fault-isolated sharded scatter-gather execution:
// registered tables are hash-partitioned into N shards, each shard runs the
// full GB-MQO plan over its slice behind a private engine, and a hardened
// coordinator merges the per-shard partials back into results byte-identical
// to unsharded execution (see merge.go for the ordering technique).
//
// The Shard interface is the fault-domain boundary. Today every shard is
// in-process (a private engine over a partitioned copy of the catalog), but
// the coordinator only ever talks to shards through context-carrying Exec
// calls, so a process- or network-backed shard slots in without touching the
// gather loop. Robustness machinery — per-shard deadline budgets, bounded
// retries descending the engine's degradation ladder, per-shard circuit
// breakers, hedged duplicate requests, and opt-in partial results — lives in
// coordinator.go.
package shard

import (
	"context"
	"fmt"
	"strings"

	"gbmqo/internal/catalog"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// Hidden schema names the sharding layer reserves. Tables or aggregates that
// already use them cannot be sharded (Route declines; execution falls back to
// the unsharded engine).
const (
	// RowColumn is the hidden Int64 column appended to every shard partition,
	// holding each row's global row index in the unpartitioned base table.
	RowColumn = "__shard_row"
	// FirstAgg is the hidden MIN(RowColumn) aggregate added to every grouping
	// set, carrying each group's global first-appearance row through any plan
	// shape (MIN rolls up losslessly through intermediates).
	FirstAgg = "__shard_first"
)

// Shard is one fault domain of a sharded table set. Implementations must be
// safe for concurrent Exec calls and must honor ctx cancellation.
type Shard interface {
	// Exec runs one engine request against this shard's slice of the data.
	// The request's grouping sets and aggregates use base-table ordinals; the
	// shard's partition tables carry the same schema plus the hidden
	// RowColumn appended last.
	Exec(ctx context.Context, req engine.Request) (*engine.RunResult, error)
	// Rows reports how many base rows of the named table this shard holds.
	Rows(tableName string) int
}

// localShard is an in-process shard: a private engine whose catalog holds the
// hash-partitioned slice of every shardable table. The engine carries no
// cache, breakers, observer or router of its own — the coordinator owns all
// resilience, so a shard run is a plain single-attempt execution.
type localShard struct {
	eng  *engine.Engine
	rows map[string]int
}

// Exec implements Shard. The "shard.exec" failpoint fires once per shard
// execution (hedged duplicates included); an armed strike panics here and is
// contained by the coordinator's per-attempt recover.
func (s *localShard) Exec(ctx context.Context, req engine.Request) (*engine.RunResult, error) {
	exec.Testing.Fire("shard.exec")
	req.Context = ctx
	return s.eng.Run(req)
}

// Rows implements Shard.
func (s *localShard) Rows(tableName string) int { return s.rows[tableName] }

// tableInfo is the coordinator's per-table sharding record.
type tableInfo struct {
	// version and delta are the catalog epoch the partitions currently
	// reflect: version from the registration the partitions were built from,
	// delta advanced by NoteAppend as streaming appends are propagated into
	// the partitions. An epoch mismatch at gather time means the partitions
	// are stale and the query stays unsharded.
	version uint64
	delta   uint64
	// rowOrd is the hidden RowColumn's ordinal in the partition tables
	// (the original column count).
	rowOrd int
	// keyOrd is the hash-key column ordinal (-1 = partition by row index);
	// NoteAppend routes delta rows with the same hash the build used.
	keyOrd int
	// perShard holds each shard's row count; total their sum.
	perShard []int
	total    int
}

// buildShards partitions every shardable table in cat into n local shards and
// returns them with the per-table records. Tables with the reserved "__"
// prefix (ephemeral derived tables), tables already carrying a hidden column
// name, and tables wider than colset supports after the hidden column are
// skipped — queries against them simply stay unsharded.
func buildShards(cat *catalog.Catalog, n int, keys map[string]string) ([]Shard, map[string]tableInfo, error) {
	engines := make([]*engine.Engine, n)
	rows := make([]map[string]int, n)
	for i := range engines {
		engines[i] = engine.New(nil)
		rows[i] = make(map[string]int)
	}
	info := make(map[string]tableInfo)
	for _, name := range cat.TableNames() {
		if strings.HasPrefix(name, "__") {
			continue
		}
		t := cat.MustTable(name)
		if t.ColIndex(RowColumn) >= 0 || t.NumCols() >= 64 {
			continue
		}
		keyOrd := -1
		if col, ok := keys[name]; ok {
			if keyOrd = t.ColIndex(col); keyOrd < 0 {
				return nil, nil, fmt.Errorf("shard: table %q has no column %q to hash on", name, col)
			}
		}
		ep := cat.Epoch(name)
		ti := tableInfo{version: ep.Version, delta: ep.Delta, rowOrd: t.NumCols(), keyOrd: keyOrd,
			perShard: make([]int, n), total: t.NumRows()}
		for i, idx := range partitionIdx(t, n, keyOrd) {
			engines[i].Catalog().Register(buildPartition(t, idx))
			rows[i][name] = len(idx)
			ti.perShard[i] = len(idx)
		}
		info[name] = ti
	}
	for tbl := range keys {
		if _, ok := info[tbl]; !ok {
			return nil, nil, fmt.Errorf("shard: hash key given for unknown or unshardable table %q", tbl)
		}
	}
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = &localShard{eng: engines[i], rows: rows[i]}
	}
	return shards, info, nil
}

// partitionIdx assigns every row of t to one of n shards and returns the
// per-shard row-index lists, each ascending (so partitions preserve relative
// row order). With a key column the row's dictionary code is hashed — equal
// key values land on the same shard, the property a future co-partitioned
// join would need; without one the row index is hashed, which balances
// perfectly regardless of data skew.
func partitionIdx(t *table.Table, n, keyOrd int) [][]int32 {
	buckets := make([][]int32, n)
	nrows := t.NumRows()
	for i := range buckets {
		buckets[i] = make([]int32, 0, nrows/n+1)
	}
	if keyOrd >= 0 {
		codes := t.Col(keyOrd).Codes()
		for r, code := range codes {
			b := mix(uint64(code)) % uint64(n)
			buckets[b] = append(buckets[b], int32(r))
		}
		return buckets
	}
	for r := 0; r < nrows; r++ {
		b := mix(uint64(r)) % uint64(n)
		buckets[b] = append(buckets[b], int32(r))
	}
	return buckets
}

// mix is the splitmix64 finalizer — enough avalanche that consecutive row
// indexes or small dictionary codes spread uniformly across shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// buildPartition gathers t's rows at idx into a shard table, sharing every
// column dictionary with the base (so group-key codes stay comparable across
// shards and with unsharded output), and appends the hidden RowColumn holding
// each row's global index.
func buildPartition(t *table.Table, idx []int32) *table.Table {
	g := t.Gather(t.Name(), idx)
	cols := make([]*table.Column, 0, g.NumCols()+1)
	for i := 0; i < g.NumCols(); i++ {
		cols = append(cols, g.Col(i))
	}
	rc := table.NewColumn(table.ColumnDef{Name: RowColumn, Typ: table.TInt64})
	for _, r := range idx {
		rc.Append(table.Int(int64(r)))
	}
	p := table.FromColumns(t.Name(), append(cols, rc))
	// Materialize the scan image now: a shard serves concurrent executions
	// (overlapping gathers, a primary racing its hedge) and the image is
	// built lazily without synchronization — after this the table is
	// effectively immutable and safe to share.
	p.RowImage()
	return p
}
