package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gbmqo/internal/catalog"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/fault"
	"gbmqo/internal/obs"
	"gbmqo/internal/table"
)

// Options tunes a Coordinator. Zero values select the documented defaults.
type Options struct {
	// Shards is the number of hash shards (default 4).
	Shards int
	// Keys optionally names the hash column per table; tables absent from the
	// map are partitioned by row-index hash. Naming an unknown table or
	// column is an error at New time.
	Keys map[string]string
	// MaxAttempts is each shard's attempt budget per gather, including the
	// first try (default 2). Retries descend the engine's degradation
	// ladder, exactly like the request-scope retry loop.
	MaxAttempts int
	// RetryBackoff is the base sleep before a shard retry, doubling per
	// attempt with jitter (default 1ms). MaxBackoff caps it (default 100ms).
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// HedgeAfter, when positive, launches a hedged duplicate request against
	// any shard still running after this long; the first result wins and the
	// loser is cancelled and discarded. 0 disables hedging.
	HedgeAfter time.Duration
	// MergeReserve caps the slice of the caller's deadline held back from the
	// shard budget for the merge phase (default 100ms; at most 10% of the
	// remaining budget is reserved).
	MergeReserve time.Duration
	// Breaker configures the per-shard circuit breakers (defaults as in
	// fault.Config).
	Breaker fault.Config
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 100 * time.Millisecond
	}
	if o.MergeReserve <= 0 {
		o.MergeReserve = 100 * time.Millisecond
	}
	return o
}

// Error is the typed failure a gather returns when a shard fails and partial
// results are not allowed (or no shard survived). It names the shard so
// callers and logs can attribute the fault domain.
type Error struct {
	// Table is the base relation the gather ran over.
	Table string
	// Shard is the failing shard's index; Shards the total count.
	Shard  int
	Shards int
	// Err is the shard's final error (open breaker, exhausted retries,
	// deadline).
	Err error
}

// Error renders the attribution.
func (e *Error) Error() string {
	return fmt.Sprintf("shard: %s: shard %d/%d failed: %v", e.Table, e.Shard, e.Shards, e.Err)
}

// Unwrap exposes the cause for errors.Is/As (so classification still sees
// transient *exec.ExecError or fail-fast *fault.OpenError underneath).
func (e *Error) Unwrap() error { return e.Err }

// Coordinator owns the scatter-gather loop over a fixed set of shards built
// from one catalog snapshot. Safe for concurrent Execute calls; streaming
// appends are propagated into the partitions by NoteAppend under the write
// half of mu, so a gather always sees every shard at one consistent epoch.
type Coordinator struct {
	opts     Options
	cat      *catalog.Catalog
	shards   []Shard
	breakers []*fault.Breaker
	met      metrics
	reg      *obs.Registry // private registry backing met; exposed via Collect

	// mu guards info and the shard partition tables it describes: gathers
	// hold the read half end to end (scatter through merge), NoteAppend the
	// write half while it swaps extended partitions in.
	mu   sync.RWMutex
	info map[string]tableInfo
}

// New hash-partitions every shardable table in cat into opts.Shards
// in-process shards and returns the coordinator. The partition is a snapshot:
// tables registered or replaced afterwards are detected by catalog version at
// Route time and simply stay unsharded.
func New(cat *catalog.Catalog, opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	shards, info, err := buildShards(cat, opts.Shards, opts.Keys)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	c := &Coordinator{opts: opts, cat: cat, shards: shards, info: info, met: newMetrics(reg, opts.Shards), reg: reg}
	c.breakers = make([]*fault.Breaker, opts.Shards)
	for i := range c.breakers {
		c.breakers[i] = fault.New(fmt.Sprintf("shard-%d", i), opts.Breaker)
	}
	return c, nil
}

// Shards reports the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Name implements obs.Collector.
func (c *Coordinator) Name() string { return "shard" }

// Collect implements obs.Collector by forwarding the coordinator's private
// metric registry (gbmqo_shard_* plus the shard- and hedge-scoped retry
// series) to whoever owns the scrape endpoint.
func (c *Coordinator) Collect(ch chan<- obs.Metric) error { return c.reg.Collect(ch) }

// BreakerStates snapshots every per-shard circuit breaker, in shard order.
func (c *Coordinator) BreakerStates() []fault.Snapshot {
	out := make([]fault.Snapshot, len(c.breakers))
	for i, b := range c.breakers {
		out[i] = b.Snapshot()
	}
	return out
}

// Breaker exposes shard i's circuit breaker (tests force shards open/closed
// through it).
func (c *Coordinator) Breaker(i int) *fault.Breaker { return c.breakers[i] }

// Route is the engine.ShardRouter hook: it accepts requests the sharded path
// can serve byte-identically and declines everything else (handled=false), so
// unshardable shapes transparently fall back to the unsharded engine —
// unknown or re-registered tables, ephemeral "__" derived tables, empty or
// out-of-range grouping sets, and non-mergeable aggregates (AVG does not
// decompose over shards without rewriting; the public API does not expose it,
// so declining costs nothing).
func (c *Coordinator) Route(req engine.Request) (*engine.RunResult, error, bool) {
	c.mu.RLock()
	ti, ok := c.info[req.Table]
	c.mu.RUnlock()
	if !ok || len(req.Sets) == 0 {
		return nil, nil, false
	}
	for _, s := range req.Sets {
		if s.IsEmpty() || s.Max() >= ti.rowOrd {
			return nil, nil, false
		}
	}
	if !aggsMergeable(req.Aggs) {
		return nil, nil, false
	}
	for _, aggs := range req.PerSetAggs {
		if !aggsMergeable(aggs) {
			return nil, nil, false
		}
	}
	// The authoritative epoch check happens inside Execute, under the same
	// read lock as the gather itself — checking here would race NoteAppend.
	return c.Execute(req)
}

// aggsMergeable reports whether every aggregate merges across shard partials
// and none collides with the hidden names.
func aggsMergeable(aggs []exec.Agg) bool {
	for _, a := range aggs {
		switch a.Kind {
		case exec.AggCountStar, exec.AggCount, exec.AggSum, exec.AggMin, exec.AggMax:
		default:
			return false
		}
		if a.Name == FirstAgg || a.Name == RowColumn {
			return false
		}
	}
	return true
}

// outcome is one shard's final result within a gather.
type outcome struct {
	res      *engine.RunResult
	err      error
	retries  int
	hedged   bool
	hedgeWon bool
}

// Execute scatters req over every shard, gathers the partials, and merges
// them into a result byte-identical to unsharded execution. Per-shard
// failures are retried (bounded, descending the degradation ladder) behind
// per-shard breakers; stragglers may be hedged. When a shard still fails:
// with req.AllowPartial the surviving shards are merged and the gap
// attributed in the report, otherwise the gather fails fast with *Error.
// All shard goroutines are barriered before return — nothing outlives the
// gather, and a late hedge loser is never merged.
//
// The whole gather runs under the read half of c.mu, so every shard serves
// the same append epoch and a concurrent NoteAppend can never tear a
// cross-shard read. handled=false means the partitions do not match the
// table's current catalog epoch (re-registered, or an append the coordinator
// was never told about) and the caller must fall back to unsharded execution.
func (c *Coordinator) Execute(req engine.Request) (*engine.RunResult, error, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ti, ok := c.info[req.Table]
	if !ok {
		return nil, nil, false
	}
	if ep := c.cat.Epoch(req.Table); ep.Version != ti.version || ep.Delta != ti.delta {
		return nil, nil, false
	}
	res, err := c.executeLocked(req, ti)
	return res, err, true
}

// executeLocked is the gather body; the caller holds c.mu.RLock and has
// verified ti is current.
func (c *Coordinator) executeLocked(req engine.Request, ti tableInfo) (res *engine.RunResult, err error) {
	start := time.Now()
	ctx := req.Context
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		if pnc := recover(); pnc != nil {
			res, err = nil, &exec.ExecError{Step: "shard.gather", Err: fmt.Errorf("panic: %v", pnc)}
		}
	}()
	exec.Testing.Fire("shard.scatter")
	c.met.gathers.Inc()

	sub, own := c.shardRequest(req, ti)

	// Carve the shard deadline budget out of the caller's, reserving a slice
	// for the merge so a straggler shard cannot spend the whole budget.
	shardCtx := ctx
	if dl, ok := ctx.Deadline(); ok {
		reserve := time.Until(dl) / 10
		if reserve > c.opts.MergeReserve {
			reserve = c.opts.MergeReserve
		}
		if reserve > 0 {
			var cancel context.CancelFunc
			shardCtx, cancel = context.WithDeadline(ctx, dl.Add(-reserve))
			defer cancel()
		}
	}
	gctx, gcancel := context.WithCancel(shardCtx)
	defer gcancel()

	n := len(c.shards)
	outs := make([]outcome, n)
	var inner sync.WaitGroup // primary/hedge exec goroutines (panic unwind path)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = c.safeRunShard(gctx, i, sub, &inner)
			if outs[i].err != nil && !req.AllowPartial && exec.Classify(outs[i].err) != exec.ClassCaller {
				// Fail fast: a gather that cannot serve partials has no use
				// for the remaining shards' work.
				gcancel()
			}
		}(i)
	}
	wg.Wait()
	inner.Wait()

	var failed []engine.ShardFailure
	okIdx := make([]int, 0, n)
	shardRetries, hedges, hedgeWins := 0, 0, 0
	for i := range outs {
		o := &outs[i]
		shardRetries += o.retries
		if o.hedged {
			hedges++
		}
		if o.hedgeWon {
			hedgeWins++
		}
		if o.err != nil {
			failed = append(failed, engine.ShardFailure{Shard: i, Err: o.err})
		} else {
			okIdx = append(okIdx, i)
		}
	}
	if len(failed) > 0 {
		if ctx.Err() != nil {
			// The caller left (or its deadline passed); per-shard errors are
			// downstream noise of that.
			return nil, ctx.Err()
		}
		if !req.AllowPartial || len(okIdx) == 0 {
			f := pickFailure(failed)
			return nil, &Error{Table: req.Table, Shard: f.Shard, Shards: n, Err: f.Err}
		}
	}

	exec.Testing.Fire("shard.merge")
	merged, err := c.merge(req, own, outs, okIdx)
	if err != nil {
		return nil, err
	}

	rep := foldReports(req, outs, okIdx)
	rep.Results = merged
	rep.ShardsTotal = n
	rep.ShardRetries = shardRetries
	rep.HedgesFired = hedges
	rep.HedgesWon = hedgeWins
	rep.Wall = time.Since(start)
	covered := 0
	for _, i := range okIdx {
		covered += ti.perShard[i]
	}
	rep.ShardCoverage = 1
	if ti.total > 0 {
		rep.ShardCoverage = float64(covered) / float64(ti.total)
	}
	if len(failed) > 0 {
		rep.Partial = true
		rep.ShardsFailed = failed
		c.met.partials.Inc()
	}

	first := outs[okIdx[0]].res
	return &engine.RunResult{
		Plan:         first.Plan,
		Report:       rep,
		Search:       first.Search,
		ModelUsd:     first.ModelUsd,
		PlanCostSeq:  first.PlanCostSeq,
		PlanCostPar:  first.PlanCostPar,
		Degradations: rep.Degradations,
	}, nil
}

// pickFailure chooses the failure to surface: the lowest-index shard whose
// error is not caller-class (fail-fast cancellation of the other shards
// manufactures caller-class errors that would otherwise mask the real one).
func pickFailure(failed []engine.ShardFailure) engine.ShardFailure {
	for _, f := range failed {
		if exec.Classify(f.Err) != exec.ClassCaller {
			return f
		}
	}
	return failed[0]
}

// safeRunShard is one shard's bounded retry loop behind its breaker, with a
// recover barrier so an injected coordinator-side panic (e.g. the shard.hedge
// failpoint) becomes a typed transient error instead of killing the gather.
func (c *Coordinator) safeRunShard(ctx context.Context, i int, sub engine.Request, inner *sync.WaitGroup) (o outcome) {
	defer func() {
		if pnc := recover(); pnc != nil {
			o.res, o.err = nil, &exec.ExecError{Step: fmt.Sprintf("shard %d gather", i), Err: fmt.Errorf("panic: %v", pnc)}
		}
	}()
	br := c.breakers[i]
	for attempt := 1; ; attempt++ {
		if err := br.Allow(); err != nil {
			o.err = err
			return
		}
		cur, _ := engine.DegradeForAttempt(sub, attempt)
		t0 := time.Now()
		res, hedged, hedgeWon, err := c.execAttempt(ctx, i, cur, inner)
		c.met.latency.Observe(time.Since(t0).Seconds())
		c.met.execs[i].Inc()
		if hedged {
			o.hedged = true
		}
		if hedgeWon {
			o.hedgeWon = true
			c.met.hedgeWins.Inc()
		}
		if err == nil {
			br.Record(false)
			o.res, o.err = res, nil
			return
		}
		c.met.errors[i].Inc()
		class := exec.Classify(err)
		if class != exec.ClassCaller {
			br.RecordErr(err)
		}
		if class != exec.ClassTransient || attempt >= c.opts.MaxAttempts {
			o.err = err
			return
		}
		o.retries++
		c.met.retries.Inc()
		c.met.retriesScoped.Inc()
		select {
		case <-time.After(c.backoff(attempt)):
		case <-ctx.Done():
			o.err = ctx.Err()
			return
		}
	}
}

// execAttempt runs one attempt against shard i, optionally hedging it with a
// duplicate request after HedgeAfter. The first success wins; the loser is
// cancelled and drained before returning, so exactly one result crosses into
// the merge and no goroutine outlives the attempt.
func (c *Coordinator) execAttempt(ctx context.Context, i int, req engine.Request, inner *sync.WaitGroup) (res *engine.RunResult, hedged, hedgeWon bool, err error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type reply struct {
		res   *engine.RunResult
		err   error
		hedge bool
	}
	ch := make(chan reply, 2) // primary + at most one hedge; sends never block
	launch := func(isHedge bool) {
		inner.Add(1)
		go func() {
			defer inner.Done()
			defer func() {
				if pnc := recover(); pnc != nil {
					ch <- reply{err: &exec.ExecError{Step: fmt.Sprintf("shard %d exec", i), Err: fmt.Errorf("panic: %v", pnc)}, hedge: isHedge}
				}
			}()
			r, e := c.shards[i].Exec(actx, req)
			ch <- reply{res: r, err: e, hedge: isHedge}
		}()
	}
	launch(false)
	inflight := 1
	var timerC <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		t := time.NewTimer(c.opts.HedgeAfter)
		defer t.Stop()
		timerC = t.C
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				cancel()
				for inflight > 0 { // drain the loser; its result is discarded
					<-ch
					inflight--
				}
				return r.res, hedged, r.hedge, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				return nil, hedged, false, firstErr
			}
		case <-timerC:
			timerC = nil
			exec.Testing.Fire("shard.hedge")
			hedged = true
			c.met.hedgesFired.Inc()
			c.met.retriesHedge.Inc()
			launch(true)
			inflight++
		}
	}
}

// NoteAppend propagates one streaming append into the shard partitions: the
// delta rows of newT (the snapshot the engine just registered at epoch ep)
// are routed to shards with the same hash the original build used and each
// partition is extended in place — codes copied, dictionaries shared with
// newT so group keys stay comparable across shards, the hidden RowColumn
// carrying each new row's global index so merge ordering stays byte-identical
// to unsharded execution.
//
// The swap runs under the write half of c.mu, so no gather ever sees a torn
// mix of old and new partitions. Any failure — epoch gap (an append the
// coordinator missed), a non-local shard implementation, a panic while
// extending — degrades transparently: the table's sharding record is dropped
// and queries fall back to the unsharded engine, which is always correct.
func (c *Coordinator) NoteAppend(name string, newT *table.Table, ep catalog.Epoch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ti, ok := c.info[name]
	if !ok {
		return
	}
	unshard := func() { delete(c.info, name) }
	defer func() {
		if recover() != nil {
			unshard()
		}
	}()
	if ep.Version == ti.version && ep.Delta <= ti.delta {
		return // duplicate or out-of-order note; already reflected
	}
	// Catch-up from ti.total covers multi-append gaps too: every row past the
	// partitions' total is new to them, and dictionary codes stay valid across
	// appends, so the extension below works for one delta or several at once.
	if ep.Version != ti.version || newT.NumRows() < ti.total {
		unshard()
		return
	}
	n := len(c.shards)
	locals := make([]*localShard, n)
	olds := make([]*table.Table, n)
	for i := range c.shards {
		ls, ok := c.shards[i].(*localShard)
		if !ok {
			unshard()
			return
		}
		old, ok := ls.eng.Catalog().Table(name)
		if !ok || old.NumRows() != ti.perShard[i] {
			unshard()
			return
		}
		locals[i], olds[i] = ls, old
	}

	// Route each delta row with the build's hash: by key-column code when the
	// table is key-partitioned, by global row index otherwise.
	routed := make([][]int, n)
	var keyCodes []uint32
	if ti.keyOrd >= 0 {
		keyCodes = newT.Col(ti.keyOrd).Codes()
	}
	for r := ti.total; r < newT.NumRows(); r++ {
		b := mix(uint64(r)) % uint64(n)
		if keyCodes != nil {
			b = mix(uint64(keyCodes[r])) % uint64(n)
		}
		routed[b] = append(routed[b], r)
	}

	for i := range locals {
		idx := routed[i]
		old := olds[i]
		cols := make([]*table.Column, 0, newT.NumCols()+1)
		// Rebuild each data column from newT's columns so the partition picks
		// up the extended dictionaries (fresh rank tables covering the delta
		// codes); the base segment is a plain code copy, never re-interned.
		for j := 0; j < newT.NumCols(); j++ {
			nc := newT.Col(j).EmptyLike(newT.Col(j).Name())
			nc.AppendCodes(old.Col(j).Codes())
			for _, r := range idx {
				nc.AppendCode(newT.Col(j).Code(r))
			}
			cols = append(cols, nc)
		}
		// The hidden RowColumn keeps its shard-private dictionary; new global
		// row indexes are interned under the write lock, which excludes every
		// reader of the old partition.
		nrc := old.Col(ti.rowOrd).EmptyLikeExtended(RowColumn)
		nrc.AppendCodes(old.Col(ti.rowOrd).Codes())
		for _, r := range idx {
			nrc.Append(table.Int(int64(r)))
		}
		cols = append(cols, nrc)
		p := table.FromColumns(name, cols)
		p.RowImage() // immutable + safe for concurrent gathers, as at build
		locals[i].eng.Catalog().Register(p)
		locals[i].rows[name] = p.NumRows()
		ti.perShard[i] += len(idx)
	}
	ti.total = newT.NumRows()
	ti.delta = ep.Delta
	c.info[name] = ti
	c.met.appends.Inc()
}

// backoff computes the jittered exponential sleep after failed attempt n.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.opts.RetryBackoff
	for i := 1; i < attempt && d < c.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// metrics are the coordinator's gbmqo_shard_* series plus its scoped slices
// of gbmqo_exec_retries_total. Counter registration is idempotent per series
// name, so sharing a registry with the DB merges cleanly.
type metrics struct {
	gathers, partials, retries  *obs.Counter
	hedgesFired, hedgeWins      *obs.Counter
	retriesScoped, retriesHedge *obs.Counter
	appends                     *obs.Counter
	latency                     *obs.Histogram
	execs, errors               []*obs.Counter
}

func newMetrics(r *obs.Registry, n int) metrics {
	scopedHelp := "retried attempts by scope: request = engine retry loop, shard = per-shard gather retries, hedge = hedged duplicate shard requests"
	m := metrics{
		gathers:       r.Counter("gbmqo_shard_gathers_total", "sharded scatter-gather executions"),
		partials:      r.Counter("gbmqo_shard_partials_total", "partial results served from surviving shards (AllowPartial)"),
		retries:       r.Counter("gbmqo_shard_retries_total", "shard-scope retry attempts across all shards"),
		hedgesFired:   r.Counter("gbmqo_shard_hedges_fired_total", "hedged duplicate shard requests launched against stragglers"),
		hedgeWins:     r.Counter("gbmqo_shard_hedges_won_total", "hedged duplicates that beat the primary request"),
		retriesScoped: r.Counter(`gbmqo_exec_retries_total{scope="shard"}`, scopedHelp),
		retriesHedge:  r.Counter(`gbmqo_exec_retries_total{scope="hedge"}`, scopedHelp),
		appends:       r.Counter("gbmqo_shard_appends_total", "streaming appends propagated into shard partitions"),
		latency:       r.Histogram("gbmqo_shard_latency_seconds", "shard execution attempt latency within a gather", obs.DurationBuckets),
	}
	for i := 0; i < n; i++ {
		m.execs = append(m.execs, r.Counter(fmt.Sprintf("gbmqo_shard_exec_total{shard=\"%d\"}", i), "shard execution attempts by shard"))
		m.errors = append(m.errors, r.Counter(fmt.Sprintf("gbmqo_shard_errors_total{shard=\"%d\"}", i), "failed shard execution attempts by shard"))
	}
	return m
}
