package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gbmqo"
	"gbmqo/internal/exec"
)

func newTestServer(t *testing.T) (*gbmqo.DB, *httptest.Server) {
	t.Helper()
	db := gbmqo.Open(nil)
	tbl, err := gbmqo.GenerateDataset("sales", 5000, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(tbl)
	db.StartBatching(gbmqo.BatchOptions{MaxWait: 2 * time.Millisecond, Exec: gbmqo.QueryOptions{SharedScan: true}})
	ts := httptest.NewServer(New(db).Handler())
	t.Cleanup(func() {
		ts.Close()
		db.StopBatching()
	})
	return db, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func salesCol(t *testing.T, db *gbmqo.DB) string {
	t.Helper()
	tbl, ok := db.Table("sales")
	if !ok {
		t.Fatal("sales not registered")
	}
	return tbl.Col(0).Name()
}

func TestQueryEndpoint(t *testing.T) {
	db, ts := newTestServer(t)
	col := salesCol(t, db)
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"table": "sales",
		"queries": []map[string]any{
			{"cols": []string{col}},
			{"cols": []string{col}, "aggs": []map[string]any{{"fn": "count", "as": "n"}}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	results := out["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	tbl, _ := db.Table("sales")
	want := tbl.Col(0).DistinctCount()
	for i, raw := range results {
		r := raw.(map[string]any)
		if e, ok := r["error"]; ok && e != nil {
			t.Fatalf("query %d error: %v", i, e)
		}
		res := r["result"].(map[string]any)
		if rows := len(res["rows"].([]any)); rows != want {
			t.Fatalf("query %d rows = %d, want %d", i, rows, want)
		}
		if r["batch"] == nil {
			t.Fatalf("query %d missing batch info", i)
		}
	}
	// The alias must be honored.
	cols := results[1].(map[string]any)["result"].(map[string]any)["columns"].([]any)
	found := false
	for _, c := range cols {
		if c == "n" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alias n missing from %v", cols)
	}
}

func TestQueryEndpointPerQueryErrors(t *testing.T) {
	db, ts := newTestServer(t)
	col := salesCol(t, db)
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"table": "sales",
		"queries": []map[string]any{
			{"cols": []string{"no_such_col"}},
			{"cols": []string{col}, "aggs": []map[string]any{{"fn": "median", "col": col}}},
			{"cols": []string{col}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	results := out["results"].([]any)
	if e := results[0].(map[string]any)["error"]; e == nil || e == "" {
		t.Fatal("unknown column must error")
	}
	if e := results[1].(map[string]any)["error"]; e == nil || !strings.Contains(e.(string), "median") {
		t.Fatalf("unknown aggregate error = %v", e)
	}
	if e, ok := results[2].(map[string]any)["error"]; ok && e != nil {
		t.Fatalf("valid query alongside bad ones failed: %v", e)
	}
}

func TestSQLEndpointAndSplit(t *testing.T) {
	db, ts := newTestServer(t)
	tbl, _ := db.Table("sales")
	c0, c1 := tbl.Col(0).Name(), tbl.Col(1).Name()
	stmt := "SELECT COUNT(*) FROM sales GROUP BY GROUPING SETS ((" + c0 + "), (" + c1 + "))"
	resp, out := postJSON(t, ts.URL+"/sql", map[string]any{"sql": stmt})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	res := out["result"].(map[string]any)
	cols := res["columns"].([]any)
	if cols[len(cols)-1] != "grp_tag" {
		t.Fatalf("union shape missing grp_tag: %v", cols)
	}
	// The same statement split into per-set parts.
	resp, out = postJSON(t, ts.URL+"/sql", map[string]any{"sql": stmt, "split": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("split status = %d", resp.StatusCode)
	}
	parts := out["parts"].([]any)
	if len(parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(parts))
	}
	tags := map[string]bool{}
	for _, p := range parts {
		pm := p.(map[string]any)
		tags[pm["tag"].(string)] = true
		pcols := pm["result"].(map[string]any)["columns"].([]any)
		for _, c := range pcols {
			if c == "grp_tag" {
				t.Fatal("split part still carries grp_tag")
			}
		}
	}
	if !tags["("+c0+")"] || !tags["("+c1+")"] {
		t.Fatalf("tags = %v", tags)
	}
	// Invalid SQL surfaces as 422.
	resp, _ = postJSON(t, ts.URL+"/sql", map[string]any{"sql": "SELEC nope"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad sql status = %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	db, ts := newTestServer(t)
	col := salesCol(t, db)
	postJSON(t, ts.URL+"/query", map[string]any{
		"table":   "sales",
		"queries": []map[string]any{{"cols": []string{col}}},
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"# TYPE gbmqo_sched_submissions_total counter",
		"# TYPE gbmqo_sched_batch_queries histogram",
		"gbmqo_exec_runs_total",
		"gbmqo_sched_window_close_total{reason=",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestHealthzAndTables(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h["ok"] != true {
		t.Fatalf("healthz = %v", h)
	}
	resp, err = http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var tl map[string]any
	json.NewDecoder(resp.Body).Decode(&tl)
	resp.Body.Close()
	tables := tl["tables"].([]any)
	if len(tables) != 1 || tables[0].(map[string]any)["name"] != "sales" {
		t.Fatalf("tables = %v", tl)
	}
}

func TestBadRequestBodies(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", resp.StatusCode)
	}
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{"table": "sales"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing queries status = %d: %v", resp.StatusCode, out)
	}
}

// TestServeLoad hammers the server with concurrent clients — the CI
// race-detector witness that the whole stack (HTTP handler, scheduler
// windows, shared engine runs, metrics scrapes) is safe under load. Every
// response must be well-formed and every query answered or attributed an
// error; at the end the scheduler must have actually batched.
func TestServeLoad(t *testing.T) {
	db, ts := newTestServer(t)
	tbl, _ := db.Table("sales")
	var cols []string
	for i := 0; i < tbl.NumCols() && i < 3; i++ {
		if tbl.Col(i).Type().String() != "FLOAT" {
			cols = append(cols, tbl.Col(i).Name())
		}
	}
	if len(cols) < 2 {
		t.Skip("sales schema too narrow for the load mix")
	}
	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := map[string]any{"cols": []string{cols[(w+i)%len(cols)]}}
				if i%3 == 0 {
					q["cols"] = []string{cols[i%len(cols)], cols[(i+1)%len(cols)]}
				}
				body, _ := json.Marshal(map[string]any{
					"table":   "sales",
					"queries": []map[string]any{q},
				})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var out map[string]any
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status %d, decode err %v", w, resp.StatusCode, err)
					return
				}
				r := out["results"].([]any)[0].(map[string]any)
				if e, ok := r["error"]; ok && e != nil {
					t.Errorf("worker %d: query error %v", w, e)
					return
				}
				if i%10 == 0 { // interleave metrics scrapes with traffic
					mr, err := http.Get(ts.URL + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					mr.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	st, ok := db.BatchStats()
	if !ok {
		t.Fatal("batching never started")
	}
	if st.Submitted != workers*perWorker {
		t.Fatalf("submitted = %d, want %d", st.Submitted, workers*perWorker)
	}
	if st.Batches == 0 || st.Batches >= st.Submitted {
		t.Fatalf("batches = %d of %d submissions — scheduler never coalesced", st.Batches, st.Submitted)
	}
}

// TestServerBackpressure429 drives the scheduler into overload and asserts
// the transport mapping: a fully rejected body answers 429 with a
// Retry-After hint, and a client that honors the hint succeeds once the
// backlog drains.
func TestServerBackpressure429(t *testing.T) {
	db := gbmqo.Open(nil)
	tbl, err := gbmqo.GenerateDataset("sales", 2000, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(tbl)
	// Two submissions fill the queue; windows stay open long enough for the
	// third request to observe the overload deterministically.
	db.StartBatching(gbmqo.BatchOptions{
		MaxQueue: 2,
		MaxWait:  500 * time.Millisecond,
		Exec:     gbmqo.QueryOptions{SharedScan: true},
	})
	ts := httptest.NewServer(New(db).Handler())
	t.Cleanup(func() {
		ts.Close()
		db.StopBatching()
	})
	col0, col1 := tbl.Col(0).Name(), tbl.Col(1).Name()

	var wg sync.WaitGroup
	for _, col := range []string{col0, col1} {
		wg.Add(1)
		go func(col string) {
			defer wg.Done()
			postJSON(t, ts.URL+"/query", map[string]any{
				"table": "sales", "queries": []map[string]any{{"cols": []string{col}}},
			})
		}(col)
	}
	// Wait until both submissions are parked in an open window.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st, ok := db.BatchStats(); ok && st.QueueLen >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"table": "sales", "queries": []map[string]any{{"cols": []string{col0, col1}}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %v)", resp.StatusCode, out)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
	}
	if out["error"] == nil {
		t.Fatal("429 body missing error")
	}

	// A client honoring the hint retries after the advertised delay and
	// eventually lands: the parked window closes at MaxWait and drains.
	var ok bool
	for attempt := 0; attempt < 5; attempt++ {
		time.Sleep(time.Duration(secs) * time.Second)
		resp, out = postJSON(t, ts.URL+"/query", map[string]any{
			"table": "sales", "queries": []map[string]any{{"cols": []string{col0, col1}}},
		})
		if resp.StatusCode == http.StatusOK {
			ok = true
			break
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("retry status = %d, want 200 or 429", resp.StatusCode)
		}
		if secs, err = strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
			t.Fatalf("retry Retry-After = %q", resp.Header.Get("Retry-After"))
		}
	}
	if !ok {
		t.Fatal("client honoring Retry-After never succeeded")
	}
	r := out["results"].([]any)[0].(map[string]any)
	if e, present := r["error"]; present && e != nil {
		t.Fatalf("retried query error: %v", e)
	}
	wg.Wait()
	st, _ := db.BatchStats()
	if st.Rejected == 0 {
		t.Fatalf("stats = %+v, want Rejected > 0", st)
	}
}

// TestServerHealthzDraining: /healthz flips to 503 status "draining" once
// shutdown begins, via the explicit server flag or the DB's own drain state.
func TestServerHealthzDraining(t *testing.T) {
	db := gbmqo.Open(nil)
	tbl, err := gbmqo.GenerateDataset("sales", 500, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Register(tbl)
	db.StartBatching(gbmqo.BatchOptions{MaxWait: 2 * time.Millisecond})
	srv := New(db)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		db.StopBatching()
	})

	get := func() (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	resp, h := get()
	if resp.StatusCode != http.StatusOK || h["ok"] != true || h["status"] != "ok" {
		t.Fatalf("healthy: status=%d body=%v", resp.StatusCode, h)
	}

	srv.SetDraining()
	resp, h = get()
	if resp.StatusCode != http.StatusServiceUnavailable || h["ok"] != false || h["status"] != "draining" {
		t.Fatalf("draining: status=%d body=%v", resp.StatusCode, h)
	}

	// The DB's drain state is observed too, without SetDraining.
	db2 := gbmqo.Open(nil)
	db2.Register(tbl)
	db2.StartBatching(gbmqo.BatchOptions{MaxWait: 2 * time.Millisecond})
	srv2 := New(db2)
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := db2.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	resp2, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: status=%d, want 503", resp2.StatusCode)
	}
}

// TestServerHandlerPanicContained: a panic inside the handler chain answers
// that one request with a 500 and leaves the server serving.
func TestServerHandlerPanicContained(t *testing.T) {
	db, ts := newTestServer(t)
	var fired atomic.Bool
	exec.Testing.SetFailPoint(func(site string) {
		if site == "server.handler" && fired.CompareAndSwap(false, true) {
			panic("injected handler fault")
		}
	})
	defer exec.Testing.SetFailPoint(nil)

	resp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "injected handler fault") {
		t.Fatalf("error = %v, want the panic value", out["error"])
	}

	// The next request is served normally.
	col := salesCol(t, db)
	resp2, out2 := postJSON(t, ts.URL+"/query", map[string]any{
		"table": "sales", "queries": []map[string]any{{"cols": []string{col}}},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status = %d (body %v)", resp2.StatusCode, out2)
	}
}

// TestServerHealthzBreakers: armed circuit breakers appear in /healthz.
func TestServerHealthzBreakers(t *testing.T) {
	db, ts := newTestServer(t)
	db.EnableBreakers(gbmqo.BreakerConfig{})
	col := salesCol(t, db)
	if resp, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"table": "sales", "queries": []map[string]any{{"cols": []string{col}}},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	brs, ok := h["breakers"].([]any)
	if !ok || len(brs) == 0 {
		t.Fatalf("healthz breakers = %v, want sales breaker", h["breakers"])
	}
	b := brs[0].(map[string]any)
	if b["table"] != "sales" || b["state"] != "closed" {
		t.Fatalf("breaker = %v, want sales closed", b)
	}
}
