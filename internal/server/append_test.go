package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"gbmqo"
	"gbmqo/internal/table"
)

// jsonRows converts rows [lo,hi) of tbl to the JSON cell encoding the
// /append endpoint accepts (numbers as float64, strings, nil for NULL).
func jsonRows(t *testing.T, tbl *gbmqo.Table, lo, hi int) [][]any {
	t.Helper()
	rows := make([][]any, 0, hi-lo)
	for r := lo; r < hi; r++ {
		row := make([]any, tbl.NumCols())
		for c := 0; c < tbl.NumCols(); c++ {
			v := tbl.Col(c).Value(r)
			switch {
			case v.Null:
				row[c] = nil
			case v.Typ == table.TString:
				row[c] = v.S
			case v.Typ == table.TFloat64:
				row[c] = v.F
			default: // BIGINT, DATE
				row[c] = float64(v.I)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func TestAppendEndpoint(t *testing.T) {
	db, ts := newTestServer(t)
	tbl, _ := db.Table("sales")
	before := tbl.NumRows()

	resp, out := postJSON(t, ts.URL+"/append", map[string]any{
		"table": "sales",
		"rows":  jsonRows(t, tbl, 0, 25),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%v)", resp.StatusCode, out)
	}
	if out["rows"].(float64) != 25 || out["total_rows"].(float64) != float64(before+25) {
		t.Fatalf("response = %v", out)
	}
	if out["delta"].(float64) != 1 {
		t.Fatalf("epoch delta = %v", out["delta"])
	}
	cur, _ := db.Table("sales")
	if cur.NumRows() != before+25 {
		t.Fatalf("table has %d rows, want %d", cur.NumRows(), before+25)
	}

	// The append surfaces in /healthz refresh-lag reporting.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hout map[string]any
	json.NewDecoder(hresp.Body).Decode(&hout)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hresp.StatusCode)
	}
	appends, ok := hout["appends"].(map[string]any)
	if !ok {
		t.Fatalf("healthz lacks appends section: %v", hout)
	}
	sales, ok := appends["sales"].(map[string]any)
	if !ok || sales["delta"].(float64) != 1 || sales["rows"].(float64) != float64(before+25) {
		t.Fatalf("healthz appends = %v", appends)
	}
}

func TestAppendEndpointErrors(t *testing.T) {
	db, ts := newTestServer(t)
	tbl, _ := db.Table("sales")
	good := jsonRows(t, tbl, 0, 1)

	cases := []struct {
		name string
		body map[string]any
		code int
	}{
		{"unknown table", map[string]any{"table": "nope", "rows": good}, http.StatusNotFound},
		{"missing rows", map[string]any{"table": "sales"}, http.StatusBadRequest},
		{"bad arity", map[string]any{"table": "sales", "rows": [][]any{good[0][:2]}}, http.StatusBadRequest},
	}
	// Type mismatch: a string into column 0 (BIGINT in the sales schema).
	bad := append([]any(nil), good[0]...)
	bad[0] = "not-a-number"
	cases = append(cases, struct {
		name string
		body map[string]any
		code int
	}{"string in BIGINT", map[string]any{"table": "sales", "rows": [][]any{bad}}, http.StatusBadRequest})
	// Non-integral float into an integral column.
	frac := append([]any(nil), good[0]...)
	frac[0] = 1.5
	cases = append(cases, struct {
		name string
		body map[string]any
		code int
	}{"non-integral in BIGINT", map[string]any{"table": "sales", "rows": [][]any{frac}}, http.StatusBadRequest})

	before := tbl.NumRows()
	for _, tc := range cases {
		resp, out := postJSON(t, ts.URL+"/append", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status = %d, want %d (%v)", tc.name, resp.StatusCode, tc.code, out)
		}
	}
	if cur, _ := db.Table("sales"); cur.NumRows() != before {
		t.Fatalf("failed appends changed the table: %d rows, want %d", cur.NumRows(), before)
	}
}
