// Package server is the HTTP/JSON front-end that turns the GB-MQO library
// into a concurrent query server: every request body is one or more Group By
// queries, each handed to the DB's micro-batching scheduler, so concurrent
// HTTP clients hitting the same table share one multi-query plan without
// knowing about each other. Observability rides along: /metrics exposes the
// scheduler, cache and governance counters in Prometheus text format, and
// /debug/vars mirrors them through expvar.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gbmqo"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// Server serves Group By queries over HTTP on top of a DB whose tables are
// already registered. Schema changes (Register, CreateIndex) must happen
// before the server starts taking traffic.
type Server struct {
	db *gbmqo.DB
	// MaxBody bounds request bodies (default 1 MiB).
	MaxBody int64
	// Timeout bounds one request's Group By work when the client sent no
	// timeout_ms (default 30s).
	Timeout time.Duration

	// draining flips when graceful shutdown begins: /healthz turns 503 so
	// load balancers stop routing while in-flight work finishes.
	draining atomic.Bool
}

// New wraps db in a Server with defaults.
func New(db *gbmqo.DB) *Server {
	return &Server{db: db, MaxBody: 1 << 20, Timeout: 30 * time.Second}
}

// SetDraining marks the server as draining for shutdown: /healthz reports
// status "draining" with 503 so load balancers eject this instance while
// in-flight requests complete.
func (s *Server) SetDraining() { s.draining.Store(true) }

// Draining reports whether graceful shutdown has begun (set explicitly or
// observed from the DB's scheduler).
func (s *Server) Draining() bool { return s.draining.Load() || s.db.Draining() }

// Handler routes the server's endpoints. Every handler runs under a recovery
// middleware: a panic is contained to its request and answered with a 500
// instead of killing the process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /sql", s.handleSQL)
	mux.HandleFunc("POST /append", s.handleAppend)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /tables", s.handleTables)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return s.contain(mux)
}

// contain is the per-request panic boundary. The failpoint lets the chaos
// harness inject handler-level faults and assert the 500 path.
func (s *Server) contain(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if pnc := recover(); pnc != nil {
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", pnc))
			}
		}()
		exec.Testing.Fire("server.handler")
		next.ServeHTTP(w, r)
	})
}

// retryAfterHeader sets Retry-After from a duration hint: whole seconds,
// rounded up, at least 1 (the header has no sub-second form).
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// rejectStatus maps a scheduler rejection to its HTTP form: overload
// (ErrQueueFull / OverloadError) → 429 with a Retry-After hint, shutdown
// (ErrDraining / ErrBatcherClosed) → 503. ok is false for every other error.
func rejectStatus(err error) (code int, retryAfter time.Duration, ok bool) {
	var ov *gbmqo.OverloadError
	switch {
	case errors.As(err, &ov):
		return http.StatusTooManyRequests, ov.RetryAfter, true
	case errors.Is(err, gbmqo.ErrQueueFull):
		return http.StatusTooManyRequests, 0, true
	case errors.Is(err, gbmqo.ErrDraining), errors.Is(err, gbmqo.ErrBatcherClosed):
		return http.StatusServiceUnavailable, 0, true
	}
	return 0, 0, false
}

// aggJSON is one aggregate in a query request.
type aggJSON struct {
	// Fn is count, sum, min or max; count with an empty Col is COUNT(*).
	Fn string `json:"fn"`
	// Col is the source column name.
	Col string `json:"col,omitempty"`
	// As overrides the output column name.
	As string `json:"as,omitempty"`
}

// queryJSON is one Group By request.
type queryJSON struct {
	// Cols are the grouping column names (non-empty).
	Cols []string `json:"cols"`
	// Aggs defaults to COUNT(*).
	Aggs []aggJSON `json:"aggs,omitempty"`
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Table     string      `json:"table"`
	Queries   []queryJSON `json:"queries"`
	TimeoutMS int         `json:"timeout_ms,omitempty"`
}

// batchJSON surfaces how the scheduler served one query.
type batchJSON struct {
	BatchQueries  int     `json:"batch_queries"`
	BatchRequests int     `json:"batch_requests"`
	Deduped       bool    `json:"deduped"`
	QueueWaitMS   float64 `json:"queue_wait_ms"`
	Origin        string  `json:"origin"`
	Partial       bool    `json:"partial,omitempty"`
	ShardsFailed  int     `json:"shards_failed,omitempty"`
}

// tableJSON is a result set on the wire.
type tableJSON struct {
	Columns []string `json:"columns"`
	Types   []string `json:"types"`
	Rows    [][]any  `json:"rows"`
}

// queryResponse is one query's outcome inside a /query response.
type queryResponse struct {
	Result *tableJSON `json:"result,omitempty"`
	Batch  *batchJSON `json:"batch,omitempty"`
	Error  string     `json:"error,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Table == "" || len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "table and queries are required")
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	// Submit every query concurrently: that is the whole point — queries in
	// one body (and across bodies) ride the same micro-batch window.
	out := make([]queryResponse, len(req.Queries))
	errs := make([]error, len(req.Queries))
	var wg sync.WaitGroup
	for i, q := range req.Queries {
		gq, err := s.bindQuery(req.Table, q)
		if err != nil {
			out[i].Error = err.Error()
			errs[i] = err
			continue
		}
		wg.Add(1)
		go func(i int, gq gbmqo.GroupQuery) {
			defer wg.Done()
			res, info, err := s.db.Submit(ctx, req.Table, gq)
			if err != nil {
				out[i].Error = err.Error()
				errs[i] = err
				return
			}
			out[i].Result = encodeTable(res)
			out[i].Batch = &batchJSON{
				BatchQueries:  info.BatchQueries,
				BatchRequests: info.BatchRequests,
				Deduped:       info.Deduped,
				QueueWaitMS:   float64(info.QueueWait) / float64(time.Millisecond),
				Origin:        info.Origin.String(),
				Partial:       info.Partial,
				ShardsFailed:  info.ShardsFailed,
			}
		}(i, gq)
	}
	wg.Wait()
	// When every query in the body was turned away by backpressure or
	// shutdown, answer with the transport-level status (429 + Retry-After, or
	// 503) so clients and load balancers can react without parsing bodies.
	// Mixed outcomes keep the 200-with-inline-errors shape: partial results
	// are still results.
	if code, retryAfter, all := uniformReject(errs); all {
		if retryAfter > 0 {
			retryAfterHeader(w, retryAfter)
		}
		httpError(w, code, out[0].Error)
		return
	}
	writeJSON(w, map[string]any{"results": out})
}

// uniformReject reports whether every query failed with a scheduler
// rejection mapping to the same HTTP status; retryAfter is the largest hint.
func uniformReject(errs []error) (code int, retryAfter time.Duration, all bool) {
	if len(errs) == 0 {
		return 0, 0, false
	}
	for _, err := range errs {
		if err == nil {
			return 0, 0, false
		}
		c, ra, ok := rejectStatus(err)
		if !ok || (code != 0 && c != code) {
			return 0, 0, false
		}
		code = c
		if ra > retryAfter {
			retryAfter = ra
		}
	}
	return code, retryAfter, true
}

// sqlRequest is the POST /sql body.
type sqlRequest struct {
	SQL string `json:"sql"`
	// Split returns the GROUPING SETS union split back into one table per
	// grouping set (keyed by its Grp-Tag) instead of the union shape.
	Split     bool `json:"split,omitempty"`
	TimeoutMS int  `json:"timeout_ms,omitempty"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	var req sqlRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.SQL == "" {
		httpError(w, http.StatusBadRequest, "sql is required")
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	res, err := s.db.SubmitSQL(ctx, req.SQL)
	if err != nil {
		if code, retryAfter, ok := rejectStatus(err); ok {
			if retryAfter > 0 {
				retryAfterHeader(w, retryAfter)
			}
			httpError(w, code, err.Error())
			return
		}
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if !req.Split {
		writeJSON(w, map[string]any{"result": encodeTable(res)})
		return
	}
	parts, tags, err := exec.SplitTagged(res)
	if err != nil {
		// No grp_tag column: a plain result splits into itself.
		writeJSON(w, map[string]any{"parts": []map[string]any{{"tag": "", "result": encodeTable(res)}}})
		return
	}
	enc := make([]map[string]any, len(parts))
	for i := range parts {
		enc[i] = map[string]any{"tag": tags[i], "result": encodeTable(parts[i])}
	}
	writeJSON(w, map[string]any{"parts": enc})
}

// appendRequest is the POST /append body: rows of JSON cells in schema
// order. Cells bind by column type — numbers to BIGINT/FLOAT/DATE (days since
// epoch), strings to VARCHAR, null to NULL of the column's type.
type appendRequest struct {
	Table string  `json:"table"`
	Rows  [][]any `json:"rows"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req appendRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Table == "" || len(req.Rows) == 0 {
		httpError(w, http.StatusBadRequest, "table and rows are required")
		return
	}
	t, ok := s.db.Table(req.Table)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown table %q", req.Table))
		return
	}
	rows := make([][]table.Value, len(req.Rows))
	for ri, raw := range req.Rows {
		if len(raw) != t.NumCols() {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("row %d has %d values, want %d", ri, len(raw), t.NumCols()))
			return
		}
		row := make([]table.Value, len(raw))
		for ci, cell := range raw {
			v, err := bindValue(cell, t.Col(ci).Type())
			if err != nil {
				httpError(w, http.StatusBadRequest,
					fmt.Sprintf("row %d column %q: %v", ri, t.Col(ci).Name(), err))
				return
			}
			row[ci] = v
		}
		rows[ri] = row
	}
	rep, err := s.db.Append(req.Table, rows)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, map[string]any{
		"table":       rep.Table,
		"rows":        rep.Rows,
		"total_rows":  rep.TotalRows,
		"version":     rep.Version,
		"delta":       rep.Delta,
		"refreshed":   rep.Refreshed,
		"dropped":     rep.Dropped,
		"invalidated": rep.Invalidated,
		"refresh_ms":  float64(rep.RefreshWall) / float64(time.Millisecond),
	})
}

// bindValue converts one JSON cell to a typed table value. JSON numbers
// arrive as float64; integral columns require an integral value.
func bindValue(cell any, typ table.Type) (table.Value, error) {
	if cell == nil {
		return table.Null(typ), nil
	}
	switch c := cell.(type) {
	case float64:
		switch typ {
		case table.TFloat64:
			return table.Float(c), nil
		case table.TInt64, table.TDate:
			i := int64(c)
			if float64(i) != c {
				return table.Value{}, fmt.Errorf("non-integral value %v in %s column", c, typ)
			}
			if typ == table.TDate {
				return table.Date(i), nil
			}
			return table.Int(i), nil
		}
		return table.Value{}, fmt.Errorf("number in %s column", typ)
	case string:
		if typ != table.TString {
			return table.Value{}, fmt.Errorf("string in %s column", typ)
		}
		return table.Str(c), nil
	}
	return table.Value{}, fmt.Errorf("unsupported JSON value %T", cell)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.db.WriteMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	draining := s.Draining()
	status := "ok"
	if draining {
		status = "draining"
	}
	resp := map[string]any{"ok": !draining, "status": status, "tables": len(s.db.Tables())}
	// Detailed sections come from whichever collectors implement
	// HealthDetailer — same top-level keys as before the collector refactor
	// ("batching", "appends", "breakers"), still absent when empty.
	for key, detail := range s.db.HealthSections() {
		resp[key] = detail
	}
	// Per-collector status: one entry per registered collector with its last
	// gather outcome and duration, so a subsystem whose Collect fails is
	// visible here before anyone notices missing series on /metrics.
	if hs := s.db.CollectorHealth(); len(hs) > 0 {
		cols := make(map[string]any, len(hs))
		for _, h := range hs {
			e := map[string]any{
				"ok":              h.OK,
				"last_collect_ms": float64(h.Duration) / float64(time.Millisecond),
			}
			if h.Err != "" {
				e["error"] = h.Err
			}
			cols[h.Name] = e
		}
		resp["collectors"] = cols
	}
	if draining {
		// 503 while draining: load balancers stop routing, but the body
		// still tells operators exactly where the drain stands.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	type tbl struct {
		Name string   `json:"name"`
		Rows int      `json:"rows"`
		Cols []string `json:"cols"`
	}
	var out []tbl
	for _, name := range s.db.Tables() {
		t, _ := s.db.Table(name)
		out = append(out, tbl{Name: name, Rows: t.NumRows(), Cols: t.ColNames()})
	}
	writeJSON(w, map[string]any{"tables": out})
}

// bindQuery turns a wire query into a GroupQuery, resolving aggregate column
// names against the table (grouping columns are resolved by DB.Submit).
func (s *Server) bindQuery(tableName string, q queryJSON) (gbmqo.GroupQuery, error) {
	gq := gbmqo.GroupQuery{Cols: q.Cols}
	if len(q.Aggs) == 0 {
		return gq, nil
	}
	t, ok := s.db.Table(tableName)
	if !ok {
		return gq, fmt.Errorf("unknown table %q", tableName)
	}
	for _, a := range q.Aggs {
		fn := strings.ToLower(a.Fn)
		if fn == "count" && a.Col == "" {
			ag := gbmqo.CountStar()
			if a.As != "" {
				ag.Name = a.As
			}
			gq.Aggs = append(gq.Aggs, ag)
			continue
		}
		ord := -1
		for i := 0; i < t.NumCols(); i++ {
			if strings.EqualFold(t.Col(i).Name(), a.Col) {
				ord = i
				break
			}
		}
		if ord < 0 {
			return gq, fmt.Errorf("table %q has no column %q", tableName, a.Col)
		}
		ag := gbmqo.Agg{Col: ord, Name: fn + "_" + strings.ToLower(a.Col)}
		switch fn {
		case "count":
			ag.Kind = gbmqo.AggCount
		case "sum":
			ag.Kind = gbmqo.AggSum
		case "min":
			ag.Kind = gbmqo.AggMin
		case "max":
			ag.Kind = gbmqo.AggMax
		default:
			return gq, fmt.Errorf("unknown aggregate %q (want count, sum, min, max)", a.Fn)
		}
		if a.As != "" {
			ag.Name = a.As
		}
		gq.Aggs = append(gq.Aggs, ag)
	}
	return gq, nil
}

// requestContext bounds one request's work: the client's timeout_ms if sent,
// the server default otherwise, joined with the connection's context so a
// dropped client abandons its batch subscription.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.Timeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// encodeTable renders a result table for JSON: NULL cells become nil, dates
// their formatted form, numbers stay native.
func encodeTable(t *gbmqo.Table) *tableJSON {
	out := &tableJSON{
		Columns: t.ColNames(),
		Types:   make([]string, t.NumCols()),
		Rows:    make([][]any, t.NumRows()),
	}
	for c := 0; c < t.NumCols(); c++ {
		out.Types[c] = t.Col(c).Type().String()
	}
	for r := 0; r < t.NumRows(); r++ {
		row := make([]any, t.NumCols())
		for c := 0; c < t.NumCols(); c++ {
			row[c] = encodeValue(t.Col(c).Value(r))
		}
		out.Rows[r] = row
	}
	return out
}

func encodeValue(v table.Value) any {
	if v.Null {
		return nil
	}
	switch v.Typ {
	case table.TInt64:
		return v.I
	case table.TFloat64:
		return v.F
	case table.TString:
		return v.S
	default: // TDate
		return v.String()
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
