package exec

import (
	"math/rand"
	"sort"
	"testing"

	"gbmqo/internal/index"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// mkTable builds a 3-column test table with controlled duplication and NULLs.
func mkTable(rows int, seed int64) *table.Table {
	r := rand.New(rand.NewSource(seed))
	t := table.New("t", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TString},
		{Name: "x", Typ: table.TFloat64},
	})
	bs := []string{"p", "q", "r", "s"}
	for i := 0; i < rows; i++ {
		var a, b, x table.Value
		if r.Intn(10) == 0 {
			a = table.Null(table.TInt64)
		} else {
			a = table.Int(int64(r.Intn(5)))
		}
		if r.Intn(12) == 0 {
			b = table.Null(table.TString)
		} else {
			b = table.Str(bs[r.Intn(len(bs))])
		}
		if r.Intn(15) == 0 {
			x = table.Null(table.TFloat64)
		} else {
			x = table.Float(float64(r.Intn(100)) / 4)
		}
		t.AppendRow(a, b, x)
	}
	return t
}

// refGroupBy is a map-based reference implementation for cross-checking.
type refRow struct {
	key  []table.Value
	cnt  int64
	sum  float64
	seen bool
}

func refGroupBy(t *table.Table, groupCols []int, sumCol int) map[string]*refRow {
	out := map[string]*refRow{}
	for i := 0; i < t.NumRows(); i++ {
		k := ""
		var key []table.Value
		for _, c := range groupCols {
			v := t.Col(c).Value(i)
			k += "|" + v.String()
			if v.Null {
				k += "\x00NULL"
			}
			key = append(key, v)
		}
		row, ok := out[k]
		if !ok {
			row = &refRow{key: key}
			out[k] = row
		}
		row.cnt++
		if sumCol >= 0 {
			if v := t.Col(sumCol).Value(i); !v.Null {
				row.sum += v.F
				row.seen = true
			}
		}
	}
	return out
}

// resultKey renders a result row's group key the same way refGroupBy does.
func resultKey(t *table.Table, row, nGroupCols int) string {
	k := ""
	for c := 0; c < nGroupCols; c++ {
		v := t.Col(c).Value(row)
		k += "|" + v.String()
		if v.Null {
			k += "\x00NULL"
		}
	}
	return k
}

func checkAgainstRef(t *testing.T, got *table.Table, ref map[string]*refRow, nGroupCols int, cntOrd, sumOrd int) {
	t.Helper()
	if got.NumRows() != len(ref) {
		t.Fatalf("result has %d groups, want %d", got.NumRows(), len(ref))
	}
	for i := 0; i < got.NumRows(); i++ {
		k := resultKey(got, i, nGroupCols)
		want, ok := ref[k]
		if !ok {
			t.Fatalf("unexpected group %q", k)
		}
		if cntOrd >= 0 {
			if c := got.Col(cntOrd).Value(i); c.I != want.cnt {
				t.Fatalf("group %q cnt = %d, want %d", k, c.I, want.cnt)
			}
		}
		if sumOrd >= 0 {
			v := got.Col(sumOrd).Value(i)
			if want.seen {
				if v.Null || v.F != want.sum {
					t.Fatalf("group %q sum = %v, want %v", k, v, want.sum)
				}
			} else if !v.Null {
				t.Fatalf("group %q sum should be NULL", k)
			}
		}
	}
}

func TestGroupByHashMatchesReference(t *testing.T) {
	tb := mkTable(3000, 1)
	got := GroupByHash(tb, []int{0, 1}, []Agg{CountStar(), {Kind: AggSum, Col: 2, Name: "sx"}}, "g")
	ref := refGroupBy(tb, []int{0, 1}, 2)
	checkAgainstRef(t, got, ref, 2, 2, 3)
}

func TestGroupBySortMatchesHash(t *testing.T) {
	tb := mkTable(2000, 2)
	aggs := []Agg{CountStar()}
	h := GroupByHash(tb, []int{1}, aggs, "h")
	s := GroupBySort(tb, []int{1}, aggs, "s")
	if h.NumRows() != s.NumRows() {
		t.Fatalf("hash %d groups, sort %d groups", h.NumRows(), s.NumRows())
	}
	ref := refGroupBy(tb, []int{1}, -1)
	checkAgainstRef(t, s, ref, 1, 1, -1)
}

func TestGroupByIndexStream(t *testing.T) {
	tb := mkTable(2500, 3)
	ix := index.Build(tb, "ix", []int{0, 1}, false)
	// Full key.
	full := GroupByIndexStream(tb, ix, []int{0, 1}, []Agg{CountStar()}, "f")
	checkAgainstRef(t, full, refGroupBy(tb, []int{0, 1}, -1), 2, 2, -1)
	// Prefix.
	pre := GroupByIndexStream(tb, ix, []int{0}, []Agg{CountStar()}, "p")
	checkAgainstRef(t, pre, refGroupBy(tb, []int{0}, -1), 1, 1, -1)
}

func TestGroupByIndexStreamRejectsNonPrefix(t *testing.T) {
	tb := mkTable(100, 4)
	ix := index.Build(tb, "ix", []int{0, 1}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-prefix stream")
		}
	}()
	GroupByIndexStream(tb, ix, []int{1}, []Agg{CountStar()}, "bad")
}

func TestGroupByIndexCounts(t *testing.T) {
	tb := mkTable(2500, 5)
	ix := index.Build(tb, "ix", []int{1}, false)
	got := GroupByIndexCounts(tb, ix, "g")
	checkAgainstRef(t, got, refGroupBy(tb, []int{1}, -1), 1, 1, -1)
}

func TestGroupByIndexPrefixCounts(t *testing.T) {
	tb := mkTable(2500, 12)
	ix := index.Build(tb, "ix", []int{0, 1}, false)
	// Prefix {0} of the (0, 1) index.
	got := GroupByIndexPrefixCounts(tb, ix, []int{0}, "g")
	checkAgainstRef(t, got, refGroupBy(tb, []int{0}, -1), 1, 1, -1)
	// Full key works too (degenerates to per-group runs of length one).
	full := GroupByIndexPrefixCounts(tb, ix, []int{0, 1}, "f")
	checkAgainstRef(t, full, refGroupBy(tb, []int{0, 1}, -1), 2, 2, -1)
}

func TestGroupByIndexPrefixCountsRejectsNonPrefix(t *testing.T) {
	tb := mkTable(100, 13)
	ix := index.Build(tb, "ix", []int{0, 1}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-prefix")
		}
	}()
	GroupByIndexPrefixCounts(tb, ix, []int{1}, "bad")
}

func TestGroupByIndexPrefixCountsEmptyTable(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TInt64},
	})
	ix := index.Build(tb, "ix", []int{0, 1}, false)
	got := GroupByIndexPrefixCounts(tb, ix, []int{0}, "g")
	if got.NumRows() != 0 {
		t.Fatalf("empty table produced %d groups", got.NumRows())
	}
}

func TestRollupEquivalence(t *testing.T) {
	// COUNT(*) Group By (a) computed via intermediate (a, b) with SUM(cnt)
	// must equal direct computation — the §5.2 rollup rule every plan in the
	// paper depends on.
	tb := mkTable(4000, 6)
	direct := GroupByHash(tb, []int{0}, []Agg{CountStar()}, "direct")
	inter := GroupByHash(tb, []int{0, 1}, []Agg{CountStar()}, "inter")
	cntOrd := inter.ColIndex("cnt")
	viaInter := GroupByHash(inter, []int{0}, []Agg{CountStar().Rollup(cntOrd)}, "via")
	if direct.NumRows() != viaInter.NumRows() {
		t.Fatalf("group counts differ: %d vs %d", direct.NumRows(), viaInter.NumRows())
	}
	ref := refGroupBy(tb, []int{0}, -1)
	checkAgainstRef(t, viaInter, ref, 1, 1, -1)
}

func TestRollupSumMinMax(t *testing.T) {
	tb := mkTable(3000, 7)
	aggs := []Agg{
		CountStar(),
		{Kind: AggSum, Col: 2, Name: "sx"},
		{Kind: AggMin, Col: 2, Name: "mn"},
		{Kind: AggMax, Col: 2, Name: "mx"},
	}
	direct := GroupByHash(tb, []int{1}, aggs, "direct")
	inter := GroupByHash(tb, []int{0, 1}, aggs, "inter")
	// Re-aggregate from the intermediate: group col b is ordinal 1 there.
	rolled := []Agg{
		aggs[0].Rollup(inter.ColIndex("cnt")),
		aggs[1].Rollup(inter.ColIndex("sx")),
		aggs[2].Rollup(inter.ColIndex("mn")),
		aggs[3].Rollup(inter.ColIndex("mx")),
	}
	via := GroupByHash(inter, []int{1}, rolled, "via")
	if direct.NumRows() != via.NumRows() {
		t.Fatalf("group counts differ")
	}
	// Compare group-keyed maps.
	type row struct{ cnt, sx, mn, mx table.Value }
	collect := func(tb *table.Table) map[string]row {
		m := map[string]row{}
		for i := 0; i < tb.NumRows(); i++ {
			m[resultKey(tb, i, 1)] = row{
				cnt: tb.ColByName("cnt").Value(i),
				sx:  tb.ColByName("sx").Value(i),
				mn:  tb.ColByName("mn").Value(i),
				mx:  tb.ColByName("mx").Value(i),
			}
		}
		return m
	}
	d, v := collect(direct), collect(via)
	for k, dr := range d {
		vr, ok := v[k]
		if !ok {
			t.Fatalf("group %q missing from rollup", k)
		}
		if !dr.cnt.Equal(vr.cnt) || !dr.sx.Equal(vr.sx) || !dr.mn.Equal(vr.mn) || !dr.mx.Equal(vr.mx) {
			t.Fatalf("group %q: direct %+v, rollup %+v", k, dr, vr)
		}
	}
}

func TestAggRollupKinds(t *testing.T) {
	if got := (Agg{Kind: AggCountStar}).Rollup(3); got.Kind != AggSum || got.Col != 3 {
		t.Fatalf("COUNT(*) rollup = %+v", got)
	}
	if got := (Agg{Kind: AggCount, Col: 1}).Rollup(2); got.Kind != AggSum {
		t.Fatalf("COUNT(col) rollup = %+v", got)
	}
	for _, k := range []AggKind{AggSum, AggMin, AggMax} {
		if got := (Agg{Kind: k}).Rollup(1); got.Kind != k {
			t.Fatalf("%v rollup changed kind to %v", k, got.Kind)
		}
	}
}

func TestCountColSkipsNulls(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{
		{Name: "g", Typ: table.TInt64},
		{Name: "v", Typ: table.TInt64},
	})
	tb.AppendRow(table.Int(1), table.Int(10))
	tb.AppendRow(table.Int(1), table.Null(table.TInt64))
	tb.AppendRow(table.Int(1), table.Int(20))
	got := GroupByHash(tb, []int{0}, []Agg{{Kind: AggCount, Col: 1, Name: "c"}}, "g")
	if got.NumRows() != 1 || got.ColByName("c").Value(0).I != 2 {
		t.Fatalf("COUNT(col) = %v", got.ColByName("c").Value(0))
	}
}

func TestMinMaxIgnoreNullsAndAllNullGroup(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{
		{Name: "g", Typ: table.TInt64},
		{Name: "v", Typ: table.TString},
	})
	tb.AppendRow(table.Int(1), table.Str("m"))
	tb.AppendRow(table.Int(1), table.Null(table.TString))
	tb.AppendRow(table.Int(1), table.Str("a"))
	tb.AppendRow(table.Int(2), table.Null(table.TString))
	got := GroupByHash(tb, []int{0}, []Agg{
		{Kind: AggMin, Col: 1, Name: "mn"},
		{Kind: AggMax, Col: 1, Name: "mx"},
	}, "g")
	for i := 0; i < got.NumRows(); i++ {
		switch got.Col(0).Value(i).I {
		case 1:
			if got.ColByName("mn").Value(i).S != "a" || got.ColByName("mx").Value(i).S != "m" {
				t.Fatalf("min/max wrong: %v/%v", got.ColByName("mn").Value(i), got.ColByName("mx").Value(i))
			}
		case 2:
			if !got.ColByName("mn").Value(i).Null || !got.ColByName("mx").Value(i).Null {
				t.Fatal("all-NULL group should produce NULL min/max")
			}
		}
	}
}

func TestSumIntAndDate(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{
		{Name: "g", Typ: table.TInt64},
		{Name: "v", Typ: table.TInt64},
	})
	tb.AppendRow(table.Int(1), table.Int(5))
	tb.AppendRow(table.Int(1), table.Int(7))
	got := GroupByHash(tb, []int{0}, []Agg{{Kind: AggSum, Col: 1, Name: "s"}}, "g")
	if got.ColByName("s").Value(0).I != 12 {
		t.Fatalf("int sum = %v", got.ColByName("s").Value(0))
	}
}

func TestSumOverStringPanics(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{{Name: "s", Typ: table.TString}})
	tb.AppendRow(table.Str("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on SUM(string)")
		}
	}()
	GroupByHash(tb, nil, []Agg{{Kind: AggSum, Col: 0, Name: "s"}}, "g")
}

func TestGroupByEmptyGroupColsGlobalAggregate(t *testing.T) {
	tb := mkTable(100, 8)
	got := GroupByHash(tb, nil, []Agg{CountStar()}, "g")
	if got.NumRows() != 1 || got.ColByName("cnt").Value(0).I != 100 {
		t.Fatalf("global aggregate = %v rows", got.NumRows())
	}
}

func TestGroupByEmptyTable(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{{Name: "a", Typ: table.TInt64}})
	got := GroupByHash(tb, []int{0}, []Agg{CountStar()}, "g")
	if got.NumRows() != 0 {
		t.Fatalf("empty input produced %d groups", got.NumRows())
	}
}

func TestFilterAndCmpPredicate(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{{Name: "a", Typ: table.TInt64}})
	for _, v := range []int64{1, 5, 3, 9} {
		tb.AppendRow(table.Int(v))
	}
	tb.AppendRow(table.Null(table.TInt64))
	got := Filter(tb, "f", CmpPredicate(tb, 0, stats.CmpGt, table.Int(2)))
	if got.NumRows() != 3 {
		t.Fatalf("filter rows = %d, want 3 (NULL excluded)", got.NumRows())
	}
}

func TestUnionAllTagged(t *testing.T) {
	a := table.New("a", []table.ColumnDef{{Name: "x", Typ: table.TInt64}, {Name: "cnt", Typ: table.TInt64}})
	a.AppendRow(table.Int(1), table.Int(10))
	b := table.New("b", []table.ColumnDef{{Name: "y", Typ: table.TString}, {Name: "cnt", Typ: table.TInt64}})
	b.AppendRow(table.Str("k"), table.Int(20))
	out, err := UnionAllTagged("u", []table.ColumnDef{
		{Name: "x", Typ: table.TInt64},
		{Name: "y", Typ: table.TString},
		{Name: "cnt", Typ: table.TInt64},
	}, []*table.Table{a, b}, []string{"(x)", "(y)"})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("union rows = %d", out.NumRows())
	}
	if out.ColIndex(GrpTagCol) < 0 {
		t.Fatal("missing grp_tag")
	}
	// Part a: y must be NULL; part b: x must be NULL.
	if !out.ColByName("y").IsNull(0) || !out.ColByName("x").IsNull(1) {
		t.Fatal("absent grouping columns must be NULL")
	}
	if out.ColByName(GrpTagCol).Value(0).S != "(x)" || out.ColByName(GrpTagCol).Value(1).S != "(y)" {
		t.Fatal("tags wrong")
	}
}

func TestSplitTaggedRoundTrip(t *testing.T) {
	a := table.New("a", []table.ColumnDef{{Name: "x", Typ: table.TInt64}, {Name: "cnt", Typ: table.TInt64}})
	a.AppendRow(table.Int(1), table.Int(10))
	a.AppendRow(table.Int(2), table.Int(11))
	b := table.New("b", []table.ColumnDef{{Name: "y", Typ: table.TString}, {Name: "cnt", Typ: table.TInt64}})
	b.AppendRow(table.Str("k"), table.Int(20))
	union, err := UnionAllTagged("u", []table.ColumnDef{
		{Name: "x", Typ: table.TInt64},
		{Name: "y", Typ: table.TString},
		{Name: "cnt", Typ: table.TInt64},
	}, []*table.Table{a, b}, []string{"(x)", "(y)"})
	if err != nil {
		t.Fatal(err)
	}
	parts, tags, err := SplitTagged(union)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || len(tags) != 2 {
		t.Fatalf("split into %d parts / %d tags, want 2/2", len(parts), len(tags))
	}
	if tags[0] != "(x)" || tags[1] != "(y)" {
		t.Fatalf("tags = %v, want first-appearance order [(x) (y)]", tags)
	}
	// Parts carry the full union schema minus grp_tag, rows in order.
	for i, p := range parts {
		if p.ColIndex(GrpTagCol) >= 0 {
			t.Fatalf("part %d still has %s", i, GrpTagCol)
		}
		if p.NumCols() != 3 {
			t.Fatalf("part %d has %d cols, want 3", i, p.NumCols())
		}
	}
	px, py := parts[0], parts[1]
	if px.NumRows() != 2 || py.NumRows() != 1 {
		t.Fatalf("part rows = %d/%d, want 2/1", px.NumRows(), py.NumRows())
	}
	if px.ColByName("x").Value(0).I != 1 || px.ColByName("x").Value(1).I != 2 {
		t.Fatal("part (x) row order not preserved")
	}
	if !px.ColByName("y").IsNull(0) || !py.ColByName("x").IsNull(0) {
		t.Fatal("absent grouping columns must stay NULL after split")
	}
	if py.ColByName("cnt").Value(0).I != 20 {
		t.Fatal("part (y) aggregate wrong")
	}
}

func TestSplitTaggedMissingColumn(t *testing.T) {
	plain := table.New("p", []table.ColumnDef{{Name: "x", Typ: table.TInt64}})
	if _, _, err := SplitTagged(plain); err == nil {
		t.Fatal("no error splitting a table without grp_tag")
	}
}

func TestUnionAllTaggedArityError(t *testing.T) {
	_, err := UnionAllTagged("u", nil, []*table.Table{table.New("a", nil)}, nil)
	if err == nil {
		t.Fatal("no error on tag arity mismatch")
	}
}

func TestHashJoin(t *testing.T) {
	l := table.New("l", []table.ColumnDef{{Name: "k", Typ: table.TInt64}, {Name: "lv", Typ: table.TString}})
	l.AppendRow(table.Int(1), table.Str("a"))
	l.AppendRow(table.Int(2), table.Str("b"))
	l.AppendRow(table.Int(2), table.Str("c"))
	l.AppendRow(table.Null(table.TInt64), table.Str("n"))
	r := table.New("r", []table.ColumnDef{{Name: "k", Typ: table.TInt64}, {Name: "rv", Typ: table.TString}})
	r.AppendRow(table.Int(2), table.Str("X"))
	r.AppendRow(table.Int(2), table.Str("Y"))
	r.AppendRow(table.Int(3), table.Str("Z"))
	r.AppendRow(table.Null(table.TInt64), table.Str("N"))
	out := HashJoin(l, r, 0, 0, "j")
	if out.NumRows() != 4 { // rows with k=2: 2 left × 2 right
		t.Fatalf("join rows = %d, want 4", out.NumRows())
	}
	// Clashing right key column renamed.
	if out.ColIndex("r_k") < 0 {
		t.Fatalf("expected renamed right key, cols = %v", out.ColNames())
	}
	// All joined keys equal 2.
	for i := 0; i < out.NumRows(); i++ {
		if out.ColByName("k").Value(i).I != 2 {
			t.Fatalf("row %d joined key %v", i, out.ColByName("k").Value(i))
		}
	}
}

func TestHashJoinGroupByPushdownEquivalence(t *testing.T) {
	// Group By over Join(R, S) must equal Group By over pre-aggregated R
	// joined with S and re-aggregated with SUM(cnt) — the §5.1.1
	// transformation.
	rnd := rand.New(rand.NewSource(9))
	R := table.New("R", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TInt64},
	})
	for i := 0; i < 800; i++ {
		R.AppendRow(table.Int(int64(rnd.Intn(20))), table.Int(int64(rnd.Intn(6))))
	}
	S := table.New("S", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "c", Typ: table.TInt64},
	})
	for i := 0; i < 60; i++ {
		S.AppendRow(table.Int(int64(rnd.Intn(20))), table.Int(int64(rnd.Intn(3))))
	}
	// Direct: join then group by b.
	j := HashJoin(R, S, 0, 0, "j")
	direct := GroupByHash(j, []int{j.ColIndex("b")}, []Agg{CountStar()}, "direct")

	// Pushdown: group R by (a, b) first, join, then re-aggregate.
	pre := GroupByHash(R, []int{0, 1}, []Agg{CountStar()}, "pre")
	j2 := HashJoin(pre, S, 0, 0, "j2")
	push := GroupByHash(j2, []int{j2.ColIndex("b")}, []Agg{CountStar().Rollup(j2.ColIndex("cnt"))}, "push")

	if direct.NumRows() != push.NumRows() {
		t.Fatalf("pushdown group count %d != direct %d", push.NumRows(), direct.NumRows())
	}
	collect := func(tb *table.Table) map[int64]int64 {
		m := map[int64]int64{}
		for i := 0; i < tb.NumRows(); i++ {
			m[tb.Col(0).Value(i).I] = tb.ColByName("cnt").Value(i).I
		}
		return m
	}
	d, p := collect(direct), collect(push)
	for k, v := range d {
		if p[k] != v {
			t.Fatalf("group %d: direct %d, pushdown %d", k, v, p[k])
		}
	}
}

func TestHashRowSpreads(t *testing.T) {
	// Sanity: hashes of distinct single-code rows should mostly differ.
	tb := table.New("h", []table.ColumnDef{{Name: "a", Typ: table.TInt64}})
	for i := 0; i < 1000; i++ {
		tb.AppendRow(table.Int(int64(i)))
	}
	image, stride := tb.RowImage()
	rd := rowReader{image: image, stride: stride, offs: []int{0}}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[hashRow(rd, i)] = true
	}
	if len(seen) < 990 {
		t.Fatalf("hash collisions too frequent: %d distinct of 1000", len(seen))
	}
}

func TestRowImageMatchesColumns(t *testing.T) {
	tb := mkTable(500, 21)
	image, stride := tb.RowImage()
	if stride != 4*tb.NumCols() || len(image) != stride*tb.NumRows() {
		t.Fatalf("image shape = %d bytes, stride %d", len(image), stride)
	}
	rd := rowReader{image: image, stride: stride, offs: []int{0, 4, 8}}
	for r := 0; r < tb.NumRows(); r += 37 {
		for c := 0; c < 3; c++ {
			if got, want := rd.code(r, c), tb.Col(c).Code(r); got != want {
				t.Fatalf("row %d col %d: image code %d, column code %d", r, c, got, want)
			}
		}
	}
}

func TestGroupOrderingDeterminism(t *testing.T) {
	// Hash group-by emits groups in first-appearance order; two runs over the
	// same data must agree exactly (experiments depend on determinism).
	tb := mkTable(1000, 10)
	a := GroupByHash(tb, []int{0, 1}, []Agg{CountStar()}, "a")
	b := GroupByHash(tb, []int{0, 1}, []Agg{CountStar()}, "b")
	if a.NumRows() != b.NumRows() {
		t.Fatal("nondeterministic group count")
	}
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < a.NumCols(); j++ {
			if !a.Col(j).Value(i).Equal(b.Col(j).Value(i)) {
				t.Fatalf("row %d differs between runs", i)
			}
		}
	}
}

func TestSortedStreamOutputIsSorted(t *testing.T) {
	tb := mkTable(500, 11)
	out := GroupBySort(tb, []int{0}, []Agg{CountStar()}, "s")
	vals := make([]table.Value, out.NumRows())
	for i := range vals {
		vals[i] = out.Col(0).Value(i)
	}
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 }) {
		t.Fatal("sort-based group-by output not in key order")
	}
}
