package exec

import (
	"crypto/rand"
	"encoding/binary"
	"sync/atomic"
)

// hashSeed is the process-wide group-hash seed, mixed into every hashRow
// computation. Randomizing it per process means an adversarial or pathological
// key set tuned against the hash function cannot reproduce its collisions
// across runs, so groupHash probing cannot be degraded to O(n) chains by
// construction. Operators snapshot the seed when they build their rowReader,
// so a scan never pays an atomic load per row.
var hashSeed atomic.Uint64

func init() {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err == nil {
		hashSeed.Store(binary.LittleEndian.Uint64(buf[:]))
	}
	// On entropy failure the seed stays 0 — the historical fixed-seed
	// behavior — rather than aborting process start.
}

// SetHashSeed overrides the process group-hash seed and returns the previous
// value. It exists for tests that need reproducible hash layouts (seed 0
// reproduces the historical fixed-constant behavior); production code should
// leave the randomized seed alone.
func SetHashSeed(seed uint64) (prev uint64) {
	return hashSeed.Swap(seed)
}

// HashSeed returns the current process group-hash seed.
func HashSeed() uint64 { return hashSeed.Load() }
