package exec

import (
	"context"
	"fmt"
	"sync/atomic"
)

// cancelCheckRows is the row granularity at which sequential operator loops
// poll for cancellation. It is smaller than one morsel, so a cancelled
// context stops both the sequential and the parallel path within one
// morsel's worth of work.
const cancelCheckRows = 4096

// ExecError is a typed execution failure carrying the step and plan-node
// context in which it occurred. Operator panics recovered by the execution
// layer (morsel workers, the ExecutePlan boundary) are converted into
// *ExecError so one bad plan never crashes the process; genuine invariant
// violations inside an operator still panic and are caught at the next
// recovery boundary.
type ExecError struct {
	// Step names the execution step that failed, e.g. "morsel worker 3" or
	// "compute {l_shipmode} from base".
	Step string
	// Node describes the plan node being evaluated, when known (the engine
	// fills it with the grouping set).
	Node string
	// Err is the underlying cause; recovered panics are wrapped as errors.
	Err error
}

// Error renders the failure with its context.
func (e *ExecError) Error() string {
	switch {
	case e.Step != "" && e.Node != "":
		return fmt.Sprintf("exec: %s (node %s): %v", e.Step, e.Node, e.Err)
	case e.Step != "":
		return fmt.Sprintf("exec: %s: %v", e.Step, e.Err)
	default:
		return fmt.Sprintf("exec: %v", e.Err)
	}
}

// Unwrap exposes the cause to errors.Is/As (a cancelled morsel loop unwraps
// to context.Canceled).
func (e *ExecError) Unwrap() error { return e.Err }

// recoveredError converts a recovered panic value into an error, preserving
// error panics for errors.Is/As chains.
func recoveredError(p any) error {
	if err, ok := p.(error); ok {
		return fmt.Errorf("panic: %w", err)
	}
	return fmt.Errorf("panic: %v", p)
}

// MemBudget tracks the bytes held by execution working state — hash-table
// slots, accumulator arrays, materialized temp tables — against an optional
// limit. Charges are atomic, so one budget can be shared by concurrent
// sub-plans and morsel workers.
//
// The budget separates *accounting* from *admission*: Add/Release always
// record usage (an operator that was admitted may still overshoot its
// estimate; the tracker stays truthful), while WouldExceed is the admission
// gate the engine consults before starting a hash aggregation or retaining a
// temp table. A zero or negative limit means unlimited: WouldExceed is then
// always false and the tracker only measures PeakMem.
type MemBudget struct {
	limit int64
	used  atomic.Int64
	peak  atomic.Int64
}

// NewMemBudget creates a tracker with the given byte limit (<= 0 =
// unlimited, accounting only).
func NewMemBudget(limit int64) *MemBudget { return &MemBudget{limit: limit} }

// Limit returns the configured byte limit (0 = unlimited).
func (b *MemBudget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Add charges n bytes and updates the peak. Nil-safe.
func (b *MemBudget) Add(n int64) {
	if b == nil || n <= 0 {
		return
	}
	used := b.used.Add(n)
	for {
		peak := b.peak.Load()
		if used <= peak || b.peak.CompareAndSwap(peak, used) {
			return
		}
	}
}

// Release returns n bytes to the budget. Nil-safe.
func (b *MemBudget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.used.Add(-n)
}

// WouldExceed reports whether charging n more bytes would overflow the
// limit. Always false for unlimited (or nil) budgets.
func (b *MemBudget) WouldExceed(n int64) bool {
	if b == nil || b.limit <= 0 {
		return false
	}
	return b.used.Load()+n > b.limit
}

// Used returns the bytes currently charged.
func (b *MemBudget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak returns the high-water mark of charged bytes.
func (b *MemBudget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// Gov bundles the per-execution governance state threaded from the public
// query surface down to operator loops: the cancellation context and the
// memory budget. A nil *Gov is valid everywhere and means "ungoverned"
// (background context, unlimited budget), so operators pay no overhead when
// governance is off.
type Gov struct {
	ctx    context.Context
	budget *MemBudget
}

// NewGov builds a governor. ctx may be nil (Background); budget may be nil
// (untracked).
func NewGov(ctx context.Context, budget *MemBudget) *Gov {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Gov{ctx: ctx, budget: budget}
}

// Context returns the governing context. Nil-safe.
func (g *Gov) Context() context.Context {
	if g == nil || g.ctx == nil {
		return context.Background()
	}
	return g.ctx
}

// Budget returns the memory tracker (may be nil). Nil-safe.
func (g *Gov) Budget() *MemBudget {
	if g == nil {
		return nil
	}
	return g.budget
}

// Err polls the governing context. Nil-safe; the hot-loop cancellation
// checkpoint in every governed operator.
func (g *Gov) Err() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	return g.ctx.Err()
}
