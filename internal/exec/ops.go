package exec

import (
	"fmt"

	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// Filter returns the rows of t satisfying pred, as a new table sharing
// dictionaries with t.
func Filter(t *table.Table, outName string, pred func(row int) bool) *table.Table {
	var idx []int32
	for i := 0; i < t.NumRows(); i++ {
		if pred(i) {
			idx = append(idx, int32(i))
		}
	}
	return t.Gather(outName, idx)
}

// CmpPredicate builds a row predicate for `col op literal` with SQL NULL
// semantics (NULL never satisfies a comparison).
func CmpPredicate(t *table.Table, col int, op stats.CmpOp, lit table.Value) func(int) bool {
	c := t.Col(col)
	return func(row int) bool {
		v := c.Value(row)
		if v.Null || lit.Null {
			return false
		}
		return op.Eval(v, lit)
	}
}

// GrpTagCol is the name of the tag column UnionAllTagged adds (§5.1.1: "the
// notion of a Grp-Tag (i.e., a new column) with each tuple that denotes which
// Group By query it is a result of").
const GrpTagCol = "grp_tag"

// UnionAllTagged assembles the result set of a GROUPING SETS query: the
// output schema is outCols (the union of all grouping columns plus aggregate
// columns); each part contributes its own columns with NULL for grouping
// columns absent from its set, plus a Grp-Tag naming the part. A parts/tags
// arity mismatch is a malformed request and returns an error.
func UnionAllTagged(outName string, outCols []table.ColumnDef, parts []*table.Table, tags []string) (*table.Table, error) {
	if len(parts) != len(tags) {
		return nil, fmt.Errorf("exec: union of %d parts with %d tags", len(parts), len(tags))
	}
	defs := append(append([]table.ColumnDef(nil), outCols...), table.ColumnDef{Name: GrpTagCol, Typ: table.TString})
	out := table.New(outName, defs)
	row := make([]table.Value, len(defs))
	for pi, part := range parts {
		// Map each output column to the part's column of the same name (-1 =
		// absent, emit NULL).
		srcOrd := make([]int, len(outCols))
		for i, def := range outCols {
			srcOrd[i] = part.ColIndex(def.Name)
		}
		tag := table.Str(tags[pi])
		for r := 0; r < part.NumRows(); r++ {
			for i, def := range outCols {
				if srcOrd[i] < 0 {
					row[i] = table.Null(def.Typ)
				} else {
					row[i] = part.Col(srcOrd[i]).Value(r)
				}
			}
			row[len(outCols)] = tag
			out.AppendRow(row...)
		}
	}
	return out, nil
}

// SplitTagged is the inverse of UnionAllTagged: it splits a GROUPING
// SETS-shaped result back into one table per Grp-Tag, in first-appearance
// tag order, preserving row order and dropping the tag column. Each part
// keeps the full union schema (grouping columns absent from a part's set
// stay NULL — the tag, not the NULLs, is the authoritative set marker, since
// a NULL grouping value is indistinguishable from an absent column). A table
// without a grp_tag column is a malformed request and returns an error.
func SplitTagged(t *table.Table) (parts []*table.Table, tags []string, err error) {
	tagOrd := t.ColIndex(GrpTagCol)
	if tagOrd < 0 {
		return nil, nil, fmt.Errorf("exec: table %q has no %s column to split on", t.Name(), GrpTagCol)
	}
	keep := make([]int, 0, t.NumCols()-1)
	for i := 0; i < t.NumCols(); i++ {
		if i != tagOrd {
			keep = append(keep, i)
		}
	}
	rowsByTag := map[string][]int32{}
	col := t.Col(tagOrd)
	for r := 0; r < t.NumRows(); r++ {
		v := col.Value(r)
		if v.Null {
			return nil, nil, fmt.Errorf("exec: NULL %s at row %d", GrpTagCol, r)
		}
		if _, seen := rowsByTag[v.S]; !seen {
			tags = append(tags, v.S)
		}
		rowsByTag[v.S] = append(rowsByTag[v.S], int32(r))
	}
	for _, tag := range tags {
		g := t.Gather(tag, rowsByTag[tag])
		parts = append(parts, g.Project(tag, keep))
	}
	return parts, tags, nil
}

// HashJoin computes the inner equi-join of l and r on l.lKey = r.rKey. The
// output schema is all columns of l followed by all columns of r; name
// clashes on the right side get the right table's name as a prefix. NULL keys
// never join (SQL semantics).
func HashJoin(l, r *table.Table, lKey, rKey int, outName string) *table.Table {
	// Build side: hash right-side key values to row lists. The two tables
	// have distinct dictionaries, so the build keys on decoded values via a
	// value-keyed map; join keys are single columns which keeps this simple.
	build := make(map[table.Value][]int32, r.NumRows())
	rCol := r.Col(rKey)
	for i := 0; i < r.NumRows(); i++ {
		v := rCol.Value(i)
		if v.Null {
			continue
		}
		v.Typ = normalizeJoinType(v.Typ)
		build[v] = append(build[v], int32(i))
	}
	var lIdx, rIdx []int32
	lCol := l.Col(lKey)
	for i := 0; i < l.NumRows(); i++ {
		v := lCol.Value(i)
		if v.Null {
			continue
		}
		v.Typ = normalizeJoinType(v.Typ)
		for _, rr := range build[v] {
			lIdx = append(lIdx, int32(i))
			rIdx = append(rIdx, rr)
		}
	}
	lg := l.Gather("l", lIdx)
	rg := r.Gather("r", rIdx)
	cols := make([]*table.Column, 0, lg.NumCols()+rg.NumCols())
	seen := map[string]bool{}
	for i := 0; i < lg.NumCols(); i++ {
		cols = append(cols, lg.Col(i))
		seen[lg.Col(i).Name()] = true
	}
	for i := 0; i < rg.NumCols(); i++ {
		c := rg.Col(i)
		if seen[c.Name()] {
			c = renameColumn(c, r.Name()+"_"+c.Name())
		}
		cols = append(cols, c)
	}
	return table.FromColumns(outName, cols)
}

// normalizeJoinType lets TInt64 and TDate keys join (both carry I); other
// cross-type joins are planner errors surfaced by Value.Compare panics.
func normalizeJoinType(t table.Type) table.Type {
	if t == table.TDate {
		return table.TInt64
	}
	return t
}

// renameColumn rebuilds a column under a new name sharing the dictionary.
func renameColumn(c *table.Column, name string) *table.Column {
	out := c.EmptyLike(name)
	for i := 0; i < c.Len(); i++ {
		out.AppendCode(c.Code(i))
	}
	return out
}
