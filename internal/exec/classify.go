package exec

import (
	"context"
	"errors"
	"fmt"
)

// ErrClass partitions execution failures by who should act on them — the
// caller, the engine's retry loop, or nobody. The classification drives the
// engine-boundary retry policy and the per-table circuit breaker: only
// transient failures are retried, and only non-caller failures count against
// a table's breaker window.
type ErrClass int

// Error classes.
const (
	// ClassCaller: the caller caused it — context cancellation or deadline.
	// Retrying cannot help (the caller has left) and the failure says nothing
	// about the table's health.
	ClassCaller ErrClass = iota
	// ClassTransient: an isolated operator failure (a recovered panic, a
	// poisoned morsel worker, a failed in-flight cache computation) that a
	// fresh — possibly degraded — attempt may avoid.
	ClassTransient
	// ClassFatal: a deterministic failure (unknown table or column, malformed
	// request, planning error) that every retry would repeat.
	ClassFatal
)

// String names the class.
func (c ErrClass) String() string {
	switch c {
	case ClassCaller:
		return "caller"
	case ClassTransient:
		return "transient"
	case ClassFatal:
		return "fatal"
	default:
		return fmt.Sprintf("ErrClass(%d)", int(c))
	}
}

// Classify assigns an execution error to its class. Context errors anywhere
// in the chain win (a cancelled morsel loop surfaces as an *ExecError
// wrapping context.Canceled — that is the caller's doing, not the
// operator's); remaining typed *ExecError values — recovered panics and
// isolated operator failures — are transient; everything else is fatal.
func Classify(err error) ErrClass {
	if err == nil {
		return ClassCaller
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCaller
	}
	var ee *ExecError
	if errors.As(err, &ee) {
		return ClassTransient
	}
	return ClassFatal
}
