package exec

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestChooseKernelGolden pins the chooser's decision surface as a golden
// table: one line per (rows, NDV, dense domain, workers, budget) point. CI
// diffs this file, so any drift in the kernel-choice policy is an explicit,
// reviewed change — run `go test ./internal/exec -run Golden -update` to
// accept a new policy.
func TestChooseKernelGolden(t *testing.T) {
	type pt struct {
		rows, domain, workers int
		ndv                   float64
		hashState             int64
		limit                 int64 // budget limit, 0 = unlimited
	}
	points := []pt{
		// Trivial inputs.
		{rows: 0, domain: 0, workers: 4, ndv: 100},
		{rows: 100000, domain: 0, workers: 4, ndv: 100},
		// Sequential: dense/radix are parallel-regime rungs, so these stay hash.
		{rows: 100000, domain: 64, workers: 1, ndv: 50},
		{rows: 1000000, domain: 4096, workers: 1, ndv: 4000},
		{rows: 100000, domain: 0, workers: 1, ndv: 100000},
		// Parallel small-domain inputs: dense once rows amortize the arrays.
		{rows: 30000, domain: 64, workers: 4, ndv: 50},
		{rows: 100000, domain: 64, workers: 4, ndv: 50},
		{rows: 100000, domain: 4096, workers: 4, ndv: 4000},
		{rows: 100000, domain: 500000, workers: 4, ndv: 400000},
		{rows: 100000, domain: 900000, workers: 4, ndv: 800000},
		// Parallel high-NDV: radix; without stats (ndv 0) the morsel path.
		{rows: 200000, domain: 0, workers: 4, ndv: 50000},
		{rows: 200000, domain: 0, workers: 4, ndv: 0},
		{rows: 200000, domain: 0, workers: 4, ndv: 2000},
		// Tight budgets walk down the ladder.
		{rows: 100000, domain: 64, workers: 4, ndv: 50, limit: 1024},
		{rows: 200000, domain: 0, workers: 4, ndv: 50000, limit: 1024},
		{rows: 200000, domain: 0, workers: 1, ndv: 50000, hashState: 1 << 20, limit: 1 << 10},
		{rows: 200000, domain: 0, workers: 1, ndv: 50000, hashState: 1 << 10, limit: 1 << 20},
		// Presize hint clamps to the row count.
		{rows: 1000, domain: 0, workers: 1, ndv: 100000},
	}
	var b strings.Builder
	for _, p := range points {
		var budget *MemBudget
		if p.limit > 0 {
			budget = NewMemBudget(p.limit)
		}
		c := ChooseKernel(ChooserInput{
			Rows:           p.rows,
			GroupCols:      2,
			NDV:            p.ndv,
			DenseDomain:    p.domain,
			Workers:        p.workers,
			HashStateBytes: p.hashState,
			NAggs:          1,
			Budget:         budget,
		})
		fmt.Fprintf(&b, "rows=%-8d ndv=%-8.0f domain=%-7d workers=%d hashState=%-8d limit=%-8d -> %-5v w=%d sizeHint=%-6d fallbacks=%d\n",
			p.rows, p.ndv, p.domain, p.workers, p.hashState, p.limit,
			c.Kind, c.Workers, c.SizeHint, len(c.Fallbacks))
	}
	got := b.String()
	path := filepath.Join("testdata", "kernel_choices.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("kernel-choice table drifted from %s:\n--- got ---\n%s--- want ---\n%s(run with -update to accept)", path, got, want)
	}
}

// TestChooseKernelLadderSemantics pins the ladder properties the golden file
// cannot express: fallbacks carry the rejected rung, sequential runs never
// pick a parallel kernel, and a zero-worker request is sequential.
func TestChooseKernelLadderSemantics(t *testing.T) {
	base := ChooserInput{Rows: 200000, GroupCols: 2, NDV: 50000, Workers: 4, NAggs: 1}

	tight := base
	tight.Budget = NewMemBudget(1024)
	c := ChooseKernel(tight)
	if c.Kind == KernelRadix {
		t.Fatalf("radix admitted under a 1KiB budget")
	}
	var sawRadix bool
	for _, f := range c.Fallbacks {
		if f.Kind == KernelRadix {
			sawRadix = true
		}
	}
	if !sawRadix {
		t.Errorf("budget-rejected radix not recorded in fallbacks: %+v", c.Fallbacks)
	}

	seq := base
	seq.Workers = 0
	seq.DenseDomain = 64
	if c := ChooseKernel(seq); c.Kind != KernelHash || c.Workers != 1 {
		t.Errorf("sequential request chose %v with %d workers", c.Kind, c.Workers)
	}

	spill := ChooserInput{Rows: 200000, GroupCols: 2, NDV: 50000, Workers: 1,
		HashStateBytes: 1 << 20, Budget: NewMemBudget(1 << 12), NAggs: 1}
	if c := ChooseKernel(spill); c.Kind != KernelSort {
		t.Errorf("over-budget hash state chose %v, want sort", c.Kind)
	}
}
