package exec

import (
	"encoding/binary"
	"fmt"

	"gbmqo/internal/table"
)

// Mergeable reports whether every aggregate's final output values can be
// combined group-wise with another aggregation of the same shape over disjoint
// rows. COUNT/SUM add, MIN/MAX compare; AVG's output is a ratio whose (sum,
// count) pair is gone by emission time, so it cannot merge and must be
// recomputed (the cache falls back to targeted invalidation for it).
func Mergeable(aggs []Agg) bool {
	for _, a := range aggs {
		if a.Kind == AggAvg {
			return false
		}
	}
	return true
}

// MergeAppendedGroups rolls a materialized Group By result forward over an
// appended delta segment: cached is the result computed over the base rows,
// deltaAgg the same grouping and aggregate list computed over only the
// appended rows (both tables laid out as nKeys key columns followed by
// len(aggs) aggregate columns, the emitGroups shape). Group keys match by
// dictionary code tuple — appends extend dictionaries in place, so a code
// means the same value in both inputs.
//
// The output preserves cached's row order and appends delta-only groups in
// deltaAgg's row order. Because appended rows follow all base rows, that is
// exactly global first-appearance order — the order every group-by kernel
// emits — so the merged table is identical to recomputing the aggregation
// cold over the full appended table (float SUM/AVG aside, where addition
// order can round differently, same caveat as the parallel merge).
//
// Key columns of the output share deltaAgg's dictionaries (the extended ones,
// which cover both inputs' codes). Aggregate columns are fresh.
func MergeAppendedGroups(cached, deltaAgg *table.Table, nKeys int, aggs []Agg, outName string) (*table.Table, error) {
	if !Mergeable(aggs) {
		return nil, fmt.Errorf("exec: aggregate list is not mergeable")
	}
	if cached.NumCols() != nKeys+len(aggs) || deltaAgg.NumCols() != nKeys+len(aggs) {
		return nil, fmt.Errorf("exec: merge shape mismatch: cached %d cols, delta %d cols, want %d keys + %d aggs",
			cached.NumCols(), deltaAgg.NumCols(), nKeys, len(aggs))
	}

	// Index delta groups by key code tuple.
	dRows := deltaAgg.NumRows()
	dIdx := make(map[string]int, dRows)
	var keyBuf []byte
	deltaKey := func(t *table.Table, row int) string {
		keyBuf = keyBuf[:0]
		for k := 0; k < nKeys; k++ {
			keyBuf = binary.LittleEndian.AppendUint32(keyBuf, t.Col(k).Code(row))
		}
		return string(keyBuf)
	}
	for r := 0; r < dRows; r++ {
		dIdx[deltaKey(deltaAgg, r)] = r
	}

	cRows := cached.NumRows()
	outRows := cRows
	consumed := make([]bool, dRows)

	// Key columns share the delta's (extended) dictionaries.
	cols := make([]*table.Column, 0, nKeys+len(aggs))
	for k := 0; k < nKeys; k++ {
		src := deltaAgg.Col(k)
		out := src.EmptyLike(src.Name())
		out.AppendCodes(cached.Col(k).Codes())
		cols = append(cols, out)
	}
	aggCols := make([]*table.Column, len(aggs))
	for i := range aggs {
		def := cached.Col(nKeys + i).Def()
		if dt := deltaAgg.Col(nKeys + i).Type(); dt != def.Typ {
			return nil, fmt.Errorf("exec: merge aggregate %q type mismatch: cached %s, delta %s", def.Name, def.Typ, dt)
		}
		aggCols[i] = table.NewColumn(def)
	}

	// Pass 1: cached rows in order, merged with their delta counterpart.
	for r := 0; r < cRows; r++ {
		dr, hit := dIdx[deltaKey(cached, r)]
		if hit {
			consumed[dr] = true
		}
		for i, a := range aggs {
			cv := cached.Col(nKeys + i).Value(r)
			if !hit {
				aggCols[i].Append(cv)
				continue
			}
			aggCols[i].Append(mergeAggValue(a.Kind, cv, deltaAgg.Col(nKeys+i).Value(dr)))
		}
	}
	// Pass 2: delta-only groups, in delta order (= first-appearance order).
	for dr := 0; dr < dRows; dr++ {
		if consumed[dr] {
			continue
		}
		for k := 0; k < nKeys; k++ {
			cols[k].AppendCode(deltaAgg.Col(k).Code(dr))
		}
		for i := range aggs {
			aggCols[i].Append(deltaAgg.Col(nKeys + i).Value(dr))
		}
		outRows++
	}
	cols = append(cols, aggCols...)
	return table.FromColumns(outName, cols), nil
}

// mergeAggValue combines one group's final aggregate value from the base-side
// aggregation with the same group's value from the delta-side aggregation.
func mergeAggValue(kind AggKind, base, delta table.Value) table.Value {
	switch kind {
	case AggCountStar, AggCount:
		return table.Int(base.I + delta.I)
	case AggSum:
		// SQL SUM ignores NULLs and is NULL only when every input was NULL.
		if base.Null {
			return delta
		}
		if delta.Null {
			return base
		}
		if base.Typ == table.TFloat64 {
			return table.Float(base.F + delta.F)
		}
		v := table.Value{Typ: base.Typ, I: base.I + delta.I}
		return v
	case AggMin, AggMax:
		if base.Null {
			return delta
		}
		if delta.Null {
			return base
		}
		if lessValue(delta, base) == (kind == AggMin) {
			return delta
		}
		return base
	default:
		panic(fmt.Sprintf("exec: mergeAggValue on non-mergeable kind %v", kind))
	}
}

// lessValue orders two non-null values of the same type.
func lessValue(a, b table.Value) bool {
	switch a.Typ {
	case table.TFloat64:
		return a.F < b.F
	case table.TString:
		return a.S < b.S
	default:
		return a.I < b.I
	}
}
