package exec

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gbmqo/internal/table"
)

// KernelKind enumerates the physical aggregation kernels the adaptive layer
// chooses among (see ChooseKernel): the open-addressing hash aggregate, the
// sort-based low-memory fallback, the dense accumulator-array kernel for
// small group-code domains, and the radix-partitioned parallel hash kernel
// for high-NDV parallel aggregation.
type KernelKind int

// Kernel kinds, in ladder order (hash is the default and the reference).
const (
	KernelHash KernelKind = iota
	KernelSort
	KernelDense
	KernelRadix
)

// String names the kernel as reported in ExecReport attribution.
func (k KernelKind) String() string {
	switch k {
	case KernelHash:
		return "hash"
	case KernelSort:
		return "sort"
	case KernelDense:
		return "dense"
	case KernelRadix:
		return "radix"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// KernelFallback records one kernel the chooser preferred but could not admit
// under the memory budget before falling down the ladder.
type KernelFallback struct {
	Kind   KernelKind
	Detail string
}

// KernelStats describes how one aggregation kernel executed.
type KernelStats struct {
	// Kind is the kernel that actually ran.
	Kind KernelKind
	// Workers is the number of goroutines that scanned input rows
	// (1 = sequential).
	Workers int
	// Groups is the number of output groups.
	Groups int
	// Partitions is the radix fan-out (0 for non-radix kernels).
	Partitions int
	// RehashesAvoided counts hash-table doublings skipped because the group
	// table was presized from the statistics NDV estimate.
	RehashesAvoided int
	// Merge is the wall time spent combining per-worker (or per-partition)
	// state into the final result.
	Merge time.Duration
	// Reason is the chooser's explanation for picking this kernel (empty when
	// the kernel was invoked directly rather than via GroupByAdaptiveGov).
	Reason string
	// Fallbacks lists preferred kernels rejected by budget admission before
	// this one ran.
	Fallbacks []KernelFallback
}

// denseMaxDomain caps the dense kernel's group-code domain: the per-scan
// group-id array costs 4 bytes per domain slot, so 1<<20 bounds it at 4 MiB.
const denseMaxDomain = 1 << 20

// denseBatch is the number of rows one batched probe pass converts at a time
// (key codes decoded column-major from the row-store scan image into a dense
// code vector). It equals cancelCheckRows so the cancellation cadence matches
// the other kernels.
const denseBatch = cancelCheckRows

// DenseDomain returns the size of the dense group-code domain for grouping t
// by groupCols — Π(dictSize_k+1), the +1 covering the NULL code — or 0 when
// there are no group columns or the product exceeds denseMaxDomain.
func DenseDomain(t *table.Table, groupCols []int) int {
	if len(groupCols) == 0 {
		return 0
	}
	domain := 1
	for _, c := range groupCols {
		d := t.Col(c).DictSize() + 1
		if domain > denseMaxDomain/d {
			return 0
		}
		domain *= d
	}
	return domain
}

// denseMults returns the mixed-radix multipliers mapping a code tuple to its
// dense group code: dc = Σ codes[k]·mult[k] with mult[k] = Π_{j<k}(dict_j+1).
// Only valid when DenseDomain returned non-zero.
func denseMults(t *table.Table, groupCols []int) []int32 {
	mults := make([]int32, len(groupCols))
	m := int32(1)
	for k, c := range groupCols {
		mults[k] = m
		m *= int32(t.Col(c).DictSize() + 1)
	}
	return mults
}

// keyReader builds the row-image reader for a set of key columns. All
// kernels scan key codes through the table's row-major image, never through
// raw column vectors: touching any column of a row pulls the whole row's
// bytes, so every kernel pays the same width-proportional scan cost as the
// row store the paper modeled (see table.RowImage). Kernel wins must come
// from probe mechanics, not from quietly turning the storage engine columnar.
func keyReader(t *table.Table, cols []int) rowReader {
	image, stride := t.RowImage()
	rd := rowReader{image: image, stride: stride, offs: make([]int, len(cols)), seed: hashSeed.Load()}
	for i, c := range cols {
		rd.offs[i] = 4 * c
	}
	return rd
}

// denseState is one scan's dense-kernel aggregation state: a code-indexed
// group-id array plus accumulators. dcodes remembers each group's dense code
// in group-id order — the merge key of the parallel path.
type denseState struct {
	gid       []int32 // dense code → group+1; 0 = empty
	accs      []accumulator
	firstRows []int32
	dcodes    []int32
}

// denseScan aggregates rows [lo,hi): each batch decodes the key columns'
// codes from the row-store scan image into a dense-code vector column-major
// (the vectorized probe — one tight multiply-add loop per key column), then
// probes the flat group-id array and feeds the accumulators. stop, when
// non-nil, aborts at the next batch boundary after a sibling worker failed.
func denseScan(gov *Gov, st *denseState, rd rowReader, mults []int32, lo, hi int, stop *atomic.Bool) error {
	dc := make([]int32, denseBatch)
	img, stride := rd.image, rd.stride
	for base := lo; base < hi; base += denseBatch {
		Testing.Fire("exec.dense.batch")
		if err := gov.Err(); err != nil {
			return err
		}
		if stop != nil && stop.Load() {
			return nil
		}
		end := base + denseBatch
		if end > hi {
			end = hi
		}
		chunk := dc[:end-base]
		for k, mk := range mults {
			p := base*stride + rd.offs[k]
			if k == 0 {
				for i := range chunk {
					code := uint32(img[p]) | uint32(img[p+1])<<8 | uint32(img[p+2])<<16 | uint32(img[p+3])<<24
					chunk[i] = int32(code) * mk
					p += stride
				}
			} else {
				for i := range chunk {
					code := uint32(img[p]) | uint32(img[p+1])<<8 | uint32(img[p+2])<<16 | uint32(img[p+3])<<24
					chunk[i] += int32(code) * mk
					p += stride
				}
			}
		}
		for i, code := range chunk {
			g := st.gid[code]
			if g == 0 {
				st.firstRows = append(st.firstRows, int32(base+i))
				st.dcodes = append(st.dcodes, code)
				g = int32(len(st.firstRows))
				st.gid[code] = g
			}
			row := base + i
			for _, acc := range st.accs {
				acc.observe(int(g-1), row)
			}
		}
	}
	return nil
}

// GroupByDenseGov computes the group-by with the dense accumulator-array
// kernel: each row's key codes fold into one dense integer (mixed-radix over
// the key columns' dictionary sizes) indexing a flat group-id array, so the
// probe is a single array access with no hashing or collision chain. It is
// only applicable when the domain Π(dictSize+1) is small (see DenseDomain);
// an inapplicable request returns an error, so callers should route through
// ChooseKernel / GroupByAdaptiveGov. workers > 1 splits the row range into
// static per-worker shares merged in worker order, which preserves the global
// first-appearance output order exactly; like the morsel path, SUM/AVG over
// TFloat64 may round differently in parallel because partial sums combine in
// a different order.
func GroupByDenseGov(gov *Gov, t *table.Table, groupCols []int, aggs []Agg, outName string, workers int) (*table.Table, KernelStats, error) {
	if err := validateRequest(t, groupCols, aggs); err != nil {
		return nil, KernelStats{}, err
	}
	domain := DenseDomain(t, groupCols)
	if domain == 0 {
		return nil, KernelStats{}, fmt.Errorf("exec: dense kernel inapplicable: group-code domain of %v over %q empty or above %d", groupCols, t.Name(), denseMaxDomain)
	}
	n := t.NumRows()
	w := effectiveWorkers(n, workers)
	rd := keyReader(t, groupCols)
	mults := denseMults(t, groupCols)
	budget := gov.Budget()
	if w <= 1 {
		stateBytes := int64(domain)*4 + denseBatch*4
		budget.Add(stateBytes)
		defer budget.Release(stateBytes)
		st := &denseState{gid: make([]int32, domain), accs: make([]accumulator, len(aggs))}
		for i, a := range aggs {
			st.accs[i] = newAccumulator(a, t)
		}
		if err := denseScan(gov, st, rd, mults, 0, n, nil); err != nil {
			return nil, KernelStats{}, err
		}
		accBytes := accStateBytes(len(st.firstRows), len(st.accs))
		budget.Add(accBytes)
		defer budget.Release(accBytes)
		out := emitGroups(t, groupCols, aggs, st.accs, st.firstRows, nil, outName)
		return out, KernelStats{Kind: KernelDense, Workers: 1, Groups: len(st.firstRows)}, nil
	}

	// Parallel: build the final accumulators in this goroutine before fan-out —
	// their constructors force lazily-built dictionary state (rank tables) that
	// the worker clones then share read-only.
	final := &denseState{gid: make([]int32, domain), accs: make([]accumulator, len(aggs))}
	for i, a := range aggs {
		final.accs[i] = newAccumulator(a, t)
	}
	stateBytes := int64(w+1) * (int64(domain)*4 + denseBatch*4)
	budget.Add(stateBytes)
	defer budget.Release(stateBytes)
	states := make([]*denseState, w)
	var failed atomic.Bool
	var workerErr atomic.Pointer[ExecError]
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					failed.Store(true)
					workerErr.CompareAndSwap(nil, &ExecError{
						Step: fmt.Sprintf("dense worker %d", wi),
						Err:  recoveredError(p),
					})
				}
			}()
			st := &denseState{gid: make([]int32, domain), accs: cloneAccs(final.accs)}
			states[wi] = st
			if err := denseScan(gov, st, rd, mults, wi*n/w, (wi+1)*n/w, &failed); err != nil {
				failed.Store(true) // context error; surfaced below via gov.Err
			}
		}(wi)
	}
	wg.Wait()
	if e := workerErr.Load(); e != nil {
		return nil, KernelStats{Kind: KernelDense, Workers: w}, e
	}
	if err := gov.Err(); err != nil {
		return nil, KernelStats{Kind: KernelDense, Workers: w}, err
	}

	// Merge workers in index order: worker row ranges ascend, so taking each
	// worker's groups in local first-appearance order and keeping the first
	// sighting per dense code reproduces the global first-appearance order,
	// with the recorded firstRow being the true global first row.
	mergeStart := time.Now()
	for _, st := range states {
		for lg, code := range st.dcodes {
			g := final.gid[code]
			if g == 0 {
				final.firstRows = append(final.firstRows, st.firstRows[lg])
				final.dcodes = append(final.dcodes, code)
				g = int32(len(final.firstRows))
				final.gid[code] = g
			}
			for ai, acc := range final.accs {
				acc.mergePartial(int(g-1), st.accs[ai], lg)
			}
		}
	}
	accBytes := accStateBytes(len(final.firstRows), len(final.accs))
	budget.Add(accBytes)
	defer budget.Release(accBytes)
	out := emitGroups(t, groupCols, aggs, final.accs, final.firstRows, nil, outName)
	return out, KernelStats{Kind: KernelDense, Workers: w, Groups: len(final.firstRows), Merge: time.Since(mergeStart)}, nil
}

// radixMaxPartitions caps the radix fan-out. Four partitions per worker give
// the partition-pulling phase slack to balance skewed partition sizes.
const radixMaxPartitions = 256

// radixPartitions picks the partition count (a power of two, ~4 per worker)
// and the right-shift that maps a 64-bit hash to its partition.
func radixPartitions(w int) (parts int, shift uint) {
	parts = 1
	for parts < 4*w && parts < radixMaxPartitions {
		parts <<= 1
	}
	shift = 64
	for p := parts; p > 1; p >>= 1 {
		shift--
	}
	return parts, shift
}

// radixPart is one partition's private aggregation state: an open-addressing
// group table keyed by the precomputed row hashes, plus cloned accumulators.
// Rows within a partition arrive in ascending global row order, so group ids
// fall out in global first-appearance order and firstRows are exact global
// first rows.
type radixPart struct {
	rd        rowReader
	hashes    []uint64
	mask      uint64
	slotHash  []uint64
	slotGroup []int32 // group+1; 0 = empty
	slotRow   []int32
	accs      []accumulator
	firstRows []int32
	budget    *MemBudget
	charged   int64
}

// newRadixPart sizes the partition table for segLen rows (radix is chosen for
// high-NDV keys, where most rows open new groups).
func newRadixPart(rd rowReader, hashes []uint64, segLen int, proto []accumulator, budget *MemBudget) *radixPart {
	size := 64
	for uint64(size)*3 < uint64(segLen+1)*4 && size < denseMaxDomain {
		size <<= 1
	}
	st := &radixPart{
		rd:        rd,
		hashes:    hashes,
		mask:      uint64(size - 1),
		slotHash:  make([]uint64, size),
		slotGroup: make([]int32, size),
		slotRow:   make([]int32, size),
		accs:      cloneAccs(proto),
		budget:    budget,
	}
	st.charge(int64(size) * slotBytes)
	return st
}

func (st *radixPart) charge(n int64) {
	if st.budget == nil {
		return
	}
	st.budget.Add(n)
	st.charged += n
}

// observe feeds one row into the partition's group table and accumulators.
func (st *radixPart) observe(row int) {
	if uint64(len(st.firstRows)+1)*4 > (st.mask+1)*3 {
		st.grow()
	}
	h := st.hashes[row]
	slot := h & st.mask
	var g int32
	for {
		sg := st.slotGroup[slot]
		if sg == 0 {
			st.slotHash[slot] = h
			st.slotRow[slot] = int32(row)
			st.firstRows = append(st.firstRows, int32(row))
			g = int32(len(st.firstRows))
			st.slotGroup[slot] = g
			break
		}
		if st.slotHash[slot] == h && st.rowsEqual(int(st.slotRow[slot]), row) {
			g = sg
			break
		}
		slot = (slot + 1) & st.mask
	}
	for _, acc := range st.accs {
		acc.observe(int(g-1), row)
	}
}

func (st *radixPart) rowsEqual(a, b int) bool {
	for k := range st.rd.offs {
		if st.rd.code(a, k) != st.rd.code(b, k) {
			return false
		}
	}
	return true
}

func (st *radixPart) grow() {
	oldHash, oldGroup, oldRow := st.slotHash, st.slotGroup, st.slotRow
	size := (int(st.mask) + 1) << 1
	st.charge(int64(size-len(oldGroup)) * slotBytes)
	st.mask = uint64(size - 1)
	st.slotHash = make([]uint64, size)
	st.slotGroup = make([]int32, size)
	st.slotRow = make([]int32, size)
	for i, sg := range oldGroup {
		if sg == 0 {
			continue
		}
		slot := oldHash[i] & st.mask
		for st.slotGroup[slot] != 0 {
			slot = (slot + 1) & st.mask
		}
		st.slotHash[slot] = oldHash[i]
		st.slotGroup[slot] = sg
		st.slotRow[slot] = oldRow[i]
	}
}

// groupRef locates one output group of the radix kernel: its global first
// row (the sort key restoring first-appearance order) and where its state
// lives (partition, local group id).
type groupRef struct {
	row  int32
	part int32
	lg   int32
}

// GroupByRadixParallelGov computes the group-by with the radix-partitioned
// parallel hash kernel. Phase 1 computes every row's key hash (the same mix
// as the sequential hash kernel) and histograms the top hash bits per worker;
// phase 2 scatters row ids into per-partition segments, each globally
// ascending by row id; phase 3 hands whole partitions to workers, which build
// one private group table per partition — workers own disjoint group-key
// partitions, so there is no worker-local-table merge afterwards (contrast
// groupByMultiMorsel). Because each partition's rows stay in ascending global
// row order, every group observes its rows in exactly the sequential order:
// output is byte-identical to GroupByHashGov including float SUM/AVG
// rounding, and groups are emitted in global first-appearance order. Inputs
// below the parallel size cutoff run the sequential hash kernel.
func GroupByRadixParallelGov(gov *Gov, t *table.Table, groupCols []int, aggs []Agg, outName string, workers int) (*table.Table, KernelStats, error) {
	if err := validateRequest(t, groupCols, aggs); err != nil {
		return nil, KernelStats{}, err
	}
	n := t.NumRows()
	w := effectiveWorkers(n, workers)
	if w <= 1 || len(groupCols) == 0 {
		return groupByHashSized(gov, t, groupCols, aggs, outName, 0)
	}
	parts, shift := radixPartitions(w)
	budget := gov.Budget()
	scanBytes := int64(n) * 12 // 8B hash + 4B scattered row id per row
	budget.Add(scanBytes)
	defer budget.Release(scanBytes)
	rd := keyReader(t, groupCols)
	// Force lazily-built dictionary state before fan-out (see dense kernel).
	protoAccs := make([]accumulator, len(aggs))
	for i, a := range aggs {
		protoAccs[i] = newAccumulator(a, t)
	}

	hashes := make([]uint64, n)
	hist := make([][]int32, w)
	bound := func(wi int) int { return wi * n / w }

	var failed atomic.Bool
	var workerErr atomic.Pointer[ExecError]
	runPhase := func(step string, body func(wi int) error) {
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil {
						failed.Store(true)
						workerErr.CompareAndSwap(nil, &ExecError{
							Step: fmt.Sprintf("%s %d", step, wi),
							Err:  recoveredError(p),
						})
					}
				}()
				if err := body(wi); err != nil {
					failed.Store(true) // context error; surfaced via gov.Err
				}
			}(wi)
		}
		wg.Wait()
	}
	checkPhase := func() error {
		if e := workerErr.Load(); e != nil {
			return e
		}
		return gov.Err()
	}

	// Phase 1: hash every row and histogram partitions per worker.
	runPhase("radix hash worker", func(wi int) error {
		counts := make([]int32, parts)
		hist[wi] = counts
		lo, hi := bound(wi), bound(wi+1)
		for base := lo; base < hi; base += cancelCheckRows {
			Testing.Fire("exec.radix.scatter")
			if err := gov.Err(); err != nil {
				return err
			}
			if failed.Load() {
				return nil
			}
			end := base + cancelCheckRows
			if end > hi {
				end = hi
			}
			for row := base; row < end; row++ {
				h := hashRow(rd, row)
				hashes[row] = h
				counts[h>>shift]++
			}
		}
		return nil
	})
	if err := checkPhase(); err != nil {
		return nil, KernelStats{Kind: KernelRadix, Workers: w, Partitions: parts}, err
	}

	// Partition-major prefix sums: partition p's segment is
	// rowIds[pstart[p]:pstart[p+1]] with workers' shares in worker order, so
	// each segment stays ascending by global row id.
	pstart := make([]int32, parts+1)
	cursor := make([][]int32, w)
	for wi := 0; wi < w; wi++ {
		cursor[wi] = make([]int32, parts)
	}
	off := int32(0)
	for p := 0; p < parts; p++ {
		pstart[p] = off
		for wi := 0; wi < w; wi++ {
			cursor[wi][p] = off
			off += hist[wi][p]
		}
	}
	pstart[parts] = off

	// Phase 2: scatter row ids into their partition segments.
	rowIds := make([]int32, n)
	runPhase("radix scatter worker", func(wi int) error {
		cur := cursor[wi]
		lo, hi := bound(wi), bound(wi+1)
		for base := lo; base < hi; base += cancelCheckRows {
			Testing.Fire("exec.radix.scatter")
			if err := gov.Err(); err != nil {
				return err
			}
			if failed.Load() {
				return nil
			}
			end := base + cancelCheckRows
			if end > hi {
				end = hi
			}
			for row := base; row < end; row++ {
				p := hashes[row] >> shift
				rowIds[cur[p]] = int32(row)
				cur[p]++
			}
		}
		return nil
	})
	if err := checkPhase(); err != nil {
		return nil, KernelStats{Kind: KernelRadix, Workers: w, Partitions: parts}, err
	}

	// Phase 3: workers pull whole partitions off an atomic counter and build
	// private group tables — disjoint group ownership, no merge.
	partStates := make([]*radixPart, parts)
	defer func() {
		var freed int64
		for _, st := range partStates {
			if st != nil {
				freed += st.charged
			}
		}
		budget.Release(freed)
	}()
	var nextPart atomic.Int64
	runPhase("radix build worker", func(wi int) error {
		for {
			if failed.Load() {
				return nil
			}
			if err := gov.Err(); err != nil {
				return err
			}
			Testing.Fire("exec.radix.build")
			p := int(nextPart.Add(1)) - 1
			if p >= parts {
				return nil
			}
			seg := rowIds[pstart[p]:pstart[p+1]]
			if len(seg) == 0 {
				continue
			}
			st := newRadixPart(rd, hashes, len(seg), protoAccs, budget)
			partStates[p] = st
			for i, row := range seg {
				if i&(cancelCheckRows-1) == cancelCheckRows-1 {
					if err := gov.Err(); err != nil {
						return err
					}
				}
				st.observe(int(row))
			}
		}
	})
	if err := checkPhase(); err != nil {
		return nil, KernelStats{Kind: KernelRadix, Workers: w, Partitions: parts}, err
	}

	// Emit groups sorted by global first appearance across partitions.
	mergeStart := time.Now()
	total := 0
	for _, st := range partStates {
		if st != nil {
			total += len(st.firstRows)
		}
	}
	refs := make([]groupRef, 0, total)
	for p, st := range partStates {
		if st == nil {
			continue
		}
		for lg, row := range st.firstRows {
			refs = append(refs, groupRef{row: row, part: int32(p), lg: int32(lg)})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].row < refs[j].row })
	accBytes := accStateBytes(total, len(aggs))
	budget.Add(accBytes)
	defer budget.Release(accBytes)
	out := emitGroupRefs(t, groupCols, aggs, partStates, refs, outName)
	return out, KernelStats{Kind: KernelRadix, Workers: w, Groups: total, Partitions: parts, Merge: time.Since(mergeStart)}, nil
}

// emitGroupRefs assembles the radix kernel's output: refs are (firstRow,
// partition, local group) sorted by global first appearance; key columns copy
// codes from each group's first row, aggregate columns read each partition's
// accumulators.
func emitGroupRefs(t *table.Table, groupCols []int, aggs []Agg, parts []*radixPart, refs []groupRef, outName string) *table.Table {
	cols := make([]*table.Column, 0, len(groupCols)+len(aggs))
	for _, c := range groupCols {
		src := t.Col(c)
		srcCodes := src.Codes()
		out := src.EmptyLike(src.Name())
		codes := make([]uint32, len(refs))
		for i, ref := range refs {
			codes[i] = srcCodes[ref.row]
		}
		out.AppendCodes(codes)
		cols = append(cols, out)
	}
	for ai := range aggs {
		var typ table.Type
		if len(refs) > 0 {
			typ = parts[refs[0].part].accs[ai].outType()
		} else {
			// No groups: derive the type from a throwaway accumulator.
			typ = newAccumulator(aggs[ai], t).outType()
		}
		out := table.NewColumn(table.ColumnDef{Name: aggs[ai].Name, Typ: typ})
		for _, ref := range refs {
			out.Append(parts[ref.part].accs[ai].result(int(ref.lg)))
		}
		cols = append(cols, out)
	}
	return table.FromColumns(outName, cols)
}
