package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"gbmqo/internal/table"
)

// kernelTable builds a table whose two key columns have a controlled number
// of distinct values, optionally Zipf-skewed, plus int and float aggregate
// columns. Float values are multiples of 0.25 so summation order cannot
// change the result bits — the parallel kernels' float output is then exact,
// and the differential tests can demand byte identity.
func kernelTable(rows, ndvA, ndvB int, zipf float64, seed int64) *table.Table {
	r := rand.New(rand.NewSource(seed))
	t := table.New("kt", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TString},
		{Name: "v", Typ: table.TInt64},
		{Name: "x", Typ: table.TFloat64},
	})
	var za, zb *rand.Zipf
	if zipf > 1 {
		za = rand.NewZipf(r, zipf, 1, uint64(ndvA-1))
		zb = rand.NewZipf(r, zipf, 1, uint64(ndvB-1))
	}
	draw := func(z *rand.Zipf, ndv int) int {
		if z != nil {
			return int(z.Uint64())
		}
		return r.Intn(ndv)
	}
	for i := 0; i < rows; i++ {
		a := table.Int(int64(draw(za, ndvA)))
		if r.Intn(16) == 0 {
			a = table.Null(table.TInt64)
		}
		b := table.Str(fmt.Sprintf("k%d", draw(zb, ndvB)))
		v := table.Int(int64(r.Intn(1000)))
		x := table.Float(float64(r.Intn(4000)) / 4)
		if r.Intn(13) == 0 {
			x = table.Null(table.TFloat64)
		}
		t.AppendRow(a, b, v, x)
	}
	return t
}

// kernelAggs exercises every accumulator kind.
func kernelAggs() []Agg {
	return []Agg{
		CountStar(),
		{Kind: AggCount, Col: 3, Name: "cx"},
		{Kind: AggSum, Col: 2, Name: "sv"},
		{Kind: AggSum, Col: 3, Name: "sx"},
		{Kind: AggMin, Col: 2, Name: "mn"},
		{Kind: AggMax, Col: 3, Name: "mx"},
		{Kind: AggAvg, Col: 3, Name: "ax"},
	}
}

// dumpTable renders schema and every row so equality means byte identity:
// same columns, same types, same row order, same values (floats included).
func dumpTable(t *table.Table) string {
	var b strings.Builder
	for c := 0; c < t.NumCols(); c++ {
		col := t.Col(c)
		fmt.Fprintf(&b, "%s:%v|", col.Name(), col.Type())
	}
	b.WriteByte('\n')
	for i := 0; i < t.NumRows(); i++ {
		for c := 0; c < t.NumCols(); c++ {
			v := t.Col(c).Value(i)
			if v.Null {
				b.WriteString("NULL")
			} else if v.Typ == table.TFloat64 {
				fmt.Fprintf(&b, "%.17g", v.F)
			} else {
				b.WriteString(v.String())
			}
			b.WriteByte('\t')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestKernelsByteIdenticalToHash is the randomized differential suite: every
// kernel × data shapes (low/high NDV, Zipf skew, duplicate-heavy, empty,
// single-group) must reproduce the reference hash kernel's output exactly —
// schema, first-appearance row order, and value bits.
func TestKernelsByteIdenticalToHash(t *testing.T) {
	cases := []struct {
		name             string
		rows, ndvA, ndvB int
		zipf             float64
		seed             int64
	}{
		{name: "low-ndv", rows: 20000, ndvA: 5, ndvB: 4, seed: 1},
		{name: "high-ndv", rows: 40000, ndvA: 500, ndvB: 400, seed: 2},
		{name: "skewed", rows: 40000, ndvA: 300, ndvB: 200, zipf: 1.5, seed: 3},
		{name: "dup-heavy", rows: 40000, ndvA: 2, ndvB: 2, seed: 4},
		{name: "single-group", rows: 8192, ndvA: 1, ndvB: 1, seed: 5},
		{name: "empty", rows: 0, ndvA: 1, ndvB: 1, seed: 6},
		{name: "parallel-scale", rows: 60000, ndvA: 64, ndvB: 32, zipf: 1.3, seed: 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := kernelTable(tc.rows, tc.ndvA, tc.ndvB, tc.zipf, tc.seed)
			groupCols := []int{0, 1}
			aggs := kernelAggs()
			want := dumpTable(GroupByHash(src, groupCols, aggs, "ref"))
			gov := NewGov(context.Background(), NewMemBudget(0))

			check := func(kernel string, got *table.Table, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", kernel, err)
				}
				if d := dumpTable(got); d != want {
					t.Errorf("%s output differs from hash reference\nhash:\n%s\n%s:\n%s", kernel, want, kernel, d)
				}
			}

			out, _, err := groupByHashSized(gov, src, groupCols, aggs, "g", tc.ndvA*tc.ndvB)
			check("hash-presized", out, err)

			sorted, err := GroupBySortGov(gov, src, groupCols, aggs, "g")
			check("sort", sorted, err)

			if DenseDomain(src, groupCols) != 0 {
				out, ks, err := GroupByDenseGov(gov, src, groupCols, aggs, "g", 1)
				check("dense-seq", out, err)
				if err == nil && ks.Kind != KernelDense {
					t.Errorf("dense-seq ran kind %v", ks.Kind)
				}
				out, _, err = GroupByDenseGov(gov, src, groupCols, aggs, "g", 4)
				check("dense-par", out, err)
			}

			out, _, err = GroupByRadixParallelGov(gov, src, groupCols, aggs, "g", 4)
			check("radix", out, err)

			// The adaptive entry point must agree too, whatever rung it picks.
			for _, hints := range []AdaptiveHints{
				{},
				{NDV: float64(tc.ndvA * tc.ndvB), Workers: 4},
				{NDV: 100000, Workers: 4}, // inflated estimate steers to radix
			} {
				out, ks, err := GroupByAdaptiveGov(gov, src, groupCols, aggs, "g", hints)
				check(fmt.Sprintf("adaptive(%+v→%v)", hints, ks.Kind), out, err)
			}

			if used := gov.Budget().Used(); used != 0 {
				t.Errorf("budget not drained after kernels: %d bytes still charged", used)
			}
		})
	}
}

// TestDenseKernelRejectsWideDomains pins the applicability contract: a
// group-code domain over denseMaxDomain must be reported, not mis-aggregated.
func TestDenseKernelRejectsWideDomains(t *testing.T) {
	src := kernelTable(4096, 2000, 2000, 0, 9)
	if d := DenseDomain(src, []int{0, 1}); d != 0 {
		t.Fatalf("DenseDomain = %d, want 0 for a %d-value domain", d, 2001*2001)
	}
	gov := NewGov(context.Background(), NewMemBudget(0))
	if _, _, err := GroupByDenseGov(gov, src, []int{0, 1}, kernelAggs(), "g", 1); err == nil {
		t.Fatal("dense kernel accepted an oversized domain")
	}
}

// TestKernelFailpointsSurfaceTypedErrors drives the chaos sites added with
// the kernels: a panic injected at each new site must surface as a typed
// *ExecError naming the failing worker, with the budget fully released.
func TestKernelFailpointsSurfaceTypedErrors(t *testing.T) {
	src := kernelTable(50000, 300, 200, 0, 11)
	groupCols := []int{0, 1}
	aggs := kernelAggs()
	cases := []struct {
		site     string
		wantStep string
		run      func(gov *Gov) error
	}{
		{"exec.dense.batch", "dense worker", func(gov *Gov) error {
			_, _, err := GroupByDenseGov(gov, src, groupCols, aggs, "g", 4)
			return err
		}},
		{"exec.radix.scatter", "radix", func(gov *Gov) error {
			_, _, err := GroupByRadixParallelGov(gov, src, groupCols, aggs, "g", 4)
			return err
		}},
		{"exec.radix.build", "radix build worker", func(gov *Gov) error {
			_, _, err := GroupByRadixParallelGov(gov, src, groupCols, aggs, "g", 4)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.site, func(t *testing.T) {
			var fired atomic.Int64
			Testing.SetFailPoint(func(site string) {
				if site == tc.site && fired.Add(1) == 2 {
					panic("injected kernel fault")
				}
			})
			defer Testing.ClearFailPoint()
			budget := NewMemBudget(1 << 30)
			gov := NewGov(context.Background(), budget)
			err := tc.run(gov)
			var ee *ExecError
			if !errors.As(err, &ee) {
				t.Fatalf("err = %v, want *ExecError", err)
			}
			if !strings.Contains(ee.Step, tc.wantStep) {
				t.Errorf("Step = %q, want it to contain %q", ee.Step, tc.wantStep)
			}
			if used := budget.Used(); used != 0 {
				t.Errorf("budget leaked %d bytes after injected fault", used)
			}
		})
	}
}

// TestKernelCancellation pins that both new kernels honor governor
// cancellation between batches.
func TestKernelCancellation(t *testing.T) {
	src := kernelTable(50000, 300, 200, 0, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gov := NewGov(ctx, NewMemBudget(0))
	if _, _, err := GroupByDenseGov(gov, src, []int{0, 1}, kernelAggs(), "g", 1); !errors.Is(err, context.Canceled) {
		t.Errorf("dense: err = %v, want context.Canceled", err)
	}
	if _, _, err := GroupByRadixParallelGov(gov, src, []int{0, 1}, kernelAggs(), "g", 4); !errors.Is(err, context.Canceled) {
		t.Errorf("radix: err = %v, want context.Canceled", err)
	}
}

// TestPresizeAvoidsRehashes pins the satellite: with an accurate NDV hint the
// group table never doubles, and the avoided doublings are reported.
func TestPresizeAvoidsRehashes(t *testing.T) {
	src := kernelTable(40000, 500, 400, 0, 13)
	gov := NewGov(context.Background(), NewMemBudget(0))
	groupCols := []int{0, 1}
	aggs := []Agg{CountStar()}
	_, unsized, err := groupByHashSized(gov, src, groupCols, aggs, "g", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, sized, err := groupByHashSized(gov, src, groupCols, aggs, "g", unsized.Groups)
	if err != nil {
		t.Fatal(err)
	}
	if unsized.RehashesAvoided != 0 {
		t.Errorf("unsized run reports %d avoided rehashes, want 0", unsized.RehashesAvoided)
	}
	if sized.RehashesAvoided == 0 {
		t.Errorf("presized run over %d groups avoided no rehashes", sized.Groups)
	}
}
