package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemBudgetAccounting(t *testing.T) {
	b := NewMemBudget(100)
	if b.WouldExceed(100) {
		t.Fatal("empty budget rejects a fitting charge")
	}
	if !b.WouldExceed(101) {
		t.Fatal("empty budget admits an oversized charge")
	}
	b.Add(60)
	if got := b.Used(); got != 60 {
		t.Fatalf("Used = %d, want 60", got)
	}
	if !b.WouldExceed(50) {
		t.Fatal("50 on top of 60 fits a 100 budget?")
	}
	b.Add(30)
	b.Release(90)
	if got, pk := b.Used(), b.Peak(); got != 0 || pk != 90 {
		t.Fatalf("Used = %d (want 0), Peak = %d (want 90)", got, pk)
	}
	// Unlimited budget: admission never refuses, accounting still works.
	u := NewMemBudget(0)
	u.Add(1 << 40)
	if u.WouldExceed(1 << 40) {
		t.Fatal("unlimited budget refused a charge")
	}
	if u.Peak() != 1<<40 {
		t.Fatalf("unlimited budget lost the peak: %d", u.Peak())
	}
	// Nil budget: every method is a safe no-op.
	var nb *MemBudget
	nb.Add(10)
	nb.Release(10)
	if nb.WouldExceed(10) || nb.Used() != 0 || nb.Peak() != 0 || nb.Limit() != 0 {
		t.Fatal("nil budget is not inert")
	}
}

func TestMemBudgetConcurrentCharges(t *testing.T) {
	b := NewMemBudget(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Add(3)
				b.Release(3)
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 {
		t.Fatalf("concurrent charges leaked: Used = %d", b.Used())
	}
	if b.Peak() < 3 {
		t.Fatalf("peak never recorded: %d", b.Peak())
	}
}

func TestCancelSequentialHashGroupBy(t *testing.T) {
	tb := mkParTable(3*cancelCheckRows, 900, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gov := NewGov(ctx, nil)
	if _, err := GroupByHashGov(gov, tb, []int{0}, []Agg{CountStar()}, "g"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Budget charges must be fully returned on the cancellation path.
	budget := NewMemBudget(0)
	if _, err := GroupByHashGov(NewGov(ctx, budget), tb, []int{2}, allAggKinds(), "g"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if budget.Used() != 0 {
		t.Fatalf("cancelled run leaked %d budget bytes", budget.Used())
	}
}

func TestCancelSortFallbackGroupBy(t *testing.T) {
	tb := mkParTable(2*cancelCheckRows, 500, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GroupBySortGov(NewGov(ctx, nil), tb, []int{0, 1}, []Agg{CountStar()}, "g"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelParallelMorselDeterministic cancels the context from inside the
// morsel loop via the fault-injection hook, so every worker must observe the
// cancellation at its next morsel boundary and the operator must return the
// context's error — deterministically, not timing-dependently.
func TestCancelParallelMorselDeterministic(t *testing.T) {
	tb := mkParTable(4*morselRows, 1200, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Int64
	Testing.SetFailPoint(func(site string) {
		if site == "exec.morsel.worker" && fired.Add(1) == 3 {
			cancel()
		}
	})
	defer Testing.ClearFailPoint()
	budget := NewMemBudget(0)
	_, _, err := GroupByHashParallelGov(NewGov(ctx, budget), tb, []int{2}, allAggKinds(), "g", 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if budget.Used() != 0 {
		t.Fatalf("cancelled parallel run leaked %d budget bytes", budget.Used())
	}
}

// TestCancelConcurrentRuns exercises concurrent cancellation under -race:
// several governed parallel aggregations run at once over a shared table
// while their contexts are cancelled from other goroutines. Every run must
// either complete or fail with context.Canceled, and the shared budget must
// drain to zero.
func TestCancelConcurrentRuns(t *testing.T) {
	tb := mkParTable(3*morselRows, 800, 4)
	tb.RowImage() // pre-build: lazy construction is not goroutine-safe
	budget := NewMemBudget(0)
	const runs = 6
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = GroupByHashParallelGov(NewGov(ctx, budget), tb, []int{2}, allAggKinds(), "g", 3)
		}(i)
		if i%2 == 0 {
			cancel() // races against the run: both outcomes are legal
		} else {
			defer cancel()
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v, want nil or context.Canceled", i, err)
		}
	}
	if budget.Used() != 0 {
		t.Fatalf("concurrent runs leaked %d budget bytes", budget.Used())
	}
}

// TestFaultWorkerPanicYieldsExecError injects a panic into one morsel worker
// and requires the operator to survive it, returning a typed *ExecError that
// names the failing worker, with all budget charges released.
func TestFaultWorkerPanicYieldsExecError(t *testing.T) {
	tb := mkParTable(4*morselRows, 600, 5)
	var fired atomic.Int64
	Testing.SetFailPoint(func(site string) {
		if site == "exec.morsel.worker" && fired.Add(1) == 2 {
			panic("injected operator bug")
		}
	})
	defer Testing.ClearFailPoint()
	budget := NewMemBudget(0)
	_, _, err := GroupByHashParallelGov(NewGov(context.Background(), budget), tb, []int{0, 1}, allAggKinds(), "g", 4)
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v (%T), want *ExecError", err, err)
	}
	if ee.Step == "" || ee.Err == nil {
		t.Fatalf("ExecError lacks context: %+v", ee)
	}
	if budget.Used() != 0 {
		t.Fatalf("failed run leaked %d budget bytes", budget.Used())
	}
}

// TestBudgetSortFallbackIdenticalOutput is the operator-level half of the
// degradation guarantee: the sort-based fallback must produce output
// byte-identical to the hash operator — same group order (first appearance),
// same values — for every grouping and aggregate mix.
func TestBudgetSortFallbackIdenticalOutput(t *testing.T) {
	for _, ndv := range []int{4, 700} {
		tb := mkParTable(5000, ndv, 6)
		for _, cols := range [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}} {
			hash := GroupByHash(tb, cols, allAggKinds(), "g")
			srt, err := GroupBySortGov(nil, tb, cols, allAggKinds(), "g")
			if err != nil {
				t.Fatal(err)
			}
			assertTablesIdentical(t, srt, hash)
		}
	}
}

// TestBudgetChargesReleasedAfterRuns verifies the accounting contract: every
// governed operator returns its transient charges when it finishes, and the
// peak reflects the hash state that was held.
func TestBudgetChargesReleasedAfterRuns(t *testing.T) {
	tb := mkParTable(3000, 400, 7)
	budget := NewMemBudget(0)
	gov := NewGov(nil, budget)
	if _, err := GroupByHashGov(gov, tb, []int{2}, allAggKinds(), "g"); err != nil {
		t.Fatal(err)
	}
	if budget.Used() != 0 {
		t.Fatalf("hash run leaked %d bytes", budget.Used())
	}
	if budget.Peak() == 0 {
		t.Fatal("hash run charged nothing")
	}
	peak := budget.Peak()
	if _, err := GroupBySortGov(gov, tb, []int{2}, allAggKinds(), "g"); err != nil {
		t.Fatal(err)
	}
	if budget.Used() != 0 {
		t.Fatalf("sort run leaked %d bytes", budget.Used())
	}
	if budget.Peak() == peak {
		t.Fatal("sort run charged nothing")
	}
	if _, err := GroupByHashMultiGov(gov, tb, []MultiQuery{
		{GroupCols: []int{0}, Aggs: []Agg{CountStar()}, OutName: "a"},
		{GroupCols: []int{1, 2}, Aggs: allAggKinds(), OutName: "b"},
	}); err != nil {
		t.Fatal(err)
	}
	if budget.Used() != 0 {
		t.Fatalf("shared scan leaked %d bytes", budget.Used())
	}
}
