// Package exec implements the physical operators of the execution substrate:
// hash / sort / index-stream group-by, filter, union-all with Grp-Tags, and
// hash join. Operators are materializing — each consumes and produces whole
// tables — which matches the paper's notion of a logical plan as a partial
// order of SQL statements whose intermediate results land in temp tables.
package exec

import (
	"fmt"

	"gbmqo/internal/table"
)

// AggKind enumerates the aggregate functions supported (§3.1 uses COUNT(*)
// throughout; §7.2 extends to MIN/MAX/SUM, all implemented here).
type AggKind int

// Aggregate kinds.
const (
	AggCountStar AggKind = iota
	AggCount             // COUNT(col): non-null count
	AggSum
	AggMin
	AggMax
	// AggAvg carries a mergeable (sum, count) pair so the morsel-parallel
	// path can combine partial states. It cannot roll up through a
	// materialized intermediate (the average of averages is wrong), so the
	// planner must compute it directly from its source relation; Rollup
	// panics on it.
	AggAvg
)

// String renders the kind as SQL.
func (k AggKind) String() string {
	switch k {
	case AggCountStar:
		return "COUNT(*)"
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Agg is one aggregate column specification. Col is the source column ordinal
// in the *input* table (ignored for AggCountStar). Name is the output column
// name.
type Agg struct {
	Kind AggKind
	Col  int
	Name string
}

// CountStar is the default aggregate used by the paper's queries.
func CountStar() Agg { return Agg{Kind: AggCountStar, Name: "cnt"} }

// Rollup translates an aggregate so it can be computed from a materialized
// intermediate instead of the base table (§5.2: "if T_u is an intermediate
// node then we need to replace COUNT(*) with SUM(cnt)"). srcOrd is the ordinal
// in the intermediate table holding this aggregate's partial result.
func (a Agg) Rollup(srcOrd int) Agg {
	out := Agg{Col: srcOrd, Name: a.Name}
	switch a.Kind {
	case AggCountStar, AggCount:
		out.Kind = AggSum
	case AggAvg:
		panic("exec: AVG does not roll up through an intermediate; compute it from the source relation")
	default:
		out.Kind = a.Kind // SUM/MIN/MAX roll up as themselves
	}
	return out
}

// accumulator maintains per-group aggregate state.
type accumulator interface {
	// observe feeds source row `row` into group g, growing state as needed.
	observe(g int, row int)
	// result emits the final value for group g.
	result(g int) table.Value
	// outType is the result column type.
	outType() table.Type
	// mergePartial folds group src of a worker-local partial accumulator into
	// group dst of this one, combining states instead of replaying rows: COUNT
	// partials add, SUM partials add, MIN/MAX partials compare, AVG merges its
	// (sum, count) pair. other must be the same concrete type built over the
	// same input table; dst grows this accumulator's state as needed. This is
	// what lets the morsel-driven parallel path merge thread-local hash tables
	// into the final result.
	mergePartial(dst int, other accumulator, src int)
	// cloneEmpty returns a fresh accumulator of the same concrete type over
	// the same input column, with empty per-group state. Read-only decode
	// state (code slices, decode tables, rank tables) is shared with the
	// receiver, so the parallel kernels can hand each worker or partition its
	// own clone without rebuilding decode tables per clone.
	cloneEmpty() accumulator
}

// cloneAccs clones a template accumulator slice for one worker or partition.
func cloneAccs(accs []accumulator) []accumulator {
	out := make([]accumulator, len(accs))
	for i, a := range accs {
		out[i] = a.cloneEmpty()
	}
	return out
}

// newAccumulator builds the accumulator for one agg over the input table.
func newAccumulator(a Agg, t *table.Table) accumulator {
	switch a.Kind {
	case AggCountStar:
		return &countStarAcc{}
	case AggCount:
		return &countAcc{col: t.Col(a.Col)}
	case AggSum:
		col := t.Col(a.Col)
		switch col.Type() {
		case table.TFloat64:
			return &sumFloatAcc{codes: col.Codes(), vals: col.Float64DecodeTable()}
		case table.TInt64, table.TDate:
			return &sumIntAcc{codes: col.Codes(), vals: col.Int64DecodeTable()}
		default:
			panic(fmt.Sprintf("exec: SUM over %s column %q", col.Type(), col.Name()))
		}
	case AggMin:
		return &extremeAcc{col: t.Col(a.Col), ranks: t.Col(a.Col).Ranks(), min: true}
	case AggMax:
		return &extremeAcc{col: t.Col(a.Col), ranks: t.Col(a.Col).Ranks(), min: false}
	case AggAvg:
		col := t.Col(a.Col)
		switch col.Type() {
		case table.TFloat64:
			return &avgAcc{codes: col.Codes(), vals: col.Float64DecodeTable()}
		case table.TInt64, table.TDate:
			vals := col.Int64DecodeTable()
			fvals := make([]float64, len(vals))
			for i, v := range vals {
				fvals[i] = float64(v)
			}
			return &avgAcc{codes: col.Codes(), vals: fvals}
		default:
			panic(fmt.Sprintf("exec: AVG over %s column %q", col.Type(), col.Name()))
		}
	default:
		panic(fmt.Sprintf("exec: unknown aggregate kind %v", a.Kind))
	}
}

type countStarAcc struct{ counts []int64 }

func (a *countStarAcc) observe(g, _ int) {
	for len(a.counts) <= g {
		a.counts = append(a.counts, 0)
	}
	a.counts[g]++
}
func (a *countStarAcc) result(g int) table.Value { return table.Int(a.counts[g]) }
func (a *countStarAcc) outType() table.Type      { return table.TInt64 }
func (a *countStarAcc) mergePartial(dst int, other accumulator, src int) {
	for len(a.counts) <= dst {
		a.counts = append(a.counts, 0)
	}
	a.counts[dst] += other.(*countStarAcc).counts[src]
}
func (a *countStarAcc) cloneEmpty() accumulator { return &countStarAcc{} }

type countAcc struct {
	col    *table.Column
	counts []int64
}

func (a *countAcc) observe(g, row int) {
	for len(a.counts) <= g {
		a.counts = append(a.counts, 0)
	}
	if !a.col.IsNull(row) {
		a.counts[g]++
	}
}
func (a *countAcc) result(g int) table.Value { return table.Int(a.counts[g]) }
func (a *countAcc) outType() table.Type      { return table.TInt64 }
func (a *countAcc) mergePartial(dst int, other accumulator, src int) {
	for len(a.counts) <= dst {
		a.counts = append(a.counts, 0)
	}
	a.counts[dst] += other.(*countAcc).counts[src]
}
func (a *countAcc) cloneEmpty() accumulator { return &countAcc{col: a.col} }

type sumIntAcc struct {
	codes []uint32
	vals  []int64 // code-indexed decode table
	sums  []int64
	seen  []bool
}

func (a *sumIntAcc) observe(g, row int) {
	for len(a.sums) <= g {
		a.sums = append(a.sums, 0)
		a.seen = append(a.seen, false)
	}
	if code := a.codes[row]; code != 0 {
		a.sums[g] += a.vals[code]
		a.seen[g] = true
	}
}
func (a *sumIntAcc) result(g int) table.Value {
	if !a.seen[g] {
		return table.Null(table.TInt64)
	}
	return table.Int(a.sums[g])
}
func (a *sumIntAcc) outType() table.Type { return table.TInt64 }
func (a *sumIntAcc) mergePartial(dst int, other accumulator, src int) {
	for len(a.sums) <= dst {
		a.sums = append(a.sums, 0)
		a.seen = append(a.seen, false)
	}
	o := other.(*sumIntAcc)
	if o.seen[src] {
		a.sums[dst] += o.sums[src]
		a.seen[dst] = true
	}
}
func (a *sumIntAcc) cloneEmpty() accumulator { return &sumIntAcc{codes: a.codes, vals: a.vals} }

type sumFloatAcc struct {
	codes []uint32
	vals  []float64 // code-indexed decode table
	sums  []float64
	seen  []bool
}

func (a *sumFloatAcc) observe(g, row int) {
	for len(a.sums) <= g {
		a.sums = append(a.sums, 0)
		a.seen = append(a.seen, false)
	}
	if code := a.codes[row]; code != 0 {
		a.sums[g] += a.vals[code]
		a.seen[g] = true
	}
}
func (a *sumFloatAcc) result(g int) table.Value {
	if !a.seen[g] {
		return table.Null(table.TFloat64)
	}
	return table.Float(a.sums[g])
}
func (a *sumFloatAcc) outType() table.Type { return table.TFloat64 }
func (a *sumFloatAcc) mergePartial(dst int, other accumulator, src int) {
	for len(a.sums) <= dst {
		a.sums = append(a.sums, 0)
		a.seen = append(a.seen, false)
	}
	o := other.(*sumFloatAcc)
	if o.seen[src] {
		a.sums[dst] += o.sums[src]
		a.seen[dst] = true
	}
}
func (a *sumFloatAcc) cloneEmpty() accumulator { return &sumFloatAcc{codes: a.codes, vals: a.vals} }

// extremeAcc tracks MIN or MAX per group by dictionary code, comparing codes
// through the column's rank table (rank order == value order), so no value
// decoding happens on the hot path. NULLs are ignored per SQL.
type extremeAcc struct {
	col   *table.Column
	ranks []uint32
	min   bool
	best  []uint32 // code per group; nullCode means "no non-null value yet"
}

func (a *extremeAcc) observe(g, row int) {
	a.consider(g, a.col.Code(row))
}

// consider folds one candidate code into group g's best.
func (a *extremeAcc) consider(g int, code uint32) {
	for len(a.best) <= g {
		a.best = append(a.best, 0)
	}
	if code == 0 {
		return
	}
	cur := a.best[g]
	if cur == 0 {
		a.best[g] = code
		return
	}
	if a.min == (a.ranks[code] < a.ranks[cur]) && a.ranks[code] != a.ranks[cur] {
		a.best[g] = code
	}
}
func (a *extremeAcc) result(g int) table.Value { return a.col.Decode(a.best[g]) }
func (a *extremeAcc) outType() table.Type      { return a.col.Type() }
func (a *extremeAcc) mergePartial(dst int, other accumulator, src int) {
	a.consider(dst, other.(*extremeAcc).best[src])
}
func (a *extremeAcc) cloneEmpty() accumulator {
	return &extremeAcc{col: a.col, ranks: a.ranks, min: a.min}
}

// avgAcc computes AVG by carrying a mergeable (sum, count) pair per group.
// Int and date sources are averaged in float64. NULLs are ignored per SQL; an
// all-NULL group averages to NULL.
type avgAcc struct {
	codes  []uint32
	vals   []float64 // code-indexed decode table
	sums   []float64
	counts []int64
}

func (a *avgAcc) observe(g, row int) {
	for len(a.sums) <= g {
		a.sums = append(a.sums, 0)
		a.counts = append(a.counts, 0)
	}
	if code := a.codes[row]; code != 0 {
		a.sums[g] += a.vals[code]
		a.counts[g]++
	}
}
func (a *avgAcc) result(g int) table.Value {
	if a.counts[g] == 0 {
		return table.Null(table.TFloat64)
	}
	return table.Float(a.sums[g] / float64(a.counts[g]))
}
func (a *avgAcc) outType() table.Type { return table.TFloat64 }
func (a *avgAcc) mergePartial(dst int, other accumulator, src int) {
	for len(a.sums) <= dst {
		a.sums = append(a.sums, 0)
		a.counts = append(a.counts, 0)
	}
	o := other.(*avgAcc)
	a.sums[dst] += o.sums[src]
	a.counts[dst] += o.counts[src]
}
func (a *avgAcc) cloneEmpty() accumulator { return &avgAcc{codes: a.codes, vals: a.vals} }
