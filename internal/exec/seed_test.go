package exec

import (
	"context"
	"testing"

	"gbmqo/internal/table"
)

func TestSetHashSeedRoundTrip(t *testing.T) {
	orig := HashSeed()
	defer SetHashSeed(orig)
	if prev := SetHashSeed(12345); prev != orig {
		t.Fatalf("SetHashSeed returned %d, want previous seed %d", prev, orig)
	}
	if got := HashSeed(); got != 12345 {
		t.Fatalf("HashSeed = %d after SetHashSeed(12345)", got)
	}
}

// TestGroupByIdenticalAcrossSeeds: the seed perturbs probe order only —
// results (values and first-appearance row order) are identical under any
// seed, which is what makes per-process randomization safe.
func TestGroupByIdenticalAcrossSeeds(t *testing.T) {
	orig := HashSeed()
	defer SetHashSeed(orig)
	src := mkTable(5000, 3)
	gov := NewGov(context.Background(), NewMemBudget(0))
	aggs := []Agg{CountStar(), {Kind: AggSum, Col: 2, Name: "sx"}}

	var ref *table.Table
	for _, seed := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		SetHashSeed(seed)
		out, err := GroupByHashGov(gov, src, []int{0, 1}, aggs, "g")
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		if ref == nil {
			ref = out
			continue
		}
		if out.NumRows() != ref.NumRows() || out.NumCols() != ref.NumCols() {
			t.Fatalf("seed %#x: shape %dx%d, want %dx%d",
				seed, out.NumRows(), out.NumCols(), ref.NumRows(), ref.NumCols())
		}
		for c := 0; c < ref.NumCols(); c++ {
			for r := 0; r < ref.NumRows(); r++ {
				g, w := out.Col(c).Value(r), ref.Col(c).Value(r)
				if g.Null != w.Null || g.String() != w.String() {
					t.Fatalf("seed %#x: cell (%d,%d) = %v, want %v", seed, r, c, g, w)
				}
			}
		}
	}
}

// TestHashRowSeedChangesLayout: different seeds must actually change hash
// values (the point of randomization — an adversary cannot precompute a
// colliding key set against an unknown seed).
func TestHashRowSeedChangesLayout(t *testing.T) {
	src := mkTable(64, 9)
	image, stride := src.RowImage()
	mkReader := func(seed uint64) rowReader {
		return rowReader{image: image, stride: stride, offs: []int{0, 4}, seed: seed}
	}
	a, b := mkReader(1), mkReader(2)
	diff := false
	for r := 0; r < src.NumRows(); r++ {
		if hashRow(a, r) != hashRow(b, r) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 1 and 2 hash every row identically")
	}
	// A zero-seed reader preserves the historical layout: hashing is a pure
	// function of the row bytes.
	z1, z2 := mkReader(0), mkReader(0)
	for r := 0; r < src.NumRows(); r++ {
		if hashRow(z1, r) != hashRow(z2, r) {
			t.Fatalf("zero-seed hash not deterministic at row %d", r)
		}
	}
}
