package exec

import (
	"testing"
)

func TestGroupByHashMultiMatchesIndividual(t *testing.T) {
	tb := mkTable(3000, 31)
	queries := []MultiQuery{
		{GroupCols: []int{0}, Aggs: []Agg{CountStar()}, OutName: "q0"},
		{GroupCols: []int{1}, Aggs: []Agg{CountStar(), {Kind: AggSum, Col: 2, Name: "sx"}}, OutName: "q1"},
		{GroupCols: []int{0, 1}, Aggs: []Agg{CountStar()}, OutName: "q2"},
	}
	outs, err := GroupByHashMulti(tb, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("outputs = %d", len(outs))
	}
	for i, q := range queries {
		single := GroupByHash(tb, q.GroupCols, q.Aggs, "single")
		if outs[i].NumRows() != single.NumRows() {
			t.Fatalf("query %d: %d groups, want %d", i, outs[i].NumRows(), single.NumRows())
		}
		// Shared scan preserves the first-appearance group order, so rows
		// must match positionally.
		for r := 0; r < single.NumRows(); r++ {
			for c := 0; c < single.NumCols(); c++ {
				if !outs[i].Col(c).Value(r).Equal(single.Col(c).Value(r)) {
					t.Fatalf("query %d row %d col %d: %v vs %v",
						i, r, c, outs[i].Col(c).Value(r), single.Col(c).Value(r))
				}
			}
		}
		if outs[i].Name() != q.OutName {
			t.Fatalf("query %d name %q", i, outs[i].Name())
		}
	}
}

func TestGroupByHashMultiEmpty(t *testing.T) {
	got, err := GroupByHashMulti(mkTable(10, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("empty query list should return nil")
	}
}

func TestGroupByHashMultiBadColumnError(t *testing.T) {
	tb := mkTable(10, 2)
	_, err := GroupByHashMulti(tb, []MultiQuery{{GroupCols: []int{99}, Aggs: []Agg{CountStar()}}})
	if err == nil {
		t.Fatal("no error on out-of-range column")
	}
}

func TestGroupByHashMultiSingleQueryEquivalence(t *testing.T) {
	tb := mkTable(500, 33)
	outs, err := GroupByHashMulti(tb, []MultiQuery{
		{GroupCols: []int{1}, Aggs: []Agg{CountStar()}, OutName: "q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := outs[0]
	ref := refGroupBy(tb, []int{1}, -1)
	checkAgainstRef(t, out, ref, 1, 1, -1)
}
