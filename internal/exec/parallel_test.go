package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gbmqo/internal/table"
)

// mkParTable builds a 4-column table for the parallel differential tests:
// two low/medium-NDV key columns (int, string), one high-NDV key column, and
// one float value column. Float values are multiples of 0.25, so SUM/AVG are
// exact in float64 regardless of summation order and parallel results can be
// compared byte-identically to sequential ones. Every column takes NULLs.
func mkParTable(rows, ndvHigh int, seed int64) *table.Table {
	r := rand.New(rand.NewSource(seed))
	t := table.New("p", []table.ColumnDef{
		{Name: "a", Typ: table.TInt64},
		{Name: "b", Typ: table.TString},
		{Name: "h", Typ: table.TInt64},
		{Name: "x", Typ: table.TFloat64},
	})
	bs := []string{"p", "q", "r", "s", "t", "u"}
	for i := 0; i < rows; i++ {
		var a, b, h, x table.Value
		if r.Intn(11) == 0 {
			a = table.Null(table.TInt64)
		} else {
			a = table.Int(int64(r.Intn(7)))
		}
		if r.Intn(13) == 0 {
			b = table.Null(table.TString)
		} else {
			b = table.Str(bs[r.Intn(len(bs))])
		}
		if r.Intn(17) == 0 {
			h = table.Null(table.TInt64)
		} else {
			h = table.Int(int64(r.Intn(ndvHigh)))
		}
		if r.Intn(9) == 0 {
			x = table.Null(table.TFloat64)
		} else {
			x = table.Float(float64(r.Intn(400)) / 4)
		}
		t.AppendRow(a, b, h, x)
	}
	return t
}

// allAggKinds is one aggregate of every supported kind over the value column
// (ordinal 3) plus COUNT(*) — including the mergeable AVG state.
func allAggKinds() []Agg {
	return []Agg{
		CountStar(),
		{Kind: AggCount, Col: 3, Name: "cx"},
		{Kind: AggSum, Col: 3, Name: "sx"},
		{Kind: AggSum, Col: 2, Name: "sh"},
		{Kind: AggMin, Col: 3, Name: "mn"},
		{Kind: AggMax, Col: 1, Name: "mxb"},
		{Kind: AggAvg, Col: 3, Name: "ax"},
	}
}

// assertTablesIdentical requires got and want to match row-for-row,
// column-for-column (same order, same values — byte-identical output).
func assertTablesIdentical(t *testing.T, got, want *table.Table) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("shape mismatch: got %v, want %v", got, want)
	}
	for j := 0; j < want.NumCols(); j++ {
		if got.Col(j).Name() != want.Col(j).Name() {
			t.Fatalf("column %d named %q, want %q", j, got.Col(j).Name(), want.Col(j).Name())
		}
		for i := 0; i < want.NumRows(); i++ {
			gv, wv := got.Col(j).Value(i), want.Col(j).Value(i)
			if !gv.Equal(wv) {
				t.Fatalf("row %d col %q: got %v, want %v", i, want.Col(j).Name(), gv, wv)
			}
		}
	}
}

// canonicalRows renders a table as sorted "key|...|vals" strings, the
// canonical group ordering used to compare hash and sort operators.
func canonicalRows(tb *table.Table) []string {
	out := make([]string, tb.NumRows())
	for i := 0; i < tb.NumRows(); i++ {
		s := ""
		for j := 0; j < tb.NumCols(); j++ {
			v := tb.Col(j).Value(i)
			s += "|" + v.String()
			if v.Null {
				s += "\x00"
			}
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// TestParallelGroupByDifferential is the randomized differential suite: for
// several seeds, NDV regimes, group-column counts and worker counts, the
// morsel-parallel operator must produce output byte-identical to sequential
// GroupByHash (including group order) and canonically equal to GroupBySort,
// across all aggregate kinds and NULL-heavy data.
func TestParallelGroupByDifferential(t *testing.T) {
	groupings := [][]int{nil, {0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}}
	for seed := int64(1); seed <= 4; seed++ {
		for _, ndv := range []int{3, 5000} {
			tb := mkParTable(6000, ndv, seed)
			aggs := allAggKinds()
			for _, cols := range groupings {
				seq := GroupByHash(tb, cols, aggs, "seq")
				var srt *table.Table
				if len(cols) > 0 { // GroupBySort cannot build an empty-key index
					srt = GroupBySort(tb, cols, aggs, "srt")
				}
				for _, w := range []int{2, 3, 7} {
					name := fmt.Sprintf("seed=%d/ndv=%d/cols=%v/w=%d", seed, ndv, cols, w)
					// Drive the morsel core directly with a small morsel size:
					// the public entry points would fall back to sequential
					// below the size cutoff.
					outs, st, err := groupByMultiMorsel(nil, tb, []MultiQuery{{GroupCols: cols, Aggs: aggs, OutName: "par"}}, w, 317)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if st.Workers != w {
						t.Fatalf("%s: ran with %d workers", name, st.Workers)
					}
					par := outs[0]
					assertTablesIdentical(t, par, seq)
					if srt != nil {
						g, s := canonicalRows(par), canonicalRows(srt)
						for i := range s {
							if g[i] != s[i] {
								t.Fatalf("%s: canonical row %d: parallel %q, sort %q", name, i, g[i], s[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestParallelMultiQueryDifferential checks the shared-scan variant: every
// query of a multi-query morsel scan must match the sequential shared scan
// byte-for-byte.
func TestParallelMultiQueryDifferential(t *testing.T) {
	for seed := int64(5); seed <= 7; seed++ {
		tb := mkParTable(5000, 900, seed)
		queries := []MultiQuery{
			{GroupCols: []int{0}, Aggs: []Agg{CountStar(), {Kind: AggAvg, Col: 3, Name: "ax"}}, OutName: "q0"},
			{GroupCols: []int{1, 2}, Aggs: allAggKinds(), OutName: "q1"},
			{GroupCols: nil, Aggs: []Agg{{Kind: AggSum, Col: 3, Name: "sx"}}, OutName: "q2"},
			{GroupCols: []int{2}, Aggs: []Agg{{Kind: AggMin, Col: 1, Name: "mnb"}, {Kind: AggMax, Col: 3, Name: "mx"}}, OutName: "q3"},
		}
		seq, err := GroupByHashMulti(tb, queries)
		if err != nil {
			t.Fatal(err)
		}
		outs, _, err := groupByMultiMorsel(nil, tb, queries, 4, 233)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			assertTablesIdentical(t, outs[qi], seq[qi])
		}
	}
}

// TestParallelEntryPointsCutoff verifies the public entry points: small
// inputs take the sequential path (Workers == 1), and the results still
// match; a large-enough input actually goes parallel.
func TestParallelEntryPointsCutoff(t *testing.T) {
	small := mkParTable(2000, 50, 11)
	out, st := GroupByHashParallel(small, []int{0, 1}, []Agg{CountStar()}, "g", 8)
	if st.Workers != 1 {
		t.Fatalf("small input used %d workers", st.Workers)
	}
	assertTablesIdentical(t, out, GroupByHash(small, []int{0, 1}, []Agg{CountStar()}, "g"))

	big := mkParTable(3*morselRows, 40, 12)
	out, st = GroupByHashParallel(big, []int{0}, []Agg{CountStar(), {Kind: AggAvg, Col: 3, Name: "ax"}}, "g", 8)
	if st.Workers < 2 {
		t.Fatalf("large input stayed sequential (workers=%d)", st.Workers)
	}
	if st.Morsels != 3 {
		t.Fatalf("morsels = %d, want 3", st.Morsels)
	}
	assertTablesIdentical(t, out, GroupByHash(big, []int{0}, []Agg{CountStar(), {Kind: AggAvg, Col: 3, Name: "ax"}}, "g"))

	outs, st, err := GroupByHashMultiParallel(big, []MultiQuery{{GroupCols: []int{1}, Aggs: []Agg{CountStar()}, OutName: "q"}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers < 2 {
		t.Fatalf("multi large input stayed sequential")
	}
	assertTablesIdentical(t, outs[0], GroupByHash(big, []int{1}, []Agg{CountStar()}, "q"))
}

func TestEffectiveWorkers(t *testing.T) {
	cases := []struct{ rows, req, want int }{
		{100, 8, 1},                // tiny: sequential
		{morselRows - 1, 4, 1},     // below one morsel
		{2 * morselRows, 8, 2},     // two morsels cap two workers
		{10 * morselRows, 4, 4},    // request below cap
		{10 * morselRows, 0, 1},    // knob off
		{10 * morselRows, -5, 1},   // negative resolved by caller, not here
		{100 * morselRows, 16, 16}, // plenty of rows
	}
	for _, c := range cases {
		if got := effectiveWorkers(c.rows, c.req); got != c.want {
			t.Fatalf("effectiveWorkers(%d, %d) = %d, want %d", c.rows, c.req, got, c.want)
		}
	}
}

// TestGroupHashGrowth pushes a single hash table far past its initial
// capacity: every key distinct, so the table must rehash several times and
// still produce one group per row.
func TestGroupHashGrowth(t *testing.T) {
	tb := table.New("g", []table.ColumnDef{{Name: "k", Typ: table.TInt64}})
	const n = 50_000
	for i := 0; i < n; i++ {
		tb.AppendRow(table.Int(int64(i)))
	}
	out := GroupByHash(tb, []int{0}, []Agg{CountStar()}, "o")
	if out.NumRows() != n {
		t.Fatalf("got %d groups, want %d", out.NumRows(), n)
	}
	for i := 0; i < n; i++ {
		if out.ColByName("cnt").Value(i).I != 1 {
			t.Fatalf("group %d count %v", i, out.ColByName("cnt").Value(i))
		}
	}
}

func TestAvgAggregate(t *testing.T) {
	tb := table.New("t", []table.ColumnDef{
		{Name: "g", Typ: table.TInt64},
		{Name: "v", Typ: table.TInt64},
	})
	tb.AppendRow(table.Int(1), table.Int(10))
	tb.AppendRow(table.Int(1), table.Int(20))
	tb.AppendRow(table.Int(1), table.Null(table.TInt64))
	tb.AppendRow(table.Int(2), table.Null(table.TInt64))
	out := GroupByHash(tb, []int{0}, []Agg{{Kind: AggAvg, Col: 1, Name: "av"}}, "o")
	for i := 0; i < out.NumRows(); i++ {
		switch out.Col(0).Value(i).I {
		case 1:
			if v := out.ColByName("av").Value(i); v.Null || v.F != 15 {
				t.Fatalf("avg = %v, want 15", v)
			}
		case 2:
			if !out.ColByName("av").Value(i).Null {
				t.Fatal("all-NULL group must average to NULL")
			}
		}
	}
}

func TestAvgRollupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on AVG rollup")
		}
	}()
	(Agg{Kind: AggAvg, Col: 1, Name: "av"}).Rollup(0)
}
