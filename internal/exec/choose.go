package exec

import (
	"fmt"

	"gbmqo/internal/table"
)

// radixMinGroups is the NDV estimate below which the morsel path's
// worker-local tables + merge stay cheaper than the radix kernel's two extra
// passes over the input: merging w small tables only touches w·NDV groups,
// which is noise until the group count rivals the morsel size. The scatter
// pass writes 12 bytes per input row, so the merge it replaces has to be
// tens of thousands of groups wide before the trade pays off.
const radixMinGroups = 32768

// denseMaxBlowup bounds the dense domain relative to the input row count: a
// group-id array up to 8× the rows still costs less to allocate and walk than
// hashing every row; beyond that the kernel would mostly touch empty slots.
const denseMaxBlowup = 8

// denseSmallDomain is the domain size below which the dense kernel is
// admitted without consulting the blowup ratio (the array is a few KB).
const denseSmallDomain = 4096

// denseMinRows is the input size below which the dense kernel's fixed costs —
// allocating and zeroing per-worker domain-sized group-id arrays, plus the
// batched decode machinery — are not amortized: a presized hash table over a
// few thousand rows is already cache-resident and the absolute win would be
// microseconds, while the array setup is a real constant. Below this the
// chooser stays on the hash ladder.
const denseMinRows = 1 << 16

// ChooserInput is what the per-node physical operator chooser knows when it
// picks a kernel: table-local facts (rows, dictionary-derived dense domain),
// statistics estimates (NDV), the requested parallelism, and the admission
// gate.
type ChooserInput struct {
	// Rows is the input row count.
	Rows int
	// GroupCols is the number of grouping columns (0 = single global group).
	GroupCols int
	// NDV is the statistics estimate of the number of output groups; 0 means
	// unknown (no stats threaded), which disables the presize hint and the
	// radix kernel.
	NDV float64
	// DenseDomain is Π(dictSize+1) over the group columns (see DenseDomain);
	// 0 means inapplicable.
	DenseDomain int
	// Workers is the requested intra-operator DOP (post ResolveWorkers).
	Workers int
	// HashStateBytes estimates the hash kernel's working state — the
	// admission quantity of the hash → sort degradation ladder; 0 disables
	// the sort fallback (no budget or no estimate).
	HashStateBytes int64
	// NAggs is the number of aggregate columns.
	NAggs int
	// Budget is the admission gate (nil or unlimited admits everything).
	Budget *MemBudget
}

// KernelChoice is the chooser's decision: the kernel to run, its worker
// count, the hash presize hint, a human-readable reason, and any preferred
// kernels the budget rejected on the way down the ladder.
type KernelChoice struct {
	Kind      KernelKind
	Workers   int
	SizeHint  int
	Reason    string
	Fallbacks []KernelFallback
}

// ChooseKernel picks the physical aggregation kernel for one plan node from
// its statistics and the memory budget. The ladder:
//
//  1. dense — for parallel runs (≥ 2 effective workers) over inputs large
//     enough to amortize the array setup (rows ≥ denseMinRows) whose
//     group-code domain is small enough that flat accumulator arrays beat
//     hashing (domain ≤ denseMaxDomain and at most denseMaxBlowup× the row
//     count, or tiny outright), when the budget admits the per-worker
//     arrays. Dense and radix are the parallel-regime rungs: their edge over
//     the morsel path is eliminating the cross-worker merge, so sequential
//     plans — where no merge exists and scan cost dominates — keep the
//     proven hash ladder;
//  2. radix — for parallel high-NDV aggregation (estimated groups ≥
//     radixMinGroups with ≥ 2 effective workers), when the budget admits the
//     hash + scatter passes;
//  3. sort — when the budget cannot admit the hash kernel's estimated state
//     (the existing degradation rung: O(rows) working state);
//  4. hash — the default, presized from the NDV estimate and morsel-parallel
//     when the worker budget and input size allow.
//
// A kernel rejected by budget admission is recorded in Fallbacks and the
// ladder continues — kernel choice degrades, it never errors.
func ChooseKernel(in ChooserInput) KernelChoice {
	if in.GroupCols == 0 || in.Rows == 0 {
		return KernelChoice{Kind: KernelHash, Workers: 1, Reason: "trivial input (no group columns or no rows)"}
	}
	var c KernelChoice
	w := effectiveWorkers(in.Rows, in.Workers)

	if w >= 2 && in.Rows >= denseMinRows && in.DenseDomain > 0 && (in.DenseDomain <= denseSmallDomain || in.DenseDomain <= denseMaxBlowup*in.Rows) {
		need := int64(in.DenseDomain)*4 + denseBatch*4
		if w > 1 {
			need *= int64(w + 1)
		}
		if !in.Budget.WouldExceed(need) {
			c.Kind = KernelDense
			c.Workers = w
			c.Reason = fmt.Sprintf("dense domain %d fits %d rows; flat array beats hashing", in.DenseDomain, in.Rows)
			return c
		}
		c.Fallbacks = append(c.Fallbacks, KernelFallback{
			Kind:   KernelDense,
			Detail: fmt.Sprintf("needs %dB of accumulator arrays, over budget", need),
		})
	}

	if w >= 2 && in.NDV >= radixMinGroups {
		need := int64(in.Rows)*12 + in.HashStateBytes
		if !in.Budget.WouldExceed(need) {
			c.Kind = KernelRadix
			c.Workers = w
			c.Reason = fmt.Sprintf("~%.0f groups ≥ %d: partitioned build avoids the %d-way local-table merge", in.NDV, radixMinGroups, w)
			return c
		}
		c.Fallbacks = append(c.Fallbacks, KernelFallback{
			Kind:   KernelRadix,
			Detail: fmt.Sprintf("needs %dB of hash+scatter state, over budget", need),
		})
	}

	if in.HashStateBytes > 0 && in.Budget.WouldExceed(in.HashStateBytes) {
		c.Kind = KernelSort
		c.Workers = 1
		c.Reason = fmt.Sprintf("estimated hash state %dB over budget; O(rows) sort aggregation", in.HashStateBytes)
		return c
	}

	c.Kind = KernelHash
	c.Workers = w
	if hint := int(in.NDV); hint > 0 {
		if hint > in.Rows {
			hint = in.Rows
		}
		c.SizeHint = hint
	}
	switch {
	case w > 1:
		c.Reason = fmt.Sprintf("morsel-parallel hash, %d workers (est. %.0f groups)", w, in.NDV)
	case c.SizeHint > 0:
		c.Reason = fmt.Sprintf("hash, presized for ~%d groups", c.SizeHint)
	default:
		c.Reason = "hash (default)"
	}
	return c
}

// AdaptiveHints carries per-node statistics into the adaptive dispatch.
type AdaptiveHints struct {
	// NDV is the estimated number of output groups (0 = unknown).
	NDV float64
	// HashStateBytes is the engine's working-state estimate for the hash
	// kernel, used for sort-fallback admission (0 = no estimate / no budget).
	HashStateBytes int64
	// Workers is the requested intra-operator DOP.
	Workers int
}

// GroupByAdaptiveGov runs the per-node kernel chooser and dispatches to the
// chosen kernel. It is the single entry point the engine (and the kernel
// benchmark) uses, so measured adaptive behaviour is engine behaviour. The
// returned stats name the kernel that actually ran, the chooser's reason, and
// any budget-rejected fallbacks.
func GroupByAdaptiveGov(gov *Gov, t *table.Table, groupCols []int, aggs []Agg, outName string, hints AdaptiveHints) (*table.Table, KernelStats, error) {
	choice := ChooseKernel(ChooserInput{
		Rows:           t.NumRows(),
		GroupCols:      len(groupCols),
		NDV:            hints.NDV,
		DenseDomain:    DenseDomain(t, groupCols),
		Workers:        hints.Workers,
		HashStateBytes: hints.HashStateBytes,
		NAggs:          len(aggs),
		Budget:         gov.Budget(),
	})
	var out *table.Table
	var ks KernelStats
	var err error
	switch choice.Kind {
	case KernelDense:
		out, ks, err = GroupByDenseGov(gov, t, groupCols, aggs, outName, choice.Workers)
	case KernelRadix:
		out, ks, err = GroupByRadixParallelGov(gov, t, groupCols, aggs, outName, choice.Workers)
	case KernelSort:
		out, err = GroupBySortGov(gov, t, groupCols, aggs, outName)
		ks = KernelStats{Kind: KernelSort, Workers: 1}
		if out != nil {
			ks.Groups = out.NumRows()
		}
	default:
		if choice.Workers > 1 {
			var st ParStats
			out, st, err = groupByHashParallelSized(gov, t, groupCols, aggs, outName, choice.Workers, choice.SizeHint)
			ks = KernelStats{Kind: KernelHash, Workers: st.Workers, Merge: st.Merge, RehashesAvoided: st.RehashesAvoided}
			if out != nil {
				ks.Groups = out.NumRows()
			}
		} else {
			out, ks, err = groupByHashSized(gov, t, groupCols, aggs, outName, choice.SizeHint)
		}
	}
	ks.Reason = choice.Reason
	ks.Fallbacks = choice.Fallbacks
	return out, ks, err
}
