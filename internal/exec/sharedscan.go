package exec

import (
	"fmt"

	"gbmqo/internal/table"
)

// MultiQuery is one member of a shared scan: a grouping column list with its
// aggregates and output name.
type MultiQuery struct {
	GroupCols []int
	Aggs      []Agg
	OutName   string
}

// GroupByHashMulti computes several Group By queries in ONE pass over t —
// the shared-scan technique of §5.1 ("the basic ideas is to take advantage
// of commonality across Group By queries using techniques such as shared
// scans…", PipeHash-style): every row is read once and fed to each query's
// hash aggregate, so the table's row width is paid once instead of once per
// query. Results are returned in query order.
func GroupByHashMulti(t *table.Table, queries []MultiQuery) []*table.Table {
	if len(queries) == 0 {
		return nil
	}
	validateMulti(t, queries)
	n := t.NumRows()
	image, stride := t.RowImage()

	type state struct {
		ht        *groupHash
		accs      []accumulator
		firstRows []int32
	}
	states := make([]*state, len(queries))
	for qi, q := range queries {
		rd := rowReader{image: image, stride: stride, offs: make([]int, len(q.GroupCols))}
		for i, c := range q.GroupCols {
			rd.offs[i] = 4 * c
		}
		st := &state{ht: newGroupHash(n, rd), accs: make([]accumulator, len(q.Aggs))}
		for i, a := range q.Aggs {
			st.accs[i] = newAccumulator(a, t)
		}
		states[qi] = st
	}
	for row := 0; row < n; row++ {
		for _, st := range states {
			g, isNew := st.ht.groupOf(row)
			if isNew {
				st.firstRows = append(st.firstRows, int32(row))
			}
			for _, acc := range st.accs {
				acc.observe(g, row)
			}
		}
	}
	out := make([]*table.Table, len(queries))
	for qi, q := range queries {
		out[qi] = emitGroups(t, q.GroupCols, q.Aggs, states[qi].accs, states[qi].firstRows, q.OutName)
	}
	return out
}

// validateMulti panics on malformed shared-scan requests; callers are
// internal and a bad request is always a planner bug.
func validateMulti(t *table.Table, queries []MultiQuery) {
	for _, q := range queries {
		for _, c := range q.GroupCols {
			if c < 0 || c >= t.NumCols() {
				panic(fmt.Sprintf("exec: shared scan group column %d out of range", c))
			}
		}
	}
}
