package exec

import (
	"gbmqo/internal/table"
)

// MultiQuery is one member of a shared scan: a grouping column list with its
// aggregates and output name.
type MultiQuery struct {
	GroupCols []int
	Aggs      []Agg
	OutName   string
	// SizeHint, when > 0, presizes this query's group table for that many
	// expected groups (see newGroupHashSized).
	SizeHint int
}

// queryState is one query's aggregation state during a (shared) scan: its
// hash table, accumulators, and the first row of each group in the order the
// scan discovered them.
type queryState struct {
	ht        *groupHash
	accs      []accumulator
	firstRows []int32
}

// newQueryState builds the aggregation state for one query of a scan over t.
// budget, when non-nil, is charged for the state's hash-table slots as they
// grow.
func newQueryState(t *table.Table, image []byte, stride int, q MultiQuery, budget *MemBudget) *queryState {
	rd := rowReader{image: image, stride: stride, offs: make([]int, len(q.GroupCols)), seed: hashSeed.Load()}
	for i, c := range q.GroupCols {
		rd.offs[i] = 4 * c
	}
	st := &queryState{ht: newGroupHashSized(rd, budget, q.SizeHint), accs: make([]accumulator, len(q.Aggs))}
	for i, a := range q.Aggs {
		st.accs[i] = newAccumulator(a, t)
	}
	return st
}

// observe feeds one row into the query's aggregation state.
func (st *queryState) observe(row int) {
	g, isNew := st.ht.groupOf(row)
	if isNew {
		st.firstRows = append(st.firstRows, int32(row))
	}
	for _, acc := range st.accs {
		acc.observe(g, row)
	}
}

// chargedBytes is the budget charge this state currently holds.
func (st *queryState) chargedBytes() int64 {
	if st == nil {
		return 0
	}
	return st.ht.charged
}

// GroupByHashMulti computes several Group By queries in ONE pass over t —
// the shared-scan technique of §5.1 ("the basic ideas is to take advantage
// of commonality across Group By queries using techniques such as shared
// scans…", PipeHash-style): every row is read once and fed to each query's
// hash aggregate, so the table's row width is paid once instead of once per
// query. Results are returned in query order. A malformed request (group or
// aggregate column out of range) returns an error.
func GroupByHashMulti(t *table.Table, queries []MultiQuery) ([]*table.Table, error) {
	return GroupByHashMultiGov(nil, t, queries)
}

// GroupByHashMultiGov is the governed shared scan: context polled every
// cancelCheckRows rows, per-query hash state charged against the budget.
func GroupByHashMultiGov(gov *Gov, t *table.Table, queries []MultiQuery) ([]*table.Table, error) {
	outs, _, err := GroupByHashMultiStatsGov(gov, t, queries)
	return outs, err
}

// GroupByHashMultiStatsGov is GroupByHashMultiGov returning per-query kernel
// stats (group counts and rehashes avoided by SizeHint presizing), so the
// engine can attribute shared-scan nodes in its execution report.
func GroupByHashMultiStatsGov(gov *Gov, t *table.Table, queries []MultiQuery) ([]*table.Table, []KernelStats, error) {
	if len(queries) == 0 {
		return nil, nil, nil
	}
	if err := validateMulti(t, queries); err != nil {
		return nil, nil, err
	}
	n := t.NumRows()
	image, stride := t.RowImage()
	budget := gov.Budget()

	states := make([]*queryState, len(queries))
	defer func() {
		for _, st := range states {
			budget.Release(st.chargedBytes())
		}
	}()
	for qi, q := range queries {
		states[qi] = newQueryState(t, image, stride, q, budget)
	}
	for row := 0; row < n; row++ {
		if row&(cancelCheckRows-1) == 0 {
			Testing.Fire("exec.hash.batch")
			if err := gov.Err(); err != nil {
				return nil, nil, err
			}
		}
		for _, st := range states {
			st.observe(row)
		}
	}
	var accBytes int64
	for _, st := range states {
		accBytes += accStateBytes(len(st.firstRows), len(st.accs))
	}
	budget.Add(accBytes)
	defer budget.Release(accBytes)
	out := make([]*table.Table, len(queries))
	stats := make([]KernelStats, len(queries))
	for qi, q := range queries {
		out[qi] = emitGroups(t, q.GroupCols, q.Aggs, states[qi].accs, states[qi].firstRows, nil, q.OutName)
		stats[qi] = KernelStats{
			Kind:            KernelHash,
			Workers:         1,
			Groups:          len(states[qi].firstRows),
			RehashesAvoided: states[qi].ht.rehashesAvoided(),
		}
	}
	return out, stats, nil
}

// validateMulti rejects malformed shared-scan requests with an error the
// engine propagates to the caller; only genuine operator invariants panic.
func validateMulti(t *table.Table, queries []MultiQuery) error {
	for _, q := range queries {
		if err := validateRequest(t, q.GroupCols, q.Aggs); err != nil {
			return err
		}
	}
	return nil
}
