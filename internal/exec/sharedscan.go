package exec

import (
	"fmt"

	"gbmqo/internal/table"
)

// MultiQuery is one member of a shared scan: a grouping column list with its
// aggregates and output name.
type MultiQuery struct {
	GroupCols []int
	Aggs      []Agg
	OutName   string
}

// queryState is one query's aggregation state during a (shared) scan: its
// hash table, accumulators, and the first row of each group in the order the
// scan discovered them.
type queryState struct {
	ht        *groupHash
	accs      []accumulator
	firstRows []int32
}

// newQueryState builds the aggregation state for one query of a scan over t.
func newQueryState(t *table.Table, image []byte, stride int, q MultiQuery) *queryState {
	rd := rowReader{image: image, stride: stride, offs: make([]int, len(q.GroupCols))}
	for i, c := range q.GroupCols {
		rd.offs[i] = 4 * c
	}
	st := &queryState{ht: newGroupHash(rd), accs: make([]accumulator, len(q.Aggs))}
	for i, a := range q.Aggs {
		st.accs[i] = newAccumulator(a, t)
	}
	return st
}

// observe feeds one row into the query's aggregation state.
func (st *queryState) observe(row int) {
	g, isNew := st.ht.groupOf(row)
	if isNew {
		st.firstRows = append(st.firstRows, int32(row))
	}
	for _, acc := range st.accs {
		acc.observe(g, row)
	}
}

// GroupByHashMulti computes several Group By queries in ONE pass over t —
// the shared-scan technique of §5.1 ("the basic ideas is to take advantage
// of commonality across Group By queries using techniques such as shared
// scans…", PipeHash-style): every row is read once and fed to each query's
// hash aggregate, so the table's row width is paid once instead of once per
// query. Results are returned in query order.
func GroupByHashMulti(t *table.Table, queries []MultiQuery) []*table.Table {
	if len(queries) == 0 {
		return nil
	}
	validateMulti(t, queries)
	n := t.NumRows()
	image, stride := t.RowImage()

	states := make([]*queryState, len(queries))
	for qi, q := range queries {
		states[qi] = newQueryState(t, image, stride, q)
	}
	for row := 0; row < n; row++ {
		for _, st := range states {
			st.observe(row)
		}
	}
	out := make([]*table.Table, len(queries))
	for qi, q := range queries {
		out[qi] = emitGroups(t, q.GroupCols, q.Aggs, states[qi].accs, states[qi].firstRows, nil, q.OutName)
	}
	return out
}

// validateMulti panics on malformed shared-scan requests; callers are
// internal and a bad request is always a planner bug.
func validateMulti(t *table.Table, queries []MultiQuery) {
	for _, q := range queries {
		for _, c := range q.GroupCols {
			if c < 0 || c >= t.NumCols() {
				panic(fmt.Sprintf("exec: shared scan group column %d out of range", c))
			}
		}
	}
}
