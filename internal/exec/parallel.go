package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gbmqo/internal/table"
)

// morselRows is the number of rows in one parallel work unit. Morsels are
// handed to workers through an atomic counter (morsel-driven scheduling), so
// the unit must be large enough to amortize the counter bump and small enough
// to load-balance skewed group distributions across workers. It also bounds
// cancellation latency: workers poll the governing context between morsels,
// so a cancelled plan stops within one morsel's worth of work per worker.
const morselRows = 16384

// ParStats reports how one parallel aggregation ran.
type ParStats struct {
	// Workers is the number of morsel workers actually used (1 = the operator
	// fell back to the sequential path).
	Workers int
	// Morsels is the number of work units the row range was split into.
	Morsels int
	// Merge is the wall time spent merging worker-local hash tables into the
	// final result.
	Merge time.Duration
	// RehashesAvoided counts hash-table grow() doublings skipped because the
	// group tables were presized from an NDV estimate.
	RehashesAvoided int
}

// ResolveWorkers turns a parallelism knob into a concrete worker budget:
// 0 disables intra-operator parallelism, negative selects GOMAXPROCS, and
// positive values are used as-is.
func ResolveWorkers(parallelism int) int {
	if parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// effectiveWorkers applies the size cutoff to a requested worker count. Going
// parallel costs one goroutine plus a merge phase that re-touches every
// output group once per worker, so it only pays when each worker aggregates
// at least one full morsel of rows (at the calibrated cost coefficients —
// ~40 units to hash a row vs ~200 to build a group — one morsel of hashing
// amortizes a merge of several thousand groups). Anything smaller, i.e. the
// typical temp-table re-aggregation, stays sequential.
func effectiveWorkers(rows, requested int) int {
	if requested < 1 {
		return 1
	}
	if max := rows / morselRows; requested > max {
		requested = max
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// GroupByHashParallel is GroupByHash with morsel-driven parallelism: the row
// range is split into fixed-size morsels pulled from an atomic counter by
// `workers` goroutines, each aggregating into a thread-local hash table, and
// the local tables are merged by combining partial aggregate states (see
// accumulator.mergePartial). Group order matches the sequential operator
// exactly (global first-appearance order), so results are byte-identical —
// up to float summation order for SUM/AVG over TFloat64, where parallel
// partials may round differently. Inputs below the size cutoff run the
// sequential operator; the returned ParStats says what happened. It is the
// ungoverned convenience form of GroupByHashParallelGov; a malformed request
// panics.
func GroupByHashParallel(t *table.Table, groupCols []int, aggs []Agg, outName string, workers int) (*table.Table, ParStats) {
	out, st, err := GroupByHashParallelGov(nil, t, groupCols, aggs, outName, workers)
	if err != nil {
		panic(err)
	}
	return out, st
}

// GroupByHashParallelGov is the governed parallel hash aggregate: workers
// poll gov's context between morsels, charge their thread-local hash state
// against gov's budget, and recover their own panics — an operator bug in
// one worker surfaces as a *ExecError from this call instead of crashing
// the process.
func GroupByHashParallelGov(gov *Gov, t *table.Table, groupCols []int, aggs []Agg, outName string, workers int) (*table.Table, ParStats, error) {
	return groupByHashParallelSized(gov, t, groupCols, aggs, outName, workers, 0)
}

// groupByHashParallelSized is GroupByHashParallelGov with a presize hint for
// the group tables (0 = default sizing), used by the adaptive dispatch.
func groupByHashParallelSized(gov *Gov, t *table.Table, groupCols []int, aggs []Agg, outName string, workers, sizeHint int) (*table.Table, ParStats, error) {
	w := effectiveWorkers(t.NumRows(), workers)
	if w <= 1 {
		out, ks, err := groupByHashSized(gov, t, groupCols, aggs, outName, sizeHint)
		return out, ParStats{Workers: 1, RehashesAvoided: ks.RehashesAvoided}, err
	}
	queries := []MultiQuery{{GroupCols: groupCols, Aggs: aggs, OutName: outName, SizeHint: sizeHint}}
	outs, st, err := groupByMultiMorsel(gov, t, queries, w, morselRows)
	if err != nil {
		return nil, st, err
	}
	return outs[0], st, nil
}

// GroupByHashMultiParallel is GroupByHashMulti with morsel-driven
// parallelism: each worker reads a morsel once and feeds every query of the
// shared scan from that single read, preserving the §5.1 read-once property
// while splitting the scan across cores. Small inputs fall back to the
// sequential shared scan. A malformed request returns an error.
func GroupByHashMultiParallel(t *table.Table, queries []MultiQuery, workers int) ([]*table.Table, ParStats, error) {
	return GroupByHashMultiParallelGov(nil, t, queries, workers)
}

// GroupByHashMultiParallelGov is the governed parallel shared scan (see
// GroupByHashParallelGov for the governance contract).
func GroupByHashMultiParallelGov(gov *Gov, t *table.Table, queries []MultiQuery, workers int) ([]*table.Table, ParStats, error) {
	if len(queries) == 0 {
		return nil, ParStats{Workers: 1}, nil
	}
	w := effectiveWorkers(t.NumRows(), workers)
	if w <= 1 {
		outs, err := GroupByHashMultiGov(gov, t, queries)
		return outs, ParStats{Workers: 1}, err
	}
	return groupByMultiMorsel(gov, t, queries, w, morselRows)
}

// groupByMultiMorsel is the two-phase parallel core shared by the single and
// multi-query entry points. morsel is the work-unit size in rows (always
// morselRows in production; tests shrink it to exercise multi-worker merges
// on small tables).
//
// Phase 1 (local): w workers pull morsel indices from an atomic counter and
// aggregate their rows into per-worker, per-query hash tables. Because the
// counter increases monotonically, each worker processes its morsels in
// ascending row order, so a worker-local group's firstRow is the minimum row
// of that group within the worker's share.
//
// Phase 2 (merge): for each query, worker-local groups are folded into a
// final hash table by representative row; aggregate states merge via
// mergePartial (counts add, sums add, extremes compare) — partial states, not
// rows. The final group order is the minimum firstRow across workers, which
// equals the global first-appearance order of the sequential scan, making the
// output deterministic and identical to GroupByHash/GroupByHashMulti.
//
// Failure semantics: a panicking worker is recovered in its own goroutine
// and reported as a *ExecError naming the worker; the remaining workers
// drain (they stop at the next morsel boundary via the shared failed flag),
// all budget charges are released, and no partial result escapes. A
// cancelled context stops every worker at its next morsel boundary and
// returns the context's error.
func groupByMultiMorsel(gov *Gov, t *table.Table, queries []MultiQuery, w, morsel int) ([]*table.Table, ParStats, error) {
	if err := validateMulti(t, queries); err != nil {
		return nil, ParStats{}, err
	}
	n := t.NumRows()
	// Force lazily-built shared state (the scan image and the dictionary rank
	// tables the accumulators read) before fan-out, so workers only read.
	image, stride := t.RowImage()
	budget := gov.Budget()
	finals := make([]*queryState, len(queries))
	locals := make([][]*queryState, w)
	defer func() {
		var freed int64
		for _, st := range finals {
			freed += st.chargedBytes()
		}
		for _, states := range locals {
			for _, st := range states {
				freed += st.chargedBytes()
			}
		}
		budget.Release(freed)
	}()
	for qi, q := range queries {
		finals[qi] = newQueryState(t, image, stride, q, budget)
	}
	morsels := (n + morsel - 1) / morsel

	var next atomic.Int64
	var failed atomic.Bool
	var workerErr atomic.Pointer[ExecError]
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					failed.Store(true)
					workerErr.CompareAndSwap(nil, &ExecError{
						Step: fmt.Sprintf("morsel worker %d", wi),
						Err:  recoveredError(p),
					})
				}
			}()
			// Publish the slice before filling it so the release path sees
			// every charged state even if a constructor panics mid-build.
			states := make([]*queryState, len(queries))
			locals[wi] = states
			for qi, q := range queries {
				// A worker sees ~1/w of the rows, so its local table holds at
				// most that many groups — clamp the presize hint accordingly.
				if lim := n/w + 1; q.SizeHint > lim {
					q.SizeHint = lim
				}
				states[qi] = newQueryState(t, image, stride, q, budget)
			}
			for {
				if failed.Load() || gov.Err() != nil {
					return
				}
				Testing.Fire("exec.morsel.worker")
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				hi := (m + 1) * morsel
				if hi > n {
					hi = n
				}
				for row := m * morsel; row < hi; row++ {
					for _, st := range states {
						st.observe(row)
					}
				}
			}
		}(wi)
	}
	wg.Wait()

	if e := workerErr.Load(); e != nil {
		return nil, ParStats{Workers: w, Morsels: morsels}, e
	}
	if err := gov.Err(); err != nil {
		return nil, ParStats{Workers: w, Morsels: morsels}, err
	}

	mergeStart := time.Now()
	out := make([]*table.Table, len(queries))
	rehashes := 0
	for qi, q := range queries {
		final := finals[qi]
		for _, states := range locals {
			st := states[qi]
			for lg, row := range st.firstRows {
				g, isNew := final.ht.groupOf(int(row))
				if isNew {
					final.firstRows = append(final.firstRows, row)
				} else if row < final.firstRows[g] {
					final.firstRows[g] = row
				}
				for ai, acc := range final.accs {
					acc.mergePartial(g, st.accs[ai], lg)
				}
			}
		}
		// Emit in global first-appearance order to match the sequential path.
		order := make([]int, len(final.firstRows))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return final.firstRows[order[a]] < final.firstRows[order[b]]
		})
		out[qi] = emitGroups(t, q.GroupCols, q.Aggs, final.accs, final.firstRows, order, q.OutName)
		rehashes += final.ht.rehashesAvoided()
	}
	return out, ParStats{Workers: w, Morsels: morsels, Merge: time.Since(mergeStart), RehashesAvoided: rehashes}, nil
}
