package exec

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gbmqo/internal/table"
)

// morselRows is the number of rows in one parallel work unit. Morsels are
// handed to workers through an atomic counter (morsel-driven scheduling), so
// the unit must be large enough to amortize the counter bump and small enough
// to load-balance skewed group distributions across workers.
const morselRows = 16384

// ParStats reports how one parallel aggregation ran.
type ParStats struct {
	// Workers is the number of morsel workers actually used (1 = the operator
	// fell back to the sequential path).
	Workers int
	// Morsels is the number of work units the row range was split into.
	Morsels int
	// Merge is the wall time spent merging worker-local hash tables into the
	// final result.
	Merge time.Duration
}

// ResolveWorkers turns a parallelism knob into a concrete worker budget:
// 0 disables intra-operator parallelism, negative selects GOMAXPROCS, and
// positive values are used as-is.
func ResolveWorkers(parallelism int) int {
	if parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// effectiveWorkers applies the size cutoff to a requested worker count. Going
// parallel costs one goroutine plus a merge phase that re-touches every
// output group once per worker, so it only pays when each worker aggregates
// at least one full morsel of rows (at the calibrated cost coefficients —
// ~40 units to hash a row vs ~200 to build a group — one morsel of hashing
// amortizes a merge of several thousand groups). Anything smaller, i.e. the
// typical temp-table re-aggregation, stays sequential.
func effectiveWorkers(rows, requested int) int {
	if requested < 1 {
		return 1
	}
	if max := rows / morselRows; requested > max {
		requested = max
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// GroupByHashParallel is GroupByHash with morsel-driven parallelism: the row
// range is split into fixed-size morsels pulled from an atomic counter by
// `workers` goroutines, each aggregating into a thread-local hash table, and
// the local tables are merged by combining partial aggregate states (see
// accumulator.mergePartial). Group order matches the sequential operator
// exactly (global first-appearance order), so results are byte-identical —
// up to float summation order for SUM/AVG over TFloat64, where parallel
// partials may round differently. Inputs below the size cutoff run the
// sequential operator; the returned ParStats says what happened.
func GroupByHashParallel(t *table.Table, groupCols []int, aggs []Agg, outName string, workers int) (*table.Table, ParStats) {
	w := effectiveWorkers(t.NumRows(), workers)
	if w <= 1 {
		return GroupByHash(t, groupCols, aggs, outName), ParStats{Workers: 1}
	}
	queries := []MultiQuery{{GroupCols: groupCols, Aggs: aggs, OutName: outName}}
	outs, st := groupByMultiMorsel(t, queries, w, morselRows)
	return outs[0], st
}

// GroupByHashMultiParallel is GroupByHashMulti with morsel-driven
// parallelism: each worker reads a morsel once and feeds every query of the
// shared scan from that single read, preserving the §5.1 read-once property
// while splitting the scan across cores. Small inputs fall back to the
// sequential shared scan.
func GroupByHashMultiParallel(t *table.Table, queries []MultiQuery, workers int) ([]*table.Table, ParStats) {
	if len(queries) == 0 {
		return nil, ParStats{Workers: 1}
	}
	w := effectiveWorkers(t.NumRows(), workers)
	if w <= 1 {
		return GroupByHashMulti(t, queries), ParStats{Workers: 1}
	}
	return groupByMultiMorsel(t, queries, w, morselRows)
}

// groupByMultiMorsel is the two-phase parallel core shared by the single and
// multi-query entry points. morsel is the work-unit size in rows (always
// morselRows in production; tests shrink it to exercise multi-worker merges
// on small tables).
//
// Phase 1 (local): w workers pull morsel indices from an atomic counter and
// aggregate their rows into per-worker, per-query hash tables. Because the
// counter increases monotonically, each worker processes its morsels in
// ascending row order, so a worker-local group's firstRow is the minimum row
// of that group within the worker's share.
//
// Phase 2 (merge): for each query, worker-local groups are folded into a
// final hash table by representative row; aggregate states merge via
// mergePartial (counts add, sums add, extremes compare) — partial states, not
// rows. The final group order is the minimum firstRow across workers, which
// equals the global first-appearance order of the sequential scan, making the
// output deterministic and identical to GroupByHash/GroupByHashMulti.
func groupByMultiMorsel(t *table.Table, queries []MultiQuery, w, morsel int) ([]*table.Table, ParStats) {
	validateMulti(t, queries)
	n := t.NumRows()
	// Force lazily-built shared state (the scan image and the dictionary rank
	// tables the accumulators read) before fan-out, so workers only read.
	image, stride := t.RowImage()
	finals := make([]*queryState, len(queries))
	for qi, q := range queries {
		finals[qi] = newQueryState(t, image, stride, q)
	}
	morsels := (n + morsel - 1) / morsel

	locals := make([][]*queryState, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			states := make([]*queryState, len(queries))
			for qi, q := range queries {
				states[qi] = newQueryState(t, image, stride, q)
			}
			locals[wi] = states
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				hi := (m + 1) * morsel
				if hi > n {
					hi = n
				}
				for row := m * morsel; row < hi; row++ {
					for _, st := range states {
						st.observe(row)
					}
				}
			}
		}(wi)
	}
	wg.Wait()

	mergeStart := time.Now()
	out := make([]*table.Table, len(queries))
	for qi, q := range queries {
		final := finals[qi]
		for _, states := range locals {
			st := states[qi]
			for lg, row := range st.firstRows {
				g, isNew := final.ht.groupOf(int(row))
				if isNew {
					final.firstRows = append(final.firstRows, row)
				} else if row < final.firstRows[g] {
					final.firstRows[g] = row
				}
				for ai, acc := range final.accs {
					acc.mergePartial(g, st.accs[ai], lg)
				}
			}
		}
		// Emit in global first-appearance order to match the sequential path.
		order := make([]int, len(final.firstRows))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return final.firstRows[order[a]] < final.firstRows[order[b]]
		})
		out[qi] = emitGroups(t, q.GroupCols, q.Aggs, final.accs, final.firstRows, order, q.OutName)
	}
	return out, ParStats{Workers: w, Morsels: morsels, Merge: time.Since(mergeStart)}
}
