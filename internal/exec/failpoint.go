package exec

import "sync/atomic"

// TestingHooks holds fault-injection hooks for deterministic robustness
// tests. Production code never installs a hook, so the per-site cost is one
// atomic pointer load on an already-amortized path (once per morsel /
// cancellation checkpoint / engine step).
type TestingHooks struct {
	failPoint atomic.Pointer[func(site string)]
}

// Testing is the process-wide hook registry. Tests install a FailPoint to
// force worker panics, budget exhaustion or mid-plan cancellation at named
// execution sites; the hook may panic (simulating an operator bug), cancel a
// context, or mutate test state. Sites currently fired:
//
//	exec.morsel.worker   — before each morsel in a parallel worker
//	exec.hash.batch      — at each sequential-scan cancellation checkpoint
//	exec.sort.stream     — at each index-stream cancellation checkpoint
//	exec.dense.batch     — at each dense-kernel batch boundary
//	exec.radix.scatter   — at each radix hash/scatter checkpoint
//	exec.radix.build     — before each radix partition build
//	engine.step          — before each schedule step
//	engine.retain        — before a temp table is retained
//	cache.admit          — at the top of every cache admission (Offer)
//	sched.window.close   — at the start of every batch dispatch
//	shard.scatter        — at the start of every sharded gather
//	shard.exec           — before each shard execution (hedges included)
//	shard.merge          — before shard partials are merged
//	shard.hedge          — when a hedged duplicate request is launched
//	table.append         — before an append mutates any shared state
//	cache.refresh        — before a cached entry is rolled forward (Refresh)
//	server.handler       — before every HTTP request is routed
var Testing TestingHooks

// SetFailPoint installs fn as the process-wide fault-injection hook. The
// installation itself must not race with running plans (install before, clear
// after); firing is safe from any goroutine.
func (h *TestingHooks) SetFailPoint(fn func(site string)) {
	if fn == nil {
		h.failPoint.Store(nil)
		return
	}
	h.failPoint.Store(&fn)
}

// ClearFailPoint removes the hook.
func (h *TestingHooks) ClearFailPoint() { h.failPoint.Store(nil) }

// Fire invokes the hook, if any, with the site name. Exported so the engine
// layer can share the registry for its own sites.
func (h *TestingHooks) Fire(site string) {
	if fn := h.failPoint.Load(); fn != nil {
		(*fn)(site)
	}
}
